/// \file bench_serve.cpp
/// Serving-layer throughput: one mixed-priority batch pushed through
/// serve::Server over simulated-Cell device pools of growing size.  The
/// quantity under test is batch wall time (and jobs/s) as the pool scales —
/// MGPS-style dynamic sharing means a batch of independent jobs should scale
/// close to linearly until the host runs out of cores.  Every job's result
/// is still checked terminal-and-completed, so this doubles as a quick
/// stress of admission/backpressure under real contention.
///
/// Flags: --smoke shrinks the batch and pool list for CI gates; --json[=FILE]
/// emits one NDJSON object compatible with tools/bench.sh.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/spe_executor.h"
#include "serve/server.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"
#include "table_common.h"

namespace rxc::bench {
namespace {

serve::JobSpec batch_job(int i) {
  serve::JobSpec spec;
  spec.id = "job-" + std::to_string(i);
  spec.priority = i % 3;
  spec.workload.sim_taxa = 8;
  spec.workload.sim_sites = 120;
  spec.workload.sim_seed = 100 + static_cast<std::uint64_t>(i % 4);
  spec.model = "jc";
  spec.categories = 4;
  spec.inferences = i % 2 ? 1 : 0;
  spec.bootstraps = i % 2 ? 0 : 2;
  spec.max_rounds = 2;
  return spec;
}

int run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  JsonReport json = JsonReport::from_args(argc, argv);

  const int jobs = smoke ? 8 : 24;
  const std::vector<int> pools = smoke ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4};

  std::printf("=== serving throughput (%s batch: %d jobs) ===\n",
              smoke ? "smoke" : "full", jobs);
  std::printf("(simulated-Cell devices, stage 7; host cores here: %d)\n",
              host_thread_count());
  std::printf("%-8s %10s %10s %10s %10s %12s %10s %10s\n", "devices",
              "wall[s]", "jobs/s", "retries", "preempts", "speedup-vs-1",
              "wait[ms]", "idle-frac");

  JsonWriter jw;
  jw.begin_object()
      .kv("table", "serve-throughput")
      .kv("smoke", smoke)
      .kv("jobs", jobs)
      .kv("host_threads_auto", host_thread_count())
      .key("rows")
      .begin_array();

  double wall_1dev = 0.0;
  int failures = 0;
  for (const int devices : pools) {
    serve::ServerConfig cfg;
    cfg.queue_capacity = 16;  // small bound so backpressure is part of the run
    serve::Server server(
        std::vector<lh::ExecutorSpec>(
            static_cast<std::size_t>(devices),
            core::cell_executor_spec(core::Stage::kOffloadAll)),
        cfg);
    rxc::Stopwatch wall;
    for (int i = 0; i < jobs; ++i) {
      const auto spec = batch_job(i);
      while (server.submit(spec) == serve::SubmitStatus::kQueueFull)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.join();
    const double wall_s = wall.seconds();
    if (devices == 1) wall_1dev = wall_s;

    // Scaling diagnosis: cumulative per-job queue wait (all waits, not just
    // the first) against per-device idle gaps.  High wait + low idle =
    // capacity-bound (add devices); high wait + high idle = placement or
    // simulation-overhead bound (more devices won't help).
    int retries = 0, preemptions = 0;
    double wait_mean = 0.0, wait_max = 0.0;
    for (const auto& r : server.results()) {
      if (r.state != serve::JobState::kCompleted) ++failures;
      retries += r.retries;
      preemptions += r.preemptions;
      wait_mean += r.wait_ms;
      wait_max = std::max(wait_max, r.wait_ms);
    }
    if (server.results().size() != static_cast<std::size_t>(jobs)) ++failures;
    wait_mean /= jobs;
    double idle_mean_ms = 0.0;
    for (int d = 0; d < server.devices().size(); ++d)
      idle_mean_ms += server.devices().device(d).idle_ms();
    idle_mean_ms /= devices;
    const double idle_frac =
        wall_s > 0.0 ? idle_mean_ms / (wall_s * 1000.0) : 0.0;

    const double speedup = wall_s > 0.0 ? wall_1dev / wall_s : 0.0;
    std::printf("%-8d %10.3f %10.1f %10d %10d %12.2f %10.2f %10.2f\n",
                devices, wall_s, jobs / wall_s, retries, preemptions, speedup,
                wait_mean, idle_frac);
    jw.begin_object()
        .kv("devices", devices)
        .kv("wall_s", wall_s)
        .kv("jobs_per_s", jobs / wall_s)
        .kv("retries", retries)
        .kv("preemptions", preemptions)
        .kv("speedup_vs_1", speedup)
        .kv("queue_wait_ms_mean", wait_mean)
        .kv("queue_wait_ms_max", wait_max)
        .kv("device_idle_ms_mean", idle_mean_ms)
        .kv("device_idle_frac", idle_frac)
        .end_object();
  }
  jw.end_array().end_object();
  json.emit(jw.str());

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d job(s) did not complete\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rxc::bench

int main(int argc, char** argv) {
  try {
    return rxc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
