/// Ablations beyond the paper's tables (DESIGN.md §6): LLP fan-out scaling
/// per invocation, EIB-contention sensitivity, and the mailbox-vs-direct
/// signaling gap as worker count grows (the paper's observation that the
/// comm optimization "scales with parallelism").

#include <cstdio>

#include "core/port.h"
#include "core/spe_executor.h"
#include "seq/seqgen.h"
#include "support/stopwatch.h"

using namespace rxc;

namespace {

void llp_scaling(const seq::PatternAlignment& pa) {
  const lh::EngineConfig ec;
  search::SearchOptions so;
  so.max_rounds = 2;
  std::printf("--- LLP fan-out: per-task serial virtual time (one "
              "bootstrap across k SPEs) ---\n");
  std::printf("%-8s %14s %10s\n", "ways", "vtime[s]", "speedup");
  double base = 0.0;
  for (const int ways : {1, 2, 4, 8}) {
    const auto holder = lh::make_executor(
        core::cell_executor_spec(core::Stage::kOffloadAll, ways));
    auto& exec = core::as_cell_executor(*holder);
    const auto trace = core::execute_task(
        pa, ec, so, {search::TaskKind::kBootstrap, 1}, exec);
    const double sec =
        trace.serial_cycles() / exec.machine().params().clock_hz;
    if (ways == 1) base = sec;
    std::printf("%-8d %14.3f %10.2f\n", ways, sec, base / sec);
  }
}

void eib_contention(const seq::PatternAlignment& pa) {
  const lh::EngineConfig ec;
  search::SearchOptions so;
  so.max_rounds = 2;
  std::printf("--- EIB contention sensitivity (per-task serial vtime) ---\n");
  std::printf("%-12s %14s\n", "factor", "vtime[s]");
  // The knob moved into the device model: sweep the per-SPE contention
  // coefficient with all 8 SPEs declared active, so factor = 1 + 7c.
  for (const double coeff : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    cell::DeviceModel dev;
    dev.cost.eib_contention_per_spe = coeff;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(core::Stage::kIntCond);  // no dbuf
    cfg.active_spes = dev.spe_count;
    core::CellExecutor exec(cfg, dev);
    const auto trace = core::execute_task(
        pa, ec, so, {search::TaskKind::kBootstrap, 1}, exec);
    std::printf("%-12.2f %14.3f\n",
                exec.machine().device().eib_factor(8),
                trace.serial_cycles() / exec.machine().params().clock_hz);
  }
}

void comm_scaling(const seq::PatternAlignment& pa) {
  std::printf("--- mailbox vs direct signaling as parallelism grows "
              "(paper: 2%% -> 11%%) ---\n");
  std::printf("%-20s %14s %14s %10s\n", "row", "mailbox[s]", "direct[s]",
              "gain");
  struct Row { int workers, bootstraps; };
  for (const Row row : {Row{1, 1}, Row{2, 4}, Row{2, 8}}) {
    double t[2];
    for (const bool direct : {false, true}) {
      core::CellRunConfig cfg;
      cfg.stage = direct ? core::Stage::kDirectComm : core::Stage::kVectorize;
      cfg.scheduler = core::SchedulerModel::kNaiveMpi;
      cfg.workers = row.workers;
      cfg.trace_samples = 2;
      const auto tasks = search::make_analysis(0, row.bootstraps);
      t[direct] = core::run_on_cell(pa, cfg, tasks).virtual_seconds;
    }
    std::printf("%dw x %-2d bootstraps   %14.3f %14.3f %9.1f%%\n",
                row.workers, row.bootstraps, t[0], t[1],
                100.0 * (t[0] - t[1]) / t[0]);
  }
}

void cat_vs_gamma(const seq::PatternAlignment& pa) {
  // DESIGN.md extension: the paper cites [25] on CAT-vs-Gamma as an HPC
  // trade-off — CAT computes one category per pattern, Gamma all of them.
  std::printf("--- CAT vs GAMMA rate heterogeneity (per-task serial vtime "
              "on the simulated SPE) ---\n");
  std::printf("%-22s %14s %14s\n", "model", "vtime[s]", "final lnl");
  struct Cfg { const char* label; lh::RateMode mode; int cats; };
  for (const Cfg c : {Cfg{"CAT-25", lh::RateMode::kCat, 25},
                      Cfg{"GAMMA-4", lh::RateMode::kGamma, 4},
                      Cfg{"GAMMA-8", lh::RateMode::kGamma, 8}}) {
    lh::EngineConfig ec;
    ec.mode = c.mode;
    ec.categories = c.cats;
    ec.alpha = 0.7;
    search::SearchOptions so;
    so.max_rounds = 2;
    const auto holder = lh::make_executor(
        core::cell_executor_spec(core::Stage::kOffloadAll));
    auto& exec = core::as_cell_executor(*holder);
    const auto trace = core::execute_task(
        pa, ec, so, {search::TaskKind::kBootstrap, 1}, exec);
    std::printf("%-22s %14.3f %14.2f\n", c.label,
                trace.serial_cycles() / exec.machine().params().clock_hz,
                trace.log_likelihood);
  }
}

void category_sweep(const seq::PatternAlignment& pa) {
  // §5.2.5: the "first loop" runs 4-25 iterations (one per rate category)
  // and is where the exp() calls live — per-task virtual time vs the
  // category count, CAT mode on the fully optimized SPE.
  std::printf("--- rate-category sweep (first-loop trip count, §5.2.5) ---\n");
  std::printf("%-8s %14s %16s\n", "ncat", "vtime[s]", "exp calls/task");
  for (const int ncat : {4, 8, 16, 25}) {
    lh::EngineConfig ec;
    ec.mode = lh::RateMode::kCat;
    ec.categories = ncat;
    search::SearchOptions so;
    so.max_rounds = 2;
    const auto holder = lh::make_executor(
        core::cell_executor_spec(core::Stage::kOffloadAll));
    auto& exec = core::as_cell_executor(*holder);
    const auto trace = core::execute_task(
        pa, ec, so, {search::TaskKind::kBootstrap, 1}, exec);
    std::printf("%-8d %14.3f %16llu\n", ncat,
                trace.serial_cycles() / exec.machine().params().clock_hz,
                static_cast<unsigned long long>(trace.counters.exp_calls));
  }
}

}  // namespace

int main() {
  try {
    Stopwatch wall;
    const auto sim = seq::make_42sc();
    const auto pa = seq::PatternAlignment::compress(sim.alignment);
    std::printf("=== Ablations (design-choice studies beyond the paper's "
                "tables) ===\n");
    llp_scaling(pa);
    eib_contention(pa);
    comm_scaling(pa);
    cat_vs_gamma(pa);
    category_sweep(pa);
    std::printf("[wall %.1fs]\n\n", wall.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
