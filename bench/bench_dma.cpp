/// Simulator study for paper §5.2.4: DMA stall share of SPE time with and
/// without double buffering, and the strip ("buffer") size trade-off that
/// led the authors to 2 KB.  Reports the simulated MFC counters from a real
/// bootstrap search per configuration.

#include <cstdio>

#include "core/port.h"
#include "seq/seqgen.h"
#include "support/stopwatch.h"

int main() {
  using namespace rxc;
  try {
    Stopwatch wall;
    const auto sim = seq::make_42sc();
    const auto pa = seq::PatternAlignment::compress(sim.alignment);
    const search::AnalysisTask task{search::TaskKind::kBootstrap, 1};
    const lh::EngineConfig ec;  // CAT-25 default
    search::SearchOptions so;
    so.max_rounds = 2;

    std::printf("=== DMA ablation (paper §5.2.4: 11.4%% idle before double "
                "buffering; 2KB strips) ===\n");
    std::printf("%-12s %-8s %14s %14s %10s %12s\n", "strip[B]", "dbuf",
                "spe busy[Mc]", "dma stall[Mc]", "stall%", "transfers");

    for (const std::size_t strip : {512u, 1024u, 2048u, 4096u, 8192u}) {
      for (const bool dbuf : {false, true}) {
        // kDoubleBuffer is exactly kIntCond + double buffering, so the
        // (stage, dbuf) grid maps onto two adjacent cumulative stages.
        lh::ExecutorSpec spec = core::cell_executor_spec(
            dbuf ? core::Stage::kDoubleBuffer : core::Stage::kIntCond);
        spec.cell().strip_bytes = strip;
        const auto holder = lh::make_executor(spec);
        auto& exec = core::as_cell_executor(*holder);
        (void)core::execute_task(pa, ec, so, task, exec);
        const auto& c = exec.machine().spe(0).counters();
        const double busy = c.busy_cycles / 1e6;
        const double stall = c.dma_stall_cycles / 1e6;
        std::printf("%-12zu %-8s %14.1f %14.1f %9.1f%% %12llu\n", strip,
                    dbuf ? "yes" : "no", busy, stall,
                    100.0 * stall / (busy + stall),
                    static_cast<unsigned long long>(
                        exec.machine().spe(0).mfc().counters().transfers));
      }
    }
    std::printf("[wall %.1fs]\n\n", wall.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
