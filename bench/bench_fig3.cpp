/// Figure 3 (paper §6): execution time vs bootstrap count on one Cell
/// (MGPS, all optimizations) against an IBM Power5 (4 MPI processes on 4
/// hardware contexts) and two Intel Xeon HT processors (4 contexts).
/// Paper shape: Cell clearly beats the Xeons (more than 2x) and edges the
/// Power5 by ~9-10% on the longer series.

#include <cstdio>
#include <vector>

#include "core/port.h"
#include "platform/platform.h"
#include "seq/seqgen.h"
#include "support/stopwatch.h"

int main() {
  using namespace rxc;
  try {
    Stopwatch wall;
    const auto sim = seq::make_42sc();
    const auto pa = seq::PatternAlignment::compress(sim.alignment);
    const auto p5 = platform::power5();
    const auto xe = platform::xeon();

    std::printf("=== Figure 3: Cell (MGPS) vs IBM Power5 vs 2x Intel Xeon "
                "===\n");
    std::printf("(series over bootstrap count; paper: Cell > 2x faster than "
                "the Xeons, 9-10%% faster than the Power5)\n");
    std::printf("%-6s %12s %12s %12s | %12s %12s\n", "bs", "cell[s]",
                "power5[s]", "xeon[s]", "p5/cell", "xeon/cell");

    for (const int bootstraps : {1, 8, 16, 32, 64, 128}) {
      const auto tasks = search::make_analysis(0, bootstraps);
      core::CellRunConfig cfg;
      cfg.stage = core::Stage::kOffloadAll;
      cfg.scheduler = core::SchedulerModel::kMgps;
      cfg.trace_samples = 6;
      const auto cell = core::run_on_cell(pa, cfg, tasks);

      // Host platforms: per-task cost from the mean executed kernel work.
      lh::KernelCounters mean{};
      const double inv = 1.0 / static_cast<double>(cell.executed_tasks);
      const auto scale = [&](std::uint64_t v) {
        return static_cast<std::uint64_t>(static_cast<double>(v) * inv);
      };
      mean.newview_patterns = scale(cell.counters.newview_patterns);
      mean.evaluate_calls = scale(cell.counters.evaluate_calls);
      mean.sumtable_calls = scale(cell.counters.sumtable_calls);
      mean.nr_calls = scale(cell.counters.nr_calls);
      mean.pmatrix_builds = scale(cell.counters.pmatrix_builds);
      mean.exp_calls = scale(cell.counters.exp_calls);

      const double t5 =
          platform::task_cycles(p5, mean, pa.pattern_count(), 25) /
          p5.clock_hz;
      const double tx =
          platform::task_cycles(xe, mean, pa.pattern_count(), 25) /
          xe.clock_hz;
      const std::vector<double> tasks5(bootstraps, t5);
      const std::vector<double> tasksx(bootstraps, tx);
      const double m5 = platform::schedule_makespan(p5, tasks5);
      const double mx = platform::schedule_makespan(xe, tasksx);

      std::printf("%-6d %12.3f %12.3f %12.3f | %12.2f %12.2f\n", bootstraps,
                  cell.virtual_seconds, m5, mx, m5 / cell.virtual_seconds,
                  mx / cell.virtual_seconds);
    }
    std::printf("[wall %.1fs]\n\n", wall.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
