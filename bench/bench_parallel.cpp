/// \file bench_parallel.cpp
/// Wall-clock benefit of the parallel host backend.  Each case executes the
/// identical simulated-Cell workload twice — host_threads=1 (sequential
/// reference) and host_threads=8 (thread pool) — and reports both clocks:
/// virtual seconds must be bitwise identical (the pool only reorders wall
/// execution, never virtual accounting), wall seconds are the quantity under
/// test.
///
/// Cases:
///   llp8   — LLP scheduler, 8 SPEs per offloaded newview loop: the 8 strip
///            payloads of every offload run concurrently on the pool.
///   batch  — naive 1-way schedule: whole dependency levels of independent
///            newview tasks are dispatched as one batch across the 8 SPEs.
///
/// Flags: --smoke shrinks the workload for CI gates; --json[=FILE] emits one
/// NDJSON object compatible with tools/bench.sh.

#include <cstdio>
#include <cstring>
#include <string>

#include "support/thread_pool.h"
#include "table_common.h"

namespace rxc::bench {
namespace {

struct CaseSpec {
  const char* name;
  core::SchedulerModel scheduler;
  int bootstraps;
  std::size_t trace_samples;
};

int run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  JsonReport json = JsonReport::from_args(argc, argv);

  const auto sim = seq::make_42sc();
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  const CaseSpec cases[] = {
      {"llp8", core::SchedulerModel::kLlp, 1, 1},
      {"batch", core::SchedulerModel::kNaiveMpi, 1, 1},
  };

  std::printf("=== parallel host backend (%s workload) ===\n",
              smoke ? "smoke" : "full");
  std::printf("(workload: synthetic 42_SC, %zu taxa x %zu sites, %zu "
              "patterns; auto host threads on this machine: %d)\n",
              pa.taxon_count(), pa.site_count(), pa.pattern_count(),
              host_thread_count());
  std::printf("%-8s %12s %12s %12s %10s %s\n", "case", "vtime[s]",
              "wall-seq[s]", "wall-par[s]", "speedup", "vtime-identical");

  JsonWriter jw;
  jw.begin_object()
      .kv("table", "parallel-backend")
      .kv("smoke", smoke)
      .kv("host_threads_auto", host_thread_count())
      .key("rows")
      .begin_array();

  int failures = 0;
  for (const CaseSpec& c : cases) {
    const TableRow row{1, c.bootstraps, 0.0, 0.0};
    core::CellRunConfig cfg;
    cfg.stage = core::Stage::kOffloadAll;
    cfg.scheduler = c.scheduler;
    cfg.trace_samples = c.trace_samples;
    if (smoke) {
      // Trim the SPR search so the CI gate finishes in seconds while still
      // driving the parallel newview paths hard enough to time.
      cfg.search.radius = 2;
      cfg.search.max_rounds = 2;
      cfg.search.branch_passes = 1;
    }
    cfg.host_threads = 1;
    const RowTiming seq_t = run_row_timed(pa, cfg, row);
    cfg.host_threads = 8;
    const RowTiming par_t = run_row_timed(pa, cfg, row);
    const bool identical = seq_t.virtual_s == par_t.virtual_s;
    if (!identical) ++failures;
    const double speedup =
        par_t.wall_s > 0.0 ? seq_t.wall_s / par_t.wall_s : 0.0;
    std::printf("%-8s %12.3f %12.3f %12.3f %10.2f %s\n", c.name,
                seq_t.virtual_s, seq_t.wall_s, par_t.wall_s, speedup,
                identical ? "yes" : "NO (BUG)");
    jw.begin_object()
        .kv("case", c.name)
        .kv("bootstraps", c.bootstraps)
        .kv("vtime_s", seq_t.virtual_s)
        .kv("wall_seq_s", seq_t.wall_s)
        .kv("wall_par_s", par_t.wall_s)
        .kv("speedup", speedup)
        .kv("vtime_identical", identical)
        .kv("host_threads_par", 8)
        .end_object();
  }
  jw.end_array().end_object();
  json.emit(jw.str());

  if (failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d case(s) changed virtual time under the parallel "
                 "backend\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rxc::bench

int main(int argc, char** argv) {
  try {
    return rxc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
