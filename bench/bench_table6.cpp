/// Table 6 (paper §5.2.6): PPE<->SPE signaling moves from mailboxes to
/// direct memory-to-memory transfers.  Paper: 2-11% off Table 5, growing
/// with the number of workers/bootstraps (communication intensity).

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 6: + direct memory-to-memory signaling",
          "paper: 39.9 / 180.46 / 357.08 / 712.2 s",
          rxc::core::Stage::kDirectComm,
          rxc::bench::standard_rows(39.9, 180.46, 357.08, 712.2),
      },
      &json);
}
