/// Table 7 (paper §5.2.7): makenewz() and evaluate() join newview() on the
/// SPE as one code module; nested calls no longer cross the PPE boundary
/// and the makenewz sumtable stays resident in local store.  Paper: 31-38%
/// off Table 6 — and now 25% FASTER than the PPE-only baseline.

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 7: + makenewz()/evaluate() offloaded (full module)",
          "paper: 27.7 / 112.41 / 224.69 / 444.87 s",
          rxc::core::Stage::kOffloadAll,
          rxc::bench::standard_rows(27.7, 112.41, 224.69, 444.87),
      },
      &json);
}
