#pragma once
/// \file table_common.h
/// Shared driver for the Table 1-7 benches.  Each §5.2 table reports the
/// same four rows (1 worker x 1 bootstrap, 2 workers x 8/16/32 bootstraps)
/// at one cumulative optimization stage.  The benches regenerate those rows
/// as virtual seconds on the simulated Cell; since absolute seconds depend
/// on the authors' testbed and exact workload, the comparable quantity is
/// each row's RATIO to the PPE-only baseline (Table 1(a)) — printed next to
/// the paper's own ratio.  See EXPERIMENTS.md.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/port.h"
#include "seq/patterns.h"
#include "seq/seqgen.h"
#include "support/json.h"
#include "support/stopwatch.h"

namespace rxc::bench {

struct TableRow {
  int workers;
  int bootstraps;
  double paper_seconds;       ///< this stage, from the paper's table
  double paper_ppe_seconds;   ///< same row in Table 1(a)
};

/// The four standard rows; Table 1(a) baseline: 36.9 / 207.67 / 427.95 /
/// 824 seconds.
inline std::vector<TableRow> standard_rows(double r1, double r2, double r3,
                                           double r4) {
  return {{1, 1, r1, 36.9},
          {2, 8, r2, 207.67},
          {2, 16, r3, 427.95},
          {2, 32, r4, 824.0}};
}

struct TableSpec {
  std::string title;
  std::string paper_ref;
  core::Stage stage;
  std::vector<TableRow> rows;
  core::SchedulerModel scheduler = core::SchedulerModel::kNaiveMpi;
};

/// `--json` / `--json=FILE` handling shared by the table benches.  When
/// enabled, each table additionally emits one machine-readable JSON object
/// per line (NDJSON, so binaries that print several tables stay parseable);
/// with a FILE the lines go there instead of stdout.
class JsonReport {
 public:
  static JsonReport from_args(int argc, char** argv) {
    JsonReport r;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        r.enabled_ = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        r.enabled_ = true;
        r.path_ = arg.substr(7);
      }
    }
    return r;
  }

  bool enabled() const { return enabled_; }

  void emit(const std::string& line) {
    if (!enabled_) return;
    if (path_.empty()) {
      std::printf("%s\n", line.c_str());
      return;
    }
    std::ofstream os(path_, wrote_ ? std::ios::app : std::ios::trunc);
    RXC_REQUIRE(os.good(), "cannot open --json file " + path_);
    os << line << '\n';
    wrote_ = true;
  }

 private:
  bool enabled_ = false;
  bool wrote_ = false;
  std::string path_;
};

/// One bench row's outcome on both clocks: virtual seconds (the modeled
/// Cell) and wall seconds (how long the simulation itself took).
struct RowTiming {
  double virtual_s = 0.0;
  double wall_s = 0.0;
};

/// Runs `row.bootstraps` tasks under a fully prepared config (stage,
/// scheduler, trace_samples, host_threads, search options already set).
inline RowTiming run_row_timed(const seq::PatternAlignment& pa,
                               core::CellRunConfig cfg, const TableRow& row) {
  cfg.workers = row.workers;
  const auto tasks = search::make_analysis(0, row.bootstraps);
  rxc::Stopwatch wall;
  RowTiming t;
  t.virtual_s = core::run_on_cell(pa, cfg, tasks).virtual_seconds;
  t.wall_s = wall.seconds();
  return t;
}

inline RowTiming run_row_timed(const seq::PatternAlignment& pa,
                               core::Stage stage,
                               core::SchedulerModel scheduler,
                               const TableRow& row,
                               std::size_t trace_samples = 4,
                               int host_threads = 0) {
  core::CellRunConfig cfg;
  cfg.stage = stage;
  cfg.scheduler = scheduler;
  cfg.trace_samples = trace_samples;
  cfg.host_threads = host_threads;
  return run_row_timed(pa, cfg, row);
}

inline double run_row(const seq::PatternAlignment& pa, core::Stage stage,
                      core::SchedulerModel scheduler, const TableRow& row,
                      std::size_t trace_samples = 4) {
  return run_row_timed(pa, stage, scheduler, row, trace_samples).virtual_s;
}

inline int run_table(const TableSpec& spec, JsonReport* json = nullptr) {
  try {
    rxc::Stopwatch wall;
    const auto sim = seq::make_42sc();
    const auto pa = seq::PatternAlignment::compress(sim.alignment);
    std::printf("=== %s ===\n", spec.title.c_str());
    std::printf("(%s; workload: synthetic 42_SC, %zu taxa x %zu sites, "
                "%zu patterns, CAT-25; ratios are vs the PPE-only run of "
                "the same row)\n",
                spec.paper_ref.c_str(), pa.taxon_count(), pa.site_count(),
                pa.pattern_count());
    std::printf("%-22s %12s %12s | %12s %12s | %10s %10s\n", "row",
                "vtime[s]", "ppe-only[s]", "paper[s]", "paper-ppe[s]",
                "ratio", "paper");

    JsonWriter jw;
    jw.begin_object()
        .kv("table", spec.title)
        .kv("paper_ref", spec.paper_ref)
        .kv("stage", core::stage_name(spec.stage))
        .key("rows")
        .begin_array();
    for (const auto& row : spec.rows) {
      const double vsec = run_row(pa, spec.stage, spec.scheduler, row);
      const double base =
          run_row(pa, core::Stage::kPpeOnly,
                  core::SchedulerModel::kNaiveMpi, row);
      char label[64];
      std::snprintf(label, sizeof label, "%d worker(s) x %d bs", row.workers,
                    row.bootstraps);
      std::printf("%-22s %12.3f %12.3f | %12.2f %12.2f | %10.3f %10.3f\n",
                  label, vsec, base, row.paper_seconds, row.paper_ppe_seconds,
                  vsec / base, row.paper_seconds / row.paper_ppe_seconds);
      jw.begin_object()
          .kv("workers", row.workers)
          .kv("bootstraps", row.bootstraps)
          .kv("vtime_s", vsec)
          .kv("ppe_only_s", base)
          .kv("ratio", vsec / base)
          .kv("paper_s", row.paper_seconds)
          .kv("paper_ppe_s", row.paper_ppe_seconds)
          .kv("paper_ratio", row.paper_seconds / row.paper_ppe_seconds)
          .end_object();
    }
    jw.end_array().end_object();
    if (json) json->emit(jw.str());
    std::printf("[wall %.1fs]\n\n", wall.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}

}  // namespace rxc::bench
