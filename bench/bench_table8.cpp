/// Table 8 (paper §5.3): the MGPS dynamic scheduler — batches of eight
/// bootstraps run EDTLP (task-level parallelism across all 8 SPEs, PPE
/// oversubscribed with switch-on-offload), remainders switch to loop-level
/// parallelization.  Paper: 17.6 / 42.18 / 84.21 / 167.57 s — 36% faster at
/// one bootstrap (LLP across 8 SPEs) and up to 63% faster with many.

#include <cstdio>

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace rxc;
  using namespace rxc::bench;
  try {
    JsonReport json = JsonReport::from_args(argc, argv);
    Stopwatch wall;
    const auto sim = seq::make_42sc();
    const auto pa = seq::PatternAlignment::compress(sim.alignment);
    struct Row {
      int bootstraps;
      double paper_mgps;
      double paper_naive;  ///< Table 7 row with the naive scheduler
    };
    const Row rows[] = {{1, 17.6, 27.7},
                        {8, 42.18, 112.41},
                        {16, 84.21, 224.69},
                        {32, 167.57, 444.87}};
    std::printf("=== Table 8: MGPS dynamic multi-grain scheduling ===\n");
    std::printf("(speedup = naive-2-worker Table 7 row / MGPS row; paper "
                "speedups 1.57 / 2.67 / 2.67 / 2.65)\n");
    std::printf("%-14s %12s %12s | %10s %10s\n", "bootstraps", "mgps[s]",
                "naive[s]", "speedup", "paper");
    JsonWriter jw;
    jw.begin_object()
        .kv("table", "Table 8: MGPS dynamic multi-grain scheduling")
        .kv("stage", core::stage_name(core::Stage::kOffloadAll))
        .key("rows")
        .begin_array();
    for (const Row& row : rows) {
      const TableRow tr{row.bootstraps == 1 ? 1 : 2, row.bootstraps, 0, 0};
      const double mgps =
          run_row(pa, core::Stage::kOffloadAll, core::SchedulerModel::kMgps,
                  tr);
      const double naive = run_row(pa, core::Stage::kOffloadAll,
                                   core::SchedulerModel::kNaiveMpi, tr);
      std::printf("%-14d %12.3f %12.3f | %10.2f %10.2f\n", row.bootstraps,
                  mgps, naive, naive / mgps, row.paper_naive / row.paper_mgps);
      jw.begin_object()
          .kv("bootstraps", row.bootstraps)
          .kv("mgps_s", mgps)
          .kv("naive_s", naive)
          .kv("speedup", naive / mgps)
          .kv("paper_speedup", row.paper_naive / row.paper_mgps)
          .end_object();
    }
    jw.end_array().end_object();
    json.emit(jw.str());
    std::printf("[wall %.1fs]\n\n", wall.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
