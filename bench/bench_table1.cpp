/// Table 1 (paper §5.2.1): the starting point.  (a) the whole application
/// on the PPE; (b) newview() naively offloaded to one SPE per worker —
/// which is 2.9x SLOWER, the paper's motivating observation: merely
/// exposing parallelism to Cell is not enough.

#include "table_common.h"

int main(int argc, char** argv) {
  using namespace rxc::bench;
  JsonReport json = JsonReport::from_args(argc, argv);
  int rc = run_table(
      {
          "Table 1(a): whole application on the PPE",
          "paper: 36.9 / 207.67 / 427.95 / 824 s",
          rxc::core::Stage::kPpeOnly,
          standard_rows(36.9, 207.67, 427.95, 824.0),
      },
      &json);
  rc |= run_table(
      {
          "Table 1(b): newview() naively offloaded (libm exp, branchy "
          "conditional, no double buffering, scalar, mailboxes)",
          "paper: 106.37 / 459.16 / 915.75 / 1836.6 s (2.2-2.9x SLOWER than "
          "the PPE)",
          rxc::core::Stage::kOffloadNewview,
          standard_rows(106.37, 459.16, 915.75, 1836.6),
      },
      &json);
  return rc;
}
