/// Microbenchmarks of the likelihood kernels (paper §5.2.5, Figure 2):
/// scalar vs SIMD newview bodies, transition-matrix construction with both
/// exp() variants, and the makenewz inner kernels — measured as real host
/// wall time on a 42_SC-shaped strip (252 patterns).

#include <benchmark/benchmark.h>

#include "likelihood/kernels.h"
#include "model/dna_model.h"
#include "support/aligned.h"
#include "support/rng.h"

namespace {

using namespace rxc;

constexpr std::size_t kNp = 252;  // 42_SC pattern count
constexpr int kNcat = 25;

struct KernelData {
  model::EigenSystem es;
  std::vector<double> rates;
  aligned_vector<double> pmat1, pmat2;
  aligned_vector<double> partial1, partial2, out;
  std::vector<std::int32_t> scale1, scale2, scale_out;
  std::vector<int> cat;
  std::vector<double> weights;
  aligned_vector<double> sumtable;

  KernelData()
      : es(model::decompose(model::DnaModel::gtr(
            {1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, {0.30, 0.21, 0.24, 0.25}))),
        pmat1(kNcat * 16),
        pmat2(kNcat * 16),
        partial1(kNp * 4),
        partial2(kNp * 4),
        out(kNp * 4),
        scale1(kNp, 0),
        scale2(kNp, 0),
        scale_out(kNp),
        cat(kNp),
        weights(kNp, 4.6),
        sumtable(kNp * 4) {
    Rng rng(1);
    rates.resize(kNcat);
    for (int c = 0; c < kNcat; ++c) rates[c] = 0.05 * (c + 1);
    lh::build_pmatrices(es, rates.data(), kNcat, 0.13, &lh::exp_libm,
                        pmat1.data());
    lh::build_pmatrices(es, rates.data(), kNcat, 0.27, &lh::exp_libm,
                        pmat2.data());
    for (double& x : partial1) x = rng.uniform() * 1e-2;
    for (double& x : partial2) x = rng.uniform() * 1e-2;
    for (auto& c : cat) c = static_cast<int>(rng.below(kNcat));
  }

  lh::NewviewArgs newview_args() {
    lh::NewviewArgs a;
    a.pmat1 = pmat1.data();
    a.pmat2 = pmat2.data();
    a.ncat = kNcat;
    a.cat = cat.data();
    a.np = kNp;
    a.partial1 = partial1.data();
    a.scale1 = scale1.data();
    a.partial2 = partial2.data();
    a.scale2 = scale2.data();
    a.out = out.data();
    a.scale_out = scale_out.data();
    a.scaling = lh::ScalingCheck::kIntCast;
    return a;
  }

  lh::EvaluateArgs evaluate_args() {
    lh::EvaluateArgs a;
    a.pmat = pmat1.data();
    a.freqs = es.freqs.data();
    a.ncat = kNcat;
    a.cat = cat.data();
    a.np = kNp;
    a.partial1 = partial1.data();
    a.scale1 = scale1.data();
    a.partial2 = partial2.data();
    a.scale2 = scale2.data();
    a.weights = weights.data();
    return a;
  }
};

void BM_NewviewCatScalar(benchmark::State& state) {
  KernelData d;
  auto args = d.newview_args();
  for (auto _ : state) benchmark::DoNotOptimize(lh::newview_cat(args));
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_NewviewCatScalar);

void BM_NewviewCatSimd(benchmark::State& state) {
  KernelData d;
  auto args = d.newview_args();
  for (auto _ : state) benchmark::DoNotOptimize(lh::newview_cat_simd(args));
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_NewviewCatSimd);

void BM_PmatricesLibm(benchmark::State& state) {
  KernelData d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lh::build_pmatrices(
        d.es, d.rates.data(), kNcat, 0.2, &lh::exp_libm, d.pmat1.data()));
  }
}
BENCHMARK(BM_PmatricesLibm);

void BM_PmatricesSdk(benchmark::State& state) {
  KernelData d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lh::build_pmatrices(
        d.es, d.rates.data(), kNcat, 0.2, &lh::exp_sdk, d.pmat1.data()));
  }
}
BENCHMARK(BM_PmatricesSdk);

void BM_EvaluateCat(benchmark::State& state) {
  KernelData d;
  auto a = d.evaluate_args();
  for (auto _ : state) benchmark::DoNotOptimize(lh::evaluate_cat(a));
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_EvaluateCat);

void BM_EvaluateCatSimd(benchmark::State& state) {
  KernelData d;
  auto a = d.evaluate_args();
  for (auto _ : state) benchmark::DoNotOptimize(lh::evaluate_cat_simd(a));
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_EvaluateCatSimd);

void BM_SumtableCat(benchmark::State& state) {
  KernelData d;
  lh::SumtableArgs a;
  a.es = &d.es;
  a.ncat = kNcat;
  a.np = kNp;
  a.partial1 = d.partial1.data();
  a.partial2 = d.partial2.data();
  a.out = d.sumtable.data();
  for (auto _ : state) {
    lh::make_sumtable_cat(a);
    benchmark::DoNotOptimize(d.sumtable.data());
  }
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_SumtableCat);

void BM_SumtableCatSimd(benchmark::State& state) {
  KernelData d;
  lh::SumtableArgs a;
  a.es = &d.es;
  a.ncat = kNcat;
  a.np = kNp;
  a.partial1 = d.partial1.data();
  a.partial2 = d.partial2.data();
  a.out = d.sumtable.data();
  for (auto _ : state) {
    lh::make_sumtable_cat_simd(a);
    benchmark::DoNotOptimize(d.sumtable.data());
  }
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_SumtableCatSimd);

void BM_NrDerivativesCat(benchmark::State& state) {
  KernelData d;
  lh::SumtableArgs sa;
  sa.es = &d.es;
  sa.ncat = kNcat;
  sa.np = kNp;
  sa.partial1 = d.partial1.data();
  sa.partial2 = d.partial2.data();
  sa.out = d.sumtable.data();
  lh::make_sumtable_cat(sa);
  lh::NrArgs a;
  a.sumtable = d.sumtable.data();
  a.lambda = d.es.lambda.data();
  a.rates = d.rates.data();
  a.ncat = kNcat;
  a.cat = d.cat.data();
  a.np = kNp;
  a.weights = d.weights.data();
  a.t = 0.17;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lh::nr_derivatives_cat(a));
  }
  state.SetItemsProcessed(state.iterations() * kNp);
}
BENCHMARK(BM_NrDerivativesCat);

void BM_NewviewGammaScalarVsSimd(benchmark::State& state) {
  // Parameterized over SIMD (0/1) via the range argument.
  const bool simd = state.range(0) != 0;
  constexpr int kGcat = 4;
  KernelData d;
  aligned_vector<double> gp1(kNp * kGcat * 4), gp2(kNp * kGcat * 4),
      gout(kNp * kGcat * 4);
  Rng rng(3);
  for (double& x : gp1) x = rng.uniform();
  for (double& x : gp2) x = rng.uniform();
  lh::NewviewArgs a;
  a.pmat1 = d.pmat1.data();
  a.pmat2 = d.pmat2.data();
  a.ncat = kGcat;
  a.np = kNp;
  a.partial1 = gp1.data();
  a.scale1 = d.scale1.data();
  a.partial2 = gp2.data();
  a.scale2 = d.scale2.data();
  a.out = gout.data();
  a.scale_out = d.scale_out.data();
  a.scaling = lh::ScalingCheck::kIntCast;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd ? lh::newview_gamma_simd(a)
                                  : lh::newview_gamma(a));
  }
  state.SetItemsProcessed(state.iterations() * kNp * kGcat);
}
BENCHMARK(BM_NewviewGammaScalarVsSimd)->Arg(0)->Arg(1);

}  // namespace

// Wall times for the *_simd benches are meaningless without knowing which
// instruction set they dispatched to, so stamp it into the JSON context.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "rxc_simd_level", lh::simd_level_name(lh::active_simd_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
