/// Table 5 (paper §5.2.5, Figure 2): the two hot loops are vectorized with
/// 2-wide double SIMD (spu_splats/spu_madd; FP instruction counts 36->24
/// and 44->22, +25 vector-construction instructions).  Paper: 9-13% off
/// Table 4 — notably LESS than the conditional vectorization bought.

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 5: + SIMD likelihood loops",
          "paper: 40.9 / 195.7 / 393 / 800.9 s",
          rxc::core::Stage::kVectorize,
          rxc::bench::standard_rows(40.9, 195.7, 393.0, 800.9),
      },
      &json);
}
