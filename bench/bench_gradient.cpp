/// \file bench_gradient.cpp
/// The tentpole perf claim of the all-branch gradient: ONE linear-time
/// sweep (LikelihoodEngine::branch_gradient — batched directed-partial
/// refresh + one fused edge-gradient batch) replaces N per-edge makenewz
/// loops.  Each case measures, from the same cold-cache state on the
/// 42-taxon workload:
///
///   sweep          one branch_gradient() call
///   loop-derivs    per-edge prepare_branch + branch_derivatives at the
///                  same branch lengths — identical math, so its d1/d2
///                  must match the sweep bitwise (checked here); the ratio
///                  isolates what batching/fusion alone buys
///   loop-makenewz  per-edge optimize_branch (the Newton loops the sweep
///                  replaces in whole-tree smoothing); every accepted step
///                  invalidates outward partials, so the per-edge pass
///                  pays O(N) recompute per edge where the sweep pays O(N)
///                  total — this ratio is the gated >= 3x claim
///
/// Two clocks: the cell-2007 case reports deterministic virtual cycles
/// (gate-stable on any runner); the host cases report wall seconds (gated
/// only on multi-core runners — see tools/bench_gate.py).
///
/// Flags: --smoke (single rep), --json[=FILE] NDJSON for tools/bench.sh.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/spe_executor.h"
#include "core/stage.h"
#include "likelihood/engine.h"
#include "likelihood/registry.h"
#include "support/rng.h"
#include "table_common.h"
#include "tree/tree.h"

namespace rxc::bench {
namespace {

struct GradientCase {
  const char* name;
  const char* clock;  ///< "virtual_cycles" or "wall_s"
  lh::KernelExecutor* exec;
  core::CellExecutor* cell;  ///< non-null when clock is virtual
};

struct Measurement {
  double sweep = 0.0;
  double loop_derivs = 0.0;
  double loop_makenewz = 0.0;
  bool derivs_bitwise = true;
};

/// Times `body` on the case's clock: virtual serial cycles from the Cell
/// trace, wall seconds otherwise.
template <class Body>
double timed(const GradientCase& c, const Body& body) {
  if (c.cell != nullptr) {
    c.cell->begin_task();
    body();
    return c.cell->take_trace().serial_cycles();
  }
  rxc::Stopwatch wall;
  body();
  return wall.seconds();
}

/// Best-of-`reps` timing, re-cooling the engine's caches before each rep so
/// every rep pays the same directed-partial refresh the first one does.
template <class Body>
double best_of(const GradientCase& c, int reps, lh::LikelihoodEngine& eng,
               const Body& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    eng.invalidate_all();
    const double t = timed(c, body);
    if (r == 0 || t < best) best = t;
  }
  return best;
}

Measurement measure(const GradientCase& c, const seq::PatternAlignment& pa,
                    const tree::Tree& base_tree, int reps) {
  Measurement m;
  const lh::EngineConfig cfg;  // GTR + CAT-25, the paper's configuration

  // --- sweep: one branch_gradient() from cold ---------------------------
  tree::Tree tree_a = base_tree;
  lh::LikelihoodEngine eng_a(pa, cfg);
  eng_a.set_tree(&tree_a);
  eng_a.set_executor(c.exec);
  std::vector<lh::EdgeGradient> grads;
  m.sweep = best_of(c, reps, eng_a, [&] { grads = eng_a.branch_gradient(); });

  // --- loop-derivs: same derivatives via per-edge sumtable + nr ----------
  tree::Tree tree_b = base_tree;
  lh::LikelihoodEngine eng_b(pa, cfg);
  eng_b.set_tree(&tree_b);
  eng_b.set_executor(c.exec);
  m.loop_derivs = best_of(c, reps, eng_b, [&] {
    for (const lh::EdgeGradient& g : grads) {
      eng_b.prepare_branch(g.edge);
      (void)eng_b.branch_derivatives(g.t);
    }
  });
  // Correctness ride-along (post-timing, caches already warm): the per-edge
  // two-step path must reproduce the sweep's derivatives bitwise.
  for (const lh::EdgeGradient& g : grads) {
    eng_b.prepare_branch(g.edge);
    const lh::NrResult ref = eng_b.branch_derivatives(g.t);
    if (ref.d1 != g.d1 || ref.d2 != g.d2) m.derivs_bitwise = false;
  }

  // --- loop-makenewz: per-edge Newton optimization (mutates lengths, so a
  // fresh tree copy per rep keeps every rep's iteration counts identical) --
  for (int r = 0; r < reps; ++r) {
    tree::Tree tree_c = base_tree;
    lh::LikelihoodEngine eng_c(pa, cfg);
    eng_c.set_tree(&tree_c);
    eng_c.set_executor(c.exec);
    const double t = timed(c, [&] {
      for (std::size_t e = 0; e < tree_c.edge_slots(); ++e)
        if (tree_c.edge_alive(static_cast<int>(e)))
          (void)eng_c.optimize_branch(static_cast<int>(e));
    });
    if (r == 0 || t < m.loop_makenewz) m.loop_makenewz = t;
  }
  return m;
}

int run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  JsonReport json = JsonReport::from_args(argc, argv);
  const int reps = smoke ? 1 : 3;

  const auto sim = seq::make_42sc();
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(0x42ADE);
  const tree::Tree base_tree =
      tree::Tree::random_topology(pa.taxon_count(), rng, 0.08);
  std::size_t edges = 0;
  for (std::size_t e = 0; e < base_tree.edge_slots(); ++e)
    if (base_tree.edge_alive(static_cast<int>(e))) ++edges;

  // cell-2007 at offload-all: the virtual-cycle clock.
  core::SpeExecConfig cell_cfg;
  cell_cfg.toggles = core::stage_toggles(core::Stage::kOffloadAll);
  core::CellExecutor cell_exec(cell_cfg);

  // The measured host backend: wall clock.
  const auto threaded = lh::find_backend("host-threaded");
  RXC_REQUIRE(threaded.has_value(), "host-threaded backend not registered");
  const auto threaded_exec = lh::make_executor(threaded->spec);

  const GradientCase cases[] = {
      {"cell-2007", "virtual_cycles", &cell_exec, &cell_exec},
      {"host-threaded", "wall_s", threaded_exec.get(), nullptr},
  };

  std::printf("=== all-branch gradient: one sweep vs N per-edge loops "
              "(%s workload) ===\n", smoke ? "smoke" : "full");
  std::printf("(workload: synthetic 42_SC, %zu taxa x %zu sites, %zu "
              "patterns, %zu edges; auto host threads: %d)\n",
              pa.taxon_count(), pa.site_count(), pa.pattern_count(), edges,
              host_thread_count());
  std::printf("%-14s %-14s %14s %14s %14s %9s %9s %s\n", "case", "clock",
              "sweep", "loop-derivs", "loop-makenewz", "x-derivs",
              "x-makenewz", "bitwise");

  JsonWriter jw;
  jw.begin_object()
      .kv("table", "gradient")
      .kv("smoke", smoke)
      .kv("taxa", static_cast<double>(pa.taxon_count()))
      .kv("patterns", static_cast<double>(pa.pattern_count()))
      .kv("edges", static_cast<double>(edges))
      .key("rows")
      .begin_array();

  int failures = 0;
  for (const GradientCase& c : cases) {
    const Measurement m = measure(c, pa, base_tree, reps);
    const double x_derivs = m.sweep > 0.0 ? m.loop_derivs / m.sweep : 0.0;
    const double x_makenewz =
        m.sweep > 0.0 ? m.loop_makenewz / m.sweep : 0.0;
    if (!m.derivs_bitwise) ++failures;
    std::printf("%-14s %-14s %14.4g %14.4g %14.4g %9.2f %9.2f %s\n", c.name,
                c.clock, m.sweep, m.loop_derivs, m.loop_makenewz, x_derivs,
                x_makenewz, m.derivs_bitwise ? "yes" : "NO (BUG)");
    jw.begin_object()
        .kv("case", c.name)
        .kv("clock", c.clock)
        .kv("sweep", m.sweep)
        .kv("loop_derivs", m.loop_derivs)
        .kv("loop_makenewz", m.loop_makenewz)
        .kv("speedup_derivs", x_derivs)
        .kv("speedup_makenewz", x_makenewz)
        .kv("derivs_bitwise", m.derivs_bitwise)
        .end_object();
  }
  jw.end_array().end_object();
  json.emit(jw.str());

  if (failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d case(s) where the per-edge derivative loop does "
                 "not match the sweep bitwise\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rxc::bench

int main(int argc, char** argv) {
  try {
    return rxc::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
