/// Table 3 (paper §5.2.3): the numerical-scaling conditional (8 hard-to-
/// predict conditions, ~45% of newview time) is cast to sign-magnitude
/// integer compares and vectorized, dropping to ~6%.  Paper: a further
/// 19-21% off Table 2.

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 3: + cast & vectorized scaling conditional",
          "paper: 49.3 / 230 / 460.43 / 917.09 s",
          rxc::core::Stage::kIntCond,
          rxc::bench::standard_rows(49.3, 230.0, 460.43, 917.09),
      },
      &json);
}
