/// Table 3 (paper §5.2.3): the numerical-scaling conditional (8 hard-to-
/// predict conditions, ~45% of newview time) is cast to sign-magnitude
/// integer compares and vectorized, dropping to ~6%.  Paper: a further
/// 19-21% off Table 2.

#include "table_common.h"

int main() {
  return rxc::bench::run_table({
      "Table 3: + cast & vectorized scaling conditional",
      "paper: 49.3 / 230 / 460.43 / 917.09 s",
      rxc::core::Stage::kIntCond,
      rxc::bench::standard_rows(49.3, 230.0, 460.43, 917.09),
  });
}
