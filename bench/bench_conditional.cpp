/// Microbenchmark for paper §5.2.3: the numerical-scaling guard as (a) the
/// original floating-point conjunction of 8 conditions, vs (b) the
/// sign-magnitude integer-cast, branch-free form.  The paper measured the
/// guard at 45% of newview() before the transformation and 6% after.
/// Adversarial inputs hover near the threshold so the branchy form
/// mispredicts.

#include <benchmark/benchmark.h>

#include "likelihood/scaling.h"
#include "support/rng.h"

namespace {

using rxc::lh::kMinLikelihood;

/// Vectors straddling the scaling threshold unpredictably.
std::vector<double> adversarial(std::size_t n) {
  rxc::Rng rng(7);
  std::vector<double> v(n * 4);
  for (double& x : v)
    x = kMinLikelihood * (rng.uniform() < 0.5 ? 0.5 : 2.0) *
        (0.5 + rng.uniform());
  return v;
}

void BM_CondFloatBranch(benchmark::State& state) {
  const auto v = adversarial(4096);
  for (auto _ : state) {
    int count = 0;
    for (std::size_t i = 0; i < v.size(); i += 4)
      count += rxc::lh::needs_scaling_fp(v.data() + i, 4);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CondFloatBranch);

void BM_CondIntCast(benchmark::State& state) {
  const auto v = adversarial(4096);
  for (auto _ : state) {
    int count = 0;
    for (std::size_t i = 0; i < v.size(); i += 4)
      count += rxc::lh::needs_scaling_int(v.data() + i, 4);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CondIntCast);

/// Typical (non-adversarial) data: almost never scales — the branchy form
/// predicts well here, shrinking the gap.  Comparing both regimes shows
/// why the paper calls the guard "a challenge for a branch predictor".
void BM_CondFloatBranchPredictable(benchmark::State& state) {
  rxc::Rng rng(9);
  std::vector<double> v(4096 * 4);
  for (double& x : v) x = 0.1 + rng.uniform();
  for (auto _ : state) {
    int count = 0;
    for (std::size_t i = 0; i < v.size(); i += 4)
      count += rxc::lh::needs_scaling_fp(v.data() + i, 4);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CondFloatBranchPredictable);

}  // namespace

BENCHMARK_MAIN();
