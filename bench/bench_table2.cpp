/// Table 2 (paper §5.2.2): the libm exp() — 50% of naive SPE newview time
/// at ~150 calls per invocation — is replaced with the Cell-SDK numerical
/// exponential.  Paper: 37-41% faster than Table 1(b).

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 2: + Cell-SDK exp() on the SPE",
          "paper: 62.8 / 285.25 / 572.92 / 1138.5 s",
          rxc::core::Stage::kFastExp,
          rxc::bench::standard_rows(62.8, 285.25, 572.92, 1138.5),
      },
      &json);
}
