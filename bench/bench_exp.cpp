/// Microbenchmark for paper §5.2.2: libm exp() vs the SDK-style numerical
/// exponential, on the input range the likelihood kernels produce
/// (lambda * rate * branch, all <= 0).  On the real 2006 SPE the swap cut
/// newview() roughly in half because the SPE libm exp was a slow, branchy
/// software routine.  Modern glibc's exp is itself a tight polynomial, so
/// on the host the two are comparable — this bench documents the per-call
/// cost scale; the SPE-era gap is carried by the simulator's cost model
/// (cell/cost_params.h: 2140 vs 60 cycles).

#include <benchmark/benchmark.h>

#include <cmath>

#include "likelihood/fast_exp.h"
#include "support/rng.h"

namespace {

std::vector<double> kernel_inputs(std::size_t n) {
  rxc::Rng rng(42);
  std::vector<double> xs(n);
  for (double& x : xs) x = -rxc::lh::kExpDomain * rng.uniform();
  return xs;
}

void BM_ExpLibm(benchmark::State& state) {
  const auto xs = kernel_inputs(4096);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += rxc::lh::exp_libm(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ExpLibm);

void BM_ExpSdk(benchmark::State& state) {
  const auto xs = kernel_inputs(4096);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += rxc::lh::exp_sdk(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ExpSdk);

/// The per-newview usage pattern: 150 calls (2 matrices x 25 categories x
/// 3 non-zero eigenvalues), as the paper counts them.
void BM_ExpPerNewviewInvocation(benchmark::State& state) {
  const auto xs = kernel_inputs(150);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += rxc::lh::exp_sdk(x);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ExpPerNewviewInvocation);

}  // namespace

BENCHMARK_MAIN();
