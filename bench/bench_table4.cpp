/// Table 4 (paper §5.2.4): double buffering overlaps the strip-mined
/// likelihood-vector DMA (11.4% idle time) with computation.  Paper: 4-5%
/// off Table 3.

#include "table_common.h"

int main(int argc, char** argv) {
  rxc::bench::JsonReport json =
      rxc::bench::JsonReport::from_args(argc, argv);
  return rxc::bench::run_table(
      {
          "Table 4: + double-buffered 2KB strip DMA",
          "paper: 47 / 220.92 / 441.39 / 884.47 s",
          rxc::core::Stage::kDoubleBuffer,
          rxc::bench::standard_rows(47.0, 220.92, 441.39, 884.47),
      },
      &json);
}
