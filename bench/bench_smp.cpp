/// Shared-memory (RAxML-OMP-style) loop-level parallel scaling on the HOST
/// — the paper's §3 notes that OpenMP loop parallelism "scales particularly
/// well on large memory-intensive multi-gene alignments".  Real wall time
/// of a full tree search with the pattern loops split over 1..N threads,
/// on a small (42_SC-like) and a large multi-gene-like alignment.

#include <cstdio>
#include <thread>

#include "likelihood/executor.h"
#include "search/search.h"
#include "seq/seqgen.h"
#include "support/stopwatch.h"

int main() {
  using namespace rxc;
  try {
    struct Workload {
      const char* label;
      std::size_t ntaxa, nsites;
    };
    const Workload loads[] = {
        {"42_SC-like (42 taxa x 1,167 nt)", 42, 1167},
        {"multi-gene-like (24 taxa x 20,000 nt)", 24, 20000},
    };
    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    std::printf("=== Host loop-level (SMP) scaling; %u hardware threads ===\n",
                hw);

    for (const auto& load : loads) {
      seq::SimOptions opt;
      opt.ntaxa = load.ntaxa;
      opt.nsites = load.nsites;
      opt.branch_scale = 0.05;
      opt.seed = 7;
      const auto sim = seq::simulate_alignment(opt);
      const auto pa = seq::PatternAlignment::compress(sim.alignment);
      std::printf("--- %s: %zu patterns ---\n", load.label,
                  pa.pattern_count());
      std::printf("%-10s %12s %10s\n", "threads", "wall[s]", "speedup");

      lh::EngineConfig cfg;
      cfg.mode = lh::RateMode::kGamma;
      cfg.categories = 4;
      search::SearchOptions so;
      so.max_rounds = 2;

      double base = 0.0;
      for (int threads = 1; threads <= static_cast<int>(hw); threads *= 2) {
        lh::LikelihoodEngine engine(pa, cfg);
        lh::ThreadedOptions topt;
        topt.threads = threads;
        topt.kernels = cfg.kernels;
        topt.chunk_patterns = 64;
        const auto exec =
            lh::make_executor(lh::ExecutorSpec::threaded_spec(topt));
        engine.set_executor(exec.get());
        Stopwatch sw;
        const auto result = search::run_search(pa, engine, so, 3);
        const double wall = sw.seconds();
        if (threads == 1) base = wall;
        std::printf("%-10d %12.3f %10.2f   (lnl %.2f)\n", threads, wall,
                    base / wall, result.log_likelihood);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
