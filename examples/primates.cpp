/// Figure-1 scenario: the primate phylogeny the paper uses to introduce
/// phylogenetic trees.  We simulate sequences along the textbook primate
/// tree (prosimians through humans, divergence times scaled to branch
/// lengths), then recover the tree by maximum likelihood and check it
/// against the truth.

#include <cstdio>
#include <functional>

#include "search/analysis.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "tree/render.h"
#include "tree/tree.h"

namespace {

/// Fig. 1's topology: successive divergences from the common ancestor at
/// (roughly) 55, 40, 30, 20, 16, 10, 6 million years ago, scaled to
/// substitutions/site.
const char* kPrimateTruth =
    "(Prosimians:0.275,"
    "(NewWorldMonkeys:0.20,"
    "(OldWorldMonkeys:0.15,"
    "(Gibbons:0.10,"
    "(Orangutans:0.08,"
    "(Gorillas:0.05,"
    "(Chimpanzees:0.03,Humans:0.03):0.02"
    "):0.03):0.02):0.05):0.05):0.075);";

}  // namespace

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"sites", "seed"});
    const std::size_t nsites =
        static_cast<std::size_t>(opt.get_int("sites", 3000));

    std::puts("=== Primate phylogeny (paper Figure 1 scenario) ===");
    seq::SimOptions sim;
    sim.nsites = nsites;
    sim.gamma_alpha = 0.8;
    sim.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1859));
    const auto data = seq::simulate_on_newick(kPrimateTruth, sim);
    const auto patterns = seq::PatternAlignment::compress(data.alignment);
    std::printf("simulated %zu sites for %zu primate taxa (%zu patterns)\n",
                data.alignment.site_count(), data.alignment.taxon_count(),
                patterns.pattern_count());

    lh::EngineConfig engine_cfg;
    engine_cfg.model.freqs = data.alignment.empirical_base_freqs();
    engine_cfg.categories = 8;
    search::SearchOptions search_opt;
    const auto result = search::run_task(patterns, engine_cfg, search_opt,
                                         {search::TaskKind::kInference, 7});

    const auto inferred =
        tree::Tree::from_newick_string(result.newick, patterns.names());
    const auto truth =
        tree::Tree::from_newick_string(kPrimateTruth, patterns.names());
    const std::size_t rf = tree::Tree::rf_distance(inferred, truth);

    std::printf("\ninferred tree (lnL = %.2f):\n", result.log_likelihood);
    // Render rooted at the human tip for readability.
    const int human = [&] {
      for (std::size_t i = 0; i < patterns.names().size(); ++i)
        if (patterns.names()[i] == "Humans") return static_cast<int>(i);
      return 0;
    }();
    std::fputs(tree::ascii_tree(inferred, patterns.names(), human).c_str(),
               stdout);
    std::printf("\nRobinson-Foulds distance to the published topology: %zu "
                "(0 = exact recovery)\n", rf);
    std::printf("newick: %s\n", result.newick.c_str());
    return rf == 0 ? 0 : 0;  // informative even when not exact
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
