/// Partitioned multi-gene analysis — the workload class the paper's §3
/// highlights ("large memory-intensive multi-gene alignments").  Two genes
/// are simulated under DIFFERENT substitution processes and concatenated;
/// the partitioned engine fits a separate model per gene (CAT for one,
/// GAMMA for the other) over a shared topology, and we compare against
/// fitting one homogeneous model to the concatenation.
///
/// Usage: multigene [--taxa N] [--gene1 SITES] [--gene2 SITES]

#include <cstdio>

#include "search/partitioned_search.h"
#include "search/search.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "support/stopwatch.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"taxa", "gene1", "gene2", "seed"});
    const std::size_t ntaxa = static_cast<std::size_t>(opt.get_int("taxa", 14));
    const std::size_t g1 = static_cast<std::size_t>(opt.get_int("gene1", 500));
    const std::size_t g2 = static_cast<std::size_t>(opt.get_int("gene2", 700));
    const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 5));

    // Two genes evolved along the SAME tree under different processes:
    // gene 1 AT-rich and fast, gene 2 GC-rich with strong rate
    // heterogeneity.
    seq::SimOptions sim1;
    sim1.ntaxa = ntaxa;
    sim1.nsites = g1;
    sim1.seed = seed;
    sim1.model = model::DnaModel::gtr({1.0, 4.0, 1.0, 1.0, 4.0, 1.0},
                                      {0.35, 0.15, 0.15, 0.35});
    sim1.gamma_alpha = 0.0;
    const auto gene1 = seq::simulate_alignment(sim1);

    seq::SimOptions sim2 = sim1;
    sim2.nsites = g2;
    sim2.model = model::DnaModel::gtr({2.0, 1.0, 0.5, 0.5, 1.0, 2.0},
                                      {0.15, 0.35, 0.35, 0.15});
    sim2.gamma_alpha = 0.4;
    // Re-simulate along the SAME topology via its Newick.
    const auto gene2 = seq::simulate_on_newick(gene1.true_tree_newick, sim2);

    // Concatenate.
    std::vector<io::SeqRecord> records = gene1.alignment.to_records();
    const auto records2 = gene2.alignment.to_records();
    for (std::size_t t = 0; t < records.size(); ++t)
      records[t].data += records2[t].data;
    const auto aln = seq::Alignment::from_records(records);
    const auto full = seq::PatternAlignment::compress(aln);
    std::printf("concatenated alignment: %zu taxa x %zu sites (%zu + %zu), "
                "%zu patterns\n",
                aln.taxon_count(), aln.site_count(), g1, g2,
                full.pattern_count());

    search::SearchOptions so;
    so.max_rounds = 3;
    Stopwatch timer;

    // (a) one homogeneous model over everything.
    lh::EngineConfig uniform;
    uniform.mode = lh::RateMode::kGamma;
    uniform.categories = 4;
    uniform.model.freqs = aln.empirical_base_freqs();
    lh::LikelihoodEngine plain(full, uniform);
    const auto single = search::run_search(full, plain, so, seed);
    std::printf("homogeneous GTR+G fit:  lnL %.2f\n", single.log_likelihood);

    // (b) per-gene models over the shared topology.
    lh::EngineConfig cfg1 = uniform;
    cfg1.mode = lh::RateMode::kCat;
    cfg1.categories = 8;
    lh::EngineConfig cfg2 = uniform;
    lh::PartitionedEngine part(aln, {{"gene1", 0, g1, cfg1},
                                     {"gene2", g1, g1 + g2, cfg2}});
    // Empirical frequencies per gene.
    const auto result = search::run_partitioned_search(full, part, so, seed);
    std::printf("partitioned fit:        lnL %.2f (2 models, shared tree)\n",
                result.log_likelihood);
    std::printf("wall %.1fs\n", timer.seconds());

    const auto truth = tree::Tree::from_newick_string(gene1.true_tree_newick,
                                                      full.names());
    std::printf("RF to generating tree: homogeneous %zu, partitioned %zu\n",
                tree::Tree::rf_distance(single.tree, truth),
                tree::Tree::rf_distance(result.tree, truth));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
