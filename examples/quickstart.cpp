/// Quickstart: the shortest path through the public API.
///
///   1. read (or simulate) a DNA alignment,
///   2. compress it to site patterns,
///   3. run one maximum-likelihood tree search,
///   4. print the tree and its log-likelihood.
///
/// Usage:
///   quickstart                      # simulated 16-taxon alignment
///   quickstart --phylip FILE        # your own PHYLIP alignment
///   quickstart --fasta FILE        # ... or FASTA
///   quickstart --seed N --radius R  # search knobs

#include <cstdio>
#include <iostream>

#include "io/phylip.h"
#include "search/analysis.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "support/stopwatch.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"phylip", "fasta", "seed", "radius", "categories"});

    // 1. Get an alignment.
    std::vector<io::SeqRecord> records;
    if (opt.has("phylip")) {
      records = io::read_phylip_file(opt.get("phylip", ""));
    } else if (opt.has("fasta")) {
      records = io::read_fasta_file(opt.get("fasta", ""));
    } else {
      std::puts("(no input given: simulating a 16-taxon, 800-site "
                "alignment under GTR+Gamma)");
      seq::SimOptions sim;
      sim.ntaxa = 16;
      sim.nsites = 800;
      sim.seed = 2026;
      records = seq::simulate_alignment(sim).alignment.to_records();
    }
    const auto alignment = seq::Alignment::from_records(records);

    // 2. Compress to site patterns (what the likelihood kernels iterate).
    const auto patterns = seq::PatternAlignment::compress(alignment);
    std::printf("alignment: %zu taxa x %zu sites -> %zu patterns\n",
                alignment.taxon_count(), alignment.site_count(),
                patterns.pattern_count());

    // 3. One ML search: GTR + CAT rate heterogeneity, randomized
    //    stepwise-addition start, lazy-SPR hill climbing.
    lh::EngineConfig engine_cfg;
    engine_cfg.model.freqs = alignment.empirical_base_freqs();
    engine_cfg.categories = static_cast<int>(opt.get_int("categories", 25));
    search::SearchOptions search_opt;
    search_opt.radius = static_cast<int>(opt.get_int("radius", 5));

    Stopwatch timer;
    const auto result = search::run_task(
        patterns, engine_cfg, search_opt,
        {search::TaskKind::kInference,
         static_cast<std::uint64_t>(opt.get_int("seed", 1))});

    // 4. Report.
    std::printf("log-likelihood: %.4f\n", result.log_likelihood);
    std::printf("search rounds: %d, accepted SPR moves: %llu\n",
                result.rounds,
                static_cast<unsigned long long>(result.accepted_moves));
    std::printf("kernel work: %llu newview / %llu evaluate / %llu "
                "branch-opt iterations\n",
                static_cast<unsigned long long>(result.counters.newview_calls),
                static_cast<unsigned long long>(result.counters.evaluate_calls),
                static_cast<unsigned long long>(result.counters.nr_calls));
    std::printf("wall time: %.2fs\n", timer.seconds());
    std::printf("best tree (Newick):\n%s\n", result.newick.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
