/// A full "publishable" analysis as the paper describes it (§3.1): several
/// independent inferences to find the best-known ML tree plus a set of
/// non-parametric bootstrap replicates to assign confidence values to its
/// internal branches — distributed over worker threads with the MPI-style
/// master-worker runtime (the same structure RAxML's MPI layer uses).
///
/// Usage: bootstrap_analysis [--inferences N] [--bootstraps N] [--ranks N]

#include <cstdio>
#include <map>
#include <sstream>

#include "mpirt/comm.h"
#include "mpirt/master_worker.h"
#include "search/analysis.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "support/stopwatch.h"
#include "tree/consensus.h"
#include "tree/tree.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"inferences", "bootstraps", "ranks", "taxa", "sites"});
    const std::size_t inferences =
        static_cast<std::size_t>(opt.get_int("inferences", 3));
    const std::size_t bootstraps =
        static_cast<std::size_t>(opt.get_int("bootstraps", 24));
    const int ranks = static_cast<int>(opt.get_int("ranks", 5));

    seq::SimOptions sim;
    sim.ntaxa = static_cast<std::size_t>(opt.get_int("taxa", 20));
    sim.nsites = static_cast<std::size_t>(opt.get_int("sites", 1000));
    sim.seed = 4242;
    const auto data = seq::simulate_alignment(sim);
    const auto patterns = seq::PatternAlignment::compress(data.alignment);
    std::printf("analysis: %zu inferences + %zu bootstraps on %zu taxa x "
                "%zu sites (%zu patterns), %d ranks\n",
                inferences, bootstraps, patterns.taxon_count(),
                patterns.site_count(), patterns.pattern_count(), ranks);

    const auto tasks = search::make_analysis(inferences, bootstraps);
    lh::EngineConfig engine_cfg;
    engine_cfg.categories = 8;
    const search::SearchOptions search_opt;

    // Master-worker over in-process ranks: workers return "lnl\nnewick".
    Stopwatch timer;
    std::vector<std::string> raw;
    mpirt::run_ranks(ranks, [&](int rank, mpirt::Comm& comm) {
      auto out = mpirt::master_worker_run(
          comm, rank, tasks.size(), [&](std::size_t index) {
            const auto r = search::run_task(patterns, engine_cfg, search_opt,
                                            tasks[index]);
            std::ostringstream payload;
            payload.precision(17);
            payload << r.log_likelihood << '\n' << r.newick;
            return payload.str();
          });
      if (rank == 0) raw = std::move(out);
    });
    std::printf("all tasks done in %.1fs wall\n", timer.seconds());

    // Decode results.
    std::vector<search::TaskResult> results(tasks.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::istringstream in(raw[i]);
      in >> results[i].log_likelihood;
      in.ignore();
      std::getline(in, results[i].newick);
    }

    // Best-known ML tree among the inferences.
    const std::size_t best = search::best_inference(results, tasks);
    std::printf("best-known ML tree: inference #%zu, lnL = %.4f\n", best,
                results[best].log_likelihood);
    const auto best_tree =
        tree::Tree::from_newick_string(results[best].newick, patterns.names());

    // Bootstrap support and consensus, via the library's summarizers.
    std::vector<tree::Tree> replicates;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (tasks[i].kind == search::TaskKind::kBootstrap)
        replicates.push_back(tree::Tree::from_newick_string(
            results[i].newick, patterns.names()));

    const auto support = tree::split_support(best_tree, replicates);
    std::printf("bootstrap support over %zu replicates (internal "
                "branches of the best tree):\n", replicates.size());
    double min_support = 1.0, mean = 0.0;
    for (std::size_t s = 0; s < support.size(); ++s) {
      std::printf("  split %2zu: %.2f\n", s, support[s]);
      min_support = std::min(min_support, support[s]);
      mean += support[s];
    }
    if (!support.empty())
      std::printf("mean support %.2f, weakest branch %.2f\n",
                  mean / static_cast<double>(support.size()), min_support);

    const auto majority = tree::majority_splits(replicates);
    std::printf("majority-rule consensus: %zu splits above 50%%\n",
                majority.size());
    std::printf("best tree with support labels:\n%s\n",
                tree::newick_with_support(best_tree, patterns.names(),
                                          replicates)
                    .c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
