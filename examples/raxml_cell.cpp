/// raxml_cell — the command-line face of the library, in the spirit of the
/// original RAxML binary: read an alignment, run multiple ML inferences
/// plus bootstraps (checkpointed), write the best tree with bootstrap
/// support values, and optionally replay the whole analysis on the
/// simulated Cell to report virtual time per optimization stage.
///
/// Examples:
///   raxml_cell --phylip data.phy --inferences 5 --bootstraps 100 \
///              --checkpoint run1.ckp --out run1
///   raxml_cell --demo --bootstraps 16 --cell mgps
///
/// Options:
///   --phylip FILE | --fasta FILE | --demo     input (demo = synthetic 42_SC)
///   --model jc|k80|hky|gtr                    substitution model (def. gtr)
///   --mode cat|gamma  --categories N  --alpha X
///   --inferences N  --bootstraps N  --seed N
///   --radius N                                 SPR rearrangement radius
///   --threads N                                loop-level host parallelism
///   --opt-model                                ML model-parameter optimization
///   --checkpoint FILE                          resume/persist task results
///   --out PREFIX                               write PREFIX.best.tree,
///                                              PREFIX.support.tree
///   --evaluate FILE                            no search: optimize branch
///                                              lengths + lnL of this tree
///                                              (RAxML's -f e mode)
///   --cell off|naive|edtlp|mgps                also simulate on the Cell

#include <cstdio>
#include <fstream>

#include "core/port.h"
#include "io/phylip.h"
#include "io/tree_list.h"
#include "likelihood/executor.h"
#include "obs/obs.h"
#include "search/checkpoint.h"
#include "search/model_opt.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "support/stopwatch.h"
#include "tree/consensus.h"

namespace {

rxc::model::DnaModel parse_model(const std::string& name,
                                 const rxc::seq::Alignment& aln) {
  using rxc::model::DnaModel;
  if (name == "jc") return DnaModel::jc69();
  if (name == "k80") return DnaModel::k80(2.0);
  if (name == "hky")
    return DnaModel::hky85(2.0, aln.empirical_base_freqs());
  if (name == "gtr") {
    DnaModel m = DnaModel::gtr({1, 1, 1, 1, 1, 1}, aln.empirical_base_freqs());
    return m;
  }
  throw rxc::Error("unknown --model '" + name + "' (jc|k80|hky|gtr)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    // RXC_TRACE=off|summary|json:<path> and RXC_LOG=... take effect here;
    // the trace (wall spans + Cell virtual timeline) is flushed at exit.
    obs::init_from_env();
    const Options opt(argc, argv);
    opt.check_known({"phylip", "fasta", "demo", "model", "mode", "categories",
                     "alpha", "inferences", "bootstraps", "seed", "radius",
                     "threads", "opt-model", "checkpoint", "out", "cell",
                     "evaluate", "support-from", "tree"});

    // --- input ----------------------------------------------------------
    std::vector<io::SeqRecord> records;
    if (opt.has("phylip")) {
      records = io::read_phylip_file(opt.get("phylip", ""));
    } else if (opt.has("fasta")) {
      records = io::read_fasta_file(opt.get("fasta", ""));
    } else {
      std::puts("(--demo: synthetic 42_SC workload)");
      records = seq::make_42sc().alignment.to_records();
    }
    const auto alignment = seq::Alignment::from_records(records);
    const auto patterns = seq::PatternAlignment::compress(alignment);
    std::printf("alignment: %zu taxa x %zu sites -> %zu patterns\n",
                alignment.taxon_count(), alignment.site_count(),
                patterns.pattern_count());

    // --- configuration -----------------------------------------------------
    lh::EngineConfig engine_cfg;
    engine_cfg.model = parse_model(opt.get("model", "gtr"), alignment);
    const std::string mode = opt.get("mode", "cat");
    RXC_REQUIRE(mode == "cat" || mode == "gamma", "--mode must be cat|gamma");
    engine_cfg.mode =
        mode == "cat" ? lh::RateMode::kCat : lh::RateMode::kGamma;
    engine_cfg.categories = static_cast<int>(
        opt.get_int("categories", mode == "cat" ? 25 : 4));
    engine_cfg.alpha = opt.get_double("alpha", 1.0);

    search::SearchOptions search_opt;
    search_opt.radius = static_cast<int>(opt.get_int("radius", 5));

    // Support-annotation mode: best tree + an existing replicate-tree list
    // in, support-labeled Newick out (no likelihood computation).
    if (opt.has("support-from")) {
      RXC_REQUIRE(opt.has("tree"), "--support-from requires --tree FILE");
      std::ifstream tin(opt.get("tree", ""));
      RXC_REQUIRE(tin.good(), "cannot open --tree file");
      std::string best_newick((std::istreambuf_iterator<char>(tin)),
                              std::istreambuf_iterator<char>());
      const auto best_tree =
          tree::Tree::from_newick_string(best_newick, patterns.names());
      std::vector<tree::Tree> replicates;
      for (const auto& n :
           io::read_tree_list_file(opt.get("support-from", "")))
        replicates.push_back(
            tree::Tree::from_newick_string(n, patterns.names()));
      std::printf("%s\n",
                  tree::newick_with_support(best_tree, patterns.names(),
                                            replicates)
                      .c_str());
      return 0;
    }

    // Evaluate-only mode: read a user tree, optimize its branch lengths
    // (and optionally the model), report the log-likelihood, and exit.
    if (opt.has("evaluate")) {
      std::ifstream in(opt.get("evaluate", ""));
      RXC_REQUIRE(in.good(), "cannot open --evaluate tree file");
      std::string newick((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
      auto user_tree =
          tree::Tree::from_newick_string(newick, patterns.names());
      lh::LikelihoodEngine engine(patterns, engine_cfg);
      engine.set_tree(&user_tree);
      double lnl = engine.optimize_all_branches(4);
      if (opt.get_bool("opt-model", false))
        lnl = search::optimize_model(engine);
      std::printf("evaluated tree: lnL %.6f (branch lengths optimized)\n",
                  lnl);
      std::printf("%s\n", user_tree.to_newick(patterns.names()).c_str());
      engine.set_tree(nullptr);
      return 0;
    }

    const std::size_t inferences =
        static_cast<std::size_t>(opt.get_int("inferences", 3));
    const std::size_t bootstraps =
        static_cast<std::size_t>(opt.get_int("bootstraps", 20));
    const auto tasks = search::make_analysis(
        inferences, bootstraps,
        static_cast<std::uint64_t>(opt.get_int("seed", 1)));

    // --- run -----------------------------------------------------------------
    Stopwatch wall;
    std::vector<search::TaskResult> results;
    if (opt.has("checkpoint")) {
      results = search::run_analysis_checkpointed(
          patterns, engine_cfg, search_opt, tasks, opt.get("checkpoint", ""));
    } else {
      const int threads = static_cast<int>(opt.get_int("threads", 1));
      lh::ExecutorSpec spec;
      if (threads > 1) {
        lh::ThreadedOptions topt;
        topt.threads = threads;
        topt.kernels = engine_cfg.kernels;
        spec = lh::ExecutorSpec::threaded_spec(topt);
      } else {
        spec = lh::ExecutorSpec::host_spec(lh::HostOptions{engine_cfg.kernels});
      }
      const auto exec = lh::make_executor(spec);
      results.reserve(tasks.size());
      for (const auto& task : tasks) {
        results.push_back(search::run_task(patterns, engine_cfg, search_opt,
                                           task,
                                           threads > 1 ? exec.get()
                                                       : nullptr));
        std::printf("  task %zu/%zu (%s, seed %llu): lnL %.4f\n",
                    results.size(), tasks.size(),
                    task.kind == search::TaskKind::kBootstrap ? "bootstrap"
                                                              : "inference",
                    static_cast<unsigned long long>(task.seed),
                    results.back().log_likelihood);
      }
    }

    const std::size_t best = search::best_inference(results, tasks);
    auto best_tree =
        tree::Tree::from_newick_string(results[best].newick, patterns.names());
    double best_lnl = results[best].log_likelihood;
    std::printf("best-known ML tree: task %zu, lnL %.4f (wall %.1fs)\n", best,
                best_lnl, wall.seconds());

    // Optional ML model-parameter polish on the best tree.
    if (opt.get_bool("opt-model", false)) {
      lh::LikelihoodEngine engine(patterns, engine_cfg);
      engine.set_tree(&best_tree);
      best_lnl = search::optimize_model(engine);
      std::printf("after model optimization: lnL %.4f", best_lnl);
      if (engine_cfg.mode == lh::RateMode::kGamma)
        std::printf(" (alpha-hat %.3f)", engine.gamma_alpha());
      std::printf("\n");
      engine.set_tree(nullptr);
    }

    // Bootstrap support.
    std::vector<tree::Tree> replicates;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (tasks[i].kind == search::TaskKind::kBootstrap)
        replicates.push_back(tree::Tree::from_newick_string(
            results[i].newick, patterns.names()));

    std::string support_newick;
    if (!replicates.empty()) {
      support_newick =
          tree::newick_with_support(best_tree, patterns.names(), replicates);
      std::printf("bootstrap replicates: %zu; majority-rule splits: %zu\n",
                  replicates.size(),
                  tree::majority_splits(replicates).size());
    }

    // --- outputs ---------------------------------------------------------------
    if (opt.has("out")) {
      const std::string prefix = opt.get("out", "rxc");
      {
        std::ofstream f(prefix + ".best.tree");
        f << best_tree.to_newick(patterns.names()) << '\n';
      }
      if (!support_newick.empty()) {
        std::ofstream f(prefix + ".support.tree");
        f << support_newick << '\n';
        // All replicate trees, one per line (RAxML_bootstrap-style).
        std::ofstream reps(prefix + ".bootstraps.trees");
        for (std::size_t i = 0; i < tasks.size(); ++i)
          if (tasks[i].kind == search::TaskKind::kBootstrap)
            reps << results[i].newick << '\n';
      }
      std::printf("wrote %s.best.tree%s\n", prefix.c_str(),
                  support_newick.empty()
                      ? ""
                      : ", .support.tree and .bootstraps.trees");
    } else {
      std::printf("best tree: %s\n",
                  best_tree.to_newick(patterns.names()).c_str());
    }

    // --- optional Cell simulation ------------------------------------------------
    const std::string cell = opt.get("cell", "off");
    if (cell != "off") {
      core::CellRunConfig cfg;
      cfg.stage = core::Stage::kOffloadAll;
      cfg.engine = engine_cfg;
      cfg.search = search_opt;
      cfg.trace_samples = 4;
      if (cell == "naive") {
        cfg.scheduler = core::SchedulerModel::kNaiveMpi;
        cfg.workers = 2;
      } else if (cell == "edtlp") {
        cfg.scheduler = core::SchedulerModel::kEdtlp;
      } else if (cell == "mgps") {
        cfg.scheduler = core::SchedulerModel::kMgps;
      } else {
        throw Error("unknown --cell '" + cell + "' (off|naive|edtlp|mgps)");
      }
      const auto run = core::run_on_cell(patterns, cfg, tasks);
      std::printf("simulated Cell (%s, all optimizations): %.3f virtual s, "
                  "%llu offload signals\n",
                  cell.c_str(), run.virtual_seconds,
                  static_cast<unsigned long long>(
                      run.schedule.signaled_offloads));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
