/// Amino-acid analysis: the paper's RAxML analyzes "alignments of DNA or
/// AA sequences" — this example runs the 20-state path end to end:
/// simulate a protein alignment, infer the ML tree under POISSON+Gamma
/// (or any PAML-format empirical matrix such as WAG via --model FILE.dat),
/// optimize the Gamma shape by Brent's method, and compare against the
/// generating tree.
///
/// Usage: protein_phylogeny [--taxa N] [--sites N] [--model wag.dat]

#include <cstdio>

#include "search/model_opt.h"
#include "search/protein_search.h"
#include "seq/aa_alignment.h"
#include "support/options.h"
#include "support/stopwatch.h"
#include "tree/tree.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"taxa", "sites", "model", "seed"});

    seq::AaSimOptions sim;
    sim.ntaxa = static_cast<std::size_t>(opt.get_int("taxa", 12));
    sim.nsites = static_cast<std::size_t>(opt.get_int("sites", 400));
    sim.gamma_alpha = 0.7;
    sim.branch_scale = 0.12;
    sim.seed = static_cast<std::uint64_t>(opt.get_int("seed", 11));
    if (opt.has("model"))
      sim.model = model::AaModel::from_paml_dat_file(opt.get("model", ""));
    const auto data = seq::simulate_aa_alignment(sim);
    const auto patterns = seq::AaPatternAlignment::compress(data.alignment);
    std::printf("protein alignment: %zu taxa x %zu sites -> %zu patterns "
                "(model %s)\n",
                patterns.taxon_count(), patterns.site_count(),
                patterns.pattern_count(), sim.model.name.c_str());

    lh::ProteinEngineConfig engine_cfg;
    engine_cfg.model = sim.model;
    engine_cfg.model.freqs = data.alignment.empirical_freqs();
    engine_cfg.mode = lh::RateMode::kGamma;
    engine_cfg.categories = 4;
    engine_cfg.alpha = 1.0;

    Stopwatch timer;
    search::SearchOptions search_opt;
    lh::ProteinEngine engine(patterns, engine_cfg);
    auto result = search::run_protein_search(patterns, engine, search_opt,
                                             sim.seed);

    // Re-attach the found tree and polish the Gamma shape by ML.
    engine.set_tree(&result.tree);
    const double lnl_before_alpha = result.log_likelihood;
    const double lnl = search::optimize_gamma_alpha(engine);
    std::printf("search lnL %.4f; after alpha optimization %.4f "
                "(alpha-hat = %.3f, simulated with 0.7)\n",
                lnl_before_alpha, lnl, engine.gamma_alpha());
    engine.set_tree(nullptr);

    const auto truth = tree::Tree::from_newick_string(data.true_tree_newick,
                                                      patterns.names());
    std::printf("Robinson-Foulds distance to the generating tree: %zu\n",
                tree::Tree::rf_distance(result.tree, truth));
    std::printf("wall %.2fs\ntree: %s\n", timer.seconds(),
                result.tree.to_newick(patterns.names()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
