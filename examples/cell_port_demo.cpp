/// The Cell port in action: run the same bootstrap analysis on the
/// simulated Cell Broadband Engine at three points of the paper's story —
/// the PPE-only baseline, the naive newview() offload (slower!), and the
/// fully optimized MGPS configuration — and show that the virtual time
/// moves exactly as §5 describes while the RESULTS stay bit-for-bit
/// comparable.
///
/// Usage: cell_port_demo [--bootstraps N]

#include <cstdio>

#include "core/port.h"
#include "seq/seqgen.h"
#include "support/options.h"
#include "support/str.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"bootstraps"});
    const std::size_t bootstraps =
        static_cast<std::size_t>(opt.get_int("bootstraps", 8));

    const auto data = seq::make_42sc();
    const auto patterns = seq::PatternAlignment::compress(data.alignment);
    std::printf("workload: synthetic 42_SC (%zu taxa x %zu sites, %zu "
                "patterns), %zu bootstraps\n\n",
                patterns.taxon_count(), patterns.site_count(),
                patterns.pattern_count(), bootstraps);
    const auto tasks = search::make_analysis(0, bootstraps);

    struct Config {
      const char* label;
      core::Stage stage;
      core::SchedulerModel scheduler;
      int workers;
    };
    const Config configs[] = {
        {"PPE only (Table 1a)", core::Stage::kPpeOnly,
         core::SchedulerModel::kNaiveMpi, 2},
        {"naive newview offload (Table 1b)", core::Stage::kOffloadNewview,
         core::SchedulerModel::kNaiveMpi, 2},
        {"all optimizations, naive scheduler (Table 7)",
         core::Stage::kOffloadAll, core::SchedulerModel::kNaiveMpi, 2},
        {"all optimizations + MGPS (Table 8)", core::Stage::kOffloadAll,
         core::SchedulerModel::kMgps, 2},
    };

    double first_lnl = 0.0;
    for (const Config& c : configs) {
      core::CellRunConfig cfg;
      cfg.stage = c.stage;
      cfg.scheduler = c.scheduler;
      cfg.workers = c.workers;
      cfg.trace_samples = 3;
      const auto r = core::run_on_cell(patterns, cfg, tasks);
      if (first_lnl == 0.0) first_lnl = r.task_log_likelihoods.at(0);
      std::printf("%-48s %10.3f virtual s   (task-0 lnL %.4f)\n", c.label,
                  r.virtual_seconds, r.task_log_likelihoods.at(0));
      std::printf("  %s signaled offloads, %s PPE context switches, "
                  "SPE busy %s Mcycles\n",
                  with_thousands(r.schedule.signaled_offloads).c_str(),
                  with_thousands(r.schedule.context_switches).c_str(),
                  fixed(r.schedule.spe_busy / 1e6, 1).c_str());
      std::printf("  profile: newview %.1f%%  makenewz %.1f%%  evaluate "
                  "%.1f%%   (paper gprof: 76.8 / 19.2 / 2.4)\n",
                  100.0 * r.profile.share(core::KernelKind::kNewview),
                  100.0 * (r.profile.share(core::KernelKind::kSumtable) +
                           r.profile.share(core::KernelKind::kNrDerivatives)),
                  100.0 * r.profile.share(core::KernelKind::kEvaluate));
      // The paper's invariant: optimizations change time, never results.
      if (std::abs(r.task_log_likelihoods.at(0) - first_lnl) > 1e-6) {
        std::fprintf(stderr, "RESULT MISMATCH — simulator bug!\n");
        return 1;
      }
    }
    std::printf("\nall configurations produced identical task results — "
                "only the (virtual) clock moved.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
