// Tests for src/serve: the multi-tenant inference service.  The load-bearing
// guarantees:
//
//  * admission — bounded queue, priority order, backpressure observable by
//    clients, requeue exempt (preempted work must never bounce);
//  * suspend/resume — a job preempted at any checkpoint boundary resumes on
//    a DIFFERENT device through the serialized checkpoint text and finishes
//    bitwise-identical to an uninterrupted run;
//  * resilience — an injected device fault (trap-before-mutate verified)
//    costs one retry from the last checkpoint, not the job, not the device;
//  * the soak: a mixed-priority batch over a 4-device simulated-Cell pool
//    with faults armed and a sub-deadline job, every job terminal, every
//    completed lnL bitwise equal to a direct single-engine run, metrics in
//    the obs registry — with the happens-before race detector fatal.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyze.h"
#include "cell/device_model.h"
#include "core/spe_executor.h"
#include "obs/obs.h"
#include "search/analysis.h"
#include "search/checkpoint.h"
#include "seq/seqgen.h"
#include "likelihood/registry.h"
#include "serve/admission.h"
#include "serve/device_pool.h"
#include "serve/ndjson.h"
#include "serve/server.h"

using namespace rxc;

namespace {

/// Job specs the tests submit; model jc + fixed options so the direct
/// reference runs below replicate the server's compilation exactly.
serve::JobSpec make_spec(const std::string& id, std::uint64_t sim_seed,
                         std::size_t inferences, std::size_t bootstraps,
                         int priority = 0) {
  serve::JobSpec spec;
  spec.id = id;
  spec.priority = priority;
  spec.workload.sim_taxa = 6;
  spec.workload.sim_sites = 60;
  spec.workload.sim_seed = sim_seed;
  spec.model = "jc";
  spec.rate_mode = "cat";
  spec.categories = 2;
  spec.inferences = inferences;
  spec.bootstraps = bootstraps;
  spec.seed = 1;
  spec.max_rounds = 1;
  return spec;
}

/// What serve::Server::Job::compile() produces for make_spec specs.
struct DirectWorkload {
  seq::PatternAlignment pa;
  lh::EngineConfig ec;
  search::SearchOptions so;
  std::vector<search::AnalysisTask> tasks;
};

DirectWorkload compile_direct(const serve::JobSpec& spec) {
  seq::SimOptions opt;
  opt.ntaxa = spec.workload.sim_taxa;
  opt.nsites = spec.workload.sim_sites;
  opt.seed = spec.workload.sim_seed;
  lh::EngineConfig ec;
  ec.model = model::DnaModel::jc69();
  ec.mode = lh::RateMode::kCat;
  ec.categories = spec.categories;
  search::SearchOptions so;
  so.radius = spec.radius;
  so.max_rounds = spec.max_rounds;
  so.epsilon = spec.epsilon;
  return {seq::PatternAlignment::compress(
              seq::simulate_alignment(opt).alignment),
          ec, so,
          search::make_analysis(spec.inferences, spec.bootstraps, spec.seed)};
}

std::vector<lh::ExecutorSpec> cell_pool_specs(int devices) {
  return std::vector<lh::ExecutorSpec>(
      static_cast<std::size_t>(devices),
      core::cell_executor_spec(core::Stage::kOffloadAll));
}

/// Best lnL/newick of a direct single-engine run on a fresh Cell executor
/// of the pool's spec — the bitwise reference for server results.
std::pair<double, std::string> direct_best(const serve::JobSpec& spec) {
  const DirectWorkload w = compile_direct(spec);
  const auto exec =
      lh::make_executor(core::cell_executor_spec(core::Stage::kOffloadAll));
  std::vector<search::TaskResult> results;
  for (const auto& task : w.tasks)
    results.push_back(run_task(w.pa, w.ec, w.so, task, exec.get()));
  const bool has_inf =
      std::any_of(w.tasks.begin(), w.tasks.end(), [](const auto& t) {
        return t.kind == search::TaskKind::kInference;
      });
  std::size_t best = 0;
  if (has_inf) {
    best = search::best_inference(results, w.tasks);
  } else {
    for (std::size_t i = 1; i < results.size(); ++i)
      if (results[i].log_likelihood > results[best].log_likelihood) best = i;
  }
  return {results[best].log_likelihood, results[best].newick};
}

}  // namespace

// --- AdmissionQueue ---------------------------------------------------------

// NOLINTBEGIN(bugprone-unchecked-optional-access): pop().value() throwing
// bad_optional_access on an unexpectedly empty queue IS the failure signal
// these assertions rely on — gtest reports the throw as the test failure.
TEST(Admission, PriorityOrderFifoWithinClass) {
  serve::AdmissionQueue<int> q(8);
  EXPECT_TRUE(q.try_submit(0, 1));
  EXPECT_TRUE(q.try_submit(5, 2));
  EXPECT_TRUE(q.try_submit(0, 3));
  EXPECT_TRUE(q.try_submit(5, 4));
  EXPECT_TRUE(q.try_submit(-3, 5));
  EXPECT_EQ(q.pop().value(), 2);  // priority 5, first in
  EXPECT_EQ(q.pop().value(), 4);  // priority 5, second in
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 5);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(Admission, BackpressureAndRequeueExemption) {
  serve::AdmissionQueue<int> q(2);
  EXPECT_TRUE(q.try_submit(0, 1));
  EXPECT_TRUE(q.try_submit(0, 2));
  EXPECT_FALSE(q.try_submit(0, 3));  // full: client sees backpressure
  q.requeue(9, 4);                   // server path ignores the bound
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_THROW(serve::AdmissionQueue<int>(0), Error);
}

TEST(Admission, HasWaitingAboveIsStrict) {
  serve::AdmissionQueue<int> q(4);
  EXPECT_FALSE(q.has_waiting_above(0));
  q.requeue(3, 1);
  EXPECT_TRUE(q.has_waiting_above(0));
  EXPECT_TRUE(q.has_waiting_above(2));
  EXPECT_FALSE(q.has_waiting_above(3));  // equal priority never preempts
  EXPECT_FALSE(q.has_waiting_above(7));
}

TEST(Admission, CloseEndsStreamButRequeueRevives) {
  serve::AdmissionQueue<int> q(4);
  q.requeue(0, 1);
  q.close();
  EXPECT_FALSE(q.try_submit(0, 2));   // no client submissions after close
  EXPECT_EQ(q.pop().value(), 1);      // drain continues
  // An in-flight job may still requeue after close (preemption/retry); the
  // queue is only abandoned empty.
  q.requeue(0, 3);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
}
// NOLINTEND(bugprone-unchecked-optional-access)

// --- NDJSON -----------------------------------------------------------------

TEST(Ndjson, ParsesValuesAndEscapes) {
  const auto v = serve::parse_json(
      R"({"s":"a\"b\u0041\n","n":-2.5e2,"t":true,"z":null,"arr":[1,{"k":2}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "a\"bA\n");
  EXPECT_EQ(v.find("n")->as_number(), -250.0);
  EXPECT_TRUE(v.find("t")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_EQ(v.find("arr")->array.size(), 2u);
  EXPECT_EQ(v.find("arr")->array[1].find("k")->as_number(), 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Ndjson, RejectsMalformedDocuments) {
  EXPECT_THROW(serve::parse_json("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW(serve::parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW(serve::parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(serve::parse_json("{\"a\":1e}"), ParseError);
  EXPECT_THROW(serve::parse_json("nul"), ParseError);
  EXPECT_THROW(serve::parse_json("\"\\q\""), ParseError);
  EXPECT_THROW(serve::parse_json(std::string(100, '[')), ParseError);
}

TEST(Ndjson, JobSpecRoundTrip) {
  const auto spec = serve::job_spec_from_json(
      R"({"id":"j1","priority":7,"deadline_ms":125.5,"sim_taxa":10,)"
      R"("sim_sites":200,"model":"jc","mode":"gamma","categories":4,)"
      R"("inferences":2,"bootstraps":3,"seed":11,"max_rounds":2})");
  EXPECT_EQ(spec.id, "j1");
  EXPECT_EQ(spec.priority, 7);
  EXPECT_EQ(spec.deadline_ms, 125.5);
  EXPECT_EQ(spec.workload.sim_taxa, 10u);
  EXPECT_EQ(spec.rate_mode, "gamma");
  EXPECT_EQ(spec.inferences, 2u);
  EXPECT_EQ(spec.bootstraps, 3u);
  EXPECT_EQ(spec.seed, 11u);

  EXPECT_THROW(serve::job_spec_from_json(R"({"priority":1})"), ParseError);
  EXPECT_THROW(serve::job_spec_from_json(R"({"id":"a","bogus":1})"),
               ParseError);
  EXPECT_THROW(serve::job_spec_from_json(R"({"id":"a","priority":"high"})"),
               ParseError);
  EXPECT_THROW(
      serve::job_spec_from_json(R"({"id":"a","inferences":0,"bootstraps":0})"),
      ParseError);
  EXPECT_THROW(serve::job_spec_from_json("[1,2]"), ParseError);
}

TEST(Ndjson, ResultRecordShape) {
  serve::JobResult r;
  r.id = "j\"1";
  r.state = serve::JobState::kCompleted;
  r.best_lnl = -123.456;
  r.best_newick = "(a,b);";
  r.tasks_total = 3;
  r.tasks_completed = 3;
  const std::string line = serve::job_result_to_json(r);
  const auto v = serve::parse_json(line);  // parser/writer agree
  EXPECT_EQ(v.find("id")->as_string(), "j\"1");
  EXPECT_EQ(v.find("state")->as_string(), "completed");
  EXPECT_EQ(v.find("best_lnl")->as_number(), -123.456);
  EXPECT_EQ(v.find("tasks_total")->as_number(), 3.0);
  EXPECT_EQ(v.find("error"), nullptr);  // empty error omitted
}

// --- device pool ------------------------------------------------------------

TEST(DevicePool, InjectedFaultTrapsAndDeviceSurvives) {
  serve::DevicePool pool(cell_pool_specs(1));
  serve::Device& dev = pool.device(0);
  ASSERT_TRUE(dev.is_cell());

  const auto spec = make_spec("f", 21, 1, 0);
  const DirectWorkload w = compile_direct(spec);

  dev.arm_fault(cell::Fault::kDmaOversize, 1);
  EXPECT_THROW(dev.begin_step(), HardwareError);
  EXPECT_EQ(dev.faults(), 1u);

  // The trap-before-mutate contract held (begin_step verified it), so the
  // SAME device must now produce bitwise-reference results.
  dev.begin_step();  // disarmed: no throw
  const auto on_device = run_task(w.pa, w.ec, w.so, w.tasks[0], &dev.executor());
  const auto exec =
      lh::make_executor(core::cell_executor_spec(core::Stage::kOffloadAll));
  const auto fresh = run_task(w.pa, w.ec, w.so, w.tasks[0], exec.get());
  EXPECT_EQ(on_device.log_likelihood, fresh.log_likelihood);
  EXPECT_EQ(on_device.newick, fresh.newick);
}

TEST(Server, DevicePinnedJobsLandOnMatchingModels) {
  // Heterogeneous pool: devices 0 and 2 are the paper's machine, device 1
  // the doubled preset.  Jobs may pin a model by name (JobSpec::device);
  // unconstrained jobs run anywhere, unsatisfiable constraints are
  // rejected at submission instead of starving in the queue.
  std::vector<lh::ExecutorSpec> specs;
  for (int i = 0; i < 3; ++i) {
    lh::ExecutorSpec s = core::cell_executor_spec(core::Stage::kOffloadAll);
    if (i == 1)
      s.cell().device = cell::require_device_model("cell-16spe-512k");
    specs.push_back(std::move(s));
  }
  serve::Server server(specs);
  EXPECT_TRUE(server.devices().has_model("cell-2007"));
  EXPECT_TRUE(server.devices().has_model("cell-16spe-512k"));
  EXPECT_FALSE(server.devices().has_model("cell-fast-eib"));

  // Same workload under every pin, so completed lnLs must agree bitwise:
  // geometry is a performance model, not a numerics model.
  serve::JobSpec pin_big = make_spec("pin-big", 81, 1, 0);
  pin_big.device = "cell-16spe-512k";
  serve::JobSpec pin_small = make_spec("pin-small", 81, 1, 0);
  pin_small.device = "cell-2007";
  const serve::JobSpec unpinned = make_spec("unpinned", 81, 1, 0);
  serve::JobSpec impossible = make_spec("impossible", 81, 1, 0);
  impossible.device = "cell-fast-eib";

  ASSERT_EQ(server.submit(pin_big), serve::SubmitStatus::kAccepted);
  ASSERT_EQ(server.submit(pin_small), serve::SubmitStatus::kAccepted);
  ASSERT_EQ(server.submit(unpinned), serve::SubmitStatus::kAccepted);
  EXPECT_EQ(server.submit(impossible), serve::SubmitStatus::kRejected);
  server.join();

  std::map<std::string, serve::JobResult> by_id;
  for (const auto& r : server.results()) by_id[r.id] = r;
  ASSERT_EQ(by_id.size(), 4u);
  for (const char* id : {"pin-big", "pin-small", "unpinned"})
    ASSERT_EQ(by_id[id].state, serve::JobState::kCompleted) << id;
  EXPECT_EQ(by_id["impossible"].state, serve::JobState::kRejected);

  const auto model_of = [&](const char* id) {
    return server.devices()
        .device(by_id[id].last_device)
        .model_name();
  };
  EXPECT_EQ(model_of("pin-big"), "cell-16spe-512k");
  EXPECT_EQ(model_of("pin-small"), "cell-2007");

  EXPECT_EQ(by_id["pin-big"].best_lnl, by_id["pin-small"].best_lnl);
  EXPECT_EQ(by_id["pin-big"].best_lnl, by_id["unpinned"].best_lnl);
  EXPECT_EQ(by_id["pin-big"].best_newick, by_id["pin-small"].best_newick);
}

TEST(DevicePool, AutoDeviceSpecsLeaseTheCalibratedWinner) {
  lh::WorkloadShape shape;
  shape.patterns = 128;
  lh::CalibrationTable pinned;
  pinned.shape = shape;
  pinned.entries = {{"host-scalar", 9.0},
                    {"host-simd", 2.0},
                    {"cell-sim", 50.0}};

  // Host winner: the whole pool leases host-SIMD devices, count copies.
  const auto specs = serve::auto_device_specs(shape, 3, pinned);
  ASSERT_EQ(specs.size(), 3u);
  for (const lh::ExecutorSpec& s : specs) {
    EXPECT_EQ(s.kind(), lh::ExecutorKind::kHost);
    EXPECT_TRUE(s.host().kernels.simd);
  }
  serve::DevicePool host_pool(specs);
  EXPECT_FALSE(host_pool.device(0).is_cell());

  // Cell winner: devices come up as simulated Cells (with the per-device
  // unique event bases the Device constructor forces).
  pinned.entries = {{"cell-sim", 1.0}, {"host-scalar", 2.0}};
  serve::DevicePool cell_pool(serve::auto_device_specs(shape, 2, pinned));
  EXPECT_TRUE(cell_pool.device(0).is_cell());
  EXPECT_TRUE(cell_pool.device(1).is_cell());

  // A table measured for another shape must not be applied silently.
  lh::WorkloadShape other = shape;
  other.patterns = 64;
  EXPECT_THROW(serve::auto_device_specs(other, 1, pinned), ConfigError);
  EXPECT_THROW(serve::auto_device_specs(shape, 0, pinned), Error);
}

// Satellite: suspend at EVERY checkpoint boundary, resume on a DIFFERENT
// pool device, final results bitwise-identical to the uninterrupted run.
TEST(DevicePool, ResumeOnDifferentDeviceEveryBoundaryBitwiseIdentical) {
  serve::DevicePool pool(cell_pool_specs(2));
  const auto spec = make_spec("r", 31, 1, 2);
  const DirectWorkload w = compile_direct(spec);

  // Uninterrupted run, wholly on device 0.
  search::AnalysisStepper ref(w.pa, w.ec, w.so,
                              search::AnalysisCheckpoint::fresh(w.tasks));
  while (!ref.done()) {
    pool.device(0).begin_step();
    ref.step(&pool.device(0).executor());
  }
  const auto expect = ref.results();

  for (std::size_t k = 0; k <= w.tasks.size(); ++k) {
    // k steps on device 0 ...
    search::AnalysisStepper first(w.pa, w.ec, w.so,
                                  search::AnalysisCheckpoint::fresh(w.tasks));
    for (std::size_t i = 0; i < k; ++i) {
      pool.device(0).begin_step();
      first.step(&pool.device(0).executor());
    }
    // ... suspend through the serialized text, resume on device 1.
    auto cp = search::AnalysisCheckpoint::from_string(
        first.checkpoint().to_string());
    cp.require_matches(w.tasks);
    search::AnalysisStepper second(w.pa, w.ec, w.so, std::move(cp));
    while (!second.done()) {
      pool.device(1).begin_step();
      second.step(&pool.device(1).executor());
    }
    const auto results = second.results();
    ASSERT_EQ(results.size(), expect.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].log_likelihood, expect[i].log_likelihood)
          << "suspended after " << k << " of " << w.tasks.size() << " tasks";
      EXPECT_EQ(results[i].newick, expect[i].newick);
    }
  }
}

// --- server -----------------------------------------------------------------

TEST(Server, CompletesJobsBitwiseEqualToDirectRuns) {
  serve::Server server(cell_pool_specs(2));
  const auto a = make_spec("a", 41, 1, 1);
  const auto b = make_spec("b", 42, 0, 2, /*priority=*/3);
  EXPECT_EQ(server.submit(a), serve::SubmitStatus::kAccepted);
  EXPECT_EQ(server.submit(b), serve::SubmitStatus::kAccepted);
  EXPECT_EQ(server.submit(a), serve::SubmitStatus::kDuplicateId);
  server.join();

  for (const auto& spec : {a, b}) {
    const auto r = server.result(spec.id);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->state, serve::JobState::kCompleted);
    EXPECT_EQ(r->tasks_completed, r->tasks_total);
    const auto [lnl, newick] = direct_best(spec);
    EXPECT_EQ(r->best_lnl, lnl) << spec.id;
    EXPECT_EQ(r->best_newick, newick) << spec.id;
    EXPECT_GE(r->last_device, 0);
  }
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.submit(a), serve::SubmitStatus::kClosed);
}

TEST(Server, RejectsInvalidSpecsWithRecords) {
  serve::Server server(cell_pool_specs(1));
  auto bad = make_spec("bad-model", 1, 1, 0);
  bad.model = "nope";
  EXPECT_EQ(server.submit(bad), serve::SubmitStatus::kRejected);
  auto no_id = make_spec("", 1, 1, 0);
  EXPECT_EQ(server.submit(no_id), serve::SubmitStatus::kRejected);
  server.join();

  const auto r = server.result("bad-model");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, serve::JobState::kRejected);
  EXPECT_NE(r->error.find("unknown model"), std::string::npos);
  EXPECT_EQ(server.results().size(), 1u);  // empty-id spec left no record
}

TEST(Server, FaultRetriesFromCheckpointAndCompletes) {
  serve::Server server(cell_pool_specs(1));
  server.devices().device(0).arm_fault(cell::Fault::kMailboxUnderflow, 1);
  const auto spec = make_spec("faulted", 51, 1, 1);
  ASSERT_EQ(server.submit(spec), serve::SubmitStatus::kAccepted);
  server.join();

  const auto r = server.result("faulted");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, serve::JobState::kCompleted);
  EXPECT_EQ(r->retries, 1);
  EXPECT_EQ(server.devices().device(0).faults(), 1u);
  const auto [lnl, newick] = direct_best(spec);
  EXPECT_EQ(r->best_lnl, lnl);
  EXPECT_EQ(r->best_newick, newick);
}

TEST(Server, RetriesExhaustedFailsTheJob) {
  serve::ServerConfig cfg;
  cfg.max_retries = 0;
  cfg.retry_backoff_ms = 0.0;
  serve::Server server(cell_pool_specs(1), cfg);
  server.devices().device(0).arm_fault(cell::Fault::kDmaMisalignedEa, 1);
  ASSERT_EQ(server.submit(make_spec("doomed", 52, 1, 0)),
            serve::SubmitStatus::kAccepted);
  server.join();

  const auto r = server.result("doomed");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, serve::JobState::kFailed);
  EXPECT_NE(r->error.find("injected fault"), std::string::npos);
}

TEST(Server, DeadlineExpiresCleanly) {
  serve::Server server(cell_pool_specs(1));
  auto spec = make_spec("late", 53, 1, 1);  // 2 tasks: cannot beat 10us
  spec.deadline_ms = 0.01;
  ASSERT_EQ(server.submit(spec), serve::SubmitStatus::kAccepted);
  server.join();

  const auto r = server.result("late");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, serve::JobState::kExpired);
  EXPECT_LT(r->tasks_completed, r->tasks_total);
}

// Forced preemption: a long low-priority job observed running, then a
// high-priority job arrives; the runner must yield at a checkpoint
// boundary, requeue, resume, and still match the direct reference.
TEST(Server, PreemptionYieldsAndResumesBitwiseIdentical) {
  serve::Server server(cell_pool_specs(1));
  const auto big = make_spec("big", 61, 0, 10);  // 10 checkpoint boundaries
  ASSERT_EQ(server.submit(big), serve::SubmitStatus::kAccepted);
  // Wait until the worker has the job on the device ...
  while (true) {
    const auto r = server.result("big");
    if (r && r->state != serve::JobState::kQueued) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // ... then outrank it.
  ASSERT_EQ(server.submit(make_spec("urgent", 62, 1, 0, /*priority=*/9)),
            serve::SubmitStatus::kAccepted);
  server.join();

  const auto r_big = server.result("big");
  const auto r_urgent = server.result("urgent");
  ASSERT_TRUE(r_big && r_urgent);
  EXPECT_EQ(r_big->state, serve::JobState::kCompleted);
  EXPECT_EQ(r_urgent->state, serve::JobState::kCompleted);
  EXPECT_GE(r_big->preemptions, 1);
  const auto [lnl, newick] = direct_best(big);
  EXPECT_EQ(r_big->best_lnl, lnl);
  EXPECT_EQ(r_big->best_newick, newick);
}

// --- the soak ---------------------------------------------------------------

// Acceptance soak: >= 50 mixed-priority jobs over a 4-device simulated-Cell
// pool with fault injection armed on two devices and one sub-deadline job,
// race detector fatal throughout.  Every job must reach a terminal state
// with no queue leak; every completed job must equal its direct
// single-engine reference bitwise; the serving metrics must land in the obs
// registry.
TEST(ServeSoak, MixedPriorityBatchWithFaultsAndDeadline) {
  obs::Config ocfg;
  ocfg.mode = obs::Mode::kSummary;
  obs::configure(ocfg);
  analysis::configure(analysis::AnalyzeMode::kRaceFatal);

  constexpr int kJobs = 50;
  // Five workload variants; references computed once each.
  std::vector<serve::JobSpec> variants;
  for (std::uint64_t v = 0; v < 5; ++v)
    variants.push_back(make_spec("variant", 100 + v, v % 2 ? 1 : 0,
                                 1 + static_cast<std::size_t>(v % 3)));
  std::map<std::uint64_t, std::pair<double, std::string>> reference;
  for (const auto& v : variants)
    reference[v.workload.sim_seed] = direct_best(v);

  serve::ServerConfig cfg;
  cfg.queue_capacity = 16;  // small bound: backpressure actually exercised
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 0.1;
  cfg.result_channel_capacity = 64;
  serve::Server server(cell_pool_specs(4), cfg);
  server.devices().device(1).arm_fault(cell::Fault::kDmaOversize, 3);
  server.devices().device(2).arm_fault(cell::Fault::kLocalStoreOob, 5);

  std::size_t accepted = 0;
  auto submit_with_backpressure = [&](const serve::JobSpec& spec) {
    while (true) {
      const auto st = server.submit(spec);
      if (st == serve::SubmitStatus::kAccepted) {
        ++accepted;
        return;
      }
      ASSERT_EQ(st, serve::SubmitStatus::kQueueFull)
          << serve::submit_status_name(st);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  const int priorities[] = {0, 0, 1, 5, 9};
  for (int i = 0; i < kJobs; ++i) {
    auto spec = variants[static_cast<std::size_t>(i) % variants.size()];
    spec.id = "job-" + std::to_string(i);
    spec.priority = priorities[i % 5];
    submit_with_backpressure(spec);
    if (i == kJobs / 2) {
      auto late = make_spec("deadline-job", 100, 0, 2, /*priority=*/9);
      late.deadline_ms = 0.01;
      submit_with_backpressure(late);
    }
  }
  server.join();

  const auto results = server.results();
  EXPECT_EQ(results.size(), accepted);
  EXPECT_EQ(accepted, static_cast<std::size_t>(kJobs) + 1);
  EXPECT_EQ(server.queue_depth(), 0u);

  std::size_t completed = 0, expired = 0;
  int total_retries = 0, total_preemptions = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(serve::job_state_terminal(r.state))
        << r.id << " stuck in " << serve::job_state_name(r.state);
    EXPECT_NE(r.state, serve::JobState::kFailed) << r.id << ": " << r.error;
    total_retries += r.retries;
    total_preemptions += r.preemptions;
    if (r.state == serve::JobState::kExpired) {
      ++expired;
      EXPECT_EQ(r.id, "deadline-job");
      continue;
    }
    ASSERT_EQ(r.state, serve::JobState::kCompleted) << r.id;
    ++completed;
    EXPECT_EQ(r.tasks_completed, r.tasks_total) << r.id;
    std::uint64_t sim_seed = 0;
    for (const auto& v : variants)
      if (r.tasks_total == v.inferences + v.bootstraps &&
          reference[v.workload.sim_seed].first == r.best_lnl)
        sim_seed = v.workload.sim_seed;
    // Identify the variant by id suffix instead: job-i -> variant i % 5.
    const int idx = std::stoi(r.id.substr(4)) % 5;
    const auto& want = reference[variants[static_cast<std::size_t>(idx)]
                                     .workload.sim_seed];
    EXPECT_EQ(r.best_lnl, want.first) << r.id;
    EXPECT_EQ(r.best_newick, want.second) << r.id;
    (void)sim_seed;
  }
  EXPECT_EQ(completed, static_cast<std::size_t>(kJobs));
  EXPECT_EQ(expired, 1u);
  // Both armed faults fired (each device certainly ran >= 5 steps) and cost
  // retries, not jobs.
  EXPECT_GE(total_retries, 2);
  EXPECT_EQ(server.devices().device(1).faults() +
                server.devices().device(2).faults(),
            2u);

  // Metrics surfaced through the obs registry.
  const auto snap = obs::snapshot_metrics();
  std::map<std::string, std::uint64_t> counters;
  for (const auto& c : snap.counters) counters[c.name] = c.value;
  EXPECT_GE(counters["serve.jobs.submitted"],
            static_cast<std::uint64_t>(kJobs) + 1);
  EXPECT_EQ(counters["serve.jobs.completed"],
            static_cast<std::uint64_t>(completed));
  EXPECT_EQ(counters["serve.jobs.expired"], 1u);
  EXPECT_EQ(counters["serve.jobs.retries"],
            static_cast<std::uint64_t>(total_retries));
  EXPECT_EQ(counters["serve.jobs.preemptions"],
            static_cast<std::uint64_t>(total_preemptions));
  EXPECT_EQ(counters["serve.jobs.failed"], 0u);
  EXPECT_GT(counters["serve.device.steps"], 0u);
  EXPECT_EQ(counters["serve.device.faults"], 2u);
  bool have_total_ms = false;
  for (const auto& h : snap.histograms)
    if (h.name == "serve.job.total_ms") {
      have_total_ms = true;
      EXPECT_EQ(h.count, static_cast<std::uint64_t>(kJobs) + 1);
    }
  EXPECT_TRUE(have_total_ms);

  // The streaming channel saw every terminal job exactly once (capacity 64
  // held them all; join() closed the channel).
  std::size_t streamed = 0;
  while (server.result_channel()->pop()) ++streamed;
  EXPECT_EQ(streamed, accepted);

  analysis::configure(analysis::AnalyzeMode::kOff);
  obs::configure(obs::Config{});
}
