// Tests for src/io: FASTA, PHYLIP and Newick parsing/serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "io/fasta.h"
#include "io/newick.h"
#include "io/phylip.h"
#include "support/error.h"

namespace io = rxc::io;

TEST(Fasta, ParsesBasicRecords) {
  const auto recs = io::read_fasta_string(
      ">seq1 description\nACGT\nACGT\n>seq2\nTTTT TTTT\n");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "seq1 description");
  EXPECT_EQ(recs[0].data, "ACGTACGT");
  EXPECT_EQ(recs[1].data, "TTTTTTTT");
}

TEST(Fasta, SkipsCommentsAndBlankLines) {
  const auto recs =
      io::read_fasta_string("; a comment\n\n>a\nAC\n\nGT\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].data, "ACGT");
}

TEST(Fasta, RejectsMalformedInput) {
  EXPECT_THROW(io::read_fasta_string("ACGT\n>late\nAC\n"), rxc::ParseError);
  EXPECT_THROW(io::read_fasta_string(">\nACGT\n"), rxc::ParseError);
  EXPECT_THROW(io::read_fasta_string(""), rxc::ParseError);
  EXPECT_THROW(io::read_fasta_file("/nonexistent/file.fa"), rxc::Error);
}

TEST(Fasta, RoundTripsWithWrapping) {
  std::vector<io::SeqRecord> recs{{"x", std::string(150, 'A')},
                                  {"y", std::string(150, 'C')}};
  std::ostringstream out;
  io::write_fasta(out, recs, 60);
  const auto back = io::read_fasta_string(out.str());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].data, recs[0].data);
  EXPECT_EQ(back[1].data, recs[1].data);
}

TEST(Phylip, ParsesSequential) {
  const auto recs = io::read_phylip_string(
      "3 8\ntaxon_a ACGTACGT\ntaxon_b ACGTACGA\ntaxon_c ACGTACGC\n");
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].name, "taxon_a");
  EXPECT_EQ(recs[2].data, "ACGTACGC");
}

TEST(Phylip, ParsesInterleaved) {
  const auto recs = io::read_phylip_string(
      "2 8\n"
      "a ACGT\n"
      "b TGCA\n"
      "\n"
      "ACGT\n"
      "TGCA\n");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].data, "ACGTACGT");
  EXPECT_EQ(recs[1].data, "TGCATGCA");
}

TEST(Phylip, SequenceDataMaySpanSpacedGroups) {
  const auto recs =
      io::read_phylip_string("2 8\na ACGT ACGT\nb TTTT TTTT\n");
  EXPECT_EQ(recs[0].data, "ACGTACGT");
}

TEST(Phylip, RejectsBadCounts) {
  EXPECT_THROW(io::read_phylip_string("2 8\na ACGT\nb ACGTACGT\n"),
               rxc::ParseError);
  EXPECT_THROW(io::read_phylip_string("3 4\na ACGT\nb ACGT\n"),
               rxc::ParseError);
  EXPECT_THROW(io::read_phylip_string("2 4\na ACGT\na ACGT\n"),
               rxc::ParseError);
  EXPECT_THROW(io::read_phylip_string("garbage\n"), rxc::ParseError);
}

TEST(Phylip, RoundTrips) {
  std::vector<io::SeqRecord> recs{{"alpha", "ACGTAC"}, {"beta", "TTGGCC"}};
  std::ostringstream out;
  io::write_phylip(out, recs);
  const auto back = io::read_phylip_string(out.str());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "alpha");
  EXPECT_EQ(back[1].data, "TTGGCC");
}

TEST(Newick, ParsesLeafLabelsAndLengths) {
  const auto t = io::parse_newick("((a:0.1,b:0.2):0.05,c:0.3);");
  ASSERT_EQ(t->children.size(), 2u);
  EXPECT_EQ(io::leaf_count(*t), 3u);
  const auto& ab = *t->children[0];
  ASSERT_EQ(ab.children.size(), 2u);
  EXPECT_EQ(ab.children[0]->label, "a");
  EXPECT_DOUBLE_EQ(*ab.children[0]->length, 0.1);
  EXPECT_DOUBLE_EQ(*ab.length, 0.05);
  EXPECT_EQ(t->children[1]->label, "c");
}

TEST(Newick, HandlesQuotedLabelsAndComments) {
  const auto t = io::parse_newick(
      "('tax on''e':1.0,b:2.0[a comment],c)root;");
  EXPECT_EQ(t->children[0]->label, "tax on'e");
  EXPECT_EQ(t->label, "root");
  EXPECT_DOUBLE_EQ(*t->children[1]->length, 2.0);
}

TEST(Newick, NegativeAndExponentLengths) {
  const auto t = io::parse_newick("(a:1e-3,b:2.5E2);");
  EXPECT_DOUBLE_EQ(*t->children[0]->length, 1e-3);
  EXPECT_DOUBLE_EQ(*t->children[1]->length, 250.0);
}

TEST(Newick, RejectsSyntaxErrors) {
  EXPECT_THROW(io::parse_newick("((a,b);"), rxc::ParseError);
  EXPECT_THROW(io::parse_newick("(a,b):"), rxc::ParseError);
  EXPECT_THROW(io::parse_newick("(a,,b);"), rxc::ParseError);
  EXPECT_THROW(io::parse_newick("(a,b)); trailing"), rxc::ParseError);
  EXPECT_THROW(io::parse_newick("('unterminated,b);"), rxc::ParseError);
  EXPECT_THROW(io::parse_newick("(a,b[no close);"), rxc::ParseError);
}

TEST(Newick, RoundTrips) {
  const std::string text = "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);";
  const auto t = io::parse_newick(text);
  const auto again = io::parse_newick(io::write_newick(*t));
  EXPECT_EQ(io::write_newick(*t), io::write_newick(*again));
  EXPECT_EQ(io::leaf_count(*again), 4u);
}

TEST(Newick, QuotesMetacharacterLabels) {
  io::NewickNode leaf;
  leaf.label = "needs quoting(:;)";
  const std::string text = io::write_newick(leaf);
  const auto back = io::parse_newick(text);
  EXPECT_EQ(back->label, "needs quoting(:;)");
}

#include "io/tree_list.h"

TEST(TreeList, RoundTripsAndValidates) {
  const std::vector<std::string> trees{"((a:1,b:2):0.5,c:1,d:2);",
                                       "((a:1,c:2):0.5,b:1,d:2);"};
  std::ostringstream out;
  io::write_tree_list(out, trees);
  std::istringstream in(out.str() + "\n\n");  // trailing blanks ignored
  const auto back = io::read_tree_list(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], trees[0]);
  EXPECT_EQ(back[1], trees[1]);
}

TEST(TreeList, RejectsMalformedLinesWithLineNumber) {
  std::istringstream in("((a,b),c,d);\n((oops;\n");
  try {
    io::read_tree_list(in);
    FAIL() << "should have thrown";
  } catch (const rxc::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::istringstream empty("\n\n");
  EXPECT_THROW(io::read_tree_list(empty), rxc::Error);
  EXPECT_THROW(io::read_tree_list_file("/nope.trees"), rxc::Error);
}
