// Tests for src/core: the simulated-Cell port.  The central invariant is
// metamorphic: every optimization stage and scheduler must produce the SAME
// trees and log-likelihoods as the plain host engine — stages change time,
// never results.

#include <gtest/gtest.h>

#include <cmath>

#include "core/port.h"
#include "core/scheduler.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "seq/seqgen.h"
#include "support/stats.h"
#include "tree/tree.h"

using namespace rxc;
using core::Stage;

namespace {

struct PortFixture {
  seq::SimResult sim;
  seq::PatternAlignment pa;
  lh::EngineConfig ec;
  search::SearchOptions so;

  PortFixture()
      : sim(make()), pa(seq::PatternAlignment::compress(sim.alignment)) {
    ec.mode = lh::RateMode::kCat;
    ec.categories = 8;
    so.max_rounds = 2;
  }
  static seq::SimResult make() {
    seq::SimOptions opt;
    opt.ntaxa = 12;
    opt.nsites = 400;
    opt.branch_scale = 0.07;
    opt.seed = 17;
    return seq::simulate_alignment(opt);
  }
};

/// Branch lengths may differ in the last digits between host and
/// strip-summed SPE runs (floating-point reassociation); topology must be
/// identical and lengths close.
void expect_same_tree(const std::string& got, const std::string& want,
                      const std::vector<std::string>& names,
                      const std::string& context) {
  const auto a = tree::Tree::from_newick_string(got, names);
  const auto b = tree::Tree::from_newick_string(want, names);
  EXPECT_EQ(tree::Tree::rf_distance(a, b), 0u) << context;
  EXPECT_LT(rel_diff(a.total_length(), b.total_length()), 1e-6) << context;
}

const Stage kAllStages[] = {
    Stage::kPpeOnly,      Stage::kOffloadNewview, Stage::kFastExp,
    Stage::kIntCond,      Stage::kDoubleBuffer,   Stage::kVectorize,
    Stage::kDirectComm,   Stage::kOffloadAll,
};

}  // namespace

TEST(StageToggles, AreCumulative) {
  const auto naive = core::stage_toggles(Stage::kOffloadNewview);
  EXPECT_TRUE(naive.offload_newview);
  EXPECT_FALSE(naive.sdk_exp);
  EXPECT_FALSE(naive.offload_rest);

  const auto vec = core::stage_toggles(Stage::kVectorize);
  EXPECT_TRUE(vec.offload_newview && vec.sdk_exp && vec.int_cond &&
              vec.double_buffer && vec.vectorized);
  EXPECT_FALSE(vec.direct_comm || vec.offload_rest);

  const auto all = core::stage_toggles(Stage::kOffloadAll);
  EXPECT_TRUE(all.offload_newview && all.sdk_exp && all.int_cond &&
              all.double_buffer && all.vectorized && all.direct_comm &&
              all.offload_rest);

  const auto ppe = core::stage_toggles(Stage::kPpeOnly);
  EXPECT_FALSE(ppe.offload_newview);
}

TEST(SpeExecutor, EveryStageMatchesHostResults) {
  PortFixture f;
  // Host reference.
  const auto host = search::run_task(f.pa, f.ec, f.so,
                                     {search::TaskKind::kInference, 3});
  for (const Stage stage : kAllStages) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(stage);
    core::SpeExecutor exec(machine, cfg);
    const auto trace = core::execute_task(
        f.pa, f.ec, f.so, {search::TaskKind::kInference, 3}, exec);
    EXPECT_LT(rel_diff(trace.log_likelihood, host.log_likelihood), 1e-9)
        << core::stage_name(stage);
    expect_same_tree(trace.newick, host.newick, f.pa.names(),
                     core::stage_name(stage));
  }
}

TEST(SpeExecutor, LlpWaysMatchHostResults) {
  PortFixture f;
  const auto host = search::run_task(f.pa, f.ec, f.so,
                                     {search::TaskKind::kBootstrap, 4});
  for (const int ways : {1, 2, 4, 8}) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(Stage::kOffloadAll);
    cfg.llp_ways = ways;
    core::SpeExecutor exec(machine, cfg);
    const auto trace = core::execute_task(
        f.pa, f.ec, f.so, {search::TaskKind::kBootstrap, 4}, exec);
    EXPECT_LT(rel_diff(trace.log_likelihood, host.log_likelihood), 1e-9)
        << "ways=" << ways;
    expect_same_tree(trace.newick, host.newick, f.pa.names(),
                     "ways=" + std::to_string(ways));
  }
}

TEST(SpeExecutor, GammaModeMatchesHostToo) {
  PortFixture f;
  f.ec.mode = lh::RateMode::kGamma;
  f.ec.categories = 4;
  f.ec.alpha = 0.6;
  const auto host = search::run_task(f.pa, f.ec, f.so,
                                     {search::TaskKind::kInference, 5});
  cell::CellMachine machine;
  core::SpeExecConfig cfg;
  cfg.toggles = core::stage_toggles(Stage::kOffloadAll);
  core::SpeExecutor exec(machine, cfg);
  const auto trace = core::execute_task(
      f.pa, f.ec, f.so, {search::TaskKind::kInference, 5}, exec);
  EXPECT_LT(rel_diff(trace.log_likelihood, host.log_likelihood), 1e-9);
  expect_same_tree(trace.newick, host.newick, f.pa.names(), "gamma");
}

TEST(SpeExecutor, TraceStructureIsSane) {
  PortFixture f;
  cell::CellMachine machine;
  core::SpeExecConfig cfg;
  cfg.toggles = core::stage_toggles(Stage::kOffloadNewview);
  core::SpeExecutor exec(machine, cfg);
  const auto trace = core::execute_task(
      f.pa, f.ec, f.so, {search::TaskKind::kInference, 1}, exec);
  ASSERT_FALSE(trace.segments.empty());
  std::size_t offloaded = 0, on_ppe = 0;
  for (const auto& seg : trace.segments) {
    EXPECT_GE(seg.ppe_cycles, 0.0);
    EXPECT_GE(seg.spe_cycles, 0.0);
    if (seg.kind == core::KernelKind::kNewview) {
      EXPECT_GT(seg.spe_cycles, 0.0);
      EXPECT_TRUE(seg.signaled);
      ++offloaded;
    } else {
      EXPECT_EQ(seg.spe_cycles, 0.0);  // rest stays on the PPE at this stage
      ++on_ppe;
    }
  }
  EXPECT_GT(offloaded, 0u);
  EXPECT_GT(on_ppe, 0u);
  EXPECT_EQ(trace.counters.newview_calls, offloaded);
}

TEST(SpeExecutor, DoubleBufferingCutsDmaStalls) {
  PortFixture f;
  auto run_with = [&](Stage stage) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(stage);
    core::SpeExecutor exec(machine, cfg);
    (void)core::execute_task(f.pa, f.ec, f.so,
                             {search::TaskKind::kInference, 2}, exec);
    return machine.spe(0).counters().dma_stall_cycles;
  };
  const double without = run_with(Stage::kIntCond);
  const double with = run_with(Stage::kDoubleBuffer);
  EXPECT_LT(with, without * 0.5);
}

TEST(SpeExecutor, VirtualTimeLadderMatchesPaperOrdering) {
  PortFixture f;
  std::vector<double> spe_time;
  for (const Stage stage : kAllStages) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(stage);
    core::SpeExecutor exec(machine, cfg);
    const auto trace = core::execute_task(
        f.pa, f.ec, f.so, {search::TaskKind::kInference, 6}, exec);
    spe_time.push_back(trace.serial_cycles());
  }
  // Table 1: naive offload is SLOWER than the PPE-only run.
  EXPECT_GT(spe_time[1], spe_time[0]);
  // Tables 2-7: every subsequent optimization strictly helps.
  for (int s = 2; s <= 7; ++s)
    EXPECT_LT(spe_time[s], spe_time[s - 1]) << "stage " << s;
  // Table 7: the fully offloaded code beats the PPE (§5.2.7, by ~25%).
  EXPECT_LT(spe_time[7], spe_time[0]);
}

TEST(SpeExecutor, LlpReducesPerInvocationLatency) {
  PortFixture f;
  auto serial_time = [&](int ways) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(Stage::kOffloadAll);
    cfg.llp_ways = ways;
    core::SpeExecutor exec(machine, cfg);
    const auto trace = core::execute_task(
        f.pa, f.ec, f.so, {search::TaskKind::kInference, 8}, exec);
    return trace.serial_cycles();
  };
  const double one = serial_time(1);
  const double four = serial_time(4);
  EXPECT_LT(four, one);           // loop splitting helps the single task
  EXPECT_GT(four, one / 4.0);     // but not perfectly (fork/join, DMA)
}

// --- scheduler ----------------------------------------------------------------

namespace {
core::TaskTrace synthetic_trace(int segments, double ppe, double spe) {
  core::TaskTrace t;
  for (int i = 0; i < segments; ++i) {
    core::TraceSegment s;
    s.ppe_cycles = ppe;
    s.spe_cycles = spe;
    s.signaled = true;
    t.segments.push_back(s);
  }
  return t;
}
}  // namespace

TEST(Scheduler, SingleProcessIsSerial) {
  cell::DeviceModel dev;
  dev.cost.ppe_context_switch_cycles = 0;
  const auto trace = synthetic_trace(10, 100.0, 900.0);
  const std::vector<const core::TaskTrace*> tasks{&trace};
  const auto r = core::schedule_traces(dev, tasks,
                                       {core::Policy::kNaive, 1});
  EXPECT_DOUBLE_EQ(r.makespan, 10 * (100.0 + 900.0));
  EXPECT_EQ(r.context_switches, 0u);
}

TEST(Scheduler, TwoWorkersHalveIndependentWork) {
  cell::DeviceModel dev;
  dev.cost.ppe_smt_factor = 1.0;  // isolate the parallelism effect
  const auto trace = synthetic_trace(5, 10.0, 990.0);
  const std::vector<const core::TaskTrace*> tasks{&trace, &trace, &trace,
                                                  &trace};
  const auto r1 = core::schedule_traces(dev, tasks,
                                        {core::Policy::kNaive, 1});
  const auto r2 = core::schedule_traces(dev, tasks,
                                        {core::Policy::kNaive, 2});
  EXPECT_NEAR(r2.makespan, r1.makespan / 2.0, r1.makespan * 0.01);
}

TEST(Scheduler, SmtFactorSlowsPpeBoundWork) {
  cell::DeviceModel dev;
  const auto trace = synthetic_trace(5, 1000.0, 0.0);  // pure PPE work
  const std::vector<const core::TaskTrace*> tasks{&trace, &trace};
  dev.cost.ppe_smt_factor = 1.0;
  const auto fast = core::schedule_traces(dev, tasks,
                                          {core::Policy::kNaive, 2});
  dev.cost.ppe_smt_factor = 1.5;
  const auto slow = core::schedule_traces(dev, tasks,
                                          {core::Policy::kNaive, 2});
  EXPECT_NEAR(slow.makespan, fast.makespan * 1.5, 1e-6);
}

TEST(Scheduler, EdtlpUsesAllSpes) {
  cell::DeviceModel dev;
  dev.cost.ppe_context_switch_cycles = 0;
  dev.cost.ppe_smt_factor = 1.0;
  const auto trace = synthetic_trace(4, 1.0, 999.0);  // SPE-bound
  std::vector<const core::TaskTrace*> tasks(8, &trace);
  const auto naive = core::schedule_traces(dev, tasks,
                                           {core::Policy::kNaive, 2});
  const auto edtlp = core::schedule_traces(dev, tasks,
                                           {core::Policy::kEdtlp, 8});
  EXPECT_LT(edtlp.makespan, naive.makespan / 3.0);
}

TEST(Scheduler, EdtlpPaysContextSwitches) {
  cell::DeviceModel dev;
  const auto trace = synthetic_trace(10, 10.0, 100.0);
  std::vector<const core::TaskTrace*> tasks(8, &trace);
  const auto r = core::schedule_traces(dev, tasks,
                                       {core::Policy::kEdtlp, 8});
  EXPECT_EQ(r.context_switches, 80u);  // one per signaled offload
  const auto two = core::schedule_traces(dev, tasks,
                                         {core::Policy::kNaive, 2});
  EXPECT_EQ(two.context_switches, 0u);  // not oversubscribed
}

TEST(Scheduler, MakespanNeverBelowCriticalPath) {
  cell::DeviceModel dev;
  const auto trace = synthetic_trace(7, 50.0, 500.0);
  std::vector<const core::TaskTrace*> tasks(5, &trace);
  for (const auto policy : {core::Policy::kNaive, core::Policy::kEdtlp}) {
    const int procs = policy == core::Policy::kNaive ? 2 : 8;
    const auto r = core::schedule_traces(dev, tasks, {policy, procs});
    EXPECT_GE(r.makespan, trace.serial_cycles());  // one task is serial
  }
}

// --- run_on_cell ---------------------------------------------------------------

TEST(Port, MgpsBeatsNaiveAcrossBootstraps) {
  PortFixture f;
  for (const std::size_t bootstraps : {4u, 8u, 12u}) {
    const auto tasks = search::make_analysis(0, bootstraps);
    core::CellRunConfig naive;
    naive.stage = Stage::kOffloadAll;
    naive.scheduler = core::SchedulerModel::kNaiveMpi;
    naive.workers = 2;
    naive.engine = f.ec;
    naive.search = f.so;
    naive.trace_samples = 2;
    core::CellRunConfig mgps = naive;
    mgps.scheduler = core::SchedulerModel::kMgps;
    const auto rn = core::run_on_cell(f.pa, naive, tasks);
    const auto rm = core::run_on_cell(f.pa, mgps, tasks);
    EXPECT_LT(rm.virtual_seconds, rn.virtual_seconds) << bootstraps;
  }
}

TEST(Port, TraceSamplingCountsExecutedVsReplayed) {
  PortFixture f;
  const auto tasks = search::make_analysis(0, 10);
  core::CellRunConfig cfg;
  cfg.stage = Stage::kOffloadAll;
  cfg.scheduler = core::SchedulerModel::kNaiveMpi;
  cfg.workers = 1;
  cfg.engine = f.ec;
  cfg.search = f.so;
  cfg.trace_samples = 3;
  const auto r = core::run_on_cell(f.pa, cfg, tasks);
  EXPECT_EQ(r.executed_tasks, 3u);
  EXPECT_EQ(r.replayed_tasks, 7u);
  EXPECT_EQ(r.task_log_likelihoods.size(), 3u);
}

TEST(Port, MgpsLlpWaysMapping) {
  // The paper's 8-SPE machine (historic table) ...
  EXPECT_EQ(core::mgps_llp_ways(1, 8), 8);
  EXPECT_EQ(core::mgps_llp_ways(2, 8), 4);
  EXPECT_EQ(core::mgps_llp_ways(3, 8), 2);
  EXPECT_EQ(core::mgps_llp_ways(4, 8), 2);
  EXPECT_EQ(core::mgps_llp_ways(5, 8), 1);
  EXPECT_EQ(core::mgps_llp_ways(7, 8), 1);
  // ... generalizes to the configured SPE count.
  EXPECT_EQ(core::mgps_llp_ways(1, 16), 16);
  EXPECT_EQ(core::mgps_llp_ways(3, 16), 4);
  EXPECT_EQ(core::mgps_llp_ways(5, 16), 2);
  EXPECT_EQ(core::mgps_llp_ways(17, 16), 1);
}

TEST(Port, RejectsBadConfigs) {
  PortFixture f;
  const auto tasks = search::make_analysis(0, 1);
  core::CellRunConfig cfg;
  cfg.workers = 3;  // PPE has two hardware threads
  cfg.engine = f.ec;
  EXPECT_THROW(core::run_on_cell(f.pa, cfg, tasks), Error);
  cfg.workers = 1;
  EXPECT_THROW(core::run_on_cell(f.pa, cfg, {}), Error);
}

// --- failure injection -----------------------------------------------------

TEST(FailureInjection, OversizedStripViolatesDmaRules) {
  // A strip larger than the 16 KB MFC limit must trip the hardware checks
  // (the real port's reason for strip-mining in the first place).
  PortFixture f;
  f.ec.mode = lh::RateMode::kGamma;
  f.ec.categories = 25;  // 800 B/pattern
  cell::CellMachine machine;
  core::SpeExecConfig cfg;
  cfg.toggles = core::stage_toggles(Stage::kOffloadAll);
  cfg.strip_bytes = 64 * 1024;  // 80 patterns x 800 B = 64 KB per transfer
  core::SpeExecutor exec(machine, cfg);
  EXPECT_THROW(core::execute_task(f.pa, f.ec, f.so,
                                  {search::TaskKind::kInference, 1}, exec),
               HardwareError);
}

TEST(FailureInjection, MailboxProtocolStaysBalanced) {
  // The mailbox signaling path must leave every mailbox empty when a task
  // completes (no lost or duplicated signals).
  PortFixture f;
  cell::CellMachine machine;
  core::SpeExecConfig cfg;
  cfg.toggles = core::stage_toggles(Stage::kVectorize);  // mailbox comm
  core::SpeExecutor exec(machine, cfg);
  (void)core::execute_task(f.pa, f.ec, f.so,
                           {search::TaskKind::kInference, 2}, exec);
  for (int i = 0; i < machine.spe_count(); ++i) {
    EXPECT_TRUE(machine.spe(i).inbox().empty());
    EXPECT_TRUE(machine.spe(i).outbox().empty());
  }
}

TEST(FailureInjection, TinyStripStillCorrect) {
  // Pathologically small strips (many DMA round trips) must not change
  // results, only time.
  PortFixture f;
  const auto host = search::run_task(f.pa, f.ec, f.so,
                                     {search::TaskKind::kInference, 9});
  cell::CellMachine machine;
  core::SpeExecConfig cfg;
  cfg.toggles = core::stage_toggles(Stage::kOffloadAll);
  cfg.strip_bytes = 256;
  core::SpeExecutor exec(machine, cfg);
  const auto trace = core::execute_task(
      f.pa, f.ec, f.so, {search::TaskKind::kInference, 9}, exec);
  EXPECT_LT(rel_diff(trace.log_likelihood, host.log_likelihood), 1e-9);
}

// --- paper contribution III: the multi-grain crossover ------------------------
// "two layers of parallelism ... more beneficial for large and realistic
// workloads and three layers ... beneficial for workloads with a low degree
// (<= four) of task-level parallelism" (§1).

TEST(Crossover, LlpWinsAtLowTaskCounts) {
  PortFixture f;
  for (const std::size_t ntasks : {1u, 2u}) {
    const auto tasks = search::make_analysis(0, ntasks);
    core::CellRunConfig llp;
    llp.stage = Stage::kOffloadAll;
    llp.scheduler = core::SchedulerModel::kLlp;
    llp.llp_ways = static_cast<int>(8 / std::max<std::size_t>(1, ntasks));
    llp.engine = f.ec;
    llp.search = f.so;
    core::CellRunConfig edtlp = llp;
    edtlp.scheduler = core::SchedulerModel::kEdtlp;
    const auto r_llp = core::run_on_cell(f.pa, llp, tasks);
    const auto r_edtlp = core::run_on_cell(f.pa, edtlp, tasks);
    EXPECT_LT(r_llp.virtual_seconds, r_edtlp.virtual_seconds)
        << ntasks << " tasks";
  }
}

TEST(Crossover, EdtlpWinsAtHighTaskCounts) {
  PortFixture f;
  const auto tasks = search::make_analysis(0, 8);
  core::CellRunConfig edtlp;
  edtlp.stage = Stage::kOffloadAll;
  edtlp.scheduler = core::SchedulerModel::kEdtlp;
  edtlp.engine = f.ec;
  edtlp.search = f.so;
  edtlp.trace_samples = 3;
  core::CellRunConfig llp = edtlp;
  llp.scheduler = core::SchedulerModel::kLlp;
  llp.llp_ways = 4;  // 2 concurrent tasks x 4 SPEs each
  const auto r_edtlp = core::run_on_cell(f.pa, edtlp, tasks);
  const auto r_llp = core::run_on_cell(f.pa, llp, tasks);
  EXPECT_LT(r_edtlp.virtual_seconds, r_llp.virtual_seconds);
}

// --- golden workload regression -------------------------------------------------

TEST(Golden, Synthetic42ScWorkloadShape) {
  // Guards the calibrated workload itself: taxon/site/pattern counts and
  // the plausible likelihood range for a completed search.
  const auto sim = seq::make_42sc();
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  EXPECT_EQ(pa.taxon_count(), 42u);
  EXPECT_EQ(pa.site_count(), 1167u);
  EXPECT_EQ(pa.pattern_count(), 252u);

  lh::EngineConfig ec;  // CAT-25 default, the benches' configuration
  search::SearchOptions so;
  const auto r = search::run_task(pa, ec, so,
                                  {search::TaskKind::kInference, 1});
  EXPECT_GT(r.log_likelihood, -4400.0);
  EXPECT_LT(r.log_likelihood, -3900.0);
  // The paper-matching instrumentation: 150 exp calls per newview.
  EXPECT_EQ(r.counters.exp_calls,
            r.counters.newview_calls * 150 + r.counters.evaluate_calls * 75 +
                (r.counters.sumtable_calls ? 0u : 0u) +
                r.counters.nr_calls * 75);
}

// --- calibration regression ---------------------------------------------------
// Guards the reproduced ratio ladder on the real 42_SC workload: if a cost
// constant or executor change drifts the shape away from the paper, this
// catches it before the benches do.  Bands are generous (±20% of the paper's
// ratio) because the workload instance and search differ from the authors'.

TEST(Calibration, StageRatioLadderStaysInPaperBands) {
  const auto sim = seq::make_42sc();
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  const lh::EngineConfig ec;  // CAT-25
  search::SearchOptions so;
  so.max_rounds = 2;

  const struct {
    Stage stage;
    double paper_ratio;  // 1w x 1bs row vs PPE-only
  } ladder[] = {
      {Stage::kOffloadNewview, 2.883}, {Stage::kFastExp, 1.702},
      {Stage::kIntCond, 1.336},        {Stage::kDoubleBuffer, 1.274},
      {Stage::kVectorize, 1.108},      {Stage::kDirectComm, 1.081},
      {Stage::kOffloadAll, 0.751},
  };

  auto serial_seconds = [&](Stage stage) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(stage);
    core::SpeExecutor exec(machine, cfg);
    const auto trace = core::execute_task(
        pa, ec, so, {search::TaskKind::kBootstrap, 1}, exec);
    return trace.serial_cycles() / machine.params().clock_hz;
  };

  const double base = serial_seconds(Stage::kPpeOnly);
  ASSERT_GT(base, 0.0);
  double previous = std::numeric_limits<double>::infinity();
  for (const auto& step : ladder) {
    const double ratio = serial_seconds(step.stage) / base;
    EXPECT_GT(ratio, step.paper_ratio * 0.8) << core::stage_name(step.stage);
    EXPECT_LT(ratio, step.paper_ratio * 1.2) << core::stage_name(step.stage);
    EXPECT_LT(ratio, previous) << core::stage_name(step.stage)
                               << " should improve on the previous stage";
    previous = ratio;
  }
}
