// Tests for src/seq: encoding, alignments, pattern compression, bootstrap
// resampling and the sequence simulator.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "seq/alignment.h"
#include "seq/bootstrap.h"
#include "seq/patterns.h"
#include "seq/seqgen.h"
#include "support/error.h"

using namespace rxc;
using seq::Alignment;
using seq::PatternAlignment;

namespace {
Alignment tiny() {
  return Alignment::from_records({{"t0", "AACGT"},
                                  {"t1", "AACGA"},
                                  {"t2", "AACTT"},
                                  {"t3", "AAC-T"}});
}
}  // namespace

TEST(Encoding, CanonicalBases) {
  EXPECT_EQ(seq::encode_dna('A'), 1);
  EXPECT_EQ(seq::encode_dna('c'), 2);
  EXPECT_EQ(seq::encode_dna('G'), 4);
  EXPECT_EQ(seq::encode_dna('t'), 8);
  EXPECT_EQ(seq::encode_dna('U'), 8);
}

TEST(Encoding, AmbiguityCodesAreUnions) {
  EXPECT_EQ(seq::encode_dna('R'), (1 | 4));  // A|G
  EXPECT_EQ(seq::encode_dna('Y'), (2 | 8));  // C|T
  EXPECT_EQ(seq::encode_dna('N'), 15);
  EXPECT_EQ(seq::encode_dna('-'), 15);
  EXPECT_EQ(seq::encode_dna('?'), 15);
}

TEST(Encoding, RoundTripsThroughDecode) {
  const std::string chars = "ACGTMRWSYKVHDBN";
  for (char c : chars) EXPECT_EQ(seq::decode_dna(seq::encode_dna(c)), c);
}

TEST(Encoding, RejectsInvalidCharacters) {
  EXPECT_THROW(seq::encode_dna('Z'), ParseError);
  EXPECT_THROW(seq::encode_dna('1'), ParseError);
  EXPECT_THROW(seq::encode_dna(' '), ParseError);
}

TEST(Alignment, BasicAccessors) {
  const Alignment a = tiny();
  EXPECT_EQ(a.taxon_count(), 4u);
  EXPECT_EQ(a.site_count(), 5u);
  EXPECT_EQ(a.name(2), "t2");
  EXPECT_EQ(a.at(0, 2), seq::encode_dna('C'));
  EXPECT_EQ(a.at(3, 3), seq::kGapCode);
}

TEST(Alignment, ValidationErrors) {
  EXPECT_THROW(Alignment::from_records({{"a", "AC"}, {"b", "ACG"},
                                        {"c", "AC"}, {"d", "AC"}}),
               ParseError);
  EXPECT_THROW(Alignment::from_records({{"a", "AC"}, {"a", "AC"},
                                        {"c", "AC"}, {"d", "AC"}}),
               ParseError);
  EXPECT_THROW(Alignment::from_records({{"a", "AC"}, {"b", "AC"}}),
               Error);  // too few taxa
}

TEST(Alignment, RecordsRoundTrip) {
  const Alignment a = tiny();
  const auto recs = a.to_records();
  const Alignment b = Alignment::from_records(recs);
  EXPECT_EQ(b.taxon_count(), a.taxon_count());
  for (std::size_t t = 0; t < a.taxon_count(); ++t)
    for (std::size_t s = 0; s < a.site_count(); ++s)
      EXPECT_EQ(a.at(t, s), b.at(t, s));
}

TEST(Alignment, EmpiricalFreqsSumToOneAndIgnoreGaps) {
  const auto f = tiny().empirical_base_freqs();
  EXPECT_NEAR(f[0] + f[1] + f[2] + f[3], 1.0, 1e-12);
  // Column of all 'A's dominates.
  EXPECT_GT(f[0], f[2]);
}

TEST(Patterns, CompressesDuplicateColumns) {
  const Alignment a = tiny();  // columns: AAAA, AAAA, CCCC, GGT-, TATT
  const PatternAlignment pa = PatternAlignment::compress(a);
  EXPECT_EQ(pa.site_count(), 5u);
  EXPECT_EQ(pa.pattern_count(), 4u);  // the two AAAA columns merge
  const double total =
      std::accumulate(pa.weights().begin(), pa.weights().end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Patterns, SiteToPatternIsConsistent) {
  const PatternAlignment pa = PatternAlignment::compress(tiny());
  const Alignment a = tiny();
  for (std::size_t s = 0; s < a.site_count(); ++s) {
    const std::size_t p = pa.site_to_pattern()[s];
    for (std::size_t t = 0; t < a.taxon_count(); ++t)
      EXPECT_EQ(pa.at(t, p), a.at(t, s));
  }
}

TEST(Patterns, WeightsMatchColumnMultiplicity) {
  const PatternAlignment pa = PatternAlignment::compress(tiny());
  const std::size_t p0 = pa.site_to_pattern()[0];
  EXPECT_DOUBLE_EQ(pa.weights()[p0], 2.0);  // AAAA appears twice
}

TEST(Bootstrap, WeightsSumToSiteCount) {
  const PatternAlignment pa = PatternAlignment::compress(tiny());
  Rng rng(99);
  for (int rep = 0; rep < 20; ++rep) {
    const auto w = seq::bootstrap_weights(pa, rng);
    EXPECT_EQ(w.size(), pa.pattern_count());
    EXPECT_DOUBLE_EQ(std::accumulate(w.begin(), w.end(), 0.0), 5.0);
    for (double x : w) EXPECT_GE(x, 0.0);
  }
}

TEST(Bootstrap, ReplicatesVary) {
  const auto sim = seq::simulate_alignment({});
  const PatternAlignment pa = PatternAlignment::compress(sim.alignment);
  Rng rng(1);
  const auto w1 = seq::bootstrap_weights(pa, rng);
  const auto w2 = seq::bootstrap_weights(pa, rng);
  EXPECT_NE(w1, w2);
}

TEST(Bootstrap, ExpectationMatchesOriginalWeights) {
  const PatternAlignment pa = PatternAlignment::compress(tiny());
  Rng rng(5);
  std::vector<double> sum(pa.pattern_count(), 0.0);
  constexpr int kReps = 4000;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto w = seq::bootstrap_weights(pa, rng);
    for (std::size_t p = 0; p < w.size(); ++p) sum[p] += w[p];
  }
  for (std::size_t p = 0; p < sum.size(); ++p)
    EXPECT_NEAR(sum[p] / kReps, pa.weights()[p], 0.08) << "pattern " << p;
}

TEST(Bootstrap, SupportFractions) {
  const std::vector<std::vector<bool>> reps{{true, false},
                                            {true, true},
                                            {false, true},
                                            {true, true}};
  const auto s = seq::support_fractions(reps);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 0.75);
  EXPECT_DOUBLE_EQ(s[1], 0.75);
}

TEST(SeqGen, DeterministicGivenSeed) {
  seq::SimOptions opt;
  opt.seed = 77;
  const auto a = seq::simulate_alignment(opt);
  const auto b = seq::simulate_alignment(opt);
  EXPECT_EQ(a.true_tree_newick, b.true_tree_newick);
  for (std::size_t t = 0; t < a.alignment.taxon_count(); ++t)
    for (std::size_t s = 0; s < a.alignment.site_count(); ++s)
      EXPECT_EQ(a.alignment.at(t, s), b.alignment.at(t, s));
}

TEST(SeqGen, DifferentSeedsDiffer) {
  seq::SimOptions opt;
  opt.seed = 1;
  const auto a = seq::simulate_alignment(opt);
  opt.seed = 2;
  const auto b = seq::simulate_alignment(opt);
  EXPECT_NE(a.true_tree_newick, b.true_tree_newick);
}

TEST(SeqGen, ShapeMatchesOptions) {
  seq::SimOptions opt;
  opt.ntaxa = 10;
  opt.nsites = 333;
  const auto sim = seq::simulate_alignment(opt);
  EXPECT_EQ(sim.alignment.taxon_count(), 10u);
  EXPECT_EQ(sim.alignment.site_count(), 333u);
  // Names are prefix + index, all unique.
  std::set<std::string> names(sim.alignment.names().begin(),
                              sim.alignment.names().end());
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(names.contains("taxon0"));
}

TEST(SeqGen, LongerBranchesGiveMorePatterns) {
  seq::SimOptions close;
  close.ntaxa = 12;
  close.nsites = 600;
  close.branch_scale = 0.01;
  seq::SimOptions far = close;
  far.branch_scale = 0.5;
  const auto pc = seq::PatternAlignment::compress(
                      seq::simulate_alignment(close).alignment)
                      .pattern_count();
  const auto pf =
      seq::PatternAlignment::compress(seq::simulate_alignment(far).alignment)
          .pattern_count();
  EXPECT_LT(pc, pf);
}

TEST(SeqGen, Make42ScMatchesPaperWorkloadShape) {
  const auto sim = seq::make_42sc();
  EXPECT_EQ(sim.alignment.taxon_count(), 42u);
  EXPECT_EQ(sim.alignment.site_count(), 1167u);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  // Paper: "the number of distinct data patterns ... is on the order of 250".
  EXPECT_GE(pa.pattern_count(), 180u);
  EXPECT_LE(pa.pattern_count(), 330u);
}

TEST(SeqGen, RejectsBadOptions) {
  seq::SimOptions opt;
  opt.ntaxa = 3;
  EXPECT_THROW(seq::simulate_alignment(opt), Error);
  opt.ntaxa = 8;
  opt.nsites = 0;
  EXPECT_THROW(seq::simulate_alignment(opt), Error);
}
