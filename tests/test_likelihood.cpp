// Tests for src/likelihood: kernel correctness against a brute-force
// oracle, the pulley principle, SIMD/scalar and conditional-variant
// equivalence, fast exp accuracy, scaling, branch optimization and
// lazy-SPR insertion scoring.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "likelihood/engine.h"
#include "likelihood/fast_exp.h"
#include "likelihood/kernels.h"
#include "likelihood/scaling.h"
#include "likelihood/tip_table.h"
#include "seq/bootstrap.h"
#include "seq/seqgen.h"
#include "support/stats.h"
#include "tree/moves.h"
#include "tree/parsimony.h"

using namespace rxc;
using lh::EngineConfig;
using lh::LikelihoodEngine;
using lh::RateMode;
using seq::PatternAlignment;
using tree::Tree;

namespace {

const model::DnaModel kGtr = model::DnaModel::gtr(
    {1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, {0.30, 0.21, 0.24, 0.25});

/// Brute-force site likelihood: enumerates all assignments of states to the
/// inner nodes.  Completely independent of the kernel code paths (uses
/// model::transition_matrix only).
double brute_force_site_lh(const Tree& t, const PatternAlignment& pa,
                           const model::DnaModel& mdl, double rate,
                           std::size_t pattern) {
  const auto es = model::decompose(mdl);
  const int ntips = static_cast<int>(t.tip_count());
  const int ninner = static_cast<int>(t.node_count()) - ntips;

  // Precompute P(t*rate) per edge.
  std::vector<model::Matrix4> pmat(t.edge_slots());
  for (std::size_t e = 0; e < t.edge_slots(); ++e)
    if (t.edge_alive(static_cast<int>(e)))
      pmat[e] =
          model::transition_matrix(es, t.branch_length(static_cast<int>(e)) * rate);

  double total = 0.0;
  std::vector<int> state(ninner, 0);
  const std::size_t combos = 1ull << (2 * ninner);  // 4^ninner
  for (std::size_t mask = 0; mask < combos; ++mask) {
    for (int i = 0; i < ninner; ++i) state[i] = (mask >> (2 * i)) & 3;
    double prod = mdl.freqs[state[0]];  // root at first inner node
    for (std::size_t e = 0; e < t.edge_slots(); ++e) {
      if (!t.edge_alive(static_cast<int>(e))) continue;
      auto [a, b] = t.edge_nodes(static_cast<int>(e));
      if (t.is_tip(a)) std::swap(a, b);
      const int sa = state[a - ntips];
      if (t.is_tip(b)) {
        const double* tipv = lh::kTipTable.row(pa.at(b, pattern));
        double sum = 0.0;
        for (int j = 0; j < 4; ++j) sum += pmat[e][sa * 4 + j] * tipv[j];
        prod *= sum;
      } else {
        prod *= pmat[e][sa * 4 + state[b - ntips]];
      }
    }
    total += prod;
  }
  return total;
}

struct Fixture {
  seq::Alignment aln;
  PatternAlignment pa;
  std::vector<std::string> nm;
  Fixture()
      : aln(seq::Alignment::from_records({{"t0", "ACGTAN-C"},
                                          {"t1", "ACGTAACC"},
                                          {"t2", "ACCTCAGC"},
                                          {"t3", "AGCTCRGT"}})),
        pa(PatternAlignment::compress(aln)),
        nm({"t0", "t1", "t2", "t3"}) {}
};

Tree quartet(const Fixture& f) {
  return Tree::from_newick_string(
      "((t0:0.11,t1:0.23):0.07,(t2:0.31,t3:0.13):0.09);", f.nm);
}

}  // namespace

// --- brute force oracle ------------------------------------------------

TEST(Oracle, SingleRateCatMatchesBruteForce) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 1;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);

  double expected = 0.0;
  for (std::size_t p = 0; p < f.pa.pattern_count(); ++p)
    expected += f.pa.weights()[p] *
                std::log(brute_force_site_lh(t, f.pa, kGtr, 1.0, p));
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-10);
}

TEST(Oracle, Jc69MatchesBruteForce) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = model::DnaModel::jc69();
  cfg.mode = RateMode::kCat;
  cfg.categories = 1;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  double expected = 0.0;
  for (std::size_t p = 0; p < f.pa.pattern_count(); ++p)
    expected += f.pa.weights()[p] *
                std::log(brute_force_site_lh(t, f.pa, cfg.model, 1.0, p));
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-10);
}

TEST(Oracle, GammaMatchesBruteForceAverage) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 0.7;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);

  const auto rates = model::DiscreteGamma::make(0.7, 4).rates;
  double expected = 0.0;
  for (std::size_t p = 0; p < f.pa.pattern_count(); ++p) {
    double site = 0.0;
    for (double r : rates) site += brute_force_site_lh(t, f.pa, kGtr, r, p);
    expected += f.pa.weights()[p] * std::log(site / 4.0);
  }
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-10);
}

TEST(Oracle, FiveTaxonAsymmetricTree) {
  const auto aln = seq::Alignment::from_records({{"t0", "ACGTT"},
                                                 {"t1", "ACGTA"},
                                                 {"t2", "ACCTA"},
                                                 {"t3", "AGCAA"},
                                                 {"t4", "GGCAC"}});
  const auto pa = PatternAlignment::compress(aln);
  const std::vector<std::string> nm{"t0", "t1", "t2", "t3", "t4"};
  Tree t = Tree::from_newick_string(
      "(((t0:0.1,t1:0.2):0.12,t2:0.3):0.21,t3:0.17,t4:0.4);", nm);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 1;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  double expected = 0.0;
  for (std::size_t p = 0; p < pa.pattern_count(); ++p)
    expected +=
        pa.weights()[p] * std::log(brute_force_site_lh(t, pa, kGtr, 1.0, p));
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-9);
}

// --- pulley principle ------------------------------------------------------

TEST(Pulley, LikelihoodSameAtEveryEdge) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(42);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.08);

  for (const RateMode mode : {RateMode::kCat, RateMode::kGamma}) {
    EngineConfig cfg;
    cfg.model = kGtr;
    cfg.mode = mode;
    cfg.categories = 4;
    cfg.alpha = 0.6;
    LikelihoodEngine eng(pa, cfg);
    eng.set_tree(&t);
    const double ref = eng.log_likelihood();
    EXPECT_TRUE(std::isfinite(ref));
    for (std::size_t e = 0; e < t.edge_slots(); ++e) {
      if (!t.edge_alive(static_cast<int>(e))) continue;
      EXPECT_NEAR(eng.evaluate(static_cast<int>(e)), ref, 1e-8)
          << "edge " << e << " mode " << static_cast<int>(mode);
    }
  }
}

// --- optimization-stage equivalences ---------------------------------------
// The paper's optimizations must never change results, only time.

TEST(Equivalence, FastExpMatchesLibmAcrossKernelDomain) {
  Rng rng(7);
  double max_rel = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const double x = -lh::kExpDomain * rng.uniform();
    max_rel = std::max(max_rel, rel_diff(lh::exp_sdk(x), std::exp(x)));
  }
  EXPECT_LT(max_rel, 3e-14);
  EXPECT_DOUBLE_EQ(lh::exp_sdk(0.0), 1.0);
  EXPECT_EQ(lh::exp_sdk(-800.0), 0.0);
  EXPECT_TRUE(std::isinf(lh::exp_sdk(800.0)));
}

TEST(Equivalence, ScalingConditionalVariantsAgree) {
  Rng rng(11);
  for (int trial = 0; trial < 100000; ++trial) {
    double v[4];
    for (double& x : v) {
      const int regime = static_cast<int>(rng.below(4));
      switch (regime) {
        case 0: x = rng.uniform() * 1e-300; break;           // denormal-ish
        case 1: x = rng.uniform() * lh::kMinLikelihood; break;  // near thresh
        case 2: x = lh::kMinLikelihood; break;               // exact boundary
        default: x = rng.uniform(); break;                   // ordinary
      }
    }
    EXPECT_EQ(lh::needs_scaling_fp(v, 4), lh::needs_scaling_int(v, 4));
  }
  const double zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(lh::needs_scaling_fp(zeros, 4), lh::needs_scaling_int(zeros, 4));
}

TEST(Equivalence, EngineResultsIdenticalAcrossAllKernelConfigs) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(5);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.07);

  double reference = 0.0;
  bool first = true;
  for (const bool simd : {false, true}) {
    for (const auto exp_fn : {&lh::exp_libm, &lh::exp_sdk}) {
      for (const auto check :
           {lh::ScalingCheck::kFloatBranch, lh::ScalingCheck::kIntCast}) {
        EngineConfig cfg;
        cfg.model = kGtr;
        cfg.mode = RateMode::kCat;
        cfg.categories = 8;
        cfg.kernels = {exp_fn, check, simd};
        LikelihoodEngine eng(pa, cfg);
        eng.set_tree(&t);
        const double lnl = eng.log_likelihood();
        if (first) {
          reference = lnl;
          first = false;
        } else {
          EXPECT_NEAR(lnl, reference, std::fabs(reference) * 1e-11);
        }
      }
    }
  }
}

TEST(Equivalence, SimdNewviewBitwiseClose) {
  // Direct kernel-level comparison on random data.
  Rng rng(13);
  const int ncat = 4;
  const std::size_t np = 37;
  std::vector<double> pm1(ncat * 16), pm2(ncat * 16);
  const auto es = model::decompose(kGtr);
  const double rates[4] = {0.2, 0.7, 1.3, 2.8};
  lh::build_pmatrices(es, rates, ncat, 0.17, &lh::exp_libm, pm1.data());
  lh::build_pmatrices(es, rates, ncat, 0.41, &lh::exp_libm, pm2.data());
  std::vector<double> part1(np * 4), part2(np * 4);
  for (double& x : part1) x = rng.uniform() * 1e-3;
  for (double& x : part2) x = rng.uniform() * 1e-3;
  std::vector<int> cat(np);
  for (auto& c : cat) c = static_cast<int>(rng.below(ncat));
  std::vector<std::int32_t> sc1(np, 1), sc2(np, 2);

  lh::NewviewArgs args;
  args.pmat1 = pm1.data();
  args.pmat2 = pm2.data();
  args.ncat = ncat;
  args.cat = cat.data();
  args.np = np;
  args.partial1 = part1.data();
  args.scale1 = sc1.data();
  args.partial2 = part2.data();
  args.scale2 = sc2.data();

  std::vector<double> out_s(np * 4), out_v(np * 4);
  std::vector<std::int32_t> scale_s(np), scale_v(np);
  args.out = out_s.data();
  args.scale_out = scale_s.data();
  args.scaling = lh::ScalingCheck::kIntCast;
  const auto ev_s = lh::newview_cat(args);
  args.out = out_v.data();
  args.scale_out = scale_v.data();
  const auto ev_v = lh::newview_cat_simd(args);

  EXPECT_EQ(ev_s, ev_v);
  EXPECT_EQ(scale_s, scale_v);
  for (std::size_t i = 0; i < out_s.size(); ++i)
    EXPECT_LT(rel_diff(out_s[i], out_v[i]), 1e-13) << "entry " << i;
}

TEST(Equivalence, DispatchLevelsAgreeAcrossKernels) {
  // Pins each runtime SIMD level in turn (scalar, SSE2, AVX2) and compares
  // the dispatched kernels against the plain scalar ones on identical data.
  // Levels above what the CPU supports are skipped (set_simd_level caps).
  // Tier-1 on purpose: the sanitizer CI legs run this, so the AVX2 bodies
  // are executed — not merely compiled — under ASan/UBSan/TSan.
  Rng rng(29);
  const int ncat = 7;
  const std::size_t np = 53;  // partial SIMD block + odd unroll remainder
  const auto es = model::decompose(kGtr);
  std::vector<double> rates(ncat);
  for (int c = 0; c < ncat; ++c) rates[c] = 0.1 * (c + 1);
  std::vector<double> pm(ncat * 16);
  lh::build_pmatrices(es, rates.data(), ncat, 0.23, &lh::exp_libm, pm.data());
  std::vector<double> part1(np * 4), part2(np * 4), weights(np, 1.0);
  for (double& x : part1) x = rng.uniform() * 1e-3;
  for (double& x : part2) x = rng.uniform() * 1e-3;
  std::vector<int> cat(np);
  for (auto& c : cat) c = static_cast<int>(rng.below(ncat));

  lh::EvaluateArgs ev;
  ev.pmat = pm.data();
  ev.freqs = es.freqs.data();
  ev.ncat = ncat;
  ev.cat = cat.data();
  ev.np = np;
  ev.partial1 = part1.data();
  ev.partial2 = part2.data();
  ev.weights = weights.data();
  std::vector<double> site_ref(np), site_dut(np);
  ev.site_lnl_out = site_ref.data();
  const double lnl_ref = lh::evaluate_cat(ev);

  lh::SumtableArgs st;
  st.es = &es;
  st.ncat = ncat;
  st.np = np;
  st.partial1 = part1.data();
  st.partial2 = part2.data();
  std::vector<double> sum_ref(np * 4), sum_dut(np * 4);
  st.out = sum_ref.data();
  lh::make_sumtable_cat(st);

  const lh::SimdLevel original = lh::active_simd_level();
  for (const lh::SimdLevel level :
       {lh::SimdLevel::kScalar, lh::SimdLevel::kSse2, lh::SimdLevel::kAvx2}) {
    lh::set_simd_level(level);
    if (lh::active_simd_level() != level) continue;  // CPU cannot do it
    SCOPED_TRACE(lh::simd_level_name(level));

    ev.site_lnl_out = site_dut.data();
    const double lnl = lh::evaluate_cat_simd(ev);
    EXPECT_LT(rel_diff(lnl, lnl_ref), 1e-11);
    for (std::size_t p = 0; p < np; ++p)
      EXPECT_LT(rel_diff(site_dut[p], site_ref[p]), 1e-11) << "site " << p;

    st.out = sum_dut.data();
    lh::make_sumtable_cat_simd(st);
    for (std::size_t i = 0; i < sum_ref.size(); ++i)
      EXPECT_LT(rel_diff(sum_dut[i], sum_ref[i]), 1e-11) << "entry " << i;
  }
  lh::set_simd_level(original);
  EXPECT_EQ(lh::active_simd_level(), original);
}

// --- scaling ----------------------------------------------------------------

TEST(Scaling, DeepTreeTriggersEventsAndStaysFinite) {
  // Partial-likelihood magnitudes shrink roughly multiplicatively in the
  // number of taxa below a node; ~200 divergent taxa pushes them past the
  // 2^-256 threshold.
  seq::SimOptions opt;
  opt.ntaxa = 200;
  opt.nsites = 60;
  opt.branch_scale = 0.4;  // long branches, deep products
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(3);
  Tree t = Tree::random_topology(200, rng, 0.5);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 1;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double lnl = eng.log_likelihood();
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
  EXPECT_GT(eng.counters().scale_events, 0u);
  // Pulley still holds with scaling active.
  for (std::size_t e = 0; e < t.edge_slots(); e += 7)
    if (t.edge_alive(static_cast<int>(e)))
      EXPECT_NEAR(eng.evaluate(static_cast<int>(e)), lnl,
                  std::fabs(lnl) * 1e-10);
}

// --- branch optimization -----------------------------------------------------

TEST(BranchOpt, ImprovesOrMaintainsLikelihood) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(9);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.2);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 4;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double before = eng.log_likelihood();
  const double after = eng.optimize_all_branches(4);
  EXPECT_GE(after, before - 1e-6);
  EXPECT_GT(after, before + 1.0);  // a random tree is far from optimal
}

TEST(BranchOpt, MatchesGridSearchOptimum) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 1;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);

  // Pick the internal edge.
  int edge = -1;
  for (std::size_t e = 0; e < t.edge_slots(); ++e) {
    const auto [a, b] = t.edge_nodes(static_cast<int>(e));
    if (!t.is_tip(a) && !t.is_tip(b)) edge = static_cast<int>(e);
  }
  ASSERT_GE(edge, 0);
  eng.optimize_branch(edge);
  const double opt_len = t.branch_length(edge);
  const double opt_lnl = eng.evaluate(edge);

  // Dense grid scan around the optimum: nothing should beat NR by much.
  for (double len = 0.005; len < 1.0; len *= 1.15) {
    t.set_branch_length(edge, len);
    eng.on_branch_changed(edge);
    EXPECT_LE(eng.evaluate(edge), opt_lnl + 1e-6) << "len " << len;
  }
  t.set_branch_length(edge, opt_len);
  eng.on_branch_changed(edge);
}

TEST(BranchOpt, ReturnsAbsoluteLogLikelihood) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 2;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  const double reported = eng.optimize_branch(0);
  EXPECT_NEAR(reported, eng.evaluate(0), 1e-8);
}

// --- invalidation correctness -------------------------------------------------

TEST(Invalidation, BranchChangeMatchesFreshEngine) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(21);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 4;
  LikelihoodEngine cached(pa, cfg);
  cached.set_tree(&t);
  (void)cached.log_likelihood();  // populate caches

  for (int round = 0; round < 10; ++round) {
    const int e = static_cast<int>(rng.below(t.edge_slots()));
    if (!t.edge_alive(e)) continue;
    t.set_branch_length(e, 0.01 + 0.3 * rng.uniform());
    cached.on_branch_changed(e);
    LikelihoodEngine fresh(pa, cfg);
    fresh.set_tree(&t);
    EXPECT_NEAR(cached.log_likelihood(), fresh.log_likelihood(), 1e-8);
  }
}

TEST(Invalidation, PruneRegraftMatchesFreshEngine) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(23);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 4;
  LikelihoodEngine cached(pa, cfg);
  cached.set_tree(&t);
  (void)cached.log_likelihood();

  for (int round = 0; round < 8; ++round) {
    // Re-enumerate every round: topology edits change the valid (x, s)
    // prune points.
    const auto points = tree::enumerate_prune_points(t);
    const auto [x, s] = points[rng.below(points.size())];
    const auto rec = t.prune(x, s);
    cached.on_prune(rec);
    const auto targets = tree::enumerate_regraft_targets(t, rec, 4);
    if (targets.empty()) {
      t.restore(rec);
      cached.on_restore(rec);
      continue;
    }
    const auto& cand = targets[rng.below(targets.size())];
    const double half = t.branch_length(cand.target_edge) / 2;
    t.regraft(x, cand.target_edge, half, rec.edge_xb);
    cached.on_regraft(cand.target_edge, rec.edge_xb);
    t.check_valid();

    LikelihoodEngine fresh(pa, cfg);
    fresh.set_tree(&t);
    EXPECT_NEAR(cached.log_likelihood(), fresh.log_likelihood(), 1e-8)
        << "round " << round;
  }
}

// --- lazy SPR insertion scoring -----------------------------------------------

TEST(Insertion, ScoreMatchesActualRegraft) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(31);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 4;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  (void)eng.log_likelihood();

  const auto points = tree::enumerate_prune_points(t);
  int tested = 0;
  for (const auto& [x, s] : points) {
    if (tested >= 5) break;
    auto rec = t.prune(x, s);
    eng.on_prune(rec);
    const auto targets = tree::enumerate_regraft_targets(t, rec, 3);
    if (targets.empty()) {
      t.restore(rec);
      eng.on_restore(rec);
      continue;
    }
    const auto& cand = targets[rng.below(targets.size())];
    const double predicted = eng.score_insertion(rec, cand.target_edge);

    const double half = t.branch_length(cand.target_edge) / 2;
    t.regraft(x, cand.target_edge, half, rec.edge_xb);
    eng.on_regraft(cand.target_edge, rec.edge_xb);
    const double actual = eng.log_likelihood();
    EXPECT_NEAR(predicted, actual, std::fabs(actual) * 1e-10);

    // Undo: prune back and restore the original position.
    const auto rec2 = t.prune(x, s);
    eng.on_prune(rec2);
    t.restore(rec);
    eng.on_restore(rec);
    ++tested;
  }
  EXPECT_GE(tested, 3);
}

// --- CAT assignment -----------------------------------------------------------

TEST(Cat, AssignmentImprovesLikelihoodOnHeterogeneousData) {
  seq::SimOptions opt;
  opt.gamma_alpha = 0.3;  // strongly heterogeneous rates
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(37);
  Tree t = tree::stepwise_addition_tree(pa, rng);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 8;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  eng.optimize_all_branches(2);
  const double before = eng.log_likelihood();
  eng.assign_cat_categories();
  const double after = eng.log_likelihood();
  EXPECT_GT(after, before);
  // Weighted mean rate renormalized to 1.
  double wsum = 0.0, rsum = 0.0;
  for (std::size_t p = 0; p < pa.pattern_count(); ++p) {
    wsum += pa.weights()[p];
    rsum += pa.weights()[p] * eng.rates()[eng.cat_assignment()[p]];
  }
  EXPECT_NEAR(rsum / wsum, 1.0, 1e-9);
}

// --- bootstrap weights ----------------------------------------------------------

TEST(Weights, BootstrapChangesLikelihoodOriginalRestoresIt) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(41);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  EngineConfig cfg;
  cfg.model = kGtr;
  LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double orig = eng.log_likelihood();
  eng.set_pattern_weights(seq::bootstrap_weights(pa, rng));
  EXPECT_NE(eng.log_likelihood(), orig);
  eng.set_pattern_weights(pa.weights());
  EXPECT_DOUBLE_EQ(eng.log_likelihood(), orig);
}

// --- counters --------------------------------------------------------------------

TEST(Counters, ExpCallsMatchPaperAccounting) {
  // One newview invocation rebuilds two transition-matrix sets: with C
  // categories that is 2*C*3 exp calls (the paper's ~150 at C=25).
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kCat;
  cfg.categories = 25;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  (void)eng.log_likelihood();
  const auto& c = eng.counters();
  EXPECT_GT(c.newview_calls, 0u);
  // evaluate() builds one matrix set (25*3), each newview two (150).
  EXPECT_EQ(c.exp_calls, c.newview_calls * 150 + c.evaluate_calls * 75);
}

TEST(Counters, CacheAvoidsRecomputation) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  (void)eng.evaluate(0);
  const auto first = eng.counters().newview_calls;
  (void)eng.evaluate(0);  // fully cached: no new newview work
  EXPECT_EQ(eng.counters().newview_calls, first);
}

TEST(Equivalence, SimdEvaluateAndSumtableMatchScalar) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(77);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.07);
  for (const RateMode mode : {RateMode::kCat, RateMode::kGamma}) {
    EngineConfig scalar_cfg;
    scalar_cfg.model = kGtr;
    scalar_cfg.mode = mode;
    scalar_cfg.categories = 4;
    EngineConfig simd_cfg = scalar_cfg;
    simd_cfg.kernels.simd = true;

    LikelihoodEngine a(pa, scalar_cfg), b(pa, simd_cfg);
    auto t1 = t, t2 = t;
    a.set_tree(&t1);
    b.set_tree(&t2);
    // evaluate path
    EXPECT_LT(rel_diff(a.log_likelihood(), b.log_likelihood()), 1e-12);
    // sumtable + NR path: optimize the same branch and compare outcome
    const double la = a.optimize_branch(0);
    const double lb = b.optimize_branch(0);
    EXPECT_LT(rel_diff(la, lb), 1e-10);
    EXPECT_LT(rel_diff(t1.branch_length(0), t2.branch_length(0)), 1e-8);
  }
}

TEST(BranchOpt, NrDerivativesMatchFiniteDifferences) {
  // d lnl/dt and d2 lnl/dt2 from the sumtable machinery must agree with
  // numeric differentiation of the actual log-likelihood in t.
  const auto sim = seq::simulate_alignment({});
  const auto pa = PatternAlignment::compress(sim.alignment);
  Rng rng(71);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  for (const RateMode mode : {RateMode::kCat, RateMode::kGamma}) {
    EngineConfig cfg;
    cfg.model = kGtr;
    cfg.mode = mode;
    cfg.categories = 4;
    LikelihoodEngine eng(pa, cfg);
    auto tc = t;
    eng.set_tree(&tc);
    const int edge = 2;
    eng.prepare_branch(edge);

    const double t0 = 0.13;
    const double h = 1e-6;
    const auto at = [&](double x) { return eng.branch_derivatives(x); };
    const auto mid = at(t0);
    const auto hi = at(t0 + h);
    const auto lo = at(t0 - h);
    EXPECT_NEAR(mid.d1, (hi.lnl - lo.lnl) / (2 * h),
                1e-4 * (1.0 + std::fabs(mid.d1)));
    EXPECT_NEAR(mid.d2, (hi.lnl - 2 * mid.lnl + lo.lnl) / (h * h),
                1e-2 * (1.0 + std::fabs(mid.d2)));

    // And the sumtable lnl itself must track evaluate() up to the constant
    // scaling correction: differences across t must match exactly.
    tc.set_branch_length(edge, t0);
    eng.on_branch_changed(edge);
    const double e0 = eng.evaluate(edge);
    tc.set_branch_length(edge, t0 * 2);
    eng.on_branch_changed(edge);
    const double e1 = eng.evaluate(edge);
    const auto d0 = at(t0);
    const auto d1 = at(t0 * 2);
    EXPECT_NEAR(e1 - e0, d1.lnl - d0.lnl, 1e-8);
  }
}

TEST(EngineApi, MutationEpochTracksStateChanges) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  LikelihoodEngine eng(f.pa, cfg);
  const auto e0 = eng.mutation_epoch();
  eng.set_tree(&t);
  const auto e1 = eng.mutation_epoch();
  EXPECT_GT(e1, e0);
  eng.set_pattern_weights(f.pa.weights());
  EXPECT_GT(eng.mutation_epoch(), e1);
}

TEST(EngineApi, SetModelChangesLikelihoodAndValidates) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  cfg.model = kGtr;
  cfg.mode = RateMode::kGamma;
  cfg.categories = 4;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  const double gtr_lnl = eng.log_likelihood();
  eng.set_model(model::DnaModel::jc69());
  EXPECT_NE(eng.log_likelihood(), gtr_lnl);
  eng.set_model(kGtr);
  EXPECT_DOUBLE_EQ(eng.log_likelihood(), gtr_lnl);

  model::DnaModel bad = kGtr;
  bad.freqs = {2.0, 0.1, 0.1, 0.1};
  EXPECT_THROW(eng.set_model(bad), Error);
}

TEST(EngineApi, SetGammaAlphaRequiresGammaMode) {
  Fixture f;
  EngineConfig cat_cfg;
  cat_cfg.mode = RateMode::kCat;
  LikelihoodEngine cat_eng(f.pa, cat_cfg);
  EXPECT_THROW(cat_eng.set_gamma_alpha(0.5), Error);

  EngineConfig gamma_cfg;
  gamma_cfg.mode = RateMode::kGamma;
  gamma_cfg.categories = 4;
  LikelihoodEngine eng(f.pa, gamma_cfg);
  Tree t = quartet(f);
  eng.set_tree(&t);
  const double a1 = eng.log_likelihood();
  eng.set_gamma_alpha(0.2);
  EXPECT_NE(eng.log_likelihood(), a1);
  EXPECT_THROW(eng.set_gamma_alpha(-1.0), Error);
}

TEST(EngineApi, ResetCountersZeroesEverything) {
  Fixture f;
  Tree t = quartet(f);
  EngineConfig cfg;
  LikelihoodEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  (void)eng.log_likelihood();
  EXPECT_GT(eng.counters().newview_calls, 0u);
  eng.reset_counters();
  EXPECT_EQ(eng.counters().newview_calls, 0u);
  EXPECT_EQ(eng.counters().exp_calls, 0u);
}
