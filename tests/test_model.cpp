// Tests for src/model: rate matrices, eigendecomposition, transition
// probabilities, and the Gamma/CAT rate machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "model/dna_model.h"
#include "model/gamma_math.h"
#include "model/matrix4.h"
#include "model/rates.h"
#include "support/error.h"

namespace m = rxc::model;

namespace {

const m::DnaModel kGtr = m::DnaModel::gtr({1.2, 3.1, 0.9, 1.1, 3.4, 1.0},
                                          {0.30, 0.21, 0.24, 0.25});

}  // namespace

TEST(RateMatrix, RowsSumToZero) {
  const m::Matrix4 q = kGtr.rate_matrix();
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 4; ++j) row += q[i * 4 + j];
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(RateMatrix, NormalizedMeanRateIsOne) {
  const m::Matrix4 q = kGtr.rate_matrix();
  double mu = 0.0;
  for (int i = 0; i < 4; ++i) mu -= kGtr.freqs[i] * q[i * 4 + i];
  EXPECT_NEAR(mu, 1.0, 1e-12);
}

TEST(RateMatrix, DetailedBalance) {
  const m::Matrix4 q = kGtr.rate_matrix();
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(kGtr.freqs[i] * q[i * 4 + j], kGtr.freqs[j] * q[j * 4 + i],
                  1e-12);
}

TEST(RateMatrix, Jc69OffDiagonalsEqual) {
  const m::Matrix4 q = m::DnaModel::jc69().rate_matrix();
  const double off = q[1];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) EXPECT_NEAR(q[i * 4 + j], off, 1e-12);
}

TEST(RateMatrix, ValidationRejectsBadInputs) {
  m::DnaModel bad = kGtr;
  bad.freqs = {0.5, 0.5, 0.2, 0.2};
  EXPECT_THROW(bad.validate(), rxc::Error);
  bad = kGtr;
  bad.rates[2] = -1.0;
  EXPECT_THROW(bad.validate(), rxc::Error);
  bad = kGtr;
  bad.freqs = {1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(bad.validate(), rxc::Error);
}

TEST(Eigen, ReconstructsQ) {
  const auto es = m::decompose(kGtr);
  const m::Matrix4 q = kGtr.rate_matrix();
  // Q = U diag(lambda) V.
  m::Matrix4 rec{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k)
        sum += es.u[i * 4 + k] * es.lambda[k] * es.v[k * 4 + j];
      rec[i * 4 + j] = sum;
    }
  EXPECT_LT(m::max_abs_diff(rec, q), 1e-10);
}

TEST(Eigen, UVAreInverses) {
  const auto es = m::decompose(kGtr);
  const m::Matrix4 prod = m::multiply(es.u, es.v);
  EXPECT_LT(m::max_abs_diff(prod, m::identity4()), 1e-10);
}

TEST(Eigen, StationaryEigenvalueZeroOthersNegative) {
  const auto es = m::decompose(kGtr);
  EXPECT_NEAR(es.lambda[0], 0.0, 1e-10);
  for (int k = 1; k < 4; ++k) EXPECT_LT(es.lambda[k], -1e-6);
}

TEST(Transition, AtZeroIsIdentity) {
  const auto es = m::decompose(kGtr);
  EXPECT_LT(m::max_abs_diff(m::transition_matrix(es, 0.0), m::identity4()),
            1e-12);
}

TEST(Transition, RowsSumToOne) {
  const auto es = m::decompose(kGtr);
  for (double t : {0.01, 0.1, 0.5, 1.0, 5.0, 20.0}) {
    const m::Matrix4 p = m::transition_matrix(es, t);
    for (int i = 0; i < 4; ++i) {
      double row = 0.0;
      for (int j = 0; j < 4; ++j) {
        EXPECT_GE(p[i * 4 + j], -1e-14);
        row += p[i * 4 + j];
      }
      EXPECT_NEAR(row, 1.0, 1e-12) << "t=" << t << " row " << i;
    }
  }
}

TEST(Transition, ChapmanKolmogorov) {
  const auto es = m::decompose(kGtr);
  const m::Matrix4 ps = m::transition_matrix(es, 0.3);
  const m::Matrix4 pt = m::transition_matrix(es, 0.7);
  const m::Matrix4 pst = m::transition_matrix(es, 1.0);
  EXPECT_LT(m::max_abs_diff(m::multiply(ps, pt), pst), 1e-12);
}

TEST(Transition, DetailedBalanceAtFiniteTime) {
  const auto es = m::decompose(kGtr);
  const m::Matrix4 p = m::transition_matrix(es, 0.42);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(kGtr.freqs[i] * p[i * 4 + j], kGtr.freqs[j] * p[j * 4 + i],
                  1e-12);
}

TEST(Transition, ConvergesToStationary) {
  const auto es = m::decompose(kGtr);
  const m::Matrix4 p = m::transition_matrix(es, 500.0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(p[i * 4 + j], kGtr.freqs[j], 1e-9);
}

TEST(Transition, DerivativeMatchesFiniteDifference) {
  const auto es = m::decompose(kGtr);
  const double t = 0.35, h = 1e-6;
  const m::Matrix4 d1 = m::transition_matrix_d1(es, t);
  const m::Matrix4 hi = m::transition_matrix(es, t + h);
  const m::Matrix4 lo = m::transition_matrix(es, t - h);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(d1[i], (hi[i] - lo[i]) / (2 * h), 1e-6);
}

TEST(Transition, SecondDerivativeMatchesFiniteDifference) {
  const auto es = m::decompose(kGtr);
  const double t = 0.35, h = 1e-5;
  const m::Matrix4 d2 = m::transition_matrix_d2(es, t);
  const m::Matrix4 hi = m::transition_matrix_d1(es, t + h);
  const m::Matrix4 lo = m::transition_matrix_d1(es, t - h);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(d2[i], (hi[i] - lo[i]) / (2 * h), 1e-5);
}

TEST(Transition, K80TransitionTransversionBias) {
  // Under K80 with kappa >> 1, transitions (A<->G, C<->T) are more likely
  // than transversions.
  const auto es = m::decompose(m::DnaModel::k80(10.0));
  const m::Matrix4 p = m::transition_matrix(es, 0.2);
  EXPECT_GT(p[m::kA * 4 + m::kG], p[m::kA * 4 + m::kC]);
  EXPECT_GT(p[m::kC * 4 + m::kT], p[m::kC * 4 + m::kA]);
}

// --- special functions ---------------------------------------------------

TEST(GammaMath, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(m::incomplete_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  // P(a, 0) = 0; P(a, inf-ish) = 1.
  EXPECT_DOUBLE_EQ(m::incomplete_gamma_p(2.5, 0.0), 0.0);
  EXPECT_NEAR(m::incomplete_gamma_p(2.5, 1e4), 1.0, 1e-12);
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 2.0})
    EXPECT_NEAR(m::incomplete_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
}

TEST(GammaMath, PointNormalRoundTrips) {
  for (double p : {0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999}) {
    const double z = m::point_normal(p);
    const double phi = 0.5 * (1.0 + std::erf(z / std::sqrt(2.0)));
    EXPECT_NEAR(phi, p, 2e-4) << "p=" << p;
  }
  EXPECT_NEAR(m::point_normal(0.5), 0.0, 1e-9);
}

TEST(GammaMath, PointChi2RoundTrips) {
  for (double v : {0.5, 1.0, 2.0, 4.0, 10.0}) {
    for (double p : {0.05, 0.25, 0.5, 0.9, 0.99}) {
      const double x = m::point_chi2(p, v);
      EXPECT_NEAR(m::incomplete_gamma_p(v / 2.0, x / 2.0), p, 1e-8)
          << "v=" << v << " p=" << p;
    }
  }
}

// --- rate heterogeneity ----------------------------------------------------

TEST(DiscreteGamma, MeanIsOne) {
  for (double alpha : {0.2, 0.5, 1.0, 2.0, 10.0}) {
    for (std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const auto dg = m::DiscreteGamma::make(alpha, n);
      double mean = 0.0;
      for (double r : dg.rates) mean += r;
      mean /= static_cast<double>(n);
      EXPECT_NEAR(mean, 1.0, 1e-9) << "alpha=" << alpha << " n=" << n;
    }
  }
}

TEST(DiscreteGamma, RatesIncreaseAcrossCategories) {
  const auto dg = m::DiscreteGamma::make(0.5, 4);
  for (std::size_t i = 1; i < dg.rates.size(); ++i)
    EXPECT_GT(dg.rates[i], dg.rates[i - 1]);
  EXPECT_GT(dg.rates[0], 0.0);
}

TEST(DiscreteGamma, LowAlphaIsMoreSkewed) {
  const auto skewed = m::DiscreteGamma::make(0.2, 4);
  const auto flat = m::DiscreteGamma::make(20.0, 4);
  EXPECT_LT(skewed.rates[0], flat.rates[0]);
  EXPECT_GT(skewed.rates[3], flat.rates[3]);
}

TEST(DiscreteGamma, SingleCategoryIsRateOne) {
  const auto dg = m::DiscreteGamma::make(0.7, 1);
  ASSERT_EQ(dg.rates.size(), 1u);
  EXPECT_DOUBLE_EQ(dg.rates[0], 1.0);
}

TEST(CatRates, GeometricSpacingAndBounds) {
  const auto cr = m::CatRates::make(25);
  ASSERT_EQ(cr.rates.size(), 25u);
  EXPECT_NEAR(cr.rates.front(), 1.0 / 32.0, 1e-12);
  EXPECT_NEAR(cr.rates.back(), 32.0, 1e-9);
  const double ratio = cr.rates[1] / cr.rates[0];
  for (std::size_t i = 2; i < cr.rates.size(); ++i)
    EXPECT_NEAR(cr.rates[i] / cr.rates[i - 1], ratio, 1e-9);
}

TEST(CatRates, NormalizeGivesWeightedMeanOne) {
  auto cr = m::CatRates::make(8);
  const std::vector<int> assign{0, 3, 3, 5, 7, 2};
  const std::vector<double> weights{10, 5, 5, 2, 1, 7};
  cr.normalize(assign, weights);
  double wsum = 0.0, rsum = 0.0;
  for (std::size_t i = 0; i < assign.size(); ++i) {
    wsum += weights[i];
    rsum += weights[i] * cr.rates[assign[i]];
  }
  EXPECT_NEAR(rsum / wsum, 1.0, 1e-12);
}

TEST(Gamma, InvalidParametersThrow) {
  EXPECT_THROW(m::DiscreteGamma::make(-1.0, 4), rxc::Error);
  EXPECT_THROW(m::DiscreteGamma::make(1.0, 0), rxc::Error);
  EXPECT_THROW(m::CatRates::make(0), rxc::Error);
}
