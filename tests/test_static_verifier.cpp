// Static schedule verifier suite.  The load-bearing guarantees:
//
//  * soundness vs the dynamic detector — every planted-hazard class the
//    race detector flags at runtime is flagged statically on the SAME
//    Program (cell::hazard_program is the shared source of truth), with the
//    verdict kinds mapped 1:1 via dynamic_counterpart;
//  * zero false positives — the canonical offload pipeline extracted for
//    every stage x llp_ways x device preset (both rate modes, batched and
//    serial) proves clean;
//  * the resource proofs — local-store occupancy, MFC queue depth, tag
//    range, DMA legality and mailbox progress — refute exactly the
//    schedules that violate them, with peak witnesses reported;
//  * extraction fidelity — the abstract program core::extract_program emits
//    matches the live SPE executor's machine-event stream op-for-op;
//  * the report is a faithful value — to_string/from_string round-trips
//    bitwise, malformed input is ConfigError;
//  * serving admission — an unverifiable job is rejected at submit with the
//    refuting StaticReport attached, while verified jobs on the same pool
//    complete bitwise-identically to pre-verifier behavior.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/race_detector.h"
#include "analysis/static_verifier.h"
#include "cell/device_model.h"
#include "cell/events.h"
#include "cell/fault.h"
#include "cell/program.h"
#include "cell/spu.h"
#include "core/scheduler.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "likelihood/executor.h"
#include "serve/server.h"
#include "support/aligned.h"
#include "support/error.h"
#include "workload.h"

using namespace rxc;
using analysis::StaticReport;
using analysis::ViolationKind;
using cell::DeviceModel;
using cell::OpKind;
using cell::Program;
using core::ProgramShape;
using core::Stage;

namespace {

// --- cross-validation against the dynamic detector --------------------------

analysis::HazardKind dynamic_kind(cell::RaceHazard hazard) {
  switch (hazard) {
    case cell::RaceHazard::kSkippedTagWait:
      return analysis::HazardKind::kReadBeforeWait;
    case cell::RaceHazard::kPrematureBufferReuse:
      return analysis::HazardKind::kBufferHazard;
    case cell::RaceHazard::kOverlappingEaPut:
      return analysis::HazardKind::kEaPutOverlap;
    case cell::RaceHazard::kBrokenSignalOrder:
      return analysis::HazardKind::kSignalOrder;
    case cell::RaceHazard::kStalePartialRead:
      return analysis::HazardKind::kStalePartial;
  }
  return analysis::HazardKind::kReadBeforeWait;
}

TEST(StaticVerifier, FlagsEveryPlantedHazardClass) {
  // 100% of the dynamic detector's planted classes, statically, on the
  // exact Program plant_hazard interprets — no false negatives by
  // construction, and exactly one finding each (precision, not just recall).
  const DeviceModel dev;
  for (const cell::RaceHazard hazard : cell::kAllRaceHazards) {
    const StaticReport report =
        analysis::verify_program(cell::hazard_program(hazard, dev), dev,
                                 cell::race_hazard_name(hazard));
    ASSERT_EQ(report.total, 1u)
        << cell::race_hazard_name(hazard) << "\n" << report.summary();
    const auto counterpart =
        analysis::dynamic_counterpart(report.findings[0].kind);
    ASSERT_TRUE(counterpart.has_value())
        << report.findings[0].to_string();
    EXPECT_EQ(*counterpart, dynamic_kind(hazard))
        << report.findings[0].to_string();
  }
}

TEST(StaticVerifier, AgreesWithTheDynamicDetectorOnEveryPlant) {
  // The teeth: run BOTH analyses over each planted class and require the
  // same verdict kind.  Static consumes hazard_program directly; dynamic
  // watches plant_hazard interpret that same program on a live machine.
  for (const cell::RaceHazard hazard : cell::kAllRaceHazards) {
    analysis::RaceDetector detector(/*fatal=*/false);
    cell::set_event_sink(&detector);
    cell::CellMachine machine;
    cell::plant_hazard(machine, hazard);
    cell::set_event_sink(nullptr);
    const analysis::AnalysisReport dynamic = detector.report();
    ASSERT_EQ(dynamic.total, 1u) << cell::race_hazard_name(hazard);

    const StaticReport statically = analysis::verify_program(
        cell::hazard_program(hazard, machine.device()), machine.device());
    ASSERT_EQ(statically.total, 1u) << cell::race_hazard_name(hazard);
    const auto counterpart =
        analysis::dynamic_counterpart(statically.findings[0].kind);
    ASSERT_TRUE(counterpart.has_value());
    EXPECT_EQ(*counterpart, dynamic.findings[0].kind)
        << "static: " << statically.findings[0].to_string()
        << "\ndynamic: " << dynamic.findings[0].to_string();
  }
}

// --- zero false positives over clean schedules ------------------------------

TEST(StaticVerifier, CleanSchedulesProveSafeOnEveryPresetStageAndWays) {
  for (const DeviceModel& dev : cell::device_presets()) {
    for (int s = 0; s <= static_cast<int>(Stage::kOffloadAll); ++s) {
      for (const int ways : {1, 2, dev.spe_count}) {
        for (const bool cat : {false, true}) {
          ProgramShape shape;
          shape.cat_mode = cat;
          shape.site_lnl = cat;  // exercise the site-lnl stream on one mode
          shape.gradient_edges = 3;  // odd: both in1 operand flavors appear
          const StaticReport report = analysis::verify_program(
              core::extract_program(dev, static_cast<Stage>(s), ways, shape),
              dev);
          EXPECT_TRUE(report.ok())
              << dev.name << " stage=" << s << " ways=" << ways
              << " cat=" << cat << "\n" << report.summary();
          if (s >= 1) {  // any offload at all => DMA traffic was modeled
            EXPECT_GT(report.stats.dma_ops, 0u);
            EXPECT_GT(report.stats.peak_ls_bytes, 0u);
          }
        }
      }
    }
  }
}

TEST(StaticVerifier, AwkwardShapesStayClean) {
  // Pattern counts off the strip granularity, single patterns, deep CAT
  // tables, many Newton iterations — the shapes that stress the strip/way
  // arithmetic mirrored from the executor.
  const DeviceModel dev;
  for (const std::size_t np : {std::size_t{1}, std::size_t{17},
                               std::size_t{1000}, std::size_t{4096}}) {
    for (const int ncat : {1, 4, 25}) {
      ProgramShape shape;
      shape.patterns = np;
      shape.categories = ncat;
      shape.site_lnl = true;
      shape.newton_iters = 5;
      shape.gradient_edges = 2;
      const StaticReport report = analysis::verify_program(
          core::extract_program(dev, Stage::kOffloadAll, 4, shape), dev);
      EXPECT_TRUE(report.ok()) << "np=" << np << " ncat=" << ncat << "\n"
                               << report.summary();
    }
  }
}

TEST(StaticVerifier, BatchProgramsProveSafe) {
  // Multi-lane batch (one task per SPE round-robin) and every serial
  // fallback trigger: the batcher must never introduce a hazard.
  for (const DeviceModel& dev : cell::device_presets()) {
    const StaticReport multi = analysis::verify_program(
        core::extract_batch_program(dev, Stage::kOffloadAll, 37), dev);
    EXPECT_TRUE(multi.ok()) << dev.name << "\n" << multi.summary();
    EXPECT_GT(multi.stats.dma_ops, 0u);
  }
  const DeviceModel dev;
  for (const auto& [count, ways] :
       std::vector<std::pair<std::size_t, int>>{{1, 1}, {5, 2}}) {
    const StaticReport serial = analysis::verify_program(
        core::extract_batch_program(dev, Stage::kOffloadAll, count, ways),
        dev);
    EXPECT_TRUE(serial.ok())
        << "count=" << count << " ways=" << ways << "\n" << serial.summary();
  }
}

TEST(StaticVerifier, RejectsIllegalShapes) {
  const DeviceModel dev;
  EXPECT_THROW(core::extract_program(dev, Stage::kOffloadAll, 0), Error);
  EXPECT_THROW(
      core::extract_program(dev, Stage::kOffloadAll, dev.spe_count + 1),
      Error);
  ProgramShape shape;
  shape.patterns = 0;
  EXPECT_THROW(core::extract_program(dev, Stage::kOffloadAll, 1, shape),
               Error);
}

// --- resource proofs --------------------------------------------------------

TEST(StaticVerifier, LocalStoreOverflowIsRefutedWithPeakWitness) {
  // Shrink the local store below the double-buffered working set: the
  // worst-case occupancy proof must fail and name the op achieving the
  // peak, exactly what LocalStore::alloc would trap at runtime.
  DeviceModel dev;
  dev.name = "cell-tiny-ls";
  dev.local_store_bytes = 128 * 1024;  // code image 117 KB leaves ~11 KB
  const StaticReport report = analysis::verify_program(
      core::extract_program(dev, Stage::kOffloadAll, 1), dev);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.findings[0].kind, ViolationKind::kLocalStoreOverflow);
  EXPECT_FALSE(analysis::dynamic_counterpart(report.findings[0].kind));
  EXPECT_GT(report.stats.peak_ls_bytes, dev.local_store_bytes);
  EXPECT_GE(report.stats.peak_ls_op, 0);  // the witness op is pinned
  EXPECT_NE(report.findings[0].detail.find("exceeds capacity"),
            std::string::npos)
      << report.findings[0].detail;
}

TEST(StaticVerifier, TagQueueDepthIsBoundedAgainstTheModel) {
  // Double-buffered GAMMA partial-partial strips keep 12 DMA commands in
  // flight; a 16-deep MFC queue (the CBE's) proves safe, an 8-deep one is
  // refuted — a stall class the timing simulation does not even model.
  DeviceModel dev;
  dev.name = "cell-shallow-queue";
  dev.mfc_queue_depth = 8;
  const StaticReport deep = analysis::verify_program(
      core::extract_program(dev, Stage::kOffloadAll, 1), dev);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.findings[0].kind, ViolationKind::kTagQueueOverflow);
  EXPECT_GT(deep.stats.peak_tag_depth, 8u);

  // Single-buffered stages never exceed one strip's worth of commands.
  const StaticReport shallow = analysis::verify_program(
      core::extract_program(dev, Stage::kIntCond, 1), dev);
  EXPECT_TRUE(shallow.ok()) << shallow.summary();
}

TEST(StaticVerifier, IllegalDmaAndBadTagsAreRefuted) {
  const DeviceModel dev;
  Program prog;
  prog.dma_get(0, 40, 0, 0x1d400, 64);  // tag outside [0, 32)
  prog.dma_get(0, 0, 0, 0x1d400, 24);   // size neither small nor 16-aligned
  prog.dma_get(0, 1, 8, 0x1d400, 64);   // block transfer, EA % 16 != 0
  prog.dma_get(0, 2, 0, 0x1d400, 0);    // zero-size transfer
  prog.epoch();
  const StaticReport report = analysis::verify_program(prog, dev);
  ASSERT_EQ(report.total, 4u) << report.summary();
  EXPECT_EQ(report.findings[0].kind, ViolationKind::kBadTag);
  EXPECT_EQ(report.findings[1].kind, ViolationKind::kIllegalDma);
  EXPECT_EQ(report.findings[2].kind, ViolationKind::kIllegalDma);
  EXPECT_EQ(report.findings[3].kind, ViolationKind::kIllegalDma);
}

TEST(StaticVerifier, MailboxWaitForCyclesAreDeadlocks) {
  const DeviceModel dev;
  {
    // SPE reads its inbound mailbox but no PPE write ever arrives.
    Program prog;
    prog.mailbox_read(0, /*inbound=*/true);
    const StaticReport report = analysis::verify_program(prog, dev);
    ASSERT_EQ(report.total, 1u) << report.summary();
    EXPECT_EQ(report.findings[0].kind, ViolationKind::kMailboxDeadlock);
    EXPECT_NE(report.findings[0].detail.find("empty"), std::string::npos);
  }
  {
    // PPE writes a fifth command into the 4-deep inbound FIFO that no SPE
    // ever drains.
    Program prog;
    for (int i = 0; i < 5; ++i) prog.mailbox_write(0, /*inbound=*/true, 7);
    const StaticReport report = analysis::verify_program(prog, dev);
    ASSERT_EQ(report.total, 1u) << report.summary();
    EXPECT_EQ(report.findings[0].kind, ViolationKind::kMailboxDeadlock);
    EXPECT_NE(report.findings[0].detail.find("full"), std::string::npos);
  }
  {
    // The executor's actual handshake drains in any interleaving: clean.
    Program prog;
    prog.mailbox_write(0, true, 0);
    prog.mailbox_read(0, true);
    prog.mailbox_write(0, false, 1);
    prog.mailbox_read(0, false);
    EXPECT_TRUE(analysis::verify_program(prog, dev).ok());
  }
}

// --- extraction fidelity vs the live executor -------------------------------

/// Records every machine event as an AbstractOp, in global issue order.
/// With host_threads=1 the executor runs ways sequentially, so the stream
/// is deterministic and directly comparable to the extracted program.
class RecordingSink : public cell::EventSink {
 public:
  std::vector<cell::AbstractOp> ops;

  void on_dma_get(int spe, int tag, std::uintptr_t ea, cell::LsAddr ls,
                  std::size_t size, cell::VCycles, cell::VCycles) override {
    push(OpKind::kDmaGet, spe, tag, ea, ls, size);
  }
  void on_dma_put(int spe, int tag, cell::LsAddr ls, std::uintptr_t ea,
                  std::size_t size, cell::VCycles, cell::VCycles) override {
    push(OpKind::kDmaPut, spe, tag, ea, ls, size);
  }
  void on_tag_wait(int spe, int tag, cell::VCycles) override {
    push(OpKind::kTagWait, spe, tag, 0, 0, 0);
  }
  void on_ls_read(int spe, cell::LsAddr ls, std::size_t size, cell::VCycles,
                  cell::VCycles) override {
    push(OpKind::kLsRead, spe, -1, 0, ls, size);
  }
  void on_ls_write(int spe, cell::LsAddr ls, std::size_t size, cell::VCycles,
                   cell::VCycles) override {
    push(OpKind::kLsWrite, spe, -1, 0, ls, size);
  }
  void on_mailbox(int spe, bool inbound, bool write,
                  std::uint32_t value) override {
    cell::AbstractOp op;
    op.kind = write ? OpKind::kMailboxWrite : OpKind::kMailboxRead;
    op.spe = spe;
    op.inbound = inbound;
    op.value = value;
    ops.push_back(op);
  }
  void on_signal(int spe, cell::SignalOp signal) override {
    cell::AbstractOp op;
    op.kind = OpKind::kSignal;
    op.spe = spe;
    op.signal = signal;
    ops.push_back(op);
  }
  void on_epoch() override {
    cell::AbstractOp op;
    op.kind = OpKind::kEpoch;
    op.spe = -1;
    ops.push_back(op);
  }

 private:
  void push(OpKind kind, int spe, int tag, std::uint64_t ea, std::uint64_t ls,
            std::uint64_t size) {
    cell::AbstractOp op;
    op.kind = kind;
    op.spe = spe;
    op.tag = tag;
    op.ea = ea;
    op.ls = ls;
    op.size = size;
    ops.push_back(op);
  }
};

/// Field-wise comparison per kind: everything except effective addresses
/// (the extractor uses a synthetic arena) and mailbox-read values (the
/// machine reports what was read, the IR does not model data).
bool ops_equal(const cell::AbstractOp& a, const cell::AbstractOp& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case OpKind::kDmaGet:
    case OpKind::kDmaPut:
      return a.spe == b.spe && a.tag == b.tag && a.ls == b.ls &&
             a.size == b.size;
    case OpKind::kTagWait:
      return a.spe == b.spe && a.tag == b.tag;
    case OpKind::kLsRead:
    case OpKind::kLsWrite:
      return a.spe == b.spe && a.ls == b.ls && a.size == b.size;
    case OpKind::kMailboxWrite:
      return a.spe == b.spe && a.inbound == b.inbound && a.value == b.value;
    case OpKind::kMailboxRead:
      return a.spe == b.spe && a.inbound == b.inbound;
    case OpKind::kSignal:
      return a.spe == b.spe && a.signal == b.signal;
    case OpKind::kEpoch:
      return true;
    case OpKind::kLsReserve:
      return false;  // never appears in a machine stream
  }
  return false;
}

TEST(StaticVerifier, ExtractedProgramMatchesTheExecutorEventStream) {
  // The mirror pin: run the canonical pipeline (tip-tip, tip-partial,
  // partial-partial newviews; evaluate; makenewz compound) on the live SPE
  // executor and require the recorded machine events to equal the
  // extracted program op-for-op.  Any drift between schedule_ir.cpp and
  // spe_executor.cpp fails here with the first diverging op.
  using conformance::Workload;
  using conformance::WorkloadSpec;

  for (const Stage stage : {Stage::kOffloadNewview, Stage::kDoubleBuffer,
                            Stage::kDirectComm, Stage::kOffloadAll}) {
    for (const int ways : {1, 3}) {
      for (const bool cat : {false, true}) {
        WorkloadSpec spec;
        spec.seed = 0xd1ce;
        spec.mode = cat ? lh::RateMode::kCat : lh::RateMode::kGamma;
        spec.ncat = cat ? 5 : 4;
        spec.np = 230;  // several strips per way, final strip ragged
        spec.tip1 = spec.tip2 = true;
        const Workload wl(spec);
        const std::size_t padded = wl.padded_np();
        const std::size_t stride = wl.stride();

        aligned_vector<double> pa_v(padded * stride), pb_v(padded * stride),
            pc_v(padded * stride), site(padded), sumtab(padded * stride);
        aligned_vector<std::int32_t> pa_s(padded), pb_s(padded), pc_s(padded);

        lh::ExecutorSpec espec = core::cell_executor_spec(stage, ways);
        espec.cell().host_threads = 1;  // sequential ways: global op order
        const auto exec = lh::make_executor(espec);

        RecordingSink rec;
        cell::set_event_sink(&rec);
        lh::NewviewTask nv1 = wl.newview_task(pa_v.data(), pa_s.data());
        exec->newview(nv1);
        lh::NewviewTask nv2 = nv1;  // tip-partial: tip stays child 1
        nv2.partial2 = {pa_v.data(), pa_s.data()};
        nv2.tip2 = {};
        nv2.out = pb_v.data();
        nv2.scale_out = pb_s.data();
        exec->newview(nv2);
        lh::NewviewTask nv3 = nv2;  // partial-partial
        nv3.partial1 = {pa_v.data(), pa_s.data()};
        nv3.tip1 = {};
        nv3.partial2 = {pb_v.data(), pb_s.data()};
        nv3.out = pc_v.data();
        nv3.scale_out = pc_s.data();
        exec->newview(nv3);
        lh::EvaluateTask ev = wl.evaluate_task(site.data());
        ev.tip1 = {};
        ev.partial1 = {pa_v.data(), pa_s.data()};
        ev.partial2 = {pc_v.data(), pc_s.data()};
        (void)exec->evaluate(ev);
        exec->begin_compound();
        lh::SumtableTask st = wl.sumtable_task(sumtab.data());
        st.tip1 = {};
        st.partial1 = {pb_v.data(), nullptr};
        st.partial2 = {pc_v.data(), nullptr};
        exec->sumtable(st);
        (void)exec->nr_derivatives(wl.nr_task(sumtab.data(), wl.spec().t));
        (void)exec->nr_derivatives(wl.nr_task(sumtab.data(), wl.spec().t));
        exec->end_compound();
        // The gradient sweep: tip/inner then inner/inner, matching the
        // extractor's alternating in1 operand.
        lh::EdgeGradientTask eg;
        eg.ctx = wl.ctx();
        eg.np = spec.np;
        eg.weights = wl.weights();
        eg.t = wl.spec().t;
        eg.partial2 = {pc_v.data(), nullptr};
        eg.tip1 = nv1.tip1;
        (void)exec->edge_gradient(eg);
        eg.tip1 = {};
        eg.partial1 = {pa_v.data(), nullptr};
        (void)exec->edge_gradient(eg);
        cell::set_event_sink(nullptr);

        ProgramShape shape;
        shape.patterns = spec.np;
        shape.categories = spec.ncat;
        shape.cat_mode = cat;
        shape.site_lnl = true;
        shape.newton_iters = 2;
        shape.gradient_edges = 2;
        const Program prog = core::extract_program(
            espec.cell().device, stage, ways, shape);

        std::vector<cell::AbstractOp> expected;
        for (const cell::AbstractOp& op : prog.ops)
          if (op.kind != OpKind::kLsReserve) expected.push_back(op);

        const std::string label = "stage=" +
                                  std::to_string(static_cast<int>(stage)) +
                                  " ways=" + std::to_string(ways) +
                                  " cat=" + std::to_string(cat);
        ASSERT_EQ(rec.ops.size(), expected.size()) << label;
        for (std::size_t i = 0; i < expected.size(); ++i)
          ASSERT_TRUE(ops_equal(rec.ops[i], expected[i]))
              << label << " op#" << i << "\n  machine:   "
              << rec.ops[i].to_string() << "\n  extracted: "
              << expected[i].to_string();
      }
    }
  }
}

// --- report round trip & malformed input ------------------------------------

TEST(StaticReportTest, RoundTripsBitwise) {
  DeviceModel shallow;
  shallow.name = "cell-shallow-queue";
  shallow.mfc_queue_depth = 8;
  const DeviceModel clean_dev;
  for (const StaticReport& report :
       {analysis::verify_program(
            core::extract_program(shallow, Stage::kOffloadAll, 2), shallow,
            "stage=7 llp_ways=2"),
        analysis::verify_program(
            core::extract_program(clean_dev, Stage::kOffloadAll, 1),
            clean_dev, "stage=7 llp_ways=1")}) {
    const StaticReport back = StaticReport::from_string(report.to_string());
    EXPECT_TRUE(back == report) << report.to_string();
    EXPECT_EQ(back.to_string(), report.to_string());
  }
}

TEST(StaticReportTest, SummaryNamesEveryFindingAndOkIsEmpty) {
  DeviceModel dev;
  dev.mfc_queue_depth = 8;
  const StaticReport bad = analysis::verify_program(
      core::extract_program(dev, Stage::kOffloadAll, 1), dev);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.summary().find("tag-queue-overflow"), std::string::npos)
      << bad.summary();
  const StaticReport good = analysis::verify_program(
      core::extract_program(DeviceModel{}, Stage::kOffloadAll, 1),
      DeviceModel{});
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(good.summary().empty());
}

TEST(StaticReportTest, KindNamesRoundTripAndRejectUnknowns) {
  for (const ViolationKind kind :
       {ViolationKind::kReadBeforeWait, ViolationKind::kBufferHazard,
        ViolationKind::kEaPutOverlap, ViolationKind::kSignalOrder,
        ViolationKind::kStalePartial, ViolationKind::kLocalStoreOverflow,
        ViolationKind::kTagQueueOverflow, ViolationKind::kBadTag,
        ViolationKind::kIllegalDma, ViolationKind::kMailboxDeadlock}) {
    EXPECT_EQ(analysis::violation_kind_from_name(
                  analysis::violation_kind_name(kind)),
              kind);
  }
  EXPECT_THROW(analysis::violation_kind_from_name("warp-hazard"),
               ConfigError);
}

struct BadReport {
  const char* label;
  const char* text;
};

class StaticReportRejects : public ::testing::TestWithParam<BadReport> {};

TEST_P(StaticReportRejects, WithConfigError) {
  EXPECT_THROW(StaticReport::from_string(GetParam().text), ConfigError)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    MalformedTable, StaticReportRejects,
    ::testing::Values(
        BadReport{"not_json", "device: x"},
        BadReport{"truncated", "{\"device\": \"x\", \"total\": "},
        BadReport{"not_an_object", "[1, 2]"},
        BadReport{"unknown_key", "{\"device\": \"x\", \"verdicts\": 1}"},
        BadReport{"duplicate_key", "{\"device\": \"x\", \"device\": \"y\"}"},
        BadReport{"total_wrong_type", "{\"total\": \"none\"}"},
        BadReport{"total_negative", "{\"total\": -1}"},
        BadReport{"total_fractional", "{\"total\": 1.5}"},
        BadReport{"total_below_findings",
                  "{\"total\": 0, \"findings\": [{\"kind\": \"bad-tag\"}]}"},
        BadReport{"findings_not_array", "{\"findings\": 3}"},
        BadReport{"finding_not_object", "{\"findings\": [7]}"},
        BadReport{"finding_missing_kind", "{\"findings\": [{\"spe\": 0}]}"},
        BadReport{"finding_unknown_kind",
                  "{\"findings\": [{\"kind\": \"warp-hazard\"}]}"},
        BadReport{"finding_unknown_key",
                  "{\"findings\": [{\"kind\": \"bad-tag\", \"wat\": 1}]}"},
        BadReport{"finding_spe_wrong_type",
                  "{\"findings\": [{\"kind\": \"bad-tag\", \"spe\": \"z\"}]}"},
        BadReport{"finding_spe_below_minus_one",
                  "{\"findings\": [{\"kind\": \"bad-tag\", \"spe\": -2}]}"},
        BadReport{"stats_not_object", "{\"stats\": []}"},
        BadReport{"stats_unknown_key", "{\"stats\": {\"peak\": 1}}"},
        BadReport{"stats_negative_ops", "{\"stats\": {\"ops\": -3}}"}),
    [](const auto& inf) { return std::string(inf.param.label); });

// --- serving admission ------------------------------------------------------

serve::JobSpec admission_spec(const std::string& id) {
  serve::JobSpec spec;
  spec.id = id;
  spec.workload.sim_taxa = 6;
  spec.workload.sim_sites = 60;
  spec.workload.sim_seed = 11;
  spec.model = "jc";
  spec.rate_mode = "cat";
  spec.categories = 2;
  spec.inferences = 1;
  spec.seed = 1;
  spec.max_rounds = 1;
  return spec;
}

/// A device model no schedule can verify against: a 1-deep MFC queue makes
/// any multi-get strip overflow statically, while the functional simulator
/// (which does not model queue stalls) would still run it happily — the
/// sharpest possible admission test.
DeviceModel unverifiable_model() {
  DeviceModel dev;
  dev.name = "cell-one-slot-queue";
  dev.mfc_queue_depth = 1;
  return dev;
}

TEST(ServeAdmission, UnverifiableJobIsRejectedWithTheReportAttached) {
  std::vector<lh::ExecutorSpec> specs;
  specs.push_back(core::cell_executor_spec(Stage::kOffloadAll));
  lh::ExecutorSpec bad = core::cell_executor_spec(Stage::kOffloadAll);
  bad.cell().device = unverifiable_model();
  specs.push_back(std::move(bad));
  serve::Server server(specs);

  // Pinned to the unverifiable device: no admissible placement exists.
  serve::JobSpec doomed = admission_spec("doomed");
  doomed.device = "cell-one-slot-queue";
  EXPECT_EQ(server.submit(doomed), serve::SubmitStatus::kRejected);

  // Unconstrained on the same pool: rerouted around the refuted device.
  const serve::JobSpec fine = admission_spec("fine");
  ASSERT_EQ(server.submit(fine), serve::SubmitStatus::kAccepted);
  server.join();

  const auto doomed_r = server.result("doomed");
  ASSERT_TRUE(doomed_r.has_value());
  EXPECT_EQ(doomed_r->state, serve::JobState::kRejected);
  EXPECT_NE(doomed_r->error.find("static verification"), std::string::npos)
      << doomed_r->error;
  ASSERT_FALSE(doomed_r->static_report.empty());
  const StaticReport attached =
      StaticReport::from_string(doomed_r->static_report);
  ASSERT_GT(attached.total, 0u);
  EXPECT_EQ(attached.findings[0].kind, ViolationKind::kTagQueueOverflow);
  EXPECT_EQ(attached.device, "cell-one-slot-queue");

  const auto fine_r = server.result("fine");
  ASSERT_TRUE(fine_r.has_value());
  ASSERT_EQ(fine_r->state, serve::JobState::kCompleted);
  EXPECT_EQ(server.devices().device(fine_r->last_device).model_name(),
            "cell-2007");
  EXPECT_TRUE(fine_r->static_report.empty());
}

TEST(ServeAdmission, VerifiedJobsCompleteIdenticallyToPreVerifierBehavior) {
  // The verifier must be pure admission control: a job that passes has to
  // produce bitwise the result it produced before the hook existed (here:
  // the same server with verification disabled).
  const serve::JobSpec spec = admission_spec("job");
  serve::JobResult with, without;
  {
    serve::Server server(
        {core::cell_executor_spec(Stage::kOffloadAll)});  // verify on
    ASSERT_EQ(server.submit(spec), serve::SubmitStatus::kAccepted);
    server.join();
    with = *server.result("job");
  }
  {
    serve::ServerConfig config;
    config.verify_admission = false;
    serve::Server server({core::cell_executor_spec(Stage::kOffloadAll)},
                         config);
    ASSERT_EQ(server.submit(spec), serve::SubmitStatus::kAccepted);
    server.join();
    without = *server.result("job");
  }
  ASSERT_EQ(with.state, serve::JobState::kCompleted);
  ASSERT_EQ(without.state, serve::JobState::kCompleted);
  EXPECT_EQ(with.best_lnl, without.best_lnl);  // bitwise
  EXPECT_EQ(with.best_newick, without.best_newick);
  EXPECT_EQ(with.tasks_completed, without.tasks_completed);
}

}  // namespace
