/// Observability layer (src/obs): metrics-registry semantics, RXC_TRACE
/// parsing, the config validate() surfaces the obs PR hardened, the
/// executor factory, and a golden Chrome-trace snippet for a fixed-seed
/// 4-taxon run (the virtual timeline is fully deterministic, so its shape
/// is pinned like the conformance fingerprints).
///
/// Regenerating the golden after an INTENTIONAL cost-model or
/// span-emission change:
///   RXC_UPDATE_GOLDEN=1 ctest --test-dir build -R ObsGolden
/// then review the golden diff like any other code change.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "core/port.h"
#include "core/scheduler.h"
#include "core/spe_executor.h"
#include "likelihood/engine.h"
#include "likelihood/executor.h"
#include "obs/obs.h"
#include "seq/seqgen.h"
#include "support/error.h"

namespace rxc {
namespace {

/// Installs an obs mode for one test and restores "off" (resetting all
/// metrics/events) on the way out, so tests cannot leak state.
class ObsModeGuard {
 public:
  explicit ObsModeGuard(obs::Mode mode, std::size_t max_events = 1u << 20) {
    obs::Config cfg;
    cfg.mode = mode;
    cfg.max_events = max_events;
    obs::configure(cfg);
  }
  ~ObsModeGuard() { obs::configure(obs::Config{}); }
};

// --- metrics registry -------------------------------------------------------

TEST(ObsMetrics, CounterCountsOnlyWhenEnabled) {
  obs::Counter& c = obs::counter("test.counter.gated");
  {
    ObsModeGuard guard(obs::Mode::kOff);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 0u) << "off mode must not record";
  }
  {
    ObsModeGuard guard(obs::Mode::kSummary);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
  }
}

TEST(ObsMetrics, HandlesAreStableAndShared) {
  obs::Counter& a = obs::counter("test.counter.shared");
  obs::Counter& b = obs::counter("test.counter.shared");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, NameKindCollisionThrows) {
  obs::counter("test.collision");
  EXPECT_THROW(obs::gauge("test.collision"), rxc::Error);
  EXPECT_THROW(obs::histogram("test.collision"), rxc::Error);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  ObsModeGuard guard(obs::Mode::kSummary);
  obs::Gauge& g = obs::gauge("test.gauge.setadd");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsMetrics, HistogramStatsAndBuckets) {
  ObsModeGuard guard(obs::Mode::kSummary);
  obs::Histogram& h = obs::histogram("test.histo.stats");
  for (const double v : {0.25, 1.0, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 104.25 / 4.0);
  // Bucket i holds [2^(i-1), 2^i); bucket 0 holds [0, 1).
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(0.25), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1.0), 1);
  EXPECT_EQ(obs::Histogram::bucket_index(3.0), 2);
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(100.0)), 1u);
}

TEST(ObsMetrics, ConcurrentCountersStayExact) {
  ObsModeGuard guard(obs::Mode::kSummary);
  obs::Counter& c = obs::counter("test.counter.concurrent");
  constexpr int kThreads = 4, kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetrics, SnapshotIsSortedByName) {
  ObsModeGuard guard(obs::Mode::kSummary);
  obs::counter("test.sorted.b").add();
  obs::counter("test.sorted.a").add();
  const obs::MetricsSnapshot snap = obs::snapshot_metrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

// --- trace config / recorder ------------------------------------------------

TEST(ObsConfig, ParseTraceConfig) {
  EXPECT_EQ(obs::parse_trace_config("").mode, obs::Mode::kOff);
  EXPECT_EQ(obs::parse_trace_config("off").mode, obs::Mode::kOff);
  EXPECT_EQ(obs::parse_trace_config("summary").mode, obs::Mode::kSummary);
  const obs::Config plain = obs::parse_trace_config("json");
  EXPECT_EQ(plain.mode, obs::Mode::kJson);
  EXPECT_EQ(plain.json_path, "rxc_trace.json");
  const obs::Config pathed = obs::parse_trace_config("json:/tmp/t.json");
  EXPECT_EQ(pathed.mode, obs::Mode::kJson);
  EXPECT_EQ(pathed.json_path, "/tmp/t.json");
  EXPECT_THROW(obs::parse_trace_config("verbose"), rxc::Error);
  EXPECT_THROW(obs::parse_trace_config("json=/tmp/t.json"), rxc::Error);
}

TEST(ObsRecorder, SpansOnlyRecordedInJsonMode) {
  {
    ObsModeGuard guard(obs::Mode::kSummary);
    obs::record_span(obs::Timeline::kWall, "s", "c", 0, 0.0, 1.0);
    EXPECT_EQ(obs::event_count(), 0u);
  }
  {
    ObsModeGuard guard(obs::Mode::kJson);
    obs::record_span(obs::Timeline::kWall, "s", "c", 0, 0.0, 1.0);
    { obs::ScopedTimer timer("scoped", "test"); }
    EXPECT_EQ(obs::event_count(), 2u);
    const auto events = obs::snapshot_events();
    EXPECT_EQ(events[0].name, "s");
    EXPECT_EQ(events[1].name, "scoped");
  }
}

TEST(ObsRecorder, BufferBoundDropsInsteadOfGrowing) {
  ObsModeGuard guard(obs::Mode::kJson, /*max_events=*/4);
  for (int i = 0; i < 10; ++i)
    obs::record_span(obs::Timeline::kWall, "s", "c", 0, i, 1.0);
  EXPECT_EQ(obs::event_count(), 4u);
  EXPECT_EQ(obs::counter("obs.dropped_events").value(), 6u);
}

TEST(ObsExporter, ChromeTraceCarriesBothTimelines) {
  ObsModeGuard guard(obs::Mode::kJson);
  obs::record_span(obs::Timeline::kWall, "wall-span", "test", 0, 1.0, 2.0);
  obs::record_span(obs::Timeline::kVirtual, "newview", "spe",
                   obs::kLaneSpeBase + 2, 5.0, 7.0);
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("\"wall\""), std::string::npos);
  EXPECT_NE(json.find("\"cell-virtual\""), std::string::npos);
  EXPECT_NE(json.find("\"SPE 2\""), std::string::npos);
  EXPECT_NE(json.find("\"wall-span\""), std::string::npos);
  EXPECT_NE(json.find("\"newview\""), std::string::npos);
}

// --- config validation surfaces ---------------------------------------------

TEST(ObsValidate, EngineConfigRejectsIllegalCombos) {
  lh::EngineConfig ok;
  EXPECT_NO_THROW(ok.validate());

  lh::EngineConfig cats = ok;
  cats.categories = 0;
  EXPECT_THROW(cats.validate(), rxc::Error);
  cats.categories = lh::kMaxRateCategories + 1;
  EXPECT_THROW(cats.validate(), rxc::Error);

  lh::EngineConfig alpha = ok;
  alpha.mode = lh::RateMode::kGamma;
  alpha.alpha = 0.0;
  EXPECT_THROW(alpha.validate(), rxc::Error);
}

TEST(ObsValidate, TaskContextRejectsGammaWithPerPatternCategories) {
  const model::EigenSystem es =
      model::decompose(lh::EngineConfig{}.model);
  const double rates[4] = {1.0, 1.0, 1.0, 1.0};
  const int cat[1] = {0};
  lh::TaskContext ctx;
  ctx.es = &es;
  ctx.rates = rates;
  ctx.ncat = 4;
  ctx.mode = lh::RateMode::kGamma;
  EXPECT_NO_THROW(ctx.validate());
  ctx.cat = cat;
  EXPECT_THROW(ctx.validate(), rxc::Error);
  ctx.mode = lh::RateMode::kCat;
  EXPECT_NO_THROW(ctx.validate());
}

TEST(ObsValidate, ScheduleConfigRejectsOvercommit) {
  const cell::DeviceModel dev;  // cell-2007: 8 SPEs, 2 PPE threads
  core::ScheduleConfig ok;
  EXPECT_NO_THROW(ok.validate(dev));

  core::ScheduleConfig bad = ok;
  bad.processes = 0;
  EXPECT_THROW(bad.validate(dev), rxc::Error);

  bad = ok;
  bad.policy = core::Policy::kNaive;
  bad.processes = 3;  // only two PPE hardware threads
  EXPECT_THROW(bad.validate(dev), rxc::Error);

  bad = ok;
  bad.policy = core::Policy::kLlp;
  bad.processes = 4;
  bad.llp_ways = 4;  // 4 * 4 > 8 SPEs
  EXPECT_THROW(bad.validate(dev), rxc::Error);
  bad.llp_ways = 2;  // 4 * 2 == 8 fits exactly
  EXPECT_NO_THROW(bad.validate(dev));

  // The same overcommit is legal on a wider machine: the limits are the
  // configured device's, not baked-in constants.
  cell::DeviceModel wide = dev;
  wide.spe_count = 16;
  bad.llp_ways = 4;  // 4 * 4 == 16 fits on the 16-SPE model
  EXPECT_NO_THROW(bad.validate(wide));
}

TEST(ObsValidate, ExecutorSpecRejectsBadCellParameters) {
  lh::ThreadedOptions topt;
  topt.threads = 0;
  EXPECT_THROW(lh::ExecutorSpec::threaded_spec(topt).validate(), rxc::Error);

  lh::ExecutorSpec spec = lh::ExecutorSpec::cell_spec();
  EXPECT_NO_THROW(spec.validate());
  spec.cell().stage = 8;
  EXPECT_THROW(spec.validate(), rxc::Error);

  spec = lh::ExecutorSpec::cell_spec();
  spec.cell().llp_ways = 9;  // > the default device's 8 SPEs
  EXPECT_THROW(spec.validate(), rxc::Error);
  spec.cell().device.spe_count = 16;  // limits follow the device model
  EXPECT_NO_THROW(spec.validate());

  spec = lh::ExecutorSpec::cell_spec();
  spec.cell().strip_bytes = 128;
  EXPECT_THROW(spec.validate(), rxc::Error);

  // A broken device model fails spec validation too (validate() recurses
  // into CellOptions::device).
  spec = lh::ExecutorSpec::cell_spec();
  spec.cell().device.cost.eib_contention_per_spe = -0.5;
  EXPECT_THROW(spec.validate(), rxc::Error);
}

// A knob for a different kind than the selected one used to be silently
// ignorable; under the variant ExecutorSpec it is unrepresentable, and the
// checked accessors throw ConfigError instead of handing back junk.
TEST(ObsValidate, ExecutorSpecAccessorsRejectKindMismatch) {
  lh::ExecutorSpec host;  // default-constructed: kHost
  EXPECT_EQ(host.kind(), lh::ExecutorKind::kHost);
  EXPECT_NO_THROW(host.host());
  EXPECT_THROW(host.threaded(), rxc::ConfigError);
  EXPECT_THROW(host.cell(), rxc::ConfigError);

  lh::ExecutorSpec threaded = lh::ExecutorSpec::threaded_spec();
  EXPECT_EQ(threaded.kind(), lh::ExecutorKind::kThreaded);
  EXPECT_NO_THROW(threaded.threaded());
  EXPECT_THROW(threaded.host(), rxc::ConfigError);

  lh::ExecutorSpec cell = lh::ExecutorSpec::cell_spec();
  EXPECT_EQ(cell.kind(), lh::ExecutorKind::kSpe);
  EXPECT_NO_THROW(cell.cell());
  EXPECT_THROW(cell.threaded(), rxc::ConfigError);

  // ConfigError is a refinement of Error, so existing catch sites hold.
  EXPECT_THROW(host.cell(), rxc::Error);
}

// --- executor factory -------------------------------------------------------

TEST(ObsFactory, MakeExecutorBuildsEveryKind) {
  lh::ExecutorSpec host;
  const auto h = lh::make_executor(host);
  ASSERT_NE(h, nullptr);
  EXPECT_NE(dynamic_cast<lh::HostExecutor*>(h.get()), nullptr);

  lh::ThreadedOptions topt;
  topt.threads = 2;
  const auto t = lh::make_executor(lh::ExecutorSpec::threaded_spec(topt));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(dynamic_cast<lh::HostExecutor*>(t.get()), nullptr);

  const auto c =
      lh::make_executor(core::cell_executor_spec(core::Stage::kOffloadAll));
  ASSERT_NE(c, nullptr);
  EXPECT_NO_THROW(core::as_cell_executor(*c));
  EXPECT_THROW(core::as_cell_executor(*h), rxc::Error);
}

TEST(ObsFactory, MakeExecutorValidatesSpec) {
  lh::ExecutorSpec spec = lh::ExecutorSpec::cell_spec();
  spec.cell().llp_ways = 0;
  EXPECT_THROW(lh::make_executor(spec), rxc::Error);
}

// --- golden virtual timeline ------------------------------------------------

#ifdef RXC_OBS_GOLDEN_FILE

/// Serialized form of the deterministic part of a trace: per-span-name
/// totals over the whole virtual timeline, plus the first events verbatim
/// (a Chrome-trace "snippet") and the end-of-trace timestamp.  Wall spans
/// are real time and excluded.
struct TraceDigest {
  std::map<std::string, std::uint64_t> counts;
  std::vector<obs::TraceEvent> head;
  double end_ts_us = 0.0;

  static constexpr std::size_t kHeadEvents = 48;

  std::vector<std::string> serialize() const {
    std::vector<std::string> lines;
    for (const auto& [name, n] : counts) {
      std::ostringstream os;
      os << "count " << name << " " << n;
      lines.push_back(os.str());
    }
    for (const obs::TraceEvent& e : head) {
      std::ostringstream os;
      os.precision(17);
      os << "ev name=" << e.name << " cat=" << e.cat << " tid=" << e.tid
         << " ts=" << e.ts_us << " dur=" << e.dur_us;
      lines.push_back(os.str());
    }
    std::ostringstream os;
    os.precision(17);
    os << "end " << end_ts_us;
    lines.push_back(os.str());
    return lines;
  }
};

bool us_close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (std::max(std::abs(a), std::abs(b)) + 1.0);
}

/// Compares one serialized line pair; "ev"/"end" lines get the 1e-9
/// relative tolerance on their trailing ts/dur numbers, everything else is
/// exact.
void expect_line_matches(const std::string& want, const std::string& got,
                         std::size_t lineno) {
  auto split_numbers = [](const std::string& line, std::string& text,
                          std::vector<double>& nums) {
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
      const auto eq = tok.find('=');
      const std::string value =
          eq == std::string::npos ? tok : tok.substr(eq + 1);
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end && *end == '\0' && end != value.c_str() &&
          (tok.rfind("ts=", 0) == 0 || tok.rfind("dur=", 0) == 0 ||
           tok == value)) {
        if (eq != std::string::npos) tok = tok.substr(0, eq + 1) + "#";
        else tok = "#";
        nums.push_back(v);
      }
      text += tok + " ";
    }
  };
  if (want.rfind("ev ", 0) == 0 || want.rfind("end", 0) == 0) {
    std::string wt, gt;
    std::vector<double> wn, gn;
    split_numbers(want, wt, wn);
    split_numbers(got, gt, gn);
    EXPECT_EQ(wt, gt) << "line " << lineno;
    ASSERT_EQ(wn.size(), gn.size()) << "line " << lineno;
    for (std::size_t i = 0; i < wn.size(); ++i)
      EXPECT_TRUE(us_close(wn[i], gn[i]))
          << "line " << lineno << ": " << want << " -> " << got;
  } else {
    EXPECT_EQ(want, got) << "line " << lineno;
  }
}

TEST(ObsGolden, VirtualTimelineOfFixedSeedRun) {
  ObsModeGuard guard(obs::Mode::kJson);

  seq::SimOptions opt;
  opt.ntaxa = 4;
  opt.nsites = 96;
  opt.seed = 0x4a11ce;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);

  core::CellRunConfig cfg;
  cfg.stage = core::Stage::kOffloadAll;
  cfg.scheduler = core::SchedulerModel::kMgps;
  cfg.workers = 2;
  cfg.search.max_rounds = 3;
  const auto tasks = search::make_analysis(1, 1, /*base_seed=*/11);
  const auto run = core::run_on_cell(pa, cfg, tasks);
  EXPECT_LT(run.task_log_likelihoods.at(0), 0.0);

  TraceDigest digest;
  for (const obs::TraceEvent& e : obs::snapshot_events()) {
    if (e.timeline != obs::Timeline::kVirtual) continue;
    ++digest.counts[e.name];
    if (digest.head.size() < TraceDigest::kHeadEvents)
      digest.head.push_back(e);
    digest.end_ts_us = std::max(digest.end_ts_us, e.ts_us + e.dur_us);
  }
  ASSERT_FALSE(digest.head.empty()) << "no virtual spans were recorded";
  // The paper's bottleneck must be visible in the timeline: DMA stalls.
  EXPECT_GT(digest.counts["dma-stall"], 0u);
  EXPECT_GT(digest.counts["newview"], 0u);

  const std::vector<std::string> current = digest.serialize();
  const char* path = RXC_OBS_GOLDEN_FILE;
  if (std::getenv("RXC_UPDATE_GOLDEN")) {
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "# Golden virtual-timeline digest: span counts over the whole\n"
          "# trace, the first " << TraceDigest::kHeadEvents
       << " virtual events verbatim, and the end timestamp\n"
          "# (microseconds at the modeled clock, 1e-9 relative).\n"
          "# Regenerate with RXC_UPDATE_GOLDEN=1 after an intentional\n"
          "# cost-model or span-emission change.\n";
    for (const std::string& line : current) os << line << "\n";
    SUCCEED() << "golden file regenerated at " << path;
    return;
  }

  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path
                  << " — run with RXC_UPDATE_GOLDEN=1 to create it";
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] != '#') golden.push_back(line);
  ASSERT_EQ(golden.size(), current.size())
      << "golden file is stale; regenerate with RXC_UPDATE_GOLDEN=1";
  for (std::size_t i = 0; i < golden.size(); ++i)
    expect_line_matches(golden[i], current[i], i + 1);
}

#endif  // RXC_OBS_GOLDEN_FILE

}  // namespace
}  // namespace rxc
