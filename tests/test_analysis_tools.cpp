// Tests for the analysis-layer tooling: consensus trees / split support,
// Brent-based model-parameter optimization, and their interplay with the
// search.

#include <gtest/gtest.h>

#include <cmath>

#include "search/model_opt.h"
#include "search/search.h"
#include "seq/bootstrap.h"
#include "seq/seqgen.h"
#include "tree/consensus.h"
#include "tree/parsimony.h"

using namespace rxc;
using tree::Tree;

namespace {
const std::vector<std::string> kNames{"t0", "t1", "t2", "t3", "t4", "t5"};

Tree make(const std::string& newick) {
  return Tree::from_newick_string(newick, kNames);
}
}  // namespace

// --- consensus ----------------------------------------------------------------

TEST(Consensus, SupportCountsMatchingSplits) {
  const Tree ref = make("(((t0,t1),(t2,t3)),t4,t5);");
  const std::vector<Tree> reps{
      make("(((t0,t1),(t2,t3)),t4,t5);"),  // identical
      make("(((t0,t1),t2),(t3,t4),t5);"),  // shares only {t0,t1}
      make("(((t0,t1),(t2,t3)),t5,t4);"),  // same splits, different rooting
      make("(((t0,t2),(t1,t3)),t4,t5);"),  // shares nothing
  };
  const auto support = split_support(ref, reps);
  const auto splits = ref.splits();
  ASSERT_EQ(support.size(), splits.size());
  // {t0,t1} appears in 3/4 replicates; {t2,t3} in 2/4; {t0,t1,t2,t3} in 2/4.
  double max_support = 0.0, min_support = 1.0;
  for (const double s : support) {
    max_support = std::max(max_support, s);
    min_support = std::min(min_support, s);
  }
  EXPECT_DOUBLE_EQ(max_support, 0.75);
  EXPECT_LE(min_support, 0.5);
}

TEST(Consensus, IdenticalReplicatesGiveFullSupport) {
  const Tree ref = make("(((t0,t1),(t2,t3)),t4,t5);");
  const std::vector<Tree> reps(5, ref);
  for (const double s : split_support(ref, reps)) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Consensus, MajoritySplitsThreshold) {
  const std::vector<Tree> reps{
      make("(((t0,t1),(t2,t3)),t4,t5);"),
      make("(((t0,t1),(t2,t3)),t4,t5);"),
      make("(((t0,t2),(t1,t3)),t4,t5);"),
  };
  const auto maj = tree::majority_splits(reps, 0.5);
  // {t0,t1} and {t2,t3} appear 2/3 > 0.5; {t0..t3} appears in all three
  // trees (1.0); the alternative splits {t0,t2}/{t1,t3} appear only 1/3.
  EXPECT_EQ(maj.size(), 3u);
  int full = 0, partial = 0;
  for (const auto& [split, freq] : maj) {
    if (freq == 1.0) ++full;
    else if (std::fabs(freq - 2.0 / 3.0) < 1e-12) ++partial;
  }
  EXPECT_EQ(full, 1);
  EXPECT_EQ(partial, 2);
}

TEST(Consensus, NewickWithSupportParsesAndCarriesLabels) {
  const Tree ref = make("(((t0:0.1,t1:0.1):0.2,(t2:0.1,t3:0.1):0.2):0.1,"
                        "t4:0.3,t5:0.4);");
  const std::vector<Tree> reps{ref, ref, make("(((t0,t2),(t1,t3)),t4,t5);")};
  const std::string annotated = tree::newick_with_support(ref, kNames, reps);
  // Must contain a support label like ")0.67:" and still parse back.
  EXPECT_NE(annotated.find("0.67"), std::string::npos);
  const auto parsed = io::parse_newick(annotated);
  EXPECT_EQ(io::leaf_count(*parsed), 6u);
}

TEST(Consensus, ErrorsOnBadInput) {
  const Tree ref = make("(((t0,t1),(t2,t3)),t4,t5);");
  EXPECT_THROW(tree::split_support(ref, {}), Error);
  EXPECT_THROW(tree::majority_splits({ref}, 0.2), Error);
}

// --- Brent ---------------------------------------------------------------------

TEST(Brent, FindsQuadraticMaximum) {
  double fmax = 0.0;
  const double x = search::brent_maximize(
      [](double v) { return -(v - 2.5) * (v - 2.5); }, 0.0, 10.0, 1e-8, 100,
      &fmax);
  EXPECT_NEAR(x, 2.5, 1e-5);
  EXPECT_NEAR(fmax, 0.0, 1e-9);
}

TEST(Brent, HandlesMaximumAtBoundary) {
  const double x = search::brent_maximize([](double v) { return v; }, 0.0,
                                          1.0, 1e-7, 100);
  EXPECT_GT(x, 0.95);
}

TEST(Brent, AsymmetricUnimodal) {
  // f(x) = log(x) - x has maximum at x = 1.
  const double x = search::brent_maximize(
      [](double v) { return std::log(v) - v; }, 0.05, 20.0, 1e-8, 100);
  EXPECT_NEAR(x, 1.0, 1e-4);
}

// --- model optimization -----------------------------------------------------------

namespace {
struct OptFixture {
  seq::SimResult sim;
  seq::PatternAlignment pa;
  OptFixture() : sim(make()), pa(seq::PatternAlignment::compress(sim.alignment)) {}
  static seq::SimResult make() {
    seq::SimOptions opt;
    opt.ntaxa = 10;
    opt.nsites = 600;
    opt.gamma_alpha = 0.5;  // the parameter to recover
    opt.branch_scale = 0.12;
    opt.seed = 77;
    return seq::simulate_alignment(opt);
  }
};
}  // namespace

TEST(ModelOpt, AlphaOptimizationImprovesAndRecovers) {
  OptFixture f;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 5.0;  // deliberately wrong start
  lh::LikelihoodEngine eng(f.pa, cfg);
  Rng rng(3);
  tree::Tree t = tree::stepwise_addition_tree(f.pa, rng);
  eng.set_tree(&t);
  eng.optimize_all_branches(3);
  const double before = eng.log_likelihood();
  const double after = search::optimize_gamma_alpha(eng);
  EXPECT_GT(after, before + 1.0);
  // True simulation alpha is 0.5; the ML estimate should land well below
  // the bogus 5.0 start.
  EXPECT_LT(eng.gamma_alpha(), 1.5);
  EXPECT_GT(eng.gamma_alpha(), 0.1);
}

TEST(ModelOpt, GtrRateOptimizationImproves) {
  OptFixture f;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.model = model::DnaModel::jc69();  // wrong model: data is GTR
  lh::LikelihoodEngine eng(f.pa, cfg);
  Rng rng(5);
  tree::Tree t = tree::stepwise_addition_tree(f.pa, rng);
  eng.set_tree(&t);
  eng.optimize_all_branches(3);
  const double before = eng.log_likelihood();
  const double after = search::optimize_gtr_rates(eng, 2);
  EXPECT_GT(after, before);
  // The AG exchangeability of the generating model (3.1) dominates; the
  // estimate should move off 1.0 in that direction.
  EXPECT_GT(eng.model().rates[1], 1.2);
}

TEST(ModelOpt, FullLoopMonotone) {
  OptFixture f;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 2.0;
  lh::LikelihoodEngine eng(f.pa, cfg);
  Rng rng(7);
  tree::Tree t = tree::stepwise_addition_tree(f.pa, rng);
  eng.set_tree(&t);
  const double start = eng.optimize_all_branches(2);
  const double end = search::optimize_model(eng);
  EXPECT_GE(end, start - 1e-6);
}

TEST(ModelOpt, ProteinAlphaOptimizationWorksToo) {
  seq::AaSimOptions opt;
  opt.ntaxa = 8;
  opt.nsites = 250;
  opt.gamma_alpha = 0.6;
  const auto sim = seq::simulate_aa_alignment(opt);
  const auto pa = seq::AaPatternAlignment::compress(sim.alignment);
  lh::ProteinEngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 8.0;
  lh::ProteinEngine eng(pa, cfg);
  Rng rng(9);
  tree::Tree t = tree::stepwise_addition_tree(pa, rng);
  eng.set_tree(&t);
  eng.optimize_all_branches(2);
  const double before = eng.log_likelihood();
  const double after = search::optimize_gamma_alpha(eng);
  EXPECT_GE(after, before);
}
