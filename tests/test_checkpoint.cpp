// Tests for analysis checkpointing: save/load round trips, resume
// semantics, mismatch detection and failure injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "search/checkpoint.h"
#include "seq/seqgen.h"

using namespace rxc;
using search::AnalysisCheckpoint;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("rxc_ckp_test_") + name))
      .string();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(temp_path(name)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

}  // namespace

TEST(Checkpoint, SaveLoadRoundTrip) {
  auto cp = AnalysisCheckpoint::fresh(search::make_analysis(2, 3));
  search::TaskResult r;
  r.log_likelihood = -1234.5678;
  r.rounds = 4;
  r.newick = "((a:1,b:2):0.5,c:3,d:4);";
  cp.results[1] = r;
  cp.results[4] = r;

  std::stringstream stream;
  cp.save(stream);
  const auto back = AnalysisCheckpoint::load(stream);
  ASSERT_EQ(back.tasks.size(), 5u);
  EXPECT_EQ(back.completed(), 2u);
  EXPECT_FALSE(back.results[0].has_value());
  ASSERT_TRUE(back.results[1].has_value());
  EXPECT_DOUBLE_EQ(back.results[1]->log_likelihood, -1234.5678);
  EXPECT_EQ(back.results[1]->rounds, 4);
  EXPECT_EQ(back.results[1]->newick, r.newick);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back.tasks[i].kind, cp.tasks[i].kind);
    EXPECT_EQ(back.tasks[i].seed, cp.tasks[i].seed);
  }
}

TEST(Checkpoint, LoadRejectsGarbage) {
  std::stringstream bad1("not-a-checkpoint 3");
  EXPECT_THROW(AnalysisCheckpoint::load(bad1), ParseError);
  std::stringstream bad2("rxc-checkpoint-v1 2\ntask 7 inference 1\n");
  EXPECT_THROW(AnalysisCheckpoint::load(bad2), ParseError);
  std::stringstream bad3("rxc-checkpoint-v1 1\nbogus record\n");
  EXPECT_THROW(AnalysisCheckpoint::load(bad3), ParseError);
  std::stringstream bad4("rxc-checkpoint-v1 2\ntask 0 inference 1\n");
  EXPECT_THROW(AnalysisCheckpoint::load(bad4), ParseError);  // missing task 1
  EXPECT_THROW(AnalysisCheckpoint::load_file("/nonexistent.ckp"), Error);
}

TEST(Checkpoint, RunResumesWithoutRecomputing) {
  seq::SimOptions opt;
  opt.ntaxa = 10;
  opt.nsites = 300;
  opt.seed = 12;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  lh::EngineConfig cfg;
  cfg.categories = 4;
  search::SearchOptions so;
  so.max_rounds = 2;
  const auto tasks = search::make_analysis(1, 2);

  TempFile tmp("resume");
  const auto first =
      search::run_analysis_checkpointed(pa, cfg, so, tasks, tmp.path);
  ASSERT_EQ(first.size(), 3u);

  // Corrupt nothing; resume must read all results from the file.  Verify by
  // making the checkpoint claim a different lnl for task 0 and seeing the
  // resumed run report it verbatim (i.e., no recomputation).
  auto cp = AnalysisCheckpoint::load_file(tmp.path);
  cp.results[0]->log_likelihood = -42.0;
  cp.save_file(tmp.path);

  const auto second =
      search::run_analysis_checkpointed(pa, cfg, so, tasks, tmp.path);
  EXPECT_DOUBLE_EQ(second[0].log_likelihood, -42.0);
  EXPECT_DOUBLE_EQ(second[1].log_likelihood, first[1].log_likelihood);
  EXPECT_EQ(second[2].newick, first[2].newick);
}

TEST(Checkpoint, PartialCheckpointFinishesRemainingTasks) {
  seq::SimOptions opt;
  opt.ntaxa = 8;
  opt.nsites = 200;
  opt.seed = 9;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  lh::EngineConfig cfg;
  cfg.categories = 2;
  search::SearchOptions so;
  so.max_rounds = 1;
  const auto tasks = search::make_analysis(0, 3);

  TempFile tmp("partial");
  // Write a checkpoint with only task 1 done.
  auto cp = AnalysisCheckpoint::fresh(tasks);
  search::TaskResult canned;
  canned.log_likelihood = -99.0;
  canned.rounds = 1;
  canned.newick = "(x);";
  cp.results[1] = canned;
  cp.save_file(tmp.path);

  const auto results =
      search::run_analysis_checkpointed(pa, cfg, so, tasks, tmp.path);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[1].log_likelihood, -99.0);  // kept
  EXPECT_LT(results[0].log_likelihood, -100.0);        // actually computed
  EXPECT_LT(results[2].log_likelihood, -100.0);
  // The file now records everything.
  EXPECT_TRUE(AnalysisCheckpoint::load_file(tmp.path).done());
}

TEST(Checkpoint, MismatchedTaskListRejected) {
  seq::SimOptions opt;
  opt.ntaxa = 8;
  opt.nsites = 150;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  lh::EngineConfig cfg;
  cfg.categories = 2;
  search::SearchOptions so;
  so.max_rounds = 1;

  TempFile tmp("mismatch");
  AnalysisCheckpoint::fresh(search::make_analysis(1, 1)).save_file(tmp.path);
  // Different seeds.
  const auto other = search::make_analysis(1, 1, 999);
  EXPECT_THROW(
      search::run_analysis_checkpointed(pa, cfg, so, other, tmp.path), Error);
  // Different count.
  const auto bigger = search::make_analysis(1, 2);
  EXPECT_THROW(
      search::run_analysis_checkpointed(pa, cfg, so, bigger, tmp.path), Error);
}

// --- AnalysisStepper --------------------------------------------------------

TEST(Stepper, StepwiseMatchesDirectRuns) {
  seq::SimOptions opt;
  opt.ntaxa = 8;
  opt.nsites = 150;
  opt.seed = 5;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  lh::EngineConfig cfg;
  cfg.categories = 2;
  search::SearchOptions so;
  so.max_rounds = 1;
  const auto tasks = search::make_analysis(1, 2);

  search::AnalysisStepper stepper(pa, cfg, so,
                                  AnalysisCheckpoint::fresh(tasks));
  EXPECT_EQ(stepper.total(), 3u);
  EXPECT_EQ(stepper.next_index(), 0u);
  while (!stepper.done()) {
    const std::size_t before = stepper.completed();
    EXPECT_EQ(stepper.step(), before);
    EXPECT_EQ(stepper.completed(), before + 1);
  }
  EXPECT_EQ(stepper.next_index(), tasks.size());
  EXPECT_THROW(stepper.step(), Error);

  const auto results = stepper.results();
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto direct = search::run_task(pa, cfg, so, tasks[i]);
    EXPECT_EQ(results[i].log_likelihood, direct.log_likelihood);
    EXPECT_EQ(results[i].newick, direct.newick);
  }
}

TEST(Stepper, SerializedResumeAtEveryBoundaryIsBitwiseIdentical) {
  seq::SimOptions opt;
  opt.ntaxa = 7;
  opt.nsites = 120;
  opt.seed = 3;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  lh::EngineConfig cfg;
  cfg.categories = 2;
  search::SearchOptions so;
  so.max_rounds = 1;
  const auto tasks = search::make_analysis(1, 2);

  // Uninterrupted reference run.
  search::AnalysisStepper ref(pa, cfg, so, AnalysisCheckpoint::fresh(tasks));
  while (!ref.done()) ref.step();
  const auto expect = ref.results();

  // Suspend at every boundary: run k steps, round-trip the checkpoint
  // through its text form, resume in a fresh stepper, finish.
  for (std::size_t k = 0; k <= tasks.size(); ++k) {
    search::AnalysisStepper first(pa, cfg, so,
                                  AnalysisCheckpoint::fresh(tasks));
    for (std::size_t i = 0; i < k; ++i) first.step();
    const std::string text = first.checkpoint().to_string();

    auto resumed_cp = AnalysisCheckpoint::from_string(text);
    resumed_cp.require_matches(tasks);
    EXPECT_EQ(resumed_cp.completed(), k);
    search::AnalysisStepper second(pa, cfg, so, std::move(resumed_cp));
    while (!second.done()) second.step();
    const auto results = second.results();
    ASSERT_EQ(results.size(), expect.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].log_likelihood, expect[i].log_likelihood)
          << "suspend after " << k << " steps, task " << i;
      EXPECT_EQ(results[i].newick, expect[i].newick);
    }
  }
}

TEST(Stepper, RejectsMismatchedCheckpoint) {
  seq::SimOptions opt;
  opt.ntaxa = 6;
  opt.nsites = 80;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  const auto cp = AnalysisCheckpoint::fresh(search::make_analysis(1, 1));
  EXPECT_THROW(cp.require_matches(search::make_analysis(1, 1, 999)), Error);
  EXPECT_THROW(cp.require_matches(search::make_analysis(2, 1)), Error);
  EXPECT_NO_THROW(cp.require_matches(search::make_analysis(1, 1)));
}
