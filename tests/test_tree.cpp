// Tests for src/tree: topology invariants, Newick interop, prune/regraft
// editing, splits/RF, parsimony and stepwise addition.

#include <gtest/gtest.h>

#include <set>

#include "seq/patterns.h"
#include "seq/seqgen.h"
#include "tree/moves.h"
#include "tree/parsimony.h"
#include "tree/tree.h"

using namespace rxc;
using tree::Tree;

namespace {

std::vector<std::string> names(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("t" + std::to_string(i));
  return out;
}

}  // namespace

TEST(Tree, TripletInvariants) {
  const Tree t = Tree::initial_triplet(3, 0, 1, 2, 0.1);
  t.check_valid();
  EXPECT_EQ(t.edge_count(), 3u);
  EXPECT_EQ(t.degree(3), 3);
  EXPECT_EQ(t.degree(0), 1);
}

TEST(Tree, RandomTopologyValidAcrossSizes) {
  Rng rng(3);
  for (std::size_t n : {4u, 5u, 8u, 16u, 42u, 101u}) {
    const Tree t = Tree::random_topology(n, rng);
    EXPECT_EQ(t.edge_count(), 2 * n - 3);
    EXPECT_NO_THROW(t.check_valid());
  }
}

TEST(Tree, RandomTopologiesDiffer) {
  Rng r1(1), r2(2);
  const Tree a = Tree::random_topology(20, r1);
  const Tree b = Tree::random_topology(20, r2);
  EXPECT_GT(Tree::rf_distance(a, b), 0u);
}

TEST(Tree, DirIndexRoundTrips) {
  Rng rng(5);
  const Tree t = Tree::random_topology(10, rng);
  for (std::size_t e = 0; e < t.edge_slots(); ++e) {
    if (!t.edge_alive(static_cast<int>(e))) continue;
    const auto [a, b] = t.edge_nodes(static_cast<int>(e));
    const int da = t.dir_index(a, static_cast<int>(e));
    const int db = t.dir_index(b, static_cast<int>(e));
    EXPECT_EQ(Tree::dir_reverse(da), db);
    EXPECT_EQ(t.dir_nodes(da).first, a);
    EXPECT_EQ(t.dir_nodes(db).first, b);
  }
}

TEST(Tree, NewickRoundTripPreservesTopology) {
  Rng rng(7);
  const auto nm = names(12);
  const Tree t = Tree::random_topology(12, rng);
  const std::string text = t.to_newick(nm);
  const Tree back = Tree::from_newick_string(text, nm);
  EXPECT_EQ(Tree::rf_distance(t, back), 0u);
}

TEST(Tree, FromNewickRootedInputIsSpliced) {
  const auto nm = std::vector<std::string>{"a", "b", "c", "d"};
  const Tree t =
      Tree::from_newick_string("((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.05);", nm);
  t.check_valid();
  EXPECT_EQ(t.edge_count(), 5u);
  // Spliced central edge has summed length 0.1.
  double central = -1.0;
  for (std::size_t e = 0; e < t.edge_slots(); ++e) {
    const auto [x, y] = t.edge_nodes(static_cast<int>(e));
    if (!t.is_tip(x) && !t.is_tip(y)) central = t.branch_length(static_cast<int>(e));
  }
  EXPECT_NEAR(central, 0.1, 1e-12);
}

TEST(Tree, FromNewickRejectsBadInput) {
  const auto nm = names(4);
  EXPECT_THROW(Tree::from_newick_string("(t0,t1,t2,t3,t0);", nm), Error);
  EXPECT_THROW(Tree::from_newick_string("((t0,t1),(t2,zzz));", nm), Error);
  EXPECT_THROW(Tree::from_newick_string("(t0,t1,t2);", nm), Error);
}

TEST(Tree, PruneRestoreIsIdentity) {
  Rng rng(11);
  Tree t = Tree::random_topology(16, rng);
  const Tree original = t;
  const auto points = tree::enumerate_prune_points(t);
  ASSERT_FALSE(points.empty());
  for (const auto& [x, s] : points) {
    const auto rec = t.prune(x, s);
    t.restore(rec);
    t.check_valid();
    EXPECT_EQ(Tree::rf_distance(t, original), 0u);
  }
}

TEST(Tree, PruneRegraftProducesValidTree) {
  Rng rng(13);
  Tree t = Tree::random_topology(16, rng);
  const auto rec = t.prune(20, t.neighbors(20)[0].node);
  const auto targets = tree::enumerate_regraft_targets(t, rec, 3);
  ASSERT_FALSE(targets.empty());
  const int target = targets.front().target_edge;
  const double half = t.branch_length(target) / 2;
  t.regraft(rec.x, target, half, rec.edge_xb);
  t.check_valid();
}

TEST(Tree, RegraftThenPruneBackRestores) {
  Rng rng(17);
  Tree t = Tree::random_topology(12, rng);
  const Tree original = t;
  const int x = 14;
  const int s = t.neighbors(x)[1].node;
  auto rec = t.prune(x, s);
  const auto targets = tree::enumerate_regraft_targets(t, rec, 5);
  for (const auto& cand : targets) {
    const double half = t.branch_length(cand.target_edge) / 2;
    t.regraft(x, cand.target_edge, half, rec.edge_xb);
    t.check_valid();
    const auto rec2 = t.prune(x, s);
    EXPECT_EQ(rec2.merged_edge, cand.target_edge);
  }
  t.restore(rec);
  t.check_valid();
  EXPECT_EQ(Tree::rf_distance(t, original), 0u);
  // Branch lengths restored too.
  EXPECT_NEAR(t.total_length(), original.total_length(), 1e-12);
}

TEST(Tree, SplitsCountAndNormalization) {
  Rng rng(19);
  const Tree t = Tree::random_topology(10, rng);
  const auto sp = t.splits();
  EXPECT_EQ(sp.size(), 10u - 3u);  // inner edges of an unrooted binary tree
  for (const auto& s : sp) EXPECT_EQ(s.bits[0] & 1ULL, 0ULL);
  // All splits distinct.
  std::set<tree::Split> uniq(sp.begin(), sp.end());
  EXPECT_EQ(uniq.size(), sp.size());
}

TEST(Tree, RfDistanceProperties) {
  Rng rng(23);
  const Tree a = Tree::random_topology(15, rng);
  const Tree b = Tree::random_topology(15, rng);
  EXPECT_EQ(Tree::rf_distance(a, a), 0u);
  EXPECT_EQ(Tree::rf_distance(a, b), Tree::rf_distance(b, a));
  EXPECT_LE(Tree::rf_distance(a, b), 2 * (15u - 3u));
}

TEST(Moves, PrunePointsCoverAllInnerDirections) {
  Rng rng(29);
  const Tree t = Tree::random_topology(9, rng);
  const auto points = tree::enumerate_prune_points(t);
  EXPECT_EQ(points.size(), 3 * (9u - 2u));
}

TEST(Moves, RadiusLimitsTargets) {
  Rng rng(31);
  Tree t = Tree::random_topology(24, rng);
  const auto rec = t.prune(30, t.neighbors(30)[0].node);
  const auto near = tree::enumerate_regraft_targets(t, rec, 1);
  const auto far = tree::enumerate_regraft_targets(t, rec, 10);
  EXPECT_LT(near.size(), far.size());
  for (const auto& c : near) EXPECT_LE(c.distance, 1);
  for (const auto& c : far) {
    EXPECT_NE(c.target_edge, rec.merged_edge);
    EXPECT_TRUE(t.edge_alive(c.target_edge));
  }
  t.restore(rec);
  t.check_valid();
}

// --- parsimony -------------------------------------------------------------

TEST(Parsimony, PerfectAlignmentScoresZero) {
  const auto a = seq::Alignment::from_records(
      {{"t0", "AAAA"}, {"t1", "AAAA"}, {"t2", "AAAA"}, {"t3", "AAAA"}});
  const auto pa = seq::PatternAlignment::compress(a);
  Rng rng(1);
  const Tree t = Tree::random_topology(4, rng);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(t, pa, pa.weights()), 0.0);
}

TEST(Parsimony, SingleVariableColumnScoresOne) {
  // One column where exactly one taxon differs: any topology needs exactly
  // one change.
  const auto a = seq::Alignment::from_records(
      {{"t0", "A"}, {"t1", "A"}, {"t2", "A"}, {"t3", "C"}});
  const auto pa = seq::PatternAlignment::compress(a);
  Rng rng(2);
  const Tree t = Tree::random_topology(4, rng);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(t, pa, pa.weights()), 1.0);
}

TEST(Parsimony, TopologyDependentScore) {
  // Columns support the split {t0,t1} | {t2,t3}: the matching topology
  // needs 1 change per column, the mismatching one 2.  The four identical
  // columns compress into one pattern of weight 4.
  const auto a = seq::Alignment::from_records(
      {{"t0", "AAAA"}, {"t1", "AAAA"}, {"t2", "CCCC"}, {"t3", "CCCC"}});
  const auto pa = seq::PatternAlignment::compress(a);
  ASSERT_EQ(pa.pattern_count(), 1u);
  const auto nm = std::vector<std::string>{"t0", "t1", "t2", "t3"};
  const Tree good = Tree::from_newick_string("((t0,t1),(t2,t3));", nm);
  const Tree bad = Tree::from_newick_string("((t0,t2),(t1,t3));", nm);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(good, pa, pa.weights()), 4.0);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(bad, pa, pa.weights()), 8.0);
}

TEST(Parsimony, ScoreInvariantUnderTreeCopy) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(3);
  const Tree t = Tree::random_topology(pa.taxon_count(), rng);
  const double s1 = tree::parsimony_score(t, pa, pa.weights());
  const Tree copy = t;
  EXPECT_DOUBLE_EQ(tree::parsimony_score(copy, pa, pa.weights()), s1);
}

TEST(Parsimony, StepwiseAdditionBeatsRandomTopology) {
  const auto sim = seq::simulate_alignment({});
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(5);
  const Tree stepwise = tree::stepwise_addition_tree(pa, rng);
  stepwise.check_valid();
  double random_total = 0.0, n = 0.0;
  for (int i = 0; i < 5; ++i) {
    const Tree r = Tree::random_topology(pa.taxon_count(), rng);
    random_total += tree::parsimony_score(r, pa, pa.weights());
    n += 1.0;
  }
  EXPECT_LT(tree::parsimony_score(stepwise, pa, pa.weights()),
            random_total / n);
}

TEST(Parsimony, StepwiseAdditionVariesWithSeed) {
  const auto sim = seq::make_42sc();
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng r1(1), r2(2);
  const Tree a = tree::stepwise_addition_tree(pa, r1);
  const Tree b = tree::stepwise_addition_tree(pa, r2);
  // Distinct random insertion orders almost surely give distinct trees.
  EXPECT_GT(Tree::rf_distance(a, b), 0u);
}

#include "tree/render.h"

TEST(Render, AsciiTreeListsEveryTaxonOnce) {
  Rng rng(47);
  const Tree t = Tree::random_topology(9, rng);
  const auto nm = names(9);
  const std::string art = tree::ascii_tree(t, nm);
  for (const auto& name : nm) {
    const auto pos = art.find("- " + name);
    ASSERT_NE(pos, std::string::npos) << name;
    EXPECT_EQ(art.find("- " + name, pos + 1), std::string::npos) << name;
  }
  // Root tip is the very first line.
  EXPECT_EQ(art.rfind("- t0", 0), 0u);
}

TEST(Render, ShowsBranchLengthsWhenAsked) {
  Rng rng(48);
  const Tree t = Tree::random_topology(5, rng, 0.125);
  const std::string art = tree::ascii_tree(t, names(5), 0, true);
  EXPECT_NE(art.find("(0.125)"), std::string::npos);
}

TEST(Render, ValidatesArguments) {
  Rng rng(49);
  const Tree t = Tree::random_topology(5, rng);
  EXPECT_THROW(tree::ascii_tree(t, names(4)), Error);
  EXPECT_THROW(tree::ascii_tree(t, names(5), 7), Error);
}
