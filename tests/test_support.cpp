// Tests for src/support: RNG, aligned allocation, stats, strings, options.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/aligned.h"
#include "support/error.h"
#include "support/options.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/str.h"

using namespace rxc;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(11);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(5)];
  for (int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
}

TEST(Rng, ExponentialMeanOne) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential();
    ASSERT_GE(x, 0.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, GammaMomentsMatchShape) {
  for (double shape : {0.3, 1.0, 4.0}) {
    Rng rng(19);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(rng.gamma(shape));
    EXPECT_NEAR(stats.mean(), shape, shape * 0.05) << "shape " << shape;
    EXPECT_NEAR(stats.variance(), shape, shape * 0.12) << "shape " << shape;
  }
}

TEST(Rng, DiscreteFromCdf) {
  Rng rng(23);
  const double cdf[3] = {0.2, 0.5, 1.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) ++counts[rng.discrete_from_cdf(cdf, 3)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.5, 0.02);
}

TEST(Aligned, VectorDataIs16ByteAligned) {
  for (int n : {1, 3, 17, 1000}) {
    aligned_vector<double> v(n);
    EXPECT_TRUE(is_aligned(v.data(), 16));
  }
}

TEST(Aligned, RoundUp) {
  EXPECT_EQ(round_up(0, 16), 0u);
  EXPECT_EQ(round_up(1, 16), 16u);
  EXPECT_EQ(round_up(16, 16), 16u);
  EXPECT_EQ(round_up(17, 16), 32u);
}

TEST(Stats, OnlineMatchesClosedForm) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Str, TrimAndSplit) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  const auto ws = split_ws(" a  bb\tccc \n");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0], "a");
  EXPECT_EQ(ws[2], "ccc");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(Str, Formatting) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_TRUE(starts_with_ci("Hello World", "hello"));
  EXPECT_FALSE(starts_with_ci("He", "hello"));
}

TEST(Options, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.5", "--iters", "10", "--verbose"};
  Options opt(5, argv);
  EXPECT_DOUBLE_EQ(opt.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(opt.get_int("iters", 0), 10);
  EXPECT_TRUE(opt.get_bool("verbose", false));
  EXPECT_EQ(opt.get("missing", "dflt"), "dflt");
  EXPECT_NO_THROW(opt.check_known({"alpha", "iters", "verbose"}));
  EXPECT_THROW(opt.check_known({"alpha"}), Error);
}

TEST(Options, RejectsBarePositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Options(2, argv), Error);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    RXC_REQUIRE(false, "the reason");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
  }
}

// --- MpmcQueue --------------------------------------------------------------

#include <atomic>
#include <thread>

#include "support/mpmc_queue.h"

TEST(MpmcQueue, FifoAndCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: backpressure
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CloseDrainsThenEndsStream) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // no pushes after close
  EXPECT_FALSE(q.push(9));
  EXPECT_EQ(q.pop().value(), 7);           // queued elements stay poppable
  EXPECT_FALSE(q.pop().has_value());       // closed + drained = end of stream
  EXPECT_NO_THROW(q.close());              // idempotent
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), Error);
}

TEST(MpmcQueue, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 250;
  MpmcQueue<int> q(8);  // small bound so producers actually block
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  for (std::size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  q.close();
  for (int t = 0; t < kConsumers; ++t) threads[static_cast<std::size_t>(t)].join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}
