// Tests for src/mpirt: message passing semantics and the master-worker
// skeleton.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "mpirt/comm.h"
#include "mpirt/master_worker.h"
#include "support/error.h"

using namespace rxc::mpirt;

TEST(Comm, PointToPointDelivery) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, Message::of(7, 42));
    } else {
      const Message m = comm.recv(1);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.as<int>(), 42);
    }
  });
}

TEST(Comm, TagFilteringPreservesOrderWithinTag) {
  run_ranks(2, [](int rank, Comm& comm) {
    if (rank == 0) {
      comm.send(0, 1, Message::of(1, 10));
      comm.send(0, 1, Message::of(2, 20));
      comm.send(0, 1, Message::of(1, 11));
    } else {
      EXPECT_EQ(comm.recv(1, kAnySource, 2).as<int>(), 20);
      EXPECT_EQ(comm.recv(1, kAnySource, 1).as<int>(), 10);
      EXPECT_EQ(comm.recv(1, kAnySource, 1).as<int>(), 11);
    }
  });
}

TEST(Comm, SourceFiltering) {
  run_ranks(3, [](int rank, Comm& comm) {
    if (rank == 0) {
      // Wait specifically for rank 2's message first.
      EXPECT_EQ(comm.recv(0, 2).as<int>(), 2);
      EXPECT_EQ(comm.recv(0, 1).as<int>(), 1);
    } else {
      comm.send(rank, 0, Message::of(0, rank));
    }
  });
}

TEST(Comm, TryRecvNonBlocking) {
  Comm comm(2);
  Message out;
  EXPECT_FALSE(comm.try_recv(1, out));
  comm.send(0, 1, Message::of(3, 9));
  EXPECT_TRUE(comm.try_recv(1, out));
  EXPECT_EQ(out.as<int>(), 9);
  EXPECT_FALSE(comm.try_recv(1, out));
}

TEST(Comm, StringPayloadRoundTrip) {
  Comm comm(2);
  comm.send(0, 1, Message::of_string(5, "hello worker"));
  Message out;
  ASSERT_TRUE(comm.try_recv(1, out, 0, 5));
  EXPECT_EQ(out.as_string(), "hello worker");
}

TEST(Comm, BarrierSynchronizesAllRanks) {
  constexpr int kRanks = 6;
  std::atomic<int> before{0}, after{0};
  run_ranks(kRanks, [&](int, Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must have incremented `before`.
    EXPECT_EQ(before.load(), kRanks);
    after.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(after.load(), kRanks);
  });
}

TEST(Comm, InvalidRanksThrow) {
  Comm comm(2);
  EXPECT_THROW(comm.send(0, 5, Message::of(0, 1)), rxc::Error);
  EXPECT_THROW(comm.send(-1, 1, Message::of(0, 1)), rxc::Error);
  Message out;
  EXPECT_THROW(comm.try_recv(9, out), rxc::Error);
}

TEST(Comm, WorkerExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](int rank, Comm&) {
                           if (rank == 1) throw rxc::Error("worker died");
                         }),
               rxc::Error);
}

TEST(MasterWorker, ComputesAllTasksInOrder) {
  constexpr std::size_t kTasks = 23;
  std::vector<std::string> results;
  run_ranks(4, [&](int rank, Comm& comm) {
    auto out = master_worker_run(comm, rank, kTasks, [](std::size_t task) {
      return "result-" + std::to_string(task * task);
    });
    if (rank == 0) results = std::move(out);
  });
  ASSERT_EQ(results.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(results[i], "result-" + std::to_string(i * i));
}

TEST(MasterWorker, LoadBalancesAcrossWorkers) {
  // Workers record which tasks they executed; with 31 tasks and 3 workers,
  // every worker should get some (dynamic pull distribution).
  std::array<std::atomic<int>, 4> counts{};
  run_ranks(4, [&](int rank, Comm& comm) {
    master_worker_run(comm, rank, 31, [&](std::size_t) {
      counts[rank].fetch_add(1);
      return std::string("x");
    });
  });
  EXPECT_EQ(counts[0].load(), 0);  // master computes nothing
  int total = 0;
  for (int w = 1; w < 4; ++w) {
    EXPECT_GT(counts[w].load(), 0) << "worker " << w;
    total += counts[w].load();
  }
  EXPECT_EQ(total, 31);
}

TEST(MasterWorker, ZeroTasksTerminates) {
  run_ranks(3, [](int rank, Comm& comm) {
    const auto out =
        master_worker_run(comm, rank, 0, [](std::size_t) { return ""; });
    if (rank == 0) EXPECT_TRUE(out.empty());
  });
}

TEST(MasterWorker, SingleWorkerHandlesEverything) {
  run_ranks(2, [](int rank, Comm& comm) {
    const auto out = master_worker_run(comm, rank, 10, [](std::size_t t) {
      return std::to_string(t);
    });
    if (rank == 0) {
      ASSERT_EQ(out.size(), 10u);
      EXPECT_EQ(out[9], "9");
    }
  });
}

TEST(MasterWorker, RequiresTwoRanks) {
  Comm comm(1);
  EXPECT_THROW(
      master_worker_run(comm, 0, 1, [](std::size_t) { return ""; }),
      rxc::Error);
}

// --- collectives ------------------------------------------------------------

#include "mpirt/collectives.h"

TEST(Collectives, BroadcastReplicatesRootData) {
  run_ranks(5, [](int rank, Comm& comm) {
    std::string data = rank == 2 ? "the alignment payload" : "";
    broadcast(comm, rank, 2, data);
    EXPECT_EQ(data, "the alignment payload");
  });
}

TEST(Collectives, GatherCollectsInRankOrder) {
  run_ranks(4, [](int rank, Comm& comm) {
    const auto out = gather(comm, rank, 0, "r" + std::to_string(rank));
    if (rank == 0) {
      ASSERT_EQ(out.size(), 4u);
      for (int r = 0; r < 4; ++r)
        EXPECT_EQ(out[r], "r" + std::to_string(r));
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(Collectives, AllReduceSumAndMax) {
  run_ranks(6, [](int rank, Comm& comm) {
    const double sum = all_reduce_sum(comm, rank, static_cast<double>(rank));
    EXPECT_DOUBLE_EQ(sum, 15.0);  // 0+1+..+5
    const double mx =
        all_reduce_max(comm, rank, rank == 3 ? 99.0 : static_cast<double>(rank));
    EXPECT_DOUBLE_EQ(mx, 99.0);
  });
}

TEST(Collectives, SingleRankDegenerates) {
  Comm comm(1);
  std::string data = "solo";
  broadcast(comm, 0, 0, data);
  EXPECT_EQ(data, "solo");
  EXPECT_DOUBLE_EQ(all_reduce_sum(comm, 0, 7.0), 7.0);
  const auto g = gather(comm, 0, 0, "only");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0], "only");
}

TEST(Collectives, BadRootRejected) {
  Comm comm(2);
  std::string data;
  EXPECT_THROW(broadcast(comm, 0, 7, data), rxc::Error);
}
