// Tests for the amino-acid (20-state) path: encoding, models, generic
// eigendecomposition, N-state kernels against a brute-force oracle, the
// protein engine's invariants, and the protein tree search.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "likelihood/protein_engine.h"
#include "model/aa_model.h"
#include "model/eigen_n.h"
#include "search/protein_search.h"
#include "seq/aa_alignment.h"
#include "support/stats.h"
#include "tree/moves.h"
#include "tree/parsimony.h"

using namespace rxc;
using model::AaModel;
using seq::AaAlignment;
using seq::AaPatternAlignment;
using tree::Tree;

namespace {

AaModel test_model() {
  Rng rng(1234);
  return AaModel::random(rng);
}

/// Independent 20-state brute-force site likelihood: enumerate inner-node
/// states (use only 4-taxon trees: 20^2 = 400 assignments).
double brute_force_site_lh(const Tree& t, const AaPatternAlignment& pa,
                           const AaModel& mdl, double rate,
                           std::size_t pattern) {
  const auto es = mdl.decompose();
  const int ntips = static_cast<int>(t.tip_count());
  const int ninner = static_cast<int>(t.node_count()) - ntips;
  RXC_ASSERT(ninner == 2);

  std::vector<std::vector<double>> pmat(t.edge_slots(),
                                        std::vector<double>(400));
  for (std::size_t e = 0; e < t.edge_slots(); ++e)
    if (t.edge_alive(static_cast<int>(e)))
      model::transition_matrix_n(
          es, t.branch_length(static_cast<int>(e)) * rate, pmat[e].data());

  double total = 0.0;
  for (int s0 = 0; s0 < 20; ++s0) {
    for (int s1 = 0; s1 < 20; ++s1) {
      const int state[2] = {s0, s1};
      double prod = mdl.freqs[s0];
      for (std::size_t e = 0; e < t.edge_slots(); ++e) {
        if (!t.edge_alive(static_cast<int>(e))) continue;
        auto [a, b] = t.edge_nodes(static_cast<int>(e));
        if (t.is_tip(a)) std::swap(a, b);
        const int sa = state[a - ntips];
        if (t.is_tip(b)) {
          const std::uint32_t mask = seq::aa_code_mask(pa.at(b, pattern));
          double sum = 0.0;
          for (int j = 0; j < 20; ++j)
            if (mask & (1u << j)) sum += pmat[e][sa * 20 + j];
          prod *= sum;
        } else {
          prod *= pmat[e][sa * 20 + state[b - ntips]];
        }
      }
      total += prod;
    }
  }
  return total;
}

struct Fixture {
  AaAlignment aln;
  AaPatternAlignment pa;
  std::vector<std::string> nm;
  Fixture()
      : aln(AaAlignment::from_records({{"t0", "ARNDCQEGHX"},
                                       {"t1", "ARNDCQEGHI"},
                                       {"t2", "ARNECREGBI"},
                                       {"t3", "ARNZCQWGHI"}})),
        pa(AaPatternAlignment::compress(aln)),
        nm({"t0", "t1", "t2", "t3"}) {}
};

Tree quartet(const Fixture& f) {
  return Tree::from_newick_string(
      "((t0:0.12,t1:0.21):0.08,(t2:0.33,t3:0.14):0.11);", f.nm);
}

}  // namespace

// --- encoding ---------------------------------------------------------------

TEST(AaEncoding, ResiduesRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const char c = seq::kAaLetters[i];
    EXPECT_EQ(seq::encode_aa(c), i);
    EXPECT_EQ(seq::decode_aa(static_cast<seq::AaCode>(i)), c);
    EXPECT_EQ(seq::aa_code_mask(static_cast<seq::AaCode>(i)), 1u << i);
  }
}

TEST(AaEncoding, AmbiguityMasks) {
  EXPECT_EQ(__builtin_popcount(seq::aa_code_mask(seq::kAaCodeB)), 2);  // N|D
  EXPECT_EQ(__builtin_popcount(seq::aa_code_mask(seq::kAaCodeZ)), 2);  // Q|E
  EXPECT_EQ(__builtin_popcount(seq::aa_code_mask(seq::kAaCodeJ)), 2);  // I|L
  EXPECT_EQ(seq::aa_code_mask(seq::kAaCodeX), (1u << 20) - 1);
  EXPECT_EQ(seq::encode_aa('-'), seq::kAaCodeX);
  EXPECT_EQ(seq::encode_aa('x'), seq::kAaCodeX);
}

TEST(AaEncoding, RejectsInvalid) {
  EXPECT_THROW(seq::encode_aa('O'), ParseError);
  EXPECT_THROW(seq::encode_aa('U'), ParseError);
  EXPECT_THROW(seq::encode_aa('1'), ParseError);
}

TEST(AaAlignmentTest, CompressAndFreqs) {
  Fixture f;
  EXPECT_EQ(f.pa.taxon_count(), 4u);
  EXPECT_LE(f.pa.pattern_count(), f.aln.site_count());
  const auto freqs = f.aln.empirical_freqs();
  double sum = 0.0;
  for (const double x : freqs) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- models -------------------------------------------------------------------

TEST(AaModelTest, PoissonUniform) {
  const auto m = AaModel::poisson();
  EXPECT_NO_THROW(m.validate());
  const auto es = m.decompose();
  EXPECT_NEAR(es.lambda[0], 0.0, 1e-8);
  for (int k = 1; k < 20; ++k) EXPECT_LT(es.lambda[k], 0.0);
}

TEST(AaModelTest, PamlDatRoundTrip) {
  // Build a synthetic .dat in PAML layout from a random model, parse it
  // back, and compare.
  Rng rng(9);
  const AaModel original = AaModel::random(rng);
  std::ostringstream dat;
  dat.precision(17);
  // Lower triangle rows: row i lists exchangeabilities with j < i.
  for (int i = 1; i < 20; ++i) {
    for (int j = 0; j < i; ++j) {
      const std::size_t index = static_cast<std::size_t>(j) * 20 -
                                static_cast<std::size_t>(j) * (j + 1) / 2 +
                                (i - j - 1);
      dat << original.rates[index] << ' ';
    }
    dat << '\n';
  }
  dat << '\n';
  for (int i = 0; i < 20; ++i) dat << original.freqs[i] << ' ';
  dat << '\n';

  std::istringstream in(dat.str());
  const AaModel parsed = AaModel::from_paml_dat(in, "roundtrip");
  for (std::size_t k = 0; k < model::kAaPairs; ++k)
    EXPECT_NEAR(parsed.rates[k], original.rates[k], 1e-12) << k;
  for (int i = 0; i < 20; ++i)
    EXPECT_NEAR(parsed.freqs[i], original.freqs[i], 1e-12);
}

TEST(AaModelTest, PamlDatErrors) {
  std::istringstream half("1.0 2.0 3.0");
  EXPECT_THROW(AaModel::from_paml_dat(half, "x"), ParseError);
  std::istringstream garbage("1.0 abc");
  EXPECT_THROW(AaModel::from_paml_dat(garbage, "x"), ParseError);
  EXPECT_THROW(AaModel::from_paml_dat_file("/nonexistent.dat"), Error);
}

// --- generic eigen --------------------------------------------------------------

TEST(EigenN, TransitionMatrixProperties) {
  const auto m = test_model();
  const auto es = m.decompose();
  std::vector<double> p(400), p2(400), pp(400);
  // Rows sum to 1, entries nonnegative.
  model::transition_matrix_n(es, 0.37, p.data());
  for (int i = 0; i < 20; ++i) {
    double row = 0.0;
    for (int j = 0; j < 20; ++j) {
      EXPECT_GE(p[i * 20 + j], -1e-12);
      row += p[i * 20 + j];
    }
    EXPECT_NEAR(row, 1.0, 1e-10);
  }
  // P(0) = I.
  model::transition_matrix_n(es, 0.0, p2.data());
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      EXPECT_NEAR(p2[i * 20 + j], i == j ? 1.0 : 0.0, 1e-10);
  // Chapman-Kolmogorov: P(0.2) * P(0.3) = P(0.5).
  std::vector<double> pa2(400), pb(400);
  model::transition_matrix_n(es, 0.2, pa2.data());
  model::transition_matrix_n(es, 0.3, pb.data());
  model::transition_matrix_n(es, 0.5, pp.data());
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 20; ++k) sum += pa2[i * 20 + k] * pb[k * 20 + j];
      EXPECT_NEAR(sum, pp[i * 20 + j], 1e-10);
    }
  // Detailed balance.
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      EXPECT_NEAR(m.freqs[i] * p[i * 20 + j], m.freqs[j] * p[j * 20 + i],
                  1e-11);
}

// --- kernels vs oracle ------------------------------------------------------------

TEST(ProteinOracle, CatSingleRateMatchesBruteForce) {
  Fixture f;
  Tree t = quartet(f);
  lh::ProteinEngineConfig cfg;
  cfg.model = test_model();
  cfg.mode = lh::RateMode::kCat;
  cfg.categories = 1;
  lh::ProteinEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  double expected = 0.0;
  for (std::size_t p = 0; p < f.pa.pattern_count(); ++p)
    expected += f.pa.weights()[p] *
                std::log(brute_force_site_lh(t, f.pa, cfg.model, 1.0, p));
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-9);
}

TEST(ProteinOracle, GammaMatchesBruteForceAverage) {
  Fixture f;
  Tree t = quartet(f);
  lh::ProteinEngineConfig cfg;
  cfg.model = test_model();
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 0.9;
  lh::ProteinEngine eng(f.pa, cfg);
  eng.set_tree(&t);
  const auto rates = model::DiscreteGamma::make(0.9, 4).rates;
  double expected = 0.0;
  for (std::size_t p = 0; p < f.pa.pattern_count(); ++p) {
    double site = 0.0;
    for (const double r : rates)
      site += brute_force_site_lh(t, f.pa, cfg.model, r, p);
    expected += f.pa.weights()[p] * std::log(site / 4.0);
  }
  EXPECT_NEAR(eng.log_likelihood(), expected, 1e-9);
}

// --- engine invariants --------------------------------------------------------------

TEST(ProteinEngineTest, PulleyPrinciple) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  Rng rng(3);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.09);
  for (const auto mode : {lh::RateMode::kCat, lh::RateMode::kGamma}) {
    lh::ProteinEngineConfig cfg;
    cfg.model = test_model();
    cfg.mode = mode;
    cfg.categories = 3;
    lh::ProteinEngine eng(pa, cfg);
    eng.set_tree(&t);
    const double ref = eng.log_likelihood();
    EXPECT_TRUE(std::isfinite(ref));
    for (std::size_t e = 0; e < t.edge_slots(); ++e)
      if (t.edge_alive(static_cast<int>(e)))
        EXPECT_NEAR(eng.evaluate(static_cast<int>(e)), ref,
                    std::fabs(ref) * 1e-10);
  }
}

TEST(ProteinEngineTest, BranchOptimizationImproves) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  Rng rng(5);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.25);
  lh::ProteinEngineConfig cfg;
  cfg.model = AaModel::poisson();
  lh::ProteinEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double before = eng.log_likelihood();
  const double after = eng.optimize_all_branches(3);
  EXPECT_GT(after, before);
}

TEST(ProteinEngineTest, InsertionScoreMatchesActualRegraft) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  Rng rng(7);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  lh::ProteinEngineConfig cfg;
  cfg.model = test_model();
  lh::ProteinEngine eng(pa, cfg);
  eng.set_tree(&t);
  (void)eng.log_likelihood();

  const auto points = tree::enumerate_prune_points(t);
  const auto [x, s] = points[5];
  auto rec = t.prune(x, s);
  eng.on_prune(rec);
  const auto targets = tree::enumerate_regraft_targets(t, rec, 3);
  ASSERT_FALSE(targets.empty());
  const int target = targets.front().target_edge;
  const double predicted = eng.score_insertion(rec, target);
  const double half = t.branch_length(target) / 2;
  t.regraft(x, target, half, rec.edge_xb);
  eng.on_regraft(target, rec.edge_xb);
  EXPECT_NEAR(predicted, eng.log_likelihood(),
              std::fabs(predicted) * 1e-10);
}

TEST(ProteinEngineTest, BootstrapWeightsChangeAndRestore) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  Rng rng(11);
  Tree t = Tree::random_topology(pa.taxon_count(), rng, 0.1);
  lh::ProteinEngineConfig cfg;
  lh::ProteinEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double orig = eng.log_likelihood();
  std::vector<double> w(pa.pattern_count(), 0.0);
  w[0] = static_cast<double>(pa.site_count());
  eng.set_pattern_weights(w);
  EXPECT_NE(eng.log_likelihood(), orig);
  eng.set_pattern_weights(pa.weights());
  EXPECT_DOUBLE_EQ(eng.log_likelihood(), orig);
}

// --- parsimony over AA masks -----------------------------------------------------

TEST(ProteinParsimony, TopologySignal) {
  const auto aln = AaAlignment::from_records({{"t0", "AAAA"},
                                              {"t1", "AAAA"},
                                              {"t2", "WWWW"},
                                              {"t3", "WWWW"}});
  const auto pa = AaPatternAlignment::compress(aln);
  const std::vector<std::string> nm{"t0", "t1", "t2", "t3"};
  const Tree good = Tree::from_newick_string("((t0,t1),(t2,t3));", nm);
  const Tree bad = Tree::from_newick_string("((t0,t2),(t1,t3));", nm);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(good, pa), 4.0);
  EXPECT_DOUBLE_EQ(tree::parsimony_score(bad, pa), 8.0);
}

TEST(ProteinParsimony, StepwiseAdditionBeatsRandom) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  Rng rng(13);
  const Tree stepwise = tree::stepwise_addition_tree(pa, rng);
  const Tree random = Tree::random_topology(pa.taxon_count(), rng);
  EXPECT_LT(tree::parsimony_score(stepwise, pa),
            tree::parsimony_score(random, pa));
}

// --- full protein search ------------------------------------------------------------

TEST(ProteinSearch, RecoversSimulatedTopology) {
  seq::AaSimOptions opt;
  opt.ntaxa = 10;
  opt.nsites = 400;
  opt.branch_scale = 0.15;
  opt.seed = 21;
  const auto sim = seq::simulate_aa_alignment(opt);
  const auto pa = AaPatternAlignment::compress(sim.alignment);

  lh::ProteinEngineConfig cfg;
  cfg.model = AaModel::poisson();
  search::SearchOptions so;
  so.max_rounds = 4;
  const auto result = search::run_protein_task(pa, cfg, so, 1);
  EXPECT_LT(result.log_likelihood, 0.0);
  EXPECT_GT(result.counters.newview_calls, 0u);

  const Tree inferred =
      Tree::from_newick_string(result.newick, pa.names());
  const Tree truth =
      Tree::from_newick_string(sim.true_tree_newick, pa.names());
  Rng rng(2);
  const Tree random = Tree::random_topology(10, rng);
  EXPECT_LT(Tree::rf_distance(inferred, truth),
            Tree::rf_distance(random, truth));
  EXPECT_LE(Tree::rf_distance(inferred, truth), 4u);
}

TEST(ProteinSearch, BootstrapReproducibleAndDistinct) {
  const auto sim = seq::simulate_aa_alignment({});
  const auto pa = AaPatternAlignment::compress(sim.alignment);
  lh::ProteinEngineConfig cfg;
  search::SearchOptions so;
  so.max_rounds = 2;
  const auto a = search::run_protein_task(pa, cfg, so, 3, true);
  const auto b = search::run_protein_task(pa, cfg, so, 3, true);
  const auto c = search::run_protein_task(pa, cfg, so, 3, false);
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.newick, b.newick);
  EXPECT_NE(a.log_likelihood, c.log_likelihood);
}
