// Tests for cell::DeviceModel: the declarative virtual-hardware layer.
// Strict-JSON parsing (unknown/duplicate keys, type and range errors are
// ConfigError, never a silent default), bitwise to_string/from_string round
// trips, the preset table, the process-wide registry, and the contention
// semantics that replaced the old loose ExecutorSpec doubles.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cell/device_model.h"
#include "support/error.h"

using namespace rxc;
using namespace rxc::cell;

TEST(DeviceModel, DefaultsAreThePapersMachine) {
  const DeviceModel dev;
  EXPECT_EQ(dev.name, "cell-2007");
  EXPECT_EQ(dev.spe_count, 8);
  EXPECT_EQ(dev.ppe_threads, 2);
  EXPECT_EQ(dev.local_store_bytes, 256u * 1024u);
  EXPECT_EQ(dev.offload_code_bytes, 117u * 1024u);
  EXPECT_EQ(dev.ls_data_bytes(), 139u * 1024u);  // the paper: 139 KB left
  EXPECT_EQ(dev.dma_max_bytes, 16u * 1024u);
  EXPECT_EQ(dev.dma_list_max_entries, 2048u);
  EXPECT_EQ(dev.mfc_tag_count, 32);
  EXPECT_EQ(dev.mfc_queue_depth, 16);  // the CBE's 16-entry SPU command queue
  EXPECT_EQ(dev.mailbox_in_depth, 4);
  EXPECT_EQ(dev.mailbox_out_depth, 1);
  EXPECT_NO_THROW(dev.validate());
}

TEST(DeviceModel, ContentionFactorsMatchTheDocumentedFormulas) {
  DeviceModel dev;
  EXPECT_DOUBLE_EQ(dev.eib_factor(1), 1.0);  // no self-contention
  EXPECT_DOUBLE_EQ(dev.eib_factor(8),
                   1.0 + 7.0 * dev.cost.eib_contention_per_spe);
  EXPECT_DOUBLE_EQ(dev.eib_factor(0), 1.0);   // degenerate: clamped
  EXPECT_DOUBLE_EQ(dev.mailbox_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(dev.mailbox_factor(4), 4.0);
  EXPECT_DOUBLE_EQ(dev.mailbox_factor(0), 1.0);

  dev.cost.eib_contention_per_spe = 0.25;
  EXPECT_DOUBLE_EQ(dev.eib_factor(5), 2.0);
}

// --- round trip -------------------------------------------------------------

TEST(DeviceModel, ToStringFromStringRoundTripsBitwise) {
  for (const DeviceModel& preset : device_presets()) {
    const DeviceModel back = DeviceModel::from_string(preset.to_string());
    EXPECT_TRUE(back == preset) << preset.name;
    // Idempotent serialization too (doubles print at full precision).
    EXPECT_EQ(back.to_string(), preset.to_string()) << preset.name;
  }
}

TEST(DeviceModel, RoundTripSurvivesAwkwardCostValues) {
  DeviceModel dev;
  dev.name = "awkward";
  dev.cost.dma_bytes_per_cycle = 0.1;             // not exactly representable
  dev.cost.eib_contention_per_spe = 1.0 / 3.0;    // repeating binary fraction
  dev.cost.ppe_smt_factor = 1.0000000000000002;   // 1 + 1 ulp
  const DeviceModel back = DeviceModel::from_string(dev.to_string());
  EXPECT_TRUE(back == dev);
}

TEST(DeviceModel, OmittedKeysKeepCell2007Defaults) {
  const DeviceModel m =
      DeviceModel::from_string("{\"name\": \"minimal\", \"spe_count\": 4}");
  EXPECT_EQ(m.name, "minimal");
  EXPECT_EQ(m.spe_count, 4);
  EXPECT_EQ(m.local_store_bytes, 256u * 1024u);  // untouched default
  EXPECT_EQ(m.cost.clock_hz, DeviceModel{}.cost.clock_hz);
}

// --- malformed-config table -------------------------------------------------

struct BadConfig {
  const char* label;
  const char* text;
};

class DeviceModelRejects : public ::testing::TestWithParam<BadConfig> {};

TEST_P(DeviceModelRejects, WithConfigError) {
  EXPECT_THROW(DeviceModel::from_string(GetParam().text), ConfigError)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    MalformedTable, DeviceModelRejects,
    ::testing::Values(
        BadConfig{"not_json", "spe_count: 8"},
        BadConfig{"truncated", "{\"name\": \"x\", \"spe_count\": "},
        BadConfig{"not_an_object", "[1, 2, 3]"},
        BadConfig{"missing_name", "{\"spe_count\": 8}"},
        BadConfig{"empty_name", "{\"name\": \"\"}"},
        BadConfig{"name_with_space", "{\"name\": \"two words\"}"},
        BadConfig{"name_with_at", "{\"name\": \"cell@home\"}"},
        BadConfig{"unknown_key", "{\"name\": \"x\", \"spe_cuont\": 8}"},
        BadConfig{"duplicate_key",
                  "{\"name\": \"x\", \"spe_count\": 4, \"spe_count\": 8}"},
        BadConfig{"wrong_type", "{\"name\": \"x\", \"spe_count\": \"eight\"}"},
        BadConfig{"fractional_int", "{\"name\": \"x\", \"spe_count\": 2.5}"},
        BadConfig{"zero_spes", "{\"name\": \"x\", \"spe_count\": 0}"},
        BadConfig{"too_many_spes", "{\"name\": \"x\", \"spe_count\": 65}"},
        BadConfig{"negative_depth",
                  "{\"name\": \"x\", \"mailbox_in_depth\": -1}"},
        BadConfig{"zero_mfc_queue",
                  "{\"name\": \"x\", \"mfc_queue_depth\": 0}"},
        BadConfig{"huge_mfc_queue",
                  "{\"name\": \"x\", \"mfc_queue_depth\": 4096}"},
        BadConfig{"code_exceeds_store",
                  "{\"name\": \"x\", \"local_store_bytes\": 65536, "
                  "\"offload_code_bytes\": 65536}"},
        BadConfig{"unaligned_dma_max",
                  "{\"name\": \"x\", \"dma_max_bytes\": 1000}"},
        BadConfig{"cost_not_object", "{\"name\": \"x\", \"cost\": 3}"},
        BadConfig{"cost_unknown_key",
                  "{\"name\": \"x\", \"cost\": {\"warp_speed\": 9}}"},
        BadConfig{"cost_negative",
                  "{\"name\": \"x\", \"cost\": {\"dma_startup_cycles\": -1}}"},
        BadConfig{"cost_zero_clock",
                  "{\"name\": \"x\", \"cost\": {\"clock_hz\": 0}}"},
        BadConfig{"cost_smt_below_one",
                  "{\"name\": \"x\", \"cost\": {\"ppe_smt_factor\": 0.5}}"}),
    [](const auto& inf) { return std::string(inf.param.label); });

// --- presets & registry -----------------------------------------------------

TEST(DeviceModel, PresetTableIsStableAndValid) {
  const auto& presets = device_presets();
  ASSERT_EQ(presets.size(), 3u);
  EXPECT_EQ(presets[0].name, "cell-2007");
  EXPECT_EQ(presets[1].name, "cell-16spe-512k");
  EXPECT_EQ(presets[2].name, "cell-fast-eib");

  // cell-2007 IS the default-constructed model — the compatibility anchor
  // that keeps every golden file valid.
  EXPECT_TRUE(presets[0] == DeviceModel{});

  EXPECT_EQ(presets[1].spe_count, 16);
  EXPECT_EQ(presets[1].local_store_bytes, 512u * 1024u);
  EXPECT_DOUBLE_EQ(presets[2].cost.eib_contention_per_spe, 0.0);
  EXPECT_DOUBLE_EQ(presets[2].eib_factor(8), 1.0);
}

TEST(DeviceModel, RegistryFindsPresetsAndRegisteredModels) {
  EXPECT_TRUE(find_device_model("cell-2007").has_value());
  EXPECT_FALSE(find_device_model("no-such-machine").has_value());
  EXPECT_THROW(require_device_model("no-such-machine"), ConfigError);

  DeviceModel mine;
  mine.name = "test-registry-model";
  mine.spe_count = 2;
  register_device_model(mine);
  const auto found = find_device_model("test-registry-model");
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(*found == mine);

  // Presets cannot be shadowed by a different model under the same name...
  DeviceModel impostor;
  impostor.name = "cell-2007";
  impostor.spe_count = 1;
  EXPECT_THROW(register_device_model(impostor), ConfigError);
  // ... but re-registering a preset verbatim is harmless (file-loaded
  // copies of shipped configs do exactly this).
  EXPECT_NO_THROW(register_device_model(DeviceModel{}));
}

TEST(DeviceModel, LoadFileParsesRegistersAndNamesThePathOnError) {
  const std::string path = ::testing::TempDir() + "rxc_dev_model_test.json";
  {
    DeviceModel dev;
    dev.name = "test-from-file";
    dev.spe_count = 6;
    std::ofstream out(path);
    out << dev.to_string();
  }
  const DeviceModel loaded = load_device_model_file(path);
  EXPECT_EQ(loaded.name, "test-from-file");
  EXPECT_EQ(loaded.spe_count, 6);
  EXPECT_TRUE(find_device_model("test-from-file").has_value());

  {
    std::ofstream out(path);
    out << "{\"name\": \"broken\", \"spe_count\": 0}";
  }
  try {
    load_device_model_file(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());

  EXPECT_THROW(load_device_model_file("/no/such/dir/dev.json"), ConfigError);
}
