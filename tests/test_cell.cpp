// Tests for src/cell: local store, MFC/DMA rules and timing, mailboxes,
// SPU clocks, and the resource timelines.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "cell/cost_params.h"
#include "cell/device_model.h"
#include "cell/local_store.h"
#include "cell/mailbox.h"
#include "cell/mfc.h"
#include "cell/spu.h"
#include "cell/fault.h"
#include "cell/invariants.h"
#include "cell/timeline.h"
#include "support/aligned.h"
#include "support/error.h"

using namespace rxc;
using namespace rxc::cell;

TEST(LocalStore, CapacityAndCodeReservation) {
  const DeviceModel dev;  // cell-2007 defaults
  LocalStore ls(dev.local_store_bytes, dev.offload_code_bytes);
  EXPECT_EQ(ls.capacity(), dev.local_store_bytes);
  EXPECT_EQ(ls.code_bytes(), dev.offload_code_bytes);
  // The paper: 117 KB code leaves 139 KB for data.
  EXPECT_EQ(ls.free_bytes(), 139 * 1024);
}

TEST(LocalStore, AllocAligns16) {
  LocalStore ls(256 * 1024, 1000);
  const LsAddr a = ls.alloc(10);
  const LsAddr b = ls.alloc(1);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_EQ(b - a, 16u);
}

TEST(LocalStore, OverflowThrowsHardwareError) {
  const DeviceModel dev;
  LocalStore ls(dev.local_store_bytes, dev.offload_code_bytes);
  (void)ls.alloc(100 * 1024);
  EXPECT_THROW(ls.alloc(100 * 1024), HardwareError);
  ls.reset();
  EXPECT_NO_THROW(ls.alloc(100 * 1024));
}

TEST(LocalStore, OutOfBoundsAccessThrows) {
  const DeviceModel dev;
  LocalStore ls(dev.local_store_bytes, 0);
  EXPECT_THROW(ls.data(dev.local_store_bytes - 8, 16), HardwareError);
}

TEST(LocalStore, CodeImageTooBigRejected) {
  const DeviceModel dev;
  EXPECT_THROW(LocalStore(dev.local_store_bytes, dev.local_store_bytes + 1),
               Error);
}

// --- MFC ---------------------------------------------------------------

class MfcTest : public ::testing::Test {
protected:
  DeviceModel dev;
  LocalStore ls{dev.local_store_bytes, 0};
  Mfc mfc{ls, dev};
  aligned_vector<double> host = aligned_vector<double>(1024);
};

TEST_F(MfcTest, GetMovesBytes) {
  std::iota(host.begin(), host.end(), 0.0);
  const LsAddr dst = ls.alloc(512);
  mfc.get(dst, host.data(), 512, 0, 0.0);
  EXPECT_EQ(std::memcmp(ls.data(dst, 512), host.data(), 512), 0);
}

TEST_F(MfcTest, PutMovesBytesBack) {
  const LsAddr src = ls.alloc(256);
  auto* p = ls.as<double>(src, 32);
  for (int i = 0; i < 32; ++i) p[i] = i * 1.5;
  aligned_vector<double> out(32);
  mfc.put(out.data(), src, 256, 1, 0.0);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(out[i], i * 1.5);
}

TEST_F(MfcTest, RejectsIllegalSizes) {
  const LsAddr dst = ls.alloc(1024);
  EXPECT_THROW(mfc.get(dst, host.data(), 0, 0, 0.0), HardwareError);
  EXPECT_THROW(mfc.get(dst, host.data(), 3, 0, 0.0), HardwareError);
  EXPECT_THROW(mfc.get(dst, host.data(), 24, 0, 0.0), HardwareError);
  EXPECT_THROW(mfc.get(dst, host.data(), dev.dma_max_bytes + 16, 0, 0.0),
               HardwareError);
  EXPECT_NO_THROW(mfc.get(dst, host.data(), 8, 0, 0.0));
  EXPECT_NO_THROW(mfc.get(dst, host.data(), 1024, 0, 0.0));
}

TEST_F(MfcTest, RejectsMisalignedAddresses) {
  const LsAddr dst = ls.alloc(64);
  // Misaligned effective address for a block transfer.
  const char* misaligned = reinterpret_cast<const char*>(host.data()) + 4;
  EXPECT_THROW(mfc.get(dst, misaligned, 32, 0, 0.0), HardwareError);
  // Misaligned local-store address.
  EXPECT_THROW(mfc.get(dst + 4, host.data(), 32, 0, 0.0), HardwareError);
}

TEST_F(MfcTest, TimingScalesWithSize) {
  const LsAddr dst = ls.alloc(16384);
  mfc.get(dst, host.data(), 1024, 0, 0.0);
  const VCycles t1 = mfc.completion(0);
  mfc.get(dst, host.data(), 8192, 1, 0.0);
  const VCycles t2 = mfc.completion(1);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, (8192.0 - 1024.0) / dev.cost.dma_bytes_per_cycle, 1e-9);
}

TEST_F(MfcTest, TagGroupsAccumulate) {
  const LsAddr dst = ls.alloc(4096);
  mfc.get(dst, host.data(), 1024, 0, 0.0);
  const VCycles after_one = mfc.completion(0);
  mfc.get(dst, host.data(), 1024, 0, 0.0);
  EXPECT_NEAR(mfc.completion(0), 2 * after_one, 1e-9);
  // Independent tag unaffected.
  EXPECT_EQ(mfc.completion(5), 0.0);
}

TEST_F(MfcTest, WaitReportsStall) {
  const LsAddr dst = ls.alloc(2048);
  mfc.get(dst, host.data(), 2048, 0, 0.0);
  const VCycles done = mfc.completion(0);
  EXPECT_DOUBLE_EQ(mfc.wait(0, 0.0), done);
  EXPECT_DOUBLE_EQ(mfc.wait(0, done + 100.0), 0.0);  // already complete
}

TEST_F(MfcTest, ContentionSlowsTransfers) {
  const LsAddr dst = ls.alloc(4096);
  mfc.get(dst, host.data(), 4096, 0, 0.0);
  const VCycles solo = mfc.completion(0);
  Mfc congested(ls, dev);
  congested.set_contention(2.0);
  congested.get(dst, host.data(), 4096, 0, 0.0);
  EXPECT_GT(congested.completion(0), solo);
  EXPECT_THROW(congested.set_contention(0.5), Error);
}

TEST_F(MfcTest, DmaListTransfersAll) {
  aligned_vector<double> src1(16), src2(16);
  std::iota(src1.begin(), src1.end(), 100.0);
  std::iota(src2.begin(), src2.end(), 200.0);
  const LsAddr dst = ls.alloc(512);
  const DmaListEntry list[] = {{src1.data(), 128}, {src2.data(), 128}};
  mfc.get_list(dst, list, 3, 0.0);
  EXPECT_EQ(std::memcmp(ls.data(dst, 128), src1.data(), 128), 0);
  EXPECT_EQ(std::memcmp(ls.data(dst + 128, 128), src2.data(), 128), 0);
  EXPECT_EQ(mfc.counters().list_transfers, 1u);
  EXPECT_EQ(mfc.counters().transfers, 2u);
}

TEST_F(MfcTest, DmaListSizeCapEnforced) {
  std::vector<DmaListEntry> list(dev.dma_list_max_entries + 1,
                                 {host.data(), 16});
  const LsAddr dst = ls.alloc(16);
  EXPECT_THROW(mfc.get_list(dst, list, 0, 0.0), HardwareError);
}

TEST_F(MfcTest, CountersTrackBytes) {
  const LsAddr dst = ls.alloc(1024);
  mfc.get(dst, host.data(), 1024, 0, 0.0);
  mfc.put(host.data(), dst, 512, 1, 0.0);
  EXPECT_EQ(mfc.counters().transfers, 2u);
  EXPECT_EQ(mfc.counters().bytes, 1536u);
}

// --- mailboxes -------------------------------------------------------------

TEST(Mailbox, FifoAndDepth) {
  const DeviceModel dev;
  Mailbox inbox(dev.mailbox_in_depth);
  for (int i = 0; i < 4; ++i) inbox.write(i);
  EXPECT_TRUE(inbox.full());
  EXPECT_THROW(inbox.write(99), HardwareError);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(inbox.read(), static_cast<unsigned>(i));
  EXPECT_TRUE(inbox.empty());
  EXPECT_THROW(inbox.read(), HardwareError);
}

TEST(Mailbox, OutboundDepthIsOne) {
  const DeviceModel dev;
  Mailbox outbox(dev.mailbox_out_depth);
  outbox.write(1);
  EXPECT_TRUE(outbox.full());
  EXPECT_THROW(outbox.write(2), HardwareError);
}

// --- SPU / machine -----------------------------------------------------------

TEST(Spu, ChargeAdvancesClockAndBusy) {
  const DeviceModel dev;
  Spu spu(0, dev);
  spu.charge(100.0);
  spu.charge(50.0);
  EXPECT_DOUBLE_EQ(spu.now(), 150.0);
  EXPECT_DOUBLE_EQ(spu.counters().busy_cycles, 150.0);
}

TEST(Spu, DmaStallSeparatesFromBusy) {
  const DeviceModel dev;
  Spu spu(0, dev);
  aligned_vector<double> host(256);
  const LsAddr dst = spu.ls().alloc(2048);
  spu.mfc().get(dst, host.data(), 2048, 0, spu.now());
  spu.wait_dma(0);
  EXPECT_GT(spu.now(), 0.0);
  EXPECT_DOUBLE_EQ(spu.counters().busy_cycles, 0.0);
  EXPECT_DOUBLE_EQ(spu.counters().dma_stall_cycles, spu.now());
}

TEST(Machine, HasEightSpes) {
  CellMachine machine;  // default DeviceModel: cell-2007
  EXPECT_EQ(machine.spe_count(), 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(machine.spe(i).id(), i);
}

TEST(Machine, GeometryFollowsTheDeviceModel) {
  DeviceModel dev;
  dev.name = "test-16spe";
  dev.spe_count = 16;
  dev.local_store_bytes = 512 * 1024;
  CellMachine machine(dev);
  EXPECT_EQ(machine.spe_count(), 16);
  EXPECT_EQ(machine.spe(15).ls().capacity(), 512u * 1024u);
  EXPECT_EQ(machine.device().name, "test-16spe");
}

// --- timelines ----------------------------------------------------------------

TEST(Timeline, SerializesSegments) {
  ResourceTimeline r;
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 5.0), 10.0);   // waits for the resource
  EXPECT_DOUBLE_EQ(r.acquire(100.0, 5.0), 100.0);  // waits for readiness
  EXPECT_DOUBLE_EQ(r.busy(), 20.0);
}

TEST(Timeline, AcquireEarliestPicksLeastLoaded) {
  std::vector<ResourceTimeline> pool(2);
  std::size_t which = 99;
  acquire_earliest(pool, 0.0, 10.0, &which);
  EXPECT_EQ(which, 0u);
  acquire_earliest(pool, 0.0, 4.0, &which);
  EXPECT_EQ(which, 1u);
  acquire_earliest(pool, 0.0, 1.0, &which);
  EXPECT_EQ(which, 1u);  // 4 < 10
}

// --- invariants & fault injection ---------------------------------------------

TEST(Invariants, FreshSpuIsCleanAndQuiescent) {
  const DeviceModel dev;
  Spu spu(0, dev);
  EXPECT_TRUE(check_invariants(spu).ok());
  EXPECT_TRUE(check_quiescent(spu).ok());
}

TEST(Invariants, QuiescenceCatchesUnwaitedDma) {
  const DeviceModel dev;
  Spu spu(0, dev);
  aligned_vector<double> host(256);
  const LsAddr dst = spu.ls().alloc(2048);
  spu.mfc().get(dst, host.data(), 2048, 5, spu.now());
  // The transfer is in flight (completion time ahead of the SPU clock):
  // legal hardware state, but not a clean hand-back point.
  EXPECT_TRUE(check_invariants(spu).ok());
  const InvariantReport rep = check_quiescent(spu);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("tag 5"), std::string::npos)
      << rep.to_string();
  spu.wait_dma(5);
  EXPECT_TRUE(check_quiescent(spu).ok());
}

TEST(Invariants, ReportNamesEverySpe) {
  CellMachine machine;
  machine.spe(1).inbox().write(7u);
  machine.spe(6).inbox().write(7u);
  const InvariantReport rep = check_quiescent(machine);
  EXPECT_EQ(rep.violations.size(), 2u) << rep.to_string();
  EXPECT_NE(rep.to_string().find("spe1"), std::string::npos);
  EXPECT_NE(rep.to_string().find("spe6"), std::string::npos);
}

// Parameterized over every preset device model: the fault layer probes the
// CONFIGURED limits (DMA size cap, list cap, mailbox depths), not baked-in
// constants, so each geometry must trap against its own numbers.
TEST(FaultInjection, EveryFaultClassTrapsCleanlyOnEveryPreset) {
  for (const DeviceModel& dev : device_presets()) {
    Spu spu(0, dev);
    for (Fault fault : kAllFaults) {
      const FaultOutcome outcome = inject_fault(spu, fault);
      EXPECT_TRUE(outcome.trapped)
          << dev.name << "/" << fault_name(fault) << ": " << outcome.error;
      EXPECT_TRUE(outcome.state_intact)
          << dev.name << "/" << fault_name(fault) << ": " << outcome.error;
    }
  }
}

TEST(FaultInjection, RepeatedInjectionIsIdempotent) {
  const DeviceModel dev;
  Spu spu(0, dev);
  for (int round = 0; round < 3; ++round)
    for (Fault fault : kAllFaults)
      EXPECT_TRUE(inject_fault(spu, fault).ok()) << fault_name(fault);
  EXPECT_TRUE(check_quiescent(spu).ok());
}
