// Tests for src/platform: host-processor models for the Figure 3
// comparison.

#include <gtest/gtest.h>

#include "platform/platform.h"

using namespace rxc;
using platform::PlatformParams;

namespace {
lh::KernelCounters sample_counters() {
  lh::KernelCounters c;
  c.newview_calls = 1000;
  c.newview_patterns = 252'000;
  c.evaluate_calls = 300;
  c.sumtable_calls = 50;
  c.nr_calls = 280;
  c.pmatrix_builds = 2300;
  c.exp_calls = 172'500;
  return c;
}
}  // namespace

TEST(Platform, ParamsSanity) {
  const auto p5 = platform::power5();
  const auto xe = platform::xeon();
  EXPECT_EQ(p5.contexts, 4);
  EXPECT_EQ(xe.contexts, 4);
  EXPECT_GT(p5.clock_hz, 1e9);
  EXPECT_GT(xe.smt_factor, p5.smt_factor);  // NetBurst HT is weaker
  EXPECT_GT(xe.dp_flop_cycles, p5.dp_flop_cycles);
}

TEST(Platform, TaskCyclesMonotoneInWork) {
  const auto p5 = platform::power5();
  lh::KernelCounters c = sample_counters();
  const double base = platform::task_cycles(p5, c, 252, 25);
  EXPECT_GT(base, 0.0);
  c.newview_patterns *= 2;
  EXPECT_GT(platform::task_cycles(p5, c, 252, 25), base);
}

TEST(Platform, XeonSlowerThanPower5PerTask) {
  const auto c = sample_counters();
  const double t5 = platform::task_cycles(platform::power5(), c, 252, 25) /
                    platform::power5().clock_hz;
  const double tx = platform::task_cycles(platform::xeon(), c, 252, 25) /
                    platform::xeon().clock_hz;
  EXPECT_GT(tx, t5 * 1.5);
}

TEST(Platform, MakespanSingleTaskUnpenalized) {
  PlatformParams p;
  p.contexts = 4;
  p.threads_per_core = 2;
  p.smt_factor = 1.5;
  const double m = platform::schedule_makespan(p, {10.0});
  EXPECT_DOUBLE_EQ(m, 10.0);  // alone on a core: no SMT penalty
}

TEST(Platform, MakespanBalancesContexts) {
  PlatformParams p;
  p.contexts = 4;
  p.threads_per_core = 2;
  p.smt_factor = 1.0;
  const std::vector<double> tasks(8, 5.0);
  EXPECT_DOUBLE_EQ(platform::schedule_makespan(p, tasks), 10.0);
}

TEST(Platform, SmtPenaltyAppliesWhenOversubscribed) {
  PlatformParams p;
  p.contexts = 4;
  p.threads_per_core = 2;
  p.smt_factor = 1.4;
  const std::vector<double> tasks(4, 5.0);
  // 4 tasks > 2 cores -> penalty on.
  EXPECT_DOUBLE_EQ(platform::schedule_makespan(p, tasks), 7.0);
}

TEST(Platform, UnevenTasksGreedyPlacement) {
  PlatformParams p;
  p.contexts = 2;
  p.threads_per_core = 1;
  p.smt_factor = 1.0;
  // Greedy list schedule: 8 -> ctx0, 6 -> ctx1, 5 -> ctx1 (6 < 8).
  EXPECT_DOUBLE_EQ(platform::schedule_makespan(p, {8.0, 6.0, 5.0}), 11.0);
}
