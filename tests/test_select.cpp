/// Backend auto-selection: the registry's choose_backend/choose_executor
/// must be a pure function of (shape, calibration table) — deterministic,
/// stable under entry reordering, round-trippable through the table's text
/// form, and total over degenerate shapes.  The numeric conformance of each
/// backend lives in tests/conformance/test_conformance_registry.cpp; this
/// suite covers the selection logic itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/spe_executor.h"
#include "likelihood/registry.h"
#include "support/error.h"

namespace rxc::lh {
namespace {

/// Referencing cell_executor_spec links core's SPE-factory registrar TU
/// into this binary (the documented idiom), so cell-sim registers exactly
/// as it does in the serving binary.
const ExecutorSpec g_force_cell_link =
    core::cell_executor_spec(core::Stage::kOffloadAll);

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const Backend& b : registered_backends()) names.push_back(b.name);
  return names;
}

CalibrationTable table_for(const WorkloadShape& shape,
                           std::vector<CalibrationEntry> entries) {
  CalibrationTable table;
  table.shape = shape;
  table.entries = std::move(entries);
  return table;
}

TEST(Registry, DeterministicOrderIncludesCellWhenCoreLinked) {
  // This binary links rxc_core, so the SPE factory is registered and the
  // full set must appear, in stable order.
  const std::vector<std::string> expected = {"host-scalar", "host-simd",
                                             "host-threaded", "cell-sim"};
  EXPECT_EQ(backend_names(), expected);
  EXPECT_EQ(backend_names(), expected) << "second call must agree";
}

TEST(Registry, FindBackendRoundTripsEveryName) {
  for (const Backend& b : registered_backends()) {
    const auto found = find_backend(b.name);
    ASSERT_TRUE(found.has_value()) << b.name;
    EXPECT_EQ(found->name, b.name);
    EXPECT_EQ(found->spec.kind(), b.spec.kind());
    EXPECT_EQ(found->tolerance.bitwise, b.tolerance.bitwise);
  }
  EXPECT_FALSE(find_backend("gpu-cuda").has_value());
  EXPECT_FALSE(find_backend("").has_value());
}

TEST(Registry, PoliciesAreInternallyConsistent) {
  for (const Backend& b : registered_backends()) {
    // A bitwise promise with a nonzero ULP budget is a contradiction the
    // conformance harness would silently ignore — reject it here.
    if (b.tolerance.bitwise) {
      EXPECT_EQ(b.tolerance.value_ulp, 0u) << b.name;
    } else {
      EXPECT_GT(b.tolerance.value_ulp, 0u) << b.name;
    }
    EXPECT_GE(b.tolerance.sum_rel, 0.0) << b.name;
  }
}

TEST(Select, PinnedTableSelectionIsDeterministic) {
  WorkloadShape shape;
  const CalibrationTable pinned =
      table_for(shape, {{"host-scalar", 9.0},
                        {"host-simd", 3.0},
                        {"host-threaded", 7.0},
                        {"cell-sim", 40.0}});
  for (int i = 0; i < 3; ++i) {
    const Backend winner = choose_backend(shape, pinned);
    EXPECT_EQ(winner.name, "host-simd");
    EXPECT_EQ(winner.spec.kind(), ExecutorKind::kHost);
    EXPECT_TRUE(winner.spec.host().kernels.simd);
  }
  EXPECT_NE(choose_executor(shape, pinned), nullptr);
}

TEST(Select, TieBreaksOnNameRegardlessOfEntryOrder) {
  WorkloadShape shape;
  const std::vector<CalibrationEntry> forward = {{"host-simd", 5.0},
                                                 {"host-scalar", 5.0}};
  std::vector<CalibrationEntry> reversed = forward;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(choose_backend(shape, table_for(shape, forward)).name,
            "host-scalar");
  EXPECT_EQ(choose_backend(shape, table_for(shape, reversed)).name,
            "host-scalar");
}

TEST(Select, UnregisteredEntriesAreSkippedNotChosen) {
  WorkloadShape shape;
  // A table measured on a machine with backends this binary lacks must fall
  // through to the best backend that IS constructible here.
  const CalibrationTable pinned = table_for(
      shape, {{"gpu-cuda", 0.01}, {"host-threaded", 6.0}, {"fpga", 0.02}});
  EXPECT_EQ(choose_backend(shape, pinned).name, "host-threaded");

  const CalibrationTable useless =
      table_for(shape, {{"gpu-cuda", 0.01}, {"fpga", 0.02}});
  EXPECT_THROW(choose_backend(shape, useless), ConfigError);
}

TEST(Select, ShapeMismatchAgainstPinnedTableThrows) {
  WorkloadShape measured;
  measured.patterns = 512;
  WorkloadShape job = measured;
  job.patterns = 513;
  const CalibrationTable pinned =
      table_for(measured, {{"host-scalar", 1.0}});
  EXPECT_NO_THROW(choose_backend(measured, pinned));
  EXPECT_THROW(choose_backend(job, pinned), ConfigError);
  job = measured;
  job.mode = RateMode::kGamma;
  EXPECT_THROW(choose_backend(job, pinned), ConfigError);
}

TEST(Select, CalibrationTableTextRoundTrips) {
  WorkloadShape shape;
  shape.taxa = 17;
  shape.patterns = 999;
  shape.ncat = 25;
  shape.mode = RateMode::kGamma;
  const CalibrationTable table = table_for(
      shape, {{"host-scalar", 12.25}, {"host-simd", 3.0000000000000004}});
  const CalibrationTable back = CalibrationTable::from_string(table.to_string());
  EXPECT_EQ(back.shape.taxa, shape.taxa);
  EXPECT_EQ(back.shape.patterns, shape.patterns);
  EXPECT_EQ(back.shape.ncat, shape.ncat);
  EXPECT_EQ(back.shape.mode, shape.mode);
  EXPECT_EQ(back.shape.states, shape.states);
  ASSERT_EQ(back.entries.size(), table.entries.size());
  for (std::size_t i = 0; i < table.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].backend, table.entries[i].backend);
    // precision-17 text round-trips doubles exactly, so the reloaded table
    // must select identically, not just approximately.
    EXPECT_EQ(back.entries[i].nanos_per_pattern,
              table.entries[i].nanos_per_pattern);
  }
  EXPECT_EQ(choose_backend(shape, back).name,
            choose_backend(shape, table).name);
}

TEST(Select, MalformedTablesThrowConfigError) {
  EXPECT_THROW(CalibrationTable::from_string(""), ConfigError);
  EXPECT_THROW(CalibrationTable::from_string("backend host-scalar 1.0\n"),
               ConfigError);  // no shape line
  EXPECT_THROW(CalibrationTable::from_string("bogus line\n"), ConfigError);
  EXPECT_THROW(CalibrationTable::from_string("shape taxa\n"), ConfigError);
  EXPECT_THROW(CalibrationTable::from_string("shape taxa=abc\n"), ConfigError);
  EXPECT_THROW(CalibrationTable::from_string("shape rate=4\n"), ConfigError);
  EXPECT_THROW(CalibrationTable::from_string(
                   "shape taxa=4 patterns=8 ncat=4 mode=lognormal states=4\n"),
               ConfigError);
  EXPECT_THROW(CalibrationTable::from_string(
                   "shape taxa=4 patterns=8 ncat=4 mode=cat states=4\n"
                   "backend host-scalar\n"),
               ConfigError);  // backend line missing the score
  // Shape line present but invalid as a workload.
  EXPECT_THROW(CalibrationTable::from_string(
                   "shape taxa=4 patterns=8 ncat=4 mode=cat states=20\n"),
               ConfigError);
}

TEST(Select, ShapeValidationRejectsEveryBadAxis) {
  const WorkloadShape good;
  EXPECT_NO_THROW(good.validate());
  WorkloadShape s = good;
  s.taxa = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = good;
  s.patterns = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = good;
  s.ncat = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = good;
  s.ncat = kMaxRateCategories + 1;
  EXPECT_THROW(s.validate(), ConfigError);
  s = good;
  s.states = 20;
  EXPECT_THROW(s.validate(), ConfigError);
}

/// Live calibration on degenerate shapes: 1 pattern (smaller than any SIMD
/// block, any thread chunk, any DMA strip), 1 taxon, and the ncat ceiling.
/// Must not crash, and must hand back a backend this binary can build.
TEST(Select, DegenerateShapeSweepPicksValidBackends) {
  std::set<std::string> valid;
  for (const std::string& name : backend_names()) valid.insert(name);

  std::vector<WorkloadShape> shapes;
  for (const RateMode mode : {RateMode::kCat, RateMode::kGamma}) {
    WorkloadShape s;
    s.mode = mode;
    s.taxa = 1;
    s.patterns = 1;
    s.ncat = 1;
    shapes.push_back(s);
    s.ncat = kMaxRateCategories;
    shapes.push_back(s);
    s.patterns = 3;  // forces a partial SIMD block
    shapes.push_back(s);
  }
  for (const WorkloadShape& shape : shapes) {
    SCOPED_TRACE(shape.describe());
    const CalibrationTable table = calibrate(shape);
    EXPECT_EQ(table.entries.size(), registered_backends().size());
    for (const CalibrationEntry& e : table.entries)
      EXPECT_GT(e.nanos_per_pattern, 0.0) << e.backend;
    const Backend winner = choose_backend(shape, table);
    EXPECT_TRUE(valid.count(winner.name)) << winner.name;
    EXPECT_NE(choose_executor(shape, table), nullptr);
  }
}

}  // namespace
}  // namespace rxc::lh
