/// Concurrency stress suite.  Functionally these tests assert little beyond
/// "the totals add up"; their real job is to drive every cross-thread code
/// path (metric registry creation, recorder push vs. reconfigure, thread
/// pool fan-out, detector event handlers) hard enough that the TSan build
/// (-DRXC_SANITIZE=thread) turns any missing synchronization into a failure.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/race_detector.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "support/thread_pool.h"

namespace rxc {
namespace {

/// Enables metrics for one test body and restores "off" on exit so the
/// suite leaves the process the way tier-1 expects it.
class ScopedObs {
 public:
  explicit ScopedObs(obs::Mode mode, std::size_t max_events = 1u << 20) {
    obs::Config cfg;
    cfg.mode = mode;
    cfg.max_events = max_events;
    obs::configure(cfg);
  }
  ~ScopedObs() { obs::configure(obs::Config{}); }
};

TEST(Concurrency, MetricRegistryLookupOrCreateIsThreadSafe) {
  ScopedObs on(obs::Mode::kSummary);
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        // Everyone races to create/lookup the same small name set.
        const std::string name =
            "test.concurrency.c" + std::to_string(i % kNames);
        obs::counter(name).add();
        obs::histogram("test.concurrency.h" + std::to_string(i % kNames))
            .observe(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (int n = 0; n < kNames; ++n)
    total += obs::counter("test.concurrency.c" + std::to_string(n)).value();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Concurrency, RecorderPushRacesReconfigureCleanly) {
  // The exact interleaving behind the fixed max_events race: writers push
  // spans while another thread repeatedly reconfigures (which rewrites the
  // Config and clears the buffer).  Under TSan this test is the assertion.
  ScopedObs on(obs::Mode::kJson, /*max_events=*/256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::record_span(obs::Timeline::kWall, "stress", "test", t, 0.0, 1.0);
        obs::mark("instant", "test");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    obs::Config cfg;
    cfg.mode = obs::Mode::kJson;
    cfg.max_events = (i % 2) ? 64 : 256;
    obs::configure(cfg);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_LE(obs::event_count(), 256u);  // bound honoured throughout
}

TEST(Concurrency, RecorderBoundIsExact) {
  ScopedObs on(obs::Mode::kJson, /*max_events=*/100);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 200; ++i)
        obs::record_span(obs::Timeline::kWall, "bounded", "test", t,
                         static_cast<double>(i), 1.0);
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(obs::event_count(), 100u);
  EXPECT_EQ(obs::counter("obs.dropped_events").value(), 700u);
}

TEST(Concurrency, ThreadPoolParallelForCompletesEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(kN, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 5) << "index " << i;
}

TEST(Concurrency, RaceDetectorHandlersAreThreadSafe) {
  // The detector is installed process-globally while executors may run on
  // several host threads; its handlers must tolerate concurrent delivery.
  analysis::RaceDetector det;
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&det, t] {
      for (int i = 0; i < kIters; ++i) {
        // Each thread plays one SPE with a disjoint EA range: a clean,
        // fully synchronized stream — zero findings expected.
        const std::uintptr_t ea = 0x100000u * (t + 1);
        det.on_dma_get(t, 0, ea, 0x1000, 256, 1.0 * i, 1.0 * i + 10);
        det.on_tag_wait(t, 0, 1.0 * i + 10);
        det.on_ls_read(t, 0x1000, 256, 1.0 * i + 10, 1.0 * i + 20);
        det.on_dma_put(t, 1, 0x2000, ea + 0x10000, 256, 1.0 * i + 20,
                       1.0 * i + 30);
        det.on_tag_wait(t, 1, 1.0 * i + 30);
      }
    });
  }
  for (auto& th : threads) th.join();
  const analysis::AnalysisReport report = det.report();
  EXPECT_TRUE(report.ok()) << report.to_string();
  const analysis::DetectorStats stats = det.stats();
  EXPECT_EQ(stats.dma_events,
            static_cast<std::uint64_t>(2 * kThreads) * kIters);
  EXPECT_EQ(stats.wait_events,
            static_cast<std::uint64_t>(2 * kThreads) * kIters);
}

}  // namespace
}  // namespace rxc
