// Tests for src/search: hill climbing, analysis tasks, reproducibility.

#include <gtest/gtest.h>

#include "search/analysis.h"
#include "search/search.h"
#include "seq/seqgen.h"
#include "tree/parsimony.h"

using namespace rxc;

namespace {

struct SearchFixture {
  seq::SimResult sim;
  seq::PatternAlignment pa;
  lh::EngineConfig ec;
  search::SearchOptions so;

  SearchFixture() : sim(make()), pa(seq::PatternAlignment::compress(sim.alignment)) {
    ec.mode = lh::RateMode::kCat;
    ec.categories = 8;
    so.max_rounds = 4;
  }
  static seq::SimResult make() {
    seq::SimOptions opt;
    opt.ntaxa = 14;
    opt.nsites = 500;
    opt.branch_scale = 0.08;
    opt.seed = 99;
    return seq::simulate_alignment(opt);
  }
};

}  // namespace

TEST(Search, ImprovesOverStartingTree) {
  SearchFixture f;
  lh::LikelihoodEngine engine(f.pa, f.ec);

  // Baseline: the starting tree's likelihood after branch optimization only.
  Rng rng(5);
  tree::Tree start = tree::stepwise_addition_tree(f.pa, rng, 0.05);
  engine.set_tree(&start);
  const double start_lnl = engine.optimize_all_branches(3);
  engine.set_tree(nullptr);

  lh::LikelihoodEngine engine2(f.pa, f.ec);
  const auto result = search::run_search(f.pa, engine2, f.so, 5);
  EXPECT_GE(result.log_likelihood, start_lnl - 1e-6);
  EXPECT_GT(result.candidate_scores, 0u);
  EXPECT_NO_THROW(result.tree.check_valid());
}

TEST(Search, RecoversTrueTopologySignal) {
  // On well-resolved simulated data, the inferred tree should be much
  // closer to the generating tree than a random one.
  seq::SimOptions opt;
  opt.ntaxa = 12;
  opt.nsites = 2000;
  opt.branch_scale = 0.1;
  opt.gamma_alpha = 0.0;  // homogeneous, strong signal
  opt.seed = 3;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);

  lh::EngineConfig ec;
  ec.mode = lh::RateMode::kCat;
  ec.categories = 4;
  search::SearchOptions so;
  so.max_rounds = 6;
  lh::LikelihoodEngine engine(pa, ec);
  const auto result = search::run_search(pa, engine, so, 11);

  const tree::Tree truth =
      tree::Tree::from_newick_string(sim.true_tree_newick, pa.names());
  const std::size_t rf_found = tree::Tree::rf_distance(result.tree, truth);
  Rng rng(1);
  const tree::Tree random = tree::Tree::random_topology(12, rng);
  const std::size_t rf_random = tree::Tree::rf_distance(random, truth);
  EXPECT_LE(rf_found, 4u);          // close to the truth
  EXPECT_LT(rf_found, rf_random);   // and much closer than chance
}

TEST(Search, DeterministicGivenSeed) {
  SearchFixture f;
  lh::LikelihoodEngine e1(f.pa, f.ec), e2(f.pa, f.ec);
  const auto r1 = search::run_search(f.pa, e1, f.so, 42);
  const auto r2 = search::run_search(f.pa, e2, f.so, 42);
  EXPECT_DOUBLE_EQ(r1.log_likelihood, r2.log_likelihood);
  EXPECT_EQ(tree::Tree::rf_distance(r1.tree, r2.tree), 0u);
}

TEST(Search, DistinctSeedsExploreDistinctStarts) {
  SearchFixture f;
  lh::LikelihoodEngine e1(f.pa, f.ec), e2(f.pa, f.ec);
  const auto r1 = search::run_search(f.pa, e1, f.so, 1);
  const auto r2 = search::run_search(f.pa, e2, f.so, 2);
  // Likelihoods may converge to the same optimum, but the searches must
  // have done different work (different starting trees).
  EXPECT_TRUE(r1.candidate_scores != r2.candidate_scores ||
              tree::Tree::rf_distance(r1.tree, r2.tree) > 0 ||
              r1.log_likelihood != r2.log_likelihood);
}

TEST(Analysis, TaskBundleLayout) {
  const auto tasks = search::make_analysis(3, 5);
  ASSERT_EQ(tasks.size(), 8u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(tasks[i].kind, search::TaskKind::kInference);
  for (int i = 3; i < 8; ++i)
    EXPECT_EQ(tasks[i].kind, search::TaskKind::kBootstrap);
  // Seeds all distinct.
  std::set<std::uint64_t> seeds;
  for (const auto& t : tasks) seeds.insert(t.seed);
  EXPECT_EQ(seeds.size(), tasks.size());
}

TEST(Analysis, RunTaskProducesCountersAndTree) {
  SearchFixture f;
  const auto result = search::run_task(f.pa, f.ec, f.so,
                                       {search::TaskKind::kInference, 7});
  EXPECT_LT(result.log_likelihood, 0.0);
  EXPECT_GT(result.counters.newview_calls, 0u);
  EXPECT_FALSE(result.newick.empty());
  // The newick must parse back to a tree over the same taxa.
  const auto tree =
      tree::Tree::from_newick_string(result.newick, f.pa.names());
  EXPECT_EQ(tree.tip_count(), f.pa.taxon_count());
}

TEST(Analysis, BootstrapDiffersFromInference) {
  SearchFixture f;
  const auto inf = search::run_task(f.pa, f.ec, f.so,
                                    {search::TaskKind::kInference, 7});
  const auto bs = search::run_task(f.pa, f.ec, f.so,
                                   {search::TaskKind::kBootstrap, 7});
  EXPECT_NE(inf.log_likelihood, bs.log_likelihood);
}

TEST(Analysis, BootstrapReproducible) {
  SearchFixture f;
  const auto a = search::run_task(f.pa, f.ec, f.so,
                                  {search::TaskKind::kBootstrap, 13});
  const auto b = search::run_task(f.pa, f.ec, f.so,
                                  {search::TaskKind::kBootstrap, 13});
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.newick, b.newick);
}

TEST(Analysis, BestInferenceSelectsMaxAmongInferences) {
  std::vector<search::AnalysisTask> tasks = search::make_analysis(2, 1);
  std::vector<search::TaskResult> results(3);
  results[0].log_likelihood = -100.0;
  results[1].log_likelihood = -50.0;
  results[2].log_likelihood = -1.0;  // bootstrap: must be ignored
  EXPECT_EQ(search::best_inference(results, tasks), 1u);
}

TEST(Analysis, BestInferenceRequiresAnInference) {
  const auto tasks = search::make_analysis(0, 2);
  std::vector<search::TaskResult> results(2);
  EXPECT_THROW(search::best_inference(results, tasks), Error);
}
