#pragma once
/// \file harness.h
/// Differential conformance harness: one Workload, two executors, documented
/// agreement bounds.
///
/// The kernel contract is stronger than "roughly equal": executors with the
/// same KernelConfig (exp variant, scaling conditional, SIMD width) must
/// produce BITWISE-identical per-pattern values — newview partials, scale
/// counts, per-site log-likelihoods, sumtable entries — because each pattern
/// is computed by the same code on the same inputs regardless of how the
/// pattern range was chunked across threads, strips, or SPEs.  Only the
/// reductions (evaluate's weighted lnl sum, Newton-Raphson's d1/d2 sums) may
/// differ, and only by summation reassociation.  Bounds encodes exactly
/// which relaxation a pair is entitled to, so a regression that introduces
/// an extra rounding (say, a double store through a float) fails loudly.
///
/// Every failure message leads with the workload seed and a repro hint, so a
/// property-test failure can be replayed as a single deterministic case.

#include <cstdint>
#include <memory>
#include <string>

#include "core/spe_executor.h"
#include "core/stage.h"
#include "likelihood/executor.h"
#include "likelihood/registry.h"
#include "workload.h"

namespace rxc::conformance {

/// Agreement entitlement for one executor pair.  A tolerance of 0 demands
/// bitwise equality.
struct Bounds {
  /// Human explanation, echoed in failure messages ("same config => bitwise",
  /// "SIMD reassociates the category sum", ...).
  std::string why;
  /// Per-pattern values: newview partials, site lnls, sumtable entries.
  double value_rel = 0.0;
  /// When nonzero, per-pattern values compare by ULP distance instead of
  /// value_rel: |ulp_distance(ref, dut)| <= value_ulp.  ULP bounds are
  /// magnitude-proportional, so they stay meaningful across the ~600
  /// orders of magnitude a rescaled partial can span — a fixed relative
  /// epsilon is either vacuous for tiny values or unreachable for huge
  /// ones.  0 keeps the value_rel (or bitwise) semantics.
  std::uint64_t value_ulp = 0;
  /// Reductions: evaluate lnl, NR lnl/d1/d2.
  double sum_rel = 0.0;
  /// Scale vectors and scale_events counters must match exactly (the
  /// workload generator guarantees a deterministic scaling decision).
  bool scale_exact = true;
};

/// The pair entitlement a backend's self-declared TolerancePolicy maps to:
/// bitwise policies demand exact per-pattern values; ULP policies compare
/// values by ULP distance.  Reductions always use the policy's sum_rel.
Bounds bounds_for(const std::string& why, const lh::TolerancePolicy& policy);

/// Directed distance in representable doubles between a and b (0 for
/// bitwise-equal values, including -0.0 vs 0.0).  Returns UINT64_MAX when
/// either is NaN or they differ in sign (a sign flip is never "close").
std::uint64_t ulp_distance(double a, double b);

struct CaseResult {
  bool ok = true;
  std::string detail;  ///< first mismatch, with seed + repro hint
};

/// |a - b| <= tol * (max(|a|,|b|) + 1); tol == 0 means exact equality.
bool close(double a, double b, double tol);

/// Runs the full kernel sequence (newview -> evaluate -> compound
/// {sumtable, NR at three branch lengths}) through `ref` and `dut` on the
/// same Workload and compares per the bounds.  The reference is split
/// because SpeExecutor routes non-offloaded kernels through its internal
/// PPE path (plain scalar/libm config) regardless of the stage toggles:
/// `ref_newview` must match the dut's newview config, `ref_rest` the dut's
/// evaluate/makenewz config.  For uniformly-configured duts pass the same
/// executor twice (or use the two-argument overload).
CaseResult run_case(lh::KernelExecutor& ref_newview,
                    lh::KernelExecutor& ref_rest, lh::KernelExecutor& dut,
                    const Workload& wl, const Bounds& bounds);
CaseResult run_case(lh::KernelExecutor& ref, lh::KernelExecutor& dut,
                    const Workload& wl, const Bounds& bounds);

/// Host KernelConfig matching what the SPE path computes under `toggles`
/// (for differential refs of offloaded kernels).
lh::KernelConfig mirror_config(const core::StageToggles& toggles);

/// Executor construction for the suite, routed through lh::make_executor —
/// the same path examples and benches use, so the factory itself is under
/// differential test alongside the kernels.
std::unique_ptr<lh::KernelExecutor> make_host(lh::KernelConfig config = {});
std::unique_ptr<lh::KernelExecutor> make_threaded(
    int threads, lh::KernelConfig config = {});
/// Simulated-Cell executor at a cumulative optimization stage.  The
/// returned executor owns its CellMachine; reach it via as_cell().
std::unique_ptr<lh::KernelExecutor> make_cell(core::Stage stage,
                                              int llp_ways = 1,
                                              std::size_t strip_bytes = 2048);
/// Downcast to the Cell backend for machine-level checks (invariants,
/// traces).  Throws rxc::Error if `exec` was not built by make_cell.
core::CellExecutor& as_cell(lh::KernelExecutor& exec);

/// Base seed for property runs: RXC_CONF_SEED env var if set (accepts
/// decimal or 0x hex), else a fixed default so CI is reproducible.
std::uint64_t base_seed();
/// True when RXC_CONF_SEED is set: tests then run ONLY that exact seed, the
/// replay path for a printed failure.
bool fixed_seed_requested();
/// Per-case seed: splitmix64 chain over (base, pair_salt, index) so executor
/// pairs see different-but-reproducible workload streams.
std::uint64_t case_seed(std::uint64_t pair_salt, std::uint64_t index);
/// "rerun: RXC_CONF_SEED=0x... ctest -R <test> ..." hint for failures.
std::string repro_hint(std::uint64_t seed, const char* test_filter);

}  // namespace rxc::conformance
