/// Device-geometry conformance: machine geometry is a PERFORMANCE model,
/// never a NUMERICS model.  The same seeded workloads must produce bitwise
/// identical kernel outputs, log-likelihoods and derivatives on every
/// device model — presets and deliberately extreme customs — because only
/// strip sizes (a per-spec knob, held fixed here) shape summation order.
/// This is the contract that makes rxc-sweep's "lnl_identical" flag and
/// heterogeneous serving pools (serve::DevicePool) safe: a job's numbers
/// cannot depend on which pooled geometry it happened to lease.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cell/device_model.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/executor.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

std::uint64_t cases() { return fixed_seed_requested() ? 1 : 60; }

std::uint64_t seed_for(std::uint64_t pair_salt, std::uint64_t i) {
  return fixed_seed_requested() ? base_seed() : case_seed(pair_salt, i);
}

std::unique_ptr<lh::KernelExecutor> make_cell_on(
    const cell::DeviceModel& device) {
  lh::CellOptions opts;
  opts.device = device;
  opts.stage = static_cast<int>(core::Stage::kOffloadAll);
  return lh::make_executor(lh::ExecutorSpec::cell_spec(std::move(opts)));
}

/// The sweep list: every preset plus two extreme customs that stress the
/// residency/geometry paths (a minimal machine that forces sumtable DMA
/// round trips, and an oversized one that keeps everything resident).
std::vector<cell::DeviceModel> sweep_models() {
  std::vector<cell::DeviceModel> models = cell::device_presets();

  cell::DeviceModel tiny;
  tiny.name = "conf-tiny";
  tiny.spe_count = 1;
  tiny.local_store_bytes = 224 * 1024;  // 107 KB of data room: enough for
                                        // every strip buffer, small enough
                                        // that big sumtables lose residency
  tiny.cost.dma_bytes_per_cycle = 0.5;  // slow EIB: timing-only knob
  models.push_back(tiny);

  cell::DeviceModel huge;
  huge.name = "conf-huge";
  huge.spe_count = 64;
  huge.local_store_bytes = 4 * 1024 * 1024;
  huge.cost.eib_contention_per_spe = 0.9;
  models.push_back(huge);

  return models;
}

TEST(ConformanceDevices, LnlBitwiseIdenticalAcrossGeometries) {
  const auto models = sweep_models();
  const auto ref = make_cell_on(models[0]);  // cell-2007
  for (std::size_t m = 1; m < models.size(); ++m) {
    const auto dut = make_cell_on(models[m]);
    const Bounds bounds{"device geometry must not touch numerics (" +
                            models[m].name + " vs cell-2007)",
                        0.0, 0, 0.0, true};
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed = seed_for(0xD0 + m, i);
      const Workload wl(WorkloadSpec::draw(seed));
      const CaseResult r = run_case(*ref, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(seed, "ConformanceDevices");
    }
  }
}

/// Host-vs-custom-device differential at offload-all: per-pattern values
/// stay bitwise against the mirrored host kernels whatever the geometry;
/// only the strip-chunked reductions (lnl, d1, d2) carry the usual
/// reassociation tolerance — the same entitlement the HostVsSpeAllStages
/// pair declares, because it comes from strips, not from the device.
TEST(ConformanceDevices, HostVsCustomDeviceValuesBitwise) {
  const auto ref = make_host(mirror_config(
      core::stage_toggles(core::Stage::kOffloadAll)));
  for (const cell::DeviceModel& model : sweep_models()) {
    const auto dut = make_cell_on(model);
    const Bounds bounds{"host mirror vs device '" + model.name + "'",
                        0.0, 0, 1e-9, true};
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed = seed_for(0xE0, i);
      const Workload wl(WorkloadSpec::draw(seed));
      const CaseResult r = run_case(*ref, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(seed, "ConformanceDevices");
    }
  }
}

}  // namespace
}  // namespace rxc::conformance
