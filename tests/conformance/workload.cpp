#include "workload.h"

#include <cmath>
#include <sstream>

namespace rxc::conformance {
namespace {

/// Log-uniform branch length over the legal range, with the endpoints
/// themselves drawn at elevated probability (1/8 each): the kMinBranch and
/// kMaxBranch clamps are where Newton-Raphson bugs historically hide.
double draw_branch(Rng& rng) {
  const std::uint64_t roll = rng.below(8);
  if (roll == 0) return lh::kMinBranch;
  if (roll == 1) return lh::kMaxBranch;
  return std::exp(
      rng.uniform(std::log(lh::kMinBranch), std::log(lh::kMaxBranch)));
}

}  // namespace

WorkloadSpec WorkloadSpec::draw(std::uint64_t seed) {
  Rng rng(seed);
  WorkloadSpec s;
  s.seed = seed;

  s.mode = rng.below(2) ? lh::RateMode::kGamma : lh::RateMode::kCat;
  // CAT runs anywhere up to the paper's 25 categories; GAMMA needs >= 2 for
  // the averaging to differ from CAT.  25 * 4 states * 8 B = 800 B/pattern
  // keeps even a 16-pattern strip under the 16 KB DMA ceiling.
  s.ncat = s.mode == lh::RateMode::kCat
               ? 1 + static_cast<int>(rng.below(25))
               : 2 + static_cast<int>(rng.below(24));

  // Pattern-count classes: tiny (sub-strip), exact strip multiples, and two
  // general ranges.  Most general draws are not multiples of the 16-pattern
  // strip, exercising the partial final chunk on the SPE path.
  switch (rng.below(4)) {
    case 0: s.np = 1 + rng.below(16); break;
    case 1: s.np = 16 * (1 + rng.below(8)); break;
    case 2: s.np = 1 + rng.below(300); break;
    default: s.np = 1 + rng.below(1200); break;
  }

  switch (rng.below(3)) {
    case 0: s.tip1 = true; s.tip2 = true; break;   // tip/tip
    case 1: s.tip1 = true; s.tip2 = false; break;  // tip/inner
    default: s.tip1 = false; s.tip2 = false; break;
  }

  // Scaling underflow needs tiny * tiny products, which requires both
  // newview children to be inner partials (a tip contributes O(1) terms).
  s.underflow = rng.below(4) == 0;
  if (s.underflow) s.tip1 = s.tip2 = false;

  s.brlen1 = draw_branch(rng);
  s.brlen2 = draw_branch(rng);
  s.brlen = draw_branch(rng);
  s.t = draw_branch(rng);
  return s;
}

std::string WorkloadSpec::describe() const {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed << std::dec
     << " mode=" << (mode == lh::RateMode::kCat ? "CAT" : "GAMMA")
     << " ncat=" << ncat << " np=" << np << " children="
     << (tip2 ? "tip/tip" : (tip1 ? "tip/inner" : "inner/inner"))
     << " underflow=" << (underflow ? 1 : 0) << " brlen1=" << brlen1
     << " brlen2=" << brlen2 << " brlen=" << brlen << " t=" << t;
  return os.str();
}

Workload::Workload(const WorkloadSpec& spec) : spec_(spec) {
  // Expansion randomness is salted off the spec seed so hand-written specs
  // (golden traces) get deterministic buffers too.
  std::uint64_t sm = spec_.seed ^ 0xda7a5a17ULL;
  Rng rng(splitmix64(sm));

  // Random GTR model with frequencies bounded away from zero, so the eigen
  // decomposition stays well-conditioned.
  std::array<double, 6> ex;
  for (double& r : ex) r = std::exp(rng.uniform(std::log(0.25), std::log(4.0)));
  std::array<double, 4> freqs;
  double total = 0.0;
  for (double& f : freqs) total += (f = rng.uniform(0.1, 1.0));
  for (double& f : freqs) f /= total;
  model_ = model::DnaModel::gtr(ex, freqs);
  es_ = model::decompose(model_);

  const int ncat = spec_.ncat;
  rates_.resize(static_cast<std::size_t>(ncat));
  for (double& r : rates_)
    r = std::exp(rng.uniform(std::log(0.05), std::log(4.0)));

  const std::size_t pnp = padded_np();
  const std::size_t values = pnp * stride();

  cat_.assign(pnp, 0);
  if (spec_.mode == lh::RateMode::kCat)
    for (std::size_t p = 0; p < spec_.np; ++p)
      cat_[p] = static_cast<int>(rng.below(static_cast<std::uint64_t>(ncat)));

  // Tips: any of the 15 IUPAC bitmask codes, including the full-ambiguity
  // gap (0b1111).  Padding patterns get 'A'; the kernels never read them,
  // but the MFC DMAs whole strips.
  tip1_.assign(pnp, seq::DnaCode{1});
  tip2_.assign(pnp, seq::DnaCode{1});
  for (std::size_t p = 0; p < spec_.np; ++p) {
    tip1_[p] = static_cast<seq::DnaCode>(1 + rng.below(15));
    tip2_[p] = static_cast<seq::DnaCode>(1 + rng.below(15));
  }

  // Underflow patterns carry ~1e-40 values in BOTH partials: products land
  // around 1e-80, robustly below the 2^-256 ~ 1.16e-77 threshold.  Normal
  // patterns stay in [0.05, 1): products >= 0.0025 never rescale.  The gap
  // between the populations keeps the scaling decision identical across
  // every executor and summation order.
  std::vector<bool> tiny(spec_.np, false);
  if (spec_.underflow) {
    bool any = false;
    for (std::size_t p = 0; p < spec_.np; ++p)
      any |= (tiny[p] = rng.below(2) == 0);
    if (!any) tiny[0] = true;  // underflow workloads promise >= 1 rescale
  }

  partial1_.assign(values, 1.0);
  partial2_.assign(values, 1.0);
  const std::size_t st = stride();
  for (std::size_t p = 0; p < spec_.np; ++p) {
    for (std::size_t k = 0; k < st; ++k) {
      const std::size_t i = p * st + k;
      partial1_[i] = tiny[p] ? rng.uniform(0.5e-40, 2e-40)
                             : rng.uniform(0.05, 1.0);
      partial2_[i] = tiny[p] ? rng.uniform(0.5e-40, 2e-40)
                             : rng.uniform(0.05, 1.0);
    }
  }

  // Inner children always carry a scale vector (prior rescale counts 0..2);
  // evaluate must fold these into the log-likelihood.
  scale1_.assign(pnp, 0);
  scale2_.assign(pnp, 0);
  for (std::size_t p = 0; p < spec_.np; ++p) {
    scale1_[p] = static_cast<std::int32_t>(rng.below(3));
    scale2_[p] = static_cast<std::int32_t>(rng.below(3));
  }

  weights_.assign(pnp, 0.0);
  for (std::size_t p = 0; p < spec_.np; ++p)
    weights_[p] = static_cast<double>(1 + rng.below(20));
}

std::size_t Workload::stride() const {
  return spec_.mode == lh::RateMode::kCat
             ? 4u
             : static_cast<std::size_t>(spec_.ncat) * 4u;
}

std::size_t Workload::padded_np() const { return round_up(spec_.np, 16); }

lh::TaskContext Workload::ctx() const {
  lh::TaskContext c;
  c.es = &es_;
  c.rates = rates_.data();
  c.ncat = spec_.ncat;
  c.cat = spec_.mode == lh::RateMode::kCat ? cat_.data() : nullptr;
  c.mode = spec_.mode;
  return c;
}

lh::NewviewTask Workload::newview_task(double* out,
                                       std::int32_t* scale_out) const {
  lh::NewviewTask t;
  t.ctx = ctx();
  t.brlen1 = spec_.brlen1;
  t.brlen2 = spec_.brlen2;
  t.np = spec_.np;
  if (spec_.tip1) {
    t.tip1.codes = tip1_.data();
  } else {
    t.partial1 = {partial1_.data(), scale1_.data()};
  }
  if (spec_.tip2) {
    t.tip2.codes = tip2_.data();
  } else {
    t.partial2 = {partial2_.data(), scale2_.data()};
  }
  t.out = out;
  t.scale_out = scale_out;
  return t;
}

lh::EvaluateTask Workload::evaluate_task(double* site_lnl_out) const {
  lh::EvaluateTask t;
  t.ctx = ctx();
  t.brlen = spec_.brlen;
  t.np = spec_.np;
  if (spec_.tip1) {
    t.tip1.codes = tip1_.data();
  } else {
    t.partial1 = {partial1_.data(), scale1_.data()};
  }
  t.partial2 = {partial2_.data(), scale2_.data()};
  t.weights = weights_.data();
  t.site_lnl_out = site_lnl_out;
  return t;
}

lh::SumtableTask Workload::sumtable_task(double* out) const {
  lh::SumtableTask t;
  t.ctx = ctx();
  t.np = spec_.np;
  if (spec_.tip1)
    t.tip1.codes = tip1_.data();
  else
    t.partial1.values = partial1_.data();
  t.partial2.values = partial2_.data();
  t.out = out;
  return t;
}

lh::NrTask Workload::nr_task(const double* sumtable, double t) const {
  lh::NrTask task;
  task.ctx = ctx();
  task.sumtable = sumtable;
  task.np = spec_.np;
  task.weights = weights_.data();
  task.t = t;
  return task;
}

lh::EdgeGradientTask Workload::edge_gradient_task(double t) const {
  lh::EdgeGradientTask task;
  task.ctx = ctx();
  task.np = spec_.np;
  if (spec_.tip1)
    task.tip1.codes = tip1_.data();
  else
    task.partial1.values = partial1_.data();
  task.partial2.values = partial2_.data();
  task.weights = weights_.data();
  task.t = t;
  return task;
}

}  // namespace rxc::conformance
