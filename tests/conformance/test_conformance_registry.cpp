/// Registry-driven conformance: every backend lh::registered_backends()
/// exposes runs >= 200 seeded workloads against a scalar-host reference
/// configured with the backend's own ref_kernels, asserted at exactly the
/// tolerance the backend declares — bitwise backends get no slack at all,
/// ULP backends get their declared per-pattern ULP budget (tier2).
///
/// This is the registry's half of the auto-selection bargain: whatever
/// choose_executor picks, its numbers were differentially validated against
/// the reference at a self-declared bound.  Failures print the seed;
/// replay with RXC_CONF_SEED as usual.

#include <gtest/gtest.h>

#include "core/stage.h"
#include "harness.h"
#include "likelihood/registry.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

std::uint64_t cases() { return fixed_seed_requested() ? 1 : 200; }

/// The registry (below core/ in the layering) hardcodes the kernel knobs it
/// claims the offload-all Cell stage uses; this is the cross-check that
/// keeps that claim honest when core::stage_toggles changes.
TEST(ConformanceRegistry, CellRefKernelsMirrorOffloadAllStage) {
  const auto cell = lh::find_backend("cell-sim");
  ASSERT_TRUE(cell.has_value()) << "rxc_core is linked; cell-sim must exist";
  const lh::KernelConfig mirrored =
      mirror_config(core::stage_toggles(core::Stage::kOffloadAll));
  EXPECT_EQ(cell->ref_kernels.exp_fn, mirrored.exp_fn);
  EXPECT_EQ(cell->ref_kernels.scaling, mirrored.scaling);
  EXPECT_EQ(cell->ref_kernels.simd, mirrored.simd);
  EXPECT_EQ(cell->spec.cell().stage,
            static_cast<int>(core::Stage::kOffloadAll));
}

TEST(ConformanceRegistry, EveryBackendMeetsItsDeclaredPolicy) {
  const std::vector<lh::Backend> backends = lh::registered_backends();
  ASSERT_FALSE(backends.empty());
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const lh::Backend& backend = backends[b];
    const auto ref = make_host(backend.ref_kernels);
    const auto dut = lh::make_executor(backend.spec);
    const Bounds bounds =
        bounds_for("registry backend " + backend.name, backend.tolerance);
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed = fixed_seed_requested()
                                     ? base_seed()
                                     : case_seed(0xF0 + b, i);
      const Workload wl(WorkloadSpec::draw(seed));
      const CaseResult r = run_case(*ref, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(
                               seed, "ConformanceRegistry") << "\nbackend="
                        << backend.name << " policy="
                        << backend.tolerance.describe();
    }
  }
}

/// The bitwise guarantee must not have been weakened by the ULP extension:
/// a backend whose policy says bitwise compares with zero tolerance, so a
/// single flipped mantissa bit in any per-pattern value fails.
TEST(ConformanceRegistry, BitwisePoliciesCompareExactly) {
  for (const lh::Backend& backend : lh::registered_backends()) {
    const Bounds bounds = bounds_for(backend.name, backend.tolerance);
    if (backend.tolerance.bitwise) {
      EXPECT_EQ(bounds.value_ulp, 0u) << backend.name;
      EXPECT_EQ(bounds.value_rel, 0.0) << backend.name;
    } else {
      EXPECT_GT(bounds.value_ulp, 0u) << backend.name;
    }
    EXPECT_TRUE(bounds.scale_exact) << backend.name;
  }
}

TEST(ConformanceRegistry, UlpDistanceSemantics) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(std::nextafter(1.0, 0.0), 0.0)),
            2u);
  EXPECT_EQ(ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  // Sign flips and NaNs are never close.
  EXPECT_EQ(ulp_distance(1e-300, -1e-300), UINT64_MAX);
  EXPECT_EQ(ulp_distance(std::nan(""), 1.0), UINT64_MAX);
}

}  // namespace
}  // namespace rxc::conformance
