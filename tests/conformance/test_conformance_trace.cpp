/// Golden virtual-cycle traces: four fixed workloads through every
/// optimization stage, with the full timing/DMA fingerprint pinned to a
/// checked-in golden file.  A cost-model or DMA-schedule regression — even
/// one that keeps the numerics bitwise — moves a fingerprint and fails.
///
/// Regenerating after an INTENTIONAL cost-model change:
///   RXC_UPDATE_GOLDEN=1 ctest --test-dir build -R GoldenStage
/// then review the golden diff like any other code change.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "cell/invariants.h"
#include "cell/spu.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/executor.h"
#include "workload.h"

#ifndef RXC_CONF_GOLDEN_FILE
#error "RXC_CONF_GOLDEN_FILE must point at the checked-in golden trace file"
#endif

namespace rxc::conformance {
namespace {

/// One (workload, stage) fingerprint.  Integer fields are scheduling facts
/// and must match exactly; cycle fields are FP accumulations compared at
/// 1e-9 relative (bitwise on one platform, tolerant of cross-platform
/// summation differences).
struct Fingerprint {
  std::string key;  // "<workload>/<stage>"
  std::uint64_t segments = 0;
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  std::uint64_t scale_events = 0;
  std::uint64_t exp_calls = 0;
  double ppe_cycles = 0.0;
  double spe_cycles = 0.0;
  double stall_cycles = 0.0;

  std::string serialize() const {
    std::ostringstream os;
    os.precision(17);
    os << key << " segs=" << segments << " xfers=" << transfers
       << " bytes=" << bytes << " scale=" << scale_events
       << " exp=" << exp_calls << " ppe=" << ppe_cycles
       << " spe=" << spe_cycles << " stall=" << stall_cycles;
    return os.str();
  }

  static bool parse(const std::string& line, Fingerprint& out) {
    std::istringstream is(line);
    std::string tok;
    if (!(is >> out.key)) return false;
    auto field = [&](const char* name, auto& dst) {
      std::string t;
      if (!(is >> t)) return false;
      const std::string prefix = std::string(name) + "=";
      if (t.rfind(prefix, 0) != 0) return false;
      std::istringstream vs(t.substr(prefix.size()));
      return static_cast<bool>(vs >> dst);
    };
    return field("segs", out.segments) && field("xfers", out.transfers) &&
           field("bytes", out.bytes) && field("scale", out.scale_events) &&
           field("exp", out.exp_calls) && field("ppe", out.ppe_cycles) &&
           field("spe", out.spe_cycles) && field("stall", out.stall_cycles);
  }
};

bool cycles_close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (std::max(std::abs(a), std::abs(b)) + 1.0);
}

/// The four pinned workloads: one per structural corner the cost model
/// treats differently.
struct NamedSpec {
  const char* name;
  WorkloadSpec spec;
};

std::vector<NamedSpec> golden_specs() {
  std::vector<NamedSpec> specs;
  {
    WorkloadSpec s;  // bread-and-butter CAT, tip/inner, strip-aligned
    s.seed = 0x601d01;
    s.mode = lh::RateMode::kCat;
    s.ncat = 4;
    s.np = 240;
    s.tip1 = true;
    s.brlen1 = 0.05;
    s.brlen2 = 0.3;
    s.brlen = 0.12;
    s.t = 0.12;
    specs.push_back({"cat-tip-inner-240", s});
  }
  {
    WorkloadSpec s;  // GAMMA with rescale traffic (scale DMA + conditionals)
    s.seed = 0x601d02;
    s.mode = lh::RateMode::kGamma;
    s.ncat = 4;
    s.np = 100;
    s.underflow = true;
    s.brlen1 = 0.8;
    s.brlen2 = 0.02;
    s.brlen = 0.5;
    s.t = 0.07;
    specs.push_back({"gamma-underflow-100", s});
  }
  {
    WorkloadSpec s;  // 25-category CAT, tip/tip, odd pattern count
    s.seed = 0x601d03;
    s.mode = lh::RateMode::kCat;
    s.ncat = 25;
    s.np = 777;
    s.tip1 = s.tip2 = true;
    s.brlen1 = 1.7;
    s.brlen2 = 0.004;
    s.brlen = 0.9;
    s.t = 0.4;
    specs.push_back({"cat25-tip-tip-777", s});
  }
  {
    WorkloadSpec s;  // tiny sub-strip GAMMA at the branch-length extremes
    s.seed = 0x601d04;
    s.mode = lh::RateMode::kGamma;
    s.ncat = 8;
    s.np = 33;
    s.tip1 = true;
    s.brlen1 = lh::kMinBranch;
    s.brlen2 = lh::kMaxBranch;
    s.brlen = lh::kMinBranch;
    s.t = lh::kMaxBranch;
    specs.push_back({"gamma-extremes-33", s});
  }
  return specs;
}

Fingerprint run_fingerprint(const NamedSpec& named, core::Stage stage) {
  const Workload wl(named.spec);
  const std::size_t values = wl.padded_np() * wl.stride();

  const auto holder = make_cell(stage);
  core::CellExecutor& exec = as_cell(*holder);
  cell::CellMachine& machine = exec.machine();
  exec.begin_task();

  aligned_vector<double> out(values, 0.0), sum(values, 0.0);
  aligned_vector<std::int32_t> scale(wl.padded_np(), 0);
  exec.newview(wl.newview_task(out.data(), scale.data()));
  (void)exec.evaluate(wl.evaluate_task(nullptr));
  exec.begin_compound();
  exec.sumtable(wl.sumtable_task(sum.data()));
  (void)exec.nr_derivatives(wl.nr_task(sum.data(), named.spec.t));
  (void)exec.nr_derivatives(wl.nr_task(
      sum.data(), std::min(lh::kMaxBranch, named.spec.t * 2.0)));
  exec.end_compound();

  const core::TaskTrace trace = exec.take_trace();
  EXPECT_TRUE(cell::check_quiescent(machine).ok())
      << named.name << "/" << core::stage_name(stage) << ":\n"
      << cell::check_quiescent(machine).to_string();

  Fingerprint fp;
  fp.key = std::string(named.name) + "/" + core::stage_name(stage);
  fp.segments = trace.segments.size();
  fp.scale_events = trace.counters.scale_events;
  fp.exp_calls = trace.counters.exp_calls;
  fp.ppe_cycles = trace.total_ppe();
  fp.spe_cycles = trace.total_spe();
  for (int i = 0; i < machine.spe_count(); ++i) {
    const cell::MfcCounters& mc = machine.spe(i).mfc().counters();
    fp.transfers += mc.transfers;
    fp.bytes += mc.bytes;
    fp.stall_cycles += machine.spe(i).counters().dma_stall_cycles;
  }
  return fp;
}

TEST(ConformanceTrace, GoldenStageCycles) {
  constexpr core::Stage kStages[] = {
      core::Stage::kPpeOnly,      core::Stage::kOffloadNewview,
      core::Stage::kFastExp,      core::Stage::kIntCond,
      core::Stage::kDoubleBuffer, core::Stage::kVectorize,
      core::Stage::kDirectComm,   core::Stage::kOffloadAll,
  };
  std::vector<Fingerprint> current;
  for (const NamedSpec& named : golden_specs())
    for (core::Stage stage : kStages)
      current.push_back(run_fingerprint(named, stage));

  const char* path = RXC_CONF_GOLDEN_FILE;
  if (std::getenv("RXC_UPDATE_GOLDEN")) {
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "# Golden virtual-cycle fingerprints: workload/stage, then exact\n"
          "# scheduling facts (segments, DMA transfers/bytes, scale events,\n"
          "# exp calls) and cycle totals (1e-9 relative).  Regenerate with\n"
          "# RXC_UPDATE_GOLDEN=1 after an intentional cost-model change.\n";
    for (const Fingerprint& fp : current) os << fp.serialize() << "\n";
    SUCCEED() << "golden file regenerated at " << path;
    return;
  }

  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path
                  << " — run with RXC_UPDATE_GOLDEN=1 to create it";
  std::vector<Fingerprint> golden;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    Fingerprint fp;
    ASSERT_TRUE(Fingerprint::parse(line, fp)) << "bad golden line: " << line;
    golden.push_back(fp);
  }
  ASSERT_EQ(golden.size(), current.size())
      << "golden file is stale (workload/stage grid changed); regenerate "
         "with RXC_UPDATE_GOLDEN=1";

  for (std::size_t i = 0; i < current.size(); ++i) {
    const Fingerprint& want = golden[i];
    const Fingerprint& got = current[i];
    ASSERT_EQ(want.key, got.key) << "golden ordering changed at entry " << i;
    EXPECT_EQ(want.segments, got.segments) << got.key;
    EXPECT_EQ(want.transfers, got.transfers) << got.key;
    EXPECT_EQ(want.bytes, got.bytes) << got.key;
    EXPECT_EQ(want.scale_events, got.scale_events) << got.key;
    EXPECT_EQ(want.exp_calls, got.exp_calls) << got.key;
    EXPECT_TRUE(cycles_close(want.ppe_cycles, got.ppe_cycles))
        << got.key << ": ppe " << want.ppe_cycles << " -> "
        << got.ppe_cycles;
    EXPECT_TRUE(cycles_close(want.spe_cycles, got.spe_cycles))
        << got.key << ": spe " << want.spe_cycles << " -> "
        << got.spe_cycles;
    EXPECT_TRUE(cycles_close(want.stall_cycles, got.stall_cycles))
        << got.key << ": stall " << want.stall_cycles << " -> "
        << got.stall_cycles;
  }
}

/// The stage progression itself is part of the contract the paper's tables
/// document: each optimization must not make the end-to-end virtual time
/// worse on the bread-and-butter workload.
TEST(ConformanceTrace, StagesMonotonicallyImprove) {
  const NamedSpec named = golden_specs().front();
  double prev = -1.0;
  core::Stage prev_stage = core::Stage::kPpeOnly;
  constexpr core::Stage kStages[] = {
      core::Stage::kPpeOnly,      core::Stage::kOffloadNewview,
      core::Stage::kFastExp,      core::Stage::kIntCond,
      core::Stage::kDoubleBuffer, core::Stage::kVectorize,
      core::Stage::kDirectComm,   core::Stage::kOffloadAll,
  };
  for (core::Stage stage : kStages) {
    const Fingerprint fp = run_fingerprint(named, stage);
    const double serial = fp.ppe_cycles + fp.spe_cycles;
    if (prev >= 0.0 && stage != core::Stage::kOffloadNewview) {
      // The naive first offload is ALLOWED to be slower than PPE-only (the
      // paper's Table 1 regression); every later stage must improve.
      EXPECT_LE(serial, prev * 1.0000001)
          << core::stage_name(stage) << " regressed vs "
          << core::stage_name(prev_stage);
    }
    prev = serial;
    prev_stage = stage;
  }
}

}  // namespace
}  // namespace rxc::conformance
