/// Fault injection against the simulated Cell: every architectural
/// violation (misaligned DMA, oversized transfer, local-store overflow,
/// mailbox depth abuse) must throw HardwareError BEFORE mutating any
/// simulator state, and the machine must stay fully usable afterwards.

#include <gtest/gtest.h>

#include "cell/fault.h"
#include "cell/invariants.h"
#include "cell/spu.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/executor.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

using cell::Fault;

// ---------------------------------------------------------------------
// Every fault class, against every SPE, on a fresh machine: trapped AND
// state-intact, byte for byte.

TEST(ConformanceFault, AllFaultsTrapWithoutCorruption) {
  cell::CellMachine machine;
  for (int s = 0; s < machine.spe_count(); ++s) {
    for (Fault fault : cell::kAllFaults) {
      const cell::FaultOutcome outcome =
          cell::inject_fault(machine.spe(s), fault);
      EXPECT_TRUE(outcome.trapped)
          << "spe" << s << " " << cell::fault_name(fault)
          << ": violation was NOT trapped: " << outcome.error;
      EXPECT_TRUE(outcome.state_intact)
          << "spe" << s << " " << cell::fault_name(fault) << ": "
          << outcome.error;
    }
    const cell::InvariantReport inv = cell::check_quiescent(machine.spe(s));
    EXPECT_TRUE(inv.ok()) << inv.to_string();
  }
}

// ---------------------------------------------------------------------
// Faults on a machine that has already done real work (non-zero clock,
// populated counters): the richer pre-state is exactly what a corrupting
// fault would smear.

TEST(ConformanceFault, FaultsOnBusyMachineLeaveWorkReproducible) {
  const WorkloadSpec spec = WorkloadSpec::draw(0xFA017);
  const Workload wl(spec);
  const std::size_t values = wl.padded_np() * wl.stride();

  const auto exec = make_cell(core::Stage::kOffloadAll, /*llp_ways=*/8);
  cell::CellMachine& machine = as_cell(*exec).machine();

  aligned_vector<double> out1(values, 0.0), out2(values, 0.0);
  aligned_vector<std::int32_t> sc1(wl.padded_np(), 0), sc2(wl.padded_np(), 0);
  exec->newview(wl.newview_task(out1.data(), sc1.data()));
  const double lnl1 = exec->evaluate(wl.evaluate_task(nullptr));

  for (int s = 0; s < machine.spe_count(); ++s)
    for (Fault fault : cell::kAllFaults) {
      const cell::FaultOutcome outcome =
          cell::inject_fault(machine.spe(s), fault);
      EXPECT_TRUE(outcome.ok())
          << "spe" << s << " " << cell::fault_name(fault) << ": "
          << outcome.error;
    }

  // The machine keeps computing, and computes the same bits.
  exec->newview(wl.newview_task(out2.data(), sc2.data()));
  const double lnl2 = exec->evaluate(wl.evaluate_task(nullptr));
  EXPECT_EQ(lnl1, lnl2);
  for (std::size_t k = 0; k < spec.np * wl.stride(); ++k)
    ASSERT_EQ(out1[k], out2[k]) << "out[" << k << "]";
  for (std::size_t p = 0; p < spec.np; ++p)
    ASSERT_EQ(sc1[p], sc2[p]) << "scale_out[" << p << "]";

  const cell::InvariantReport inv = cell::check_quiescent(machine);
  EXPECT_TRUE(inv.ok()) << inv.to_string();
}

// ---------------------------------------------------------------------
// End-to-end oversize: an executor configured with strip buffers beyond
// the 16 KB MFC ceiling must hit HardwareError inside the DMA layer — the
// simulator, not the caller, is the backstop.

TEST(ConformanceFault, OversizedStripRejectedByMfc) {
  WorkloadSpec spec;
  spec.seed = 0xB16;
  spec.mode = lh::RateMode::kGamma;
  spec.ncat = 25;  // 800 B/pattern
  spec.np = 100;
  spec.tip1 = spec.tip2 = false;
  const Workload wl(spec);
  const std::size_t values = wl.padded_np() * wl.stride();

  // 32 KB buffers give 32-pattern strips => 25.6 KB partial transfers:
  // beyond the MFC ceiling, but small enough that local store still fits
  // (so it is the DMA rule, not the allocator, that fires).
  const auto exec =
      make_cell(core::Stage::kOffloadAll, 1, /*strip_bytes=*/32 * 1024);

  aligned_vector<double> out(values, 0.0);
  aligned_vector<std::int32_t> scale(wl.padded_np(), 0);
  EXPECT_THROW(exec->newview(wl.newview_task(out.data(), scale.data())),
               HardwareError);
}

// ---------------------------------------------------------------------
// The same invariants that gate every conformance case must hold on a
// fresh machine and catch a hand-corrupted one.

TEST(ConformanceFault, InvariantCheckerBaselineAndSensitivity) {
  cell::CellMachine machine;
  EXPECT_TRUE(cell::check_invariants(machine).ok());
  EXPECT_TRUE(cell::check_quiescent(machine).ok());

  // A stuffed mailbox is legal hardware state but NOT quiescent.
  machine.spe(3).inbox().write(1u);
  EXPECT_TRUE(cell::check_invariants(machine).ok());
  const cell::InvariantReport rep = cell::check_quiescent(machine);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("spe3"), std::string::npos)
      << rep.to_string();
  (void)machine.spe(3).inbox().read();
  EXPECT_TRUE(cell::check_quiescent(machine).ok());
}

}  // namespace
}  // namespace rxc::conformance
