/// Scaling (underflow-rescue) conformance: the 2^-256 rescale machinery is
/// where a silent numerical bug would poison every downstream likelihood,
/// so its accounting is pinned from three directions — property tests on
/// the two conditional implementations, differential scale bookkeeping
/// across executors, and a metamorphic identity on evaluate.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cell/spu.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/executor.h"
#include "likelihood/scaling.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

std::uint64_t cases() { return fixed_seed_requested() ? 1 : 200; }

/// An underflow-mode spec: inner/inner children, a random subset of
/// patterns carrying ~1e-40 partials on both sides.
WorkloadSpec underflow_spec(std::uint64_t seed) {
  WorkloadSpec s = WorkloadSpec::draw(seed);
  s.underflow = true;
  s.tip1 = s.tip2 = false;
  return s;
}

// ---------------------------------------------------------------------
// Property: the float-branch and int-cast conditionals are the same
// predicate on every likelihood value, including the exact 2^-256
// boundary, its ulp neighbours, denormals and zero.

TEST(ConformanceScaling, ConditionalVariantsAgreeOnEdgeCases) {
  const double ml = lh::kMinLikelihood;
  const double below = std::nextafter(ml, 0.0);
  const double above = std::nextafter(ml, 1.0);
  const double edge_cases[] = {
      0.0,
      std::numeric_limits<double>::denorm_min(),
      1e-320,  // denormal
      below,
      ml,      // the boundary itself: NOT < ml, so no scaling
      above,
      1e-40,
      0.05,
      1.0,
      lh::kScaleFactor,
  };
  for (double a : edge_cases)
    for (double b : edge_cases)
      for (double c : edge_cases)
        for (double d : edge_cases) {
          const double v[4] = {a, b, c, d};
          EXPECT_EQ(lh::needs_scaling_fp(v, 4), lh::needs_scaling_int(v, 4))
              << "v = {" << a << ", " << b << ", " << c << ", " << d << "}";
        }
  // The boundary semantics themselves: strictly-below scales, at-or-above
  // does not.
  const double all_below[4] = {below, below, below, below};
  const double at_ml[4] = {below, below, below, ml};
  EXPECT_TRUE(lh::needs_scaling_fp(all_below, 4));
  EXPECT_TRUE(lh::needs_scaling_int(all_below, 4));
  EXPECT_FALSE(lh::needs_scaling_fp(at_ml, 4));
  EXPECT_FALSE(lh::needs_scaling_int(at_ml, 4));
}

TEST(ConformanceScaling, ConditionalVariantsAgreeOnRandomValues) {
  Rng rng(base_seed() ^ 0x5ca1e);
  for (int i = 0; i < 20000; ++i) {
    double v[4];
    for (double& x : v) {
      // Log-uniform magnitude across the full scaled range, crossing the
      // threshold often.
      const double mag = std::exp(rng.uniform(std::log(1e-120), 0.0));
      x = mag;
    }
    EXPECT_EQ(lh::needs_scaling_fp(v, 4), lh::needs_scaling_int(v, 4))
        << "case " << i;
  }
}

// ---------------------------------------------------------------------
// Differential: underflow workloads MUST produce rescale events, and every
// executor (host scalar, host int-cast, threaded, SPE at full optimization)
// must agree on the exact per-pattern scale vector and event count.

TEST(ConformanceScaling, UnderflowForcesIdenticalRescuesEverywhere) {
  for (std::uint64_t i = 0; i < cases(); ++i) {
    const std::uint64_t seed =
        fixed_seed_requested() ? base_seed() : case_seed(0x5C, i);
    const Workload wl(underflow_spec(seed));
    const std::size_t np = wl.spec().np;
    const std::size_t values = wl.padded_np() * wl.stride();

    const auto host = make_host();  // float-branch conditional
    aligned_vector<double> host_out(values, 0.0);
    aligned_vector<std::int32_t> host_scale(wl.padded_np(), 0);
    host->newview(wl.newview_task(host_out.data(), host_scale.data()));
    const std::uint64_t host_events = host->counters().scale_events;
    ASSERT_GT(host_events, 0u)
        << "underflow workload produced no rescales: "
        << wl.spec().describe() << "\n"
        << repro_hint(seed, "UnderflowForcesIdenticalRescuesEverywhere");

    // Rescue accounting: scale_out = inherited counts + 1 per event, and
    // the events counter equals the sum of increments.
    std::uint64_t increments = 0;
    for (std::size_t p = 0; p < np; ++p) {
      const std::int32_t inherited = wl.scale1()[p] + wl.scale2()[p];
      ASSERT_GE(host_scale[p], inherited) << "pattern " << p;
      ASSERT_LE(host_scale[p], inherited + 1) << "pattern " << p;
      increments += static_cast<std::uint64_t>(host_scale[p] - inherited);
    }
    ASSERT_EQ(increments, host_events) << wl.spec().describe();

    // Every other executor: identical scale vector, identical count,
    // rescaled values within its pair bound (int-cast & SPE are bitwise).
    lh::KernelConfig cast_cfg;
    cast_cfg.scaling = lh::ScalingCheck::kIntCast;
    const auto cast_host = make_host(cast_cfg);
    const auto threaded = make_threaded(4);
    const auto spe = make_cell(core::Stage::kOffloadAll);

    struct Dut {
      const char* name;
      lh::KernelExecutor* exec;
    } duts[] = {{"host-int-cast", cast_host.get()},
                {"threaded", threaded.get()},
                {"spe-offload-all", spe.get()}};
    for (const Dut& dut : duts) {
      aligned_vector<double> out(values, 0.0);
      aligned_vector<std::int32_t> scale(wl.padded_np(), 0);
      dut.exec->newview(wl.newview_task(out.data(), scale.data()));
      EXPECT_EQ(dut.exec->counters().scale_events, host_events)
          << dut.name << ": " << wl.spec().describe() << "\n"
          << repro_hint(seed, "UnderflowForcesIdenticalRescuesEverywhere");
      for (std::size_t p = 0; p < np; ++p)
        ASSERT_EQ(host_scale[p], scale[p])
            << dut.name << " scale_out[" << p
            << "]: " << wl.spec().describe();
    }
  }
}

// ---------------------------------------------------------------------
// Metamorphic: a rescaled partial times 2^256 with scale+1 is the SAME
// likelihood.  evaluate() must return lnl' = lnl - sum(weights) * ln(2^256)
// when every pattern's inherited scale count is incremented by one — to
// within one ulp-scale rounding of the subtraction, across executors.

TEST(ConformanceScaling, EvaluateScaleCorrectionIdentity) {
  for (std::uint64_t i = 0; i < (fixed_seed_requested() ? 1 : 50); ++i) {
    const std::uint64_t seed =
        fixed_seed_requested() ? base_seed() : case_seed(0x5D, i);
    WorkloadSpec spec = WorkloadSpec::draw(seed);
    const Workload wl(spec);
    const std::size_t np = spec.np;

    const auto host = make_host();
    const double lnl = host->evaluate(wl.evaluate_task(nullptr));

    aligned_vector<std::int32_t> bumped(wl.scale2(),
                                        wl.scale2() + wl.padded_np());
    for (std::size_t p = 0; p < np; ++p) ++bumped[p];
    lh::EvaluateTask task = wl.evaluate_task(nullptr);
    task.partial2.scale = bumped.data();
    const double shifted = host->evaluate(task);

    double weight_sum = 0.0;
    for (std::size_t p = 0; p < np; ++p) weight_sum += wl.weights()[p];
    const double expected = lnl - weight_sum * lh::kLogScaleFactor;
    EXPECT_NEAR(shifted, expected, 1e-9 * (std::abs(expected) + 1.0))
        << wl.spec().describe() << "\n"
        << repro_hint(seed, "EvaluateScaleCorrectionIdentity");
  }
}

// ---------------------------------------------------------------------
// Chained depth: feeding a rescaled newview output back in as a child must
// keep absolute likelihoods consistent — the scale counts exactly offset
// the 2^256 multipliers.  (Guards against double-counting inherited
// scales, the classic RAxML porting bug.)

TEST(ConformanceScaling, InheritedScaleCountsOffsetMultipliers) {
  for (std::uint64_t i = 0; i < (fixed_seed_requested() ? 1 : 50); ++i) {
    const std::uint64_t seed =
        fixed_seed_requested() ? base_seed() : case_seed(0x5E, i);
    const Workload wl(underflow_spec(seed));
    const std::size_t values = wl.padded_np() * wl.stride();

    const auto host = make_host();
    aligned_vector<double> out(values, 0.0);
    aligned_vector<std::int32_t> scale(wl.padded_np(), 0);
    host->newview(wl.newview_task(out.data(), scale.data()));

    // Evaluate against the freshly computed (possibly rescaled) partial.
    lh::EvaluateTask task = wl.evaluate_task(nullptr);
    task.partial2 = {out.data(), scale.data()};
    const double lnl_scaled = host->evaluate(task);

    // Reference: the same partial with rescues manually undone (divide by
    // 2^256 per event) and the inherited counts restored.
    aligned_vector<double> undone(out);
    aligned_vector<std::int32_t> base_scale(wl.padded_np(), 0);
    const std::size_t st = wl.stride();
    for (std::size_t p = 0; p < wl.spec().np; ++p) {
      const std::int32_t inherited = wl.scale1()[p] + wl.scale2()[p];
      std::int32_t events = scale[p] - inherited;
      base_scale[p] = inherited;
      for (; events > 0; --events)
        for (std::size_t k = 0; k < st; ++k)
          undone[p * st + k] /= lh::kScaleFactor;
    }
    task.partial2 = {undone.data(), base_scale.data()};
    const double lnl_undone = host->evaluate(task);

    EXPECT_NEAR(lnl_scaled, lnl_undone,
                1e-9 * (std::abs(lnl_undone) + 1.0))
        << wl.spec().describe() << "\n"
        << repro_hint(seed, "InheritedScaleCountsOffsetMultipliers");
  }
}

}  // namespace
}  // namespace rxc::conformance
