/// Differential conformance for the fused all-branch gradient kernel
/// (tier2, >= 200 seeded cases).  The load-bearing guarantees:
///
///  * the one-sweep gradient is BITWISE-identical to the two-step makenewz
///    derivative path (make_sumtable + nr_derivatives) on every registered
///    backend at that backend's own KernelConfig — the fused kernel builds
///    each sumtable slot in registers with exactly the two-step operation
///    order, and the derivative accumulation is scalar on both paths;
///  * the analytic derivatives agree with central finite differences of the
///    log-likelihood in t;
///  * the engine-level sweep (LikelihoodEngine::branch_gradient) matches
///    per-edge prepare_branch + branch_derivatives bitwise on host
///    backends, and is invariant across simulated-Cell device presets
///    (geometry is a performance model, never a numerics model);
///  * gradient-driven smoothing (smooth_branches) lands where the per-edge
///    makenewz sweep lands.
///
/// Failures print the workload seed plus the RXC_CONF_SEED replay hint.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cell/device_model.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/engine.h"
#include "likelihood/registry.h"
#include "seq/seqgen.h"
#include "support/rng.h"
#include "tree/tree.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

std::uint64_t seed_for(std::uint64_t pair_salt, std::uint64_t i) {
  return fixed_seed_requested() ? base_seed() : case_seed(pair_salt, i);
}

/// Two-step makenewz derivative reference on the same executor: sumtable
/// into scratch, then nr_derivatives at `t`.
lh::NrResult two_step(lh::KernelExecutor& exec, const Workload& wl,
                      aligned_vector<double>& sumtab, double t) {
  exec.sumtable(wl.sumtable_task(sumtab.data()));
  return exec.nr_derivatives(wl.nr_task(sumtab.data(), t));
}

/// Three branch lengths per workload: the drawn t plus a shorter and a
/// longer probe, all inside the legal range.
std::vector<double> probe_lengths(const Workload& wl) {
  const double t = std::clamp(wl.spec().t, lh::kMinBranch, lh::kMaxBranch);
  return {t, std::clamp(t * 0.25, lh::kMinBranch, lh::kMaxBranch),
          std::clamp(t * 3.0, lh::kMinBranch, lh::kMaxBranch)};
}

// ---------------------------------------------------------------------
// One sweep == N makenewz loops, bitwise, on every registered backend.
// 20 workloads x 3 branch lengths x >= 4 backends >= 240 cases.

TEST(ConformanceGradient, MatchesMakenewzBitwiseOnEveryBackend) {
  const std::uint64_t cases = fixed_seed_requested() ? 1 : 20;
  const auto backends = lh::registered_backends();
  ASSERT_GE(backends.size(), 3u);
  std::uint64_t salt = 0x6D;
  for (const lh::Backend& backend : backends) {
    ++salt;
    for (std::uint64_t i = 0; i < cases; ++i) {
      const std::uint64_t seed = seed_for(salt, i);
      const Workload wl(WorkloadSpec::draw(seed));
      const auto exec = lh::make_executor(backend.spec);
      aligned_vector<double> sumtab(wl.padded_np() * wl.stride());
      for (const double t : probe_lengths(wl)) {
        const lh::NrResult ref = two_step(*exec, wl, sumtab, t);
        const lh::NrResult fused =
            exec->edge_gradient(wl.edge_gradient_task(t));
        // Same executor, same config: the fused kernel must not change a
        // single bit of lnl/d1/d2 relative to the loop it replaces.
        EXPECT_EQ(ref.lnl, fused.lnl)
            << backend.name << " t=" << t << " [" << wl.spec().describe()
            << "]\n"
            << repro_hint(seed, "MatchesMakenewzBitwiseOnEveryBackend");
        EXPECT_EQ(ref.d1, fused.d1)
            << backend.name << " t=" << t << "\n"
            << repro_hint(seed, "MatchesMakenewzBitwiseOnEveryBackend");
        EXPECT_EQ(ref.d2, fused.d2)
            << backend.name << " t=" << t << "\n"
            << repro_hint(seed, "MatchesMakenewzBitwiseOnEveryBackend");
      }
    }
  }
}

// ---------------------------------------------------------------------
// The analytic derivatives are derivatives: central finite differences of
// the (two-step) log-likelihood in t reproduce d1 and d2.

TEST(ConformanceGradient, MatchesCentralFiniteDifferences) {
  const std::uint64_t cases = fixed_seed_requested() ? 1 : 60;
  const auto exec = make_host();
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = seed_for(0xFD, i);
    const Workload wl(WorkloadSpec::draw(seed));
    aligned_vector<double> sumtab(wl.padded_np() * wl.stride());
    // Probe an interior point: at the kMinBranch/kMaxBranch clamps the
    // one-sided geometry breaks the central-difference stencil.
    const double t = std::clamp(wl.spec().t, 0.01, 1.0);
    const double h = 1e-6 * (1.0 + t);

    const lh::NrResult g = exec->edge_gradient(wl.edge_gradient_task(t));
    exec->sumtable(wl.sumtable_task(sumtab.data()));
    const double lo =
        exec->nr_derivatives(wl.nr_task(sumtab.data(), t - h)).lnl;
    const double mid =
        exec->nr_derivatives(wl.nr_task(sumtab.data(), t)).lnl;
    const double hi =
        exec->nr_derivatives(wl.nr_task(sumtab.data(), t + h)).lnl;

    const double d1_fd = (hi - lo) / (2.0 * h);
    const double d2_fd = (hi - 2.0 * mid + lo) / (h * h);
    // Error model: cancellation roundoff eps*|lnl|/h (resp. /h^2) plus a
    // truncation slack proportional to the derivative magnitude.
    const double eps = 2.2e-16;
    const double m = std::fabs(mid) + 1.0;
    const double tol_d1 = 1e-5 * (std::fabs(g.d1) + 1.0) + 8.0 * eps * m / h;
    const double tol_d2 =
        1e-4 * (std::fabs(g.d2) + 1.0) + 16.0 * eps * m / (h * h);
    EXPECT_NEAR(g.d1, d1_fd, tol_d1)
        << "[" << wl.spec().describe() << "] t=" << t << "\n"
        << repro_hint(seed, "MatchesCentralFiniteDifferences");
    EXPECT_NEAR(g.d2, d2_fd, tol_d2)
        << "[" << wl.spec().describe() << "] t=" << t << "\n"
        << repro_hint(seed, "MatchesCentralFiniteDifferences");
    // The kernel's lnl is the same reduction the two-step path computes.
    EXPECT_EQ(g.lnl, mid)
        << repro_hint(seed, "MatchesCentralFiniteDifferences");
  }
}

// ---------------------------------------------------------------------
// Engine level: the whole-tree sweep vs the per-edge makenewz path.

struct EngineFixture {
  seq::PatternAlignment pa;
  tree::Tree tree;

  explicit EngineFixture(std::uint64_t seed, std::size_t ntaxa = 12)
      : pa(make_pa(seed, ntaxa)), tree(make_tree(pa, seed)) {}

  static seq::PatternAlignment make_pa(std::uint64_t seed, std::size_t n) {
    seq::SimOptions opts;
    opts.ntaxa = n;
    opts.nsites = 400;
    opts.seed = seed;
    return seq::PatternAlignment::compress(
        seq::simulate_alignment(opts).alignment);
  }
  static tree::Tree make_tree(const seq::PatternAlignment& pa,
                              std::uint64_t seed) {
    Rng rng(seed ^ 0x7ee);
    return tree::Tree::random_topology(pa.taxon_count(), rng, 0.08);
  }
};

lh::EngineConfig engine_config(bool cat, lh::KernelConfig kernels = {}) {
  lh::EngineConfig cfg;
  cfg.mode = cat ? lh::RateMode::kCat : lh::RateMode::kGamma;
  cfg.categories = 4;
  cfg.alpha = 0.7;
  cfg.kernels = kernels;
  return cfg;
}

TEST(ConformanceGradient, EngineSweepMatchesPerEdgeDerivatives) {
  for (const bool cat : {true, false}) {
    for (const bool simd : {false, true}) {
      const std::uint64_t seed = seed_for(0xE0 + (cat ? 1 : 0), simd);
      EngineFixture f(seed);
      lh::KernelConfig kernels;
      kernels.simd = simd;
      lh::LikelihoodEngine eng(f.pa, engine_config(cat, kernels));
      eng.set_tree(&f.tree);

      const std::vector<lh::EdgeGradient> grads = eng.branch_gradient();
      ASSERT_EQ(grads.size(), f.tree.tip_count() * 2 - 3);
      for (const lh::EdgeGradient& g : grads) {
        // Same partials, same config: the per-edge two-step path must
        // reproduce the sweep's derivatives bitwise.
        eng.prepare_branch(g.edge);
        const lh::NrResult ref = eng.branch_derivatives(g.t);
        EXPECT_EQ(ref.d1, g.d1)
            << "edge " << g.edge << " cat=" << cat << " simd=" << simd;
        EXPECT_EQ(ref.d2, g.d2)
            << "edge " << g.edge << " cat=" << cat << " simd=" << simd;
        // The sweep's lnl is absolute (scale corrections folded): it must
        // agree with evaluate() at the same edge up to reduction
        // reassociation between the two kernels.
        const double ev = eng.evaluate(g.edge);
        EXPECT_NEAR(g.lnl, ev, 1e-9 * (std::fabs(ev) + 1.0))
            << "edge " << g.edge << " cat=" << cat << " simd=" << simd;
      }
    }
  }
}

TEST(ConformanceGradient, EngineSweepIdenticalAcrossDevicePresets) {
  // Geometry must never leak into numerics: the engine-level sweep on
  // every shipped device preset is bitwise identical, and equals a host
  // engine running the offload-all mirror config.
  for (const bool cat : {true, false}) {
    const std::uint64_t seed = seed_for(0xDE, cat ? 1 : 0);
    EngineFixture f(seed);

    const core::StageToggles toggles =
        core::stage_toggles(core::Stage::kOffloadAll);
    lh::LikelihoodEngine host_eng(f.pa,
                                  engine_config(cat, mirror_config(toggles)));
    host_eng.set_tree(&f.tree);
    const std::vector<lh::EdgeGradient> ref = host_eng.branch_gradient();

    for (const cell::DeviceModel& device : cell::device_presets()) {
      lh::CellOptions opts;
      opts.device = device;
      opts.stage = static_cast<int>(core::Stage::kOffloadAll);
      const auto exec =
          lh::make_executor(lh::ExecutorSpec::cell_spec(std::move(opts)));
      lh::LikelihoodEngine eng(f.pa, engine_config(cat));
      eng.set_tree(&f.tree);
      eng.set_executor(exec.get());

      const std::vector<lh::EdgeGradient> got = eng.branch_gradient();
      ASSERT_EQ(got.size(), ref.size()) << device.name;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(got[i].edge, ref[i].edge) << device.name;
        EXPECT_EQ(got[i].lnl, ref[i].lnl)
            << device.name << " edge " << ref[i].edge << " cat=" << cat;
        EXPECT_EQ(got[i].d1, ref[i].d1)
            << device.name << " edge " << ref[i].edge << " cat=" << cat;
        EXPECT_EQ(got[i].d2, ref[i].d2)
            << device.name << " edge " << ref[i].edge << " cat=" << cat;
      }
    }
  }
}

TEST(ConformanceGradient, SmoothBranchesLandsWhereMakenewzLands) {
  for (const bool cat : {true, false}) {
    const std::uint64_t seed = seed_for(0x5B, cat ? 1 : 0);
    EngineFixture f(seed);
    tree::Tree tree_b = f.tree;  // independent copy for the reference

    lh::LikelihoodEngine a(f.pa, engine_config(cat));
    a.set_tree(&f.tree);
    const double before = a.log_likelihood();
    // A smoothing pass is one O(N) sweep + one Newton step per edge, so it
    // takes more (much cheaper) passes than full per-edge NR sweeps to
    // converge from a random tree.
    const double smoothed = a.smooth_branches(100, 1e-4);

    lh::LikelihoodEngine b(f.pa, engine_config(cat));
    b.set_tree(&tree_b);
    const double per_edge = b.optimize_all_branches(100, 1e-4);

    EXPECT_GE(smoothed, before - 1e-6) << "cat=" << cat;
    // The sweep may out-optimize per-edge coordinate descent (which can
    // stall in narrow valleys where single-edge gains vanish), but it must
    // never land meaningfully below it.
    EXPECT_GE(smoothed, per_edge - 0.1) << "cat=" << cat
                                        << " before=" << before;
  }
}

}  // namespace
}  // namespace rxc::conformance
