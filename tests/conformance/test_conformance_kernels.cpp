/// Differential conformance: every executor pair, >= 200 seeded random
/// workloads each (tier2).  Failures print the workload spec (seed first)
/// plus a one-line repro: set RXC_CONF_SEED to the printed seed and rerun
/// the same test to replay exactly that case.

#include <gtest/gtest.h>

#include <memory>

#include "cell/invariants.h"
#include "cell/spu.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "harness.h"
#include "likelihood/executor.h"
#include "workload.h"

namespace rxc::conformance {
namespace {

/// Case count per pair; a fixed-seed replay runs exactly that one seed.
std::uint64_t cases() { return fixed_seed_requested() ? 1 : 200; }

std::uint64_t seed_for(std::uint64_t pair_salt, std::uint64_t i) {
  return fixed_seed_requested() ? base_seed() : case_seed(pair_salt, i);
}

/// Reductions reassociate across chunks/strips/SPEs; the error scales with
/// the magnitude of the accumulated sum, not the (possibly cancelled)
/// result, so the bound is generous relative to term count but still ~1e5x
/// below any real kernel bug.
constexpr double kSumRel = 1e-9;

// ---------------------------------------------------------------------
// Pair A: host scalar vs host SIMD (same exp, same conditional).

TEST(ConformanceKernels, HostScalarVsHostSimd) {
  lh::KernelConfig scalar_cfg;
  lh::KernelConfig simd_cfg;
  simd_cfg.simd = true;
  const auto ref = make_host(scalar_cfg);
  const auto dut = make_host(simd_cfg);
  Bounds bounds{"SIMD reorders within-pattern arithmetic", 1e-11, 0, kSumRel,
                true};
  for (std::uint64_t i = 0; i < cases(); ++i) {
    const std::uint64_t seed = seed_for(0xA, i);
    const Workload wl(WorkloadSpec::draw(seed));
    const CaseResult r = run_case(*ref, *dut, wl, bounds);
    ASSERT_TRUE(r.ok) << r.detail << "\n"
                      << repro_hint(seed, "HostScalarVsHostSimd");
  }
}

// ---------------------------------------------------------------------
// Pair B: host scalar vs ThreadedExecutor at several widths.  Same config
// => per-pattern values bitwise; only the fixed-order chunk reductions may
// differ.

TEST(ConformanceKernels, HostVsThreaded) {
  const auto ref = make_host();
  for (int threads : {2, 5, 8}) {
    const auto dut = make_threaded(threads);
    Bounds bounds{"same config; chunked reductions reassociate (threads=" +
                      std::to_string(threads) + ")",
                  0.0, 0, kSumRel, true};
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed =
          seed_for(0xB0 + static_cast<std::uint64_t>(threads), i);
      const Workload wl(WorkloadSpec::draw(seed));
      const CaseResult r = run_case(*ref, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(seed, "HostVsThreaded");
    }
  }
}

// ---------------------------------------------------------------------
// Pair C: host vs SpeExecutor at every optimization stage.  The reference
// is split: offloaded kernels mirror the stage's SPE config, non-offloaded
// kernels run the plain PPE config (libm, branchy conditional, scalar)
// whatever the stage says.  Values are bitwise either way — strip-mining
// through DMA must not change a single bit.

TEST(ConformanceKernels, HostVsSpeAllStages) {
  constexpr core::Stage kStages[] = {
      core::Stage::kPpeOnly,      core::Stage::kOffloadNewview,
      core::Stage::kFastExp,      core::Stage::kIntCond,
      core::Stage::kDoubleBuffer, core::Stage::kVectorize,
      core::Stage::kDirectComm,   core::Stage::kOffloadAll,
  };
  for (core::Stage stage : kStages) {
    const core::StageToggles toggles = core::stage_toggles(stage);
    const auto ref_newview = make_host(toggles.offload_newview
                                           ? mirror_config(toggles)
                                           : lh::KernelConfig{});
    const auto ref_rest = make_host(toggles.offload_rest
                                        ? mirror_config(toggles)
                                        : lh::KernelConfig{});
    Bounds bounds{"strip-mined DMA must be bitwise (stage " +
                      core::stage_name(stage) + ")",
                  0.0, 0, kSumRel, true};
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed =
          seed_for(0xC0 + static_cast<std::uint64_t>(stage), i);
      const Workload wl(WorkloadSpec::draw(seed));
      const auto dut = make_cell(stage);
      const CaseResult r = run_case(*ref_newview, *ref_rest, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(seed, "HostVsSpeAllStages");
      const cell::InvariantReport inv =
          cell::check_quiescent(as_cell(*dut).machine());
      ASSERT_TRUE(inv.ok())
          << "[" << wl.spec().describe() << "] stage "
          << core::stage_name(stage)
          << " left the machine non-quiescent:\n"
          << inv.to_string() << "\n"
          << repro_hint(seed, "HostVsSpeAllStages");
    }
  }
}

// ---------------------------------------------------------------------
// Pair D: SPE loop-level parallelization.  llp_ways splits each strip loop
// across SPEs; values stay bitwise vs the 1-way offload, reductions combine
// per-SPE sums in fixed order.

TEST(ConformanceKernels, SpeLlpVsSingleSpe) {
  for (int ways : {2, 4, 8}) {
    Bounds bounds{"LLP split must be bitwise per pattern (ways=" +
                      std::to_string(ways) + ")",
                  0.0, 0, kSumRel, true};
    for (std::uint64_t i = 0; i < cases(); ++i) {
      const std::uint64_t seed =
          seed_for(0xD0 + static_cast<std::uint64_t>(ways), i);
      const Workload wl(WorkloadSpec::draw(seed));
      const auto ref = make_cell(core::Stage::kOffloadAll, 1);
      const auto dut = make_cell(core::Stage::kOffloadAll, ways);
      const CaseResult r = run_case(*ref, *dut, wl, bounds);
      ASSERT_TRUE(r.ok) << r.detail << "\n"
                        << repro_hint(seed, "SpeLlpVsSingleSpe");
      const cell::InvariantReport inv =
          cell::check_quiescent(as_cell(*dut).machine());
      ASSERT_TRUE(inv.ok()) << inv.to_string() << "\n"
                            << repro_hint(seed, "SpeLlpVsSingleSpe");
    }
  }
}

// ---------------------------------------------------------------------
// Pair E: libm vs SDK exp, host-side.  The only cross-config pair: the SDK
// exp is a different numerical method, so per-value agreement is bounded by
// its documented error (< 3e-14 on the kernel domain), amplified through
// the likelihood recursion.

TEST(ConformanceKernels, ExpLibmVsExpSdk) {
  const auto ref = make_host();  // libm
  lh::KernelConfig sdk_cfg;
  sdk_cfg.exp_fn = &lh::exp_sdk;
  const auto dut = make_host(sdk_cfg);
  Bounds bounds{"SDK exp differs by its documented error bound", 1e-9, 0,
                1e-7, true};
  for (std::uint64_t i = 0; i < cases(); ++i) {
    const std::uint64_t seed = seed_for(0xE, i);
    const Workload wl(WorkloadSpec::draw(seed));
    const CaseResult r = run_case(*ref, *dut, wl, bounds);
    ASSERT_TRUE(r.ok) << r.detail << "\n"
                      << repro_hint(seed, "ExpLibmVsExpSdk");
  }
}

// ---------------------------------------------------------------------
// Satellite: makenewz derivatives through SpeExecutor with llp_ways > 1.
// The offloaded makenewz runs its inner kernels 1-way (the sumtable is a
// per-branch sequential dependence), so llp_ways MUST NOT change a bit of
// the derivatives.  Covers both the local-store-resident sumtable path
// (np=200) and the strip-repaging path (np=8000, 256 KB sumtable).

TEST(ConformanceKernels, MakenewzLlpAgreement) {
  for (std::size_t np : {std::size_t{200}, std::size_t{8000}}) {
    WorkloadSpec spec;
    spec.seed = 0x3A11D00DULL + np;
    spec.mode = lh::RateMode::kCat;
    spec.ncat = 4;
    spec.np = np;
    spec.tip1 = spec.tip2 = false;
    spec.brlen1 = 0.07;
    spec.brlen2 = 0.9;
    spec.brlen = 0.2;
    spec.t = 0.15;
    const Workload wl(spec);
    const std::size_t values = wl.padded_np() * wl.stride();

    const auto base = make_cell(core::Stage::kOffloadAll);
    aligned_vector<double> base_sum(values, 0.0);
    base->begin_compound();
    base->sumtable(wl.sumtable_task(base_sum.data()));
    lh::NrResult base_nr = base->nr_derivatives(wl.nr_task(base_sum.data(),
                                                           spec.t));
    base->end_compound();

    for (int ways : {2, 4, 8}) {
      const auto llp = make_cell(core::Stage::kOffloadAll, ways);
      aligned_vector<double> llp_sum(values, 0.0);
      llp->begin_compound();
      llp->sumtable(wl.sumtable_task(llp_sum.data()));
      const lh::NrResult llp_nr =
          llp->nr_derivatives(wl.nr_task(llp_sum.data(), spec.t));
      llp->end_compound();

      for (std::size_t k = 0; k < spec.np * wl.stride(); ++k)
        ASSERT_EQ(base_sum[k], llp_sum[k])
            << "sumtable[" << k << "] diverged at llp_ways=" << ways
            << " np=" << np;
      EXPECT_EQ(base_nr.lnl, llp_nr.lnl) << "ways=" << ways << " np=" << np;
      EXPECT_EQ(base_nr.d1, llp_nr.d1) << "ways=" << ways << " np=" << np;
      EXPECT_EQ(base_nr.d2, llp_nr.d2) << "ways=" << ways << " np=" << np;

      const cell::InvariantReport inv =
          cell::check_quiescent(as_cell(*llp).machine());
      EXPECT_TRUE(inv.ok()) << inv.to_string();
    }
  }
}

}  // namespace
}  // namespace rxc::conformance
