#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "likelihood/fast_exp.h"
#include "support/error.h"

namespace rxc::conformance {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Prefix every mismatch with the spec (seed included) and the pair's
/// entitlement, so the console line alone is enough to replay the case.
std::string preamble(const Workload& wl, const Bounds& bounds) {
  return "[" + wl.spec().describe() + "] (" + bounds.why + ") ";
}

/// Per-pattern value comparison: ULP-bounded when the pair declares
/// value_ulp, else relative/bitwise via close().
bool compare_array(const char* what, const double* ref, const double* dut,
                   std::size_t n, const Workload& wl, const Bounds& bounds,
                   CaseResult& result) {
  for (std::size_t i = 0; i < n; ++i) {
    if (bounds.value_ulp > 0) {
      const std::uint64_t dist = ulp_distance(ref[i], dut[i]);
      if (dist <= bounds.value_ulp) continue;
      result.ok = false;
      result.detail = preamble(wl, bounds) + what + "[" + std::to_string(i) +
                      "]: ref=" + fmt(ref[i]) + " dut=" + fmt(dut[i]) +
                      " ulp=" +
                      (dist == UINT64_MAX ? std::string("inf")
                                          : std::to_string(dist)) +
                      " (bound " + std::to_string(bounds.value_ulp) + ")";
      return false;
    }
    if (close(ref[i], dut[i], bounds.value_rel)) continue;
    result.ok = false;
    result.detail = preamble(wl, bounds) + what + "[" + std::to_string(i) +
                    "]: ref=" + fmt(ref[i]) + " dut=" + fmt(dut[i]) +
                    " tol=" + fmt(bounds.value_rel);
    return false;
  }
  return true;
}

/// `scale` widens the relative bound for reductions whose terms cancel:
/// d1/d2 can sit near zero while their partial sums are as large as the
/// log-likelihood, so reassociation error is relative to |lnl|, not to the
/// cancelled result.  Exact comparisons (tol == 0) ignore it.
bool compare_scalar(const char* what, double ref, double dut, double tol,
                    double scale, const Workload& wl, const Bounds& bounds,
                    CaseResult& result) {
  const bool pass =
      tol == 0.0
          ? ref == dut
          : std::abs(ref - dut) <=
                tol * (std::max(std::abs(ref), std::abs(dut)) + scale);
  if (pass) return true;
  result.ok = false;
  result.detail = preamble(wl, bounds) + what + ": ref=" + fmt(ref) +
                  " dut=" + fmt(dut) + " tol=" + fmt(tol);
  return false;
}

double clamp_branch(double t) {
  return std::min(lh::kMaxBranch, std::max(lh::kMinBranch, t));
}

}  // namespace

bool close(double a, double b, double tol) {
  if (tol == 0.0) return a == b;
  return std::abs(a - b) <= tol * (std::max(std::abs(a), std::abs(b)) + 1.0);
}

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return UINT64_MAX;
  if (a == b) return 0;  // covers -0.0 vs 0.0
  if (std::signbit(a) != std::signbit(b)) return UINT64_MAX;
  std::uint64_t ia, ib;
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  // Same sign: the IEEE-754 total order over the magnitude bits is
  // monotone, so the bit-pattern gap counts representable values between.
  return ia > ib ? ia - ib : ib - ia;
}

Bounds bounds_for(const std::string& why, const lh::TolerancePolicy& policy) {
  Bounds bounds;
  bounds.why = why + " [" + policy.describe() + "]";
  bounds.value_rel = 0.0;  // bitwise unless the policy grants ULP slack
  bounds.value_ulp = policy.bitwise ? 0 : policy.value_ulp;
  bounds.sum_rel = policy.sum_rel;
  bounds.scale_exact = true;
  return bounds;
}

CaseResult run_case(lh::KernelExecutor& ref_newview,
                    lh::KernelExecutor& ref_rest, lh::KernelExecutor& dut,
                    const Workload& wl, const Bounds& bounds) {
  CaseResult result;
  const std::size_t np = wl.spec().np;
  const std::size_t values = wl.padded_np() * wl.stride();

  ref_newview.reset_counters();
  ref_rest.reset_counters();
  dut.reset_counters();

  // --- newview ----------------------------------------------------------
  aligned_vector<double> ref_out(values, 0.0), dut_out(values, 0.0);
  aligned_vector<std::int32_t> ref_scale(wl.padded_np(), 0);
  aligned_vector<std::int32_t> dut_scale(wl.padded_np(), 0);
  ref_newview.newview(wl.newview_task(ref_out.data(), ref_scale.data()));
  dut.newview(wl.newview_task(dut_out.data(), dut_scale.data()));

  if (!compare_array("newview.out", ref_out.data(), dut_out.data(),
                     np * wl.stride(), wl, bounds, result))
    return result;
  if (bounds.scale_exact) {
    for (std::size_t i = 0; i < np; ++i) {
      if (ref_scale[i] == dut_scale[i]) continue;
      result.ok = false;
      result.detail = preamble(wl, bounds) + "newview.scale_out[" +
                      std::to_string(i) +
                      "]: ref=" + std::to_string(ref_scale[i]) +
                      " dut=" + std::to_string(dut_scale[i]);
      return result;
    }
    if (ref_newview.counters().scale_events !=
        dut.counters().scale_events) {
      result.ok = false;
      result.detail =
          preamble(wl, bounds) + "scale_events: ref=" +
          std::to_string(ref_newview.counters().scale_events) +
          " dut=" + std::to_string(dut.counters().scale_events);
      return result;
    }
  }

  // --- evaluate ---------------------------------------------------------
  aligned_vector<double> ref_site(wl.padded_np(), 0.0);
  aligned_vector<double> dut_site(wl.padded_np(), 0.0);
  const double ref_lnl = ref_rest.evaluate(wl.evaluate_task(ref_site.data()));
  const double dut_lnl = dut.evaluate(wl.evaluate_task(dut_site.data()));
  if (!compare_scalar("evaluate.lnl", ref_lnl, dut_lnl, bounds.sum_rel, 1.0,
                      wl, bounds, result))
    return result;
  if (!compare_array("evaluate.site_lnl", ref_site.data(), dut_site.data(),
                     np, wl, bounds, result))
    return result;

  // --- makenewz compound: sumtable + Newton-Raphson at three lengths ----
  // Each executor consumes its OWN sumtable (the real makenewz data flow);
  // for bitwise pairs the tables are identical anyway.
  aligned_vector<double> ref_sum(values, 0.0), dut_sum(values, 0.0);
  ref_rest.begin_compound();
  dut.begin_compound();
  ref_rest.sumtable(wl.sumtable_task(ref_sum.data()));
  dut.sumtable(wl.sumtable_task(dut_sum.data()));
  if (!compare_array("sumtable.out", ref_sum.data(), dut_sum.data(),
                     np * wl.stride(), wl, bounds, result)) {
    ref_rest.end_compound();
    dut.end_compound();
    return result;
  }

  const double t0 = wl.spec().t;
  const double ts[3] = {t0, clamp_branch(t0 * 0.5), clamp_branch(t0 * 2.0)};
  for (double t : ts) {
    const lh::NrResult r =
        ref_rest.nr_derivatives(wl.nr_task(ref_sum.data(), t));
    const lh::NrResult d = dut.nr_derivatives(wl.nr_task(dut_sum.data(), t));
    const std::string at = " (t=" + fmt(t) + ")";
    const double scale = std::max(1.0, std::abs(r.lnl));
    if (!compare_scalar(("nr.lnl" + at).c_str(), r.lnl, d.lnl,
                        bounds.sum_rel, 1.0, wl, bounds, result) ||
        !compare_scalar(("nr.d1" + at).c_str(), r.d1, d.d1, bounds.sum_rel,
                        scale, wl, bounds, result) ||
        !compare_scalar(("nr.d2" + at).c_str(), r.d2, d.d2, bounds.sum_rel,
                        scale, wl, bounds, result)) {
      ref_rest.end_compound();
      dut.end_compound();
      return result;
    }
  }
  ref_rest.end_compound();
  dut.end_compound();
  return result;
}

CaseResult run_case(lh::KernelExecutor& ref, lh::KernelExecutor& dut,
                    const Workload& wl, const Bounds& bounds) {
  return run_case(ref, ref, dut, wl, bounds);
}

std::unique_ptr<lh::KernelExecutor> make_host(lh::KernelConfig config) {
  return lh::make_executor(lh::ExecutorSpec::host_spec(lh::HostOptions{config}));
}

std::unique_ptr<lh::KernelExecutor> make_threaded(int threads,
                                                  lh::KernelConfig config) {
  lh::ThreadedOptions opts;
  opts.kernels = config;
  opts.threads = threads;
  return lh::make_executor(lh::ExecutorSpec::threaded_spec(opts));
}

std::unique_ptr<lh::KernelExecutor> make_cell(core::Stage stage, int llp_ways,
                                              std::size_t strip_bytes) {
  lh::ExecutorSpec spec = core::cell_executor_spec(stage, llp_ways);
  spec.cell().strip_bytes = strip_bytes;
  return lh::make_executor(spec);
}

core::CellExecutor& as_cell(lh::KernelExecutor& exec) {
  return core::as_cell_executor(exec);
}

lh::KernelConfig mirror_config(const core::StageToggles& toggles) {
  lh::KernelConfig config;
  config.exp_fn = toggles.sdk_exp ? &lh::exp_sdk : &lh::exp_libm;
  config.scaling = toggles.int_cond ? lh::ScalingCheck::kIntCast
                                    : lh::ScalingCheck::kFloatBranch;
  config.simd = toggles.vectorized;
  return config;
}

std::uint64_t base_seed() {
  if (const char* env = std::getenv("RXC_CONF_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0xC0FFEE42ULL;
}

bool fixed_seed_requested() {
  return std::getenv("RXC_CONF_SEED") != nullptr;
}

std::uint64_t case_seed(std::uint64_t pair_salt, std::uint64_t index) {
  std::uint64_t state = base_seed() ^ (pair_salt * 0x9e3779b97f4a7c15ULL);
  std::uint64_t seed = splitmix64(state);
  for (std::uint64_t i = 0; i < index; ++i) seed = splitmix64(state);
  return seed;
}

std::string repro_hint(std::uint64_t seed, const char* test_filter) {
  std::ostringstream os;
  os << "rerun: RXC_CONF_SEED=0x" << std::hex << seed
     << " ctest --test-dir build -R " << test_filter << " --output-on-failure";
  return os.str();
}

}  // namespace rxc::conformance
