#pragma once
/// \file workload.h
/// Seeded random kernel workloads for the differential conformance suite.
///
/// A WorkloadSpec is drawn deterministically from a single 64-bit seed and
/// expands into one set of input buffers (model, rates, tips, partials,
/// scale vectors, weights) shared by every executor under test.  The draw
/// deliberately covers the awkward corners of the kernel contract:
///  - pattern counts that are not multiples of the 16-pattern DMA strip
///    granularity (including np == 1);
///  - CAT and GAMMA rate modes with category counts up to the paper's 25;
///  - all three child combinations (tip/tip, tip/inner, inner/inner);
///  - branch lengths spanning the full legal range [0, kMaxBranch],
///    including the kMinBranch and kMaxBranch endpoints;
///  - inner partials drawn around 1e-40 so newview products land below
///    RAxML's 2^-256 rescale threshold and force scaling events.
///
/// Buffers are 16-byte aligned and padded to a multiple of 16 patterns,
/// because the simulated MFC reads whole 128-bit-aligned strips (a DMA of
/// round_up(np, 16) tip codes is architecturally legal and must not run off
/// the end of a host buffer).

#include <cstdint>
#include <string>

#include "likelihood/executor.h"
#include "model/dna_model.h"
#include "seq/alignment.h"
#include "support/aligned.h"
#include "support/rng.h"

namespace rxc::conformance {

struct WorkloadSpec {
  std::uint64_t seed = 0x5eed;
  lh::RateMode mode = lh::RateMode::kCat;
  int ncat = 1;
  std::size_t np = 64;
  bool tip1 = false;      ///< child 1 is a tip (canonical: tip first)
  bool tip2 = false;      ///< child 2 is a tip (implies tip1)
  bool underflow = false; ///< inner partials drawn tiny => rescale events
  double brlen1 = 0.1;    ///< newview child branches
  double brlen2 = 0.1;
  double brlen = 0.1;     ///< evaluate branch
  double t = 0.1;         ///< Newton-Raphson candidate branch

  /// Fully random spec from a seed (the property-test entry point).
  static WorkloadSpec draw(std::uint64_t seed);

  /// One-line description, printed with every conformance failure.
  std::string describe() const;
};

/// Expanded input buffers for one spec.  The same Workload instance feeds
/// every executor of a differential pair; only output buffers differ.
class Workload {
public:
  explicit Workload(const WorkloadSpec& spec);

  const WorkloadSpec& spec() const { return spec_; }

  /// Doubles per pattern in partial/sumtable layouts (4 or ncat*4).
  std::size_t stride() const;
  /// Pattern count padded to the 16-pattern DMA strip granularity; output
  /// buffers must hold padded_np() * stride() values (or padded_np() ints).
  std::size_t padded_np() const;

  /// Input scale vectors / weights (padded_np entries), for tests that
  /// reason about rescale accounting directly.
  const std::int32_t* scale1() const { return scale1_.data(); }
  const std::int32_t* scale2() const { return scale2_.data(); }
  const double* weights() const { return weights_.data(); }

  lh::TaskContext ctx() const;
  lh::NewviewTask newview_task(double* out, std::int32_t* scale_out) const;
  lh::EvaluateTask evaluate_task(double* site_lnl_out) const;
  lh::SumtableTask sumtable_task(double* out) const;
  lh::NrTask nr_task(const double* sumtable, double t) const;
  /// Fused gradient over the same directed partials sumtable_task streams
  /// (tip1/partial1 child selection follows spec.tip1).
  lh::EdgeGradientTask edge_gradient_task(double t) const;

private:
  WorkloadSpec spec_;
  model::DnaModel model_;
  model::EigenSystem es_;
  aligned_vector<double> rates_;
  aligned_vector<int> cat_;
  aligned_vector<seq::DnaCode> tip1_, tip2_;
  aligned_vector<double> partial1_, partial2_;
  aligned_vector<std::int32_t> scale1_, scale2_;
  aligned_vector<double> weights_;
};

}  // namespace rxc::conformance
