// Tests for the partitioned (multi-gene) engine: slicing, joint likelihood
// additivity, joint branch optimization, search, and the partition-file
// parser.

#include <gtest/gtest.h>

#include <cmath>

#include "likelihood/partitioned_engine.h"
#include "search/partitioned_search.h"
#include "seq/seqgen.h"
#include "support/stats.h"
#include "tree/parsimony.h"

using namespace rxc;
using lh::PartitionDef;
using lh::PartitionedEngine;
using tree::Tree;

namespace {

struct MultiGene {
  seq::Alignment aln;
  seq::PatternAlignment full;
  std::vector<PartitionDef> defs;

  MultiGene() : aln(make()), full(seq::PatternAlignment::compress(aln)) {
    lh::EngineConfig gene1;  // CAT for the first gene
    gene1.mode = lh::RateMode::kCat;
    gene1.categories = 4;
    lh::EngineConfig gene2;  // GAMMA for the second
    gene2.mode = lh::RateMode::kGamma;
    gene2.categories = 4;
    gene2.alpha = 0.8;
    defs = {{"gene1", 0, 250, gene1}, {"gene2", 250, 600, gene2}};
  }
  static seq::Alignment make() {
    seq::SimOptions opt;
    opt.ntaxa = 10;
    opt.nsites = 600;
    opt.seed = 33;
    return seq::simulate_alignment(opt).alignment;
  }
};

}  // namespace

TEST(Partitioned, JointLikelihoodIsSumOfPartitions) {
  MultiGene mg;
  PartitionedEngine part(mg.aln, mg.defs);
  Rng rng(3);
  Tree t = Tree::random_topology(mg.aln.taxon_count(), rng, 0.08);
  part.set_tree(&t);
  const double joint = part.log_likelihood();
  double manual = 0.0;
  for (std::size_t i = 0; i < part.partition_count(); ++i)
    manual += part.engine(i).log_likelihood();
  EXPECT_LT(rel_diff(joint, manual), 1e-12);
  EXPECT_LT(joint, 0.0);
  part.set_tree(nullptr);
}

TEST(Partitioned, SingleUniformPartitionEqualsPlainEngine) {
  MultiGene mg;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  PartitionedEngine part(mg.aln,
                         {{"all", 0, mg.aln.site_count(), cfg}});
  lh::LikelihoodEngine plain(mg.full, cfg);
  Rng rng(5);
  Tree t1 = Tree::random_topology(mg.aln.taxon_count(), rng, 0.1);
  Tree t2 = t1;
  part.set_tree(&t1);
  plain.set_tree(&t2);
  EXPECT_LT(rel_diff(part.log_likelihood(), plain.log_likelihood()), 1e-12);
  part.set_tree(nullptr);
}

TEST(Partitioned, JointBranchOptimizationImproves) {
  MultiGene mg;
  PartitionedEngine part(mg.aln, mg.defs);
  Rng rng(7);
  Tree t = Tree::random_topology(mg.aln.taxon_count(), rng, 0.3);
  part.set_tree(&t);
  const double before = part.log_likelihood();
  const double after = part.optimize_all_branches(3);
  EXPECT_GT(after, before + 1.0);
  part.set_tree(nullptr);
}

TEST(Partitioned, JointOptimumBeatsPerPartitionDisagreement) {
  // The jointly optimized branch length must be a stationary point of the
  // SUM: moving it slightly in either direction cannot improve the joint
  // lnl (even though individual partitions might prefer it).
  MultiGene mg;
  PartitionedEngine part(mg.aln, mg.defs);
  Rng rng(9);
  Tree t = Tree::random_topology(mg.aln.taxon_count(), rng, 0.1);
  part.set_tree(&t);
  part.optimize_all_branches(3);
  const int edge = 0;
  const double opt_len = t.branch_length(edge);
  const double opt_lnl = part.evaluate(edge);
  for (const double factor : {0.8, 0.9, 1.1, 1.25}) {
    t.set_branch_length(edge, opt_len * factor);
    part.on_branch_changed(edge);
    EXPECT_LE(part.evaluate(edge), opt_lnl + 1e-7) << factor;
  }
  t.set_branch_length(edge, opt_len);
  part.set_tree(nullptr);
}

TEST(Partitioned, SearchRunsAndBeatsStartingTree) {
  MultiGene mg;
  PartitionedEngine part(mg.aln, mg.defs);
  search::SearchOptions so;
  so.max_rounds = 2;
  const auto result =
      search::run_partitioned_search(mg.full, part, so, 11);
  EXPECT_LT(result.log_likelihood, 0.0);
  EXPECT_NO_THROW(result.tree.check_valid());
  EXPECT_GT(part.counters().newview_calls, 0u);
}

TEST(Partitioned, RejectsBadRanges) {
  MultiGene mg;
  lh::EngineConfig cfg;
  EXPECT_THROW(PartitionedEngine(mg.aln, {{"x", 10, 10, cfg}}), Error);
  EXPECT_THROW(PartitionedEngine(mg.aln, {{"x", 0, 9999, cfg}}), Error);
  EXPECT_THROW(PartitionedEngine(
                   mg.aln, {{"a", 0, 300, cfg}, {"b", 200, 600, cfg}}),
               Error);
  EXPECT_THROW(PartitionedEngine(mg.aln, {}), Error);
}

TEST(Partitioned, ParsesRaxmlStyleRanges) {
  lh::EngineConfig base;
  const auto defs = lh::parse_partition_ranges(
      "# comment\ngene1 = 1-450\n\ngene2 = 451-1000\n", base);
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].name, "gene1");
  EXPECT_EQ(defs[0].first_site, 0u);
  EXPECT_EQ(defs[0].last_site, 450u);
  EXPECT_EQ(defs[1].first_site, 450u);
  EXPECT_EQ(defs[1].last_site, 1000u);
  EXPECT_THROW(lh::parse_partition_ranges("nonsense\n", base), Error);
  EXPECT_THROW(lh::parse_partition_ranges("g = 5-2\n", base), Error);
  EXPECT_THROW(lh::parse_partition_ranges("", base), Error);
}
