/// Race-detector suite: every planted hazard class must be caught with a
/// precise diagnostic, and every correctly synchronized executor run must
/// produce zero findings at every optimization stage — the same
/// 100%-detection / zero-false-positive bar the invariant checker meets.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/race_detector.h"
#include "cell/fault.h"
#include "cell/spu.h"
#include "core/spe_executor.h"
#include "harness.h"
#include "support/aligned.h"
#include "workload.h"

namespace rxc {
namespace {

using analysis::AnalysisReport;
using analysis::HazardKind;
using analysis::RaceDetector;
using conformance::Workload;
using conformance::WorkloadSpec;

/// Arms a local detector as the process event sink for one test body and
/// guarantees disarm on every exit path.
class ArmedDetector {
 public:
  explicit ArmedDetector(bool fatal = false) : det_(fatal) {
    cell::set_event_sink(&det_);
  }
  ~ArmedDetector() { cell::set_event_sink(nullptr); }
  RaceDetector& operator*() { return det_; }
  RaceDetector* operator->() { return &det_; }

 private:
  RaceDetector det_;
};

HazardKind expected_kind(cell::RaceHazard hazard) {
  switch (hazard) {
    case cell::RaceHazard::kSkippedTagWait:
      return HazardKind::kReadBeforeWait;
    case cell::RaceHazard::kPrematureBufferReuse:
      return HazardKind::kBufferHazard;
    case cell::RaceHazard::kOverlappingEaPut:
      return HazardKind::kEaPutOverlap;
    case cell::RaceHazard::kBrokenSignalOrder:
      return HazardKind::kSignalOrder;
    case cell::RaceHazard::kStalePartialRead:
      return HazardKind::kStalePartial;
  }
  return HazardKind::kReadBeforeWait;
}

TEST(RaceDetector, CatchesEveryPlantedHazardClass) {
  for (const cell::RaceHazard hazard : cell::kAllRaceHazards) {
    ArmedDetector det;
    cell::CellMachine machine;
    cell::plant_hazard(machine, hazard);
    const AnalysisReport report = det->report();
    ASSERT_EQ(report.total, 1u) << cell::race_hazard_name(hazard) << ": "
                                << report.to_string();
    EXPECT_EQ(report.findings[0].kind, expected_kind(hazard))
        << report.findings[0].to_string();
  }
}

TEST(RaceDetector, FindingsCarryPreciseDiagnostics) {
  ArmedDetector det;
  cell::CellMachine machine;
  cell::plant_hazard(machine, cell::RaceHazard::kOverlappingEaPut);
  const AnalysisReport report = det->report();
  ASSERT_EQ(report.total, 1u);
  const analysis::Hazard& h = report.findings[0];
  EXPECT_EQ(h.spe, 1);        // the second putter exposes the race
  EXPECT_EQ(h.other_spe, 0);  // against the first SPE's put
  EXPECT_TRUE(h.ea_range);
  EXPECT_EQ(h.hi - h.lo, 32u);  // the planted 32-byte overlap
  const std::string line = h.to_string();
  EXPECT_NE(line.find("race[ea-put-overlap]"), std::string::npos) << line;
  EXPECT_NE(line.find("spe=1"), std::string::npos) << line;
  EXPECT_NE(line.find("@cycle"), std::string::npos) << line;
}

TEST(RaceDetector, PlantsAreIndependent) {
  // Consecutive plants against one machine must each report exactly once:
  // no state leaks across the epoch boundary each plant closes with.
  ArmedDetector det;
  cell::CellMachine machine;
  for (const cell::RaceHazard hazard : cell::kAllRaceHazards)
    cell::plant_hazard(machine, hazard);
  EXPECT_EQ(det->report().total, cell::kAllRaceHazards.size());
}

TEST(RaceDetector, TagWaitCreatesTheOrderingEdge) {
  // The same access pattern with the wait present must be silent: the
  // detector keys on synchronization structure, not on simulated timing.
  ArmedDetector det;
  cell::CellMachine machine;
  cell::Spu& spu = machine.spe(0);
  aligned_vector<std::byte> host(64);
  const cell::LsAddr buf = spu.ls().alloc(64);
  spu.mfc().get(buf, host.data(), 64, 0, spu.now());
  spu.wait_dma(0);
  cell::event_sink()->on_ls_read(spu.id(), buf, 64, spu.now(), spu.now());
  EXPECT_TRUE(det->report().ok()) << det->report().to_string();
}

TEST(RaceDetector, UnwaitedPutSurvivesTheEpochBoundary) {
  // A PPE join orders SPEs against each other but does not flush anyone's
  // MFC: a put left un-waited must still taint a get in the NEXT epoch.
  ArmedDetector det;
  cell::CellMachine machine;
  cell::Spu& spe0 = machine.spe(0);
  cell::Spu& spe1 = machine.spe(1);
  aligned_vector<std::byte> host(64);
  const cell::LsAddr src = spe0.ls().alloc(64);
  const cell::LsAddr dst = spe1.ls().alloc(64);
  spe0.mfc().put(host.data(), src, 64, 0, spe0.now());
  cell::event_sink()->on_epoch();
  spe1.mfc().get(dst, host.data(), 64, 0, spe1.now());
  const AnalysisReport report = det->report();
  ASSERT_EQ(report.total, 1u) << report.to_string();
  EXPECT_EQ(report.findings[0].kind, HazardKind::kStalePartial);
}

TEST(RaceDetector, EpochBoundaryRetiresCrossSpePutOverlap) {
  // The dual: overlapping puts in DIFFERENT epochs are ordered by the join
  // (once both are drained) and must not be flagged.
  ArmedDetector det;
  cell::CellMachine machine;
  cell::Spu& spe0 = machine.spe(0);
  cell::Spu& spe1 = machine.spe(1);
  aligned_vector<std::byte> host(64);
  const cell::LsAddr b0 = spe0.ls().alloc(64);
  const cell::LsAddr b1 = spe1.ls().alloc(64);
  spe0.mfc().put(host.data(), b0, 64, 0, spe0.now());
  spe0.wait_dma(0);
  cell::event_sink()->on_epoch();
  spe1.mfc().put(host.data(), b1, 64, 0, spe1.now());
  spe1.wait_dma(0);
  EXPECT_TRUE(det->report().ok()) << det->report().to_string();
}

TEST(RaceDetector, FatalModeThrowsAtTheFirstFinding) {
  ArmedDetector det(/*fatal=*/true);
  cell::CellMachine machine;
  EXPECT_THROW(
      cell::plant_hazard(machine, cell::RaceHazard::kSkippedTagWait),
      analysis::AnalysisError);
}

TEST(RaceDetector, FindingStorageIsCappedButCountingIsNot) {
  ArmedDetector det;
  cell::CellMachine machine;
  const std::size_t rounds = RaceDetector::kMaxFindings + 10;
  for (std::size_t i = 0; i < rounds; ++i)
    cell::plant_hazard(machine, cell::RaceHazard::kBrokenSignalOrder);
  const AnalysisReport report = det->report();
  EXPECT_EQ(report.total, rounds);
  EXPECT_EQ(report.findings.size(), RaceDetector::kMaxFindings);
  EXPECT_NE(report.to_string().find("further findings"), std::string::npos);
}

TEST(RaceDetector, TakeReportResetsFindingsOnly) {
  ArmedDetector det;
  cell::CellMachine machine;
  cell::plant_hazard(machine, cell::RaceHazard::kSkippedTagWait);
  EXPECT_EQ(det->take_report().total, 1u);
  EXPECT_TRUE(det->report().ok());
  EXPECT_GT(det->stats().dma_events, 0u);  // stats survive
}

TEST(RaceDetector, CleanExecutorRunsProduceZeroFindingsAtEveryStage) {
  // The zero-false-positive bar: the full kernel sequence through the
  // simulated Cell — every cumulative optimization stage, multi-SPE LLP,
  // mailbox and direct signaling — must be race-free under analysis.
  const Workload wl(WorkloadSpec::draw(conformance::base_seed()));
  for (const core::Stage stage :
       {core::Stage::kOffloadNewview, core::Stage::kFastExp,
        core::Stage::kIntCond, core::Stage::kDoubleBuffer,
        core::Stage::kVectorize, core::Stage::kDirectComm,
        core::Stage::kOffloadAll}) {
    for (const int ways : {1, 4, 8}) {
      ArmedDetector det;
      auto exec = conformance::make_cell(stage, ways);

      aligned_vector<double> out(wl.padded_np() * wl.stride());
      aligned_vector<std::int32_t> scale_out(wl.padded_np());
      aligned_vector<double> site(wl.padded_np());
      aligned_vector<double> sumtab(wl.padded_np() * wl.stride());
      exec->newview(wl.newview_task(out.data(), scale_out.data()));
      (void)exec->evaluate(wl.evaluate_task(site.data()));
      exec->begin_compound();
      exec->sumtable(wl.sumtable_task(sumtab.data()));
      (void)exec->nr_derivatives(wl.nr_task(sumtab.data(), wl.spec().t));
      exec->end_compound();

      const AnalysisReport report = det->report();
      EXPECT_TRUE(report.ok())
          << "stage=" << core::stage_name(stage) << " ways=" << ways << '\n'
          << report.to_string();
      const analysis::DetectorStats stats = det->stats();
      EXPECT_GT(stats.dma_events, 0u);     // the hooks actually fired
      EXPECT_GT(stats.window_events, 0u);  // kernel windows were declared
      EXPECT_GT(stats.epochs, 0u);         // every record() closed an epoch
    }
  }
}

TEST(RaceDetector, SkippingTheSiteBufferDrainIsCaught) {
  // Regression guard for the evaluate()/sumtable() strip loops: rewriting
  // the outbound buffer without draining the previous strip's put must be
  // flagged (this PR added exactly those waits to the executor).
  ArmedDetector det;
  cell::CellMachine machine;
  cell::Spu& spu = machine.spe(0);
  aligned_vector<std::byte> host(256);
  const cell::LsAddr out = spu.ls().alloc(64);
  for (int strip = 0; strip < 2; ++strip) {
    cell::event_sink()->on_ls_write(spu.id(), out, 64, spu.now(), spu.now());
    spu.mfc().put(host.data() + 64 * strip, out, 64, 1, spu.now());
  }
  const AnalysisReport report = det->report();
  ASSERT_EQ(report.total, 1u) << report.to_string();
  EXPECT_EQ(report.findings[0].kind, HazardKind::kBufferHazard);
}

TEST(AnalyzeConfig, ParsesTheEnvGrammar) {
  EXPECT_EQ(analysis::parse_analyze(""), analysis::AnalyzeMode::kOff);
  EXPECT_EQ(analysis::parse_analyze("off"), analysis::AnalyzeMode::kOff);
  EXPECT_EQ(analysis::parse_analyze("race"), analysis::AnalyzeMode::kRace);
  EXPECT_EQ(analysis::parse_analyze("race:fatal"),
            analysis::AnalyzeMode::kRaceFatal);
  EXPECT_THROW(analysis::parse_analyze("races"), Error);
  EXPECT_THROW(analysis::parse_analyze("race:warn"), Error);
}

TEST(AnalyzeConfig, ConfigureInstallsAndRemovesTheGlobalDetector) {
  analysis::configure(analysis::AnalyzeMode::kRace);
  ASSERT_NE(analysis::global_detector(), nullptr);
  EXPECT_EQ(cell::event_sink(), analysis::global_detector());
  EXPECT_FALSE(analysis::global_detector()->fatal());

  analysis::configure(analysis::AnalyzeMode::kRaceFatal);
  ASSERT_NE(analysis::global_detector(), nullptr);
  EXPECT_TRUE(analysis::global_detector()->fatal());

  analysis::configure(analysis::AnalyzeMode::kOff);
  EXPECT_EQ(analysis::global_detector(), nullptr);
  EXPECT_EQ(cell::event_sink(), nullptr);
}

TEST(AnalyzeConfig, DisarmedMachineEmitsNothing) {
  // With no sink installed the hooks are a single relaxed load: hazards run
  // to completion silently and no detector state exists to consult.
  ASSERT_EQ(cell::event_sink(), nullptr);
  cell::CellMachine machine;
  for (const cell::RaceHazard hazard : cell::kAllRaceHazards)
    cell::plant_hazard(machine, hazard);  // must not crash or leak state
  EXPECT_EQ(analysis::global_detector(), nullptr);
}

}  // namespace
}  // namespace rxc
