/// Adversarial NDJSON decoding: the serving codec sits on the trust
/// boundary (arbitrary client bytes -> JobSpec), so hostile shapes must die
/// as ParseError, never as a crash, hang, or silently-wrong spec.  The
/// random-mutation sweeps are seeded and deterministic; they earn their keep
/// under the sanitizer CI legs, where any out-of-bounds scan in the parser
/// becomes a hard failure.

#include <gtest/gtest.h>

#include <string>

#include "serve/ndjson.h"
#include "support/error.h"
#include "support/rng.h"

namespace rxc::serve {
namespace {

const char kValidSpec[] =
    R"({"id":"job-1","sim_taxa":8,"sim_sites":64,"mode":"cat","categories":4,)"
    R"("inferences":1,"bootstraps":2,"seed":7,"epsilon":0.01})";

/// Parse must either succeed or throw ParseError — anything else (other
/// exception types, crashes) fails the test.
bool parses(const std::string& text) {
  try {
    parse_json(text);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

TEST(NdjsonFuzz, EveryTruncationOfAValidLineIsRejectedCleanly) {
  const std::string line = kValidSpec;
  ASSERT_TRUE(parses(line));
  for (std::size_t n = 0; n < line.size(); ++n) {
    const std::string prefix = line.substr(0, n);
    EXPECT_FALSE(parses(prefix)) << "prefix of length " << n << ": " << prefix;
    EXPECT_THROW(job_spec_from_json(prefix), ParseError);
  }
  EXPECT_NO_THROW(job_spec_from_json(line));
}

TEST(NdjsonFuzz, DeepNestingIsBoundedNotStackOverflow) {
  // Well under the cap: fine.
  std::string shallow(32, '[');
  shallow += "1";
  shallow += std::string(32, ']');
  EXPECT_TRUE(parses(shallow));

  // A pathological line of brackets must be cut off by the depth bound long
  // before the recursion touches the guard page.
  for (const std::size_t depth : {std::size_t{65}, std::size_t{100000}}) {
    std::string deep(depth, '[');
    deep += "1";
    deep += std::string(depth, ']');
    EXPECT_FALSE(parses(deep)) << depth << " levels";
    std::string objects;
    for (std::size_t i = 0; i < depth; ++i) objects += R"({"k":)";
    EXPECT_FALSE(parses(objects)) << depth << " unclosed objects";
  }
}

TEST(NdjsonFuzz, NonFiniteNumberSpellingsAreRejected) {
  // JSON has no NaN/Infinity; strtod accepts several spellings, so the
  // parser must gate them out itself — a NaN deadline or alpha would
  // otherwise sail through every later range check (NaN compares false).
  for (const char* bad :
       {"nan", "NaN", "-nan", "inf", "Infinity", "-Infinity", "-inf",
        R"({"deadline_ms":nan})", R"({"alpha":-inf})", "[Infinity]"}) {
    EXPECT_FALSE(parses(bad)) << bad;
  }
  // Finite-looking overflow literals round to infinity: same rejection.
  EXPECT_FALSE(parses("1e999"));
  EXPECT_FALSE(parses("-1e999"));
  EXPECT_FALSE(parses(R"({"epsilon":1e999})"));
}

TEST(NdjsonFuzz, DuplicateKeysAreRejectedAtEveryLevel) {
  EXPECT_FALSE(parses(R"({"a":1,"a":2})"));
  EXPECT_FALSE(parses(R"({"a":1,"b":{"c":1,"c":2}})"));
  EXPECT_FALSE(parses(R"([{"x":1,"x":1}])"));
  // Same key spelled via a \u escape is still the same key post-decode.
  EXPECT_FALSE(parses("{\"i\\u0064\":1,\"id\":2}"));
  EXPECT_THROW(job_spec_from_json(R"({"id":"a","id":"b","inferences":1})"),
               ParseError);
  // Distinct keys stay fine.
  EXPECT_TRUE(parses(R"({"a":{"x":1},"b":{"x":1}})"));
}

TEST(NdjsonFuzz, SeededByteMutationsNeverEscapeParseError) {
  Rng rng(0xD15EA5EDULL);
  const std::string line = kValidSpec;
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = line;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(mutated.size());
      mutated[at] = static_cast<char>(rng.below(256));
    }
    try {
      const JsonValue doc = parse_json(mutated);
      // Survivors must still behave like values (find() on non-objects is
      // null, accessors throw rather than read junk).
      if (!doc.is_object()) {
        EXPECT_EQ(doc.find("id"), nullptr);
      }
    } catch (const ParseError&) {
    }
  }
}

TEST(NdjsonFuzz, SeededGarbageLinesNeverEscapeParseError) {
  Rng rng(0xBADC0DEULL);
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng.below(120), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.below(256));
    try {
      job_spec_from_json(garbage);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace rxc::serve
