// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// kernel-config equivalence across rate modes and category counts, the
// pulley principle across tree sizes, prune/restore round trips across
// random seeds, and DMA size-rule coverage.

#include <gtest/gtest.h>

#include <cmath>

#include "cell/local_store.h"
#include "cell/mfc.h"
#include "likelihood/engine.h"
#include "seq/bootstrap.h"
#include "seq/seqgen.h"
#include "support/stats.h"
#include "tree/moves.h"
#include "tree/tree.h"

using namespace rxc;

// --- kernel-config equivalence across (mode, categories) --------------------

struct KernelSweepParam {
  lh::RateMode mode;
  int categories;
};

class KernelEquivalenceSweep
    : public ::testing::TestWithParam<KernelSweepParam> {};

TEST_P(KernelEquivalenceSweep, AllKernelConfigsAgree) {
  const auto [mode, categories] = GetParam();
  seq::SimOptions opt;
  opt.ntaxa = 10;
  opt.nsites = 300;
  opt.seed = 31;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(7);
  tree::Tree t = tree::Tree::random_topology(pa.taxon_count(), rng, 0.08);

  double reference = 0.0;
  bool first = true;
  for (const bool simd : {false, true}) {
    for (const auto exp_fn : {&lh::exp_libm, &lh::exp_sdk}) {
      for (const auto check :
           {lh::ScalingCheck::kFloatBranch, lh::ScalingCheck::kIntCast}) {
        lh::EngineConfig cfg;
        cfg.mode = mode;
        cfg.categories = categories;
        cfg.alpha = 0.7;
        cfg.kernels = {exp_fn, check, simd};
        lh::LikelihoodEngine eng(pa, cfg);
        eng.set_tree(&t);
        const double lnl = eng.log_likelihood();
        if (first) {
          reference = lnl;
          first = false;
        } else {
          EXPECT_LT(rel_diff(lnl, reference), 1e-11)
              << "simd=" << simd << " sdk=" << (exp_fn == &lh::exp_sdk)
              << " int=" << (check == lh::ScalingCheck::kIntCast);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndCategories, KernelEquivalenceSweep,
    ::testing::Values(KernelSweepParam{lh::RateMode::kCat, 1},
                      KernelSweepParam{lh::RateMode::kCat, 4},
                      KernelSweepParam{lh::RateMode::kCat, 25},
                      KernelSweepParam{lh::RateMode::kGamma, 1},
                      KernelSweepParam{lh::RateMode::kGamma, 4},
                      KernelSweepParam{lh::RateMode::kGamma, 8}),
    [](const auto& info) {
      return std::string(info.param.mode == lh::RateMode::kCat ? "Cat"
                                                               : "Gamma") +
             std::to_string(info.param.categories);
    });

// --- pulley principle across tree sizes --------------------------------------

class PulleySweep : public ::testing::TestWithParam<int> {};

TEST_P(PulleySweep, LikelihoodEdgeInvariant) {
  const int ntaxa = GetParam();
  seq::SimOptions opt;
  opt.ntaxa = static_cast<std::size_t>(ntaxa);
  opt.nsites = 120;
  opt.seed = 1000 + ntaxa;
  const auto sim = seq::simulate_alignment(opt);
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(ntaxa);
  tree::Tree t = tree::Tree::random_topology(pa.taxon_count(), rng, 0.09);
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  lh::LikelihoodEngine eng(pa, cfg);
  eng.set_tree(&t);
  const double ref = eng.log_likelihood();
  for (std::size_t e = 0; e < t.edge_slots(); ++e)
    if (t.edge_alive(static_cast<int>(e)))
      EXPECT_NEAR(eng.evaluate(static_cast<int>(e)), ref,
                  std::fabs(ref) * 1e-10);
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, PulleySweep,
                         ::testing::Values(4, 5, 8, 13, 21, 34, 55));

// --- prune/regraft/restore round trips across seeds ---------------------------

class SprRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(SprRoundTripSweep, EveryMoveIsReversible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  tree::Tree t = tree::Tree::random_topology(18, rng, 0.1);
  const tree::Tree original = t;
  const auto points = tree::enumerate_prune_points(t);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto [x, s] = points[rng.below(points.size())];
    if (t.edge_between(x, s) < 0) continue;
    auto rec = t.prune(x, s);
    const auto targets = tree::enumerate_regraft_targets(t, rec, 4);
    if (!targets.empty()) {
      const auto& cand = targets[rng.below(targets.size())];
      t.regraft(x, cand.target_edge, t.branch_length(cand.target_edge) / 2,
                rec.edge_xb);
      t.check_valid();
      const auto rec2 = t.prune(x, s);
      EXPECT_EQ(rec2.merged_edge, cand.target_edge);
    }
    t.restore(rec);
    t.check_valid();
    EXPECT_EQ(tree::Tree::rf_distance(t, original), 0u);
  }
  EXPECT_NEAR(t.total_length(), original.total_length(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SprRoundTripSweep,
                         ::testing::Range(1, 11));

// --- DMA size rules across the architectural table -----------------------------

struct DmaSizeParam {
  std::size_t size;
  bool legal;
};

class DmaSizeSweep : public ::testing::TestWithParam<DmaSizeParam> {};

TEST_P(DmaSizeSweep, SizeRuleEnforced) {
  const auto [size, legal] = GetParam();
  const cell::DeviceModel dev;
  cell::LocalStore ls(dev.local_store_bytes, 0);
  cell::Mfc mfc(ls, dev);
  aligned_vector<std::byte> host(dev.dma_max_bytes + 64);
  const cell::LsAddr dst = ls.alloc(dev.dma_max_bytes);
  if (legal) {
    EXPECT_NO_THROW(mfc.get(dst, host.data(), size, 0, 0.0));
  } else {
    EXPECT_THROW(mfc.get(dst, host.data(), size, 0, 0.0), HardwareError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchitecturalTable, DmaSizeSweep,
    ::testing::Values(DmaSizeParam{1, true}, DmaSizeParam{2, true},
                      DmaSizeParam{4, true}, DmaSizeParam{8, true},
                      DmaSizeParam{16, true}, DmaSizeParam{32, true},
                      DmaSizeParam{16384, true},
                      DmaSizeParam{3, false}, DmaSizeParam{12, false},
                      DmaSizeParam{17, false}, DmaSizeParam{24, false},
                      DmaSizeParam{100, false},
                      DmaSizeParam{16384 + 16, false}),
    [](const auto& info) {
      return (info.param.legal ? "legal_" : "illegal_") +
             std::to_string(info.param.size);
    });

// --- bootstrap weights sweep: expectation across replicate counts ---------------

class BootstrapSweep : public ::testing::TestWithParam<int> {};

TEST_P(BootstrapSweep, WeightsAlwaysSumToSiteCount) {
  const int seed = GetParam();
  const auto sim = seq::make_42sc(static_cast<std::uint64_t>(seed));
  const auto pa = seq::PatternAlignment::compress(sim.alignment);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int rep = 0; rep < 5; ++rep) {
    const auto w = seq::bootstrap_weights(pa, rng);
    double sum = 0.0;
    for (const double x : w) sum += x;
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(pa.site_count()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BootstrapSweep, ::testing::Values(1, 2, 3));
