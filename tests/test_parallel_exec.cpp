// Tests for the wall-clock-parallel simulated-Cell backend: with any number
// of host worker threads, the executor must produce bitwise-identical
// results AND bitwise-identical virtual time.  The pool only reorders wall
// execution of independent payloads; fixed-order reduction slots keep every
// floating-point sum/max in the sequential order, and each payload drains
// its MFC tags before returning, so virtual accounting cannot observe the
// host interleaving.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "core/port.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "likelihood/threaded_executor.h"
#include "obs/obs.h"
#include "seq/seqgen.h"
#include "support/aligned.h"
#include "support/stats.h"
#include "tree/tree.h"

using namespace rxc;

namespace {

struct Fixture {
  seq::SimResult sim;
  seq::PatternAlignment pa;
  lh::EngineConfig ec;
  search::SearchOptions so;

  Fixture() : sim(make()), pa(seq::PatternAlignment::compress(sim.alignment)) {
    ec.mode = lh::RateMode::kCat;
    ec.categories = 8;
    so.max_rounds = 2;
    so.radius = 3;
  }
  static seq::SimResult make() {
    seq::SimOptions opt;
    opt.ntaxa = 12;
    opt.nsites = 400;
    opt.branch_scale = 0.07;
    opt.seed = 17;
    return sim_result(opt);
  }
  static seq::SimResult sim_result(const seq::SimOptions& opt) {
    return seq::simulate_alignment(opt);
  }
};

struct RunOut {
  double virtual_seconds;
  std::vector<double> lnls;
  std::vector<std::string> newicks;
};

RunOut run_case(const Fixture& f, core::SchedulerModel scheduler,
                int host_threads) {
  core::CellRunConfig cfg;
  cfg.stage = core::Stage::kOffloadAll;
  cfg.scheduler = scheduler;
  cfg.engine = f.ec;
  cfg.search = f.so;
  cfg.host_threads = host_threads;
  const auto tasks = search::make_analysis(0, 2);
  const auto r = core::run_on_cell(f.pa, cfg, tasks);
  return {r.virtual_seconds, r.task_log_likelihoods, r.task_newicks};
}

/// Bitwise equality across host thread counts: lnLs compared with ==, not a
/// tolerance, and virtual makespans identical to the last bit.
void expect_identical_across_threads(core::SchedulerModel scheduler) {
  Fixture f;
  const RunOut ref = run_case(f, scheduler, 1);
  ASSERT_FALSE(ref.lnls.empty());
  for (const int threads : {2, 8}) {
    const RunOut got = run_case(f, scheduler, threads);
    EXPECT_EQ(got.virtual_seconds, ref.virtual_seconds)
        << threads << " host threads changed the virtual makespan";
    ASSERT_EQ(got.lnls.size(), ref.lnls.size());
    for (std::size_t i = 0; i < ref.lnls.size(); ++i) {
      EXPECT_EQ(got.lnls[i], ref.lnls[i])
          << "task " << i << ", " << threads << " host threads";
    }
    EXPECT_EQ(got.newicks, ref.newicks) << threads << " host threads";
  }
}

}  // namespace

// LLP: the 8 per-SPE strip payloads of every offloaded newview run on the
// pool; the fixed-slot elapsed/stall reduction keeps timing exact.
TEST(ParallelExec, LlpBitwiseIdenticalAcrossHostThreads) {
  expect_identical_across_threads(core::SchedulerModel::kLlp);
}

// Batched dispatch: whole dependency levels of independent newview tasks
// round-robin across SPEs; records land in the original task order.
TEST(ParallelExec, BatchBitwiseIdenticalAcrossHostThreads) {
  expect_identical_across_threads(core::SchedulerModel::kNaiveMpi);
}

// Newton-Raphson derivatives come from sumtable+evaluate kernels running on
// top of parallel-computed partials; they too must be bitwise stable.
TEST(ParallelExec, DerivativesBitwiseIdenticalAcrossHostThreads) {
  Fixture f;
  Rng rng(7);
  tree::Tree t = tree::Tree::random_topology(f.pa.taxon_count(), rng, 0.08);

  lh::NrResult ref{};
  double ref_lnl = 0.0;
  for (const int threads : {1, 2, 8}) {
    cell::CellMachine machine;
    core::SpeExecConfig cfg;
    cfg.toggles = core::stage_toggles(core::Stage::kOffloadAll);
    cfg.llp_ways = 8;
    cfg.host_threads = threads;
    core::SpeExecutor exec(machine, cfg);

    lh::LikelihoodEngine engine(f.pa, f.ec);
    engine.set_executor(&exec);
    auto tc = t;
    engine.set_tree(&tc);
    const double lnl = engine.evaluate(0);
    engine.prepare_branch(0);
    const lh::NrResult nr = engine.branch_derivatives(0.13);
    if (threads == 1) {
      ref = nr;
      ref_lnl = lnl;
    } else {
      EXPECT_EQ(lnl, ref_lnl) << threads << " host threads";
      EXPECT_EQ(nr.lnl, ref.lnl) << threads << " host threads";
      EXPECT_EQ(nr.d1, ref.d1) << threads << " host threads";
      EXPECT_EQ(nr.d2, ref.d2) << threads << " host threads";
    }
  }
}

// The happens-before race detector must stay clean when payloads execute
// concurrently: epochs are recorded in task order after the parallel region,
// and batch groups contain only mutually independent tasks.
TEST(ParallelExec, RaceDetectorFatalStaysClean) {
  analysis::configure(analysis::AnalyzeMode::kRaceFatal);
  Fixture f;
  EXPECT_NO_THROW({
    const RunOut a = run_case(f, core::SchedulerModel::kLlp, 8);
    const RunOut b = run_case(f, core::SchedulerModel::kNaiveMpi, 8);
    (void)a;
    (void)b;
  });
  analysis::configure(analysis::AnalyzeMode::kOff);
}

// Pool occupancy counters flow through the obs registry (support publishes
// via the installable sink; obs/metrics.cpp installs the translator).
TEST(ParallelExec, PoolMetricsReachObsRegistry) {
  obs::Config cfg;
  cfg.mode = obs::Mode::kSummary;
  obs::configure(cfg);

  Fixture f;
  (void)run_case(f, core::SchedulerModel::kNaiveMpi, 8);

  const auto snap = obs::snapshot_metrics();
  std::uint64_t jobs = 0, items = 0;
  double threads_gauge = 0.0;
  for (const auto& c : snap.counters) {
    if (c.name == "pool.jobs") jobs = c.value;
    if (c.name == "pool.items") items = c.value;
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "pool.threads") threads_gauge = g.value;
  }
  EXPECT_GT(jobs, 0u) << "no parallel_for dispatches reached the registry";
  EXPECT_GT(items, 0u);
  EXPECT_EQ(threads_gauge, 8.0);

  obs::configure(obs::Config{});  // back to off
}

// Satellite regression: ThreadedExecutor::chunk_count used to compute
// (np + chunk) / chunk, i.e. one spurious extra chunk whenever np was an
// exact multiple of the chunk size.  ceil_div is the shared fix.
TEST(ParallelExec, CeilDivBoundaries) {
  EXPECT_EQ(ceil_div(0, 64), 0u);
  EXPECT_EQ(ceil_div(1, 64), 1u);
  EXPECT_EQ(ceil_div(63, 64), 1u);
  EXPECT_EQ(ceil_div(64, 64), 1u);   // np == 1*chunk: exactly one chunk
  EXPECT_EQ(ceil_div(65, 64), 2u);
  EXPECT_EQ(ceil_div(128, 64), 2u);  // np == 2*chunk: no trailing empty chunk
  EXPECT_EQ(ceil_div(192, 64), 3u);
}

// End-to-end guard for the same bug: a pattern count that is an exact
// multiple of the chunk size must produce results identical to chunk sizes
// that do not divide it (the executor pads chunks, so an off-by-one chunk
// count would touch the padding strip).
TEST(ParallelExec, ThreadedExecutorExactMultipleChunking) {
  Fixture f;
  Rng rng(11);
  tree::Tree t = tree::Tree::random_topology(f.pa.taxon_count(), rng, 0.08);

  lh::LikelihoodEngine host(f.pa, f.ec);
  auto t1 = t;
  host.set_tree(&t1);
  const double want = host.log_likelihood();

  const std::size_t np = f.pa.pattern_count();
  for (const std::size_t chunk : {np, np / 2, np / 3 + 1}) {
    lh::LikelihoodEngine engine(f.pa, f.ec);
    lh::ThreadedExecutor exec(2, f.ec.kernels, chunk);
    engine.set_executor(&exec);
    auto t2 = t;
    engine.set_tree(&t2);
    const double got = engine.log_likelihood();
    EXPECT_LT(rel_diff(got, want), 1e-12) << "chunk=" << chunk;
  }
}
