// Tests for the thread pool and the loop-parallel (RAxML-OMP-style)
// executor: concurrency correctness, determinism, and equality with the
// sequential host executor.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "likelihood/threaded_executor.h"
#include "search/search.h"
#include "seq/seqgen.h"
#include "support/stats.h"
#include "support/thread_pool.h"
#include "tree/parsimony.h"

using namespace rxc;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 50L * (16 * 17 / 2));
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  int count = 0;
  pool.parallel_for(10, [&](std::size_t) { ++count; });  // same thread
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, EmptyAndSingletonJobs) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  int count = 0;
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), Error);
}

namespace {
struct SmpFixture {
  seq::SimResult sim;
  seq::PatternAlignment pa;
  SmpFixture() : sim(make()), pa(seq::PatternAlignment::compress(sim.alignment)) {}
  static seq::SimResult make() {
    seq::SimOptions opt;
    opt.ntaxa = 14;
    opt.nsites = 800;
    opt.seed = 55;
    return seq::simulate_alignment(opt);
  }
};
}  // namespace

TEST(ThreadedExecutor, MatchesSequentialExecutorExactly) {
  SmpFixture f;
  Rng rng(5);
  tree::Tree t = tree::Tree::random_topology(f.pa.taxon_count(), rng, 0.08);

  for (const auto mode : {lh::RateMode::kCat, lh::RateMode::kGamma}) {
    lh::EngineConfig cfg;
    cfg.mode = mode;
    cfg.categories = 4;
    lh::LikelihoodEngine sequential(f.pa, cfg);
    auto t1 = t;
    sequential.set_tree(&t1);
    const double want = sequential.log_likelihood();

    lh::LikelihoodEngine threaded_engine(f.pa, cfg);
    lh::ThreadedExecutor exec(4, cfg.kernels, 32);
    threaded_engine.set_executor(&exec);
    auto t2 = t;
    threaded_engine.set_tree(&t2);
    const double got = threaded_engine.log_likelihood();
    // Chunked reductions have a fixed order but differ from the sequential
    // order; equality is up to reassociation.
    EXPECT_LT(rel_diff(got, want), 1e-12);
  }
}

TEST(ThreadedExecutor, DeterministicAcrossThreadCounts) {
  SmpFixture f;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kCat;
  cfg.categories = 8;
  search::SearchOptions so;
  so.max_rounds = 2;

  std::string reference;
  double ref_lnl = 0.0;
  for (const int threads : {1, 2, 4}) {
    lh::LikelihoodEngine engine(f.pa, cfg);
    lh::ThreadedExecutor exec(threads, cfg.kernels, 64);
    engine.set_executor(&exec);
    const auto result = search::run_search(f.pa, engine, so, 9);
    const std::string newick = result.tree.to_newick(f.pa.names());
    if (threads == 1) {
      reference = newick;
      ref_lnl = result.log_likelihood;
    } else {
      // Identical chunking -> identical arithmetic -> identical results.
      EXPECT_EQ(newick, reference) << threads << " threads";
      EXPECT_DOUBLE_EQ(result.log_likelihood, ref_lnl);
    }
  }
}

TEST(ThreadedExecutor, FullSearchMatchesHostSearch) {
  SmpFixture f;
  lh::EngineConfig cfg;
  cfg.mode = lh::RateMode::kGamma;
  cfg.categories = 4;
  search::SearchOptions so;
  so.max_rounds = 2;

  lh::LikelihoodEngine host_engine(f.pa, cfg);
  const auto host = search::run_search(f.pa, host_engine, so, 4);

  lh::LikelihoodEngine smp_engine(f.pa, cfg);
  lh::ThreadedExecutor exec(3, cfg.kernels, 64);
  smp_engine.set_executor(&exec);
  const auto smp = search::run_search(f.pa, smp_engine, so, 4);

  EXPECT_LT(rel_diff(host.log_likelihood, smp.log_likelihood), 1e-9);
  EXPECT_EQ(tree::Tree::rf_distance(host.tree, smp.tree), 0u);
}
