#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over the whole compilation database.
#
#   tools/lint.sh [--require] [build-dir] [-- extra clang-tidy args...]
#
# Builds (or reuses) a compile_commands.json, then runs clang-tidy with the
# repo-root .clang-tidy profile over every first-party translation unit.
# Exits non-zero on any diagnostic from the WarningsAsErrors set, so CI can
# gate on it.  Degrades gracefully by default: missing clang-tidy is a skip
# (exit 0 with a notice), not a failure, because the sanitizer matrix
# provides the dynamic half of the net on toolchains without clang.  With
# --require a missing clang-tidy is a hard failure instead — CI passes it so
# a runner-image change can never silently turn the lint gate into a no-op.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi
build_dir="${1:-$repo_root/build-lint}"
shift || true
extra_args=()
if [[ "${1:-}" == "--" ]]; then
  shift
  extra_args=("$@")
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  if [[ "$require" -eq 1 ]]; then
    echo "lint.sh: $tidy_bin not found and --require was given" >&2
    exit 1
  fi
  echo "lint.sh: $tidy_bin not found; skipping static analysis" >&2
  echo "lint.sh: install clang-tidy (or set CLANG_TIDY) to enable" >&2
  exit 0
fi

# The database must exist before clang-tidy can map sources to flags.
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party TUs only: generated/third-party code is not ours to lint.
# (The benchmark directory is `bench/`, not `benches/` — the old glob
# silently linted nothing there; tools/ holds first-party CLIs too.)
mapfile -t sources < <(cd "$repo_root" && \
  find src tests examples bench tools -name '*.cpp' 2>/dev/null | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "lint.sh: no sources found" >&2
  exit 1
fi

echo "lint.sh: ${#sources[@]} translation units, profile $repo_root/.clang-tidy"
status=0
# Prefer the parallel driver matching the pinned binary's version suffix
# (clang-tools installs run-clang-tidy-NN next to clang-tidy-NN).
run_tidy="run-clang-tidy${tidy_bin##*clang-tidy}"
command -v "$run_tidy" >/dev/null 2>&1 || run_tidy=run-clang-tidy
if command -v "$run_tidy" >/dev/null 2>&1; then
  "$run_tidy" -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
    "${extra_args[@]}" "${sources[@]/#/$repo_root/}" || status=$?
else
  for src in "${sources[@]}"; do
    "$tidy_bin" -p "$build_dir" --quiet "${extra_args[@]}" \
      "$repo_root/$src" || status=$?
  done
fi
exit "$status"
