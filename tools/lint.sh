#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over the whole compilation database.
#
#   tools/lint.sh [build-dir] [-- extra clang-tidy args...]
#
# Builds (or reuses) a compile_commands.json, then runs clang-tidy with the
# repo-root .clang-tidy profile over every first-party translation unit.
# Exits non-zero on any diagnostic from the WarningsAsErrors set, so CI can
# gate on it.  Degrades gracefully: missing clang-tidy is a skip (exit 0
# with a notice), not a failure, because the sanitizer matrix provides the
# dynamic half of the net on toolchains without clang.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-lint}"
shift || true
extra_args=()
if [[ "${1:-}" == "--" ]]; then
  shift
  extra_args=("$@")
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "lint.sh: $tidy_bin not found; skipping static analysis" >&2
  echo "lint.sh: install clang-tidy (or set CLANG_TIDY) to enable" >&2
  exit 0
fi

# The database must exist before clang-tidy can map sources to flags.
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party TUs only: generated/third-party code is not ours to lint.
mapfile -t sources < <(cd "$repo_root" && \
  find src tests examples benches -name '*.cpp' 2>/dev/null | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "lint.sh: no sources found" >&2
  exit 1
fi

echo "lint.sh: ${#sources[@]} translation units, profile $repo_root/.clang-tidy"
status=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  # The parallel driver when available (ships with clang-tools).
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
    "${extra_args[@]}" "${sources[@]/#/$repo_root/}" || status=$?
else
  for src in "${sources[@]}"; do
    "$tidy_bin" -p "$build_dir" --quiet "${extra_args[@]}" \
      "$repo_root/$src" || status=$?
  done
fi
exit "$status"
