/// rxc-calibrate — micro-benchmarks every registered likelihood backend
/// (host-scalar, host-simd, host-threaded, cell-sim) against one job shape
/// and emits the calibration table in the serving layer's pinned-table
/// format (lh::CalibrationTable::to_string).  Servers can pass the saved
/// table to auto_device_specs instead of re-benching per job; CI uploads it
/// as a per-runner record of which backend won and by how much.
///
///   rxc-calibrate --shape-patterns 252 --shape-ncat 25 --out table.txt
///
/// Options:
///   --shape-taxa N       tree size axis            (default 42)
///   --shape-patterns N   patterns per kernel call  (default 252)
///   --shape-ncat N       rate categories           (default 25)
///   --mode cat|gamma     rate heterogeneity model  (default cat)
///   --device-config FILE additionally score the Cell backend on this
///                        device model (JSON, see data/devices/) as a
///                        "cell-sim@<name>" row; repeatable/comma-separable
///   --device NAME        same, for a named preset (e.g. cell-16spe-512k)
///   --out FILE           write the table here      (default stdout)
///
/// The winner and per-backend scores also go to stderr for humans; stdout
/// (or --out) carries only the machine-readable table.  Exit 0 on success.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cell/device_model.h"
#include "core/spe_executor.h"
#include "likelihood/registry.h"
#include "support/error.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"shape-taxa", "shape-patterns", "shape-ncat", "mode",
                     "device-config", "device", "out"});

    // Referencing cell_executor_spec links core's SPE-factory registrar in,
    // so cell-sim is scored exactly as in the serving binary.
    (void)core::cell_executor_spec(core::Stage::kOffloadAll);

    lh::WorkloadShape shape;
    shape.taxa = static_cast<int>(opt.get_int("shape-taxa", 42));
    shape.patterns =
        static_cast<std::size_t>(opt.get_int("shape-patterns", 252));
    shape.ncat = static_cast<int>(opt.get_int("shape-ncat", 25));
    const std::string mode = opt.get("mode", "cat");
    if (mode == "gamma") {
      shape.mode = lh::RateMode::kGamma;
    } else if (mode != "cat") {
      throw Error("--mode must be cat|gamma");
    }
    shape.validate();

    std::vector<std::string> device_names;
    for (const std::string& path : opt.get_list("device-config"))
      device_names.push_back(cell::load_device_model_file(path).name);
    for (const std::string& name : opt.get_list("device"))
      device_names.push_back(cell::require_device_model(name).name);

    const lh::CalibrationTable table =
        device_names.empty() ? lh::calibrate(shape)
                             : lh::calibrate(shape, device_names);
    const lh::Backend winner = lh::choose_backend(shape, table);
    std::cerr << "shape: " << shape.describe() << "\n";
    for (const lh::CalibrationEntry& e : table.entries)
      std::cerr << (e.backend == winner.name ? "  * " : "    ") << e.backend
                << ": " << e.nanos_per_pattern << " ns/pattern\n";
    std::cerr << "winner: " << winner.name << " [" +
                     winner.tolerance.describe() + "]\n";

    const std::string text = table.to_string();
    if (opt.has("out")) {
      std::ofstream out(opt.get("out", ""));
      RXC_REQUIRE(out.good(), "cannot open --out file");
      out << text;
    } else {
      std::cout << text;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rxc-calibrate: " << e.what() << "\n";
    return 1;
  }
}
