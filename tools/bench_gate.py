#!/usr/bin/env python3
"""Perf gate over BENCH_kernels.json: the vectorized kernels must beat their
scalar twins by a floor ratio, so the regression that motivated the SIMD
rewrite (gather-heavy "vector" code slower than scalar) can never land
silently again.

Usage: tools/bench_gate.py [BENCH_kernels.json] [--min-speedup=1.5]
                           [--gradient=BENCH_schedule.json]
                           [--min-gradient-speedup=3.0]

The gate SKIPS (exit 0, with the reason on stdout) rather than fails when
the measurement cannot be trusted or is meaningless:
  - host_cores <= 1: shared single-core CI runners time-slice the bench
    against its own process noise; medians still swing well past the gate
    margin, so a verdict either way would be luck, not signal.
  - rxc_simd_level != avx2: runtime dispatch fell back (old CPU, or an
    RXC_SIMD cap), so "simd" and "scalar" run nearly the same code.
Both fields are recorded in the baseline's context block by tools/bench.sh
and bench_kernels itself — the gate never guesses at the environment.

--gradient additionally gates the all-branch gradient bench's NDJSON rows
(table "gradient" inside BENCH_schedule.json): one branch_gradient() sweep
must beat the N per-edge makenewz loops it replaces by
--min-gradient-speedup.  The cell-2007 row is DETERMINISTIC virtual cycles,
so it gates on every runner; wall-clock rows follow the host_cores <= 1
skip rule above (the host-info NDJSON line carries the core count).  A
false derivs_bitwise flag fails unconditionally — it means the fused
kernel diverged from the two-step path it must reproduce bit-for-bit.
"""

import json
import statistics
import sys

PAIRS = [
    ("BM_NewviewCatScalar", "BM_NewviewCatSimd"),
    ("BM_EvaluateCat", "BM_EvaluateCatSimd"),
    ("BM_SumtableCat", "BM_SumtableCatSimd"),
    ("BM_NewviewGammaScalarVsSimd/0", "BM_NewviewGammaScalarVsSimd/1"),
]


def median_time(benchmarks, name):
    times = [
        b["cpu_time"]
        for b in benchmarks
        if b["name"] == name and b.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        sys.exit(f"bench_gate: no runs named {name!r} in the baseline")
    return statistics.median(times)


def gate_gradient(path, min_speedup):
    """Gates the gradient bench rows in an NDJSON schedule baseline.
    Returns the number of failures (0 = all rows ok or skipped)."""
    host_cores = 0
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("table") == "host-info":
                host_cores = int(obj.get("host_cores", 0))
            elif obj.get("table") == "gradient":
                rows = obj.get("rows", [])
    if not rows:
        sys.exit(f"bench_gate: no gradient table in {path!r}")

    failed = 0
    for row in rows:
        case = row["case"]
        speedup = float(row["speedup_makenewz"])
        if not row.get("derivs_bitwise", False):
            print(f"FAIL: gradient/{case} derivs_bitwise=false (fused sweep "
                  "diverged from the per-edge two-step derivatives)")
            failed += 1
            continue
        if row["clock"] != "virtual_cycles" and host_cores <= 1:
            print(f"bench_gate: SKIP gradient/{case} - host_cores="
                  f"{host_cores} (wall clock on a single-core runner is "
                  "noise-dominated; the virtual-cycle row still gates)")
            continue
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{verdict}: gradient/{case} sweep {speedup:.2f}x vs per-edge "
              f"makenewz loops ({row['clock']}), floor {min_speedup}x")
        if speedup < min_speedup:
            failed += 1
    return failed


def main(argv):
    path = "BENCH_kernels.json"
    min_speedup = 1.5
    gradient_path = None
    min_gradient_speedup = 3.0
    for arg in argv[1:]:
        if arg.startswith("--min-speedup="):
            min_speedup = float(arg.split("=", 1)[1])
        elif arg.startswith("--gradient="):
            gradient_path = arg.split("=", 1)[1]
        elif arg.startswith("--min-gradient-speedup="):
            min_gradient_speedup = float(arg.split("=", 1)[1])
        else:
            path = arg

    gradient_failures = 0
    if gradient_path is not None:
        gradient_failures = gate_gradient(gradient_path, min_gradient_speedup)

    with open(path) as f:
        doc = json.load(f)
    context = doc.get("context", {})

    cores = int(context.get("host_cores", 0))
    if cores <= 1:
        print(f"bench_gate: SKIP - host_cores={cores} (single-core runner: "
              "timings are noise-dominated, gate verdict would be luck)")
        return 1 if gradient_failures else 0

    level = context.get("rxc_simd_level", "unknown")
    if level != "avx2":
        print(f"bench_gate: SKIP - rxc_simd_level={level} (no AVX2 dispatch, "
              "vector and scalar paths are not meaningfully different)")
        return 1 if gradient_failures else 0

    benchmarks = doc["benchmarks"]
    failed = False
    for scalar, simd in PAIRS:
        t_scalar = median_time(benchmarks, scalar)
        t_simd = median_time(benchmarks, simd)
        speedup = t_scalar / t_simd
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{verdict}: {simd} {speedup:.2f}x vs {scalar} "
              f"({t_simd:.0f} vs {t_scalar:.0f} ns), floor {min_speedup}x")
        if speedup < min_speedup:
            failed = True
    return 1 if failed or gradient_failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
