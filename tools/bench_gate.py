#!/usr/bin/env python3
"""Perf gate over BENCH_kernels.json: the vectorized kernels must beat their
scalar twins by a floor ratio, so the regression that motivated the SIMD
rewrite (gather-heavy "vector" code slower than scalar) can never land
silently again.

Usage: tools/bench_gate.py [BENCH_kernels.json] [--min-speedup=1.5]

The gate SKIPS (exit 0, with the reason on stdout) rather than fails when
the measurement cannot be trusted or is meaningless:
  - host_cores <= 1: shared single-core CI runners time-slice the bench
    against its own process noise; medians still swing well past the gate
    margin, so a verdict either way would be luck, not signal.
  - rxc_simd_level != avx2: runtime dispatch fell back (old CPU, or an
    RXC_SIMD cap), so "simd" and "scalar" run nearly the same code.
Both fields are recorded in the baseline's context block by tools/bench.sh
and bench_kernels itself — the gate never guesses at the environment.
"""

import json
import statistics
import sys

PAIRS = [
    ("BM_NewviewCatScalar", "BM_NewviewCatSimd"),
    ("BM_EvaluateCat", "BM_EvaluateCatSimd"),
    ("BM_SumtableCat", "BM_SumtableCatSimd"),
    ("BM_NewviewGammaScalarVsSimd/0", "BM_NewviewGammaScalarVsSimd/1"),
]


def median_time(benchmarks, name):
    times = [
        b["cpu_time"]
        for b in benchmarks
        if b["name"] == name and b.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        sys.exit(f"bench_gate: no runs named {name!r} in the baseline")
    return statistics.median(times)


def main(argv):
    path = "BENCH_kernels.json"
    min_speedup = 1.5
    for arg in argv[1:]:
        if arg.startswith("--min-speedup="):
            min_speedup = float(arg.split("=", 1)[1])
        else:
            path = arg

    with open(path) as f:
        doc = json.load(f)
    context = doc.get("context", {})

    cores = int(context.get("host_cores", 0))
    if cores <= 1:
        print(f"bench_gate: SKIP - host_cores={cores} (single-core runner: "
              "timings are noise-dominated, gate verdict would be luck)")
        return 0

    level = context.get("rxc_simd_level", "unknown")
    if level != "avx2":
        print(f"bench_gate: SKIP - rxc_simd_level={level} (no AVX2 dispatch, "
              "vector and scalar paths are not meaningfully different)")
        return 0

    benchmarks = doc["benchmarks"]
    failed = False
    for scalar, simd in PAIRS:
        t_scalar = median_time(benchmarks, scalar)
        t_simd = median_time(benchmarks, simd)
        speedup = t_scalar / t_simd
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(f"{verdict}: {simd} {speedup:.2f}x vs {scalar} "
              f"({t_simd:.0f} vs {t_scalar:.0f} ns), floor {min_speedup}x")
        if speedup < min_speedup:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
