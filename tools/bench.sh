#!/usr/bin/env bash
# Runs the performance benches and writes the committed baselines:
#
#   BENCH_kernels.json   — google-benchmark JSON from bench_kernels (host
#                          wall time per kernel variant)
#   BENCH_schedule.json  — NDJSON, one object per table/case: virtual cycles
#                          per stage/policy plus wall seconds, from the
#                          §5.2 table benches, the parallel-backend bench,
#                          the serving-throughput bench and the all-branch
#                          gradient bench
#
# Wall-clock numbers are meaningless without the machine they came from, so
# both baselines carry the recording host's core count and the
# RXC_HOST_THREADS override in effect ("auto" when unset): BENCH_kernels.json
# in its google-benchmark context block, BENCH_schedule.json as a leading
# host-info NDJSON line.
#
# Usage: tools/bench.sh [--smoke] [--build-dir DIR]
#
#   --smoke      shrunken workloads for CI gating: bench_parallel --smoke
#                plus a short-min-time kernel pass.  The full (default) mode
#                regenerates the committed baselines.
#   --build-dir  existing CMake build tree (default: build, configured as
#                Release if missing).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j \
  --target bench_kernels bench_table7 bench_table8 bench_parallel \
  bench_serve bench_gradient

# The wall-time environment the baselines were recorded under.
HOST_CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
HOST_THREADS=${RXC_HOST_THREADS:-auto}
# The virtual machine the cycle numbers describe.  The benches build their
# simulated Cells from the default DeviceModel, i.e. the cell-2007 preset;
# stamping the name makes baselines from different device models
# distinguishable once benches grow --device-config flags.
DEVICE_MODEL=${RXC_DEVICE_MODEL:-cell-2007}

# --- kernels: real host wall time per kernel variant ----------------------
# (fast enough to run in full even for --smoke; min-time flags differ across
# google-benchmark versions, so we don't pass any)
"$BUILD"/bench/bench_kernels \
  --benchmark_out=BENCH_kernels.json --benchmark_out_format=json \
  --benchmark_context=host_cores="$HOST_CORES" \
  --benchmark_context=rxc_host_threads="$HOST_THREADS" \
  --benchmark_context=device_model="$DEVICE_MODEL"

# --- schedule: virtual time per stage/policy + parallel-backend wall time -
# Each bench appends NDJSON lines to its own temp file; concatenate so a
# partial failure never leaves a truncated baseline behind.
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ "$SMOKE" = 1 ]; then
  "$BUILD"/bench/bench_parallel --smoke --json="$TMP/parallel.json"
  "$BUILD"/bench/bench_serve --smoke --json="$TMP/serve.json"
  "$BUILD"/bench/bench_gradient --smoke --json="$TMP/gradient.json"
else
  "$BUILD"/bench/bench_table7 --json="$TMP/table7.json"
  "$BUILD"/bench/bench_table8 --json="$TMP/table8.json"
  "$BUILD"/bench/bench_parallel --json="$TMP/parallel.json"
  "$BUILD"/bench/bench_serve --json="$TMP/serve.json"
  "$BUILD"/bench/bench_gradient --json="$TMP/gradient.json"
fi
printf '{"table":"host-info","host_cores":%s,"rxc_host_threads":"%s","device_model":"%s"}\n' \
  "$HOST_CORES" "$HOST_THREADS" "$DEVICE_MODEL" > BENCH_schedule.json
cat "$TMP"/*.json >> BENCH_schedule.json

echo "wrote BENCH_kernels.json and BENCH_schedule.json"
