#!/usr/bin/env bash
# CI smoke for the serving layer: pushes a mixed-priority NDJSON batch
# through rxc-serve against a 2-device simulated-Cell pool with one
# injected device fault armed and one sub-deadline job, then asserts the
# service invariants on the output records:
#
#   * every submitted job reached a terminal state (no queue leak — also
#     enforced by rxc-serve's own exit status),
#   * no job FAILED: the injected fault cost a retry, not a job,
#   * the armed fault actually fired (total retries >= 1),
#   * exactly the sub-deadline job expired, everything else completed
#     with a likelihood and a tree.
#
# Usage: tools/serve_smoke.sh [--build-dir DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

cmake --build "$BUILD" -j --target rxc-serve

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# 24 tiny jobs over 4 workload variants and 3 priority classes, plus one
# job that cannot possibly meet its deadline.  ~40 checkpoint steps across
# 2 devices guarantees device 0 reaches its armed fault (fires on step 2).
{
  for i in $(seq 0 23); do
    prio=$(( (i % 3) * 4 ))
    if [ $((i % 2)) = 0 ]; then inf=1 bs=0; else inf=0 bs=2; fi
    printf '{"id":"job-%d","priority":%d,"sim_taxa":6,"sim_sites":60,"sim_seed":%d,"model":"jc","categories":2,"inferences":%d,"bootstraps":%d,"max_rounds":1}\n' \
      "$i" "$prio" $((100 + i % 4)) "$inf" "$bs"
  done
  printf '{"id":"deadline-job","priority":9,"sim_taxa":6,"sim_sites":60,"model":"jc","categories":2,"inferences":0,"bootstraps":2,"max_rounds":1,"deadline_ms":0.01}\n'
} > "$TMP/jobs.ndjson"

"$BUILD"/tools/rxc-serve \
  --jobs "$TMP/jobs.ndjson" --out "$TMP/results.ndjson" \
  --devices 2 --kind spe --queue-capacity 8 \
  --fault-device 0 --fault-after 2 --summary

python3 - "$TMP/results.ndjson" <<'EOF'
import json, sys

records = [json.loads(line) for line in open(sys.argv[1])]
by_state = {}
retries = 0
ok = True
for r in records:
    by_state.setdefault(r["state"], []).append(r["id"])
    retries += r.get("retries", 0)
    if r["state"] == "completed" and not (
        "best_lnl" in r and r.get("best_newick")
    ):
        print(f"FAIL: {r['id']} completed without a result payload")
        ok = False

print(f"{len(records)} records: " +
      ", ".join(f"{s}={len(ids)}" for s, ids in sorted(by_state.items())) +
      f", total retries={retries}")

if len(records) != 25:
    print("FAIL: expected 25 result records")
    ok = False
if sorted(by_state) != ["completed", "expired"]:
    print("FAIL: expected only completed/expired states")
    ok = False
if by_state.get("expired") != ["deadline-job"]:
    print("FAIL: exactly deadline-job should expire")
    ok = False
if len(by_state.get("completed", [])) != 24:
    print("FAIL: all 24 regular jobs should complete")
    ok = False
if retries < 1:
    print("FAIL: the armed device fault never fired")
    ok = False
sys.exit(0 if ok else 1)
EOF

echo "serve smoke: OK"
