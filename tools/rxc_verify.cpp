/// rxc-verify — static admission check for a schedule × device pair.
/// Extracts the abstract Program the SPE executor would run for the given
/// schedule configuration (core::extract_program), verifies it against each
/// listed device model (analysis::verify_program), and emits the
/// StaticReport verdicts as JSON — no simulation, no workload, just the
/// proof.  The exit status encodes the verdict so CI can gate on it.
///
///   rxc-verify                                   # stage 7 on every preset
///   rxc-verify --device-config my-machine.json --stage 4 --llp-ways 2
///   rxc-verify --stage all --out report.json     # sweep all eight stages
///
/// Options:
///   --device NAME        preset or registered model (repeatable)
///   --device-config FILE JSON device description; repeatable
///                        (default when neither is given: every preset)
///   --stage N|all        core::Stage ordinal 0..7, or every stage
///                        (default 7)
///   --llp-ways N|max     cooperating SPEs per offloaded loop; "max" uses
///                        each device's full SPE count  (default 1)
///   --patterns N         alignment patterns            (default 256)
///   --categories N       rate categories               (default 4)
///   --mode cat|gamma     rate heterogeneity model      (default gamma)
///   --site-lnl           evaluate streams per-site lnl back
///   --newton N           Newton iterations in the compound (default 2)
///   --gradient N         edge_gradient sweep calls after the compound
///                        (default 0: historical program shape)
///   --strip-bytes N      strip buffer budget           (default 2048)
///   --batch N            verify a newview_batch program of N tasks
///                        instead of the canonical pipeline
///   --out FILE           JSON report                   (default stdout)
///
/// Exit status: 0 when every (stage, device) pair verifies clean, 1 when
/// any report carries violations, 2 on usage or configuration errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/static_verifier.h"
#include "cell/device_model.h"
#include "core/scheduler.h"
#include "support/error.h"
#include "support/json.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"device", "device-config", "stage", "llp-ways",
                     "patterns", "categories", "mode", "site-lnl", "newton",
                     "gradient", "strip-bytes", "batch", "out"});

    std::vector<cell::DeviceModel> models;
    for (const std::string& name : opt.get_list("device"))
      models.push_back(cell::require_device_model(name));
    for (const std::string& path : opt.get_list("device-config"))
      models.push_back(cell::load_device_model_file(path));
    if (models.empty()) models = cell::device_presets();

    std::vector<core::Stage> stages;
    const std::string stage_arg = opt.get("stage", "7");
    if (stage_arg == "all") {
      for (int s = 0; s <= static_cast<int>(core::Stage::kOffloadAll); ++s)
        stages.push_back(static_cast<core::Stage>(s));
    } else {
      const std::int64_t s = opt.get_int("stage", 7);
      RXC_REQUIRE(s >= 0 && s <= static_cast<int>(core::Stage::kOffloadAll),
                  "--stage must be 0..7 or 'all'");
      stages.push_back(static_cast<core::Stage>(s));
    }

    core::ProgramShape shape;
    shape.patterns = static_cast<std::size_t>(opt.get_int("patterns", 256));
    shape.categories = static_cast<int>(opt.get_int("categories", 4));
    const std::string mode = opt.get("mode", "gamma");
    if (mode == "cat") {
      shape.cat_mode = true;
    } else if (mode != "gamma") {
      throw Error("--mode must be cat|gamma");
    }
    shape.site_lnl = opt.get_bool("site-lnl", false);
    shape.newton_iters = static_cast<int>(opt.get_int("newton", 2));
    shape.gradient_edges = static_cast<int>(opt.get_int("gradient", 0));
    const auto strip_bytes =
        static_cast<std::size_t>(opt.get_int("strip-bytes", 2048));
    const std::int64_t batch = opt.get_int("batch", 0);
    const std::string ways_arg = opt.get("llp-ways", "1");

    JsonWriter w;
    w.begin_object();
    w.key("reports").begin_array();
    std::uint64_t violations = 0;
    for (const cell::DeviceModel& model : models) {
      const int ways = ways_arg == "max"
                           ? model.spe_count
                           : static_cast<int>(opt.get_int("llp-ways", 1));
      for (core::Stage stage : stages) {
        const cell::Program program =
            batch > 0 ? core::extract_batch_program(
                            model, stage, static_cast<std::size_t>(batch),
                            ways, shape, strip_bytes)
                      : core::extract_program(model, stage, ways, shape,
                                              strip_bytes);
        std::string desc = "stage=" + std::to_string(static_cast<int>(stage)) +
                           " llp_ways=" + std::to_string(ways) +
                           " patterns=" + std::to_string(shape.patterns) +
                           " mode=" + (shape.cat_mode ? "cat" : "gamma");
        if (batch > 0) desc += " batch=" + std::to_string(batch);
        if (shape.gradient_edges > 0)
          desc += " gradient=" + std::to_string(shape.gradient_edges);
        const analysis::StaticReport report =
            analysis::verify_program(program, model, desc);
        violations += report.total;
        w.raw(report.to_string());
        std::fprintf(stderr,
                     "rxc-verify: %-18s stage=%d ways=%d  %s  "
                     "(peak ls %llu B, tag depth %llu)\n",
                     model.name.c_str(), static_cast<int>(stage), ways,
                     report.ok() ? "OK" : "VIOLATIONS",
                     static_cast<unsigned long long>(
                         report.stats.peak_ls_bytes),
                     static_cast<unsigned long long>(
                         report.stats.peak_tag_depth));
        if (!report.ok()) std::fputs(report.summary().c_str(), stderr);
      }
    }
    w.end_array();
    w.kv("total_violations", violations);
    w.end_object();

    if (opt.has("out")) {
      std::ofstream out(opt.get("out", ""));
      RXC_REQUIRE(out.good(), "cannot open --out file");
      out << w.str() << "\n";
    } else {
      std::cout << w.str() << "\n";
    }
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rxc-verify: error: %s\n", e.what());
    return 2;
  }
}
