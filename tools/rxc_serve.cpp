/// rxc-serve — NDJSON front end for the serving layer (src/serve): job
/// specs in (one JSON object per line), result records out (same shape).
///
///   rxc-serve --jobs jobs.ndjson --devices 4 --kind spe --out results.ndjson
///   printf '{"id":"a","sim_taxa":6,"sim_sites":60,"max_rounds":1}\n' | rxc-serve
///
/// Options:
///   --jobs FILE            NDJSON job specs (default: stdin)
///   --out FILE             NDJSON results (default: stdout)
///   --devices N            pool size (default 2)
///   --kind spe|host|threaded|auto  device backend (default spe); auto
///                          calibrates every registered backend against the
///                          --shape-* axes and leases the fastest
///   --stage N              kSpe: core::Stage ordinal 0..7 (default 7)
///   --device-config FILE   simulated-Cell device model (JSON, see
///                          data/devices/).  Repeatable (and comma-
///                          separable): N configs round-robin across the
///                          --devices pool slots, so a pool can lease a
///                          heterogeneous mix.  Implies --kind spe.  Jobs
///                          may pin a model by name via their "device"
///                          field.
///   --shape-taxa N --shape-patterns N --shape-ncat N
///                          --kind auto: the job shape to calibrate for
///                          (defaults 42 / 252 / 25, the paper's 42_SC)
///   --queue-capacity N     admission bound (default 64)
///   --max-retries N        fault retries per job (default 2)
///   --no-preempt           disable checkpoint-boundary preemption
///   --submit-retries N     backpressure: attempts per job before giving
///                          up and reporting queue-full (default 200)
///   --fault-device I --fault-after N
///                          arm one injected device fault (resilience
///                          smoke; fires on that device's Nth step)
///   --summary              print a metrics summary to stderr at exit
///
/// Exit status: 0 when every submitted job reached a terminal state and
/// none FAILED; 1 on failed jobs, queue leaks, or malformed input lines
/// (malformed lines still produce an error record in the output).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/spe_executor.h"
#include "obs/obs.h"
#include "serve/device_pool.h"
#include "serve/ndjson.h"
#include "serve/server.h"
#include "support/json.h"
#include "support/options.h"

namespace {

std::vector<rxc::lh::ExecutorSpec> device_specs(
    const std::string& kind, int stage, int devices,
    const rxc::lh::WorkloadShape& shape,
    const std::vector<std::string>& config_paths) {
  using namespace rxc;
  RXC_REQUIRE(devices >= 1, "--devices must be >= 1");
  if (!config_paths.empty()) {
    // Heterogeneous simulated-Cell pool: one model per config file,
    // round-robined across the pool slots.
    RXC_REQUIRE(kind == "spe",
                "--device-config describes simulated-Cell devices; it "
                "cannot be combined with --kind " + kind);
    std::vector<cell::DeviceModel> models;
    for (const std::string& path : config_paths)
      models.push_back(cell::load_device_model_file(path));
    std::vector<lh::ExecutorSpec> specs;
    for (int i = 0; i < devices; ++i) {
      lh::ExecutorSpec spec =
          core::cell_executor_spec(static_cast<core::Stage>(stage));
      spec.cell().device = models[static_cast<std::size_t>(i) % models.size()];
      specs.push_back(std::move(spec));
    }
    return specs;
  }
  lh::ExecutorSpec spec;
  if (kind == "auto") {
    return serve::auto_device_specs(shape, devices);
  } else if (kind == "spe") {
    spec = core::cell_executor_spec(static_cast<core::Stage>(stage));
  } else if (kind == "threaded") {
    lh::ThreadedOptions topt;
    topt.threads = 2;
    spec = lh::ExecutorSpec::threaded_spec(topt);
  } else if (kind == "host") {
    spec = lh::ExecutorSpec::host_spec();
  } else {
    throw Error("--kind must be spe|host|threaded|auto");
  }
  return std::vector<lh::ExecutorSpec>(static_cast<std::size_t>(devices),
                                       spec);
}

std::string error_record(const std::string& id, const std::string& what) {
  rxc::JsonWriter w;
  w.begin_object();
  w.kv("id", id);
  w.kv("state", "rejected");
  w.kv("error", what);
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    obs::init_from_env();
    const Options opt(argc, argv);
    opt.check_known({"jobs", "out", "devices", "kind", "stage",
                     "device-config", "queue-capacity", "max-retries",
                     "no-preempt", "submit-retries", "fault-device",
                     "fault-after", "summary", "shape-taxa",
                     "shape-patterns", "shape-ncat"});

    serve::ServerConfig cfg;
    cfg.queue_capacity =
        static_cast<std::size_t>(opt.get_int("queue-capacity", 64));
    cfg.max_retries = static_cast<int>(opt.get_int("max-retries", 2));
    cfg.preempt = !opt.get_bool("no-preempt", false);

    lh::WorkloadShape shape;
    shape.taxa = static_cast<int>(opt.get_int("shape-taxa", 42));
    shape.patterns =
        static_cast<std::size_t>(opt.get_int("shape-patterns", 252));
    shape.ncat = static_cast<int>(opt.get_int("shape-ncat", 25));
    serve::Server server(
        device_specs(opt.get("kind", "spe"),
                     static_cast<int>(opt.get_int("stage", 7)),
                     static_cast<int>(opt.get_int("devices", 2)), shape,
                     opt.get_list("device-config")),
        cfg);

    if (opt.has("fault-device")) {
      const int dev = static_cast<int>(opt.get_int("fault-device", 0));
      RXC_REQUIRE(dev >= 0 && dev < server.devices().size(),
                  "--fault-device out of range");
      server.devices().device(dev).arm_fault(
          cell::Fault::kDmaOversize,
          static_cast<int>(opt.get_int("fault-after", 1)));
    }

    // --- read + submit -----------------------------------------------------
    std::ifstream jobs_file;
    std::istream* in = &std::cin;
    if (opt.has("jobs")) {
      jobs_file.open(opt.get("jobs", ""));
      RXC_REQUIRE(jobs_file.good(), "cannot open --jobs file");
      in = &jobs_file;
    }

    const int submit_retries =
        static_cast<int>(opt.get_int("submit-retries", 200));
    std::vector<std::string> extra_records;  // rejections the server can't track
    std::size_t submitted = 0, line_no = 0;
    bool input_errors = false;
    std::string line;
    while (std::getline(*in, line)) {
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      serve::JobSpec spec;
      try {
        spec = serve::job_spec_from_json(line);
      } catch (const Error& e) {
        extra_records.push_back(
            error_record("line-" + std::to_string(line_no), e.what()));
        input_errors = true;
        continue;
      }
      // Backpressure loop: a full queue is a signal to wait, not an error —
      // bounded so a wedged server still terminates the client.
      serve::SubmitStatus st = serve::SubmitStatus::kQueueFull;
      for (int attempt = 0; attempt < submit_retries; ++attempt) {
        st = server.submit(spec);
        if (st != serve::SubmitStatus::kQueueFull) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (st == serve::SubmitStatus::kAccepted ||
          st == serve::SubmitStatus::kRejected) {
        ++submitted;  // both leave a result record in the server
      } else {
        extra_records.push_back(
            error_record(spec.id, std::string("submit: ") +
                                      serve::submit_status_name(st)));
        input_errors = true;
      }
    }

    server.join();

    // --- report ------------------------------------------------------------
    std::ofstream out_file;
    std::ostream* out = &std::cout;
    if (opt.has("out")) {
      out_file.open(opt.get("out", ""));
      RXC_REQUIRE(out_file.good(), "cannot open --out file");
      out = &out_file;
    }
    const auto results = server.results();
    std::size_t terminal = 0, failed = 0;
    for (const auto& r : results) {
      *out << serve::job_result_to_json(r) << '\n';
      if (serve::job_state_terminal(r.state)) ++terminal;
      if (r.state == serve::JobState::kFailed) ++failed;
    }
    for (const auto& rec : extra_records) *out << rec << '\n';

    const bool leak = terminal != results.size() ||
                      results.size() != submitted ||
                      server.queue_depth() != 0;
    std::fprintf(stderr,
                 "rxc-serve: %zu submitted, %zu records (%zu terminal, %zu "
                 "failed), queue depth %zu\n",
                 submitted, results.size(), terminal, failed,
                 server.queue_depth());
    if (opt.get_bool("summary", false))
      std::fputs(obs::summary_text().c_str(), stderr);
    if (leak) std::fputs("rxc-serve: QUEUE LEAK\n", stderr);
    return (leak || failed > 0 || input_errors) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rxc-serve: error: %s\n", e.what());
    return 2;
  }
}
