/// rxc-sweep — one workload, many virtual machines.  Runs a single
/// phylogenetic workload on the simulated Cell under every listed device
/// model IN ONE PROCESS and emits a JSON table comparing them: virtual
/// cycles, DMA stalls, SPE occupancy, the functional log-likelihood, and a
/// `verified` column carrying the static admission verdict (rxc-verify's
/// analysis::verify_program over the extracted schedule program) per config.  Because the device description is data (cell::DeviceModel), a
/// what-if architecture sweep — more SPEs, bigger local stores, a faster
/// EIB — is a list of configs, not a recompile.
///
///   rxc-sweep                            # the three built-in presets
///   rxc-sweep --device cell-2007,cell-fast-eib
///   rxc-sweep --device-config my-machine.json --out sweep.json
///
/// Options:
///   --device NAME        preset or registered model to sweep (repeatable
///                        and comma-separable)
///   --device-config FILE JSON device description (DeviceModel::to_string
///                        format, see data/devices/); repeatable
///                        (default when neither is given: every preset)
///   --taxa N --sites N --seed N   synthetic workload (default 12/400/7)
///   --mode cat|gamma     rate heterogeneity model  (default cat)
///   --categories N       rate categories           (default 4)
///   --tasks N            inference tasks           (default 1)
///   --scheduler naive|edtlp|llp|mgps  schedule model (default edtlp)
///   --stage N            core::Stage ordinal 0..7  (default 7)
///   --out FILE           JSON report               (default stdout)
///
/// The numerics contract across the sweep: every row reports the same
/// log-likelihoods bitwise (strip sizes, not machine geometry, shape the
/// summation order), and the report carries "lnl_identical" so CI can
/// assert it.  Exit 0 on success with identical lnls, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/static_verifier.h"
#include "cell/device_model.h"
#include "core/port.h"
#include "core/scheduler.h"
#include "seq/seqgen.h"
#include "support/error.h"
#include "support/json.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace rxc;
  try {
    const Options opt(argc, argv);
    opt.check_known({"device", "device-config", "taxa", "sites", "seed",
                     "mode", "categories", "tasks", "scheduler", "stage",
                     "out"});

    // --- the device list ---------------------------------------------------
    std::vector<cell::DeviceModel> models;
    for (const std::string& name : opt.get_list("device"))
      models.push_back(cell::require_device_model(name));
    for (const std::string& path : opt.get_list("device-config"))
      models.push_back(cell::load_device_model_file(path));
    if (models.empty()) models = cell::device_presets();

    // --- the one workload --------------------------------------------------
    seq::SimOptions sim;
    sim.ntaxa = static_cast<std::size_t>(opt.get_int("taxa", 12));
    sim.nsites = static_cast<std::size_t>(opt.get_int("sites", 400));
    sim.seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));
    const auto pa =
        seq::PatternAlignment::compress(seq::simulate_alignment(sim).alignment);

    core::CellRunConfig base;
    base.stage = static_cast<core::Stage>(opt.get_int("stage", 7));
    const std::string sched = opt.get("scheduler", "edtlp");
    if (sched == "naive") {
      base.scheduler = core::SchedulerModel::kNaiveMpi;
      base.workers = 2;
    } else if (sched == "edtlp") {
      base.scheduler = core::SchedulerModel::kEdtlp;
    } else if (sched == "llp") {
      base.scheduler = core::SchedulerModel::kLlp;
    } else if (sched == "mgps") {
      base.scheduler = core::SchedulerModel::kMgps;
    } else {
      throw Error("--scheduler must be naive|edtlp|llp|mgps");
    }
    const std::string mode = opt.get("mode", "cat");
    if (mode == "gamma") {
      base.engine.mode = lh::RateMode::kGamma;
    } else if (mode != "cat") {
      throw Error("--mode must be cat|gamma");
    }
    base.engine.categories = static_cast<int>(opt.get_int("categories", 4));
    const auto tasks = search::make_analysis(
        static_cast<std::size_t>(opt.get_int("tasks", 1)), 0, 1);

    // --- sweep -------------------------------------------------------------
    JsonWriter w;
    w.begin_object();
    w.key("workload").begin_object();
    w.kv("taxa", static_cast<std::uint64_t>(sim.ntaxa));
    w.kv("sites", static_cast<std::uint64_t>(sim.nsites));
    w.kv("patterns", static_cast<std::uint64_t>(pa.pattern_count()));
    w.kv("tasks", static_cast<std::uint64_t>(tasks.size()));
    w.kv("scheduler", sched);
    w.kv("stage", static_cast<int>(base.stage));
    w.end_object();
    w.key("rows").begin_array();

    std::vector<double> first_lnls;
    bool lnl_identical = true;
    for (const cell::DeviceModel& model : models) {
      core::CellRunConfig cfg = base;
      cfg.device = model;
      if (cfg.scheduler == core::SchedulerModel::kLlp)
        cfg.llp_ways = model.spe_count;

      // Static admission verdict for the same schedule × device pair: the
      // abstract program the executor would run, proven against the model
      // (see rxc-verify for the standalone tool).
      core::ProgramShape shape;
      shape.patterns = pa.pattern_count();
      shape.categories = base.engine.categories;
      shape.cat_mode = mode != "gamma";
      const analysis::StaticReport verdict = analysis::verify_program(
          core::extract_program(model, cfg.stage, cfg.llp_ways, shape), model,
          "sweep stage=" + std::to_string(static_cast<int>(cfg.stage)) +
              " llp_ways=" + std::to_string(cfg.llp_ways));

      const core::CellRunResult run = core::run_on_cell(pa, cfg, tasks);

      if (first_lnls.empty()) {
        first_lnls = run.task_log_likelihoods;
      } else if (run.task_log_likelihoods != first_lnls) {
        lnl_identical = false;
      }
      const double occupancy =
          run.schedule.makespan > 0
              ? run.schedule.spe_busy /
                    (run.schedule.makespan * model.spe_count)
              : 0.0;
      w.begin_object();
      w.kv("device", model.name);
      w.kv("spe_count", model.spe_count);
      w.kv("local_store_bytes",
           static_cast<std::uint64_t>(model.local_store_bytes));
      w.kv("makespan_cycles", static_cast<double>(run.schedule.makespan));
      w.kv("virtual_seconds", run.virtual_seconds);
      w.kv("ppe_busy_cycles", static_cast<double>(run.schedule.ppe_busy));
      w.kv("spe_busy_cycles", static_cast<double>(run.schedule.spe_busy));
      w.kv("dma_stall_cycles", static_cast<double>(run.dma_stall_cycles));
      w.kv("spe_occupancy", occupancy);
      w.kv("signaled_offloads", run.schedule.signaled_offloads);
      w.kv("log_likelihood", run.task_log_likelihoods.at(0));
      w.kv("verified", verdict.ok());
      w.kv("static_violations", verdict.total);
      w.end_object();
      std::fprintf(stderr, "rxc-sweep: %-18s %2d SPEs  %12.0f cycles  "
                   "occupancy %.3f  %s\n",
                   model.name.c_str(), model.spe_count,
                   static_cast<double>(run.schedule.makespan), occupancy,
                   verdict.ok() ? "verified" : "UNVERIFIED");
      if (!verdict.ok()) std::fputs(verdict.summary().c_str(), stderr);
    }
    w.end_array();
    w.kv("lnl_identical", lnl_identical);
    w.end_object();

    if (opt.has("out")) {
      std::ofstream out(opt.get("out", ""));
      RXC_REQUIRE(out.good(), "cannot open --out file");
      out << w.str() << "\n";
    } else {
      std::cout << w.str() << "\n";
    }
    if (!lnl_identical)
      std::fputs("rxc-sweep: LOG-LIKELIHOODS DIVERGED ACROSS DEVICES\n",
                 stderr);
    return lnl_identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rxc-sweep: error: %s\n", e.what());
    return 2;
  }
}
