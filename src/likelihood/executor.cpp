#include "likelihood/executor.h"

#include <mutex>

#include "likelihood/threaded_executor.h"
#include "obs/obs.h"
#include "support/error.h"

namespace rxc::lh {

// --- task validation --------------------------------------------------------

void TaskContext::validate() const {
  RXC_REQUIRE(es != nullptr, "task: missing eigensystem");
  RXC_REQUIRE(rates != nullptr, "task: missing category rates");
  RXC_REQUIRE(ncat >= 1 && ncat <= kMaxRateCategories,
              "task: ncat must be in [1, " +
                  std::to_string(kMaxRateCategories) + "], got " +
                  std::to_string(ncat));
  RXC_REQUIRE(mode != RateMode::kGamma || cat == nullptr,
              "task: per-pattern categories are a CAT-mode concept; the "
              "GAMMA kernels would silently ignore them");
}

namespace {

/// Exactly one of tip/partial must be populated for a newview/evaluate
/// child slot.
void check_child(const TipView& tip, const PartialView& partial,
                 const char* which) {
  RXC_REQUIRE(static_cast<bool>(tip) != static_cast<bool>(partial),
              std::string("task: child ") + which +
                  " must be exactly one of tip or partial");
}

}  // namespace

void NewviewTask::validate() const {
  ctx.validate();
  RXC_REQUIRE(np > 0, "newview: empty pattern range");
  check_child(tip1, partial1, "1");
  check_child(tip2, partial2, "2");
  RXC_REQUIRE(out != nullptr && scale_out != nullptr,
              "newview: missing output buffers");
}

void EvaluateTask::validate() const {
  ctx.validate();
  RXC_REQUIRE(np > 0, "evaluate: empty pattern range");
  check_child(tip1, partial1, "1");
  RXC_REQUIRE(static_cast<bool>(partial2), "evaluate: side 2 must be inner");
  RXC_REQUIRE(weights != nullptr, "evaluate: missing pattern weights");
}

void SumtableTask::validate() const {
  ctx.validate();
  RXC_REQUIRE(np > 0, "sumtable: empty pattern range");
  check_child(tip1, partial1, "1");
  RXC_REQUIRE(static_cast<bool>(partial2), "sumtable: side 2 must be inner");
  RXC_REQUIRE(out != nullptr, "sumtable: missing output buffer");
}

void NrTask::validate() const {
  ctx.validate();
  RXC_REQUIRE(np > 0, "nr_derivatives: empty pattern range");
  RXC_REQUIRE(sumtable != nullptr && weights != nullptr,
              "nr_derivatives: missing sumtable/weights");
}

void EdgeGradientTask::validate() const {
  ctx.validate();
  RXC_REQUIRE(np > 0, "edge_gradient: empty pattern range");
  check_child(tip1, partial1, "1");
  RXC_REQUIRE(static_cast<bool>(partial2),
              "edge_gradient: side 2 must be inner");
  RXC_REQUIRE(weights != nullptr, "edge_gradient: missing pattern weights");
  RXC_REQUIRE(t >= kMinBranch && t <= kMaxBranch,
              "edge_gradient: branch length out of range");
}

// --- host executor ----------------------------------------------------------

HostExecutor::HostExecutor(KernelConfig config) : config_(config) {}

double* HostExecutor::pmat_scratch(int ncat) {
  const std::size_t need = 2 * static_cast<std::size_t>(ncat) * 16;
  if (pmat_.size() < need) pmat_.resize(need);
  return pmat_.data();
}

void HostExecutor::newview(const NewviewTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  double* pm = pmat_scratch(ctx.ncat);
  double* pm2 = pm + static_cast<std::size_t>(ctx.ncat) * 16;
  std::uint64_t exp_calls = build_pmatrices(*ctx.es, ctx.rates, ctx.ncat,
                                            task.brlen1, config_.exp_fn, pm);
  exp_calls += build_pmatrices(*ctx.es, ctx.rates, ctx.ncat, task.brlen2,
                               config_.exp_fn, pm2);
  counters_.exp_calls += exp_calls;
  counters_.pmatrix_builds += 2;

  NewviewArgs args;
  args.pmat1 = pm;
  args.pmat2 = pm2;
  args.ncat = ctx.ncat;
  args.cat = ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1.codes;
  args.partial1 = task.partial1.values;
  args.scale1 = task.partial1.scale;
  args.tip2 = task.tip2.codes;
  args.partial2 = task.partial2.values;
  args.scale2 = task.partial2.scale;
  args.out = task.out;
  args.scale_out = task.scale_out;
  args.scaling = config_.scaling;

  std::uint64_t scale_events;
  if (ctx.mode == RateMode::kCat) {
    scale_events = config_.simd ? newview_cat_simd(args) : newview_cat(args);
  } else {
    scale_events =
        config_.simd ? newview_gamma_simd(args) : newview_gamma(args);
  }
  counters_.scale_events += scale_events;
  ++counters_.newview_calls;
  counters_.newview_patterns += task.np;

  static obs::Counter& calls = obs::counter("kernel.newview.calls");
  static obs::Counter& patterns = obs::counter("kernel.newview.patterns");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  static obs::Counter& scales = obs::counter("kernel.scale_events");
  calls.add();
  patterns.add(task.np);
  exps.add(exp_calls);
  scales.add(scale_events);
}

double HostExecutor::evaluate(const EvaluateTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  double* pm = pmat_scratch(ctx.ncat);
  const std::uint64_t exp_calls = build_pmatrices(
      *ctx.es, ctx.rates, ctx.ncat, task.brlen, config_.exp_fn, pm);
  counters_.exp_calls += exp_calls;
  ++counters_.pmatrix_builds;

  EvaluateArgs args;
  args.pmat = pm;
  args.freqs = ctx.es->freqs.data();
  args.ncat = ctx.ncat;
  args.cat = ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1.codes;
  args.partial1 = task.partial1.values;
  args.scale1 = task.partial1.scale;
  args.partial2 = task.partial2.values;
  args.scale2 = task.partial2.scale;
  args.weights = task.weights;
  args.site_lnl_out = task.site_lnl_out;

  ++counters_.evaluate_calls;
  static obs::Counter& calls = obs::counter("kernel.evaluate.calls");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  calls.add();
  exps.add(exp_calls);
  if (ctx.mode == RateMode::kCat)
    return config_.simd ? evaluate_cat_simd(args) : evaluate_cat(args);
  return config_.simd ? evaluate_gamma_simd(args) : evaluate_gamma(args);
}

void HostExecutor::sumtable(const SumtableTask& task) {
  task.validate();
  SumtableArgs args;
  args.es = task.ctx.es;
  args.ncat = task.ctx.ncat;
  args.np = task.np;
  args.tip1 = task.tip1.codes;
  args.partial1 = task.partial1.values;
  args.partial2 = task.partial2.values;
  args.out = task.out;
  ++counters_.sumtable_calls;
  static obs::Counter& calls = obs::counter("kernel.sumtable.calls");
  calls.add();
  if (task.ctx.mode == RateMode::kCat) {
    config_.simd ? make_sumtable_cat_simd(args) : make_sumtable_cat(args);
  } else {
    config_.simd ? make_sumtable_gamma_simd(args)
                 : make_sumtable_gamma(args);
  }
}

NrResult HostExecutor::nr_derivatives(const NrTask& task) {
  task.validate();
  NrArgs args;
  args.sumtable = task.sumtable;
  args.lambda = task.ctx.es->lambda.data();
  args.rates = task.ctx.rates;
  args.ncat = task.ctx.ncat;
  args.cat = task.ctx.cat;
  args.np = task.np;
  args.weights = task.weights;
  args.t = task.t;
  args.exp_fn = config_.exp_fn;
  ++counters_.nr_calls;
  const NrResult result = task.ctx.mode == RateMode::kCat
                              ? nr_derivatives_cat(args)
                              : nr_derivatives_gamma(args);
  counters_.exp_calls += result.exp_calls;
  static obs::Counter& calls = obs::counter("kernel.nr.calls");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  calls.add();
  exps.add(result.exp_calls);
  return result;
}

NrResult HostExecutor::edge_gradient(const EdgeGradientTask& task) {
  task.validate();
  EdgeGradientArgs args;
  args.es = task.ctx.es;
  args.rates = task.ctx.rates;
  args.ncat = task.ctx.ncat;
  args.cat = task.ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1.codes;
  args.partial1 = task.partial1.values;
  args.partial2 = task.partial2.values;
  args.weights = task.weights;
  args.t = task.t;
  args.exp_fn = config_.exp_fn;
  NrResult result;
  if (task.ctx.mode == RateMode::kCat) {
    result = config_.simd ? edge_gradient_cat_simd(args)
                          : edge_gradient_cat(args);
  } else {
    result = config_.simd ? edge_gradient_gamma_simd(args)
                          : edge_gradient_gamma(args);
  }
  ++counters_.edge_gradient_calls;
  counters_.exp_calls += result.exp_calls;
  static obs::Counter& calls = obs::counter("kernel.edge_gradient.calls");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  calls.add();
  exps.add(result.exp_calls);
  return result;
}

// --- factory ----------------------------------------------------------------

void ExecutorSpec::validate() const {
  auto require = [](bool ok, const std::string& msg) {
    if (!ok) throw ConfigError("executor spec: " + msg);
  };

  // Per-kind range checks.  Cross-kind misuse needs no check anymore: the
  // options variant holds exactly the selected kind's knobs.
  if (const auto* t = std::get_if<ThreadedOptions>(&options)) {
    require(t->threads >= 1, "threads must be >= 1");
    require(t->chunk_patterns >= 1, "chunk_patterns must be >= 1");
  } else if (const auto* c = std::get_if<CellOptions>(&options)) {
    c->device.validate();
    require(c->stage >= 0 && c->stage <= 7,
            "stage must be a Stage ordinal 0..7");
    require(c->llp_ways >= 1 && c->llp_ways <= c->device.spe_count,
            "llp_ways must be 1..spe_count (" +
                std::to_string(c->device.spe_count) + " for device '" +
                c->device.name + "')");
    require(c->strip_bytes >= 256, "strip buffer too small (< 256 bytes)");
    require(c->host_threads >= 0 && c->host_threads <= 64,
            "host_threads must be 0 (auto) or 1..64");
  }
}

namespace {

struct FactoryRegistry {
  std::mutex mutex;
  ExecutorFactory factories[3] = {nullptr, nullptr, nullptr};
};

FactoryRegistry& factory_registry() {
  static FactoryRegistry* r = new FactoryRegistry;
  return *r;
}

}  // namespace

void register_executor_factory(ExecutorKind kind, ExecutorFactory factory) {
  FactoryRegistry& r = factory_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[static_cast<int>(kind)] = factory;
}

bool executor_registered(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kHost:
    case ExecutorKind::kThreaded:
      return true;  // built into this library
    case ExecutorKind::kSpe:
      break;
  }
  FactoryRegistry& r = factory_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.factories[static_cast<int>(kind)] != nullptr;
}

std::unique_ptr<KernelExecutor> make_executor(const ExecutorSpec& spec) {
  // The factory is the one construction chokepoint, so picking up
  // RXC_TRACE/RXC_LOG here makes every executor-using binary observable
  // without its own wiring (the engine constructor covers the rest).
  obs::init_from_env();
  spec.validate();
  switch (spec.kind()) {
    case ExecutorKind::kHost:
      return std::make_unique<HostExecutor>(spec.host().kernels);
    case ExecutorKind::kThreaded:
      return std::make_unique<ThreadedExecutor>(spec.threaded().threads,
                                                spec.threaded().kernels,
                                                spec.threaded().chunk_patterns);
    case ExecutorKind::kSpe:
      break;
  }
  ExecutorFactory factory;
  {
    FactoryRegistry& r = factory_registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    factory = r.factories[static_cast<int>(spec.kind())];
  }
  RXC_REQUIRE(factory != nullptr,
              "make_executor: no backend registered for this kind (link "
              "rxc_core for the simulated-Cell executor)");
  return factory(spec);
}

}  // namespace rxc::lh
