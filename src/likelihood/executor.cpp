#include "likelihood/executor.h"

#include "support/error.h"

namespace rxc::lh {

HostExecutor::HostExecutor(KernelConfig config) : config_(config) {}

double* HostExecutor::pmat_scratch(int ncat) {
  const std::size_t need = 2 * static_cast<std::size_t>(ncat) * 16;
  if (pmat_.size() < need) pmat_.resize(need);
  return pmat_.data();
}

void HostExecutor::newview(const NewviewTask& task) {
  const auto& ctx = task.ctx;
  double* pm = pmat_scratch(ctx.ncat);
  double* pm2 = pm + static_cast<std::size_t>(ctx.ncat) * 16;
  counters_.exp_calls += build_pmatrices(*ctx.es, ctx.rates, ctx.ncat,
                                         task.brlen1, config_.exp_fn, pm);
  counters_.exp_calls += build_pmatrices(*ctx.es, ctx.rates, ctx.ncat,
                                         task.brlen2, config_.exp_fn, pm2);
  counters_.pmatrix_builds += 2;

  NewviewArgs args;
  args.pmat1 = pm;
  args.pmat2 = pm2;
  args.ncat = ctx.ncat;
  args.cat = ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1;
  args.partial1 = task.partial1;
  args.scale1 = task.scale1;
  args.tip2 = task.tip2;
  args.partial2 = task.partial2;
  args.scale2 = task.scale2;
  args.out = task.out;
  args.scale_out = task.scale_out;
  args.scaling = config_.scaling;

  std::uint64_t scale_events;
  if (ctx.mode == RateMode::kCat) {
    scale_events = config_.simd ? newview_cat_simd(args) : newview_cat(args);
  } else {
    scale_events =
        config_.simd ? newview_gamma_simd(args) : newview_gamma(args);
  }
  counters_.scale_events += scale_events;
  ++counters_.newview_calls;
  counters_.newview_patterns += task.np;
}

double HostExecutor::evaluate(const EvaluateTask& task) {
  const auto& ctx = task.ctx;
  double* pm = pmat_scratch(ctx.ncat);
  counters_.exp_calls += build_pmatrices(*ctx.es, ctx.rates, ctx.ncat,
                                         task.brlen, config_.exp_fn, pm);
  ++counters_.pmatrix_builds;

  EvaluateArgs args;
  args.pmat = pm;
  args.freqs = ctx.es->freqs.data();
  args.ncat = ctx.ncat;
  args.cat = ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1;
  args.partial1 = task.partial1;
  args.scale1 = task.scale1;
  args.partial2 = task.partial2;
  args.scale2 = task.scale2;
  args.weights = task.weights;
  args.site_lnl_out = task.site_lnl_out;

  ++counters_.evaluate_calls;
  if (ctx.mode == RateMode::kCat)
    return config_.simd ? evaluate_cat_simd(args) : evaluate_cat(args);
  return config_.simd ? evaluate_gamma_simd(args) : evaluate_gamma(args);
}

void HostExecutor::sumtable(const SumtableTask& task) {
  SumtableArgs args;
  args.es = task.ctx.es;
  args.ncat = task.ctx.ncat;
  args.np = task.np;
  args.tip1 = task.tip1;
  args.partial1 = task.partial1;
  args.partial2 = task.partial2;
  args.out = task.out;
  ++counters_.sumtable_calls;
  if (task.ctx.mode == RateMode::kCat) {
    config_.simd ? make_sumtable_cat_simd(args) : make_sumtable_cat(args);
  } else {
    config_.simd ? make_sumtable_gamma_simd(args)
                 : make_sumtable_gamma(args);
  }
}

NrResult HostExecutor::nr_derivatives(const NrTask& task) {
  NrArgs args;
  args.sumtable = task.sumtable;
  args.lambda = task.ctx.es->lambda.data();
  args.rates = task.ctx.rates;
  args.ncat = task.ctx.ncat;
  args.cat = task.ctx.cat;
  args.np = task.np;
  args.weights = task.weights;
  args.t = task.t;
  args.exp_fn = config_.exp_fn;
  ++counters_.nr_calls;
  const NrResult result = task.ctx.mode == RateMode::kCat
                              ? nr_derivatives_cat(args)
                              : nr_derivatives_gamma(args);
  counters_.exp_calls += result.exp_calls;
  return result;
}

}  // namespace rxc::lh
