#include "likelihood/protein_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace rxc::lh {

ProteinEngine::ProteinEngine(const seq::AaPatternAlignment& pa,
                             ProteinEngineConfig config)
    : pa_(&pa),
      cfg_(config),
      es_(config.model.decompose()),
      np_(pa.pattern_count()) {
  RXC_REQUIRE(cfg_.categories >= 1, "need at least one rate category");
  weights_.assign(round_up(np_, 2), 0.0);
  std::copy(pa.weights().begin(), pa.weights().end(), weights_.begin());
  if (cfg_.mode == RateMode::kCat) {
    rates_ = model::CatRates::make(static_cast<std::size_t>(cfg_.categories))
                 .rates;
    int neutral = 0;
    for (std::size_t c = 1; c < rates_.size(); ++c)
      if (std::fabs(rates_[c] - 1.0) < std::fabs(rates_[neutral] - 1.0))
        neutral = static_cast<int>(c);
    cat_.assign(np_, neutral);
    stride_ = np_ * kN;
  } else {
    rates_ = model::DiscreteGamma::make(
                 cfg_.alpha, static_cast<std::size_t>(cfg_.categories))
                 .rates;
    stride_ = np_ * static_cast<std::size_t>(cfg_.categories) * kN;
  }
  // Tip vectors from the code masks.
  tipvec_.assign(static_cast<std::size_t>(seq::kAaCodeCount) * kN, 0.0);
  for (int code = 0; code < seq::kAaCodeCount; ++code) {
    const std::uint32_t mask =
        seq::aa_code_mask(static_cast<seq::AaCode>(code));
    for (int i = 0; i < kN; ++i)
      tipvec_[static_cast<std::size_t>(code) * kN + i] =
          (mask & (1u << i)) ? 1.0 : 0.0;
  }
}

void ProteinEngine::set_tree(tree::Tree* tree) {
  if (tree == nullptr) {
    tree_ = nullptr;
    std::fill(valid_.begin(), valid_.end(), 0);
    return;
  }
  RXC_REQUIRE(tree->tip_count() == pa_->taxon_count(),
              "tree taxon count != alignment taxon count");
  tree_ = tree;
  ndirs_ = tree_->directed_count();
  partials_.resize((ndirs_ + 1) * stride_);
  scales_.assign((ndirs_ + 1) * np_, 0);
  valid_.assign(ndirs_, 0);
}

void ProteinEngine::set_pattern_weights(const std::vector<double>& weights) {
  RXC_REQUIRE(weights.size() == np_, "weight vector size != pattern count");
  std::copy(weights.begin(), weights.end(), weights_.begin());
}

double* ProteinEngine::pmat_scratch(int slots) {
  const std::size_t need = static_cast<std::size_t>(slots) * cfg_.categories *
                           kN * kN;
  if (pmat_.size() < need) pmat_.resize(need);
  return pmat_.data();
}

ProteinEngine::ChildRef ProteinEngine::child_ref(int child_node, int edge) {
  ChildRef ref;
  if (tree_->is_tip(child_node)) {
    ref.tip = pa_->row(child_node);
  } else {
    const int dir = tree_->dir_index(child_node, edge);
    ref.partial = partial_ptr(dir);
    ref.scale = scale_ptr(dir);
  }
  return ref;
}

void ProteinEngine::compute_partial(int dir) {
  const auto [u, edge] = tree_->dir_nodes(dir);
  RXC_ASSERT(!tree_->is_tip(u));
  int child_node[2], child_edge[2];
  int count = 0;
  for (const auto& nb : tree_->neighbors(u)) {
    if (nb.edge == edge) continue;
    child_node[count] = nb.node;
    child_edge[count] = nb.edge;
    ++count;
  }
  RXC_ASSERT(count == 2);
  if (!tree_->is_tip(child_node[0]) && tree_->is_tip(child_node[1])) {
    std::swap(child_node[0], child_node[1]);
    std::swap(child_edge[0], child_edge[1]);
  }

  const std::size_t slot = static_cast<std::size_t>(cfg_.categories) * kN * kN;
  double* pm = pmat_scratch(2);
  counters_.exp_calls += build_pmatrices_nstate(
      es_, rates_.data(), cfg_.categories,
      tree_->branch_length(child_edge[0]), cfg_.exp_fn, pm);
  counters_.exp_calls += build_pmatrices_nstate(
      es_, rates_.data(), cfg_.categories,
      tree_->branch_length(child_edge[1]), cfg_.exp_fn, pm + slot);
  counters_.pmatrix_builds += 2;

  NewviewArgsN args;
  args.n = kN;
  args.pmat1 = pm;
  args.pmat2 = pm + slot;
  args.ncat = cfg_.categories;
  args.cat = cfg_.mode == RateMode::kCat ? cat_.data() : nullptr;
  args.np = np_;
  args.tipvec = tipvec_.data();
  const ChildRef c1 = child_ref(child_node[0], child_edge[0]);
  const ChildRef c2 = child_ref(child_node[1], child_edge[1]);
  args.tip1 = c1.tip;
  args.partial1 = c1.partial;
  args.scale1 = c1.scale;
  args.tip2 = c2.tip;
  args.partial2 = c2.partial;
  args.scale2 = c2.scale;
  args.out = partial_ptr(dir);
  args.scale_out = scale_ptr(dir);
  args.scaling = cfg_.scaling;
  counters_.scale_events += cfg_.mode == RateMode::kCat
                                ? newview_nstate_cat(args)
                                : newview_nstate_gamma(args);
  ++counters_.newview_calls;
  counters_.newview_patterns += np_;
  valid_[dir] = 1;
}

void ProteinEngine::ensure_partial(int dir) {
  RXC_ASSERT(tree_ != nullptr);
  std::vector<int> stack{dir};
  while (!stack.empty()) {
    const int d = stack.back();
    if (valid_[d]) {
      stack.pop_back();
      continue;
    }
    const auto [u, edge] = tree_->dir_nodes(d);
    RXC_ASSERT_MSG(!tree_->is_tip(u), "partial requested at a tip");
    bool ready = true;
    for (const auto& nb : tree_->neighbors(u)) {
      if (nb.edge == edge || tree_->is_tip(nb.node)) continue;
      const int cd = tree_->dir_index(nb.node, nb.edge);
      if (!valid_[cd]) {
        stack.push_back(cd);
        ready = false;
      }
    }
    if (!ready) continue;
    compute_partial(d);
    stack.pop_back();
  }
}

double ProteinEngine::evaluate_impl(int edge, double* site_out) {
  auto [u, v] = tree_->edge_nodes(edge);
  if (tree_->is_tip(v)) std::swap(u, v);
  RXC_ASSERT_MSG(!tree_->is_tip(v), "evaluate: tip-tip edge");

  EvaluateArgsN args;
  args.n = kN;
  args.freqs = es_.freqs.data();
  args.ncat = cfg_.categories;
  args.cat = cfg_.mode == RateMode::kCat ? cat_.data() : nullptr;
  args.np = np_;
  args.tipvec = tipvec_.data();
  // Ensure partials FIRST: compute_partial shares the pmat scratch.
  if (tree_->is_tip(u)) {
    args.tip1 = pa_->row(u);
  } else {
    const int du = tree_->dir_index(u, edge);
    ensure_partial(du);
    args.partial1 = partial_ptr(du);
    args.scale1 = scale_ptr(du);
  }
  const int dv = tree_->dir_index(v, edge);
  ensure_partial(dv);
  args.partial2 = partial_ptr(dv);
  args.scale2 = scale_ptr(dv);

  double* pm = pmat_scratch(1);
  counters_.exp_calls +=
      build_pmatrices_nstate(es_, rates_.data(), cfg_.categories,
                             tree_->branch_length(edge), cfg_.exp_fn, pm);
  ++counters_.pmatrix_builds;
  args.pmat = pm;
  args.weights = weights_.data();
  args.site_lnl_out = site_out;
  ++counters_.evaluate_calls;
  return cfg_.mode == RateMode::kCat ? evaluate_nstate_cat(args)
                                     : evaluate_nstate_gamma(args);
}

double ProteinEngine::evaluate(int edge) { return evaluate_impl(edge, nullptr); }

double ProteinEngine::log_likelihood() {
  for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
    if (tree_->edge_alive(static_cast<int>(e)))
      return evaluate(static_cast<int>(e));
  RXC_ASSERT_MSG(false, "tree has no live edges");
  return 0.0;
}

std::vector<double> ProteinEngine::site_log_likelihoods(int edge) {
  std::vector<double> site(np_);
  evaluate_impl(edge, site.data());
  return site;
}

double ProteinEngine::optimize_branch(int edge, int max_iterations) {
  auto [u, v] = tree_->edge_nodes(edge);
  if (tree_->is_tip(v)) std::swap(u, v);
  RXC_ASSERT(!tree_->is_tip(v));

  SumtableArgsN st;
  st.n = kN;
  st.es = &es_;
  st.ncat = cfg_.categories;
  st.np = np_;
  st.tipvec = tipvec_.data();
  if (tree_->is_tip(u)) {
    st.tip1 = pa_->row(u);
  } else {
    const int du = tree_->dir_index(u, edge);
    ensure_partial(du);
    st.partial1 = partial_ptr(du);
  }
  const int dv = tree_->dir_index(v, edge);
  ensure_partial(dv);
  st.partial2 = partial_ptr(dv);
  if (sumtable_.size() < stride_) sumtable_.resize(stride_);
  st.out = sumtable_.data();
  ++counters_.sumtable_calls;
  if (cfg_.mode == RateMode::kCat) {
    make_sumtable_nstate_cat(st);
  } else {
    make_sumtable_nstate_gamma(st);
  }

  NrArgsN nr;
  nr.n = kN;
  nr.sumtable = sumtable_.data();
  nr.lambda = es_.lambda.data();
  nr.rates = rates_.data();
  nr.ncat = cfg_.categories;
  nr.cat = cfg_.mode == RateMode::kCat ? cat_.data() : nullptr;
  nr.np = np_;
  nr.weights = weights_.data();
  nr.exp_fn = cfg_.exp_fn;

  double t = std::clamp(tree_->branch_length(edge), kMinBranch, kMaxBranch);
  double best_t = t;
  double best_lnl = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < max_iterations; ++iter) {
    nr.t = t;
    ++counters_.nr_calls;
    const NrResult res = cfg_.mode == RateMode::kCat
                             ? nr_derivatives_nstate_cat(nr)
                             : nr_derivatives_nstate_gamma(nr);
    counters_.exp_calls += res.exp_calls;
    if (res.lnl > best_lnl) {
      best_lnl = res.lnl;
      best_t = t;
    }
    double t_new;
    if (res.d2 < 0.0) {
      t_new = t - res.d1 / res.d2;
    } else {
      t_new = res.d1 > 0.0 ? t * 2.0 : t * 0.5;
    }
    t_new = std::clamp(t_new, kMinBranch, kMaxBranch);
    if (std::fabs(t_new - t) < 1e-10 * (1.0 + t)) {
      t = t_new;
      nr.t = t;
      ++counters_.nr_calls;
      const NrResult final_res = cfg_.mode == RateMode::kCat
                                     ? nr_derivatives_nstate_cat(nr)
                                     : nr_derivatives_nstate_gamma(nr);
      counters_.exp_calls += final_res.exp_calls;
      if (final_res.lnl > best_lnl) {
        best_lnl = final_res.lnl;
        best_t = t;
      }
      break;
    }
    t = t_new;
  }
  tree_->set_branch_length(edge, best_t);
  on_branch_changed(edge);

  const std::int32_t* sv = scale_ptr(dv);
  const std::int32_t* su =
      tree_->is_tip(u) ? nullptr : scale_ptr(tree_->dir_index(u, edge));
  for (std::size_t p = 0; p < np_; ++p) {
    const double count = static_cast<double>(sv[p] + (su ? su[p] : 0));
    best_lnl -= count * weights_[p] * kLogScaleFactor;
  }
  return best_lnl;
}

double ProteinEngine::optimize_all_branches(int max_passes, double epsilon) {
  double prev = log_likelihood();
  for (int pass = 0; pass < max_passes; ++pass) {
    for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
      if (tree_->edge_alive(static_cast<int>(e)))
        optimize_branch(static_cast<int>(e));
    const double now = log_likelihood();
    RXC_ASSERT_MSG(now > prev - 1e-4,
                   "branch optimization decreased the likelihood");
    if (now - prev < epsilon) return now;
    prev = now;
  }
  return prev;
}

void ProteinEngine::assign_cat_categories() {
  RXC_REQUIRE(cfg_.mode == RateMode::kCat,
              "assign_cat_categories requires CAT mode");
  int eval_edge = -1;
  for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
    if (tree_->edge_alive(static_cast<int>(e))) {
      eval_edge = static_cast<int>(e);
      break;
    }
  RXC_ASSERT(eval_edge >= 0);
  std::vector<double> best_lnl(np_, -std::numeric_limits<double>::infinity());
  std::vector<int> best_cat(np_, 0);
  for (int c = 0; c < cfg_.categories; ++c) {
    std::fill(cat_.begin(), cat_.end(), c);
    invalidate_all();
    const auto site = site_log_likelihoods(eval_edge);
    for (std::size_t p = 0; p < np_; ++p) {
      if (site[p] > best_lnl[p]) {
        best_lnl[p] = site[p];
        best_cat[p] = c;
      }
    }
  }
  cat_ = best_cat;
  double wsum = 0.0, rsum = 0.0;
  for (std::size_t p = 0; p < np_; ++p) {
    wsum += weights_[p];
    rsum += weights_[p] * rates_[cat_[p]];
  }
  RXC_ASSERT(rsum > 0.0);
  const double scale = wsum / rsum;
  for (double& r : rates_) r *= scale;
  invalidate_all();
}

void ProteinEngine::set_gamma_alpha(double alpha) {
  RXC_REQUIRE(cfg_.mode == RateMode::kGamma,
              "set_gamma_alpha requires GAMMA mode");
  RXC_REQUIRE(alpha > 0.0, "alpha must be positive");
  cfg_.alpha = alpha;
  rates_ = model::DiscreteGamma::make(alpha,
                                      static_cast<std::size_t>(cfg_.categories))
               .rates;
  invalidate_all();
}

double ProteinEngine::score_insertion(const tree::Tree::PruneRecord& rec,
                                      int target_edge) {
  RXC_ASSERT(tree_->edge_alive(target_edge));
  RXC_ASSERT(target_edge != rec.merged_edge);
  const int edge_xs = tree_->edge_between(rec.x, rec.s);
  RXC_ASSERT(edge_xs >= 0);
  const auto [c, d] = tree_->edge_nodes(target_edge);
  const double half = tree_->branch_length(target_edge) * 0.5;

  const int scratch = static_cast<int>(ndirs_);
  const std::size_t slot = static_cast<std::size_t>(cfg_.categories) * kN * kN;
  double* pm = pmat_scratch(2);

  NewviewArgsN task;
  task.n = kN;
  task.ncat = cfg_.categories;
  task.cat = cfg_.mode == RateMode::kCat ? cat_.data() : nullptr;
  task.np = np_;
  task.tipvec = tipvec_.data();
  task.scaling = cfg_.scaling;

  ChildRef moved;
  if (tree_->is_tip(rec.s)) {
    moved.tip = pa_->row(rec.s);
  } else {
    const int ds = tree_->dir_index(rec.s, edge_xs);
    ensure_partial(ds);
    moved.partial = partial_ptr(ds);
    moved.scale = scale_ptr(ds);
  }
  ChildRef cside;
  if (tree_->is_tip(c)) {
    cside.tip = pa_->row(c);
  } else {
    const int dc = tree_->dir_index(c, target_edge);
    ensure_partial(dc);
    cside.partial = partial_ptr(dc);
    cside.scale = scale_ptr(dc);
  }
  const bool moved_first = moved.tip != nullptr || cside.tip == nullptr;
  const ChildRef& first = moved_first ? moved : cside;
  const ChildRef& second = moved_first ? cside : moved;
  const double len1 = moved_first ? tree_->branch_length(edge_xs) : half;
  const double len2 = moved_first ? half : tree_->branch_length(edge_xs);
  counters_.exp_calls += build_pmatrices_nstate(
      es_, rates_.data(), cfg_.categories, len1, cfg_.exp_fn, pm);
  counters_.exp_calls += build_pmatrices_nstate(
      es_, rates_.data(), cfg_.categories, len2, cfg_.exp_fn, pm + slot);
  counters_.pmatrix_builds += 2;
  task.pmat1 = pm;
  task.pmat2 = pm + slot;
  task.tip1 = first.tip;
  task.partial1 = first.partial;
  task.scale1 = first.scale;
  task.tip2 = second.tip;
  task.partial2 = second.partial;
  task.scale2 = second.scale;
  task.out = partial_ptr(scratch);
  task.scale_out = scale_ptr(scratch);
  counters_.scale_events += cfg_.mode == RateMode::kCat
                                ? newview_nstate_cat(task)
                                : newview_nstate_gamma(task);
  ++counters_.newview_calls;
  counters_.newview_patterns += np_;

  EvaluateArgsN ev;
  ev.n = kN;
  ev.freqs = es_.freqs.data();
  ev.ncat = cfg_.categories;
  ev.cat = task.cat;
  ev.np = np_;
  ev.tipvec = tipvec_.data();
  // Ensure d's partial before rebuilding the pmat scratch.
  if (tree_->is_tip(d)) {
    ev.tip1 = pa_->row(d);
  } else {
    const int dd = tree_->dir_index(d, target_edge);
    ensure_partial(dd);
    ev.partial1 = partial_ptr(dd);
    ev.scale1 = scale_ptr(dd);
  }
  counters_.exp_calls += build_pmatrices_nstate(
      es_, rates_.data(), cfg_.categories, half, cfg_.exp_fn, pm);
  ++counters_.pmatrix_builds;
  ev.pmat = pm;
  ev.partial2 = partial_ptr(scratch);
  ev.scale2 = scale_ptr(scratch);
  ev.weights = weights_.data();
  ++counters_.evaluate_calls;
  return cfg_.mode == RateMode::kCat ? evaluate_nstate_cat(ev)
                                     : evaluate_nstate_gamma(ev);
}

void ProteinEngine::invalidate_all() {
  std::fill(valid_.begin(), valid_.end(), 0);
}

void ProteinEngine::invalidate_away(int from_node, int via_edge) {
  std::vector<std::pair<int, int>> stack{{from_node, via_edge}};
  while (!stack.empty()) {
    const auto [node, via] = stack.back();
    stack.pop_back();
    for (const auto& nb : tree_->neighbors(node)) {
      if (nb.edge == via) continue;
      valid_[tree_->dir_index(node, nb.edge)] = 0;
      if (!tree_->is_tip(nb.node)) stack.push_back({nb.node, nb.edge});
    }
  }
}

void ProteinEngine::invalidate_slot(int edge) {
  valid_[2 * edge] = 0;
  valid_[2 * edge + 1] = 0;
}

void ProteinEngine::on_branch_changed(int edge) {
  const auto [a, b] = tree_->edge_nodes(edge);
  invalidate_away(a, edge);
  invalidate_away(b, edge);
}

void ProteinEngine::on_prune(const tree::Tree::PruneRecord& rec) {
  invalidate_slot(rec.merged_edge);
  invalidate_slot(rec.edge_xb);
  const auto [a, b] = tree_->edge_nodes(rec.merged_edge);
  invalidate_away(a, rec.merged_edge);
  invalidate_away(b, rec.merged_edge);
}

void ProteinEngine::on_regraft(int target_edge, int reuse_edge) {
  invalidate_slot(target_edge);
  invalidate_slot(reuse_edge);
  for (const int e : {target_edge, reuse_edge}) {
    const auto [a, b] = tree_->edge_nodes(e);
    invalidate_away(a, e);
    invalidate_away(b, e);
  }
}

void ProteinEngine::on_restore(const tree::Tree::PruneRecord& rec) {
  on_regraft(rec.edge_xa, rec.edge_xb);
}

}  // namespace rxc::lh
