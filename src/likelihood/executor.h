#pragma once
/// \file executor.h
/// Kernel execution boundary.
///
/// The LikelihoodEngine (engine.h) decides *what* to compute — which
/// partials are stale, which branch to optimize — and hands each kernel
/// invocation to a KernelExecutor.  HostExecutor runs the kernels directly
/// on host memory; the Cell port (core/spe_executor.h) runs the *same*
/// kernels on simulated SPE local stores behind DMA, charging virtual
/// cycles.  This mirrors the paper's function-offloading boundary: the
/// offloaded units are exactly newview, evaluate, and the two inner pieces
/// of makenewz.
///
/// Tasks carry branch lengths rather than prebuilt transition matrices:
/// the matrices are built inside the invocation (the paper's "first loop",
/// where exp() lives), so the executor owns that cost.

#include <cstdint>

#include "likelihood/kernels.h"
#include "model/dna_model.h"
#include "support/aligned.h"

namespace rxc::lh {

/// Shared rate/model context for one task.
struct TaskContext {
  const model::EigenSystem* es = nullptr;
  const double* rates = nullptr;  ///< ncat category rates
  int ncat = 1;
  const int* cat = nullptr;       ///< per-pattern categories (CAT) or null
  RateMode mode = RateMode::kCat;
};

struct NewviewTask {
  TaskContext ctx;
  double brlen1 = 0.0, brlen2 = 0.0;
  std::size_t np = 0;
  const seq::DnaCode* tip1 = nullptr;
  const double* partial1 = nullptr;
  const std::int32_t* scale1 = nullptr;
  const seq::DnaCode* tip2 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;
  double* out = nullptr;
  std::int32_t* scale_out = nullptr;
};

struct EvaluateTask {
  TaskContext ctx;
  double brlen = 0.0;
  std::size_t np = 0;
  const seq::DnaCode* tip1 = nullptr;
  const double* partial1 = nullptr;
  const std::int32_t* scale1 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;
  const double* weights = nullptr;
  double* site_lnl_out = nullptr;
};

struct SumtableTask {
  TaskContext ctx;
  std::size_t np = 0;
  const seq::DnaCode* tip1 = nullptr;
  const double* partial1 = nullptr;
  const double* partial2 = nullptr;
  double* out = nullptr;
};

struct NrTask {
  TaskContext ctx;
  const double* sumtable = nullptr;
  std::size_t np = 0;
  const double* weights = nullptr;
  double t = 0.0;
};

class KernelExecutor {
public:
  virtual ~KernelExecutor() = default;
  virtual void newview(const NewviewTask& task) = 0;
  virtual double evaluate(const EvaluateTask& task) = 0;
  virtual void sumtable(const SumtableTask& task) = 0;
  virtual NrResult nr_derivatives(const NrTask& task) = 0;

  /// Brackets a makenewz sequence (one sumtable + its Newton iterations).
  /// RAxML offloads makenewz as a single unit, so an offloading executor
  /// signals once per compound rather than once per inner kernel.  Default:
  /// no-op.
  virtual void begin_compound() {}
  virtual void end_compound() {}

  const KernelCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

protected:
  KernelCounters counters_;
};

/// Runs kernels directly on host memory with a given KernelConfig
/// (exp variant, conditional variant, SIMD on/off).
class HostExecutor final : public KernelExecutor {
public:
  explicit HostExecutor(KernelConfig config = {});

  void set_config(KernelConfig config) { config_ = config; }
  const KernelConfig& config() const { return config_; }

  void newview(const NewviewTask& task) override;
  double evaluate(const EvaluateTask& task) override;
  void sumtable(const SumtableTask& task) override;
  NrResult nr_derivatives(const NrTask& task) override;

private:
  /// Grows and returns the pmatrix scratch (2 * ncat * 16 doubles).
  double* pmat_scratch(int ncat);

  KernelConfig config_;
  aligned_vector<double> pmat_;
};

}  // namespace rxc::lh
