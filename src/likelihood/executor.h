#pragma once
/// \file executor.h
/// Kernel execution boundary.
///
/// The LikelihoodEngine (engine.h) decides *what* to compute — which
/// partials are stale, which branch to optimize — and hands each kernel
/// invocation to a KernelExecutor.  HostExecutor runs the kernels directly
/// on host memory; the Cell port (core/spe_executor.h) runs the *same*
/// kernels on simulated SPE local stores behind DMA, charging virtual
/// cycles.  This mirrors the paper's function-offloading boundary: the
/// offloaded units are exactly newview, evaluate, and the two inner pieces
/// of makenewz.
///
/// Tasks carry branch lengths rather than prebuilt transition matrices:
/// the matrices are built inside the invocation (the paper's "first loop",
/// where exp() lives), so the executor owns that cost.
///
/// Executors are constructed through make_executor(ExecutorSpec); backends
/// living above this library (the simulated-Cell executor in core/)
/// register themselves via register_executor_factory, so examples, benches
/// and tests share one construction path.

#include <cstdint>
#include <memory>
#include <variant>

#include "cell/device_model.h"
#include "likelihood/kernels.h"
#include "model/dna_model.h"
#include "support/aligned.h"
#include "support/error.h"

namespace rxc::lh {

/// Shared rate/model context for one task.
struct TaskContext {
  const model::EigenSystem* es = nullptr;
  const double* rates = nullptr;  ///< ncat category rates
  int ncat = 1;
  const int* cat = nullptr;       ///< per-pattern categories (CAT) or null
  RateMode mode = RateMode::kCat;

  /// Throws rxc::Error on illegal combos (missing model, ncat out of
  /// [1, kMaxRateCategories], per-pattern `cat` under GAMMA — which the
  /// kernels would silently ignore).
  void validate() const;
};

/// A partial-likelihood strip together with its per-pattern rescale counts.
/// Kernels that don't consume scale counts (sumtable) leave `scale` null.
struct PartialView {
  const double* values = nullptr;
  const std::int32_t* scale = nullptr;

  explicit operator bool() const { return values != nullptr; }
};

/// A tip row: per-pattern IUPAC bitmask codes.
struct TipView {
  const seq::DnaCode* codes = nullptr;

  explicit operator bool() const { return codes != nullptr; }
};

/// Each newview child is EITHER a tip or an inner partial; the matching
/// view is set and the other left empty.  validate() enforces this.
struct NewviewTask {
  TaskContext ctx;
  double brlen1 = 0.0, brlen2 = 0.0;
  std::size_t np = 0;
  TipView tip1;
  PartialView partial1;
  TipView tip2;
  PartialView partial2;
  double* out = nullptr;
  std::int32_t* scale_out = nullptr;

  void validate() const;
};

struct EvaluateTask {
  TaskContext ctx;
  double brlen = 0.0;
  std::size_t np = 0;
  TipView tip1;          ///< side 1: tip or ...
  PartialView partial1;  ///< ... inner partial
  PartialView partial2;  ///< side 2 is always inner
  const double* weights = nullptr;
  double* site_lnl_out = nullptr;  ///< optional per-pattern output

  void validate() const;
};

struct SumtableTask {
  TaskContext ctx;
  std::size_t np = 0;
  TipView tip1;
  PartialView partial1;  ///< scale counts unused (they cancel in d1/d2)
  PartialView partial2;
  double* out = nullptr;

  void validate() const;
};

struct NrTask {
  TaskContext ctx;
  const double* sumtable = nullptr;
  std::size_t np = 0;
  const double* weights = nullptr;
  double t = 0.0;

  void validate() const;
};

/// One edge of the all-branch gradient sweep: derivatives of the tree
/// log-likelihood with respect to this edge's length, computed from the
/// edge's two directed partials (outward × inward) without materializing a
/// sumtable.  Equivalent to sumtable + one nr_derivatives at `t`, fused.
struct EdgeGradientTask {
  TaskContext ctx;
  std::size_t np = 0;
  TipView tip1;
  PartialView partial1;  ///< scale counts unused (they cancel in d1/d2)
  PartialView partial2;
  const double* weights = nullptr;
  double t = 0.0;  ///< current branch length

  void validate() const;
};

class KernelExecutor {
public:
  virtual ~KernelExecutor() = default;
  virtual void newview(const NewviewTask& task) = 0;
  virtual double evaluate(const EvaluateTask& task) = 0;
  virtual void sumtable(const SumtableTask& task) = 0;
  virtual NrResult nr_derivatives(const NrTask& task) = 0;

  /// Executes `count` newview invocations whose inputs and outputs are
  /// mutually independent (no task reads another's `out`/`scale_out`).
  /// Semantically identical to calling newview() on each task in order —
  /// counters, traces and numerics must come out the same — but a backend
  /// with wall-clock parallelism may run the payloads concurrently and
  /// amortize per-invocation accounting.  Default: the serial loop.
  virtual void newview_batch(const NewviewTask* tasks, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) newview(tasks[i]);
  }

  /// Executes one level of the pre-order ("outer"/root-ward) partial sweep.
  /// Outward partials are ordinary newview results — the children are the
  /// sibling's inward partial and the parent's outward partial — so the
  /// default rides the newview batching path unchanged; backends may
  /// distinguish the two sweeps for scheduling or accounting.
  virtual void preorder_batch(const NewviewTask* tasks, std::size_t count) {
    newview_batch(tasks, count);
  }

  /// Gradient/curvature of the log-likelihood in one edge's branch length
  /// (fused sumtable + Newton derivative accumulation at task.t).
  virtual NrResult edge_gradient(const EdgeGradientTask& task) = 0;

  /// Batch form over independent edges; same semantics as calling
  /// edge_gradient() in order.  Default: the serial loop.
  virtual void edge_gradient_batch(const EdgeGradientTask* tasks,
                                   std::size_t count, NrResult* results) {
    for (std::size_t i = 0; i < count; ++i) results[i] = edge_gradient(tasks[i]);
  }

  /// Brackets a makenewz sequence (one sumtable + its Newton iterations).
  /// RAxML offloads makenewz as a single unit, so an offloading executor
  /// signals once per compound rather than once per inner kernel.  Default:
  /// no-op.
  virtual void begin_compound() {}
  virtual void end_compound() {}

  const KernelCounters& counters() const { return counters_; }
  /// Virtual so delegating executors (core::CellExecutor) can forward the
  /// reset to the executor they wrap.
  virtual void reset_counters() { counters_ = {}; }

protected:
  KernelCounters counters_;
};

/// Runs kernels directly on host memory with a given KernelConfig
/// (exp variant, conditional variant, SIMD on/off).
class HostExecutor final : public KernelExecutor {
public:
  explicit HostExecutor(KernelConfig config = {});

  void set_config(KernelConfig config) { config_ = config; }
  const KernelConfig& config() const { return config_; }

  void newview(const NewviewTask& task) override;
  double evaluate(const EvaluateTask& task) override;
  void sumtable(const SumtableTask& task) override;
  NrResult nr_derivatives(const NrTask& task) override;
  NrResult edge_gradient(const EdgeGradientTask& task) override;

private:
  /// Grows and returns the pmatrix scratch (2 * ncat * 16 doubles).
  double* pmat_scratch(int ncat);

  KernelConfig config_;
  aligned_vector<double> pmat_;
};

// --- construction ----------------------------------------------------------

enum class ExecutorKind {
  kHost,      ///< HostExecutor: direct, single-threaded
  kThreaded,  ///< ThreadedExecutor: chunked loop-level thread pool
  kSpe,       ///< simulated-Cell executor (registered by core/)
};

/// Knobs for ExecutorKind::kHost.
struct HostOptions {
  /// Kernel variants (exp flavour, conditional flavour, SIMD on/off).
  KernelConfig kernels;
};

/// Knobs for ExecutorKind::kThreaded.
struct ThreadedOptions {
  KernelConfig kernels;
  int threads = 1;                 ///< worker count
  std::size_t chunk_patterns = 64; ///< loop-split granularity
};

/// Knobs for ExecutorKind::kSpe — interpreted by the backend that
/// core/spe_executor.cpp registers.  `stage` is a core::Stage ordinal, kept
/// as int so this header stays below core in the layering.
struct CellOptions {
  /// The virtual machine to simulate (geometry + cycle-cost table).
  /// Contention semantics live here too: DeviceModel::eib_factor /
  /// mailbox_factor replaced the old loose eib_contention /
  /// mailbox_contention doubles.
  cell::DeviceModel device;
  /// Cumulative optimization stage (core::Stage ordinal 0..7, default
  /// offload-all).
  int stage = 7;
  int llp_ways = 1;
  std::size_t strip_bytes = 2048;
  /// Host worker threads for wall-clock-parallel payload execution.
  /// 0 = auto (RXC_HOST_THREADS, else hardware concurrency); 1 = the
  /// sequential reference path.  Virtual cycles and numerics are identical
  /// for every value — this knob trades wall-clock only.
  int host_threads = 0;
  /// Stamp this device's machine events with a process-unique SPU id block
  /// (cell::reserve_spu_event_base) so a global event sink — the race
  /// detector — can tell concurrently-running devices apart.  Required for
  /// device pools (serve::DevicePool sets it); single-device binaries keep
  /// the historical ids 0..spe_count-1.
  bool unique_events = false;
};

/// Everything needed to build any executor backend.  One options struct per
/// kind: a knob for a different backend than the selected one is
/// unrepresentable by construction (the old flat knob bag let callers set
/// host_threads on a kHost spec and be silently ignored).  The variant
/// alternative order matches the ExecutorKind ordinals.
struct ExecutorSpec {
  std::variant<HostOptions, ThreadedOptions, CellOptions> options =
      HostOptions{};

  ExecutorKind kind() const {
    return static_cast<ExecutorKind>(options.index());
  }

  /// Checked accessors: RXC_REQUIRE the matching kind is selected.
  HostOptions& host() { return get<HostOptions>("kHost"); }
  const HostOptions& host() const { return get<HostOptions>("kHost"); }
  ThreadedOptions& threaded() { return get<ThreadedOptions>("kThreaded"); }
  const ThreadedOptions& threaded() const {
    return get<ThreadedOptions>("kThreaded");
  }
  CellOptions& cell() { return get<CellOptions>("kSpe"); }
  const CellOptions& cell() const { return get<CellOptions>("kSpe"); }

  static ExecutorSpec host_spec(HostOptions opts = {}) {
    return ExecutorSpec{std::move(opts)};
  }
  static ExecutorSpec threaded_spec(ThreadedOptions opts = {}) {
    return ExecutorSpec{std::move(opts)};
  }
  static ExecutorSpec cell_spec(CellOptions opts = {}) {
    return ExecutorSpec{std::move(opts)};
  }

  /// Throws rxc::ConfigError on out-of-range knobs for the selected kind
  /// (including an invalid CellOptions::device, or llp_ways exceeding that
  /// device's SPE count).  Cross-kind misuse no longer needs a check — the
  /// variant cannot hold another kind's knobs.
  void validate() const;

 private:
  template <class T>
  T& get(const char* kind_name) {
    if (!std::holds_alternative<T>(options))
      throw ConfigError(std::string("ExecutorSpec: options are not for ") +
                        kind_name);
    return std::get<T>(options);
  }
  template <class T>
  const T& get(const char* kind_name) const {
    if (!std::holds_alternative<T>(options))
      throw ConfigError(std::string("ExecutorSpec: options are not for ") +
                        kind_name);
    return std::get<T>(options);
  }
};

using ExecutorFactory =
    std::unique_ptr<KernelExecutor> (*)(const ExecutorSpec&);

/// Backends outside this library register their constructor here (the Cell
/// executor does so from a static registrar in core/spe_executor.cpp).
void register_executor_factory(ExecutorKind kind, ExecutorFactory factory);

/// True when make_executor can build this kind in the current binary: always
/// for the built-in host/threaded backends, for kSpe only when a factory was
/// registered (i.e. rxc_core is linked).  registry.h uses this to include
/// the simulated-Cell backend exactly where it is constructible.
bool executor_registered(ExecutorKind kind);

/// The single construction path for executors: validates `spec` and builds
/// the requested backend.  Throws rxc::Error if the backend is not
/// registered (e.g. kSpe in a binary that doesn't link rxc_core).
std::unique_ptr<KernelExecutor> make_executor(const ExecutorSpec& spec);

}  // namespace rxc::lh
