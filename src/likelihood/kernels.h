#pragma once
/// \file kernels.h
/// The three likelihood computation cores the paper offloads to SPEs
/// (§5.2): partial-likelihood computation (newview), log-likelihood
/// evaluation (evaluate) and the inner operations of branch-length
/// optimization (makenewz: sumtable construction + Newton-Raphson
/// derivatives).  All kernels are pure pointer-based strip functions so the
/// same code runs on host memory and on simulated SPE local-store buffers.
///
/// Two among-site rate modes:
///  - kCat:   each pattern has one rate category (RAxML's CAT, the paper's
///            default with up to 25 categories).  Partial layout:
///            [pattern][state], np*4 doubles.
///  - kGamma: every pattern is averaged over all categories (discrete
///            Gamma).  Partial layout: [pattern][cat][state], np*ncat*4.
///
/// Transition matrices are rebuilt inside every newview invocation (the
/// paper's "first loop", the source of the ~150 exp() calls per call), via
/// a pluggable ExpFn (stage II) and checked by a pluggable scaling
/// conditional (stage III).

#include <cstddef>
#include <cstdint>

#include "likelihood/fast_exp.h"
#include "likelihood/scaling.h"
#include "model/dna_model.h"
#include "seq/alignment.h"

namespace rxc::lh {

enum class RateMode { kCat, kGamma };

/// RAxML's CAT palette ceiling (the paper's exp-call count implies 25);
/// also the GAMMA quadrature bound we accept.  Lives here (not executor.h)
/// because the vectorized kernels size per-invocation scratch with it.
inline constexpr int kMaxRateCategories = 25;
/// Doubles in a full transition-matrix set (ncat 4x4 matrices).
inline constexpr int kMaxPmatDoubles = kMaxRateCategories * 16;

// ---------------------------------------------------------------------
// SIMD dispatch
//
// The *_simd kernels pick their implementation at runtime from the CPU:
// AVX2+FMA where available, the 2-wide SSE2 scheme otherwise, scalar as the
// last resort.  Dispatch is process-global so every executor (host,
// threaded, simulated SPE) computes identical bits for a given level.  The
// level can be capped — never raised past what the CPU supports — via the
// RXC_SIMD environment variable (scalar|sse2|avx2) or set_simd_level(),
// which tests use to differentially compare the levels in one process.

enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best level this CPU (and build) can run, after applying the RXC_SIMD cap.
SimdLevel detect_simd_level();
/// Level the *_simd kernels currently dispatch to.
SimdLevel active_simd_level();
/// Caps the active level (requests above detect_simd_level() are clamped
/// down, so asking for AVX2 on an SSE2 box safely degrades).  Thread-safe.
void set_simd_level(SimdLevel level);
const char* simd_level_name(SimdLevel level);

/// Branch-length bounds (expected substitutions/site), RAxML-style; shared
/// by the DNA and protein engines' Newton-Raphson optimizers.
inline constexpr double kMinBranch = 1e-8;
inline constexpr double kMaxBranch = 10.0;

/// Kernel implementation knobs (paper optimization stages II, III, V).
struct KernelConfig {
  ExpFn exp_fn = &exp_libm;
  ScalingCheck scaling = ScalingCheck::kFloatBranch;
  bool simd = false;
};

/// Per-run observable kernel counters (used by tests and the cost model).
struct KernelCounters {
  std::uint64_t newview_calls = 0;
  std::uint64_t newview_patterns = 0;  ///< sum of strip lengths
  std::uint64_t evaluate_calls = 0;
  std::uint64_t sumtable_calls = 0;
  std::uint64_t nr_calls = 0;
  std::uint64_t edge_gradient_calls = 0;
  std::uint64_t pmatrix_builds = 0;    ///< one per (matrix, invocation)
  std::uint64_t exp_calls = 0;
  std::uint64_t scale_events = 0;

  KernelCounters& operator+=(const KernelCounters& o);
};

/// Builds `ncat` transition matrices P(brlen * rate[c]) into out[c*16..].
/// Skips the exp for the zero eigenvalue (3 exp calls per category, per the
/// paper's accounting).  Returns the number of exp() calls made.
std::uint64_t build_pmatrices(const model::EigenSystem& es,
                              const double* rates, int ncat, double brlen,
                              ExpFn exp_fn, double* out);

// ---------------------------------------------------------------------
// newview

struct NewviewArgs {
  // Transition matrices for the two child branches, ncat*16 doubles each
  // (built by the caller via build_pmatrices — on the SPE path they are
  // built in local store).
  const double* pmat1 = nullptr;
  const double* pmat2 = nullptr;
  int ncat = 1;
  const int* cat = nullptr;  ///< per-pattern category (CAT mode; may be null => 0)

  std::size_t np = 0;  ///< patterns in this strip

  // Child 1: exactly one of tip1/partial1 set.  If exactly one child is a
  // tip, it must be child 1 (callers canonicalize).
  const seq::DnaCode* tip1 = nullptr;
  const double* partial1 = nullptr;
  const std::int32_t* scale1 = nullptr;  ///< per-pattern counts (inner child)
  const seq::DnaCode* tip2 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;

  double* out = nullptr;            ///< np*4 (CAT) or np*ncat*4 (GAMMA)
  std::int32_t* scale_out = nullptr;  ///< np entries
  ScalingCheck scaling = ScalingCheck::kFloatBranch;
};

/// Scalar kernels.  Return the number of scaling events.
std::uint64_t newview_cat(const NewviewArgs& a);
std::uint64_t newview_gamma(const NewviewArgs& a);

/// Vectorized kernels; exact same contract.  Dispatch on active_simd_level()
/// (AVX2/FMA, SSE2, or the scalar fallback).
std::uint64_t newview_cat_simd(const NewviewArgs& a);
std::uint64_t newview_gamma_simd(const NewviewArgs& a);

// ---------------------------------------------------------------------
// evaluate

struct EvaluateArgs {
  const double* pmat = nullptr;  ///< connecting branch, ncat*16
  const double* freqs = nullptr; ///< stationary distribution, 4
  int ncat = 1;
  const int* cat = nullptr;

  std::size_t np = 0;

  // Side 1 may be a tip; side 2 is always an inner partial.
  const seq::DnaCode* tip1 = nullptr;
  const double* partial1 = nullptr;
  const std::int32_t* scale1 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;

  const double* weights = nullptr;  ///< per-pattern multiplicities
  double* site_lnl_out = nullptr;   ///< optional per-pattern log-likelihoods
};

/// Returns the weighted log-likelihood of the strip.
double evaluate_cat(const EvaluateArgs& a);
double evaluate_gamma(const EvaluateArgs& a);

/// Vectorized variants (runtime dispatch like newview_*_simd).
double evaluate_cat_simd(const EvaluateArgs& a);
double evaluate_gamma_simd(const EvaluateArgs& a);

// ---------------------------------------------------------------------
// makenewz inner kernels

struct SumtableArgs {
  const model::EigenSystem* es = nullptr;
  int ncat = 1;
  std::size_t np = 0;

  const seq::DnaCode* tip1 = nullptr;   ///< or partial1 (canonical: tip first)
  const double* partial1 = nullptr;
  const double* partial2 = nullptr;     ///< always inner

  double* out = nullptr;  ///< np*4 (CAT) or np*ncat*4 (GAMMA)
};

void make_sumtable_cat(const SumtableArgs& a);
void make_sumtable_gamma(const SumtableArgs& a);
void make_sumtable_cat_simd(const SumtableArgs& a);
void make_sumtable_gamma_simd(const SumtableArgs& a);

struct NrArgs {
  const double* sumtable = nullptr;
  const double* lambda = nullptr;  ///< 4 eigenvalues
  const double* rates = nullptr;   ///< ncat rates
  int ncat = 1;
  const int* cat = nullptr;        ///< CAT only
  std::size_t np = 0;
  const double* weights = nullptr;
  double t = 0.0;                  ///< candidate branch length
  ExpFn exp_fn = &exp_libm;
};

struct NrResult {
  double lnl = 0.0;  ///< log-likelihood at t, *excluding* scale corrections
  double d1 = 0.0;   ///< d lnl / dt
  double d2 = 0.0;   ///< d^2 lnl / dt^2
  std::uint64_t exp_calls = 0;
};

NrResult nr_derivatives_cat(const NrArgs& a);
NrResult nr_derivatives_gamma(const NrArgs& a);

// ---------------------------------------------------------------------
// edge gradient (fused sumtable + derivative accumulation)
//
// The all-branch gradient sweep evaluates d lnl/dt (and the curvature) for
// every edge of the tree from ONE pair of directed partials per edge — no
// sumtable round trip through main memory and no per-edge Newton loop.  The
// per-pattern math is exactly make_sumtable followed by nr_derivatives, in
// the same operation order, so a fused kernel is bitwise-identical to the
// two-step scalar path at the same KernelConfig.

struct EdgeGradientArgs {
  const model::EigenSystem* es = nullptr;
  const double* rates = nullptr;   ///< ncat rates
  int ncat = 1;
  const int* cat = nullptr;        ///< CAT only
  std::size_t np = 0;

  const seq::DnaCode* tip1 = nullptr;  ///< or partial1 (canonical: tip first)
  const double* partial1 = nullptr;
  const double* partial2 = nullptr;    ///< always inner

  const double* weights = nullptr;
  double t = 0.0;                  ///< current branch length
  ExpFn exp_fn = &exp_libm;
};

/// Scalar kernels: per pattern, build the 4 (or ncat*4) sumtable entries in
/// registers and immediately accumulate lnl/d1/d2 at t.  Result semantics
/// match nr_derivatives_* (lnl excludes scale corrections).
NrResult edge_gradient_cat(const EdgeGradientArgs& a);
NrResult edge_gradient_gamma(const EdgeGradientArgs& a);

/// Vectorized variants (runtime dispatch like the other *_simd kernels):
/// the sumtable row is built with the AVX2/SSE2 broadcast+FMA scheme, the
/// derivative accumulation stays scalar — covered by the host-simd
/// TolerancePolicy (ULP-bounded values, sum_rel reductions).
NrResult edge_gradient_cat_simd(const EdgeGradientArgs& a);
NrResult edge_gradient_gamma_simd(const EdgeGradientArgs& a);

}  // namespace rxc::lh
