/// \file kernels_simd.cpp
/// 2-wide double SIMD newview kernels (paper §5.2.5, Figure 2).
///
/// The SPE's 128-bit vector registers hold two doubles; the paper's
/// vectorization splats each child likelihood entry (spu_splats) and
/// multiply-adds gathered transition-matrix columns (spu_madd).  On the
/// host we mirror that scheme with SSE2: _mm_set1_pd for the splats,
/// _mm_set_pd gathers for the matrix columns, mul+add for the madds, and
/// _mm_cmplt_pd/_mm_movemask_pd for the vectorized scaling conditional.
/// Builds without SSE2 fall back to the scalar kernels.

#include <cmath>

#include "likelihood/kernels.h"
#include "likelihood/tip_table.h"
#include "support/error.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rxc::lh {

#if defined(__SSE2__)

namespace {

/// Two rows (r, r+1) of the 4x4 matvec P * l, as one vector.
inline __m128d matvec_pair(const double* p, int row, __m128d l0, __m128d l1,
                           __m128d l2, __m128d l3) {
  // Column j over rows {row, row+1}: low lane = row, high lane = row+1.
  const __m128d c0 = _mm_set_pd(p[(row + 1) * 4 + 0], p[row * 4 + 0]);
  const __m128d c1 = _mm_set_pd(p[(row + 1) * 4 + 1], p[row * 4 + 1]);
  const __m128d c2 = _mm_set_pd(p[(row + 1) * 4 + 2], p[row * 4 + 2]);
  const __m128d c3 = _mm_set_pd(p[(row + 1) * 4 + 3], p[row * 4 + 3]);
  __m128d acc = _mm_mul_pd(c0, l0);
  acc = _mm_add_pd(acc, _mm_mul_pd(c1, l1));
  acc = _mm_add_pd(acc, _mm_mul_pd(c2, l2));
  acc = _mm_add_pd(acc, _mm_mul_pd(c3, l3));
  return acc;
}

/// Branch-free "all 4 entries < kMinLikelihood" over out[0..3].
inline bool all_below_ml(const double* out) {
  const __m128d ml = _mm_set1_pd(kMinLikelihood);
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  const __m128d v01 = _mm_and_pd(_mm_loadu_pd(out), abs_mask);
  const __m128d v23 = _mm_and_pd(_mm_loadu_pd(out + 2), abs_mask);
  const int m01 = _mm_movemask_pd(_mm_cmplt_pd(v01, ml));
  const int m23 = _mm_movemask_pd(_mm_cmplt_pd(v23, ml));
  return (m01 & m23) == 0x3;
}

#if defined(__AVX2__)

/// 4-wide AVX2 body: all four states of (P*l) in one register — the modern
/// host's widening of the paper's 2-wide SPE scheme.  Uses FMA when the
/// target has it.
inline __m256d matvec_avx(const double* p, __m256d l0, __m256d l1,
                          __m256d l2, __m256d l3) {
  // Column j of P over all four rows (stride-4 gather).
  const __m256d c0 = _mm256_set_pd(p[12], p[8], p[4], p[0]);
  const __m256d c1 = _mm256_set_pd(p[13], p[9], p[5], p[1]);
  const __m256d c2 = _mm256_set_pd(p[14], p[10], p[6], p[2]);
  const __m256d c3 = _mm256_set_pd(p[15], p[11], p[7], p[3]);
#if defined(__FMA__)
  __m256d acc = _mm256_mul_pd(c0, l0);
  acc = _mm256_fmadd_pd(c1, l1, acc);
  acc = _mm256_fmadd_pd(c2, l2, acc);
  acc = _mm256_fmadd_pd(c3, l3, acc);
#else
  __m256d acc = _mm256_mul_pd(c0, l0);
  acc = _mm256_add_pd(acc, _mm256_mul_pd(c1, l1));
  acc = _mm256_add_pd(acc, _mm256_mul_pd(c2, l2));
  acc = _mm256_add_pd(acc, _mm256_mul_pd(c3, l3));
#endif
  return acc;
}

inline void newview_body(const double* p1, const double* p2, const double* l1,
                         const double* l2, double* out) {
  const __m256d s1 =
      matvec_avx(p1, _mm256_set1_pd(l1[0]), _mm256_set1_pd(l1[1]),
                 _mm256_set1_pd(l1[2]), _mm256_set1_pd(l1[3]));
  const __m256d s2 =
      matvec_avx(p2, _mm256_set1_pd(l2[0]), _mm256_set1_pd(l2[1]),
                 _mm256_set1_pd(l2[2]), _mm256_set1_pd(l2[3]));
  _mm256_storeu_pd(out, _mm256_mul_pd(s1, s2));
}

#else  // SSE2 only

/// One pattern-slot of the vectorized newview body: out[0..3] =
/// (P1*l1) .* (P2*l2).
inline void newview_body(const double* p1, const double* p2, const double* l1,
                         const double* l2, double* out) {
  const __m128d a0 = _mm_set1_pd(l1[0]);
  const __m128d a1 = _mm_set1_pd(l1[1]);
  const __m128d a2 = _mm_set1_pd(l1[2]);
  const __m128d a3 = _mm_set1_pd(l1[3]);
  const __m128d b0 = _mm_set1_pd(l2[0]);
  const __m128d b1 = _mm_set1_pd(l2[1]);
  const __m128d b2 = _mm_set1_pd(l2[2]);
  const __m128d b3 = _mm_set1_pd(l2[3]);
  const __m128d s1_01 = matvec_pair(p1, 0, a0, a1, a2, a3);
  const __m128d s1_23 = matvec_pair(p1, 2, a0, a1, a2, a3);
  const __m128d s2_01 = matvec_pair(p2, 0, b0, b1, b2, b3);
  const __m128d s2_23 = matvec_pair(p2, 2, b0, b1, b2, b3);
  _mm_storeu_pd(out, _mm_mul_pd(s1_01, s2_01));
  _mm_storeu_pd(out + 2, _mm_mul_pd(s1_23, s2_23));
}

#endif  // __AVX2__

}  // namespace

std::uint64_t newview_cat_simd(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  std::uint64_t scale_events = 0;
  const __m128d scale_v = _mm_set1_pd(kScaleFactor);
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* l1 =
        a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    const double* l2 =
        a.tip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + p * 4;
    double* out = a.out + p * 4;
    newview_body(a.pmat1 + c * 16, a.pmat2 + c * 16, l1, l2, out);

    std::int32_t scale = (a.scale1 ? a.scale1[p] : 0) +
                         (a.scale2 ? a.scale2[p] : 0);
    const bool below = a.scaling == ScalingCheck::kIntCast
                           ? all_below_ml(out)
                           : needs_scaling_fp(out, 4);
    if (below) {
      _mm_storeu_pd(out, _mm_mul_pd(_mm_loadu_pd(out), scale_v));
      _mm_storeu_pd(out + 2, _mm_mul_pd(_mm_loadu_pd(out + 2), scale_v));
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

std::uint64_t newview_gamma_simd(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  const int ncat = a.ncat;
  std::uint64_t scale_events = 0;
  const __m128d scale_v = _mm_set1_pd(kScaleFactor);
  for (std::size_t p = 0; p < a.np; ++p) {
    double* out = a.out + p * static_cast<std::size_t>(ncat) * 4;
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* l1 =
          a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const double* l2 =
          a.tip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + idx;
      newview_body(a.pmat1 + c * 16, a.pmat2 + c * 16, l1, l2, out + c * 4);
    }
    std::int32_t scale = (a.scale1 ? a.scale1[p] : 0) +
                         (a.scale2 ? a.scale2[p] : 0);
    bool below = true;
    for (int c = 0; below && c < ncat; ++c) {
      below = a.scaling == ScalingCheck::kIntCast
                  ? all_below_ml(out + c * 4)
                  : needs_scaling_fp(out + c * 4, 4);
    }
    if (below) {
      for (int i = 0; i < 2 * ncat; ++i) {
        const __m128d v = _mm_loadu_pd(out + i * 2);
        _mm_storeu_pd(out + i * 2, _mm_mul_pd(v, scale_v));
      }
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

double evaluate_cat_simd(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* pm = a.pmat + c * 16;
    const double* va =
        a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    const double* vb = a.partial2 + p * 4;
    // b' = P * vb over row pairs, then term = sum_i f_i * va_i * b'_i.
    const __m128d b0 = _mm_set1_pd(vb[0]);
    const __m128d b1 = _mm_set1_pd(vb[1]);
    const __m128d b2 = _mm_set1_pd(vb[2]);
    const __m128d b3 = _mm_set1_pd(vb[3]);
    const __m128d bp01 = matvec_pair(pm, 0, b0, b1, b2, b3);
    const __m128d bp23 = matvec_pair(pm, 2, b0, b1, b2, b3);
    const __m128d f01 = _mm_loadu_pd(a.freqs);
    const __m128d f23 = _mm_loadu_pd(a.freqs + 2);
    const __m128d va01 = _mm_loadu_pd(va);
    const __m128d va23 = _mm_loadu_pd(va + 2);
    const __m128d t01 = _mm_mul_pd(_mm_mul_pd(f01, va01), bp01);
    const __m128d t23 = _mm_mul_pd(_mm_mul_pd(f23, va23), bp23);
    const __m128d sum2 = _mm_add_pd(t01, t23);
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, sum2);
    double term = lanes[0] + lanes[1];
    if (term < 1e-300) term = 1e-300;
    const double scale = static_cast<double>(
        (a.scale1 ? a.scale1[p] : 0) + (a.scale2 ? a.scale2[p] : 0));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

double evaluate_gamma_simd(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  const int ncat = a.ncat;
  const double catw = 1.0 / static_cast<double>(ncat);
  double lnl = 0.0;
  const __m128d f01 = _mm_loadu_pd(a.freqs);
  const __m128d f23 = _mm_loadu_pd(a.freqs + 2);
  for (std::size_t p = 0; p < a.np; ++p) {
    __m128d acc = _mm_setzero_pd();
    for (int c = 0; c < ncat; ++c) {
      const double* pm = a.pmat + c * 16;
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va =
          a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const double* vb = a.partial2 + idx;
      const __m128d b0 = _mm_set1_pd(vb[0]);
      const __m128d b1 = _mm_set1_pd(vb[1]);
      const __m128d b2 = _mm_set1_pd(vb[2]);
      const __m128d b3 = _mm_set1_pd(vb[3]);
      const __m128d bp01 = matvec_pair(pm, 0, b0, b1, b2, b3);
      const __m128d bp23 = matvec_pair(pm, 2, b0, b1, b2, b3);
      const __m128d va01 = _mm_loadu_pd(va);
      const __m128d va23 = _mm_loadu_pd(va + 2);
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_mul_pd(f01, va01), bp01));
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_mul_pd(f23, va23), bp23));
    }
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, acc);
    double term = (lanes[0] + lanes[1]) * catw;
    if (term < 1e-300) term = 1e-300;
    const double scale = static_cast<double>(
        (a.scale1 ? a.scale1[p] : 0) + (a.scale2 ? a.scale2[p] : 0));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

namespace {

/// One pattern-slot of the sumtable: s_k = (sum_i f_i va_i U_ik)
/// (sum_j V_kj vb_j), vectorized over k pairs.
inline void sumtable_body(const model::EigenSystem& es, const double* va,
                          const double* vb, double* s) {
  // left_k over k pairs: gather U columns.
  for (int k = 0; k < 4; k += 2) {
    __m128d left = _mm_setzero_pd();
    __m128d right = _mm_setzero_pd();
    for (int i = 0; i < 4; ++i) {
      const __m128d u_pair =
          _mm_set_pd(es.u[i * 4 + k + 1], es.u[i * 4 + k]);
      const __m128d v_pair =
          _mm_set_pd(es.v[(k + 1) * 4 + i], es.v[k * 4 + i]);
      left = _mm_add_pd(left,
                        _mm_mul_pd(_mm_set1_pd(es.freqs[i] * va[i]), u_pair));
      right = _mm_add_pd(right, _mm_mul_pd(_mm_set1_pd(vb[i]), v_pair));
    }
    _mm_storeu_pd(s + k, _mm_mul_pd(left, right));
  }
}

}  // namespace

void make_sumtable_cat_simd(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va =
        a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    sumtable_body(*a.es, va, a.partial2 + p * 4, a.out + p * 4);
  }
}

void make_sumtable_gamma_simd(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  const int ncat = a.ncat;
  for (std::size_t p = 0; p < a.np; ++p) {
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va =
          a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      sumtable_body(*a.es, va, a.partial2 + idx, a.out + idx);
    }
  }
}

#else  // !__SSE2__

std::uint64_t newview_cat_simd(const NewviewArgs& a) { return newview_cat(a); }
std::uint64_t newview_gamma_simd(const NewviewArgs& a) {
  return newview_gamma(a);
}
double evaluate_cat_simd(const EvaluateArgs& a) { return evaluate_cat(a); }
double evaluate_gamma_simd(const EvaluateArgs& a) { return evaluate_gamma(a); }
void make_sumtable_cat_simd(const SumtableArgs& a) { make_sumtable_cat(a); }
void make_sumtable_gamma_simd(const SumtableArgs& a) {
  make_sumtable_gamma(a);
}

#endif

}  // namespace rxc::lh
