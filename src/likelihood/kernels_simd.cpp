/// \file kernels_simd.cpp
/// Vectorized likelihood kernels with runtime CPU dispatch.
///
/// The paper's SPE scheme (§5.2.5, Figure 2) splats each child likelihood
/// entry and multiply-adds gathered transition-matrix columns.  Mirrored
/// naively on the host that gather (_mm_set_pd per column, per pattern) is
/// what made the old "SIMD" kernels *slower* than scalar: 8 two-element
/// gathers per pattern cost more than the 32 madds they fed.
///
/// The rewrite restructures the loops around a per-invocation matrix
/// transpose: column j of each 4x4 transition matrix becomes a contiguous
/// row, so the hot loop is broadcast + aligned vector load + FMA with zero
/// shuffles.  The transpose costs ncat*16 scalar copies once per invocation
/// and is amortized over the pattern strip.
///
/// Three implementations selected at runtime (see kernels.h):
///   kAvx2   — 4-wide double AVX2+FMA, compiled via function target
///             attributes so the object file builds (and sanitizes) on any
///             x86-64 toolchain without -mavx2, and the binary still runs
///             on CPUs without AVX2;
///   kSse2   — the 2-wide scheme, kept for pre-AVX2 x86;
///   kScalar — the plain kernels (non-x86 builds).
///
/// All three are deterministic; dispatch is process-global, so host,
/// threaded and simulated-SPE executors agree bitwise at any level.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "likelihood/kernels.h"
#include "likelihood/tip_table.h"
#include "support/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define RXC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace rxc::lh {

// --- dispatch ---------------------------------------------------------------

namespace {

SimdLevel cpu_best_level() {
#if defined(RXC_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdLevel::kAvx2;
#if defined(__SSE2__)
  return SimdLevel::kSse2;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel env_cap() {
  const char* env = std::getenv("RXC_SIMD");
  if (env == nullptr) return SimdLevel::kAvx2;
  const std::string want(env);
  if (want == "scalar") return SimdLevel::kScalar;
  if (want == "sse2") return SimdLevel::kSse2;
  if (want == "avx2") return SimdLevel::kAvx2;
  throw ConfigError("RXC_SIMD must be scalar|sse2|avx2, got '" + want + "'");
}

/// Active level, encoded level+1 so 0 means "not yet detected".
std::atomic<int> g_level{0};

}  // namespace

SimdLevel detect_simd_level() {
  return std::min(cpu_best_level(), env_cap());
}

SimdLevel active_simd_level() {
  int encoded = g_level.load(std::memory_order_relaxed);
  if (encoded == 0) {
    // Benign race: every thread computes the same value.
    encoded = static_cast<int>(detect_simd_level()) + 1;
    g_level.store(encoded, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(encoded - 1);
}

void set_simd_level(SimdLevel level) {
  const SimdLevel capped = std::min(level, detect_simd_level());
  g_level.store(static_cast<int>(capped) + 1, std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

// --- shared helpers ---------------------------------------------------------

namespace {

/// Transposes ncat 4x4 matrices so matrix column j is a contiguous run of
/// 4 doubles (tp[c*16 + j*4 + i] = p[c*16 + i*4 + j]).  The vector kernels
/// then compute P*l as sum_j l[j] * column_j with plain loads, no gathers.
inline void transpose_pmats(const double* p, int ncat, double* tp) {
  for (int c = 0; c < ncat; ++c) {
    const double* m = p + c * 16;
    double* t = tp + c * 16;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) t[j * 4 + i] = m[i * 4 + j];
  }
}

inline std::int32_t scale_in(const std::int32_t* scale, std::size_t p) {
  return scale ? scale[p] : 0;
}

}  // namespace

// --- AVX2 + FMA path --------------------------------------------------------

#if defined(RXC_SIMD_X86)

#define RXC_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace avx2 {

/// P*l from a transposed matrix: broadcast each l[j], FMA its column row.
/// Two accumulators halve the FMA dependency chain (the kernels are
/// latency-bound, not throughput-bound, at 4 states).
RXC_TARGET_AVX2 inline __m256d matvec_t(const double* tp, const double* l) {
  __m256d even = _mm256_mul_pd(_mm256_broadcast_sd(l), _mm256_loadu_pd(tp));
  __m256d odd =
      _mm256_mul_pd(_mm256_broadcast_sd(l + 1), _mm256_loadu_pd(tp + 4));
  even = _mm256_fmadd_pd(_mm256_broadcast_sd(l + 2), _mm256_loadu_pd(tp + 8),
                         even);
  odd = _mm256_fmadd_pd(_mm256_broadcast_sd(l + 3), _mm256_loadu_pd(tp + 12),
                        odd);
  return _mm256_add_pd(even, odd);
}

/// all(|v_i| < kMinLikelihood) — the vector form of both conditional
/// variants (they agree on the likelihood domain: finite, non-NaN).
RXC_TARGET_AVX2 inline bool all_below_ml(__m256d v) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d lt = _mm256_cmp_pd(_mm256_and_pd(v, abs_mask),
                                   _mm256_set1_pd(kMinLikelihood), _CMP_LT_OQ);
  return _mm256_movemask_pd(lt) == 0xF;
}

/// Pairwise horizontal sum (l0+l1)+(l2+l3).  Every evaluate pattern — full
/// block or tail — reduces with exactly this tree, so per-pattern values are
/// independent of strip offset and chunk length (the bitwise cross-executor
/// pairs depend on that).
RXC_TARGET_AVX2 inline double hsum_pairwise(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

/// Four horizontal sums at once: lane p of the result is the pairwise sum
/// of vp — bit-identical to hsum_pairwise(vp).
RXC_TARGET_AVX2 inline __m256d reduce4(__m256d v0, __m256d v1, __m256d v2,
                                       __m256d v3) {
  const __m256d t01 = _mm256_hadd_pd(v0, v1);  // [v0_01 v1_01 v0_23 v1_23]
  const __m256d t23 = _mm256_hadd_pd(v2, v3);
  const __m256d lo = _mm256_permute2f128_pd(t01, t23, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(t01, t23, 0x31);
  return _mm256_add_pd(lo, hi);
}

/// Four log()s at once — the scalar std::log per pattern is what kept the
/// old evaluate kernel at parity with scalar.  Decompose x = m * 2^k with
/// m in [1/sqrt2, sqrt2), then log(m) = 2*atanh(s), s = (m-1)/(m+1), via
/// the odd series truncated at s^19 (|s| <= 0.1716 makes the next term
/// < 1e-17, below double rounding).  Worst-case error is a couple of ULP;
/// no cancellation is possible because |log m| <= 0.347 < ln2.
///
/// Each lane depends only on its own input, so padding tail blocks with 1.0
/// reproduces full-block bits exactly.  Callers guarantee positive inputs
/// >= 1e-300 (the kernels clamp); +inf falls back to std::log outside.
RXC_TARGET_AVX2 inline __m256d log4_pd(__m256d x) {
  const __m256i mant_mask = _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m256i half_bits = _mm256_set1_epi64x(0x3FE0000000000000LL);
  const __m256i xi = _mm256_castpd_si256(x);
  // Exponent as int32 per lane: x = m0 * 2^k0 with m0 in [0.5, 1).
  const __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(xi, 52),
                                       _mm256_set1_epi64x(1022));
  const __m128i k32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      k64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
  __m256d k = _mm256_cvtepi32_pd(k32);
  __m256d m = _mm256_castsi256_pd(
      _mm256_or_si256(_mm256_and_si256(xi, mant_mask), half_bits));
  // Shift m into [1/sqrt2, sqrt2): double it (and drop k) below the split.
  const __m256d below =
      _mm256_cmp_pd(m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  m = _mm256_add_pd(m, _mm256_and_pd(below, m));
  k = _mm256_add_pd(k, _mm256_and_pd(below, _mm256_set1_pd(-1.0)));

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d s =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d w = _mm256_mul_pd(s, s);
  const __m256d w2 = _mm256_mul_pd(w, w);
  // 2*atanh series coefficients 2/(2i+1), Estrin over w^2 (two chains).
  __m256d even = _mm256_set1_pd(2.0 / 17.0);
  __m256d odd = _mm256_set1_pd(2.0 / 19.0);
  even = _mm256_fmadd_pd(even, w2, _mm256_set1_pd(2.0 / 13.0));
  odd = _mm256_fmadd_pd(odd, w2, _mm256_set1_pd(2.0 / 15.0));
  even = _mm256_fmadd_pd(even, w2, _mm256_set1_pd(2.0 / 9.0));
  odd = _mm256_fmadd_pd(odd, w2, _mm256_set1_pd(2.0 / 11.0));
  even = _mm256_fmadd_pd(even, w2, _mm256_set1_pd(2.0 / 5.0));
  odd = _mm256_fmadd_pd(odd, w2, _mm256_set1_pd(2.0 / 7.0));
  even = _mm256_fmadd_pd(even, w2, _mm256_set1_pd(2.0));
  odd = _mm256_fmadd_pd(odd, w2, _mm256_set1_pd(2.0 / 3.0));
  const __m256d poly = _mm256_fmadd_pd(odd, w, even);
  const __m256d logm = _mm256_mul_pd(s, poly);
  // k*ln2 in hi/lo halves: k*ln2_hi is exact (|k| <= 1075 < 2^11, ln2_hi
  // carries 42 mantissa bits).
  const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
  return _mm256_fmadd_pd(k, ln2_hi, _mm256_fmadd_pd(k, ln2_lo, logm));
}

RXC_TARGET_AVX2 std::uint64_t newview_cat(const NewviewArgs& a) {
  alignas(32) double tp1[kMaxPmatDoubles], tp2[kMaxPmatDoubles];
  transpose_pmats(a.pmat1, a.ncat, tp1);
  transpose_pmats(a.pmat2, a.ncat, tp2);
  // Hot fields in locals so the stores through `out` cannot force re-loads.
  const int* cat = a.cat;
  const seq::DnaCode* tip1 = a.tip1;
  const seq::DnaCode* tip2 = a.tip2;
  const double* partial1 = a.partial1;
  const double* partial2 = a.partial2;
  const std::int32_t* scale1 = a.scale1;
  const std::int32_t* scale2 = a.scale2;
  double* out = a.out;
  std::int32_t* scale_out = a.scale_out;
  const __m256d scale_v = _mm256_set1_pd(kScaleFactor);
  std::uint64_t scale_events = 0;

  auto child1 = [&](std::size_t p) {
    return tip1 ? kTipTable.row(tip1[p]) : partial1 + p * 4;
  };
  auto child2 = [&](std::size_t p) {
    return tip2 ? kTipTable.row(tip2[p]) : partial2 + p * 4;
  };
  auto finish = [&](std::size_t p, __m256d r) {
    std::int32_t scale = scale_in(scale1, p) + scale_in(scale2, p);
    if (all_below_ml(r)) {
      r = _mm256_mul_pd(r, scale_v);
      ++scale;
      ++scale_events;
    }
    _mm256_storeu_pd(out + p * 4, r);
    scale_out[p] = scale;
  };

  // Two patterns per iteration: four independent FMA chains in flight.
  std::size_t p = 0;
  for (; p + 2 <= a.np; p += 2) {
    const int ca = cat ? cat[p] : 0;
    const int cb = cat ? cat[p + 1] : 0;
    const __m256d ra = _mm256_mul_pd(matvec_t(tp1 + ca * 16, child1(p)),
                                     matvec_t(tp2 + ca * 16, child2(p)));
    const __m256d rb =
        _mm256_mul_pd(matvec_t(tp1 + cb * 16, child1(p + 1)),
                      matvec_t(tp2 + cb * 16, child2(p + 1)));
    finish(p, ra);
    finish(p + 1, rb);
  }
  for (; p < a.np; ++p) {
    const int c = cat ? cat[p] : 0;
    finish(p, _mm256_mul_pd(matvec_t(tp1 + c * 16, child1(p)),
                            matvec_t(tp2 + c * 16, child2(p))));
  }
  return scale_events;
}

RXC_TARGET_AVX2 std::uint64_t newview_gamma(const NewviewArgs& a) {
  alignas(32) double tp1[kMaxPmatDoubles], tp2[kMaxPmatDoubles];
  const int ncat = a.ncat;
  transpose_pmats(a.pmat1, ncat, tp1);
  transpose_pmats(a.pmat2, ncat, tp2);
  const __m256d scale_v = _mm256_set1_pd(kScaleFactor);
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    double* out = a.out + p * static_cast<std::size_t>(ncat) * 4;
    bool below = true;
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* l1 = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const double* l2 = a.tip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + idx;
      const __m256d r = _mm256_mul_pd(matvec_t(tp1 + c * 16, l1),
                                      matvec_t(tp2 + c * 16, l2));
      below = below && all_below_ml(r);
      _mm256_storeu_pd(out + c * 4, r);
    }
    std::int32_t scale = scale_in(a.scale1, p) + scale_in(a.scale2, p);
    if (below) {
      for (int c = 0; c < ncat; ++c) {
        const __m256d v = _mm256_loadu_pd(out + c * 4);
        _mm256_storeu_pd(out + c * 4, _mm256_mul_pd(v, scale_v));
      }
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

/// Shared evaluate tail: clamp a block of <= 4 site terms, take their logs
/// in one log4_pd, then apply scale corrections and accumulate in pattern
/// order (matching the scalar kernels' running-sum order).  Lanes past `n`
/// hold the 1.0 padding and are ignored.
struct EvaluateAccum {
  const std::int32_t* scale1;
  const std::int32_t* scale2;
  const double* weights;
  double* site_out;
  double lnl = 0.0;

  RXC_TARGET_AVX2 void block(std::size_t base, std::size_t n, __m256d terms) {
    terms = _mm256_max_pd(terms, _mm256_set1_pd(1e-300));
    // log4_pd assumes finite input; +inf (outside the likelihood domain,
    // but cheap to honor) falls back to std::log lane-wise.
    const int finite = _mm256_movemask_pd(_mm256_cmp_pd(
        terms, _mm256_set1_pd(std::numeric_limits<double>::max()),
        _CMP_LE_OQ));
    alignas(32) double t[4], logs[4];
    _mm256_store_pd(t, terms);
    _mm256_store_pd(logs, log4_pd(terms));
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t p = base + j;
      const double log_term =
          ((finite >> j) & 1) ? logs[j] : std::log(t[j]);
      const double scale =
          static_cast<double>(scale_in(scale1, p) + scale_in(scale2, p));
      const double site = log_term - scale * kLogScaleFactor;
      if (site_out) site_out[p] = site;
      lnl += weights[p] * site;
    }
  }
};

RXC_TARGET_AVX2 double evaluate_cat(const EvaluateArgs& a) {
  alignas(32) double tp[kMaxPmatDoubles];
  transpose_pmats(a.pmat, a.ncat, tp);
  const __m256d f = _mm256_loadu_pd(a.freqs);
  const int* cat = a.cat;
  const seq::DnaCode* tip1 = a.tip1;
  const double* partial1 = a.partial1;
  const double* partial2 = a.partial2;
  EvaluateAccum acc{a.scale1, a.scale2, a.weights, a.site_lnl_out};

  auto term_vec = [&](std::size_t p) {
    const int c = cat ? cat[p] : 0;
    const double* va = tip1 ? kTipTable.row(tip1[p]) : partial1 + p * 4;
    const __m256d bp = matvec_t(tp + c * 16, partial2 + p * 4);
    return _mm256_mul_pd(_mm256_mul_pd(f, _mm256_loadu_pd(va)), bp);
  };

  std::size_t p = 0;
  for (; p + 4 <= a.np; p += 4) {
    acc.block(p, 4,
              reduce4(term_vec(p), term_vec(p + 1), term_vec(p + 2),
                      term_vec(p + 3)));
  }
  if (p < a.np) {
    alignas(32) double t[4] = {1.0, 1.0, 1.0, 1.0};
    for (std::size_t j = 0; p + j < a.np; ++j)
      t[j] = hsum_pairwise(term_vec(p + j));
    acc.block(p, a.np - p, _mm256_load_pd(t));
  }
  return acc.lnl;
}

RXC_TARGET_AVX2 double evaluate_gamma(const EvaluateArgs& a) {
  alignas(32) double tp[kMaxPmatDoubles];
  const int ncat = a.ncat;
  transpose_pmats(a.pmat, ncat, tp);
  const __m256d f = _mm256_loadu_pd(a.freqs);
  const double catw = 1.0 / static_cast<double>(ncat);
  EvaluateAccum acc{a.scale1, a.scale2, a.weights, a.site_lnl_out};

  // Per-pattern category sums are lane-wise and reduce pairwise, so every
  // pattern's term is independent of its position in the strip/block.
  auto term_of = [&](std::size_t p) {
    __m256d sum = _mm256_setzero_pd();
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const __m256d bp = matvec_t(tp + c * 16, a.partial2 + idx);
      sum = _mm256_fmadd_pd(_mm256_mul_pd(f, _mm256_loadu_pd(va)), bp, sum);
    }
    return hsum_pairwise(sum) * catw;
  };

  for (std::size_t p = 0; p < a.np; p += 4) {
    const std::size_t n = a.np - p < 4 ? a.np - p : 4;
    alignas(32) double t[4] = {1.0, 1.0, 1.0, 1.0};
    for (std::size_t j = 0; j < n; ++j) t[j] = term_of(p + j);
    acc.block(p, n, _mm256_load_pd(t));
  }
  return acc.lnl;
}

/// One pattern-slot of the sumtable.  U's rows are already contiguous in k;
/// V needs its columns contiguous, so the caller passes V transposed.
RXC_TARGET_AVX2 inline void sumtable_body(const double* u, const double* vt,
                                          const double* fva, const double* vb,
                                          double* s) {
  __m256d left = _mm256_mul_pd(_mm256_broadcast_sd(fva), _mm256_loadu_pd(u));
  __m256d right = _mm256_mul_pd(_mm256_broadcast_sd(vb), _mm256_loadu_pd(vt));
  for (int i = 1; i < 4; ++i) {
    left = _mm256_fmadd_pd(_mm256_broadcast_sd(fva + i),
                           _mm256_loadu_pd(u + i * 4), left);
    right = _mm256_fmadd_pd(_mm256_broadcast_sd(vb + i),
                            _mm256_loadu_pd(vt + i * 4), right);
  }
  _mm256_storeu_pd(s, _mm256_mul_pd(left, right));
}

RXC_TARGET_AVX2 void make_sumtable_cat(const SumtableArgs& a) {
  const auto& es = *a.es;
  alignas(32) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    alignas(32) double fva[4];
    for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
    sumtable_body(es.u.data(), vt, fva, a.partial2 + p * 4, a.out + p * 4);
  }
}

RXC_TARGET_AVX2 void make_sumtable_gamma(const SumtableArgs& a) {
  const auto& es = *a.es;
  const int ncat = a.ncat;
  alignas(32) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  for (std::size_t p = 0; p < a.np; ++p) {
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      alignas(32) double fva[4];
      for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
      sumtable_body(es.u.data(), vt, fva, a.partial2 + idx, a.out + idx);
    }
  }
}

// The fused edge-gradient kernels build each sumtable slot with
// sumtable_body into registers and accumulate the derivative terms with
// the scalar nr_derivatives order — bitwise-equal to make_sumtable_*_simd
// followed by nr_derivatives_* at the same config.

RXC_TARGET_AVX2 NrResult edge_gradient_cat(const EdgeGradientArgs& a) {
  const auto& es = *a.es;
  alignas(32) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  NrResult r;
  alignas(32) double etab[kMaxRateCategories * 4];
  for (int c = 0; c < a.ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    alignas(32) double fva[4];
    for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
    alignas(32) double s[4];
    sumtable_body(es.u.data(), vt, fva, a.partial2 + p * 4, s);
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* e = etab + c * 4;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < 4; ++k) {
      const double lam = es.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

RXC_TARGET_AVX2 NrResult edge_gradient_gamma(const EdgeGradientArgs& a) {
  const auto& es = *a.es;
  const int ncat = a.ncat;
  alignas(32) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  NrResult r;
  alignas(32) double etab[kMaxRateCategories * 4];
  for (int c = 0; c < ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      alignas(32) double fva[4];
      for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
      alignas(32) double s[4];
      sumtable_body(es.u.data(), vt, fva, a.partial2 + idx, s);
      const double* e = etab + c * 4;
      for (int k = 0; k < 4; ++k) {
        const double lam = es.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

}  // namespace avx2

#endif  // RXC_SIMD_X86

// --- SSE2 path --------------------------------------------------------------

#if defined(RXC_SIMD_X86) && defined(__SSE2__)

namespace sse2 {

/// Rows {row, row+1} of P*l from the transposed matrix: column j of P over
/// this row pair is a contiguous 2-vector at tp[j*4 + row].
inline __m128d matvec_pair_t(const double* tp, int row, const double* l) {
  __m128d acc = _mm_mul_pd(_mm_set1_pd(l[0]), _mm_loadu_pd(tp + row));
  acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(l[1]), _mm_loadu_pd(tp + 4 + row)));
  acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(l[2]), _mm_loadu_pd(tp + 8 + row)));
  acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(l[3]), _mm_loadu_pd(tp + 12 + row)));
  return acc;
}

inline bool all_below_ml(__m128d v01, __m128d v23) {
  const __m128d ml = _mm_set1_pd(kMinLikelihood);
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  const int m01 = _mm_movemask_pd(_mm_cmplt_pd(_mm_and_pd(v01, abs_mask), ml));
  const int m23 = _mm_movemask_pd(_mm_cmplt_pd(_mm_and_pd(v23, abs_mask), ml));
  return (m01 & m23) == 0x3;
}

std::uint64_t newview_cat(const NewviewArgs& a) {
  alignas(16) double tp1[kMaxPmatDoubles], tp2[kMaxPmatDoubles];
  transpose_pmats(a.pmat1, a.ncat, tp1);
  transpose_pmats(a.pmat2, a.ncat, tp2);
  const __m128d scale_v = _mm_set1_pd(kScaleFactor);
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* l1 = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    const double* l2 = a.tip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + p * 4;
    __m128d r01 = _mm_mul_pd(matvec_pair_t(tp1 + c * 16, 0, l1),
                             matvec_pair_t(tp2 + c * 16, 0, l2));
    __m128d r23 = _mm_mul_pd(matvec_pair_t(tp1 + c * 16, 2, l1),
                             matvec_pair_t(tp2 + c * 16, 2, l2));
    std::int32_t scale = scale_in(a.scale1, p) + scale_in(a.scale2, p);
    if (all_below_ml(r01, r23)) {
      r01 = _mm_mul_pd(r01, scale_v);
      r23 = _mm_mul_pd(r23, scale_v);
      ++scale;
      ++scale_events;
    }
    _mm_storeu_pd(a.out + p * 4, r01);
    _mm_storeu_pd(a.out + p * 4 + 2, r23);
    a.scale_out[p] = scale;
  }
  return scale_events;
}

std::uint64_t newview_gamma(const NewviewArgs& a) {
  alignas(16) double tp1[kMaxPmatDoubles], tp2[kMaxPmatDoubles];
  const int ncat = a.ncat;
  transpose_pmats(a.pmat1, ncat, tp1);
  transpose_pmats(a.pmat2, ncat, tp2);
  const __m128d scale_v = _mm_set1_pd(kScaleFactor);
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    double* out = a.out + p * static_cast<std::size_t>(ncat) * 4;
    bool below = true;
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* l1 = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const double* l2 = a.tip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + idx;
      const __m128d r01 = _mm_mul_pd(matvec_pair_t(tp1 + c * 16, 0, l1),
                                     matvec_pair_t(tp2 + c * 16, 0, l2));
      const __m128d r23 = _mm_mul_pd(matvec_pair_t(tp1 + c * 16, 2, l1),
                                     matvec_pair_t(tp2 + c * 16, 2, l2));
      below = below && all_below_ml(r01, r23);
      _mm_storeu_pd(out + c * 4, r01);
      _mm_storeu_pd(out + c * 4 + 2, r23);
    }
    std::int32_t scale = scale_in(a.scale1, p) + scale_in(a.scale2, p);
    if (below) {
      for (int i = 0; i < 2 * ncat; ++i) {
        const __m128d v = _mm_loadu_pd(out + i * 2);
        _mm_storeu_pd(out + i * 2, _mm_mul_pd(v, scale_v));
      }
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

double evaluate_cat(const EvaluateArgs& a) {
  alignas(16) double tp[kMaxPmatDoubles];
  transpose_pmats(a.pmat, a.ncat, tp);
  const __m128d f01 = _mm_loadu_pd(a.freqs);
  const __m128d f23 = _mm_loadu_pd(a.freqs + 2);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    const double* vb = a.partial2 + p * 4;
    const __m128d bp01 = matvec_pair_t(tp + c * 16, 0, vb);
    const __m128d bp23 = matvec_pair_t(tp + c * 16, 2, vb);
    const __m128d t01 = _mm_mul_pd(_mm_mul_pd(f01, _mm_loadu_pd(va)), bp01);
    const __m128d t23 =
        _mm_mul_pd(_mm_mul_pd(f23, _mm_loadu_pd(va + 2)), bp23);
    alignas(16) double l01[2], l23[2];
    _mm_store_pd(l01, t01);
    _mm_store_pd(l23, t23);
    double term = ((l01[0] + l01[1]) + l23[0]) + l23[1];
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_in(a.scale1, p) + scale_in(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

double evaluate_gamma(const EvaluateArgs& a) {
  alignas(16) double tp[kMaxPmatDoubles];
  const int ncat = a.ncat;
  transpose_pmats(a.pmat, ncat, tp);
  const __m128d f01 = _mm_loadu_pd(a.freqs);
  const __m128d f23 = _mm_loadu_pd(a.freqs + 2);
  const double catw = 1.0 / static_cast<double>(ncat);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      const double* vb = a.partial2 + idx;
      const __m128d bp01 = matvec_pair_t(tp + c * 16, 0, vb);
      const __m128d bp23 = matvec_pair_t(tp + c * 16, 2, vb);
      acc01 = _mm_add_pd(acc01,
                         _mm_mul_pd(_mm_mul_pd(f01, _mm_loadu_pd(va)), bp01));
      acc23 = _mm_add_pd(
          acc23, _mm_mul_pd(_mm_mul_pd(f23, _mm_loadu_pd(va + 2)), bp23));
    }
    alignas(16) double l01[2], l23[2];
    _mm_store_pd(l01, acc01);
    _mm_store_pd(l23, acc23);
    double term = (((l01[0] + l01[1]) + l23[0]) + l23[1]) * catw;
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_in(a.scale1, p) + scale_in(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

/// One pattern-slot of the sumtable over k pairs (see avx2::sumtable_body).
inline void sumtable_body(const double* u, const double* vt, const double* fva,
                          const double* vb, double* s) {
  for (int k = 0; k < 4; k += 2) {
    __m128d left = _mm_setzero_pd();
    __m128d right = _mm_setzero_pd();
    for (int i = 0; i < 4; ++i) {
      left = _mm_add_pd(
          left, _mm_mul_pd(_mm_set1_pd(fva[i]), _mm_loadu_pd(u + i * 4 + k)));
      right = _mm_add_pd(
          right, _mm_mul_pd(_mm_set1_pd(vb[i]), _mm_loadu_pd(vt + i * 4 + k)));
    }
    _mm_storeu_pd(s + k, _mm_mul_pd(left, right));
  }
}

void make_sumtable_cat(const SumtableArgs& a) {
  const auto& es = *a.es;
  alignas(16) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    alignas(16) double fva[4];
    for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
    sumtable_body(es.u.data(), vt, fva, a.partial2 + p * 4, a.out + p * 4);
  }
}

void make_sumtable_gamma(const SumtableArgs& a) {
  const auto& es = *a.es;
  const int ncat = a.ncat;
  alignas(16) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  for (std::size_t p = 0; p < a.np; ++p) {
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      alignas(16) double fva[4];
      for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
      sumtable_body(es.u.data(), vt, fva, a.partial2 + idx, a.out + idx);
    }
  }
}

NrResult edge_gradient_cat(const EdgeGradientArgs& a) {
  const auto& es = *a.es;
  alignas(16) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  NrResult r;
  alignas(16) double etab[kMaxRateCategories * 4];
  for (int c = 0; c < a.ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    alignas(16) double fva[4];
    for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
    alignas(16) double s[4];
    sumtable_body(es.u.data(), vt, fva, a.partial2 + p * 4, s);
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* e = etab + c * 4;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < 4; ++k) {
      const double lam = es.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult edge_gradient_gamma(const EdgeGradientArgs& a) {
  const auto& es = *a.es;
  const int ncat = a.ncat;
  alignas(16) double vt[16];
  transpose_pmats(es.v.data(), 1, vt);
  NrResult r;
  alignas(16) double etab[kMaxRateCategories * 4];
  for (int c = 0; c < ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const std::size_t idx = (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* va = a.tip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + idx;
      alignas(16) double fva[4];
      for (int i = 0; i < 4; ++i) fva[i] = es.freqs[i] * va[i];
      alignas(16) double s[4];
      sumtable_body(es.u.data(), vt, fva, a.partial2 + idx, s);
      const double* e = etab + c * 4;
      for (int k = 0; k < 4; ++k) {
        const double lam = es.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

}  // namespace sse2

#endif  // RXC_SIMD_X86 && __SSE2__

// --- dispatched entry points ------------------------------------------------

#if defined(RXC_SIMD_X86) && defined(__SSE2__)
#define RXC_SIMD_DISPATCH(fn, args)                              \
  switch (active_simd_level()) {                                 \
    case SimdLevel::kAvx2: return avx2::fn(args);                \
    case SimdLevel::kSse2: return sse2::fn(args);                \
    case SimdLevel::kScalar: break;                              \
  }
#elif defined(RXC_SIMD_X86)
#define RXC_SIMD_DISPATCH(fn, args)                              \
  switch (active_simd_level()) {                                 \
    case SimdLevel::kAvx2: return avx2::fn(args);                \
    default: break;                                              \
  }
#else
#define RXC_SIMD_DISPATCH(fn, args) (void)0;
#endif

std::uint64_t newview_cat_simd(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(newview_cat, a)
  return newview_cat(a);
}

std::uint64_t newview_gamma_simd(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(newview_gamma, a)
  return newview_gamma(a);
}

double evaluate_cat_simd(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(evaluate_cat, a)
  return evaluate_cat(a);
}

double evaluate_gamma_simd(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(evaluate_gamma, a)
  return evaluate_gamma(a);
}

void make_sumtable_cat_simd(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  RXC_SIMD_DISPATCH(make_sumtable_cat, a)
  return make_sumtable_cat(a);
}

void make_sumtable_gamma_simd(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  RXC_SIMD_DISPATCH(make_sumtable_gamma, a)
  return make_sumtable_gamma(a);
}

NrResult edge_gradient_cat_simd(const EdgeGradientArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(edge_gradient_cat, a)
  return edge_gradient_cat(a);
}

NrResult edge_gradient_gamma_simd(const EdgeGradientArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.ncat >= 1 && a.ncat <= kMaxRateCategories);
  RXC_SIMD_DISPATCH(edge_gradient_gamma, a)
  return edge_gradient_gamma(a);
}

}  // namespace rxc::lh
