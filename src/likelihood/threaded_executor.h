#pragma once
/// \file threaded_executor.h
/// Loop-level shared-memory parallel executor — the analogue of RAxML-OMP
/// (paper §3: "RAxML has been parallelized with OpenMP ... this source of
/// parallelism scales particularly well").  Each kernel invocation's
/// pattern loop is split into chunks distributed over a thread pool;
/// reductions (evaluate, Newton derivatives) accumulate per-chunk partial
/// sums that are combined in a fixed order, so results are deterministic
/// for a given chunk count.

#include <memory>

#include "likelihood/executor.h"
#include "support/thread_pool.h"

namespace rxc::lh {

class ThreadedExecutor final : public KernelExecutor {
public:
  /// `threads` workers; `chunk_patterns` is the loop-split granularity
  /// (fixed, so results are independent of the thread count).
  ThreadedExecutor(int threads, KernelConfig config = {},
                   std::size_t chunk_patterns = 64);

  int thread_count() const { return pool_.thread_count(); }

  void newview(const NewviewTask& task) override;
  double evaluate(const EvaluateTask& task) override;
  void sumtable(const SumtableTask& task) override;
  NrResult nr_derivatives(const NrTask& task) override;
  NrResult edge_gradient(const EdgeGradientTask& task) override;

private:
  /// Chunks covering np patterns — exactly np/chunk_ when chunk_ divides np
  /// (no trailing empty chunk), 0 when np == 0.
  std::size_t chunk_count(std::size_t np) const { return ceil_div(np, chunk_); }

  ThreadPool pool_;
  KernelConfig config_;
  std::size_t chunk_;
  aligned_vector<double> pmat_;
  std::vector<NrResult> partial_;  ///< per-chunk reduction slots
  std::vector<double> partial_lnl_;
};

}  // namespace rxc::lh
