#pragma once
/// \file fast_exp.h
/// Exponential function variants (paper §5.2.2).
///
/// On the real SPE, libm's exp() dominated newview() (50% of SPE time at
/// ~150 calls per invocation) and was replaced with the Cell SDK's numerical
/// exp.  We reproduce both sides of that swap: `exp_libm` forwards to the
/// host libm, `exp_sdk` is a from-scratch numerical method in the SDK's
/// style (range reduction by log2(e), 2^f via a degree-6 minimax polynomial,
/// exponent reassembly through the IEEE-754 bit layout).  The simulator
/// charges different cycle costs for the two (cell/cost_params.h).

#include <cstdint>

namespace rxc::lh {

/// Function-pointer type the transition-matrix kernels accept.
using ExpFn = double (*)(double);

/// Forwarding wrapper around std::exp (the "math library" baseline).
double exp_libm(double x);

/// SDK-style numerical exp.  Max relative error below 3e-14 on
/// [-60, 1] (the range of lambda*rate*branch products the kernels produce;
/// lambda <= 0 and branch lengths are capped).  Saturates to 0 for
/// x < -708 and to +inf for x > 709 like libm.
double exp_sdk(double x);

/// Upper bound for |branch * rate * lambda| inputs the kernels generate;
/// tests verify exp_sdk's error bound over [-kExpDomain, 1].
inline constexpr double kExpDomain = 60.0;

}  // namespace rxc::lh
