#include "likelihood/partitioned_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace rxc::lh {

PartitionedEngine::PartitionedEngine(const seq::Alignment& alignment,
                                     std::vector<PartitionDef> defs)
    : defs_(std::move(defs)) {
  RXC_REQUIRE(!defs_.empty(), "partitioned engine needs >= 1 partition");
  std::size_t previous_end = 0;
  patterns_.reserve(defs_.size());
  parts_.reserve(defs_.size());
  for (const auto& def : defs_) {
    RXC_REQUIRE(def.first_site < def.last_site &&
                    def.last_site <= alignment.site_count(),
                "partition '" + def.name + "': bad site range");
    RXC_REQUIRE(def.first_site >= previous_end,
                "partition '" + def.name + "': ranges overlap or unordered");
    previous_end = def.last_site;

    // Slice the alignment columns for this partition.
    std::vector<io::SeqRecord> records;
    records.reserve(alignment.taxon_count());
    for (std::size_t t = 0; t < alignment.taxon_count(); ++t) {
      io::SeqRecord rec;
      rec.name = alignment.name(t);
      rec.data.reserve(def.last_site - def.first_site);
      for (std::size_t s = def.first_site; s < def.last_site; ++s)
        rec.data.push_back(seq::decode_dna(alignment.at(t, s)));
      records.push_back(std::move(rec));
    }
    patterns_.push_back(seq::PatternAlignment::compress(
        seq::Alignment::from_records(records)));
  }
  // Engines constructed after `patterns_` stops reallocating.
  for (std::size_t i = 0; i < defs_.size(); ++i)
    parts_.push_back(
        std::make_unique<LikelihoodEngine>(patterns_[i], defs_[i].config));
}

void PartitionedEngine::set_tree(tree::Tree* tree) {
  tree_ = tree;
  for (auto& p : parts_) p->set_tree(tree);
}

double PartitionedEngine::evaluate(int edge) {
  double lnl = 0.0;
  for (auto& p : parts_) lnl += p->evaluate(edge);
  return lnl;
}

double PartitionedEngine::log_likelihood() {
  double lnl = 0.0;
  for (auto& p : parts_) lnl += p->log_likelihood();
  return lnl;
}

double PartitionedEngine::optimize_branch(int edge, int max_iterations) {
  RXC_ASSERT(tree_ != nullptr);
  // Joint Newton-Raphson: derivatives sum across partitions because the
  // joint log-likelihood is the sum and the branch length is shared.
  for (auto& p : parts_) p->prepare_branch(edge);

  double t = std::clamp(tree_->branch_length(edge), kMinBranch, kMaxBranch);
  double best_t = t;
  double best_lnl = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < max_iterations; ++iter) {
    NrResult total;
    for (auto& p : parts_) {
      const NrResult r = p->branch_derivatives(t);
      total.lnl += r.lnl;
      total.d1 += r.d1;
      total.d2 += r.d2;
    }
    if (total.lnl > best_lnl) {
      best_lnl = total.lnl;
      best_t = t;
    }
    double t_new;
    if (total.d2 < 0.0) {
      t_new = t - total.d1 / total.d2;
    } else {
      t_new = total.d1 > 0.0 ? t * 2.0 : t * 0.5;
    }
    t_new = std::clamp(t_new, kMinBranch, kMaxBranch);
    if (std::fabs(t_new - t) < 1e-10 * (1.0 + t)) break;
    t = t_new;
  }

  tree_->set_branch_length(edge, best_t);
  on_branch_changed(edge);
  // Absolute joint lnl (the per-partition scale corrections are easiest to
  // fold in via a full evaluate).
  return evaluate(edge);
}

double PartitionedEngine::optimize_all_branches(int max_passes,
                                                double epsilon) {
  double prev = log_likelihood();
  for (int pass = 0; pass < max_passes; ++pass) {
    for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
      if (tree_->edge_alive(static_cast<int>(e)))
        optimize_branch(static_cast<int>(e));
    const double now = log_likelihood();
    RXC_ASSERT_MSG(now > prev - 1e-4,
                   "joint branch optimization decreased the likelihood");
    if (now - prev < epsilon) return now;
    prev = now;
  }
  return prev;
}

double PartitionedEngine::score_insertion(const tree::Tree::PruneRecord& rec,
                                          int target_edge) {
  double lnl = 0.0;
  for (auto& p : parts_) lnl += p->score_insertion(rec, target_edge);
  return lnl;
}

void PartitionedEngine::assign_cat_categories() {
  for (auto& p : parts_)
    if (!p->cat_assignment().empty()) p->assign_cat_categories();
}

std::span<const int> PartitionedEngine::cat_assignment() const {
  for (const auto& p : parts_) {
    const auto span = p->cat_assignment();
    if (!span.empty()) return span;
  }
  return {};
}

void PartitionedEngine::invalidate_all() {
  for (auto& p : parts_) p->invalidate_all();
}
void PartitionedEngine::on_branch_changed(int edge) {
  for (auto& p : parts_) p->on_branch_changed(edge);
}
void PartitionedEngine::on_prune(const tree::Tree::PruneRecord& rec) {
  for (auto& p : parts_) p->on_prune(rec);
}
void PartitionedEngine::on_regraft(int target_edge, int reuse_edge) {
  for (auto& p : parts_) p->on_regraft(target_edge, reuse_edge);
}
void PartitionedEngine::on_restore(const tree::Tree::PruneRecord& rec) {
  for (auto& p : parts_) p->on_restore(rec);
}

KernelCounters PartitionedEngine::counters() const {
  KernelCounters total;
  for (const auto& p : parts_) total += p->counters();
  return total;
}

std::vector<PartitionDef> parse_partition_ranges(const std::string& text,
                                                 const EngineConfig& base) {
  std::vector<PartitionDef> defs;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto eq = trimmed.find('=');
    RXC_REQUIRE(eq != std::string_view::npos,
                "partition line missing '=': " + std::string(trimmed));
    PartitionDef def;
    def.name = std::string(trim(trimmed.substr(0, eq)));
    RXC_REQUIRE(!def.name.empty(), "partition with empty name");
    const std::string range(trim(trimmed.substr(eq + 1)));
    const auto dash = range.find('-');
    RXC_REQUIRE(dash != std::string::npos,
                "partition range must be first-last: " + range);
    const long first = std::stol(range.substr(0, dash));
    const long last = std::stol(range.substr(dash + 1));
    RXC_REQUIRE(first >= 1 && last >= first,
                "bad 1-based partition range: " + range);
    def.first_site = static_cast<std::size_t>(first - 1);
    def.last_site = static_cast<std::size_t>(last);  // inclusive -> [ , )
    def.config = base;
    defs.push_back(std::move(def));
  }
  RXC_REQUIRE(!defs.empty(), "no partitions parsed");
  return defs;
}

}  // namespace rxc::lh
