#include "likelihood/fast_exp.h"

#include <bit>
#include <cmath>
#include <limits>

namespace rxc::lh {

double exp_libm(double x) { return std::exp(x); }

double exp_sdk(double x) {
  // exp(x) = 2^(x * log2(e)) = 2^n * 2^f,  n integer, f in [-0.5, 0.5].
  if (x > 709.0) return std::numeric_limits<double>::infinity();
  if (x < -708.0) return 0.0;

  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;  // ln2 split for
  constexpr double kLn2Lo = 1.90821492927058770002e-10;  // exact reduction
  const double t = x * kLog2e;
  const double n = std::nearbyint(t);
  // r = x - n*ln2, computed in two pieces to keep r fully accurate.
  const double r = (x - n * kLn2Hi) - n * kLn2Lo;

  // e^r on r in [-0.347, 0.347]: Taylor through degree 11 (truncation error
  // r^12/12! < 4e-14 at the interval edge, well below double rounding noise
  // after the 2^n scale).  Horner.
  const double r2 = r * r;
  double p = 1.0 / 39916800.0;   // 1/11!
  p = p * r + 1.0 / 3628800.0;   // 1/10!
  p = p * r + 1.0 / 362880.0;    // 1/9!
  p = p * r + 1.0 / 40320.0;     // 1/8!
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  const double er = 1.0 + r + p * r2;

  // Assemble 2^n via the exponent field; n in [-1074, 1024] here.
  const auto ni = static_cast<std::int64_t>(n);
  if (ni < -1020 || ni > 1020) {
    // Near the under/overflow edges split the scale in two to avoid
    // constructing a denormal/inf scale factor directly.
    const std::int64_t half = ni / 2;
    const double s1 =
        std::bit_cast<double>(static_cast<std::uint64_t>(half + 1023) << 52);
    const double s2 = std::bit_cast<double>(
        static_cast<std::uint64_t>(ni - half + 1023) << 52);
    return er * s1 * s2;
  }
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(ni + 1023) << 52);
  return er * scale;
}

}  // namespace rxc::lh
