#include "likelihood/registry.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "cell/device_model.h"
#include "likelihood/fast_exp.h"
#include "model/dna_model.h"
#include "support/aligned.h"
#include "support/error.h"
#include "support/rng.h"

namespace rxc::lh {
namespace {

/// Threads for the host-threaded backend: the host's concurrency, clamped
/// to [2, 8] so the backend stays distinct from host-simd on 1-core boxes
/// and chunk granularity stays useful on huge ones.
int threaded_width() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 2u, 8u));
}

KernelConfig scalar_kernels() { return KernelConfig{}; }

KernelConfig simd_kernels() {
  KernelConfig config;
  config.simd = true;
  return config;
}

/// The kernel knobs core::Stage kOffloadAll toggles on (fast exp, int-cast
/// conditional, vectorized bodies).  Hardcoded because this layer sits
/// below core/; tests/conformance cross-checks it against
/// core::stage_toggles so drift fails loudly.
KernelConfig cell_offload_all_kernels() {
  KernelConfig config;
  config.exp_fn = &exp_sdk;
  config.scaling = ScalingCheck::kIntCast;
  config.simd = true;
  return config;
}

const char* mode_name(RateMode mode) {
  return mode == RateMode::kCat ? "cat" : "gamma";
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// --- calibration micro-benchmark -------------------------------------------

/// Seeded synthetic inputs of one shape, reused across every backend so
/// the comparison is apples-to-apples.
struct CalibrationWorkload {
  model::EigenSystem es;
  std::vector<double> rates;
  std::vector<int> cat;
  std::vector<double> weights;
  aligned_vector<double> partial1, partial2, out;
  std::vector<std::int32_t> scale1, scale2, scale_out;
  WorkloadShape shape;

  explicit CalibrationWorkload(const WorkloadShape& s)
      : es(model::decompose(model::DnaModel::gtr(
            {1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, {0.30, 0.21, 0.24, 0.25}))),
        shape(s) {
    const std::size_t stride =
        s.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(s.ncat) * 4;
    Rng rng(0x5CA1AB1EULL);
    rates.resize(static_cast<std::size_t>(s.ncat));
    for (int c = 0; c < s.ncat; ++c)
      rates[static_cast<std::size_t>(c)] = 0.05 * (c + 1);
    if (s.mode == RateMode::kCat) {
      cat.resize(s.patterns);
      for (int& c : cat)
        c = static_cast<int>(rng.below(static_cast<std::uint64_t>(s.ncat)));
    }
    weights.assign(s.patterns, 1.0);
    partial1.resize(s.patterns * stride);
    partial2.resize(s.patterns * stride);
    out.resize(s.patterns * stride);
    for (double& x : partial1) x = rng.uniform(1e-3, 1e-2);
    for (double& x : partial2) x = rng.uniform(1e-3, 1e-2);
    scale1.assign(s.patterns, 0);
    scale2.assign(s.patterns, 0);
    scale_out.assign(s.patterns, 0);
  }

  TaskContext context() {
    TaskContext ctx;
    ctx.es = &es;
    ctx.rates = rates.data();
    ctx.ncat = shape.ncat;
    ctx.cat = shape.mode == RateMode::kCat ? cat.data() : nullptr;
    ctx.mode = shape.mode;
    return ctx;
  }

  NewviewTask newview_task() {
    NewviewTask task;
    task.ctx = context();
    task.brlen1 = 0.13;
    task.brlen2 = 0.27;
    task.np = shape.patterns;
    task.partial1 = {partial1.data(), scale1.data()};
    task.partial2 = {partial2.data(), scale2.data()};
    task.out = out.data();
    task.scale_out = scale_out.data();
    return task;
  }

  EvaluateTask evaluate_task() {
    EvaluateTask task;
    task.ctx = context();
    task.brlen = 0.17;
    task.np = shape.patterns;
    task.partial1 = {partial1.data(), scale1.data()};
    task.partial2 = {partial2.data(), scale2.data()};
    task.weights = weights.data();
    return task;
  }
};

/// One backend's score: wall nanoseconds per pattern over `reps` rounds of
/// newview + evaluate (the two kernels that dominate tree search).
double time_backend(const Backend& backend, CalibrationWorkload& wl,
                    int reps) {
  const auto exec = make_executor(backend.spec);
  NewviewTask nv = wl.newview_task();
  EvaluateTask ev = wl.evaluate_task();
  double sink = 0.0;
  // Warm-up: first-touch allocations, thread-pool spin-up, DMA buffers.
  exec->newview(nv);
  sink += exec->evaluate(ev);

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    exec->newview(nv);
    sink += exec->evaluate(ev);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  // Keep `sink` alive without <benchmark>-style tricks.
  if (sink == 0.12345) std::abort();
  return ns / (static_cast<double>(reps) *
               static_cast<double>(wl.shape.patterns));
}

}  // namespace

std::string TolerancePolicy::describe() const {
  if (bitwise) return "bitwise (sums rel " + fmt_double(sum_rel) + ")";
  return "<= " + std::to_string(value_ulp) + " ulp (sums rel " +
         fmt_double(sum_rel) + ")";
}

void WorkloadShape::validate() const {
  if (taxa < 1) throw ConfigError("shape: taxa must be >= 1");
  if (patterns < 1) throw ConfigError("shape: patterns must be >= 1");
  if (ncat < 1 || ncat > kMaxRateCategories) {
    throw ConfigError("shape: ncat must be in [1, " +
                      std::to_string(kMaxRateCategories) + "], got " +
                      std::to_string(ncat));
  }
  if (states != 4)
    throw ConfigError("shape: only 4-state DNA models are supported");
}

std::string WorkloadShape::describe() const {
  std::ostringstream os;
  os << "taxa=" << taxa << " patterns=" << patterns << " ncat=" << ncat
     << " mode=" << mode_name(mode) << " states=" << states;
  return os.str();
}

std::vector<Backend> registered_backends() {
  std::vector<Backend> backends;

  Backend scalar;
  scalar.name = "host-scalar";
  scalar.spec = ExecutorSpec::host_spec(HostOptions{scalar_kernels()});
  scalar.ref_kernels = scalar_kernels();
  scalar.tolerance = {true, 0, 0.0};  // it IS the reference computation
  backends.push_back(scalar);

  Backend simd;
  simd.name = "host-simd";
  simd.spec = ExecutorSpec::host_spec(HostOptions{simd_kernels()});
  // Validated against the SCALAR kernels — the whole point is bounding the
  // vectorized rewrite (reassociated matvecs, pairwise site reductions,
  // the 4-lane log).  Worst observed deviation is a few ULP; 32 leaves
  // headroom while still sitting ~1e5 below any real kernel bug.
  simd.ref_kernels = scalar_kernels();
  simd.tolerance = {false, 32, 1e-9};
  backends.push_back(simd);

  Backend threaded;
  threaded.name = "host-threaded";
  ThreadedOptions threaded_opts;
  threaded_opts.kernels = simd_kernels();
  threaded_opts.threads = threaded_width();
  threaded.spec = ExecutorSpec::threaded_spec(threaded_opts);
  // Same kernels as the reference: chunking must not change a bit of any
  // per-pattern value; only the chunk reductions reassociate.
  threaded.ref_kernels = simd_kernels();
  threaded.tolerance = {true, 0, 1e-9};
  backends.push_back(threaded);

  if (executor_registered(ExecutorKind::kSpe)) {
    Backend cell;
    cell.name = "cell-sim";
    // CellOptions defaults: stage 7 (core::Stage::kOffloadAll ordinal) on
    // the default device model (the cell-2007 preset).
    cell.spec = ExecutorSpec::cell_spec();
    cell.ref_kernels = cell_offload_all_kernels();
    // The paper-faithful promise: strip-mining through (simulated) DMA is
    // bitwise; only per-strip lnl accumulation reassociates.
    cell.tolerance = {true, 0, 1e-9};
    backends.push_back(cell);
  }
  return backends;
}

std::optional<Backend> find_backend(const std::string& name) {
  // "cell-sim@<device>": the Cell backend pinned to a named device model.
  // Device names cannot contain '@', so the first '@' is the split point.
  const std::string cell_prefix = "cell-sim@";
  if (name.size() > cell_prefix.size() &&
      name.compare(0, cell_prefix.size(), cell_prefix) == 0) {
    std::optional<Backend> base = find_backend("cell-sim");
    if (!base) return std::nullopt;
    const std::optional<cell::DeviceModel> device =
        cell::find_device_model(name.substr(cell_prefix.size()));
    if (!device) return std::nullopt;
    base->name = name;
    base->spec.cell().device = *device;
    return base;
  }
  for (Backend& b : registered_backends())
    if (b.name == name) return std::move(b);
  return std::nullopt;
}

const CalibrationEntry* CalibrationTable::best() const {
  const CalibrationEntry* winner = nullptr;
  for (const CalibrationEntry& e : entries) {
    if (!find_backend(e.backend)) continue;
    if (winner == nullptr || e.nanos_per_pattern < winner->nanos_per_pattern ||
        (e.nanos_per_pattern == winner->nanos_per_pattern &&
         e.backend < winner->backend)) {
      winner = &e;
    }
  }
  return winner;
}

std::string CalibrationTable::to_string() const {
  std::ostringstream os;
  os << "shape " << shape.describe() << "\n";
  for (const CalibrationEntry& e : entries)
    os << "backend " << e.backend << " " << fmt_double(e.nanos_per_pattern)
       << "\n";
  return os.str();
}

CalibrationTable CalibrationTable::from_string(const std::string& text) {
  CalibrationTable table;
  std::istringstream is(text);
  std::string line;
  bool saw_shape = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "shape") {
      std::string field;
      while (ls >> field) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
          throw ConfigError("calibration table: malformed shape field '" +
                            field + "'");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        try {
          if (key == "taxa") {
            table.shape.taxa = std::stoi(value);
          } else if (key == "patterns") {
            table.shape.patterns = std::stoull(value);
          } else if (key == "ncat") {
            table.shape.ncat = std::stoi(value);
          } else if (key == "states") {
            table.shape.states = std::stoi(value);
          } else if (key == "mode") {
            if (value != "cat" && value != "gamma")
              throw ConfigError("calibration table: unknown rate mode '" +
                                value + "'");
            table.shape.mode =
                value == "cat" ? RateMode::kCat : RateMode::kGamma;
          } else {
            throw ConfigError("calibration table: unknown shape key '" + key +
                              "'");
          }
        } catch (const std::invalid_argument&) {
          throw ConfigError("calibration table: non-numeric shape value '" +
                            value + "'");
        }
      }
      saw_shape = true;
    } else if (tag == "backend") {
      CalibrationEntry entry;
      ls >> entry.backend >> entry.nanos_per_pattern;
      if (ls.fail() || entry.backend.empty())
        throw ConfigError("calibration table: malformed backend line '" +
                          line + "'");
      table.entries.push_back(std::move(entry));
    } else {
      throw ConfigError("calibration table: unknown line tag '" + tag + "'");
    }
  }
  if (!saw_shape)
    throw ConfigError("calibration table: missing shape line");
  table.shape.validate();
  return table;
}

namespace {

CalibrationTable calibrate_backends(const WorkloadShape& shape,
                                    const std::vector<Backend>& backends) {
  CalibrationWorkload wl(shape);
  // Enough rounds that a small shape still clears timer granularity, capped
  // so a 10^6-pattern shape doesn't stall job admission.
  const int reps = static_cast<int>(
      std::clamp<std::size_t>((std::size_t{1} << 16) / shape.patterns, 2, 64));
  CalibrationTable table;
  table.shape = shape;
  for (const Backend& backend : backends)
    table.entries.push_back(
        {backend.name, time_backend(backend, wl, reps)});
  return table;
}

}  // namespace

CalibrationTable calibrate(const WorkloadShape& shape) {
  shape.validate();
  return calibrate_backends(shape, registered_backends());
}

CalibrationTable calibrate(const WorkloadShape& shape,
                           const std::vector<std::string>& device_names) {
  shape.validate();
  std::vector<Backend> backends = registered_backends();
  for (const std::string& device : device_names) {
    std::optional<Backend> b = find_backend("cell-sim@" + device);
    if (!b) {
      throw ConfigError(
          "calibrate: cannot score device model '" + device +
          "' — unknown model name or the simulated-Cell backend is not "
          "registered in this binary");
    }
    backends.push_back(std::move(*b));
  }
  return calibrate_backends(shape, backends);
}

Backend choose_backend(const WorkloadShape& shape) {
  return choose_backend(shape, calibrate(shape));
}

Backend choose_backend(const WorkloadShape& shape,
                       const CalibrationTable& pinned) {
  shape.validate();
  if (pinned.shape.taxa != shape.taxa ||
      pinned.shape.patterns != shape.patterns ||
      pinned.shape.ncat != shape.ncat || pinned.shape.mode != shape.mode ||
      pinned.shape.states != shape.states) {
    throw ConfigError("choose_backend: calibration table was built for "
                      "shape [" + pinned.shape.describe() + "], job is [" +
                      shape.describe() + "]");
  }
  const CalibrationEntry* winner = pinned.best();
  if (winner == nullptr)
    throw ConfigError("choose_backend: no calibration entry names a backend "
                      "registered in this binary");
  return *find_backend(winner->backend);
}

std::unique_ptr<KernelExecutor> choose_executor(const WorkloadShape& shape) {
  return make_executor(choose_backend(shape).spec);
}

std::unique_ptr<KernelExecutor> choose_executor(
    const WorkloadShape& shape, const CalibrationTable& pinned) {
  return make_executor(choose_backend(shape, pinned).spec);
}

}  // namespace rxc::lh
