#include "likelihood/kernels.h"

#include <cmath>
#include <vector>

#include "likelihood/tip_table.h"
#include "support/error.h"

namespace rxc::lh {

KernelCounters& KernelCounters::operator+=(const KernelCounters& o) {
  newview_calls += o.newview_calls;
  newview_patterns += o.newview_patterns;
  evaluate_calls += o.evaluate_calls;
  sumtable_calls += o.sumtable_calls;
  nr_calls += o.nr_calls;
  edge_gradient_calls += o.edge_gradient_calls;
  pmatrix_builds += o.pmatrix_builds;
  exp_calls += o.exp_calls;
  scale_events += o.scale_events;
  return *this;
}

std::uint64_t build_pmatrices(const model::EigenSystem& es,
                              const double* rates, int ncat, double brlen,
                              ExpFn exp_fn, double* out) {
  RXC_ASSERT(brlen >= 0.0);
  std::uint64_t exp_calls = 0;
  for (int c = 0; c < ncat; ++c) {
    double diag[4];
    diag[0] = 1.0;  // lambda[0] == 0: exp(0) == 1, no call (paper counts 3/cat)
    for (int k = 1; k < 4; ++k) {
      diag[k] = exp_fn(es.lambda[k] * rates[c] * brlen);
      ++exp_calls;
    }
    double* p = out + c * 16;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        double sum = 0.0;
        for (int k = 0; k < 4; ++k)
          sum += es.u[i * 4 + k] * diag[k] * es.v[k * 4 + j];
        p[i * 4 + j] = sum;
      }
  }
  return exp_calls;
}

namespace {

/// Fetches the 4-vector of child conditional likelihoods for pattern p:
/// either a tip-table row or a slice of an inner partial.
inline const double* child_vec_cat(const seq::DnaCode* tip,
                                   const double* partial, std::size_t p) {
  return tip ? kTipTable.row(tip[p]) : partial + p * 4;
}

inline std::int32_t scale_of(const std::int32_t* scale, std::size_t p) {
  return scale ? scale[p] : 0;
}

}  // namespace

namespace {

/// The CAT newview loop, specialized per child-type combination — RAxML
/// keeps "distinct, highly optimized versions of the loop" for the
/// tip-tip / tip-inner / inner-inner cases (paper §5.2.3); the templates
/// let the compiler drop the per-pattern child-type branches.
template <bool kTip1, bool kTip2>
std::uint64_t newview_cat_loop(const NewviewArgs& a) {
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* p1 = a.pmat1 + c * 16;
    const double* p2 = a.pmat2 + c * 16;
    const double* l1 =
        kTip1 ? kTipTable.row(a.tip1[p]) : a.partial1 + p * 4;
    const double* l2 =
        kTip2 ? kTipTable.row(a.tip2[p]) : a.partial2 + p * 4;
    double* out = a.out + p * 4;
    for (int i = 0; i < 4; ++i) {
      const double s1 = p1[i * 4 + 0] * l1[0] + p1[i * 4 + 1] * l1[1] +
                        p1[i * 4 + 2] * l1[2] + p1[i * 4 + 3] * l1[3];
      const double s2 = p2[i * 4 + 0] * l2[0] + p2[i * 4 + 1] * l2[1] +
                        p2[i * 4 + 2] * l2[2] + p2[i * 4 + 3] * l2[3];
      out[i] = s1 * s2;
    }
    // Tip children carry no scale counts; the compiler elides the reads.
    std::int32_t scale = (kTip1 ? 0 : scale_of(a.scale1, p)) +
                         (kTip2 ? 0 : scale_of(a.scale2, p));
    if (needs_scaling(a.scaling, out, 4)) {
      for (int i = 0; i < 4; ++i) out[i] *= kScaleFactor;
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

}  // namespace

std::uint64_t newview_cat(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  RXC_ASSERT(a.tip1 || a.partial1);
  RXC_ASSERT(a.tip2 || a.partial2);
  RXC_ASSERT(!(a.tip2 && a.partial1));  // canonical order: tip first
  if (a.tip1 && a.tip2) return newview_cat_loop<true, true>(a);
  if (a.tip1) return newview_cat_loop<true, false>(a);
  return newview_cat_loop<false, false>(a);
}

std::uint64_t newview_gamma(const NewviewArgs& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  RXC_ASSERT(a.tip1 || a.partial1);
  RXC_ASSERT(a.tip2 || a.partial2);
  RXC_ASSERT(!(a.tip2 && a.partial1));
  const int ncat = a.ncat;
  std::uint64_t scale_events = 0;

  for (std::size_t p = 0; p < a.np; ++p) {
    double* out = a.out + p * static_cast<std::size_t>(ncat) * 4;
    for (int c = 0; c < ncat; ++c) {
      const double* p1 = a.pmat1 + c * 16;
      const double* p2 = a.pmat2 + c * 16;
      const double* l1 =
          a.tip1 ? kTipTable.row(a.tip1[p])
                 : a.partial1 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* l2 =
          a.tip2 ? kTipTable.row(a.tip2[p])
                 : a.partial2 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      double* o = out + c * 4;
      for (int i = 0; i < 4; ++i) {
        const double s1 = p1[i * 4 + 0] * l1[0] + p1[i * 4 + 1] * l1[1] +
                          p1[i * 4 + 2] * l1[2] + p1[i * 4 + 3] * l1[3];
        const double s2 = p2[i * 4 + 0] * l2[0] + p2[i * 4 + 1] * l2[1] +
                          p2[i * 4 + 2] * l2[2] + p2[i * 4 + 3] * l2[3];
        o[i] = s1 * s2;
      }
    }
    std::int32_t scale = scale_of(a.scale1, p) + scale_of(a.scale2, p);
    if (needs_scaling(a.scaling, out, ncat * 4)) {
      for (int i = 0; i < ncat * 4; ++i) out[i] *= kScaleFactor;
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

double evaluate_cat(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* pm = a.pmat + c * 16;
    const double* va = child_vec_cat(a.tip1, a.partial1, p);
    const double* vb = a.partial2 + p * 4;
    double term = 0.0;
    for (int i = 0; i < 4; ++i) {
      const double bi = pm[i * 4 + 0] * vb[0] + pm[i * 4 + 1] * vb[1] +
                        pm[i * 4 + 2] * vb[2] + pm[i * 4 + 3] * vb[3];
      term += a.freqs[i] * va[i] * bi;
    }
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_of(a.scale1, p) + scale_of(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

double evaluate_gamma(const EvaluateArgs& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  const int ncat = a.ncat;
  const double catw = 1.0 / static_cast<double>(ncat);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    double term = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* pm = a.pmat + c * 16;
      const double* va =
          a.tip1 ? kTipTable.row(a.tip1[p])
                 : a.partial1 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* vb = a.partial2 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      for (int i = 0; i < 4; ++i) {
        const double bi = pm[i * 4 + 0] * vb[0] + pm[i * 4 + 1] * vb[1] +
                          pm[i * 4 + 2] * vb[2] + pm[i * 4 + 3] * vb[3];
        term += a.freqs[i] * va[i] * bi;
      }
    }
    term *= catw;
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_of(a.scale1, p) + scale_of(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

void make_sumtable_cat(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  RXC_ASSERT(a.tip1 || a.partial1);
  const auto& es = *a.es;
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = child_vec_cat(a.tip1, a.partial1, p);
    const double* vb = a.partial2 + p * 4;
    double* s = a.out + p * 4;
    for (int k = 0; k < 4; ++k) {
      double left = 0.0, right = 0.0;
      for (int i = 0; i < 4; ++i) {
        left += es.freqs[i] * va[i] * es.u[i * 4 + k];
        right += es.v[k * 4 + i] * vb[i];
      }
      s[k] = left * right;
    }
  }
}

void make_sumtable_gamma(const SumtableArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  RXC_ASSERT(a.tip1 || a.partial1);
  const auto& es = *a.es;
  const int ncat = a.ncat;
  for (std::size_t p = 0; p < a.np; ++p) {
    for (int c = 0; c < ncat; ++c) {
      const double* va =
          a.tip1 ? kTipTable.row(a.tip1[p])
                 : a.partial1 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* vb = a.partial2 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      double* s = a.out + (p * static_cast<std::size_t>(ncat) + c) * 4;
      for (int k = 0; k < 4; ++k) {
        double left = 0.0, right = 0.0;
        for (int i = 0; i < 4; ++i) {
          left += es.freqs[i] * va[i] * es.u[i * 4 + k];
          right += es.v[k * 4 + i] * vb[i];
        }
        s[k] = left * right;
      }
    }
  }
}

NrResult nr_derivatives_cat(const NrArgs& a) {
  RXC_ASSERT(a.sumtable && a.lambda && a.rates && a.weights);
  NrResult r;
  // Shared exponent table: e^{lambda_k * rate_c * t} for all (c, k).
  // lambda[0] == 0 -> factor 1, no exp call (matches the paper's counting).
  std::vector<double> etab(static_cast<std::size_t>(a.ncat) * 4);
  for (int c = 0; c < a.ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(a.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* s = a.sumtable + p * 4;
    const double* e = etab.data() + c * 4;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < 4; ++k) {
      const double lam = a.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult nr_derivatives_gamma(const NrArgs& a) {
  RXC_ASSERT(a.sumtable && a.lambda && a.rates && a.weights);
  NrResult r;
  const int ncat = a.ncat;
  std::vector<double> etab(static_cast<std::size_t>(ncat) * 4);
  for (int c = 0; c < ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(a.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* s = a.sumtable + (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* e = etab.data() + c * 4;
      for (int k = 0; k < 4; ++k) {
        const double lam = a.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult edge_gradient_cat(const EdgeGradientArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  const auto& es = *a.es;
  NrResult r;
  std::vector<double> etab(static_cast<std::size_t>(a.ncat) * 4);
  for (int c = 0; c < a.ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  for (std::size_t p = 0; p < a.np; ++p) {
    // The sumtable row, built in registers — identical operation order to
    // make_sumtable_cat, so the fused path is bitwise-equal to the
    // two-step sumtable + nr_derivatives sequence.
    const double* va = child_vec_cat(a.tip1, a.partial1, p);
    const double* vb = a.partial2 + p * 4;
    double s[4];
    for (int k = 0; k < 4; ++k) {
      double left = 0.0, right = 0.0;
      for (int i = 0; i < 4; ++i) {
        left += es.freqs[i] * va[i] * es.u[i * 4 + k];
        right += es.v[k * 4 + i] * vb[i];
      }
      s[k] = left * right;
    }
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* e = etab.data() + c * 4;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < 4; ++k) {
      const double lam = es.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult edge_gradient_gamma(const EdgeGradientArgs& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  const auto& es = *a.es;
  const int ncat = a.ncat;
  NrResult r;
  std::vector<double> etab(static_cast<std::size_t>(ncat) * 4);
  for (int c = 0; c < ncat; ++c) {
    etab[c * 4 + 0] = 1.0;
    for (int k = 1; k < 4; ++k) {
      etab[c * 4 + k] = a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* va =
          a.tip1 ? kTipTable.row(a.tip1[p])
                 : a.partial1 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      const double* vb = a.partial2 + (p * static_cast<std::size_t>(ncat) + c) * 4;
      double s[4];
      for (int k = 0; k < 4; ++k) {
        double left = 0.0, right = 0.0;
        for (int i = 0; i < 4; ++i) {
          left += es.freqs[i] * va[i] * es.u[i * 4 + k];
          right += es.v[k * 4 + i] * vb[i];
        }
        s[k] = left * right;
      }
      const double* e = etab.data() + c * 4;
      for (int k = 0; k < 4; ++k) {
        const double lam = es.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

}  // namespace rxc::lh
