#include "likelihood/threaded_executor.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "support/error.h"

namespace rxc::lh {
namespace {

/// [lo, count] of chunk `c` over np patterns with chunk size `chunk`.
struct Range {
  std::size_t lo, count;
};
Range chunk_range(std::size_t c, std::size_t np, std::size_t chunk) {
  const std::size_t lo = c * chunk;
  return {lo, std::min(chunk, np - lo)};
}

}  // namespace

ThreadedExecutor::ThreadedExecutor(int threads, KernelConfig config,
                                   std::size_t chunk_patterns)
    : pool_(threads), config_(config), chunk_(chunk_patterns) {
  RXC_REQUIRE(chunk_patterns >= 1, "chunk size must be positive");
}

void ThreadedExecutor::newview(const NewviewTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  const std::size_t need = 2 * static_cast<std::size_t>(ctx.ncat) * 16;
  if (pmat_.size() < need) pmat_.resize(need);
  double* pm1 = pmat_.data();
  double* pm2 = pm1 + static_cast<std::size_t>(ctx.ncat) * 16;
  std::uint64_t exp_calls = build_pmatrices(*ctx.es, ctx.rates, ctx.ncat,
                                            task.brlen1, config_.exp_fn, pm1);
  exp_calls += build_pmatrices(*ctx.es, ctx.rates, ctx.ncat, task.brlen2,
                               config_.exp_fn, pm2);
  counters_.exp_calls += exp_calls;
  counters_.pmatrix_builds += 2;

  const std::size_t nchunks = chunk_count(task.np);
  const std::size_t stride =
      ctx.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(ctx.ncat) * 4;
  std::atomic<std::uint64_t> events{0};

  pool_.parallel_for(nchunks, [&](std::size_t c) {
    const auto [lo, count] = chunk_range(c, task.np, chunk_);
    NewviewArgs args;
    args.pmat1 = pm1;
    args.pmat2 = pm2;
    args.ncat = ctx.ncat;
    args.cat = ctx.cat ? ctx.cat + lo : nullptr;
    args.np = count;
    args.tip1 = task.tip1 ? task.tip1.codes + lo : nullptr;
    args.partial1 =
        task.partial1 ? task.partial1.values + lo * stride : nullptr;
    args.scale1 =
        task.partial1.scale ? task.partial1.scale + lo : nullptr;
    args.tip2 = task.tip2 ? task.tip2.codes + lo : nullptr;
    args.partial2 =
        task.partial2 ? task.partial2.values + lo * stride : nullptr;
    args.scale2 =
        task.partial2.scale ? task.partial2.scale + lo : nullptr;
    args.out = task.out + lo * stride;
    args.scale_out = task.scale_out + lo;
    args.scaling = config_.scaling;
    std::uint64_t chunk_events;
    if (ctx.mode == RateMode::kCat) {
      chunk_events =
          config_.simd ? newview_cat_simd(args) : newview_cat(args);
    } else {
      chunk_events =
          config_.simd ? newview_gamma_simd(args) : newview_gamma(args);
    }
    events.fetch_add(chunk_events);
  });

  counters_.scale_events += events.load();
  ++counters_.newview_calls;
  counters_.newview_patterns += task.np;
  static obs::Counter& calls = obs::counter("kernel.newview.calls");
  static obs::Counter& patterns = obs::counter("kernel.newview.patterns");
  static obs::Counter& scales = obs::counter("kernel.scale_events");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  calls.add();
  patterns.add(task.np);
  scales.add(events.load());
  exps.add(exp_calls);
}

double ThreadedExecutor::evaluate(const EvaluateTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  const std::size_t need = static_cast<std::size_t>(ctx.ncat) * 16;
  if (pmat_.size() < need) pmat_.resize(need);
  const std::uint64_t exp_calls = build_pmatrices(
      *ctx.es, ctx.rates, ctx.ncat, task.brlen, config_.exp_fn, pmat_.data());
  counters_.exp_calls += exp_calls;
  ++counters_.pmatrix_builds;

  const std::size_t nchunks = chunk_count(task.np);
  const std::size_t stride =
      ctx.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(ctx.ncat) * 4;
  if (partial_lnl_.size() < nchunks) partial_lnl_.resize(nchunks);

  pool_.parallel_for(nchunks, [&](std::size_t c) {
    const auto [lo, count] = chunk_range(c, task.np, chunk_);
    EvaluateArgs args;
    args.pmat = pmat_.data();
    args.freqs = ctx.es->freqs.data();
    args.ncat = ctx.ncat;
    args.cat = ctx.cat ? ctx.cat + lo : nullptr;
    args.np = count;
    args.tip1 = task.tip1 ? task.tip1.codes + lo : nullptr;
    args.partial1 =
        task.partial1 ? task.partial1.values + lo * stride : nullptr;
    args.scale1 =
        task.partial1.scale ? task.partial1.scale + lo : nullptr;
    args.partial2 = task.partial2.values + lo * stride;
    args.scale2 =
        task.partial2.scale ? task.partial2.scale + lo : nullptr;
    args.weights = task.weights + lo;
    args.site_lnl_out =
        task.site_lnl_out ? task.site_lnl_out + lo : nullptr;
    if (ctx.mode == RateMode::kCat) {
      partial_lnl_[c] =
          config_.simd ? evaluate_cat_simd(args) : evaluate_cat(args);
    } else {
      partial_lnl_[c] =
          config_.simd ? evaluate_gamma_simd(args) : evaluate_gamma(args);
    }
  });

  ++counters_.evaluate_calls;
  static obs::Counter& calls = obs::counter("kernel.evaluate.calls");
  static obs::Counter& exps = obs::counter("kernel.exp_calls");
  calls.add();
  exps.add(exp_calls);
  double lnl = 0.0;  // fixed-order reduction: deterministic
  for (std::size_t c = 0; c < nchunks; ++c) lnl += partial_lnl_[c];
  return lnl;
}

void ThreadedExecutor::sumtable(const SumtableTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  const std::size_t nchunks = chunk_count(task.np);
  const std::size_t stride =
      ctx.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(ctx.ncat) * 4;
  pool_.parallel_for(nchunks, [&](std::size_t c) {
    const auto [lo, count] = chunk_range(c, task.np, chunk_);
    SumtableArgs args;
    args.es = ctx.es;
    args.ncat = ctx.ncat;
    args.np = count;
    args.tip1 = task.tip1 ? task.tip1.codes + lo : nullptr;
    args.partial1 =
        task.partial1 ? task.partial1.values + lo * stride : nullptr;
    args.partial2 = task.partial2.values + lo * stride;
    args.out = task.out + lo * stride;
    if (ctx.mode == RateMode::kCat) {
      config_.simd ? make_sumtable_cat_simd(args) : make_sumtable_cat(args);
    } else {
      config_.simd ? make_sumtable_gamma_simd(args)
                   : make_sumtable_gamma(args);
    }
  });
  ++counters_.sumtable_calls;
  static obs::Counter& calls = obs::counter("kernel.sumtable.calls");
  calls.add();
}

NrResult ThreadedExecutor::nr_derivatives(const NrTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  const std::size_t nchunks = chunk_count(task.np);
  const std::size_t stride =
      ctx.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(ctx.ncat) * 4;
  if (partial_.size() < nchunks) partial_.resize(nchunks);

  pool_.parallel_for(nchunks, [&](std::size_t c) {
    const auto [lo, count] = chunk_range(c, task.np, chunk_);
    NrArgs args;
    args.sumtable = task.sumtable + lo * stride;
    args.lambda = ctx.es->lambda.data();
    args.rates = ctx.rates;
    args.ncat = ctx.ncat;
    args.cat = ctx.cat ? ctx.cat + lo : nullptr;
    args.np = count;
    args.weights = task.weights + lo;
    args.t = task.t;
    args.exp_fn = config_.exp_fn;
    partial_[c] = ctx.mode == RateMode::kCat ? nr_derivatives_cat(args)
                                             : nr_derivatives_gamma(args);
  });

  ++counters_.nr_calls;
  counters_.exp_calls += 3ull * ctx.ncat;  // etab cost counted once
  static obs::Counter& calls = obs::counter("kernel.nr.calls");
  calls.add();
  NrResult total;
  for (std::size_t c = 0; c < nchunks; ++c) {
    total.lnl += partial_[c].lnl;
    total.d1 += partial_[c].d1;
    total.d2 += partial_[c].d2;
  }
  return total;
}

NrResult ThreadedExecutor::edge_gradient(const EdgeGradientTask& task) {
  task.validate();
  const auto& ctx = task.ctx;
  const std::size_t nchunks = chunk_count(task.np);
  const std::size_t stride =
      ctx.mode == RateMode::kCat ? 4 : static_cast<std::size_t>(ctx.ncat) * 4;
  if (partial_.size() < nchunks) partial_.resize(nchunks);

  pool_.parallel_for(nchunks, [&](std::size_t c) {
    const auto [lo, count] = chunk_range(c, task.np, chunk_);
    EdgeGradientArgs args;
    args.es = ctx.es;
    args.rates = ctx.rates;
    args.ncat = ctx.ncat;
    args.cat = ctx.cat ? ctx.cat + lo : nullptr;
    args.np = count;
    args.tip1 = task.tip1 ? task.tip1.codes + lo : nullptr;
    args.partial1 =
        task.partial1 ? task.partial1.values + lo * stride : nullptr;
    args.partial2 = task.partial2.values + lo * stride;
    args.weights = task.weights + lo;
    args.t = task.t;
    args.exp_fn = config_.exp_fn;
    if (ctx.mode == RateMode::kCat) {
      partial_[c] = config_.simd ? edge_gradient_cat_simd(args)
                                 : edge_gradient_cat(args);
    } else {
      partial_[c] = config_.simd ? edge_gradient_gamma_simd(args)
                                 : edge_gradient_gamma(args);
    }
  });

  ++counters_.edge_gradient_calls;
  counters_.exp_calls += 3ull * ctx.ncat;  // etab cost counted once
  static obs::Counter& calls = obs::counter("kernel.edge_gradient.calls");
  calls.add();
  NrResult total;
  total.exp_calls = 3ull * ctx.ncat;
  for (std::size_t c = 0; c < nchunks; ++c) {
    total.lnl += partial_[c].lnl;
    total.d1 += partial_[c].d1;
    total.d2 += partial_[c].d2;
  }
  return total;
}

}  // namespace rxc::lh
