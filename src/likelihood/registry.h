#pragma once
/// \file registry.h
/// Backend registry + workload-shaped auto-selection, after BEAGLE's
/// resource model (PAPERS.md): one likelihood API over several backends,
/// each advertising how it may deviate numerically from the scalar
/// reference, plus a calibration pass that scores every constructible
/// backend against a concrete job shape and picks the fastest.
///
/// Where BEAGLE scores abstract resources (flops, memory) statically, a
/// simulated-Cell fleet has no honest static model — the Cell backend's
/// wall-clock cost depends on simulation overhead, the threaded backend's
/// on the host's core count, the SIMD backend's on what the CPU dispatches
/// to.  So calibrate() measures: it runs each backend's newview+evaluate
/// over a synthetic workload of the job's shape (taxa x patterns x rate
/// categories x states) and records nanoseconds per pattern.  The resulting
/// CalibrationTable serializes (to_string/from_string) so servers can pin a
/// measured table instead of re-benching per job — and so tests can pin a
/// synthetic one and assert selection is deterministic.
///
/// Tolerance contract: every backend declares a TolerancePolicy relative to
/// a plain HostExecutor running `ref_kernels`.  Bitwise backends promise
/// identical per-pattern values (chunking/strip-mining must not change a
/// bit); non-bitwise backends bound per-pattern deviation in ULPs.  The
/// conformance suite (tests/conformance) asserts exactly the declared
/// policy for every registered backend.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "likelihood/executor.h"

namespace rxc::lh {

/// How a backend's numbers may deviate from a scalar-host reference run
/// with the backend's own kernel knobs (Backend::ref_kernels).
struct TolerancePolicy {
  /// Per-pattern values (newview partials, site lnls, sumtable entries)
  /// are bit-identical to the reference.
  bool bitwise = true;
  /// When !bitwise: maximum ULP distance for per-pattern values.
  std::uint64_t value_ulp = 0;
  /// Reductions (evaluate lnl, NR derivatives) reassociate; relative bound
  /// against the accumulated magnitude.
  double sum_rel = 1e-9;

  std::string describe() const;
};

/// The job shape selection keys on — the same axes BEAGLE's resource
/// scoring uses.  `taxa` sizes the tree (how many newviews amortize one
/// calibration); the rest size a single kernel invocation.
struct WorkloadShape {
  int taxa = 4;
  std::size_t patterns = 256;
  int ncat = 4;
  RateMode mode = RateMode::kCat;
  int states = 4;  ///< DNA only; validate() rejects anything else

  /// Throws rxc::ConfigError on non-positive axes, states != 4, or ncat
  /// out of [1, kMaxRateCategories].
  void validate() const;
  std::string describe() const;
};

struct Backend {
  std::string name;    ///< stable id: "host-scalar", "host-simd", ...
  ExecutorSpec spec;   ///< what make_executor builds for this backend
  /// Kernel knobs a plain HostExecutor needs to reproduce this backend's
  /// per-pattern numbers (the conformance reference).  For cell-sim this
  /// mirrors core::Stage offload-all toggles — asserted against
  /// core::stage_toggles by the conformance suite, since this layer cannot
  /// see core/.
  KernelConfig ref_kernels;
  TolerancePolicy tolerance;
};

/// Every backend constructible in this binary, in deterministic order:
/// host-scalar, host-simd, host-threaded, then cell-sim when rxc_core is
/// linked (executor_registered(kSpe)).
std::vector<Backend> registered_backends();

/// Lookup by stable name; nullopt when unknown or not constructible here.
/// "cell-sim@<device>" resolves the simulated-Cell backend pinned to a
/// named device model (preset or registered via cell::register_device_model)
/// — '@' cannot appear in device names, so the split is unambiguous.
std::optional<Backend> find_backend(const std::string& name);

// --- calibration -----------------------------------------------------------

struct CalibrationEntry {
  std::string backend;
  double nanos_per_pattern = 0.0;
};

struct CalibrationTable {
  WorkloadShape shape;
  std::vector<CalibrationEntry> entries;

  /// Fastest entry naming a registered backend; ties break on backend name
  /// (lexicographically smallest) so selection is stable under reordering.
  /// nullptr when no entry names a registered backend.
  const CalibrationEntry* best() const;

  /// Line-based round-trippable text ("shape ..." then one "backend <name>
  /// <ns>" per entry, full double precision).
  std::string to_string() const;
  /// Inverse of to_string(); throws rxc::ConfigError on malformed input.
  static CalibrationTable from_string(const std::string& text);
};

/// Micro-benchmarks every registered backend against a synthetic workload
/// of `shape` (seeded, deterministic data; wall-clock timing) and returns
/// the scored table.  Repetitions scale inversely with shape size so tiny
/// shapes still measure above timer noise.
CalibrationTable calibrate(const WorkloadShape& shape);

/// Same, additionally scoring the simulated-Cell backend on each named
/// device model ("cell-sim@<device>" entries) — the (backend x device)
/// grid of the sweep tooling.  Throws rxc::ConfigError on an unknown
/// device name or when the Cell backend is not constructible here.
CalibrationTable calibrate(const WorkloadShape& shape,
                           const std::vector<std::string>& device_names);

/// The winner for `shape` per a fresh calibrate() run / a pinned table.
/// The pinned overload validates that the table was built for the same
/// shape and throws rxc::ConfigError when no usable backend remains.
Backend choose_backend(const WorkloadShape& shape);
Backend choose_backend(const WorkloadShape& shape,
                       const CalibrationTable& pinned);

/// make_executor(choose_backend(...).spec) — the one-call auto path.
std::unique_ptr<KernelExecutor> choose_executor(const WorkloadShape& shape);
std::unique_ptr<KernelExecutor> choose_executor(const WorkloadShape& shape,
                                                const CalibrationTable& pinned);

}  // namespace rxc::lh
