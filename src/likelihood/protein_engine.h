#pragma once
/// \file protein_engine.h
/// Likelihood engine for amino-acid (20-state) data — the AA side of the
/// paper's "alignments of DNA or AA sequences".  Mirrors the DNA
/// LikelihoodEngine's public surface (partial caches per directed edge,
/// invalidation hooks, Newton-Raphson branch optimization, lazy-SPR
/// insertion scoring) over the runtime-N kernels.  Host execution only:
/// the paper's Cell evaluation is DNA, so this engine does not route
/// through the simulated SPEs.

#include <cstdint>
#include <span>
#include <vector>

#include "likelihood/kernels.h"  // RateMode, KernelCounters
#include "likelihood/kernels_nstate.h"
#include "model/aa_model.h"
#include "model/rates.h"
#include "seq/aa_alignment.h"
#include "support/aligned.h"
#include "tree/tree.h"

namespace rxc::lh {

struct ProteinEngineConfig {
  model::AaModel model = model::AaModel::poisson();
  RateMode mode = RateMode::kGamma;
  int categories = 4;
  double alpha = 1.0;          ///< Gamma shape (kGamma)
  ExpFn exp_fn = &exp_libm;
  ScalingCheck scaling = ScalingCheck::kIntCast;
};

class ProteinEngine {
public:
  ProteinEngine(const seq::AaPatternAlignment& pa,
                ProteinEngineConfig config);

  void set_tree(tree::Tree* tree);
  tree::Tree* tree() const { return tree_; }

  void set_pattern_weights(const std::vector<double>& weights);
  std::span<const double> pattern_weights() const {
    return {weights_.data(), np_};
  }

  double evaluate(int edge);
  double log_likelihood();
  std::vector<double> site_log_likelihoods(int edge);
  double optimize_branch(int edge, int max_iterations = 32);
  double optimize_all_branches(int max_passes = 8, double epsilon = 1e-3);
  void assign_cat_categories();
  double score_insertion(const tree::Tree::PruneRecord& rec, int target_edge);

  /// GAMMA mode: replaces the shape parameter and invalidates all caches.
  void set_gamma_alpha(double alpha);
  double gamma_alpha() const { return cfg_.alpha; }

  void invalidate_all();
  void on_branch_changed(int edge);
  void on_prune(const tree::Tree::PruneRecord& rec);
  void on_regraft(int target_edge, int reuse_edge);
  void on_restore(const tree::Tree::PruneRecord& rec);

  const KernelCounters& counters() const { return counters_; }
  const model::EigenSystemN& eigen() const { return es_; }
  const std::vector<double>& rates() const { return rates_; }
  std::span<const int> cat_assignment() const {
    return {cat_.data(), cat_.empty() ? 0 : np_};
  }
  std::size_t pattern_count() const { return np_; }

private:
  static constexpr int kN = model::kAaStates;

  double* partial_ptr(int dir) {
    return partials_.data() + static_cast<std::size_t>(dir) * stride_;
  }
  std::int32_t* scale_ptr(int dir) {
    return scales_.data() + static_cast<std::size_t>(dir) * np_;
  }
  void ensure_partial(int dir);
  void compute_partial(int dir);
  void invalidate_away(int from_node, int via_edge);
  void invalidate_slot(int edge);
  double* pmat_scratch(int slots);
  /// Runs evaluate at `edge` filling `task-style` args; shared by
  /// evaluate/site_log_likelihoods.
  double evaluate_impl(int edge, double* site_out);

  struct ChildRef {
    const std::uint8_t* tip = nullptr;
    const double* partial = nullptr;
    const std::int32_t* scale = nullptr;
  };
  ChildRef child_ref(int child_node, int edge);

  const seq::AaPatternAlignment* pa_;
  ProteinEngineConfig cfg_;
  model::EigenSystemN es_;
  std::vector<double> rates_;
  std::vector<int> cat_;
  aligned_vector<double> weights_;
  aligned_vector<double> tipvec_;  ///< kAaCodeCount x 20
  tree::Tree* tree_ = nullptr;

  std::size_t np_ = 0;
  std::size_t stride_ = 0;
  std::size_t ndirs_ = 0;
  aligned_vector<double> partials_;
  std::vector<std::int32_t> scales_;
  std::vector<std::uint8_t> valid_;
  aligned_vector<double> sumtable_;
  aligned_vector<double> pmat_;
  KernelCounters counters_;
};

}  // namespace rxc::lh
