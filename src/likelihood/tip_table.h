#pragma once
/// \file tip_table.h
/// Conditional likelihood vectors for alignment characters: entry [code][i]
/// is 1.0 if base i is compatible with the (possibly ambiguous) character,
/// else 0.0.  Gaps (code 15) are all-ones: total ignorance.

#include <array>

#include "seq/alignment.h"

namespace rxc::lh {

struct TipTable {
  /// [code][state]; code 0 is unused (no character encodes to 0).
  alignas(16) double v[16][4];

  constexpr TipTable() : v{} {
    for (int code = 0; code < 16; ++code)
      for (int state = 0; state < 4; ++state)
        v[code][state] = (code & (1 << state)) ? 1.0 : 0.0;
  }

  const double* row(seq::DnaCode code) const { return v[code]; }
};

inline constexpr TipTable kTipTable{};

}  // namespace rxc::lh
