#include "likelihood/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "support/error.h"

namespace rxc::lh {

void EngineConfig::validate() const {
  RXC_REQUIRE(categories >= 1 && categories <= kMaxRateCategories,
              "engine config: categories must be in [1, " +
                  std::to_string(kMaxRateCategories) + "], got " +
                  std::to_string(categories));
  RXC_REQUIRE(mode != RateMode::kGamma || alpha > 0.0,
              "engine config: Gamma shape alpha must be positive");
  model.validate();
}

LikelihoodEngine::LikelihoodEngine(const seq::PatternAlignment& pa,
                                   EngineConfig config)
    : pa_(&pa),
      cfg_(config),
      es_(model::decompose(config.model)),
      host_exec_(config.kernels),
      exec_(&host_exec_),
      np_(pa.pattern_count()),
      scale_stride_(round_up(pa.pattern_count(), 4)) {
  cfg_.validate();
  obs::init_from_env();
  weights_.assign(round_up(np_, 2), 0.0);
  std::copy(pa.weights().begin(), pa.weights().end(), weights_.begin());
  if (cfg_.mode == RateMode::kCat) {
    rates_ = model::CatRates::make(static_cast<std::size_t>(cfg_.categories))
                 .rates;
    // Until assign_cat_categories() runs, every pattern sits in the category
    // whose rate is closest to 1 — behaves like a homogeneous model.
    int neutral = 0;
    for (std::size_t c = 1; c < rates_.size(); ++c)
      if (std::fabs(rates_[c] - 1.0) < std::fabs(rates_[neutral] - 1.0))
        neutral = static_cast<int>(c);
    cat_.assign(round_up(np_, 4), neutral);
    stride_ = np_ * 4;
  } else {
    rates_ = model::DiscreteGamma::make(cfg_.alpha,
                                        static_cast<std::size_t>(cfg_.categories))
                 .rates;
    stride_ = np_ * static_cast<std::size_t>(cfg_.categories) * 4;
  }
}

void LikelihoodEngine::set_tree(tree::Tree* tree) {
  if (tree == nullptr) {  // detach (e.g. the observed tree is going away)
    tree_ = nullptr;
    std::fill(valid_.begin(), valid_.end(), 0);
    return;
  }
  RXC_REQUIRE(tree->tip_count() == pa_->taxon_count(),
              "tree taxon count != alignment taxon count");
  tree_ = tree;
  ndirs_ = tree_->directed_count();
  partials_.resize((ndirs_ + 1) * stride_);
  scales_.assign((ndirs_ + 1) * scale_stride_, 0);
  valid_.assign(ndirs_, 0);
  ++epoch_;
}

void LikelihoodEngine::set_executor(KernelExecutor* executor) {
  exec_ = executor ? executor : &host_exec_;
}

void LikelihoodEngine::set_pattern_weights(const std::vector<double>& weights) {
  RXC_REQUIRE(weights.size() == np_, "weight vector size != pattern count");
  std::copy(weights.begin(), weights.end(), weights_.begin());
  ++epoch_;
}

TaskContext LikelihoodEngine::context() const {
  TaskContext ctx;
  ctx.es = &es_;
  ctx.rates = rates_.data();
  ctx.ncat = cfg_.categories;
  ctx.cat = cfg_.mode == RateMode::kCat ? cat_.data() : nullptr;
  ctx.mode = cfg_.mode;
  return ctx;
}

LikelihoodEngine::ChildRef LikelihoodEngine::child_ref(int child_node,
                                                       int edge) {
  ChildRef ref;
  if (tree_->is_tip(child_node)) {
    ref.tip.codes = pa_->row(child_node);
  } else {
    const int dir = tree_->dir_index(child_node, edge);
    ref.partial = {partial_ptr(dir), scale_ptr(dir)};
  }
  return ref;
}

NewviewTask LikelihoodEngine::build_newview_task(int dir) {
  const auto [u, edge] = tree_->dir_nodes(dir);
  RXC_ASSERT(!tree_->is_tip(u));

  // The two children: u's neighbors other than across `edge`.
  int child_node[2], child_edge[2];
  int count = 0;
  for (const auto& nb : tree_->neighbors(u)) {
    if (nb.edge == edge) continue;
    child_node[count] = nb.node;
    child_edge[count] = nb.edge;
    ++count;
  }
  RXC_ASSERT(count == 2);

  // Canonical order: a tip child goes first.
  if (!tree_->is_tip(child_node[0]) && tree_->is_tip(child_node[1])) {
    std::swap(child_node[0], child_node[1]);
    std::swap(child_edge[0], child_edge[1]);
  }

  NewviewTask task;
  task.ctx = context();
  task.brlen1 = tree_->branch_length(child_edge[0]);
  task.brlen2 = tree_->branch_length(child_edge[1]);
  task.np = np_;
  const ChildRef c1 = child_ref(child_node[0], child_edge[0]);
  const ChildRef c2 = child_ref(child_node[1], child_edge[1]);
  task.tip1 = c1.tip;
  task.partial1 = c1.partial;
  task.tip2 = c2.tip;
  task.partial2 = c2.partial;
  task.out = partial_ptr(dir);
  task.scale_out = scale_ptr(dir);
  return task;
}

void LikelihoodEngine::compute_partial(int dir) {
  const NewviewTask task = build_newview_task(dir);
  static obs::Counter& misses = obs::counter("engine.partial.misses");
  misses.add();
  exec_->newview(task);
  valid_[dir] = 1;
}

void LikelihoodEngine::ensure_partial(int dir) {
  RXC_ASSERT(tree_ != nullptr);
  static obs::Counter& hits = obs::counter("engine.partial.hits");
  if (valid_[dir]) {
    hits.add();
    return;
  }
  ensure_partials({dir}, /*preorder=*/false);
}

void LikelihoodEngine::ensure_partials(const std::vector<int>& roots,
                                       bool preorder) {
  RXC_ASSERT(tree_ != nullptr);
  // Pass 1: collect the stale dirs in the exact order the sequential
  // recursion computes them (children deepest-first, neighbor order, roots
  // in request order), using `planned` the way the compute loop uses
  // valid_.
  std::vector<int> order;
  std::vector<char> planned(valid_.size(), 0);
  std::vector<int> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    const int d = stack.back();
    if (valid_[d] || planned[d]) {
      stack.pop_back();
      continue;
    }
    const auto [u, edge] = tree_->dir_nodes(d);
    RXC_ASSERT_MSG(!tree_->is_tip(u), "partial requested at a tip");
    bool ready = true;
    for (const auto& nb : tree_->neighbors(u)) {
      if (nb.edge == edge || tree_->is_tip(nb.node)) continue;
      const int cd = tree_->dir_index(nb.node, nb.edge);
      if (!valid_[cd] && !planned[cd]) {
        stack.push_back(cd);
        ready = false;
      }
    }
    if (!ready) continue;
    planned[d] = 1;
    order.push_back(d);
    stack.pop_back();
  }

  // Pass 2: submit maximal consecutive runs of mutually independent tasks
  // as one batch — a run breaks exactly when the next dir reads a partial
  // the current batch is still computing.  Inside a run, outputs are
  // distinct dir slots and inputs are partials validated by earlier runs,
  // so the executor may compute the batch in any order (or concurrently);
  // the trace it records stays in `order`.
  static obs::Counter& misses = obs::counter("engine.partial.misses");
  std::vector<NewviewTask> batch;
  std::vector<char> in_batch(valid_.size(), 0);
  std::vector<int> batch_dirs;
  const auto flush = [&] {
    if (batch.empty()) return;
    if (preorder)
      exec_->preorder_batch(batch.data(), batch.size());
    else
      exec_->newview_batch(batch.data(), batch.size());
    for (const int d : batch_dirs) {
      valid_[d] = 1;
      in_batch[d] = 0;
    }
    batch.clear();
    batch_dirs.clear();
  };
  for (const int d : order) {
    const auto [u, edge] = tree_->dir_nodes(d);
    for (const auto& nb : tree_->neighbors(u)) {
      if (nb.edge == edge || tree_->is_tip(nb.node)) continue;
      if (in_batch[tree_->dir_index(nb.node, nb.edge)]) {
        flush();
        break;
      }
    }
    batch.push_back(build_newview_task(d));
    batch_dirs.push_back(d);
    in_batch[d] = 1;
    misses.add();
  }
  flush();
}

double LikelihoodEngine::evaluate(int edge) {
  auto [u, v] = tree_->edge_nodes(edge);
  // Side 2 must be inner; side 1 may be a tip.
  if (tree_->is_tip(v)) std::swap(u, v);
  RXC_ASSERT_MSG(!tree_->is_tip(v), "evaluate: tip-tip edge");

  EvaluateTask task;
  task.ctx = context();
  task.brlen = tree_->branch_length(edge);
  task.np = np_;
  if (tree_->is_tip(u)) {
    task.tip1.codes = pa_->row(u);
  } else {
    const int du = tree_->dir_index(u, edge);
    ensure_partial(du);
    task.partial1 = {partial_ptr(du), scale_ptr(du)};
  }
  const int dv = tree_->dir_index(v, edge);
  ensure_partial(dv);
  task.partial2 = {partial_ptr(dv), scale_ptr(dv)};
  task.weights = weights_.data();
  return exec_->evaluate(task);
}

double LikelihoodEngine::log_likelihood() {
  for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
    if (tree_->edge_alive(static_cast<int>(e)))
      return evaluate(static_cast<int>(e));
  RXC_ASSERT_MSG(false, "tree has no live edges");
  return 0.0;
}

std::vector<double> LikelihoodEngine::site_log_likelihoods(int edge) {
  // DMA-capable scratch (padded + aligned); copied into the plain result.
  if (site_scratch_.size() < round_up(np_, 2))
    site_scratch_.resize(round_up(np_, 2));
  auto [u, v] = tree_->edge_nodes(edge);
  if (tree_->is_tip(v)) std::swap(u, v);
  EvaluateTask task;
  task.ctx = context();
  task.brlen = tree_->branch_length(edge);
  task.np = np_;
  if (tree_->is_tip(u)) {
    task.tip1.codes = pa_->row(u);
  } else {
    const int du = tree_->dir_index(u, edge);
    ensure_partial(du);
    task.partial1 = {partial_ptr(du), scale_ptr(du)};
  }
  const int dv = tree_->dir_index(v, edge);
  ensure_partial(dv);
  task.partial2 = {partial_ptr(dv), scale_ptr(dv)};
  task.weights = weights_.data();
  task.site_lnl_out = site_scratch_.data();
  exec_->evaluate(task);
  return {site_scratch_.begin(), site_scratch_.begin() + np_};
}

void LikelihoodEngine::prepare_branch(int edge) {
  auto [u, v] = tree_->edge_nodes(edge);
  if (tree_->is_tip(v)) std::swap(u, v);
  RXC_ASSERT(!tree_->is_tip(v));

  SumtableTask st;
  st.ctx = context();
  st.np = np_;
  if (tree_->is_tip(u)) {
    st.tip1.codes = pa_->row(u);
  } else {
    const int du = tree_->dir_index(u, edge);
    ensure_partial(du);
    st.partial1.values = partial_ptr(du);
  }
  const int dv = tree_->dir_index(v, edge);
  ensure_partial(dv);
  st.partial2.values = partial_ptr(dv);
  const std::size_t st_size =
      cfg_.mode == RateMode::kCat
          ? np_ * 4
          : np_ * static_cast<std::size_t>(cfg_.categories) * 4;
  if (sumtable_.size() < st_size) sumtable_.resize(st_size);
  st.out = sumtable_.data();
  exec_->sumtable(st);
}

NrResult LikelihoodEngine::branch_derivatives(double t) {
  NrTask nr;
  nr.ctx = context();
  nr.sumtable = sumtable_.data();
  nr.np = np_;
  nr.weights = weights_.data();
  nr.t = t;
  return exec_->nr_derivatives(nr);
}

double LikelihoodEngine::optimize_branch(int edge, int max_iterations) {
  auto [u, v] = tree_->edge_nodes(edge);
  if (tree_->is_tip(v)) std::swap(u, v);
  RXC_ASSERT(!tree_->is_tip(v));

  // Prerequisite newviews run (and are signaled) outside the compound;
  // everything from the sumtable on is one offloaded makenewz unit.
  if (!tree_->is_tip(u)) ensure_partial(tree_->dir_index(u, edge));
  ensure_partial(tree_->dir_index(v, edge));
  struct CompoundGuard {
    KernelExecutor* exec;
    explicit CompoundGuard(KernelExecutor* e) : exec(e) {}
    ~CompoundGuard() { exec->end_compound(); }
  };
  exec_->begin_compound();
  CompoundGuard compound(exec_);
  prepare_branch(edge);

  NrTask nr;
  nr.ctx = context();
  nr.sumtable = sumtable_.data();
  nr.np = np_;
  nr.weights = weights_.data();

  double t = std::clamp(tree_->branch_length(edge), kMinBranch, kMaxBranch);
  double best_t = t;
  double best_lnl = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < max_iterations; ++iter) {
    nr.t = t;
    const NrResult res = exec_->nr_derivatives(nr);
    if (res.lnl > best_lnl) {
      best_lnl = res.lnl;
      best_t = t;
    }
    double t_new;
    if (res.d2 < 0.0) {
      t_new = t - res.d1 / res.d2;  // Newton step toward the maximum
    } else {
      t_new = res.d1 > 0.0 ? t * 2.0 : t * 0.5;  // fall back to doubling
    }
    t_new = std::clamp(t_new, kMinBranch, kMaxBranch);
    if (std::fabs(t_new - t) < 1e-10 * (1.0 + t)) {
      t = t_new;
      nr.t = t;
      const NrResult final_res = exec_->nr_derivatives(nr);
      if (final_res.lnl > best_lnl) {
        best_lnl = final_res.lnl;
        best_t = t;
      }
      break;
    }
    t = t_new;
  }

  tree_->set_branch_length(edge, best_t);
  on_branch_changed(edge);
  // best_lnl excludes the (t-independent) scaling corrections; fold them in
  // so callers get the absolute log-likelihood.  The dir-toward partials
  // stay valid across the branch change.
  const int dv = tree_->dir_index(v, edge);
  const std::int32_t* sv = scale_ptr(dv);
  const std::int32_t* su =
      tree_->is_tip(u) ? nullptr : scale_ptr(tree_->dir_index(u, edge));
  for (std::size_t p = 0; p < np_; ++p) {
    const double count =
        static_cast<double>(sv[p] + (su ? su[p] : 0));
    best_lnl -= count * weights_[p] * kLogScaleFactor;
  }
  return best_lnl;
}

double LikelihoodEngine::optimize_all_branches(int max_passes,
                                               double epsilon) {
  obs::ScopedTimer span("engine.optimize_all_branches", "engine");
  double prev = log_likelihood();
  for (int pass = 0; pass < max_passes; ++pass) {
    for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
      if (tree_->edge_alive(static_cast<int>(e)))
        optimize_branch(static_cast<int>(e));
    const double now = log_likelihood();
    RXC_ASSERT_MSG(now > prev - 1e-4,
                   "branch optimization decreased the likelihood");
    if (now - prev < epsilon) return now;
    prev = now;
  }
  return prev;
}

std::vector<EdgeGradient> LikelihoodEngine::branch_gradient() {
  RXC_ASSERT(tree_ != nullptr);
  obs::ScopedTimer span("engine.branch_gradient", "engine");

  // One linear-time plan: the union of both directed partials of every
  // alive edge covers the post-order (inward) sweep AND the pre-order
  // (outward, root-ward) sweep — an outward partial dir(u, e) is an
  // ordinary newview whose children are the sibling's inward partial and
  // the parent's outward partial, so the two-pass planner level-schedules
  // the whole tree into independent preorder_batch submissions.
  std::vector<int> edges;
  std::vector<int> roots;
  for (std::size_t e = 0; e < tree_->edge_slots(); ++e) {
    const int edge = static_cast<int>(e);
    if (!tree_->edge_alive(edge)) continue;
    edges.push_back(edge);
    const auto [u, v] = tree_->edge_nodes(edge);
    if (!tree_->is_tip(u)) roots.push_back(tree_->dir_index(u, edge));
    if (!tree_->is_tip(v)) roots.push_back(tree_->dir_index(v, edge));
  }
  ensure_partials(roots, /*preorder=*/true);

  // One fused edge-gradient batch over every edge — the O(N) sweep that
  // replaces N per-edge sumtable + Newton-derivative loops.
  std::vector<EdgeGradientTask> tasks;
  tasks.reserve(edges.size());
  for (const int edge : edges) {
    auto [u, v] = tree_->edge_nodes(edge);
    if (tree_->is_tip(v)) std::swap(u, v);
    RXC_ASSERT_MSG(!tree_->is_tip(v), "branch_gradient: tip-tip edge");
    EdgeGradientTask task;
    task.ctx = context();
    task.np = np_;
    if (tree_->is_tip(u)) {
      task.tip1.codes = pa_->row(u);
    } else {
      task.partial1.values = partial_ptr(tree_->dir_index(u, edge));
    }
    task.partial2.values = partial_ptr(tree_->dir_index(v, edge));
    task.weights = weights_.data();
    task.t = std::clamp(tree_->branch_length(edge), kMinBranch, kMaxBranch);
    tasks.push_back(task);
  }
  std::vector<NrResult> results(tasks.size());
  exec_->edge_gradient_batch(tasks.data(), tasks.size(), results.data());

  std::vector<EdgeGradient> out(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const int edge = edges[i];
    auto [u, v] = tree_->edge_nodes(edge);
    if (tree_->is_tip(v)) std::swap(u, v);
    EdgeGradient& g = out[i];
    g.edge = edge;
    g.t = tasks[i].t;
    g.lnl = results[i].lnl;
    g.d1 = results[i].d1;
    g.d2 = results[i].d2;
    // The kernel's lnl excludes the (t-independent) scaling corrections;
    // fold them in so callers get the absolute log-likelihood.
    const std::int32_t* sv = scale_ptr(tree_->dir_index(v, edge));
    const std::int32_t* su =
        tree_->is_tip(u) ? nullptr : scale_ptr(tree_->dir_index(u, edge));
    for (std::size_t p = 0; p < np_; ++p) {
      const double count = static_cast<double>(sv[p] + (su ? su[p] : 0));
      g.lnl -= count * weights_[p] * kLogScaleFactor;
    }
  }
  return out;
}

double LikelihoodEngine::smooth_branches(int max_passes, double epsilon) {
  obs::ScopedTimer span("engine.smooth_branches", "engine");
  double prev = log_likelihood();
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::vector<EdgeGradient> grads = branch_gradient();
    std::vector<std::pair<int, double>> applied;  // (edge, old length)
    std::vector<int> polish;  // per-edge makenewz fallback queue
    for (const EdgeGradient& g : grads) {
      if (g.d2 >= 0.0) {  // non-concave: a Newton step is not a max step
        polish.push_back(g.edge);
        continue;
      }
      const double t_new =
          std::clamp(g.t - g.d1 / g.d2, kMinBranch, kMaxBranch);
      if (std::fabs(t_new - g.t) < 1e-10 * (1.0 + g.t)) continue;
      applied.emplace_back(g.edge, g.t);
      tree_->set_branch_length(g.edge, t_new);
    }
    // Every branch may have moved, so every partial is suspect.
    if (!applied.empty()) invalidate_all();
    double now = applied.empty() ? prev : log_likelihood();
    if (now < prev) {
      // The simultaneous Newton step overshot (edges are not independent):
      // revert and polish the moved edges one at a time instead.
      for (const auto& [edge, t] : applied) tree_->set_branch_length(edge, t);
      invalidate_all();
      for (const auto& [edge, t] : applied) polish.push_back(edge);
      now = prev;
    }
    for (const int edge : polish) (void)optimize_branch(edge);
    if (!polish.empty()) now = log_likelihood();
    RXC_ASSERT_MSG(now > prev - 1e-4,
                   "gradient smoothing decreased the likelihood");
    if (now - prev < epsilon) return now;
    prev = now;
  }
  return prev;
}

void LikelihoodEngine::assign_cat_categories() {
  RXC_REQUIRE(cfg_.mode == RateMode::kCat,
              "assign_cat_categories requires CAT mode");
  obs::ScopedTimer span("engine.assign_cat_categories", "engine");
  // Score every pattern under every palette rate by forcing all patterns
  // into category c and reading site log-likelihoods.
  int eval_edge = -1;
  for (std::size_t e = 0; e < tree_->edge_slots(); ++e)
    if (tree_->edge_alive(static_cast<int>(e))) {
      eval_edge = static_cast<int>(e);
      break;
    }
  RXC_ASSERT(eval_edge >= 0);


  std::vector<double> best_lnl(np_, -std::numeric_limits<double>::infinity());
  std::vector<int> best_cat(np_, 0);
  for (int c = 0; c < cfg_.categories; ++c) {
    std::fill(cat_.begin(), cat_.end(), c);
    invalidate_all();
    const std::vector<double> site = site_log_likelihoods(eval_edge);
    for (std::size_t p = 0; p < np_; ++p) {
      if (site[p] > best_lnl[p]) {
        best_lnl[p] = site[p];
        best_cat[p] = c;
      }
    }
  }
  std::copy(best_cat.begin(), best_cat.end(), cat_.begin());

  // Renormalize palette: weighted mean rate == 1.
  double wsum = 0.0, rsum = 0.0;
  for (std::size_t p = 0; p < np_; ++p) {
    wsum += weights_[p];
    rsum += weights_[p] * rates_[cat_[p]];
  }
  RXC_ASSERT(rsum > 0.0);
  const double scale = wsum / rsum;
  for (double& r : rates_) r *= scale;
  invalidate_all();
}

void LikelihoodEngine::set_gamma_alpha(double alpha) {
  RXC_REQUIRE(cfg_.mode == RateMode::kGamma,
              "set_gamma_alpha requires GAMMA mode");
  RXC_REQUIRE(alpha > 0.0, "alpha must be positive");
  cfg_.alpha = alpha;
  rates_ = model::DiscreteGamma::make(alpha,
                                      static_cast<std::size_t>(cfg_.categories))
               .rates;
  invalidate_all();
  ++epoch_;
}

void LikelihoodEngine::set_model(const model::DnaModel& m) {
  m.validate();
  cfg_.model = m;
  es_ = model::decompose(m);
  invalidate_all();
  ++epoch_;
}

double LikelihoodEngine::score_insertion(const tree::Tree::PruneRecord& rec,
                                         int target_edge) {
  RXC_ASSERT(tree_->edge_alive(target_edge));
  RXC_ASSERT(target_edge != rec.merged_edge);
  const int edge_xs = tree_->edge_between(rec.x, rec.s);
  RXC_ASSERT(edge_xs >= 0);

  const auto [c, d] = tree_->edge_nodes(target_edge);
  const double half = tree_->branch_length(target_edge) * 0.5;

  // Step 1: newview into the scratch slot — the partial at the would-be
  // inserted node x, looking toward d: combine the moved subtree (through
  // the x—s branch) with c's subtree (through half the target branch).
  const int scratch = static_cast<int>(ndirs_);
  NewviewTask task;
  task.ctx = context();
  task.np = np_;

  ChildRef moved;
  if (tree_->is_tip(rec.s)) {
    moved.tip.codes = pa_->row(rec.s);
  } else {
    const int ds = tree_->dir_index(rec.s, edge_xs);
    ensure_partial(ds);
    moved.partial = {partial_ptr(ds), scale_ptr(ds)};
  }
  ChildRef cside = [&]() -> ChildRef {
    ChildRef ref;
    if (tree_->is_tip(c)) {
      ref.tip.codes = pa_->row(c);
    } else {
      const int dc = tree_->dir_index(c, target_edge);
      ensure_partial(dc);
      ref.partial = {partial_ptr(dc), scale_ptr(dc)};
    }
    return ref;
  }();

  // Canonical order: tip child first.
  const bool moved_first = static_cast<bool>(moved.tip) || !cside.tip;
  const ChildRef& first = moved_first ? moved : cside;
  const ChildRef& second = moved_first ? cside : moved;
  task.brlen1 = moved_first ? tree_->branch_length(edge_xs) : half;
  task.brlen2 = moved_first ? half : tree_->branch_length(edge_xs);
  task.tip1 = first.tip;
  task.partial1 = first.partial;
  task.tip2 = second.tip;
  task.partial2 = second.partial;
  task.out = partial_ptr(scratch);
  task.scale_out = scale_ptr(scratch);
  exec_->newview(task);

  // Step 2: evaluate across the remaining half-branch to d's subtree.
  EvaluateTask ev;
  ev.ctx = context();
  ev.brlen = half;
  ev.np = np_;
  if (tree_->is_tip(d)) {
    ev.tip1.codes = pa_->row(d);
  } else {
    const int dd = tree_->dir_index(d, target_edge);
    ensure_partial(dd);
    ev.partial1 = {partial_ptr(dd), scale_ptr(dd)};
  }
  ev.partial2 = {partial_ptr(scratch), scale_ptr(scratch)};
  ev.weights = weights_.data();
  return exec_->evaluate(ev);
}

// --- invalidation ---------------------------------------------------------

void LikelihoodEngine::invalidate_all() {
  std::fill(valid_.begin(), valid_.end(), 0);
}

void LikelihoodEngine::invalidate_away(int from_node, int via_edge) {
  // Iterative DFS marking dir(n -> next) for every step leading away from
  // via_edge: those partials' subtrees contain the changed edge.
  std::vector<std::pair<int, int>> stack{{from_node, via_edge}};
  while (!stack.empty()) {
    const auto [node, via] = stack.back();
    stack.pop_back();
    for (const auto& nb : tree_->neighbors(node)) {
      if (nb.edge == via) continue;
      valid_[tree_->dir_index(node, nb.edge)] = 0;
      if (!tree_->is_tip(nb.node)) stack.push_back({nb.node, nb.edge});
    }
  }
}

void LikelihoodEngine::invalidate_slot(int edge) {
  valid_[2 * edge] = 0;
  valid_[2 * edge + 1] = 0;
}

void LikelihoodEngine::on_branch_changed(int edge) {
  const auto [a, b] = tree_->edge_nodes(edge);
  invalidate_away(a, edge);
  invalidate_away(b, edge);
}

void LikelihoodEngine::on_prune(const tree::Tree::PruneRecord& rec) {
  invalidate_slot(rec.merged_edge);
  invalidate_slot(rec.edge_xb);  // dead slot: stale contents
  const auto [a, b] = tree_->edge_nodes(rec.merged_edge);
  invalidate_away(a, rec.merged_edge);
  invalidate_away(b, rec.merged_edge);
}

void LikelihoodEngine::on_regraft(int target_edge, int reuse_edge) {
  invalidate_slot(target_edge);
  invalidate_slot(reuse_edge);
  for (const int e : {target_edge, reuse_edge}) {
    const auto [a, b] = tree_->edge_nodes(e);
    invalidate_away(a, e);
    invalidate_away(b, e);
  }
}

void LikelihoodEngine::on_restore(const tree::Tree::PruneRecord& rec) {
  on_regraft(rec.edge_xa, rec.edge_xb);
}

}  // namespace rxc::lh
