#pragma once
/// \file engine.h
/// Likelihood engine: owns partial-likelihood caches keyed by directed tree
/// edge, tracks their validity across tree edits, and exposes the three
/// RAxML hot operations on top of a pluggable KernelExecutor:
///
///   evaluate(edge)        — log-likelihood across one branch (paper's
///                           evaluate(), 2.37% of runtime)
///   ensure / newview      — partial-vector recomputation (newview(), 76.8%)
///   optimize_branch(edge) — Newton-Raphson branch length (makenewz(), 19.2%)
///
/// plus lazy-SPR insertion scoring (score_insertion) used by the search.

#include <cstdint>
#include <span>
#include <vector>

#include "likelihood/executor.h"
#include "model/rates.h"
#include "seq/patterns.h"
#include "support/aligned.h"
#include "tree/tree.h"

namespace rxc::lh {

struct EngineConfig {
  model::DnaModel model = model::DnaModel::gtr(
      {1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, {0.30, 0.21, 0.24, 0.25});
  RateMode mode = RateMode::kCat;
  /// Rate categories: Gamma quadrature points, or the CAT palette size
  /// (RAxML uses up to 25; the paper's exp-call count implies 25).
  int categories = 25;
  /// Gamma shape (mode == kGamma only).
  double alpha = 1.0;
  /// Kernel knobs for the built-in host executor (stages II/III/V).
  KernelConfig kernels;

  /// Throws rxc::Error on illegal combos (categories outside
  /// [1, kMaxRateCategories], non-positive Gamma shape).  Called from the
  /// LikelihoodEngine constructor, so an engine never exists misconfigured.
  void validate() const;
};

/// Per-edge result of the all-branch gradient sweep.
struct EdgeGradient {
  int edge = -1;
  double t = 0.0;    ///< (clamped) branch length the derivatives refer to
  double lnl = 0.0;  ///< absolute log-likelihood (scale corrections folded)
  double d1 = 0.0;   ///< d lnl / d t
  double d2 = 0.0;   ///< d^2 lnl / d t^2
};

class LikelihoodEngine {
public:
  /// The engine keeps pointers into `pa`; it must outlive the engine.
  LikelihoodEngine(const seq::PatternAlignment& pa, EngineConfig config);

  /// Attaches a tree (must have all taxa of `pa`, fully grown).  The engine
  /// observes but does not own it.  Invalidates all caches.
  void set_tree(tree::Tree* tree);
  tree::Tree* tree() const { return tree_; }

  /// Routes kernels through `executor` (e.g. the simulated-Cell executor).
  /// Pass nullptr to return to the built-in host executor.
  void set_executor(KernelExecutor* executor);
  KernelExecutor& executor() { return *exec_; }
  HostExecutor& host_executor() { return host_exec_; }

  /// Replaces per-pattern weights (bootstrap replicate).  Partials are
  /// unaffected; only evaluate/optimize results change.
  void set_pattern_weights(const std::vector<double>& weights);
  std::span<const double> pattern_weights() const {
    return {weights_.data(), np_};
  }

  // --- core operations --------------------------------------------------

  /// Log-likelihood across `edge` (recomputes stale partials on demand).
  double evaluate(int edge);

  /// Log-likelihood at an arbitrary edge — by the pulley principle the
  /// value is independent of the choice.
  double log_likelihood();

  /// Per-pattern log-likelihoods at `edge` (size pattern_count()).
  std::vector<double> site_log_likelihoods(int edge);

  /// Newton-Raphson branch-length optimization of `edge`.  Returns the
  /// optimized log-likelihood contribution measure (full lnl at this edge).
  double optimize_branch(int edge, int max_iterations = 32);

  /// Lower-level makenewz pieces for external optimizers (the partitioned
  /// engine's joint branch optimization): prepare_branch builds the
  /// sumtable for `edge`; branch_derivatives then evaluates (lnl, d1, d2)
  /// at candidate lengths without rebuilding it.  The returned lnl excludes
  /// the t-independent scaling corrections.
  void prepare_branch(int edge);
  NrResult branch_derivatives(double t);

  /// Optimizes every branch, up to `max_passes` sweeps or until a sweep
  /// improves the log-likelihood by less than `epsilon`.  Returns final lnl.
  double optimize_all_branches(int max_passes = 8, double epsilon = 1e-3);

  /// All-branch gradient: one linear-time sweep — every directed partial
  /// (post-order inward plus pre-order outward) refreshed through the
  /// batched planner, then one fused edge-gradient batch — yielding
  /// (lnl, d1, d2) for every alive edge at its current length.  Replaces N
  /// per-edge makenewz derivative loops with identical numerics (the fused
  /// kernel is bitwise-equal to sumtable + nr_derivatives at one config).
  std::vector<EdgeGradient> branch_gradient();

  /// Gradient-driven whole-tree smoothing: each pass takes one Newton step
  /// on every concave edge from a single branch_gradient() sweep; edges
  /// with non-concave curvature — and the whole pass, should the
  /// simultaneous step ever overshoot — fall back to per-edge
  /// optimize_branch polish.  Same contract as optimize_all_branches
  /// (monotone lnl, returns the final log-likelihood).
  double smooth_branches(int max_passes = 8, double epsilon = 1e-3);

  /// CAT mode: assigns each pattern the palette category that maximizes its
  /// site likelihood on the current tree, then renormalizes the palette so
  /// the weighted mean rate is 1.  Call after an initial branch-length
  /// optimization pass.
  void assign_cat_categories();

  /// GAMMA mode: replaces the shape parameter (rates are re-derived) and
  /// invalidates all caches.  Used by the model-parameter optimizer.
  void set_gamma_alpha(double alpha);
  double gamma_alpha() const { return cfg_.alpha; }

  /// Replaces the substitution model (re-decomposes Q) and invalidates all
  /// caches.  Frequencies and exchangeabilities both come from `model`.
  void set_model(const model::DnaModel& m);
  const model::DnaModel& model() const { return cfg_.model; }

  /// Lazy-SPR insertion score: likelihood of regrafting the pruned subtree
  /// (from `rec`, tree currently in pruned state) into `target_edge`,
  /// WITHOUT modifying the tree.  Uses one newview into scratch plus one
  /// evaluate — the exact kernel mix RAxML's insertion test offloads.
  double score_insertion(const tree::Tree::PruneRecord& rec, int target_edge);

  // --- cache invalidation hooks (call after the matching tree edit) ------

  void invalidate_all();
  void on_branch_changed(int edge);
  void on_prune(const tree::Tree::PruneRecord& rec);
  void on_regraft(int target_edge, int reuse_edge);
  void on_restore(const tree::Tree::PruneRecord& rec);

  // --- introspection ------------------------------------------------------

  const KernelCounters& counters() const { return exec_->counters(); }
  void reset_counters() { exec_->reset_counters(); }
  const model::EigenSystem& eigen() const { return es_; }
  const std::vector<double>& rates() const { return rates_; }
  std::span<const int> cat_assignment() const { return {cat_.data(), cat_.empty() ? 0 : np_}; }
  /// Bumps whenever weights or CAT assignments change (lets executors with
  /// staged copies refresh lazily).
  std::uint64_t mutation_epoch() const { return epoch_; }
  std::size_t pattern_count() const { return np_; }
  /// Entries per partial strip (np*4 for CAT, np*ncat*4 for GAMMA).
  std::size_t partial_stride() const { return stride_; }
  /// Direct read access to a directed-edge partial (tests).
  const double* partial_data(int dir) const {
    return partials_.data() + static_cast<std::size_t>(dir) * stride_;
  }
  bool partial_valid(int dir) const { return valid_[dir] != 0; }

private:
  TaskContext context() const;
  double* partial_ptr(int dir) {
    return partials_.data() + static_cast<std::size_t>(dir) * stride_;
  }
  std::int32_t* scale_ptr(int dir) {
    return scales_.data() + static_cast<std::size_t>(dir) * scale_stride_;
  }
  /// Recomputes (iteratively) all stale partials the directed edge needs.
  /// The stale set is collected in the deepest-first order the recursion
  /// would visit, then submitted to the executor as batches of consecutive
  /// mutually-independent newview tasks (no task in a batch reads another's
  /// output), so a parallel backend can run them concurrently while the
  /// trace stays in the sequential order.
  void ensure_partial(int dir);
  /// Multi-root generalization of ensure_partial: recomputes every stale
  /// partial any of `roots` depends on, in dependency order, batched.
  /// `preorder` routes batches through preorder_batch (the root-ward sweep
  /// entry point) instead of newview_batch.
  void ensure_partials(const std::vector<int>& roots, bool preorder);
  /// Builds the newview task for one partial whose children are fresh.
  NewviewTask build_newview_task(int dir);
  /// Computes one partial assuming its children are fresh.
  void compute_partial(int dir);
  /// Marks invalid every directed edge pointing away from `edge`, on the
  /// `from_node` side.
  void invalidate_away(int from_node, int via_edge);
  /// Invalidates both directions of `edge`'s slot.
  void invalidate_slot(int edge);

  /// Fills task child fields for the subtree behind directed edge
  /// (child_node -> parent), canonicalizing tips.
  struct ChildRef {
    TipView tip;
    PartialView partial;
  };
  ChildRef child_ref(int child_node, int edge);

  const seq::PatternAlignment* pa_;
  EngineConfig cfg_;
  model::EigenSystem es_;
  std::vector<double> rates_;
  // cat_/weights_ are padded to DMA-legal strides (see support/aligned.h)
  // so the simulated-SPE executor can strip-DMA them directly.
  aligned_vector<int> cat_;
  aligned_vector<double> weights_;
  std::uint64_t epoch_ = 0;
  tree::Tree* tree_ = nullptr;

  HostExecutor host_exec_;
  KernelExecutor* exec_;

  std::size_t np_ = 0;
  std::size_t stride_ = 0;
  std::size_t scale_stride_ = 0;  ///< padded to a multiple of 4 entries
  std::size_t ndirs_ = 0;  ///< 2*edge_slots, fixed once a tree is attached
  aligned_vector<double> partials_;     ///< (ndirs+1) strips; last is scratch
  std::vector<std::int32_t> scales_;    ///< (ndirs+1) x np
  std::vector<std::uint8_t> valid_;
  aligned_vector<double> sumtable_;
  aligned_vector<double> site_scratch_;  ///< padded per-site lnl output
};

}  // namespace rxc::lh
