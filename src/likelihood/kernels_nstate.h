#pragma once
/// \file kernels_nstate.h
/// Likelihood kernels for a runtime state count (the 20-state protein
/// path).  Mirrors kernels.h's 4-state DNA kernels; RAxML likewise keeps
/// separate specialized DNA and generic AA implementations.  Partial
/// layout: CAT [pattern][state] (np*n doubles), GAMMA
/// [pattern][cat][state] (np*ncat*n).  Tip columns index into a caller-
/// built tip-vector table (kAaCodeCount rows of n doubles for protein).

#include <cstddef>
#include <cstdint>

#include "likelihood/fast_exp.h"
#include "likelihood/kernels.h"  // NrResult
#include "likelihood/scaling.h"
#include "model/eigen_n.h"

namespace rxc::lh {

/// Builds `ncat` n x n transition matrices into out[c*n*n..].  Returns exp
/// call count (ncat * (n-1): the zero eigenvalue is skipped).
std::uint64_t build_pmatrices_nstate(const model::EigenSystemN& es,
                                     const double* rates, int ncat,
                                     double brlen, ExpFn exp_fn, double* out);

struct NewviewArgsN {
  int n = 20;                     ///< states
  const double* pmat1 = nullptr;  ///< ncat * n * n
  const double* pmat2 = nullptr;
  int ncat = 1;
  const int* cat = nullptr;       ///< per-pattern category (CAT) or null
  std::size_t np = 0;

  /// Tip-vector table: one row of n doubles per tip code.
  const double* tipvec = nullptr;

  const std::uint8_t* tip1 = nullptr;  ///< per-pattern tip codes, or
  const double* partial1 = nullptr;    ///< inner partial
  const std::int32_t* scale1 = nullptr;
  const std::uint8_t* tip2 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;

  double* out = nullptr;
  std::int32_t* scale_out = nullptr;
  ScalingCheck scaling = ScalingCheck::kIntCast;
};

std::uint64_t newview_nstate_cat(const NewviewArgsN& a);
std::uint64_t newview_nstate_gamma(const NewviewArgsN& a);

struct EvaluateArgsN {
  int n = 20;
  const double* pmat = nullptr;
  const double* freqs = nullptr;
  int ncat = 1;
  const int* cat = nullptr;
  std::size_t np = 0;
  const double* tipvec = nullptr;
  const std::uint8_t* tip1 = nullptr;
  const double* partial1 = nullptr;
  const std::int32_t* scale1 = nullptr;
  const double* partial2 = nullptr;
  const std::int32_t* scale2 = nullptr;
  const double* weights = nullptr;
  double* site_lnl_out = nullptr;
};

double evaluate_nstate_cat(const EvaluateArgsN& a);
double evaluate_nstate_gamma(const EvaluateArgsN& a);

struct SumtableArgsN {
  int n = 20;
  const model::EigenSystemN* es = nullptr;
  int ncat = 1;
  std::size_t np = 0;
  const double* tipvec = nullptr;
  const std::uint8_t* tip1 = nullptr;
  const double* partial1 = nullptr;
  const double* partial2 = nullptr;
  double* out = nullptr;
};

void make_sumtable_nstate_cat(const SumtableArgsN& a);
void make_sumtable_nstate_gamma(const SumtableArgsN& a);

struct NrArgsN {
  int n = 20;
  const double* sumtable = nullptr;
  const double* lambda = nullptr;
  const double* rates = nullptr;
  int ncat = 1;
  const int* cat = nullptr;
  std::size_t np = 0;
  const double* weights = nullptr;
  double t = 0.0;
  ExpFn exp_fn = &exp_libm;
};

NrResult nr_derivatives_nstate_cat(const NrArgsN& a);
NrResult nr_derivatives_nstate_gamma(const NrArgsN& a);

/// Fused all-branch-gradient kernel (mirrors kernels.h EdgeGradientArgs):
/// per pattern, the n sumtable slots are built in registers exactly as
/// make_sumtable_nstate and accumulated exactly as nr_derivatives_nstate,
/// so results are bitwise-identical to the two-step path.
struct EdgeGradientArgsN {
  int n = 20;
  const model::EigenSystemN* es = nullptr;
  const double* rates = nullptr;
  int ncat = 1;
  const int* cat = nullptr;
  std::size_t np = 0;
  const double* tipvec = nullptr;
  const std::uint8_t* tip1 = nullptr;
  const double* partial1 = nullptr;
  const double* partial2 = nullptr;
  const double* weights = nullptr;
  double t = 0.0;
  ExpFn exp_fn = &exp_libm;
};

NrResult edge_gradient_nstate_cat(const EdgeGradientArgsN& a);
NrResult edge_gradient_nstate_gamma(const EdgeGradientArgsN& a);

}  // namespace rxc::lh
