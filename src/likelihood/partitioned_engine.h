#pragma once
/// \file partitioned_engine.h
/// Partitioned (multi-gene) analysis: each gene gets its own substitution
/// model and rate heterogeneity while all genes share the topology and
/// branch lengths — RAxML's "mixed models" mode, and the workload class the
/// paper highlights ("large memory-intensive multi-gene alignments", §3).
///
/// The joint log-likelihood is the sum over partitions; branch lengths are
/// optimized jointly by summing the partitions' Newton-Raphson derivatives.
/// The engine mirrors LikelihoodEngine's surface, so the lazy-SPR
/// hill-climb template runs on it unchanged.

#include <memory>
#include <vector>

#include "likelihood/engine.h"
#include "seq/alignment.h"

namespace rxc::lh {

struct PartitionDef {
  std::string name;
  /// Site range [first, last) in the full alignment.
  std::size_t first_site = 0;
  std::size_t last_site = 0;
  EngineConfig config;
};

class PartitionedEngine {
public:
  /// Slices `alignment` into per-partition alignments (ranges must be
  /// non-empty, in-bounds, non-overlapping, and cover sites in order; gaps
  /// between partitions are allowed and simply ignored).
  PartitionedEngine(const seq::Alignment& alignment,
                    std::vector<PartitionDef> defs);

  std::size_t partition_count() const { return parts_.size(); }
  const PartitionDef& definition(std::size_t index) const {
    return defs_[index];
  }
  LikelihoodEngine& engine(std::size_t index) { return *parts_[index]; }

  void set_tree(tree::Tree* tree);
  tree::Tree* tree() const { return tree_; }

  double evaluate(int edge);
  double log_likelihood();
  double optimize_branch(int edge, int max_iterations = 32);
  double optimize_all_branches(int max_passes = 8, double epsilon = 1e-3);
  double score_insertion(const tree::Tree::PruneRecord& rec, int target_edge);

  /// CAT partitions get per-site rate assignments; GAMMA partitions are
  /// untouched.  cat_assignment() reports whether ANY partition uses CAT
  /// (the search uses it only for an emptiness check).
  void assign_cat_categories();
  std::span<const int> cat_assignment() const;

  void invalidate_all();
  void on_branch_changed(int edge);
  void on_prune(const tree::Tree::PruneRecord& rec);
  void on_regraft(int target_edge, int reuse_edge);
  void on_restore(const tree::Tree::PruneRecord& rec);

  /// Aggregate kernel counters over all partitions.
  KernelCounters counters() const;

private:
  std::vector<PartitionDef> defs_;
  std::vector<seq::PatternAlignment> patterns_;
  std::vector<std::unique_ptr<LikelihoodEngine>> parts_;
  tree::Tree* tree_ = nullptr;
};

/// Parses a RAxML-style partition file: one "name = first-last" line per
/// partition, 1-based inclusive ranges (e.g. "gene1 = 1-450").  The model
/// settings come from `base` (per-partition model files are out of scope).
std::vector<PartitionDef> parse_partition_ranges(const std::string& text,
                                                 const EngineConfig& base);

}  // namespace rxc::lh
