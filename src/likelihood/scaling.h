#pragma once
/// \file scaling.h
/// Numerical underflow scaling and the conditional-statement variants
/// studied in paper §5.2.3.
///
/// Partial likelihood entries shrink multiplicatively toward 0 on deep
/// trees; when all entries of a pattern's vector fall below kMinLikelihood,
/// every ML implementation multiplies them by a large constant and records
/// the event (subtracted from the log-likelihood later).  The guard is the
/// paper's problematic branch:
///
///   if (ABS(x3->a) < ml && ABS(x3->g) < ml && ABS(x3->c) < ml
///       && ABS(x3->t) < ml) { ... }
///
/// The "cast" optimization exploits IEEE-754 lexicographic ordering: for
/// positive doubles, (bits(a) < bits(ml)) == (a < ml), so the 8-condition
/// floating branch becomes unsigned integer compares that SIMD compare
/// instructions handle without branching.

#include <bit>
#include <cmath>
#include <cstdint>

namespace rxc::lh {

/// RAxML's minlikelihood: 2^-256.
inline constexpr double kMinLikelihood = 0x1p-256;
/// Multiplier applied on a scaling event: 2^256.
inline constexpr double kScaleFactor = 0x1p+256;
/// ln(2^256), subtracted per scaling event at evaluate time.
inline const double kLogScaleFactor = 256.0 * std::log(2.0);

/// Baseline conditional: four fabs() + four double compares, exactly the
/// shape of the original RAxML guard.
inline bool needs_scaling_fp(const double* v, int n) {
  for (int i = 0; i < n; ++i)
    if (!(std::fabs(v[i]) < kMinLikelihood)) return false;
  return true;
}

/// Cast variant: absolute value via bit-AND (clearing the sign bit — the
/// paper's spu_and trick) followed by unsigned 64-bit integer compares.
/// Valid because the operands are likelihoods (non-negative finite values).
inline bool needs_scaling_int(const double* v, int n) {
  constexpr std::uint64_t kAbsMask = 0x7fffffffffffffffULL;
  constexpr std::uint64_t kMlBits = std::bit_cast<std::uint64_t>(kMinLikelihood);
  std::uint64_t all_below = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v[i]) & kAbsMask;
    all_below &= static_cast<std::uint64_t>(bits < kMlBits);
  }
  return all_below != 0;
}

/// Which conditional implementation the kernels use (paper stage III).
enum class ScalingCheck { kFloatBranch, kIntCast };

inline bool needs_scaling(ScalingCheck check, const double* v, int n) {
  return check == ScalingCheck::kFloatBranch ? needs_scaling_fp(v, n)
                                             : needs_scaling_int(v, n);
}

}  // namespace rxc::lh
