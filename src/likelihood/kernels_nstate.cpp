#include "likelihood/kernels_nstate.h"

#include <cmath>
#include <vector>

#include "support/error.h"

namespace rxc::lh {
namespace {

inline const double* child_vec(int n, const double* tipvec,
                               const std::uint8_t* tip, const double* partial,
                               std::size_t p, std::size_t stride) {
  return tip ? tipvec + static_cast<std::size_t>(tip[p]) * n
             : partial + p * stride;
}

inline std::int32_t scale_of(const std::int32_t* scale, std::size_t p) {
  return scale ? scale[p] : 0;
}

/// out[i] = (P1 * l1)[i] * (P2 * l2)[i] for one pattern slot.
inline void newview_body(int n, const double* p1, const double* p2,
                         const double* l1, const double* l2, double* out) {
  for (int i = 0; i < n; ++i) {
    double s1 = 0.0, s2 = 0.0;
    const double* row1 = p1 + static_cast<std::size_t>(i) * n;
    const double* row2 = p2 + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      s1 += row1[j] * l1[j];
      s2 += row2[j] * l2[j];
    }
    out[i] = s1 * s2;
  }
}

}  // namespace

std::uint64_t build_pmatrices_nstate(const model::EigenSystemN& es,
                                     const double* rates, int ncat,
                                     double brlen, ExpFn exp_fn,
                                     double* out) {
  const int n = es.n;
  std::uint64_t exp_calls = 0;
  std::vector<double> diag(n);
  for (int c = 0; c < ncat; ++c) {
    diag[0] = 1.0;
    for (int k = 1; k < n; ++k) {
      diag[k] = exp_fn(es.lambda[k] * rates[c] * brlen);
      ++exp_calls;
    }
    double* p = out + static_cast<std::size_t>(c) * n * n;
    for (int i = 0; i < n; ++i) {
      double* row = p + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) row[j] = 0.0;
      for (int k = 0; k < n; ++k) {
        const double uik = es.u[i * n + k] * diag[k];
        const double* vk = es.v.data() + static_cast<std::size_t>(k) * n;
        for (int j = 0; j < n; ++j) row[j] += uik * vk[j];
      }
    }
  }
  return exp_calls;
}

std::uint64_t newview_nstate_cat(const NewviewArgsN& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  const int n = a.n;
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* l1 = child_vec(n, a.tipvec, a.tip1, a.partial1, p, n);
    const double* l2 = child_vec(n, a.tipvec, a.tip2, a.partial2, p, n);
    double* out = a.out + p * n;
    newview_body(n, a.pmat1 + c * nn, a.pmat2 + c * nn, l1, l2, out);
    std::int32_t scale = scale_of(a.scale1, p) + scale_of(a.scale2, p);
    if (needs_scaling(a.scaling, out, n)) {
      for (int i = 0; i < n; ++i) out[i] *= kScaleFactor;
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

std::uint64_t newview_nstate_gamma(const NewviewArgsN& a) {
  RXC_ASSERT(a.out && a.scale_out && a.pmat1 && a.pmat2);
  const int n = a.n;
  const int ncat = a.ncat;
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  const std::size_t stride = static_cast<std::size_t>(ncat) * n;
  std::uint64_t scale_events = 0;
  for (std::size_t p = 0; p < a.np; ++p) {
    double* out = a.out + p * stride;
    for (int c = 0; c < ncat; ++c) {
      const double* l1 =
          a.tip1 ? a.tipvec + static_cast<std::size_t>(a.tip1[p]) * n
                 : a.partial1 + p * stride + static_cast<std::size_t>(c) * n;
      const double* l2 =
          a.tip2 ? a.tipvec + static_cast<std::size_t>(a.tip2[p]) * n
                 : a.partial2 + p * stride + static_cast<std::size_t>(c) * n;
      newview_body(n, a.pmat1 + c * nn, a.pmat2 + c * nn, l1, l2,
                   out + static_cast<std::size_t>(c) * n);
    }
    std::int32_t scale = scale_of(a.scale1, p) + scale_of(a.scale2, p);
    if (needs_scaling(a.scaling, out, static_cast<int>(stride))) {
      for (std::size_t i = 0; i < stride; ++i) out[i] *= kScaleFactor;
      ++scale;
      ++scale_events;
    }
    a.scale_out[p] = scale;
  }
  return scale_events;
}

double evaluate_nstate_cat(const EvaluateArgsN& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  const int n = a.n;
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double* pm = a.pmat + c * nn;
    const double* va = child_vec(n, a.tipvec, a.tip1, a.partial1, p, n);
    const double* vb = a.partial2 + p * n;
    double term = 0.0;
    for (int i = 0; i < n; ++i) {
      double bi = 0.0;
      const double* row = pm + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) bi += row[j] * vb[j];
      term += a.freqs[i] * va[i] * bi;
    }
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_of(a.scale1, p) + scale_of(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

double evaluate_nstate_gamma(const EvaluateArgsN& a) {
  RXC_ASSERT(a.pmat && a.freqs && a.partial2 && a.weights);
  const int n = a.n;
  const int ncat = a.ncat;
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  const std::size_t stride = static_cast<std::size_t>(ncat) * n;
  const double catw = 1.0 / static_cast<double>(ncat);
  double lnl = 0.0;
  for (std::size_t p = 0; p < a.np; ++p) {
    double term = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* pm = a.pmat + c * nn;
      const double* va =
          a.tip1 ? a.tipvec + static_cast<std::size_t>(a.tip1[p]) * n
                 : a.partial1 + p * stride + static_cast<std::size_t>(c) * n;
      const double* vb = a.partial2 + p * stride + static_cast<std::size_t>(c) * n;
      for (int i = 0; i < n; ++i) {
        double bi = 0.0;
        const double* row = pm + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) bi += row[j] * vb[j];
        term += a.freqs[i] * va[i] * bi;
      }
    }
    term *= catw;
    if (term < 1e-300) term = 1e-300;
    const double scale =
        static_cast<double>(scale_of(a.scale1, p) + scale_of(a.scale2, p));
    const double site = std::log(term) - scale * kLogScaleFactor;
    if (a.site_lnl_out) a.site_lnl_out[p] = site;
    lnl += a.weights[p] * site;
  }
  return lnl;
}

void make_sumtable_nstate_cat(const SumtableArgsN& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  const int n = a.n;
  const auto& es = *a.es;
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = child_vec(n, a.tipvec, a.tip1, a.partial1, p, n);
    const double* vb = a.partial2 + p * n;
    double* s = a.out + p * n;
    for (int k = 0; k < n; ++k) {
      double left = 0.0, right = 0.0;
      for (int i = 0; i < n; ++i) {
        left += es.freqs[i] * va[i] * es.u[i * n + k];
        right += es.v[k * n + i] * vb[i];
      }
      s[k] = left * right;
    }
  }
}

void make_sumtable_nstate_gamma(const SumtableArgsN& a) {
  RXC_ASSERT(a.es && a.partial2 && a.out);
  const int n = a.n;
  const int ncat = a.ncat;
  const std::size_t stride = static_cast<std::size_t>(ncat) * n;
  const auto& es = *a.es;
  for (std::size_t p = 0; p < a.np; ++p) {
    for (int c = 0; c < ncat; ++c) {
      const double* va =
          a.tip1 ? a.tipvec + static_cast<std::size_t>(a.tip1[p]) * n
                 : a.partial1 + p * stride + static_cast<std::size_t>(c) * n;
      const double* vb = a.partial2 + p * stride + static_cast<std::size_t>(c) * n;
      double* s = a.out + p * stride + static_cast<std::size_t>(c) * n;
      for (int k = 0; k < n; ++k) {
        double left = 0.0, right = 0.0;
        for (int i = 0; i < n; ++i) {
          left += es.freqs[i] * va[i] * es.u[i * n + k];
          right += es.v[k * n + i] * vb[i];
        }
        s[k] = left * right;
      }
    }
  }
}

NrResult nr_derivatives_nstate_cat(const NrArgsN& a) {
  RXC_ASSERT(a.sumtable && a.lambda && a.rates && a.weights);
  const int n = a.n;
  NrResult r;
  std::vector<double> etab(static_cast<std::size_t>(a.ncat) * n);
  for (int c = 0; c < a.ncat; ++c) {
    etab[static_cast<std::size_t>(c) * n] = 1.0;
    for (int k = 1; k < n; ++k) {
      etab[static_cast<std::size_t>(c) * n + k] =
          a.exp_fn(a.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  for (std::size_t p = 0; p < a.np; ++p) {
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* s = a.sumtable + p * n;
    const double* e = etab.data() + static_cast<std::size_t>(c) * n;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < n; ++k) {
      const double lam = a.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult nr_derivatives_nstate_gamma(const NrArgsN& a) {
  RXC_ASSERT(a.sumtable && a.lambda && a.rates && a.weights);
  const int n = a.n;
  const int ncat = a.ncat;
  const std::size_t stride = static_cast<std::size_t>(ncat) * n;
  NrResult r;
  std::vector<double> etab(stride);
  for (int c = 0; c < ncat; ++c) {
    etab[static_cast<std::size_t>(c) * n] = 1.0;
    for (int k = 1; k < n; ++k) {
      etab[static_cast<std::size_t>(c) * n + k] =
          a.exp_fn(a.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* s = a.sumtable + p * stride + static_cast<std::size_t>(c) * n;
      const double* e = etab.data() + static_cast<std::size_t>(c) * n;
      for (int k = 0; k < n; ++k) {
        const double lam = a.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult edge_gradient_nstate_cat(const EdgeGradientArgsN& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  const int n = a.n;
  const auto& es = *a.es;
  NrResult r;
  std::vector<double> etab(static_cast<std::size_t>(a.ncat) * n);
  for (int c = 0; c < a.ncat; ++c) {
    etab[static_cast<std::size_t>(c) * n] = 1.0;
    for (int k = 1; k < n; ++k) {
      etab[static_cast<std::size_t>(c) * n + k] =
          a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  std::vector<double> s(n);
  for (std::size_t p = 0; p < a.np; ++p) {
    const double* va = child_vec(n, a.tipvec, a.tip1, a.partial1, p, n);
    const double* vb = a.partial2 + p * n;
    for (int k = 0; k < n; ++k) {
      double left = 0.0, right = 0.0;
      for (int i = 0; i < n; ++i) {
        left += es.freqs[i] * va[i] * es.u[i * n + k];
        right += es.v[k * n + i] * vb[i];
      }
      s[k] = left * right;
    }
    const int c = a.cat ? a.cat[p] : 0;
    const double rate = a.rates[c];
    const double* e = etab.data() + static_cast<std::size_t>(c) * n;
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int k = 0; k < n; ++k) {
      const double lam = es.lambda[k] * rate;
      const double term = s[k] * e[k];
      v += term;
      d1 += lam * term;
      d2 += lam * lam * term;
    }
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

NrResult edge_gradient_nstate_gamma(const EdgeGradientArgsN& a) {
  RXC_ASSERT(a.es && a.partial2 && a.rates && a.weights);
  RXC_ASSERT(a.tip1 || a.partial1);
  const int n = a.n;
  const int ncat = a.ncat;
  const std::size_t stride = static_cast<std::size_t>(ncat) * n;
  const auto& es = *a.es;
  NrResult r;
  std::vector<double> etab(stride);
  for (int c = 0; c < ncat; ++c) {
    etab[static_cast<std::size_t>(c) * n] = 1.0;
    for (int k = 1; k < n; ++k) {
      etab[static_cast<std::size_t>(c) * n + k] =
          a.exp_fn(es.lambda[k] * a.rates[c] * a.t);
      ++r.exp_calls;
    }
  }
  const double catw = 1.0 / static_cast<double>(ncat);
  std::vector<double> s(n);
  for (std::size_t p = 0; p < a.np; ++p) {
    double v = 0.0, d1 = 0.0, d2 = 0.0;
    for (int c = 0; c < ncat; ++c) {
      const double* va =
          a.tip1 ? a.tipvec + static_cast<std::size_t>(a.tip1[p]) * n
                 : a.partial1 + p * stride + static_cast<std::size_t>(c) * n;
      const double* vb = a.partial2 + p * stride + static_cast<std::size_t>(c) * n;
      for (int k = 0; k < n; ++k) {
        double left = 0.0, right = 0.0;
        for (int i = 0; i < n; ++i) {
          left += es.freqs[i] * va[i] * es.u[i * n + k];
          right += es.v[k * n + i] * vb[i];
        }
        s[k] = left * right;
      }
      const double* e = etab.data() + static_cast<std::size_t>(c) * n;
      for (int k = 0; k < n; ++k) {
        const double lam = es.lambda[k] * a.rates[c];
        const double term = s[k] * e[k];
        v += term;
        d1 += lam * term;
        d2 += lam * lam * term;
      }
    }
    v *= catw;
    d1 *= catw;
    d2 *= catw;
    if (v < 1e-300) v = 1e-300;
    const double inv = 1.0 / v;
    const double g1 = d1 * inv;
    r.lnl += a.weights[p] * std::log(v);
    r.d1 += a.weights[p] * g1;
    r.d2 += a.weights[p] * (d2 * inv - g1 * g1);
  }
  return r;
}

}  // namespace rxc::lh
