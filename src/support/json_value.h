#pragma once
/// \file json_value.h
/// Strict JSON parsing for config surfaces (serving wire format, device
/// model files).  support/json.h is write-only; this is the matching
/// recursive-descent *parser*.  It accepts strict JSON (objects, arrays,
/// strings with escapes, numbers, booleans, null) and rejects everything
/// else with rxc::ParseError — config and service input should fail loudly
/// on malformed text, not guess.  Duplicate object keys are rejected too:
/// keep-first vs keep-last disagreement across parsers is a classic
/// "validator saw X, executor saw Y" smuggling vector.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rxc {

/// A parsed JSON value (small DOM).  Objects keep insertion order; lookup
/// is linear, which is fine at config sizes.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors; throw rxc::ParseError on a kind mismatch so a config
  /// with `"priority": "high"` is reported instead of silently zeroed.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonValue parse_json(std::string_view text);

}  // namespace rxc
