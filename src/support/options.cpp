#include "support/options.h"

#include <algorithm>
#include <cstdlib>

#include "support/error.h"

namespace rxc {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RXC_REQUIRE(arg.rfind("--", 0) == 0, "option must start with --: " + arg);
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string key, value;
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      key = arg;
      value = argv[++i];
    } else {
      key = arg;
      value = "1";
    }
    kv_[key] = value;
    ordered_.emplace_back(std::move(key), std::move(value));
  }
}

bool Options::has(const std::string& key) const { return kv_.contains(key); }

std::string Options::get(const std::string& key,
                         const std::string& dflt) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? dflt : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t dflt) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double dflt) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool dflt) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Options::get_list(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : ordered_) {
    if (k != key) continue;
    std::size_t start = 0;
    while (start <= v.size()) {
      std::size_t comma = v.find(',', start);
      if (comma == std::string::npos) comma = v.size();
      if (comma > start) out.push_back(v.substr(start, comma - start));
      start = comma + 1;
    }
  }
  return out;
}

void Options::check_known(std::initializer_list<const char*> allowed) const {
  for (const auto& [key, value] : kv_) {
    (void)value;
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* a) { return key == a; });
    if (!known) {
      std::string msg = "unknown option --" + key + "; known options:";
      for (const char* a : allowed) msg += std::string(" --") + a;
      throw Error(msg);
    }
  }
}

}  // namespace rxc
