#pragma once
/// \file json.h
/// Minimal streaming JSON writer — enough for the Chrome trace exporter and
/// the bench `--json` reports, nothing more.  No DOM, no parsing: callers
/// emit begin/end/key/value in order and the writer handles commas and
/// string escaping.  Misuse (value without a key inside an object, unmatched
/// end) is a programming error and asserts.

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace rxc {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    RXC_ASSERT_MSG(!stack_.empty() && stack_.back() == '{' && !have_key_,
                   "JsonWriter::key outside object");
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    have_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    pre_value();
    out_ += '"';
    out_ += json_escape(s);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    pre_value();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    pre_value();
    if (!std::isfinite(d)) {
      out_ += "null";  // JSON has no NaN/Inf
    } else {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Splices pre-rendered JSON (must itself be a valid value).
  JsonWriter& raw(std::string_view json) {
    pre_value();
    out_ += json;
    return *this;
  }

  template <typename V>
  JsonWriter& kv(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

  const std::string& str() const {
    RXC_ASSERT_MSG(stack_.empty(), "JsonWriter::str with open scopes");
    return out_;
  }

 private:
  JsonWriter& open(char c) {
    pre_value();
    out_ += c;
    stack_.push_back(c == '{' ? '{' : '[');
    fresh_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    RXC_ASSERT_MSG(!stack_.empty() && stack_.back() == (c == '}' ? '{' : '['),
                   "JsonWriter: unmatched close");
    stack_.pop_back();
    out_ += c;
    fresh_ = false;
    return *this;
  }
  void pre_value() {
    if (!stack_.empty() && stack_.back() == '{') {
      RXC_ASSERT_MSG(have_key_, "JsonWriter: value without key in object");
      have_key_ = false;
      return;
    }
    comma();
  }
  void comma() {
    if (!fresh_ && !stack_.empty()) out_ += ',';
    fresh_ = false;
  }

  std::string out_;
  std::vector<char> stack_;
  bool fresh_ = true;   ///< no element written yet in the current scope
  bool have_key_ = false;
};

}  // namespace rxc
