#pragma once
/// \file str.h
/// String utilities for the parsers and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace rxc {

std::string_view trim(std::string_view s);
std::vector<std::string> split_ws(std::string_view s);
std::vector<std::string> split(std::string_view s, char sep);
bool starts_with_ci(std::string_view s, std::string_view prefix);
std::string to_lower(std::string_view s);

/// "1234567" -> "1,234,567" for report tables.
std::string with_thousands(unsigned long long v);

/// Fixed-point formatting with `prec` decimals (printf "%.*f").
std::string fixed(double v, int prec);

}  // namespace rxc
