#pragma once
/// \file options.h
/// Minimal --key=value / --flag command-line parsing for the examples and
/// bench drivers.  Unknown keys throw, so typos surface immediately.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rxc {

class Options {
public:
  /// Parses argv[1..).  Accepts "--key=value", "--key value" and bare
  /// "--flag" (value "1").
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Every value given for a repeatable option, in command-line order:
  /// "--k a --k b" and "--k=a,b" both yield {"a", "b"} (comma-separated
  /// values are split; empty pieces dropped).  Empty when absent.  The
  /// scalar getters see only the LAST occurrence.
  std::vector<std::string> get_list(const std::string& key) const;

  /// Throws rxc::Error listing `allowed` if any parsed key is not in it.
  void check_known(std::initializer_list<const char*> allowed) const;

private:
  std::map<std::string, std::string> kv_;
  /// Every (key, value) pair in argv order — what get_list reads, so
  /// repeated options accumulate instead of overwriting.
  std::vector<std::pair<std::string, std::string>> ordered_;
};

}  // namespace rxc
