#include "support/thread_pool.h"

#include "support/error.h"

namespace rxc {

ThreadPool::ThreadPool(int threads) : nthreads_(threads) {
  RXC_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(threads - 1);
  for (int i = 1; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t size = 0;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      size = job_size_;
    }
    // Pull indices until exhausted.
    std::size_t worked = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1);
      if (i >= size) break;
      (*job)(i);
      ++worked;
    }
    {
      std::lock_guard lock(mutex_);
      completed_ += worked;
      if (completed_ >= size) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (nthreads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0);
    completed_ = 0;
    ++generation_;
  }
  wake_.notify_all();
  // The calling thread participates too.
  std::size_t worked = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1);
    if (i >= n) break;
    fn(i);
    ++worked;
  }
  std::unique_lock lock(mutex_);
  completed_ += worked;
  if (completed_ >= n) {
    job_ = nullptr;
    return;
  }
  done_.wait(lock, [&] { return completed_ >= n; });
  job_ = nullptr;
}

}  // namespace rxc
