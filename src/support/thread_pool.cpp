#include "support/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "support/error.h"

namespace rxc {

namespace {

constexpr std::uint64_t pack(std::uint64_t next, std::uint64_t end) {
  return (next << 32) | end;
}
constexpr std::uint64_t range_next(std::uint64_t packed) {
  return packed >> 32;
}
constexpr std::uint64_t range_end(std::uint64_t packed) {
  return packed & 0xffffffffu;
}

std::atomic<PoolMetricSink> g_pool_sink{nullptr};

void emit(PoolMetric m, std::uint64_t n) {
  if (PoolMetricSink sink = g_pool_sink.load(std::memory_order_acquire))
    sink(m, n);
}

}  // namespace

void set_pool_metric_sink(PoolMetricSink sink) {
  g_pool_sink.store(sink, std::memory_order_release);
}

int host_thread_count() {
  if (const char* env = std::getenv("RXC_HOST_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min(v, 64L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : nthreads_(threads) {
  RXC_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  emit(PoolMetric::kThreads, static_cast<std::uint64_t>(threads));
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  park_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::record_error(Job& job, std::size_t index,
                              std::exception_ptr err) {
  std::lock_guard lock(job.err_mutex);
  if (!job.err || index < job.err_index) {
    job.err = std::move(err);
    job.err_index = index;
  }
}

std::size_t ThreadPool::run_slot(Job& job, int slot) {
  const int slots = nthreads_;
  std::size_t worked = 0;
  int victim = slot;  // own range first
  for (;;) {
    if (job.completed.load(std::memory_order_relaxed) >= job.n) break;
    // Claim the next index from the current victim range.
    std::uint64_t cur = job.ranges[victim].load(std::memory_order_relaxed);
    bool claimed = false;
    std::size_t index = 0;
    while (range_next(cur) < range_end(cur)) {
      const std::uint64_t want = cur + (std::uint64_t{1} << 32);
      if (job.ranges[victim].compare_exchange_weak(
              cur, want, std::memory_order_acq_rel)) {
        index = range_next(cur);
        claimed = true;
        break;
      }
    }
    if (claimed) {
      try {
        (*job.fn)(index);
      } catch (...) {
        record_error(job, index, std::current_exception());
      }
      ++worked;
      continue;
    }
    // Current range is dry: steal the far half of the fullest range.
    int best = -1;
    std::uint64_t best_remaining = 0;
    for (int s = 0; s < slots; ++s) {
      const std::uint64_t p = job.ranges[s].load(std::memory_order_relaxed);
      const std::uint64_t rem =
          range_next(p) < range_end(p) ? range_end(p) - range_next(p) : 0;
      if (rem > best_remaining) {
        best_remaining = rem;
        best = s;
      }
    }
    if (best < 0) break;  // every range is dry: done
    std::uint64_t p = job.ranges[best].load(std::memory_order_relaxed);
    const std::uint64_t next = range_next(p);
    const std::uint64_t end = range_end(p);
    if (next >= end) continue;  // raced: rescan
    // Keep the near floor(rem/2) for the victim and take the far half.  The
    // rounding direction matters: rounding the kept half up would make a
    // 1-item range yield mid == end, i.e. a "successful" steal of nothing,
    // and every thief would spin on it until the owner drains the item.
    const std::uint64_t mid = next + (end - next) / 2;
    if (job.ranges[best].compare_exchange_strong(p, pack(next, mid),
                                                 std::memory_order_acq_rel)) {
      job.ranges[slot].store(pack(mid, end), std::memory_order_release);
      victim = slot;
      emit(PoolMetric::kSteals, 1);
    }
    // CAS failure: owner claimed or another thief got here first; rescan.
  }
  emit(PoolMetric::kItems, worked);
  if (worked == 0) {
    emit(PoolMetric::kIdleWakeups, 1);
    return 0;  // completed unchanged: nothing to signal
  }
  const std::size_t before =
      job.completed.fetch_add(worked, std::memory_order_acq_rel);
  if (before + worked >= job.n) {
    // Lock-then-notify so the caller cannot check the predicate between our
    // fetch_add and the notification and then sleep forever.
    std::lock_guard lock(mutex_);
    done_.notify_all();
  }
  return worked;
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen_generation = 0;
  int idle_streak = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      if (idle_streak >= kParkAfterIdleJobs) {
        ++parked_;
        const std::uint64_t seen_unparks = unparks_;
        park_.wait(lock, [&] {
          return shutdown_ || unparks_ != seen_unparks;
        });
        --parked_;
        idle_streak = 0;
      }
      wake_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (!job) continue;
    const std::size_t worked = run_slot(*job, slot);
    idle_streak = worked == 0 ? idle_streak + 1 : 0;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (nthreads_ == 1 || n == 1) {
    emit(PoolMetric::kInlineJobs, 1);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  RXC_REQUIRE(n < (std::uint64_t{1} << 32),
              "parallel_for index range exceeds 32 bits");
  emit(PoolMetric::kJobs, 1);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  const std::size_t slots = static_cast<std::size_t>(nthreads_);
  job->ranges = std::make_unique<PackedRange[]>(slots);
  // Balanced contiguous ranges, one per participant (slot 0 = caller).
  const std::size_t base = n / slots;
  const std::size_t extra = n % slots;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    job->ranges[s].store(pack(begin, begin + len), std::memory_order_relaxed);
    begin += len;
  }
  {
    std::lock_guard lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();
  // The calling thread participates as slot 0; under oversubscription it
  // typically drains every range itself before the workers are scheduled.
  run_slot(*job, 0);
  if (job->completed.load(std::memory_order_acquire) < n) {
    std::unique_lock lock(mutex_);
    if (parked_ > 0 && job->completed.load(std::memory_order_acquire) < n) {
      // About to block on unfinished work: this is the one moment parked
      // workers are worth waking.
      ++unparks_;
      park_.notify_all();
    }
    done_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) >= n;
    });
  }
  // completed == n orders after every fn call and error store, so the error
  // slot is stable without taking job->err_mutex.
  if (job->err) std::rethrow_exception(job->err);
}

}  // namespace rxc
