#pragma once
/// \file stopwatch.h
/// Wall-clock stopwatch for host-side measurement (the simulator keeps its
/// own *virtual* clocks; see cell/des.h).

#include <chrono>

namespace rxc {

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rxc
