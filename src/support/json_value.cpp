#include "support/json_value.h"

#include <cmath>
#include <cstdlib>

#include "support/error.h"

namespace rxc {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw ParseError("json: expected a boolean");
  return boolean;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) throw ParseError("json: expected a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw ParseError("json: expected a string");
  return string;
}

namespace {

/// Recursive-descent JSON parser over a string_view.  Depth is bounded so a
/// line of 100k '[' characters can't blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (p_ != end_) fail("trailing characters after the document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what);
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  char peek() {
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (p_ == end_ || *p_ != c)
      fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool consume_literal(std::string_view lit) {
    if (static_cast<std::size_t>(end_ - p_) < lit.size()) return false;
    if (std::string_view(p_, lit.size()) != lit) return false;
    p_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v = parse_object();
    } else if (c == '[') {
      v = parse_array();
    } else if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
    } else if (c == 't' && consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (c == 'f' && consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
    } else if (c == 'n' && consume_literal("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = JsonValue::Kind::kNumber;
      v.number = parse_number();
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++p_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      // Reject duplicates instead of keeping first-or-last silently: the two
      // behaviors disagree across JSON parsers, which makes duplicate keys a
      // classic smuggling vector for "one validator saw X, the executor saw
      // Y" bugs.  Objects here are tiny (job specs, device configs), so the
      // scan is cheap.
      for (const auto& [existing, unused] : v.object)
        if (existing == key) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++p_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(std::string("bad escape '\\") + e + "'");
      }
    }
  }

  /// \uXXXX -> UTF-8 (no surrogate-pair pairing; the serving format never
  /// needs astral-plane taxon names, and a lone surrogate is rejected).
  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) fail("unterminated \\u escape");
      const char c = *p_++;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate in \\u escape");
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  double parse_number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-'))
      ++p_;
    const std::string text(start, p_);
    char* parsed_end = nullptr;
    const double v = std::strtod(text.c_str(), &parsed_end);
    if (parsed_end != text.c_str() + text.size() || !std::isfinite(v))
      fail("bad number '" + text + "'");
    return v;
  }

  const char* p_;
  const char* end_;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace rxc
