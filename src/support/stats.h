#pragma once
/// \file stats.h
/// Small statistics helpers used by benchmarks and the schedulers.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace rxc {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

inline double mean_of(std::span<const double> xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

/// Relative difference |a-b| / max(|a|,|b|,eps); used by kernel-equivalence
/// tests (SIMD vs scalar).
inline double rel_diff(double a, double b) {
  const double denom =
      std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / denom;
}

}  // namespace rxc
