#pragma once
/// \file log.h
/// Leveled stderr logging.  Intentionally tiny: examples and benches print
/// their reports on stdout; the log is for diagnostics only.

#include <string>

namespace rxc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace rxc
