#pragma once
/// \file mpmc_queue.h
/// Bounded multi-producer/multi-consumer blocking queue — the backpressure
/// primitive under the serving layer (src/serve): producers observe a full
/// queue instead of growing it without limit, and close() gives consumers a
/// clean end-of-stream.  Mutex + two condition variables; the serving rates
/// this feeds (whole inference jobs, not kernel invocations) make lock-free
/// cleverness pointless here.
///
/// Semantics:
///  * push/try_push fail (return false) once the queue is closed; elements
///    already queued remain poppable ("close drains").
///  * pop blocks until an element arrives or the queue is closed AND empty,
///    in which case it returns nullopt.
///  * FIFO order among elements; no priority (the serving layer's
///    AdmissionQueue adds priority on top of its own structure).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "support/error.h"

namespace rxc {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    RXC_REQUIRE(capacity >= 1, "MpmcQueue: capacity must be >= 1");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push: waits while full.  False when the queue is (or becomes)
  /// closed — the element is NOT queued in that case.
  bool push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return out;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Blocking pop: waits for an element; nullopt once closed and drained.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return out;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Stops accepting pushes and wakes every waiter.  Idempotent.  Queued
  /// elements stay poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rxc
