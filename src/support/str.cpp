#include "support/str.h"

#include <cctype>
#include <cstdio>

namespace rxc {

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j])))
      ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string with_thousands(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace rxc
