#include "support/log.h"

#include <atomic>
#include <cstdio>

namespace rxc {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
constexpr const char* kNames[] = {"debug", "info", "warn", "error"};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[rxc:%s] %s\n", kNames[static_cast<int>(level)],
               msg.c_str());
}

}  // namespace rxc
