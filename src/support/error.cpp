#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace rxc {

void assert_fail(const char* expr, std::source_location loc,
                 const std::string& msg) {
  std::fprintf(stderr, "rxc: assertion failed: %s\n  at %s:%u in %s\n", expr,
               loc.file_name(), static_cast<unsigned>(loc.line()),
               loc.function_name());
  if (!msg.empty()) std::fprintf(stderr, "  %s\n", msg.c_str());
  std::abort();
}

}  // namespace rxc
