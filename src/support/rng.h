#pragma once
/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// Everything in this repository that consumes randomness (starting trees,
/// bootstrap resampling, the sequence-evolution simulator) takes an explicit
/// Rng so runs are reproducible from a single seed.  The generator is
/// xoshiro256** seeded via SplitMix64, the standard recipe for avoiding
/// correlated low-entropy seeds.

#include <array>
#include <cstdint>

#include "support/error.h"

namespace rxc {

/// SplitMix64: used only to expand a 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  Uses Lemire's unbiased multiply-shift.
  std::uint64_t below(std::uint64_t n) {
    RXC_ASSERT(n > 0);
    // Rejection-free for our purposes: bias is < 2^-64 * n, negligible for
    // n far below 2^64 (all our uses are < 2^32).
    __extension__ using u128 = unsigned __int128;
    const u128 m = static_cast<u128>(operator()()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard exponential deviate (rate 1).
  double exponential();

  /// Standard normal deviate (polar Marsaglia).
  double normal();

  /// Gamma(shape, scale=1) deviate — Marsaglia & Tsang for shape >= 1,
  /// boosted for shape < 1.  Used by the sequence simulator for per-site
  /// rate draws under the +G model.
  double gamma(double shape);

  /// Sample an index from a discrete distribution given cumulative weights
  /// (cum.back() is the total mass).
  std::size_t discrete_from_cdf(const double* cdf, std::size_t n);

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rxc
