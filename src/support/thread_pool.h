#pragma once
/// \file thread_pool.h
/// Persistent worker pool with a blocking, work-stealing parallel-for — the
/// substrate for the loop-level shared-memory parallelization of the
/// likelihood kernels (the paper's §3 RAxML-OMP analogue) and for the
/// wall-clock-parallel Cell simulation (concurrent SPE payload execution).
///
/// Scheduling: parallel_for splits [0, n) into one contiguous range per
/// participant (workers + the calling thread).  Each participant drains its
/// own range first (cache-friendly, zero contention on balanced loads), then
/// steals the far half of the fullest remaining range.  Ranges live in a
/// single packed 64-bit atomic each, so claiming and stealing are lock-free.
///
/// Exceptions thrown by fn are captured and rethrown on the calling thread
/// after every index has been dispatched; when several indices throw, the
/// lowest index wins, so the propagated error is deterministic regardless of
/// thread count or interleaving (this is what lets RXC_ANALYZE=race:fatal
/// produce the same AnalysisError under any RXC_HOST_THREADS).
///
/// Utilization counters (pool.jobs / pool.items / pool.steals /
/// pool.idle_wakeups, gauge pool.threads) flow through the obs registry so
/// RXC_TRACE=summary|json shows host-thread occupancy next to the virtual
/// SPE timelines.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rxc {

/// Host worker count for wall-clock parallel execution: `RXC_HOST_THREADS`
/// when set to a positive integer (clamped to [1, 64]), otherwise
/// std::thread::hardware_concurrency() (at least 1).  This is the "auto"
/// resolution used whenever a config knob leaves host_threads at 0.
int host_thread_count();

/// Pool utilization metrics, reported through an installable sink so the
/// support layer stays below obs in the module graph: obs/metrics.cpp
/// installs a translator into its registry at static-init, and any binary
/// without the registry simply drops the samples.
enum class PoolMetric {
  kJobs,         ///< parallel_for calls that fanned out to workers
  kInlineJobs,   ///< parallel_for calls run inline (n==1 or 1 thread)
  kItems,        ///< indices executed (all participants)
  kSteals,       ///< successful half-range steals
  kIdleWakeups,  ///< a participant woke for a job but claimed zero items
  kThreads,      ///< pool size (gauge semantics: last constructed pool)
};
using PoolMetricSink = void (*)(PoolMetric, std::uint64_t);
void set_pool_metric_sink(PoolMetricSink sink);

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (>= 1; 1 means the calling thread
  /// does all work, no spawn).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return nthreads_; }

  /// Runs fn(i) for every i in [0, n), distributing over the workers (and
  /// the calling thread) with per-participant ranges + half-range stealing.
  /// Blocks until all indices are done.  fn must be safe to call
  /// concurrently for distinct i.  If any fn(i) throws, every index is
  /// still dispatched and the exception from the lowest throwing index is
  /// rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One participant's index range, packed (next << 32) | end so claim and
  /// steal are single CAS operations.  Indices are < 2^32 (a parallel_for
  /// over more than 4G items has no business in this simulator).
  using PackedRange = std::atomic<std::uint64_t>;

  /// All state of one parallel_for dispatch, heap-allocated and shared by
  /// every participant.  This is what keeps dispatch latency flat under
  /// oversubscription: the caller returns as soon as all ITEMS are done
  /// (often having drained every range itself), while a worker that wakes
  /// late still holds a valid Job whose ranges are simply dry — the next
  /// dispatch never waits for stragglers of the previous one.
  ///
  /// Claims (and hence fn calls and error recording) can only happen while
  /// completed < n, i.e. while the caller is still blocked in parallel_for,
  /// so the borrowed `fn` pointer and the error slot stay valid for exactly
  /// as long as anyone can touch them.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::unique_ptr<PackedRange[]> ranges;  ///< one per participant slot
    std::atomic<std::size_t> completed{0};
    std::mutex err_mutex;
    std::exception_ptr err;
    std::size_t err_index = 0;
  };

  void worker_loop(int slot);
  /// Drains ranges for `slot`: own range first, then steals.  Adds the
  /// executed-index count to job.completed and signals done_ on the last.
  /// Returns the number of indices executed.
  std::size_t run_slot(Job& job, int slot);
  static void record_error(Job& job, std::size_t index,
                           std::exception_ptr err);

  /// A worker that came up empty this many consecutive jobs parks itself:
  /// it stops being notified per dispatch and is woken again only when a
  /// caller actually has to block on unfinished work — the one situation
  /// where extra hands help.  This keeps fine-grained dispatch cheap when
  /// the pool is oversubscribed (more threads than cores): spare workers
  /// otherwise wake on every dispatch, find the caller already drained the
  /// ranges, and convoy on the mutex, starving the caller.  On hardware
  /// with genuinely parallel workers each participant claims items every
  /// job, so nobody parks and dispatch latency is unaffected.
  static constexpr int kParkAfterIdleJobs = 4;

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::condition_variable park_;
  std::shared_ptr<Job> job_;  ///< most recent dispatch (may be finished)
  std::uint64_t generation_ = 0;
  std::uint64_t unparks_ = 0;  ///< bumped to release parked workers
  int parked_ = 0;
  bool shutdown_ = false;
};

}  // namespace rxc
