#pragma once
/// \file thread_pool.h
/// Minimal persistent worker pool with a blocking parallel-for — the
/// substrate for the loop-level shared-memory parallelization of the
/// likelihood kernels (the paper's §3 RAxML-OMP analogue).

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rxc {

class ThreadPool {
public:
  /// Spawns `threads` persistent workers (>= 1; 1 means the calling thread
  /// does all work, no spawn).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return nthreads_; }

  /// Runs fn(i) for every i in [0, n), distributing dynamically over the
  /// workers (and the calling thread).  Blocks until all indices are done.
  /// fn must be safe to call concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace rxc
