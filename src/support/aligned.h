#pragma once
/// \file aligned.h
/// 16-byte-aligned storage for likelihood vectors and simulated local-store
/// buffers.  The Cell MFC requires 128-bit alignment on both ends of a DMA
/// transfer; using the same alignment on the host keeps the simulated port
/// honest and enables the SSE2 kernels to use aligned loads.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace rxc {

inline constexpr std::size_t kDmaAlignment = 16;

/// Minimal aligned allocator (C++17 aligned operator new).
template <class T, std::size_t Align = kDmaAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T));

  // Required explicitly: allocator_traits cannot rebind templates with
  // non-type parameters on its own.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }
  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector with 16-byte-aligned data().
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True if p is aligned to `align` bytes.
inline bool is_aligned(const void* p, std::size_t align = kDmaAlignment) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/// Round n up to a multiple of `align`.
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

/// Ceiling division: number of `d`-sized chunks needed to cover `n`
/// (0 when n == 0; exactly n/d when d divides n — no trailing empty chunk).
constexpr std::size_t ceil_div(std::size_t n, std::size_t d) {
  return (n + d - 1) / d;
}

}  // namespace rxc
