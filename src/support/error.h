#pragma once
/// \file error.h
/// Error handling primitives shared by every rxc module.
///
/// Library code throws rxc::Error (ordinary recoverable failures: bad input
/// files, malformed Newick, model misuse).  Internal invariant violations use
/// RXC_ASSERT, which is compiled in all build types — a simulator whose
/// invariants silently drift produces plausible-looking but wrong timings,
/// so we keep the checks in release builds too.

#include <source_location>
#include <stdexcept>
#include <string>

namespace rxc {

/// Base exception for all recoverable rxc errors.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed input data (alignments, trees, option strings).
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a Cell-simulator hardware rule is violated (DMA alignment,
/// local-store overflow, mailbox misuse).  Mirrors what would be a bus error
/// or MFC exception on real silicon.
class HardwareError : public Error {
public:
  explicit HardwareError(const std::string& what) : Error(what) {}
};

/// Thrown on nonsensical configuration: knob combinations that a component
/// would otherwise silently ignore (e.g. host_threads on a non-SPE executor
/// kind).  Distinct from plain Error so config-validation failures are
/// testable without matching message text.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

[[noreturn]] void assert_fail(const char* expr, std::source_location loc,
                              const std::string& msg);

}  // namespace rxc

/// Always-on invariant check.  `msg` may use stream-style formatting via
/// std::string concatenation at the call site.
#define RXC_ASSERT(expr)                                                     \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      ::rxc::assert_fail(#expr, std::source_location::current(), "");       \
  } while (0)

#define RXC_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      ::rxc::assert_fail(#expr, std::source_location::current(), (msg));    \
  } while (0)

/// Recoverable-precondition check: throws rxc::Error instead of aborting.
#define RXC_REQUIRE(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      throw ::rxc::Error(std::string("requirement failed: ") + (msg));      \
  } while (0)
