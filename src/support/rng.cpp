#include "support/rng.h"

#include <cmath>

namespace rxc {

double Rng::exponential() {
  // -log(U) with U in (0,1]; uniform() returns [0,1) so flip it.
  return -std::log1p(-uniform());
}

double Rng::normal() {
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::gamma(double shape) {
  RXC_ASSERT(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double g = gamma(shape + 1.0);
    return g * std::pow(uniform() + 1e-300, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u + 1e-300) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::size_t Rng::discrete_from_cdf(const double* cdf, std::size_t n) {
  RXC_ASSERT(n > 0);
  const double r = uniform() * cdf[n - 1];
  // Linear scan: n is tiny (4 states / <=25 rate categories) in all callers.
  for (std::size_t i = 0; i + 1 < n; ++i)
    if (r < cdf[i]) return i;
  return n - 1;
}

}  // namespace rxc
