#pragma once
/// \file consensus.h
/// Bootstrap summarization: split support values and majority-rule
/// consensus trees — what the paper's §3.1 "confidence values ranging
/// between 0.0 and 1.0 on the internal branches" turn into for publication.

#include <map>
#include <string>
#include <vector>

#include "tree/tree.h"

namespace rxc::tree {

/// Support of each internal split of `reference` among `replicates`:
/// fraction of replicate trees containing the split.  Order matches
/// reference.splits().
std::vector<double> split_support(const Tree& reference,
                                  const std::vector<Tree>& replicates);

/// Majority-rule consensus: returns the splits occurring in more than
/// `threshold` (default 0.5) of the replicates, with their frequencies.
/// The splits are guaranteed mutually compatible for threshold >= 0.5.
std::map<Split, double> majority_splits(const std::vector<Tree>& replicates,
                                        double threshold = 0.5);

/// Serializes `reference` with per-internal-branch support values as inner
/// node labels (standard "newick with support" convention), e.g.
/// ((a:0.1,b:0.2)0.97:0.05,c:0.3);
std::string newick_with_support(const Tree& reference,
                                const std::vector<std::string>& names,
                                const std::vector<Tree>& replicates);

}  // namespace rxc::tree
