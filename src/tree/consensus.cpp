#include "tree/consensus.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace rxc::tree {

std::vector<double> split_support(const Tree& reference,
                                  const std::vector<Tree>& replicates) {
  RXC_REQUIRE(!replicates.empty(), "split_support: no replicates");
  const auto ref_splits = reference.splits();
  std::vector<double> support(ref_splits.size(), 0.0);
  for (const Tree& rep : replicates) {
    RXC_REQUIRE(rep.tip_count() == reference.tip_count(),
                "split_support: mismatched taxon sets");
    const auto rs = rep.splits();  // sorted
    for (std::size_t i = 0; i < ref_splits.size(); ++i)
      if (std::binary_search(rs.begin(), rs.end(), ref_splits[i]))
        support[i] += 1.0;
  }
  for (double& s : support) s /= static_cast<double>(replicates.size());
  return support;
}

std::map<Split, double> majority_splits(const std::vector<Tree>& replicates,
                                        double threshold) {
  RXC_REQUIRE(!replicates.empty(), "majority_splits: no replicates");
  RXC_REQUIRE(threshold >= 0.5 && threshold < 1.0 + 1e-12,
              "majority threshold must be in [0.5, 1]");
  std::map<Split, double> counts;
  for (const Tree& rep : replicates)
    for (const Split& s : rep.splits()) counts[s] += 1.0;
  std::map<Split, double> out;
  const double n = static_cast<double>(replicates.size());
  for (const auto& [split, count] : counts)
    if (count / n > threshold) out.emplace(split, count / n);
  return out;
}

namespace {

void write_support_subtree(const Tree& t, int node, int from,
                           const std::vector<std::string>& names,
                           const std::map<Split, double>& support,
                           std::ostringstream& out) {
  if (t.is_tip(node)) {
    out << names[node];
    return;
  }
  out << '(';
  bool first = true;
  for (const auto& nb : t.neighbors(node)) {
    if (nb.node == from) continue;
    if (!first) out << ',';
    first = false;
    write_support_subtree(t, nb.node, node, names, support, out);
    // Support label on internal edges (below the child subtree).
    if (!t.is_tip(nb.node)) {
      const auto it = support.find(t.split_of_edge(nb.edge));
      if (it != support.end()) {
        // Emitted after the closing ')' of the child group by appending to
        // the child's text — the recursive call just wrote it.
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.2f", it->second);
        out << buf;
      }
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", t.branch_length(nb.edge));
    out << ':' << buf;
  }
  out << ')';
}

}  // namespace

std::string newick_with_support(const Tree& reference,
                                const std::vector<std::string>& names,
                                const std::vector<Tree>& replicates) {
  const auto ref_splits = reference.splits();
  const auto fractions = split_support(reference, replicates);
  std::map<Split, double> support;
  for (std::size_t i = 0; i < ref_splits.size(); ++i)
    support.emplace(ref_splits[i], fractions[i]);

  RXC_ASSERT(names.size() == reference.tip_count());
  const auto anchor = reference.neighbors(0)[0];
  std::ostringstream out;
  out << '(' << names[0];
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g",
                reference.branch_length(anchor.edge));
  out << ':' << buf << ',';
  bool first = true;
  for (const auto& nb : reference.neighbors(anchor.node)) {
    if (nb.node == 0) continue;
    if (!first) out << ',';
    first = false;
    write_support_subtree(reference, nb.node, anchor.node, names, support,
                          out);
    if (!reference.is_tip(nb.node)) {
      const auto it = support.find(reference.split_of_edge(nb.edge));
      if (it != support.end()) {
        char lbl[16];
        std::snprintf(lbl, sizeof lbl, "%.2f", it->second);
        out << lbl;
      }
    }
    std::snprintf(buf, sizeof buf, "%.9g", reference.branch_length(nb.edge));
    out << ':' << buf;
  }
  out << ");";
  return out.str();
}

}  // namespace rxc::tree
