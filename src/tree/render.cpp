#include "tree/render.h"

#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace rxc::tree {
namespace {

void render_subtree(const Tree& t, int node, int from, int edge,
                    const std::vector<std::string>& names, int depth,
                    bool show_lengths, std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ');
  const auto length_suffix = [&](int e) -> std::string {
    if (!show_lengths || e < 0) return "";
    char buf[32];
    std::snprintf(buf, sizeof buf, "  (%.4g)", t.branch_length(e));
    return buf;
  };
  if (t.is_tip(node)) {
    out << "- " << names[node] << length_suffix(edge) << '\n';
    return;
  }
  out << '+' << length_suffix(edge) << '\n';
  for (const auto& nb : t.neighbors(node))
    if (nb.node != from)
      render_subtree(t, nb.node, node, nb.edge, names, depth + 1,
                     show_lengths, out);
}

}  // namespace

std::string ascii_tree(const Tree& t, const std::vector<std::string>& names,
                       int root_tip, bool show_lengths) {
  RXC_REQUIRE(names.size() == t.tip_count(), "ascii_tree: name count");
  RXC_REQUIRE(root_tip >= 0 && t.is_tip(root_tip), "ascii_tree: bad root tip");
  std::ostringstream out;
  const auto anchor = t.neighbors(root_tip)[0];
  out << "- " << names[root_tip]
      << (show_lengths
              ? ([&] {
                  char buf[32];
                  std::snprintf(buf, sizeof buf, "  (%.4g)",
                                t.branch_length(anchor.edge));
                  return std::string(buf);
                })()
              : "")
      << '\n';
  for (const auto& nb : t.neighbors(anchor.node))
    if (nb.node != root_tip)
      render_subtree(t, nb.node, anchor.node, nb.edge, names, 1,
                     show_lengths, out);
  return out.str();
}

}  // namespace rxc::tree
