#include "tree/parsimony.h"

#include <numeric>

namespace rxc::tree {
namespace {

/// Post-order Fitch over the subtree of `node` seen from `from`.
void fitch_down(const Tree& t, const MaskPatterns& mp, int node, int from,
                std::vector<std::uint32_t>& states, double& score) {
  const std::size_t np = mp.npatterns;
  if (t.is_tip(node)) {
    const std::uint32_t* row = mp.row(node);
    states.assign(row, row + np);
    return;
  }
  std::vector<std::uint32_t> child_states;
  bool first = true;
  for (const auto& nb : t.neighbors(node)) {
    if (nb.node == from) continue;
    if (first) {
      fitch_down(t, mp, nb.node, node, states, score);
      first = false;
    } else {
      fitch_down(t, mp, nb.node, node, child_states, score);
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint32_t inter = states[p] & child_states[p];
        if (inter) {
          states[p] = inter;
        } else {
          states[p] |= child_states[p];
          score += mp.weights[p];
        }
      }
    }
  }
  RXC_ASSERT(!first);
}

}  // namespace

MaskPatterns MaskPatterns::from_dna(const seq::PatternAlignment& pa) {
  MaskPatterns mp;
  mp.ntaxa = pa.taxon_count();
  mp.npatterns = pa.pattern_count();
  mp.weights = pa.weights();
  mp.masks.resize(mp.ntaxa * mp.npatterns);
  for (std::size_t t = 0; t < mp.ntaxa; ++t)
    for (std::size_t p = 0; p < mp.npatterns; ++p)
      mp.masks[t * mp.npatterns + p] = pa.at(t, p);  // DnaCode is the mask
  return mp;
}

MaskPatterns MaskPatterns::from_aa(const seq::AaPatternAlignment& pa) {
  MaskPatterns mp;
  mp.ntaxa = pa.taxon_count();
  mp.npatterns = pa.pattern_count();
  mp.weights = pa.weights();
  mp.masks.resize(mp.ntaxa * mp.npatterns);
  for (std::size_t t = 0; t < mp.ntaxa; ++t)
    for (std::size_t p = 0; p < mp.npatterns; ++p)
      mp.masks[t * mp.npatterns + p] = seq::aa_code_mask(pa.at(t, p));
  return mp;
}

double parsimony_score(const Tree& t, const MaskPatterns& mp) {
  RXC_ASSERT(mp.weights.size() == mp.npatterns);
  // Root at the first *attached* tip's inner neighbor and fold that tip in
  // as the final union step.  Stepwise addition scores partial trees, where
  // tip 0 may not be attached yet: anchoring blindly at tip 0 walked a dead
  // adjacency slot (node id -1) and read a pattern row out of bounds.
  int root_tip = -1;
  for (std::size_t i = 0; i < t.tip_count(); ++i) {
    if (t.degree(static_cast<int>(i)) > 0) {
      root_tip = static_cast<int>(i);
      break;
    }
  }
  RXC_REQUIRE(root_tip >= 0, "parsimony_score: tree has no attached tips");
  const int anchor = t.neighbors(root_tip)[0].node;
  double score = 0.0;
  std::vector<std::uint32_t> states;
  fitch_down(t, mp, anchor, root_tip, states, score);
  const std::uint32_t* root_row = mp.row(static_cast<std::size_t>(root_tip));
  for (std::size_t p = 0; p < mp.npatterns; ++p)
    if (!(states[p] & root_row[p])) score += mp.weights[p];
  return score;
}

Tree stepwise_addition_tree(const MaskPatterns& mp, Rng& rng,
                            double default_brlen) {
  const std::size_t ntips = mp.ntaxa;
  RXC_REQUIRE(ntips >= 4, "stepwise addition needs >= 4 taxa");
  std::vector<int> order(ntips);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = ntips; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  Tree t = Tree::initial_triplet(ntips, order[0], order[1], order[2],
                                 default_brlen);
  for (std::size_t k = 3; k < ntips; ++k) {
    const int tip = order[k];
    int best_edge = -1;
    double best_score = 0.0;
    std::vector<int> live;
    for (std::size_t e = 0; e < t.edge_slots(); ++e)
      if (t.edge_alive(static_cast<int>(e)))
        live.push_back(static_cast<int>(e));
    for (const int e : live) {
      const int inner = t.attach_tip(tip, e, default_brlen);
      const double score = parsimony_score(t, mp);
      if (best_edge < 0 || score < best_score) {
        best_edge = e;
        best_score = score;
      }
      const auto rec = t.prune(inner, tip);
      (void)rec;
      t.detach_dangling(inner, tip);
    }
    t.attach_tip(tip, best_edge, default_brlen);
  }
  t.check_valid();
  return t;
}

double parsimony_score(const Tree& t, const seq::PatternAlignment& pa,
                       const std::vector<double>& weights) {
  MaskPatterns mp = MaskPatterns::from_dna(pa);
  mp.weights = weights;
  return parsimony_score(t, mp);
}

Tree stepwise_addition_tree(const seq::PatternAlignment& pa, Rng& rng,
                            double default_brlen) {
  return stepwise_addition_tree(MaskPatterns::from_dna(pa), rng,
                                default_brlen);
}

double parsimony_score(const Tree& t, const seq::AaPatternAlignment& pa) {
  return parsimony_score(t, MaskPatterns::from_aa(pa));
}

Tree stepwise_addition_tree(const seq::AaPatternAlignment& pa, Rng& rng,
                            double default_brlen) {
  return stepwise_addition_tree(MaskPatterns::from_aa(pa), rng,
                                default_brlen);
}

}  // namespace rxc::tree
