#include "tree/tree.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>

namespace rxc::tree {

Tree::Tree(std::size_t ntips) : ntips_(ntips) {
  RXC_REQUIRE(ntips >= 3, "tree needs at least 3 tips");
  adj_.resize(node_count());
  degree_.assign(node_count(), 0);
  next_inner_ = static_cast<int>(ntips_);
}

int Tree::new_edge(int a, int b, double length) {
  // Reuse a free slot if one exists (keeps ids dense across edits).
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (!edges_[i].alive) {
      reuse_edge_slot(static_cast<int>(i), a, b, length);
      return static_cast<int>(i);
    }
  }
  edges_.push_back({a, b, length, true});
  ++live_edges_;
  add_neighbor(a, b, static_cast<int>(edges_.size()) - 1);
  add_neighbor(b, a, static_cast<int>(edges_.size()) - 1);
  return static_cast<int>(edges_.size()) - 1;
}

void Tree::reuse_edge_slot(int id, int a, int b, double length) {
  RXC_ASSERT(!edges_[id].alive);
  edges_[id] = {a, b, length, true};
  ++live_edges_;
  add_neighbor(a, b, id);
  add_neighbor(b, a, id);
}

void Tree::kill_edge(int e) {
  RXC_ASSERT(edges_[e].alive);
  remove_neighbor(edges_[e].a, edges_[e].b);
  remove_neighbor(edges_[e].b, edges_[e].a);
  edges_[e].alive = false;
  --live_edges_;
}

void Tree::add_neighbor(int node, int nbr, int edge) {
  RXC_ASSERT_MSG(degree_[node] < 3, "node degree would exceed 3");
  adj_[node][degree_[node]++] = {nbr, edge};
}

void Tree::remove_neighbor(int node, int nbr) {
  for (int i = 0; i < degree_[node]; ++i) {
    if (adj_[node][i].node == nbr) {
      adj_[node][i] = adj_[node][degree_[node] - 1];
      --degree_[node];
      return;
    }
  }
  RXC_ASSERT_MSG(false, "remove_neighbor: neighbor not found");
}

void Tree::replace_neighbor(int node, int old_nbr, int new_nbr,
                            int new_edge) {
  for (int i = 0; i < degree_[node]; ++i) {
    if (adj_[node][i].node == old_nbr) {
      adj_[node][i] = {new_nbr, new_edge};
      return;
    }
  }
  RXC_ASSERT_MSG(false, "replace_neighbor: neighbor not found");
}

int Tree::edge_between(int u, int v) const {
  for (const auto& nb : neighbors(u))
    if (nb.node == v) return nb.edge;
  return -1;
}

Tree Tree::initial_triplet(std::size_t total_tips, int tip_a, int tip_b,
                           int tip_c, double brlen) {
  Tree t(total_tips);
  const int inner = t.next_inner_++;
  t.new_edge(inner, tip_a, brlen);
  t.new_edge(inner, tip_b, brlen);
  t.new_edge(inner, tip_c, brlen);
  return t;
}

int Tree::attach_tip(int tip, int e, double tip_brlen) {
  RXC_ASSERT(is_tip(tip) && degree_[tip] == 0);
  RXC_ASSERT(next_inner_ < static_cast<int>(node_count()));
  const int inner = next_inner_++;
  const int a = edges_[e].a;
  const int b = edges_[e].b;
  const double half = edges_[e].length * 0.5;
  kill_edge(e);
  reuse_edge_slot(e, a, inner, half);
  new_edge(inner, b, half);
  new_edge(inner, tip, tip_brlen);
  return inner;
}

Tree Tree::random_topology(std::size_t ntips, Rng& rng,
                           double default_brlen) {
  std::vector<int> order(ntips);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = ntips; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  Tree t = initial_triplet(ntips, order[0], order[1], order[2],
                           default_brlen);
  for (std::size_t k = 3; k < ntips; ++k) {
    // Pick a uniformly random live edge.
    std::vector<int> live;
    live.reserve(t.edges_.size());
    for (std::size_t e = 0; e < t.edges_.size(); ++e)
      if (t.edges_[e].alive) live.push_back(static_cast<int>(e));
    const int target = live[rng.below(live.size())];
    t.attach_tip(order[k], target, default_brlen);
  }
  t.check_valid();
  return t;
}

Tree::PruneRecord Tree::prune(int x, int s) {
  RXC_ASSERT(!is_tip(x) && degree_[x] == 3);
  RXC_ASSERT(edge_between(x, s) >= 0);
  PruneRecord rec{};
  rec.x = x;
  rec.s = s;
  // Identify the other two neighbors.
  int others[2];
  int edges_xo[2];
  int count = 0;
  for (const auto& nb : neighbors(x)) {
    if (nb.node == s) continue;
    others[count] = nb.node;
    edges_xo[count] = nb.edge;
    ++count;
  }
  RXC_ASSERT(count == 2);
  rec.a = others[0];
  rec.b = others[1];
  rec.edge_xa = edges_xo[0];
  rec.edge_xb = edges_xo[1];
  rec.len_xa = edges_[rec.edge_xa].length;
  rec.len_xb = edges_[rec.edge_xb].length;

  kill_edge(rec.edge_xa);
  kill_edge(rec.edge_xb);
  reuse_edge_slot(rec.edge_xa, rec.a, rec.b, rec.len_xa + rec.len_xb);
  rec.merged_edge = rec.edge_xa;
  return rec;
}

void Tree::regraft(int x, int target, double len_to_a, int reuse_edge) {
  RXC_ASSERT(degree_[x] == 1);
  RXC_ASSERT(edges_[target].alive && !edges_[reuse_edge].alive);
  const int a = edges_[target].a;
  const int b = edges_[target].b;
  const double total = edges_[target].length;
  RXC_ASSERT(len_to_a > 0.0 && len_to_a < total);
  kill_edge(target);
  reuse_edge_slot(target, a, x, len_to_a);
  reuse_edge_slot(reuse_edge, x, b, total - len_to_a);
}

void Tree::restore(const PruneRecord& rec) {
  RXC_ASSERT(degree_[rec.x] == 1);
  // The merged a—b edge must currently live in slot rec.edge_xa.
  RXC_ASSERT(edges_[rec.edge_xa].alive);
  RXC_ASSERT((edges_[rec.edge_xa].a == rec.a && edges_[rec.edge_xa].b == rec.b) ||
             (edges_[rec.edge_xa].a == rec.b && edges_[rec.edge_xa].b == rec.a));
  kill_edge(rec.edge_xa);
  reuse_edge_slot(rec.edge_xa, rec.x, rec.a, rec.len_xa);
  reuse_edge_slot(rec.edge_xb, rec.x, rec.b, rec.len_xb);
}

void Tree::detach_dangling(int inner, int tip) {
  RXC_ASSERT(inner == next_inner_ - 1);
  RXC_ASSERT(degree_[inner] == 1 && adj_[inner][0].node == tip);
  kill_edge(adj_[inner][0].edge);
  --next_inner_;
}

// --- Newick ------------------------------------------------------------

namespace {

/// Recursive builder: connects `nw`'s subtree, returns its graph node.
int build_subtree(const io::NewickNode& nw,
                  const std::map<std::string, int>& tip_ids, Tree& t,
                  int& next_inner,
                  std::vector<std::pair<std::pair<int, int>, double>>& edges) {
  if (nw.is_leaf()) {
    const auto it = tip_ids.find(nw.label);
    if (it == tip_ids.end())
      throw ParseError("Newick leaf '" + nw.label + "' not in taxon set");
    return it->second;
  }
  RXC_REQUIRE(nw.children.size() == 2,
              "tree must be binary (inner nodes with 2 children)");
  const int me = next_inner++;
  for (const auto& child : nw.children) {
    const int cid = build_subtree(*child, tip_ids, t, next_inner, edges);
    edges.push_back({{me, cid}, child->length.value_or(0.1)});
  }
  return me;
}

}  // namespace

Tree Tree::from_newick(const io::NewickNode& root,
                       const std::vector<std::string>& taxon_names) {
  const std::size_t ntips = taxon_names.size();
  RXC_REQUIRE(io::leaf_count(root) == ntips,
              "Newick tree leaf count != taxon set size");
  std::map<std::string, int> tip_ids;
  for (std::size_t i = 0; i < ntips; ++i) {
    const bool inserted =
        tip_ids.emplace(taxon_names[i], static_cast<int>(i)).second;
    RXC_REQUIRE(inserted, "duplicate taxon name: " + taxon_names[i]);
  }

  Tree t(ntips);
  int next_inner = static_cast<int>(ntips);
  std::vector<std::pair<std::pair<int, int>, double>> edge_list;

  if (root.children.size() == 2) {
    // Rooted input: splice the root out — connect its two children directly.
    const int left =
        build_subtree(*root.children[0], tip_ids, t, next_inner, edge_list);
    const int right =
        build_subtree(*root.children[1], tip_ids, t, next_inner, edge_list);
    const double len = root.children[0]->length.value_or(0.05) +
                       root.children[1]->length.value_or(0.05);
    edge_list.push_back({{left, right}, len});
  } else if (root.children.size() == 3) {
    const int me = next_inner++;
    for (const auto& child : root.children) {
      const int cid =
          build_subtree(*child, tip_ids, t, next_inner, edge_list);
      edge_list.push_back({{me, cid}, child->length.value_or(0.1)});
    }
  } else {
    throw ParseError("Newick root must have 2 or 3 children, got " +
                     std::to_string(root.children.size()));
  }

  RXC_REQUIRE(next_inner == static_cast<int>(t.node_count()),
              "inner node count mismatch (tree not fully binary?)");
  for (const auto& [uv, len] : edge_list)
    t.new_edge(uv.first, uv.second, len > 0.0 ? len : 1e-6);
  t.next_inner_ = next_inner;
  t.check_valid();
  return t;
}

Tree Tree::from_newick_string(const std::string& text,
                              const std::vector<std::string>& taxon_names) {
  const auto nw = io::parse_newick(text);
  return from_newick(*nw, taxon_names);
}

namespace {
void write_subtree(const Tree& t, int node, int from,
                   const std::vector<std::string>& names,
                   std::ostringstream& out) {
  if (t.is_tip(node)) {
    out << names[node];
    return;
  }
  out << '(';
  bool first = true;
  for (const auto& nb : t.neighbors(node)) {
    if (nb.node == from) continue;
    if (!first) out << ',';
    first = false;
    write_subtree(t, nb.node, node, names, out);
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", t.branch_length(nb.edge));
    out << ':' << buf;
  }
  out << ')';
}
}  // namespace

std::string Tree::to_newick(const std::vector<std::string>& names) const {
  RXC_ASSERT(names.size() == ntips_);
  RXC_ASSERT(degree_[0] == 1);
  const Neighbor anchor = adj_[0][0];
  std::ostringstream out;
  out << '(' << names[0];
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", branch_length(anchor.edge));
  out << ':' << buf << ',';
  // Emit the rest of the tree as the anchor inner node's other subtrees.
  bool first = true;
  for (const auto& nb : neighbors(anchor.node)) {
    if (nb.node == 0) continue;
    if (!first) out << ',';
    first = false;
    write_subtree(*this, nb.node, anchor.node, names, out);
    std::snprintf(buf, sizeof buf, "%.9g", branch_length(nb.edge));
    out << ':' << buf;
  }
  out << ");";
  return out.str();
}

// --- analysis ------------------------------------------------------------

namespace {
void collect_tips(const Tree& t, int node, int from,
                  std::vector<std::uint64_t>& bits) {
  if (t.is_tip(node)) {
    bits[node / 64] |= (1ULL << (node % 64));
    return;
  }
  for (const auto& nb : t.neighbors(node))
    if (nb.node != from) collect_tips(t, nb.node, node, bits);
}
}  // namespace

Split Tree::split_of_edge(int e) const {
  RXC_ASSERT(edges_[e].alive);
  const int a = edges_[e].a;
  const int b = edges_[e].b;
  RXC_ASSERT_MSG(!is_tip(a) && !is_tip(b), "trivial split requested");
  const std::size_t words = (ntips_ + 63) / 64;
  Split s;
  s.bits.assign(words, 0);
  collect_tips(*this, a, b, s.bits);
  if (s.bits[0] & 1ULL) {  // normalize: complement so tip 0 is clear
    for (std::size_t w = 0; w < words; ++w) s.bits[w] = ~s.bits[w];
    const std::size_t tail = ntips_ % 64;
    if (tail) s.bits[words - 1] &= (1ULL << tail) - 1;
  }
  return s;
}

std::vector<Split> Tree::splits() const {
  std::vector<Split> out;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (!edges_[e].alive) continue;
    if (is_tip(edges_[e].a) || is_tip(edges_[e].b)) continue;
    out.push_back(split_of_edge(static_cast<int>(e)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Tree::rf_distance(const Tree& lhs, const Tree& rhs) {
  RXC_REQUIRE(lhs.tip_count() == rhs.tip_count(),
              "RF distance needs equal taxon sets");
  const auto ls = lhs.splits();
  const auto rs = rhs.splits();
  std::size_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < ls.size() && j < rs.size()) {
    if (ls[i] == rs[j]) {
      ++common;
      ++i;
      ++j;
    } else if (ls[i] < rs[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return ls.size() + rs.size() - 2 * common;
}

double Tree::total_length() const {
  double sum = 0.0;
  for (const auto& e : edges_)
    if (e.alive) sum += e.length;
  return sum;
}

void Tree::check_valid() const {
  RXC_REQUIRE(live_edges_ == 2 * ntips_ - 3,
              "edge count != 2T-3: " + std::to_string(live_edges_));
  for (std::size_t n = 0; n < node_count(); ++n) {
    const int want = is_tip(static_cast<int>(n)) ? 1 : 3;
    RXC_REQUIRE(degree_[n] == want,
                "node " + std::to_string(n) + " degree " +
                    std::to_string(degree_[n]) + " != " + std::to_string(want));
    for (const auto& nb : neighbors(static_cast<int>(n))) {
      RXC_REQUIRE(edges_[nb.edge].alive, "neighbor references dead edge");
      const auto [a, b] = edge_nodes(nb.edge);
      RXC_REQUIRE((a == static_cast<int>(n) && b == nb.node) ||
                      (b == static_cast<int>(n) && a == nb.node),
                  "edge endpoints disagree with adjacency");
      RXC_REQUIRE(edges_[nb.edge].length > 0.0, "non-positive branch length");
    }
  }
  // Connectivity from tip 0.
  std::vector<bool> seen(node_count(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    ++visited;
    for (const auto& nb : neighbors(n)) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        stack.push_back(nb.node);
      }
    }
  }
  RXC_REQUIRE(visited == node_count(), "tree is disconnected");
}

}  // namespace rxc::tree
