#pragma once
/// \file render.h
/// Plain-text tree rendering for terminals and reports (the examples use it
/// to show inferred phylogenies like the paper's Figure 1).

#include <string>
#include <vector>

#include "tree/tree.h"

namespace rxc::tree {

/// Indented ASCII rendering rooted at the inner node adjacent to
/// `root_tip` (that tip is printed first).  Inner nodes are '+', tips are
/// '- name'; each level indents by two spaces.  Branch lengths are shown
/// when `show_lengths`.
std::string ascii_tree(const Tree& t, const std::vector<std::string>& names,
                       int root_tip = 0, bool show_lengths = false);

}  // namespace rxc::tree
