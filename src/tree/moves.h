#pragma once
/// \file moves.h
/// Topology move enumeration for the hill-climbing search: subtree pruning
/// and regrafting (SPR) within a rearrangement radius, plus nearest-neighbor
/// interchange (NNI) as the radius-1 special case.

#include <vector>

#include "tree/tree.h"

namespace rxc::tree {

/// A candidate SPR: prune the subtree hanging off `x` behind neighbor `s`
/// (i.e. call t.prune(x, s)) and regraft into `target_edge`.
struct SprCandidate {
  int x = -1;
  int s = -1;
  int target_edge = -1;
  int distance = 0;  ///< edges between the merged edge and the target
};

/// All (x, s) prune points of a full tree: every inner node x paired with
/// each neighbor s whose removal leaves a non-trivial remaining tree.
std::vector<std::pair<int, int>> enumerate_prune_points(const Tree& t);

/// Target edges within `radius` edges of the pruned position.  Must be
/// called while the subtree is pruned (after t.prune(x, s) returned `rec`);
/// the merged edge itself is excluded (it is the original position).
std::vector<SprCandidate> enumerate_regraft_targets(
    const Tree& t, const Tree::PruneRecord& rec, int radius);

}  // namespace rxc::tree
