#include "tree/moves.h"

#include <queue>

namespace rxc::tree {

std::vector<std::pair<int, int>> enumerate_prune_points(const Tree& t) {
  std::vector<std::pair<int, int>> out;
  for (int x = static_cast<int>(t.tip_count());
       x < static_cast<int>(t.node_count()); ++x) {
    for (const auto& nb : t.neighbors(x)) {
      // Pruning (x, s) moves the subtree behind s.  Any neighbor works
      // topologically; skip directions where the two remaining neighbors
      // are the whole rest of the tree of size < 2 edges (nothing to
      // regraft into) — that cannot happen for full binary trees with
      // >= 5 taxa, so enumerate all three directions.
      out.emplace_back(x, nb.node);
    }
  }
  return out;
}

std::vector<SprCandidate> enumerate_regraft_targets(
    const Tree& t, const Tree::PruneRecord& rec, int radius) {
  RXC_ASSERT(radius >= 1);
  // BFS over nodes of the remaining tree, starting from the merged edge's
  // endpoints at distance 0; an edge's distance is min over its endpoints'.
  std::vector<int> dist(t.node_count(), -1);
  std::queue<int> queue;
  dist[rec.a] = 0;
  dist[rec.b] = 0;
  queue.push(rec.a);
  queue.push(rec.b);
  std::vector<SprCandidate> out;
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop();
    if (dist[n] >= radius) continue;
    for (const auto& nb : t.neighbors(n)) {
      if (nb.edge == rec.merged_edge) continue;
      if (dist[nb.node] == -1) {
        dist[nb.node] = dist[n] + 1;
        out.push_back({rec.x, rec.s, nb.edge, dist[n] + 1});
        queue.push(nb.node);
      }
    }
  }
  return out;
}

}  // namespace rxc::tree
