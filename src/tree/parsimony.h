#pragma once
/// \file parsimony.h
/// Fitch parsimony scoring and randomized stepwise-addition starting trees.
///
/// RAxML starts every independent tree search from a distinct Maximum
/// Parsimony tree built by random stepwise addition (paper §3.1); the
/// random insertion order is what differentiates the starting points.
///
/// The Fitch recurrence works on per-taxon bitmasks of compatible states,
/// so one generic implementation serves DNA (4-bit masks) and protein
/// (20-bit masks) alike.

#include <cstdint>
#include <vector>

#include "seq/aa_alignment.h"
#include "seq/patterns.h"
#include "support/error.h"
#include "tree/tree.h"

namespace rxc::tree {

/// State-set patterns for Fitch: taxon-major rows of 32-bit masks.
struct MaskPatterns {
  std::size_t ntaxa = 0;
  std::size_t npatterns = 0;
  std::vector<std::uint32_t> masks;  ///< ntaxa x npatterns
  std::vector<double> weights;       ///< per-pattern multiplicities

  const std::uint32_t* row(std::size_t taxon) const {
    RXC_ASSERT(taxon < ntaxa);  // a node id < 0 wraps huge through size_t
    return masks.data() + taxon * npatterns;
  }

  static MaskPatterns from_dna(const seq::PatternAlignment& pa);
  static MaskPatterns from_aa(const seq::AaPatternAlignment& pa);
};

/// Weighted Fitch parsimony score over arbitrary-width state masks.
double parsimony_score(const Tree& t, const MaskPatterns& mp);

/// Randomized stepwise addition over mask patterns.
Tree stepwise_addition_tree(const MaskPatterns& mp, Rng& rng,
                            double default_brlen = 0.05);

/// DNA conveniences (convert once, then run the generic machinery).
double parsimony_score(const Tree& t, const seq::PatternAlignment& pa,
                       const std::vector<double>& weights);
Tree stepwise_addition_tree(const seq::PatternAlignment& pa, Rng& rng,
                            double default_brlen = 0.05);

/// Protein conveniences.
double parsimony_score(const Tree& t, const seq::AaPatternAlignment& pa);
Tree stepwise_addition_tree(const seq::AaPatternAlignment& pa, Rng& rng,
                            double default_brlen = 0.05);

}  // namespace rxc::tree
