#pragma once
/// \file tree.h
/// Unrooted binary phylogenetic tree.
///
/// Nodes 0..T-1 are tips (taxa, ids match alignment row order);
/// nodes T..2T-3 are inner nodes of degree 3.  Edges carry branch lengths
/// in expected substitutions per site.  Edge ids are stable across
/// prune/regraft edits (freed slots are recycled), which lets the likelihood
/// code key per-edge caches by edge id.
///
/// Directed edges: every undirected edge e with endpoints (u,v) yields two
/// directed views, dir(u,e) = "the subtree on u's side, looking along e".
/// Partial likelihood vectors are stored per directed edge (likelihood/
/// partials.h).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "io/newick.h"
#include "support/error.h"
#include "support/rng.h"

namespace rxc::tree {

/// Bipartition of the taxon set induced by an internal edge; bits are taxon
/// ids, normalized so bit 0 is always clear (complement otherwise).
struct Split {
  std::vector<std::uint64_t> bits;
  bool operator==(const Split&) const = default;
  bool operator<(const Split& o) const { return bits < o.bits; }
};

class Tree {
public:
  struct Neighbor {
    int node = -1;
    int edge = -1;
  };

  /// Unresolved "star with 3 tips" smallest unrooted binary tree; grows via
  /// attach_tip (used by stepwise addition and random trees).
  static Tree initial_triplet(std::size_t total_tips, int tip_a, int tip_b,
                              int tip_c, double brlen);

  /// Uniform-ish random topology: random taxon insertion order, each new tip
  /// attached to a uniformly random existing edge.
  static Tree random_topology(std::size_t ntips, Rng& rng,
                              double default_brlen = 0.1);

  /// Converts a parsed Newick tree.  `taxon_names` defines tip ids; every
  /// leaf label must resolve, and every taxon must appear exactly once.
  /// Degree-2 "root" nodes are spliced out (branch lengths summed).
  static Tree from_newick(const io::NewickNode& root,
                          const std::vector<std::string>& taxon_names);
  static Tree from_newick_string(const std::string& text,
                                 const std::vector<std::string>& taxon_names);

  /// Serializes rooted at the inner node adjacent to tip 0.
  std::string to_newick(const std::vector<std::string>& taxon_names) const;

  std::size_t tip_count() const { return ntips_; }
  std::size_t node_count() const { return 2 * ntips_ - 2; }
  /// Number of live edges (2T-3 when fully grown).
  std::size_t edge_count() const { return live_edges_; }
  /// Upper bound for edge ids (capacity; some slots may be free mid-edit).
  std::size_t edge_slots() const { return edges_.size(); }
  std::size_t directed_count() const { return 2 * edge_slots(); }

  bool is_tip(int node) const { return node < static_cast<int>(ntips_); }
  int degree(int node) const { return degree_[node]; }
  std::span<const Neighbor> neighbors(int node) const {
    return {adj_[node].data(), static_cast<std::size_t>(degree_[node])};
  }
  bool edge_alive(int e) const { return edges_[e].alive; }
  std::pair<int, int> edge_nodes(int e) const {
    RXC_ASSERT(edges_[e].alive);
    return {edges_[e].a, edges_[e].b};
  }
  /// Other endpoint of edge e as seen from `node`.
  int edge_other(int e, int node) const {
    const auto [a, b] = edge_nodes(e);
    RXC_ASSERT(node == a || node == b);
    return node == a ? b : a;
  }
  double branch_length(int e) const {
    RXC_ASSERT(edges_[e].alive);
    return edges_[e].length;
  }
  void set_branch_length(int e, double len) {
    RXC_ASSERT(edges_[e].alive);
    RXC_ASSERT(len > 0.0);
    edges_[e].length = len;
  }
  /// Edge connecting u and v, or -1.
  int edge_between(int u, int v) const;

  /// Directed-edge index for per-direction caches: in [0, 2*edge_slots()).
  int dir_index(int node, int edge) const {
    RXC_ASSERT(edges_[edge].alive);
    RXC_ASSERT(node == edges_[edge].a || node == edges_[edge].b);
    return 2 * edge + (node == edges_[edge].a ? 0 : 1);
  }
  /// Opposite direction of a directed index.
  static int dir_reverse(int dir) { return dir ^ 1; }
  /// (node, edge) for a directed index: node is the side the subtree is on.
  std::pair<int, int> dir_nodes(int dir) const {
    const int e = dir / 2;
    RXC_ASSERT(edges_[e].alive);
    const int node = (dir & 1) ? edges_[e].b : edges_[e].a;
    return {node, e};
  }

  // --- structural edits -----------------------------------------------

  /// Attaches tip `tip` (must not be attached yet) in the middle of edge
  /// `e`, creating inner node `inner` (must be unattached).  The split edge
  /// keeps id `e` on one side and allocates a new id on the other.
  /// Returns the new inner node's id.
  int attach_tip(int tip, int e, double tip_brlen);

  /// Prune: `x` is an inner node, `s` one of its neighbors (root of the
  /// subtree to move).  Removes x from between its other two neighbors a,b,
  /// reconnecting a—b with summed length.  After this, x has degree 1
  /// (only s).  Returns the merged edge id (a—b) plus undo info.
  struct PruneRecord {
    int x, s;             ///< pruned attachment node and subtree neighbor
    int a, b;             ///< former neighbors
    int edge_xa, edge_xb; ///< former edge ids (edge_xa is reused for a—b)
    double len_xa, len_xb;
    int merged_edge;      ///< == edge_xa
  };
  PruneRecord prune(int x, int s);

  /// Regraft: inserts degree-1 node `x` into edge `target`, splitting it.
  /// `len_to_a` is the branch from target's endpoint `edges_[target].a`
  /// to x.  `reuse_edge` must be the edge id freed by the matching prune
  /// (edge_xb from the PruneRecord) so ids stay dense.  Total length of the
  /// two new edges equals the old target length.
  void regraft(int x, int target, double len_to_a, int reuse_edge);

  /// Undo a prune+regraft pair: call after prune (with or without an
  /// intervening regraft+prune-back) to restore exactly the recorded state.
  void restore(const PruneRecord& rec);

  /// Reverses an attach_tip that was immediately followed by
  /// prune(inner, tip): removes the dangling inner—tip edge and returns the
  /// inner node id to the allocator.  `inner` must be the most recently
  /// allocated inner node.
  void detach_dangling(int inner, int tip);

  // --- analysis --------------------------------------------------------

  /// All internal-edge splits, sorted (topology fingerprint).
  std::vector<Split> splits() const;

  /// The (normalized) split induced by one internal edge.  `e` must be
  /// alive and connect two inner nodes.
  Split split_of_edge(int e) const;

  /// Robinson-Foulds distance (number of splits in exactly one tree).
  static std::size_t rf_distance(const Tree& lhs, const Tree& rhs);

  /// Sum of all branch lengths.
  double total_length() const;

  /// Exhaustive invariant check (degrees, symmetry, connectivity, edge
  /// bookkeeping).  Throws rxc::Error on violation.  Used heavily in tests;
  /// cheap enough to call after every accepted move.
  void check_valid() const;

private:
  struct Edge {
    int a = -1, b = -1;
    double length = 0.0;
    bool alive = false;
  };

  explicit Tree(std::size_t ntips);

  int new_edge(int a, int b, double length);
  void reuse_edge_slot(int id, int a, int b, double length);
  void kill_edge(int e);
  void add_neighbor(int node, int nbr, int edge);
  void remove_neighbor(int node, int nbr);
  void replace_neighbor(int node, int old_nbr, int new_nbr, int new_edge);

  std::size_t ntips_ = 0;
  std::vector<std::array<Neighbor, 3>> adj_;
  std::vector<std::int8_t> degree_;
  std::vector<Edge> edges_;
  std::size_t live_edges_ = 0;
  int next_inner_ = 0;  ///< next unused inner node id during growth
};

}  // namespace rxc::tree
