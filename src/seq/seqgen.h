#pragma once
/// \file seqgen.h
/// Sequence-evolution simulator (Seq-Gen-style): draws a random Yule tree,
/// then evolves DNA down it under a reversible model with Gamma-distributed
/// per-site rates.
///
/// This is the substitute for the paper's 42_SC input file (42 taxa x 1167
/// nucleotides, ~250 distinct patterns), which is not redistributable: the
/// kernels' work depends only on taxon count, pattern count and rate
/// categories, all of which make_42sc() matches (see DESIGN.md §2).

#include <cstdint>
#include <string>

#include "model/dna_model.h"
#include "seq/alignment.h"
#include "support/rng.h"

namespace rxc::seq {

struct SimOptions {
  std::size_t ntaxa = 16;
  std::size_t nsites = 1000;
  model::DnaModel model = model::DnaModel::gtr(
      {1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, {0.30, 0.21, 0.24, 0.25});
  /// Shape of the per-site rate distribution Gamma(alpha, alpha);
  /// alpha <= 0 disables rate heterogeneity.
  double gamma_alpha = 0.5;
  /// Mean branch length in expected substitutions per site.
  double branch_scale = 0.05;
  std::uint64_t seed = 42;
  std::string name_prefix = "taxon";
};

struct SimResult {
  Alignment alignment;
  std::string true_tree_newick;  ///< the generating tree, with branch lengths
};

/// Simulates an alignment.  Deterministic given options.seed.
SimResult simulate_alignment(const SimOptions& options);

/// Simulates along a GIVEN rooted tree (Newick with branch lengths) instead
/// of a random Yule tree.  Taxon names are taken from the Newick leaves.
/// `options.ntaxa`/`branch_scale`/`name_prefix` are ignored.
SimResult simulate_on_newick(const std::string& newick,
                             const SimOptions& options);

/// The paper-shaped workload: 42 taxa x 1167 sites tuned to compress to
/// roughly 250 distinct patterns (the paper reports "on the order of 250").
SimResult make_42sc(std::uint64_t seed = 42);

}  // namespace rxc::seq
