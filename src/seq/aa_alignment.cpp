#include "seq/aa_alignment.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "support/error.h"

namespace rxc::seq {
namespace {

/// letter -> code, built once.
constexpr std::array<AaCode, 26> build_letter_table() {
  std::array<AaCode, 26> table{};
  for (auto& t : table) t = 255;
  for (int i = 0; i < 20; ++i) table[kAaLetters[i] - 'A'] = static_cast<AaCode>(i);
  table['B' - 'A'] = kAaCodeB;
  table['Z' - 'A'] = kAaCodeZ;
  table['J' - 'A'] = kAaCodeJ;
  table['X' - 'A'] = kAaCodeX;
  return table;
}
constexpr auto kLetterTable = build_letter_table();

int residue_index(char c) {
  for (int i = 0; i < 20; ++i)
    if (kAaLetters[i] == c) return i;
  return -1;
}

}  // namespace

std::uint32_t aa_code_mask(AaCode code) {
  RXC_ASSERT(code < kAaCodeCount);
  if (code < 20) return 1u << code;
  switch (code) {
    case kAaCodeB:  // Asn or Asp
      return (1u << residue_index('N')) | (1u << residue_index('D'));
    case kAaCodeZ:  // Gln or Glu
      return (1u << residue_index('Q')) | (1u << residue_index('E'));
    case kAaCodeJ:  // Ile or Leu
      return (1u << residue_index('I')) | (1u << residue_index('L'));
    default:
      return (1u << 20) - 1;  // X / gap: anything
  }
}

AaCode encode_aa(char c) {
  const char up = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (up == '-' || up == '?' || up == '.' || up == '*') return kAaCodeX;
  if (up < 'A' || up > 'Z')
    throw ParseError(std::string("invalid amino-acid character '") + c + "'");
  const AaCode code = kLetterTable[up - 'A'];
  if (code == 255)
    throw ParseError(std::string("invalid amino-acid character '") + c + "'");
  return code;
}

char decode_aa(AaCode code) {
  RXC_ASSERT(code < kAaCodeCount);
  if (code < 20) return kAaLetters[code];
  switch (code) {
    case kAaCodeB: return 'B';
    case kAaCodeZ: return 'Z';
    case kAaCodeJ: return 'J';
    default: return 'X';
  }
}

AaAlignment AaAlignment::from_records(
    const std::vector<io::SeqRecord>& records) {
  RXC_REQUIRE(records.size() >= 4, "AA alignment needs at least 4 taxa");
  AaAlignment a;
  a.nsites_ = records.front().data.size();
  RXC_REQUIRE(a.nsites_ > 0, "AA alignment has zero sites");
  std::set<std::string> seen;
  for (const auto& rec : records) {
    if (rec.data.size() != a.nsites_)
      throw ParseError("AA sequence '" + rec.name + "' has wrong length");
    if (!seen.insert(rec.name).second)
      throw ParseError("duplicate taxon name '" + rec.name + "'");
    a.names_.push_back(rec.name);
    for (char c : rec.data) a.codes_.push_back(encode_aa(c));
  }
  return a;
}

std::vector<io::SeqRecord> AaAlignment::to_records() const {
  std::vector<io::SeqRecord> out;
  out.reserve(taxon_count());
  for (std::size_t t = 0; t < taxon_count(); ++t) {
    io::SeqRecord rec;
    rec.name = names_[t];
    rec.data.reserve(nsites_);
    for (std::size_t s = 0; s < nsites_; ++s)
      rec.data.push_back(decode_aa(at(t, s)));
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<double> AaAlignment::empirical_freqs() const {
  std::vector<double> counts(20, 0.0);
  for (const AaCode code : codes_) {
    const std::uint32_t mask = aa_code_mask(code);
    if (mask == (1u << 20) - 1) continue;  // unknown: no information
    const int bits = __builtin_popcount(mask);
    for (int i = 0; i < 20; ++i)
      if (mask & (1u << i)) counts[i] += 1.0 / bits;
  }
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total == 0.0) return std::vector<double>(20, 0.05);
  for (double& c : counts) c /= total;
  // Guard zero frequencies (models require strictly positive).
  double mass = 0.0;
  for (double& c : counts) {
    c = std::max(c, 1e-4);
    mass += c;
  }
  for (double& c : counts) c /= mass;
  return counts;
}

AaPatternAlignment AaPatternAlignment::compress(const AaAlignment& a) {
  const std::size_t ntaxa = a.taxon_count();
  const std::size_t nsites = a.site_count();
  AaPatternAlignment pa;
  pa.names_ = a.names();
  pa.site_to_pattern_.resize(nsites);

  std::map<std::string, std::size_t> index;
  std::vector<std::string> columns;
  std::string col(ntaxa, '\0');
  for (std::size_t s = 0; s < nsites; ++s) {
    for (std::size_t t = 0; t < ntaxa; ++t)
      col[t] = static_cast<char>(a.at(t, s));
    const auto [it, inserted] = index.try_emplace(col, columns.size());
    if (inserted) {
      columns.push_back(col);
      pa.weights_.push_back(0.0);
    }
    pa.weights_[it->second] += 1.0;
    pa.site_to_pattern_[s] = it->second;
  }
  pa.npatterns_ = columns.size();
  pa.row_stride_ = round_up(pa.npatterns_, kDmaAlignment);
  pa.codes_.assign(ntaxa * pa.row_stride_, kAaCodeX);
  for (std::size_t p = 0; p < pa.npatterns_; ++p)
    for (std::size_t t = 0; t < ntaxa; ++t)
      pa.codes_[t * pa.row_stride_ + p] = static_cast<AaCode>(columns[p][t]);
  return pa;
}

AaSimResult simulate_aa_alignment(const AaSimOptions& options) {
  RXC_REQUIRE(options.ntaxa >= 4, "simulate_aa_alignment: need >= 4 taxa");
  RXC_REQUIRE(options.nsites >= 1, "simulate_aa_alignment: need >= 1 site");
  options.model.validate();

  // Reuse the DNA simulator's tree by generating a Yule tree through the
  // same process, expressed directly here (the SimNode machinery is
  // internal to seqgen.cpp).
  Rng rng(options.seed);
  struct Node {
    int parent = -1, left = -1, right = -1, taxon = -1;
    double brlen = 0.0;
  };
  std::vector<Node> nodes(1);
  std::vector<int> leaves;
  for (int c = 0; c < 2; ++c) {
    Node leaf;
    leaf.parent = 0;
    leaf.brlen = options.branch_scale * rng.exponential();
    nodes.push_back(leaf);
    leaves.push_back(static_cast<int>(nodes.size()) - 1);
  }
  nodes[0].left = leaves[0];
  nodes[0].right = leaves[1];
  while (leaves.size() < options.ntaxa) {
    const std::size_t pick = rng.below(leaves.size());
    const int split = leaves[pick];
    for (int c = 0; c < 2; ++c) {
      Node leaf;
      leaf.parent = split;
      leaf.brlen = options.branch_scale * rng.exponential();
      nodes.push_back(leaf);
      const int id = static_cast<int>(nodes.size()) - 1;
      if (c == 0) {
        nodes[split].left = id;
        leaves[pick] = id;
      } else {
        nodes[split].right = id;
        leaves.push_back(id);
      }
    }
  }
  int next_taxon = 0;
  for (auto& node : nodes)
    if (node.left == -1) node.taxon = next_taxon++;

  const auto es = options.model.decompose();
  std::vector<double> site_rate(options.nsites, 1.0);
  if (options.gamma_alpha > 0.0)
    for (double& r : site_rate)
      r = rng.gamma(options.gamma_alpha) / options.gamma_alpha;

  std::vector<std::vector<std::uint8_t>> states(
      nodes.size(), std::vector<std::uint8_t>(options.nsites));
  std::vector<double> cdf(20);
  double acc = 0.0;
  for (int i = 0; i < 20; ++i) {
    acc += options.model.freqs[i];
    cdf[i] = acc;
  }
  for (std::size_t s = 0; s < options.nsites; ++s)
    states[0][s] =
        static_cast<std::uint8_t>(rng.discrete_from_cdf(cdf.data(), 20));

  std::vector<double> pmat(400), row_cdf(20);
  for (std::size_t id = 1; id < nodes.size(); ++id) {
    const Node& n = nodes[id];
    double cached_rate = -1.0;
    for (std::size_t s = 0; s < options.nsites; ++s) {
      if (site_rate[s] != cached_rate) {
        cached_rate = site_rate[s];
        model::transition_matrix_n(es, n.brlen * cached_rate, pmat.data());
      }
      const int from = states[n.parent][s];
      double a2 = 0.0;
      for (int j = 0; j < 20; ++j) {
        a2 += pmat[from * 20 + j];
        row_cdf[j] = a2;
      }
      states[id][s] =
          static_cast<std::uint8_t>(rng.discrete_from_cdf(row_cdf.data(), 20));
    }
  }

  std::vector<io::SeqRecord> records(options.ntaxa);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (nodes[id].taxon < 0) continue;
    io::SeqRecord& rec = records[nodes[id].taxon];
    rec.name = options.name_prefix + std::to_string(nodes[id].taxon);
    rec.data.reserve(options.nsites);
    for (std::size_t s = 0; s < options.nsites; ++s)
      rec.data.push_back(kAaLetters[states[id][s]]);
  }

  // Newick for the generating tree.
  std::function<std::string(int)> nw = [&](int id) -> std::string {
    const Node& n = nodes[id];
    std::string out;
    if (n.left == -1) {
      out = options.name_prefix + std::to_string(n.taxon);
    } else {
      out = "(" + nw(n.left) + "," + nw(n.right) + ")";
    }
    if (n.parent != -1) out += ":" + std::to_string(n.brlen);
    return out;
  };
  return {AaAlignment::from_records(records), nw(0) + ";"};
}

}  // namespace rxc::seq
