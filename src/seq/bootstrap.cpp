#include "seq/bootstrap.h"

#include "support/error.h"

namespace rxc::seq {

std::vector<double> bootstrap_weights(const PatternAlignment& pa, Rng& rng) {
  std::vector<double> weights(pa.pattern_count(), 0.0);
  const auto& site_to_pattern = pa.site_to_pattern();
  const std::size_t nsites = pa.site_count();
  for (std::size_t draw = 0; draw < nsites; ++draw) {
    const std::size_t site = rng.below(nsites);
    weights[site_to_pattern[site]] += 1.0;
  }
  return weights;
}

std::vector<double> support_fractions(
    const std::vector<std::vector<bool>>& replicate_splits) {
  RXC_REQUIRE(!replicate_splits.empty(), "no bootstrap replicates");
  const std::size_t nsplits = replicate_splits.front().size();
  std::vector<double> support(nsplits, 0.0);
  for (const auto& rep : replicate_splits) {
    RXC_ASSERT(rep.size() == nsplits);
    for (std::size_t i = 0; i < nsplits; ++i)
      if (rep[i]) support[i] += 1.0;
  }
  for (double& s : support) s /= static_cast<double>(replicate_splits.size());
  return support;
}

}  // namespace rxc::seq
