#pragma once
/// \file patterns.h
/// Site-pattern compression.  Identical alignment columns contribute
/// identical per-site likelihood terms, so the kernels iterate over
/// *distinct* columns (patterns) weighted by multiplicity — this is why the
/// paper's 1167-site 42_SC input drives only ~250 kernel loop iterations.

#include <cstddef>
#include <vector>

#include "seq/alignment.h"
#include "support/aligned.h"

namespace rxc::seq {

class PatternAlignment {
public:
  /// Compresses `a`.  Patterns are ordered by first occurrence.
  static PatternAlignment compress(const Alignment& a);

  std::size_t taxon_count() const { return names_.size(); }
  std::size_t pattern_count() const { return npatterns_; }
  std::size_t site_count() const { return site_to_pattern_.size(); }

  const std::vector<std::string>& names() const { return names_; }

  /// Character of `taxon` at pattern `p`.
  DnaCode at(std::size_t taxon, std::size_t p) const {
    return codes_[taxon * row_stride_ + p];
  }
  /// Row pointer: 16-byte aligned with a 16-byte-padded stride, so strips
  /// of it are legal Cell DMA transfers (gap code in the pad entries).
  const DnaCode* row(std::size_t taxon) const {
    return codes_.data() + taxon * row_stride_;
  }
  /// Distance in entries between consecutive taxon rows (>= pattern_count).
  std::size_t row_stride() const { return row_stride_; }

  /// Multiplicity of each pattern in the original alignment (doubles because
  /// bootstrap replicates re-weight them).  sum == site_count().
  const std::vector<double>& weights() const { return weights_; }

  /// Pattern index of each original site.
  const std::vector<std::size_t>& site_to_pattern() const {
    return site_to_pattern_;
  }

private:
  std::vector<std::string> names_;
  aligned_vector<DnaCode> codes_;  ///< taxon-major, taxon_count x row_stride
  std::vector<double> weights_;
  std::vector<std::size_t> site_to_pattern_;
  std::size_t npatterns_ = 0;
  std::size_t row_stride_ = 0;
};

}  // namespace rxc::seq
