#include "seq/seqgen.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "io/newick.h"
#include "support/error.h"

namespace rxc::seq {
namespace {

/// Rooted binary tree for simulation only (the inference code has its own
/// unrooted representation in tree/).
struct SimNode {
  int parent = -1;
  int left = -1, right = -1;
  double brlen = 0.0;  ///< branch to parent
  int taxon = -1;      ///< leaf index or -1
};

/// Yule process: start from a cherry, repeatedly split a uniformly chosen
/// current leaf until `ntaxa` leaves exist.  Branch lengths ~ Exp(mean =
/// branch_scale).
std::vector<SimNode> yule_tree(std::size_t ntaxa, double branch_scale,
                               Rng& rng) {
  RXC_ASSERT(ntaxa >= 2);
  std::vector<SimNode> nodes;
  nodes.reserve(2 * ntaxa - 1);
  nodes.push_back({});  // root
  std::vector<int> leaves;
  for (int c = 0; c < 2; ++c) {
    SimNode leaf;
    leaf.parent = 0;
    leaf.brlen = branch_scale * rng.exponential();
    nodes.push_back(leaf);
    leaves.push_back(static_cast<int>(nodes.size()) - 1);
  }
  nodes[0].left = leaves[0];
  nodes[0].right = leaves[1];

  while (leaves.size() < ntaxa) {
    const std::size_t pick = rng.below(leaves.size());
    const int split = leaves[pick];
    for (int c = 0; c < 2; ++c) {
      SimNode leaf;
      leaf.parent = split;
      leaf.brlen = branch_scale * rng.exponential();
      nodes.push_back(leaf);
      const int id = static_cast<int>(nodes.size()) - 1;
      if (c == 0) {
        nodes[split].left = id;
        leaves[pick] = id;
      } else {
        nodes[split].right = id;
        leaves.push_back(id);
      }
    }
  }
  // Number the leaves left-to-right for stable taxon naming.
  int next_taxon = 0;
  for (auto& node : nodes)
    if (node.left == -1) node.taxon = next_taxon++;
  return nodes;
}

std::string to_newick(const std::vector<SimNode>& nodes, int id,
                      const std::string& prefix) {
  const SimNode& n = nodes[id];
  std::ostringstream out;
  if (n.left == -1) {
    out << prefix << n.taxon;
  } else {
    out << '(' << to_newick(nodes, n.left, prefix) << ','
        << to_newick(nodes, n.right, prefix) << ')';
  }
  if (n.parent != -1) out << ':' << n.brlen;
  return out.str();
}

}  // namespace

/// Evolves sequences down `nodes` (parents precede children) and packages
/// the result.  `taxon_names[i]` names leaf with SimNode::taxon == i; pass
/// empty to use options.name_prefix + index.
static SimResult evolve_on_tree(const std::vector<SimNode>& nodes,
                                const std::vector<std::string>& taxon_names,
                                const SimOptions& options, Rng& rng) {
  options.model.validate();
  RXC_REQUIRE(options.nsites >= 1, "sequence simulation: need >= 1 site");
  const auto es = model::decompose(options.model);

  // Per-site rates.
  std::vector<double> site_rate(options.nsites, 1.0);
  if (options.gamma_alpha > 0.0)
    for (double& r : site_rate)
      r = rng.gamma(options.gamma_alpha) / options.gamma_alpha;

  // Root states from the stationary distribution; children by P(t * rate).
  // states[node][site] in 0..3.
  std::vector<std::vector<std::uint8_t>> states(
      nodes.size(), std::vector<std::uint8_t>(options.nsites));
  double pi_cdf[4];
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    acc += options.model.freqs[i];
    pi_cdf[i] = acc;
  }
  for (std::size_t s = 0; s < options.nsites; ++s)
    states[0][s] = static_cast<std::uint8_t>(rng.discrete_from_cdf(pi_cdf, 4));

  // Pre-order: parents appear before children by construction.
  for (std::size_t id = 1; id < nodes.size(); ++id) {
    const SimNode& n = nodes[id];
    // Cache P(t*r) per distinct rate is overkill here (simulation is not a
    // hot path); compute per site group of equal rate lazily instead.
    double cached_rate = -1.0;
    model::Matrix4 p{};
    double row_cdf[4];
    for (std::size_t s = 0; s < options.nsites; ++s) {
      if (site_rate[s] != cached_rate) {
        cached_rate = site_rate[s];
        p = model::transition_matrix(es, n.brlen * cached_rate);
      }
      const int from = states[n.parent][s];
      double a2 = 0.0;
      for (int j = 0; j < 4; ++j) {
        a2 += p[from * 4 + j];
        row_cdf[j] = a2;
      }
      states[id][s] =
          static_cast<std::uint8_t>(rng.discrete_from_cdf(row_cdf, 4));
    }
  }

  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::size_t nleaves = 0;
  for (const auto& node : nodes)
    if (node.taxon >= 0) ++nleaves;
  std::vector<io::SeqRecord> records(nleaves);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    if (nodes[id].taxon < 0) continue;
    io::SeqRecord& rec = records[nodes[id].taxon];
    rec.name = taxon_names.empty()
                   ? options.name_prefix + std::to_string(nodes[id].taxon)
                   : taxon_names[nodes[id].taxon];
    rec.data.reserve(options.nsites);
    for (std::size_t s = 0; s < options.nsites; ++s)
      rec.data.push_back(kBases[states[id][s]]);
  }

  SimResult result{Alignment::from_records(records), {}};
  return result;
}

SimResult simulate_alignment(const SimOptions& options) {
  RXC_REQUIRE(options.ntaxa >= 4, "simulate_alignment: need >= 4 taxa");
  Rng rng(options.seed);
  const auto nodes = yule_tree(options.ntaxa, options.branch_scale, rng);
  SimResult result = evolve_on_tree(nodes, {}, options, rng);
  result.true_tree_newick = to_newick(nodes, 0, options.name_prefix) + ";";
  return result;
}

namespace {
/// Converts a rooted binary NewickNode subtree into SimNodes.
int convert_newick(const io::NewickNode& nw, int parent,
                   std::vector<SimNode>& nodes,
                   std::vector<std::string>& names) {
  SimNode node;
  node.parent = parent;
  node.brlen = nw.length.value_or(0.1);
  const int id = static_cast<int>(nodes.size());
  nodes.push_back(node);
  if (nw.is_leaf()) {
    nodes[id].taxon = static_cast<int>(names.size());
    names.push_back(nw.label);
    return id;
  }
  RXC_REQUIRE(nw.children.size() == 2,
              "simulate_on_newick: tree must be rooted binary");
  nodes[id].left = convert_newick(*nw.children[0], id, nodes, names);
  nodes[id].right = convert_newick(*nw.children[1], id, nodes, names);
  return id;
}
}  // namespace

SimResult simulate_on_newick(const std::string& newick,
                             const SimOptions& options) {
  const auto root = io::parse_newick(newick);
  std::vector<SimNode> nodes;
  std::vector<std::string> names;
  convert_newick(*root, -1, nodes, names);
  RXC_REQUIRE(names.size() >= 4, "simulate_on_newick: need >= 4 taxa");
  Rng rng(options.seed);
  SimResult result = evolve_on_tree(nodes, names, options, rng);
  result.true_tree_newick = newick;
  return result;
}

SimResult make_42sc(std::uint64_t seed) {
  SimOptions opt;
  opt.ntaxa = 42;
  opt.nsites = 1167;
  opt.gamma_alpha = 0.25;   // strong heterogeneity -> many near-invariant sites
  opt.branch_scale = 0.004; // tuned so compression yields ~250 patterns
  opt.seed = seed;
  opt.name_prefix = "sc";
  return simulate_alignment(opt);
}

}  // namespace rxc::seq
