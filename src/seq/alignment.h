#pragma once
/// \file alignment.h
/// Encoded DNA multiple sequence alignment.
///
/// Characters are stored RAxML-style as 4-bit presence masks over the state
/// order A,C,G,T: 'A'=0b0001, 'C'=0b0010, 'G'=0b0100, 'T'=0b1000; IUPAC
/// ambiguity codes set several bits; gaps/'N'/'?' are 0b1111 (total
/// ignorance).  A tip's conditional likelihood for state i is 1 when bit i
/// is set, 0 otherwise — that convention drives the tip kernels.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "io/fasta.h"

namespace rxc::seq {

using DnaCode = std::uint8_t;
inline constexpr DnaCode kGapCode = 0b1111;

/// Encodes one IUPAC nucleotide character ('U' treated as 'T').
/// Throws rxc::ParseError on non-nucleotide characters.
DnaCode encode_dna(char c);

/// Canonical character for a code (ambiguity codes map to IUPAC letters).
char decode_dna(DnaCode code);

/// True if the code is one of the four unambiguous bases.
constexpr bool is_unambiguous(DnaCode code) {
  return code == 1 || code == 2 || code == 4 || code == 8;
}

class Alignment {
public:
  /// Builds from raw records.  All sequences must be non-empty and of equal
  /// length; names must be unique.  Throws rxc::ParseError otherwise.
  static Alignment from_records(const std::vector<io::SeqRecord>& records);

  std::size_t taxon_count() const { return names_.size(); }
  std::size_t site_count() const { return nsites_; }

  const std::string& name(std::size_t taxon) const { return names_[taxon]; }
  const std::vector<std::string>& names() const { return names_; }

  DnaCode at(std::size_t taxon, std::size_t site) const {
    return codes_[taxon * nsites_ + site];
  }
  /// Row of `taxon` (nsites codes).
  const DnaCode* row(std::size_t taxon) const {
    return codes_.data() + taxon * nsites_;
  }

  /// Decoded records (inverse of from_records up to ambiguity spelling).
  std::vector<io::SeqRecord> to_records() const;

  /// Empirical base frequencies over unambiguous characters, with ambiguity
  /// mass split evenly among its candidate bases (gaps ignored).
  std::array<double, 4> empirical_base_freqs() const;

private:
  std::vector<std::string> names_;
  std::vector<DnaCode> codes_;  ///< taxon-major, taxon_count x nsites
  std::size_t nsites_ = 0;
};

}  // namespace rxc::seq
