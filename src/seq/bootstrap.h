#pragma once
/// \file bootstrap.h
/// Non-parametric bootstrap resampling.  A bootstrap replicate draws
/// site_count() columns with replacement from the original alignment; in
/// pattern space that is simply a new integer weight vector over the
/// existing patterns (RAxML does exactly this re-weighting, §3.1 of the
/// paper).

#include <vector>

#include "seq/patterns.h"
#include "support/rng.h"

namespace rxc::seq {

/// Weights for one bootstrap replicate: multinomial(nsites) over sites,
/// accumulated per pattern.  sum(result) == site_count().
std::vector<double> bootstrap_weights(const PatternAlignment& pa, Rng& rng);

/// Bootstrap support: fraction of `replicate_splits` vectors whose entry for
/// each split is true.  (Helper for the bootstrap example's report.)
std::vector<double> support_fractions(
    const std::vector<std::vector<bool>>& replicate_splits);

}  // namespace rxc::seq
