#include "seq/alignment.h"

#include <array>
#include <cctype>
#include <set>

#include "support/error.h"

namespace rxc::seq {

DnaCode encode_dna(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return 0b0001;
    case 'C': return 0b0010;
    case 'G': return 0b0100;
    case 'T':
    case 'U': return 0b1000;
    case 'M': return 0b0011;  // A|C
    case 'R': return 0b0101;  // A|G
    case 'W': return 0b1001;  // A|T
    case 'S': return 0b0110;  // C|G
    case 'Y': return 0b1010;  // C|T
    case 'K': return 0b1100;  // G|T
    case 'V': return 0b0111;  // A|C|G
    case 'H': return 0b1011;  // A|C|T
    case 'D': return 0b1101;  // A|G|T
    case 'B': return 0b1110;  // C|G|T
    case 'N':
    case 'O':
    case 'X':
    case '?':
    case '-': return kGapCode;
    default:
      throw ParseError(std::string("invalid nucleotide character '") + c +
                       "'");
  }
}

char decode_dna(DnaCode code) {
  static constexpr char kTable[16] = {'-', 'A', 'C', 'M', 'G', 'R', 'S', 'V',
                                      'T', 'W', 'Y', 'H', 'K', 'D', 'B', 'N'};
  RXC_ASSERT(code < 16);
  return kTable[code];
}

Alignment Alignment::from_records(const std::vector<io::SeqRecord>& records) {
  RXC_REQUIRE(!records.empty(), "alignment needs at least one sequence");
  RXC_REQUIRE(records.size() >= 4,
              "phylogenetic inference needs at least 4 taxa");
  Alignment a;
  a.nsites_ = records.front().data.size();
  RXC_REQUIRE(a.nsites_ > 0, "alignment has zero sites");
  a.codes_.reserve(records.size() * a.nsites_);
  std::set<std::string> seen;
  for (const auto& rec : records) {
    if (rec.data.size() != a.nsites_)
      throw ParseError("sequence '" + rec.name + "' length " +
                       std::to_string(rec.data.size()) +
                       " != " + std::to_string(a.nsites_));
    if (!seen.insert(rec.name).second)
      throw ParseError("duplicate taxon name '" + rec.name + "'");
    a.names_.push_back(rec.name);
    for (char c : rec.data) a.codes_.push_back(encode_dna(c));
  }
  return a;
}

std::vector<io::SeqRecord> Alignment::to_records() const {
  std::vector<io::SeqRecord> out;
  out.reserve(taxon_count());
  for (std::size_t t = 0; t < taxon_count(); ++t) {
    io::SeqRecord rec;
    rec.name = names_[t];
    rec.data.reserve(nsites_);
    for (std::size_t s = 0; s < nsites_; ++s)
      rec.data.push_back(decode_dna(at(t, s)));
    out.push_back(std::move(rec));
  }
  return out;
}

std::array<double, 4> Alignment::empirical_base_freqs() const {
  std::array<double, 4> counts{0, 0, 0, 0};
  for (DnaCode code : codes_) {
    if (code == kGapCode) continue;
    const int bits = __builtin_popcount(code);
    const double share = 1.0 / bits;
    for (int b = 0; b < 4; ++b)
      if (code & (1u << b)) counts[b] += share;
  }
  double total = counts[0] + counts[1] + counts[2] + counts[3];
  if (total == 0.0) return {0.25, 0.25, 0.25, 0.25};
  for (double& c : counts) c /= total;
  return counts;
}

}  // namespace rxc::seq
