#pragma once
/// \file aa_alignment.h
/// Amino-acid alignments: 20-state encoding with IUPAC ambiguity (B = N|D,
/// Z = Q|E, J = I|L, X/?/- = unknown), pattern compression, and a sequence
/// simulator — the AA counterparts of alignment.h/patterns.h/seqgen.h.
///
/// Characters are stored as small codes indexing a fixed table of state
/// masks (a 20-bit mask per code); the likelihood kernels fetch per-code
/// tip vectors from aa tip tables built per engine.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "io/fasta.h"
#include "model/aa_model.h"
#include "support/aligned.h"
#include "support/rng.h"

namespace rxc::seq {

/// Canonical residue order (PAML/RAxML): ARNDCQEGHILKMFPSTWYV.
inline constexpr char kAaLetters[21] = "ARNDCQEGHILKMFPSTWYV";

using AaCode = std::uint8_t;
/// Codes 0..19 are the residues; 20 = B, 21 = Z, 22 = J, 23 = X/gap.
inline constexpr AaCode kAaCodeB = 20;
inline constexpr AaCode kAaCodeZ = 21;
inline constexpr AaCode kAaCodeJ = 22;
inline constexpr AaCode kAaCodeX = 23;
inline constexpr int kAaCodeCount = 24;

/// 20-bit compatibility mask for a code.
std::uint32_t aa_code_mask(AaCode code);

/// Encodes one amino-acid character.  Throws rxc::ParseError on invalid
/// characters.
AaCode encode_aa(char c);
char decode_aa(AaCode code);

class AaAlignment {
public:
  static AaAlignment from_records(const std::vector<io::SeqRecord>& records);

  std::size_t taxon_count() const { return names_.size(); }
  std::size_t site_count() const { return nsites_; }
  const std::vector<std::string>& names() const { return names_; }
  AaCode at(std::size_t taxon, std::size_t site) const {
    return codes_[taxon * nsites_ + site];
  }
  std::vector<io::SeqRecord> to_records() const;
  std::vector<double> empirical_freqs() const;

private:
  std::vector<std::string> names_;
  std::vector<AaCode> codes_;
  std::size_t nsites_ = 0;
};

class AaPatternAlignment {
public:
  static AaPatternAlignment compress(const AaAlignment& a);

  std::size_t taxon_count() const { return names_.size(); }
  std::size_t pattern_count() const { return npatterns_; }
  std::size_t site_count() const { return site_to_pattern_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  AaCode at(std::size_t taxon, std::size_t p) const {
    return codes_[taxon * row_stride_ + p];
  }
  const AaCode* row(std::size_t taxon) const {
    return codes_.data() + taxon * row_stride_;
  }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<std::size_t>& site_to_pattern() const {
    return site_to_pattern_;
  }

private:
  std::vector<std::string> names_;
  aligned_vector<AaCode> codes_;
  std::vector<double> weights_;
  std::vector<std::size_t> site_to_pattern_;
  std::size_t npatterns_ = 0;
  std::size_t row_stride_ = 0;
};

/// Simulates an AA alignment along a random Yule tree under `model` with
/// optional Gamma rate heterogeneity.  Mirrors seq::simulate_alignment.
struct AaSimOptions {
  std::size_t ntaxa = 12;
  std::size_t nsites = 300;
  model::AaModel model = model::AaModel::poisson();
  double gamma_alpha = 0.0;
  double branch_scale = 0.08;
  std::uint64_t seed = 7;
  std::string name_prefix = "taxon";
};

struct AaSimResult {
  AaAlignment alignment;
  std::string true_tree_newick;
};

AaSimResult simulate_aa_alignment(const AaSimOptions& options);

}  // namespace rxc::seq
