#include "seq/patterns.h"

#include <map>
#include <string>

namespace rxc::seq {

PatternAlignment PatternAlignment::compress(const Alignment& a) {
  const std::size_t ntaxa = a.taxon_count();
  const std::size_t nsites = a.site_count();

  PatternAlignment pa;
  pa.names_ = a.names();
  pa.site_to_pattern_.resize(nsites);

  // Column -> pattern id, keyed by the column's character string.
  std::map<std::string, std::size_t> index;
  std::vector<std::string> columns;  // pattern id -> column chars
  std::string col(ntaxa, '\0');
  for (std::size_t s = 0; s < nsites; ++s) {
    for (std::size_t t = 0; t < ntaxa; ++t)
      col[t] = static_cast<char>(a.at(t, s));
    const auto [it, inserted] = index.try_emplace(col, columns.size());
    if (inserted) {
      columns.push_back(col);
      pa.weights_.push_back(0.0);
    }
    pa.weights_[it->second] += 1.0;
    pa.site_to_pattern_[s] = it->second;
  }

  pa.npatterns_ = columns.size();
  pa.row_stride_ = round_up(pa.npatterns_, kDmaAlignment);
  pa.codes_.assign(ntaxa * pa.row_stride_, kGapCode);  // pad = gap
  for (std::size_t p = 0; p < pa.npatterns_; ++p)
    for (std::size_t t = 0; t < ntaxa; ++t)
      pa.codes_[t * pa.row_stride_ + p] = static_cast<DnaCode>(columns[p][t]);
  return pa;
}

}  // namespace rxc::seq
