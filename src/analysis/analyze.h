#pragma once
/// \file analyze.h
/// Process-wide arming of the race detector, mirroring obs::init_from_env.
///
/// `RXC_ANALYZE=race` installs a RaceDetector as the cell event sink for the
/// lifetime of the process; `RXC_ANALYZE=race:fatal` additionally throws
/// AnalysisError at the first finding.  Unset (or `off`) costs one relaxed
/// atomic load per hook site — the detector object is never constructed.

#include <string>

#include "analysis/race_detector.h"

namespace rxc::analysis {

enum class AnalyzeMode { kOff, kRace, kRaceFatal };

/// Parses an RXC_ANALYZE value: "off", "race", or "race:fatal".
/// Throws Error on anything else.
AnalyzeMode parse_analyze(const std::string& value);

/// Installs (or removes, for kOff) the global detector as the cell event
/// sink.  Replaces any previously configured detector.
void configure(AnalyzeMode mode);

/// The armed detector, or nullptr when analysis is off.
RaceDetector* global_detector();

/// Reads RXC_ANALYZE once per process and configures accordingly.  Safe to
/// call from multiple entry points; later calls are no-ops.
void init_from_env();

}  // namespace rxc::analysis
