#pragma once
/// \file static_verifier.h
/// Static schedule verifier: proves or refutes DMA/mailbox/local-store
/// safety of a (Program, DeviceModel) pair without running anything.
///
/// The dynamic race detector (race_detector.h) reconstructs concurrency
/// semantics from a *live* machine's event stream; this verifier runs the
/// same happens-before analysis over the abstract schedule IR
/// (cell/program.h) that core::extract_program emits — so "does this job
/// fit this device?" becomes an admission-time question, answerable in
/// microseconds, instead of a full simulation.  Every check has a dynamic
/// counterpart, and the soundness contract is cross-validated both ways:
///
///  * the five mirrored hazard checks (read-before-wait, buffer-hazard,
///    ea-put-overlap, signal-order, stale-partial) replicate the race
///    detector's transition system handler-for-handler, so any program the
///    dynamic detector would flag is flagged statically (no false
///    negatives on cell::plant_hazard's planted classes);
///  * local-store occupancy bounds the allocator watermark the dynamic
///    machine would enforce with HardwareError (Fault::kLocalStoreOverflow);
///  * MFC tag-queue depth bounds in-flight DMA commands against the
///    model's mfc_queue_depth (the CBE's 16-entry SPU command queue — a
///    stall silicon would take that the timing simulation does not model);
///  * the mailbox pass executes the PPE/SPE agents to a fixed point with
///    blocking FIFO semantics at the architected depths: stuck agents mean
///    the wait-for graph has a cycle (dynamic counterpart: mailbox
///    overflow/underflow HardwareError, or a real deadlock on silicon).
///
/// Verdicts land in StaticReport, a text-serializable mirror of
/// AnalysisReport: strict-JSON to_string/from_string round-trips bitwise,
/// malformed input is rxc::ConfigError (the DeviceModel parsing idiom).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/race_detector.h"
#include "cell/device_model.h"
#include "cell/program.h"

namespace rxc::analysis {

enum class ViolationKind {
  // Static mirrors of the dynamic HazardKind classes; names match
  // hazard_kind_name so cross-validation can compare verdicts directly.
  kReadBeforeWait,
  kBufferHazard,
  kEaPutOverlap,
  kSignalOrder,
  kStalePartial,
  // Static-only resource proofs (dynamic counterpart: HardwareError traps
  // or unmodeled silicon stalls — see the file comment).
  kLocalStoreOverflow,
  kTagQueueOverflow,
  kBadTag,
  kIllegalDma,
  kMailboxDeadlock,
};

const char* violation_kind_name(ViolationKind kind);
/// Inverse of violation_kind_name; throws rxc::ConfigError on an unknown
/// name (the StaticReport::from_string path).
ViolationKind violation_kind_from_name(const std::string& name);
/// The dynamic race-detector class a mirrored check corresponds to;
/// nullopt for the static-only resource checks.
std::optional<HazardKind> dynamic_counterpart(ViolationKind kind);

/// One refuted property, pinned to the program op(s) that witness it.
struct StaticFinding {
  ViolationKind kind = ViolationKind::kBufferHazard;
  int spe = -1;        ///< SPU of the witnessing op (-1: the PPE side)
  int other_spe = -1;  ///< SPU of the earlier op involved (may equal spe)
  int tag = -1;        ///< MFC tag involved (-1: none)
  std::uint64_t lo = 0, hi = 0;  ///< byte range [lo, hi) — see ea_range
  bool ea_range = false;  ///< range is an effective address (else LS offset)
  std::int64_t op = -1;        ///< index of the witnessing op (-1: none)
  std::int64_t other_op = -1;  ///< index of the earlier op (-1: none)
  std::string detail;          ///< human diagnosis

  /// "static[buffer-hazard] spe=0 tag=1 ls[0x...,0x...) op#5 vs op#3: ..."
  std::string to_string() const;

  friend bool operator==(const StaticFinding&, const StaticFinding&) = default;
};

/// Abstract-interpretation statistics: the proven worst cases, reported
/// even when every check passes (the "what if 16 SPEs / 512 KB?" numbers).
struct ProgramStats {
  std::uint64_t ops = 0;
  std::uint64_t dma_ops = 0;
  std::uint64_t peak_ls_bytes = 0;  ///< worst-case occupancy over all SPEs
  int peak_ls_spe = -1;
  std::int64_t peak_ls_op = -1;  ///< op achieving the peak (the witness)
  std::uint64_t peak_tag_depth = 0;  ///< worst-case in-flight DMA commands
  int peak_tag_spe = -1;
  std::int64_t peak_tag_op = -1;

  friend bool operator==(const ProgramStats&, const ProgramStats&) = default;
};

/// Outcome of one static verification: empty findings == proven safe under
/// the model.  Mirrors AnalysisReport; serializable so verdicts can ride
/// job records, CLI reports and CI artifacts.
struct StaticReport {
  static constexpr std::size_t kMaxFindings = 256;

  std::string device;    ///< DeviceModel::name verified against
  std::string schedule;  ///< free-text schedule descriptor
  std::vector<StaticFinding> findings;
  /// Findings are capped (kMaxFindings); this is the uncapped count.
  std::uint64_t total = 0;
  ProgramStats stats;

  bool ok() const { return total == 0; }

  /// One finding per line plus a capped-count note (empty when ok) — the
  /// AnalysisReport::to_string shape, for logs.
  std::string summary() const;

  /// Strict-JSON round trip: from_string(to_string()) == *this, bitwise.
  std::string to_string() const;
  /// Parses a report.  Unknown/duplicate keys, type mismatches, malformed
  /// JSON, unknown violation kinds and out-of-range values are
  /// rxc::ConfigError.
  static StaticReport from_string(const std::string& text);

  friend bool operator==(const StaticReport&, const StaticReport&) = default;
};

/// Statically verifies `program` against `device`.  `schedule` is a
/// human-readable descriptor copied into the report (e.g. "stage=7
/// llp_ways=4 np=256").  Never throws on an unsafe program — unsafety is
/// the report's job; throws only on a malformed device model.
StaticReport verify_program(const cell::Program& program,
                            const cell::DeviceModel& device,
                            const std::string& schedule = {});

}  // namespace rxc::analysis
