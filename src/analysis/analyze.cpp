#include "analysis/analyze.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "support/log.h"

namespace rxc::analysis {

namespace {

std::unique_ptr<RaceDetector> g_detector;

}  // namespace

AnalyzeMode parse_analyze(const std::string& value) {
  if (value.empty() || value == "off") return AnalyzeMode::kOff;
  if (value == "race") return AnalyzeMode::kRace;
  if (value == "race:fatal") return AnalyzeMode::kRaceFatal;
  throw Error("RXC_ANALYZE: unknown mode '" + value +
              "' (expected off, race, or race:fatal)");
}

void configure(AnalyzeMode mode) {
  // Detach the sink before destroying the old detector so a concurrent hook
  // never dereferences a dead object.
  cell::set_event_sink(nullptr);
  g_detector.reset();
  if (mode == AnalyzeMode::kOff) return;
  g_detector =
      std::make_unique<RaceDetector>(mode == AnalyzeMode::kRaceFatal);
  cell::set_event_sink(g_detector.get());
}

RaceDetector* global_detector() { return g_detector.get(); }

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* value = std::getenv("RXC_ANALYZE");
    if (!value) return;
    const AnalyzeMode mode = parse_analyze(value);
    configure(mode);
    if (mode != AnalyzeMode::kOff) {
      log_info(std::string("analysis: race detector armed") +
               (mode == AnalyzeMode::kRaceFatal ? " (fatal)" : ""));
      // Report on stderr at process exit, like RXC_TRACE=summary: stdout
      // stays byte-identical to an unarmed run.
      std::atexit([] {
        const RaceDetector* det = g_detector.get();
        if (!det) return;
        const AnalysisReport report = det->report();
        std::fputs(report.to_string().c_str(), stderr);
        std::fprintf(stderr, "[rxc:analysis] race detector: %zu finding(s)\n",
                     report.total);
      });
    }
  });
}

}  // namespace rxc::analysis
