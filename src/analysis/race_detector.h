#pragma once
/// \file race_detector.h
/// Happens-before race detector over the simulated Cell's event stream.
///
/// The simulator executes sequentially, so a skipped tag-group wait or a
/// prematurely reused DMA buffer still computes the right bytes — but on
/// real silicon the same program order is a data race that corrupts results
/// nondeterministically.  This detector reconstructs the *concurrency*
/// semantics from the machine events (cell/events.h) and flags every access
/// pair that lacks a synchronization edge, independent of whether the
/// simulated timing happened to be lucky.
///
/// Synchronization model (what creates happens-before edges):
///  * mfc wait(tag) on SPE s orders every transfer issued on (s, tag)
///    before all subsequent events of SPE s — the ONLY intra-SPE edge the
///    MFC architecture provides;
///  * the PPE join at the end of an offloaded invocation (EventSink::
///    on_epoch) orders everything before it across SPEs — inter-SPE
///    accesses inside one epoch have no ordering at all.
///
/// Checks, keyed to the paper optimization each one guards:
///  (a) kReadBeforeWait  — kernel reads local-store bytes targeted by an
///      inbound DMA get that was never tag-waited (Opt IV strip-mining).
///  (b) kBufferHazard    — kernel or DMA rewrites a buffer while an
///      un-waited transfer still uses it (Opt IV double buffering).
///  (c) kEaPutOverlap    — DMA puts from two SPEs target overlapping main-
///      memory ranges within one epoch (LLP result partitioning).
///  (d) kSignalOrder     — direct-memory signaling protocol violation: the
///      PPE reads a completion word no SPE store ordered before it
///      (Opt VI).
///  (e) kStalePartial    — DMA get sources main-memory bytes covered by a
///      put that has not been waited on: the consumer may read a stale
///      partial-likelihood vector (MGPS scheduling, Opt VII).

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cell/cost_params.h"
#include "cell/events.h"
#include "support/error.h"

namespace rxc::analysis {

/// Thrown by the detector in fatal mode (`RXC_ANALYZE=race:fatal`) at the
/// first finding, so the failing virtual instruction sits on top of the
/// C++ stack trace.
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error(what) {}
};

enum class HazardKind {
  kReadBeforeWait,
  kBufferHazard,
  kEaPutOverlap,
  kSignalOrder,
  kStalePartial,
};

const char* hazard_kind_name(HazardKind kind);

/// One detected race, with both racing events pinned down.
struct Hazard {
  HazardKind kind = HazardKind::kReadBeforeWait;
  int spe = -1;        ///< SPE of the event that exposed the race
  int other_spe = -1;  ///< SPE of the earlier racing event (may equal spe)
  int tag = -1;        ///< MFC tag of the outstanding transfer (-1: none)
  std::uint64_t lo = 0, hi = 0;  ///< overlapping byte range [lo, hi)
  bool ea_range = false;  ///< range is an effective address (else LS offset)
  cell::VCycles first_cycle = 0.0;   ///< issue time of the earlier event
  cell::VCycles second_cycle = 0.0;  ///< time of the exposing event
  std::string first;   ///< description of the earlier racing event
  std::string second;  ///< description of the exposing event

  /// "race[buffer-hazard] spe=3 tag=2 ls[0x1d400,0x1d600) @cycle ..." line.
  std::string to_string() const;
};

/// Outcome of an analysis session: empty == race-free.  Mirrors
/// cell::InvariantReport so callers audit both the same way.
struct AnalysisReport {
  std::vector<Hazard> findings;
  /// Findings are capped (kMaxFindings); this is the uncapped count.
  std::uint64_t total = 0;

  bool ok() const { return total == 0; }
  /// One finding per line (empty string when ok).
  std::string to_string() const;
};

/// Event-stream statistics, exposed so tests can assert the hooks fire and
/// docs can quote the (armed) bookkeeping cost honestly.
struct DetectorStats {
  std::uint64_t dma_events = 0;
  std::uint64_t wait_events = 0;
  std::uint64_t window_events = 0;
  std::uint64_t mailbox_events = 0;
  std::uint64_t signal_events = 0;
  std::uint64_t epochs = 0;
};

class RaceDetector final : public cell::EventSink {
 public:
  static constexpr std::size_t kMaxFindings = 256;

  explicit RaceDetector(bool fatal = false) : fatal_(fatal) {}

  // --- EventSink ----------------------------------------------------------
  void on_dma_get(int spe, int tag, std::uintptr_t ea, cell::LsAddr ls,
                  std::size_t size, cell::VCycles issue,
                  cell::VCycles complete) override;
  void on_dma_put(int spe, int tag, cell::LsAddr ls, std::uintptr_t ea,
                  std::size_t size, cell::VCycles issue,
                  cell::VCycles complete) override;
  void on_tag_wait(int spe, int tag, cell::VCycles now) override;
  void on_ls_read(int spe, cell::LsAddr addr, std::size_t size,
                  cell::VCycles t0, cell::VCycles t1) override;
  void on_ls_write(int spe, cell::LsAddr addr, std::size_t size,
                   cell::VCycles t0, cell::VCycles t1) override;
  void on_mailbox(int spe, bool inbound, bool write,
                  std::uint32_t value) override;
  void on_signal(int spe, cell::SignalOp op) override;
  void on_epoch() override;

  // --- results ------------------------------------------------------------
  bool fatal() const { return fatal_; }
  /// Copy of the accumulated report (thread-safe).
  AnalysisReport report() const;
  /// Moves the report out and resets findings (outstanding state survives).
  AnalysisReport take_report();
  DetectorStats stats() const;
  /// Drops findings AND all outstanding tracking state (fresh session).
  void clear();

 private:
  /// One in-flight (issued, not yet tag-waited) DMA command.
  struct Transfer {
    int tag = 0;
    bool is_get = false;  ///< get writes LS / reads EA; put is the reverse
    std::uint64_t ls_lo = 0, ls_hi = 0;
    std::uint64_t ea_lo = 0, ea_hi = 0;
    cell::VCycles issue = 0.0;
    std::uint64_t epoch = 0;
  };
  /// Direct-signal channel protocol state (per SPE).
  enum class SignalState { kIdle, kArmed, kDone };
  struct SpeState {
    std::vector<Transfer> outstanding;
    SignalState signal = SignalState::kIdle;
  };
  /// Every put of the current epoch (including tag-waited ones): a wait by
  /// the issuing SPE does not order the put against OTHER SPEs, so the
  /// cross-SPE overlap check (c) must see retired puts until the next epoch
  /// boundary provides the global edge.
  struct EpochPut {
    int spe = 0;
    int tag = 0;
    std::uint64_t ea_lo = 0, ea_hi = 0;
    cell::VCycles issue = 0.0;
  };

  static bool overlap(std::uint64_t a_lo, std::uint64_t a_hi,
                      std::uint64_t b_lo, std::uint64_t b_hi) {
    return a_lo < b_hi && b_lo < a_hi;
  }

  SpeState& spe_state(int spe);
  std::string transfer_desc(int spe, const Transfer& t) const;
  /// Records (and in fatal mode throws; caller must hold mu_).
  void add_finding(Hazard hazard);

  mutable std::mutex mu_;
  bool fatal_;
  std::vector<SpeState> spes_;
  std::vector<EpochPut> epoch_puts_;
  std::uint64_t epoch_ = 0;
  AnalysisReport report_;
  DetectorStats stats_;
};

}  // namespace rxc::analysis
