#include "analysis/race_detector.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace rxc::analysis {

namespace {

/// Virtual cycles -> microseconds on the recorder's virtual timeline (the
/// modeled 3.2 GHz clock; matches the trace-replay scheduler's conversion).
double cycles_to_us(cell::VCycles cycles) {
  return cycles * (1e6 / cell::kDefaultCostParams.clock_hz);
}

std::string hex_range(std::uint64_t lo, std::uint64_t hi) {
  std::ostringstream os;
  os << "[0x" << std::hex << lo << ",0x" << hi << ")";
  return os.str();
}

}  // namespace

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kReadBeforeWait: return "read-before-wait";
    case HazardKind::kBufferHazard: return "buffer-hazard";
    case HazardKind::kEaPutOverlap: return "ea-put-overlap";
    case HazardKind::kSignalOrder: return "signal-order";
    case HazardKind::kStalePartial: return "stale-partial";
  }
  return "unknown-hazard";
}

std::string Hazard::to_string() const {
  std::ostringstream os;
  os << "race[" << hazard_kind_name(kind) << "] spe=" << spe;
  if (other_spe >= 0 && other_spe != spe) os << " vs spe=" << other_spe;
  if (tag >= 0) os << " tag=" << tag;
  if (hi > lo) os << ' ' << (ea_range ? "ea" : "ls") << hex_range(lo, hi);
  os << " @cycle " << second_cycle << ": " << second << " races with "
     << first << " (issued @cycle " << first_cycle << ")";
  return os.str();
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  for (const Hazard& h : findings) os << h.to_string() << '\n';
  if (total > findings.size())
    os << "... and " << (total - findings.size())
       << " further findings (capped at " << findings.size() << ")\n";
  return os.str();
}

RaceDetector::SpeState& RaceDetector::spe_state(int spe) {
  if (spe < 0) spe = 0;
  if (static_cast<std::size_t>(spe) >= spes_.size())
    spes_.resize(static_cast<std::size_t>(spe) + 1);
  return spes_[static_cast<std::size_t>(spe)];
}

std::string RaceDetector::transfer_desc(int spe, const Transfer& t) const {
  std::ostringstream os;
  os << "un-waited dma-" << (t.is_get ? "get" : "put") << " spe=" << spe
     << " tag=" << t.tag << " ls" << hex_range(t.ls_lo, t.ls_hi) << " ea"
     << hex_range(t.ea_lo, t.ea_hi);
  return os.str();
}

void RaceDetector::add_finding(Hazard hazard) {
  ++report_.total;
  static obs::Counter& findings = obs::counter("analysis.findings");
  findings.add();
  if (obs::recording())
    obs::record_instant(
        obs::Timeline::kVirtual,
        std::string("race:") + hazard_kind_name(hazard.kind), "analysis",
        obs::kLaneSpeBase + std::max(0, hazard.spe),
        cycles_to_us(hazard.second_cycle));
  if (fatal_) throw AnalysisError(hazard.to_string());
  if (report_.findings.size() < kMaxFindings)
    report_.findings.push_back(std::move(hazard));
}

void RaceDetector::on_dma_get(int spe, int tag, std::uintptr_t ea,
                              cell::LsAddr ls, std::size_t size,
                              cell::VCycles issue, cell::VCycles complete) {
  (void)complete;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.dma_events;
  const std::uint64_t ls_lo = ls, ls_hi = ls + size;
  const std::uint64_t ea_lo = ea, ea_hi = ea + size;

  // (e) The source bytes are covered by a put nobody waited on: the get may
  // observe the pre-put (stale) contents on real hardware.
  for (std::size_t s = 0; s < spes_.size(); ++s) {
    for (const Transfer& t : spes_[s].outstanding) {
      if (t.is_get || !overlap(ea_lo, ea_hi, t.ea_lo, t.ea_hi)) continue;
      Hazard h;
      h.kind = HazardKind::kStalePartial;
      h.spe = spe;
      h.other_spe = static_cast<int>(s);
      h.tag = t.tag;
      h.lo = std::max(ea_lo, t.ea_lo);
      h.hi = std::min(ea_hi, t.ea_hi);
      h.ea_range = true;
      h.first_cycle = t.issue;
      h.second_cycle = issue;
      h.first = transfer_desc(static_cast<int>(s), t);
      h.second = "dma-get sourcing ea" + hex_range(ea_lo, ea_hi);
      add_finding(std::move(h));
    }
  }

  // (b) The target local-store range collides with a transfer still in
  // flight on this SPE: two unordered DMA writes, or a get clobbering bytes
  // an outstanding put is still reading.
  SpeState& st = spe_state(spe);
  for (const Transfer& t : st.outstanding) {
    if (!overlap(ls_lo, ls_hi, t.ls_lo, t.ls_hi)) continue;
    Hazard h;
    h.kind = HazardKind::kBufferHazard;
    h.spe = spe;
    h.other_spe = spe;
    h.tag = t.tag;
    h.lo = std::max(ls_lo, t.ls_lo);
    h.hi = std::min(ls_hi, t.ls_hi);
    h.first_cycle = t.issue;
    h.second_cycle = issue;
    h.first = transfer_desc(spe, t);
    h.second = "dma-get into ls" + hex_range(ls_lo, ls_hi) + " tag " +
               std::to_string(tag);
    add_finding(std::move(h));
  }

  st.outstanding.push_back(
      Transfer{tag, true, ls_lo, ls_hi, ea_lo, ea_hi, issue, epoch_});
}

void RaceDetector::on_dma_put(int spe, int tag, cell::LsAddr ls,
                              std::uintptr_t ea, std::size_t size,
                              cell::VCycles issue, cell::VCycles complete) {
  (void)complete;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.dma_events;
  const std::uint64_t ls_lo = ls, ls_hi = ls + size;
  const std::uint64_t ea_lo = ea, ea_hi = ea + size;

  // (c) Another SPE already put to an overlapping main-memory range this
  // epoch; no machine primitive orders the two MFCs, so the final contents
  // are a coin flip on silicon.  A tag wait by the other SPE does not help
  // (it orders that SPE's own program, not the EIB), hence epoch_puts_.
  // Same-SPE pairs are ordered by program order + tag wait and are handled
  // through the outstanding list below instead.
  for (const EpochPut& p : epoch_puts_) {
    if (p.spe == spe || !overlap(ea_lo, ea_hi, p.ea_lo, p.ea_hi)) continue;
    Hazard h;
    h.kind = HazardKind::kEaPutOverlap;
    h.spe = spe;
    h.other_spe = p.spe;
    h.tag = tag;
    h.lo = std::max(ea_lo, p.ea_lo);
    h.hi = std::min(ea_hi, p.ea_hi);
    h.ea_range = true;
    h.first_cycle = p.issue;
    h.second_cycle = issue;
    h.first = "dma-put spe=" + std::to_string(p.spe) + " tag=" +
              std::to_string(p.tag) + " ea" + hex_range(p.ea_lo, p.ea_hi);
    h.second = "dma-put ea" + hex_range(ea_lo, ea_hi);
    add_finding(std::move(h));
  }

  // (b) The put reads local-store bytes an outstanding get is still
  // writing on this SPE; (c) same-SPE variant: two un-waited puts to
  // overlapping main memory (tag groups complete in any order).
  SpeState& st = spe_state(spe);
  for (const Transfer& t : st.outstanding) {
    if (t.is_get && overlap(ls_lo, ls_hi, t.ls_lo, t.ls_hi)) {
      Hazard h;
      h.kind = HazardKind::kBufferHazard;
      h.spe = spe;
      h.other_spe = spe;
      h.tag = t.tag;
      h.lo = std::max(ls_lo, t.ls_lo);
      h.hi = std::min(ls_hi, t.ls_hi);
      h.first_cycle = t.issue;
      h.second_cycle = issue;
      h.first = transfer_desc(spe, t);
      h.second = "dma-put from ls" + hex_range(ls_lo, ls_hi) + " tag " +
                 std::to_string(tag);
      add_finding(std::move(h));
    } else if (!t.is_get && overlap(ea_lo, ea_hi, t.ea_lo, t.ea_hi)) {
      Hazard h;
      h.kind = HazardKind::kEaPutOverlap;
      h.spe = spe;
      h.other_spe = spe;
      h.tag = t.tag;
      h.lo = std::max(ea_lo, t.ea_lo);
      h.hi = std::min(ea_hi, t.ea_hi);
      h.ea_range = true;
      h.first_cycle = t.issue;
      h.second_cycle = issue;
      h.first = transfer_desc(spe, t);
      h.second = "dma-put ea" + hex_range(ea_lo, ea_hi) + " tag " +
                 std::to_string(tag);
      add_finding(std::move(h));
    }
  }

  st.outstanding.push_back(
      Transfer{tag, false, ls_lo, ls_hi, ea_lo, ea_hi, issue, epoch_});
  epoch_puts_.push_back(EpochPut{spe, tag, ea_lo, ea_hi, issue});
}

void RaceDetector::on_tag_wait(int spe, int tag, cell::VCycles now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.wait_events;
  SpeState& st = spe_state(spe);
  std::erase_if(st.outstanding,
                [tag](const Transfer& t) { return t.tag == tag; });
}

void RaceDetector::on_ls_read(int spe, cell::LsAddr addr, std::size_t size,
                              cell::VCycles t0, cell::VCycles t1) {
  (void)t1;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.window_events;
  const std::uint64_t lo = addr, hi = addr + size;
  SpeState& st = spe_state(spe);
  for (const Transfer& t : st.outstanding) {
    // Reading bytes an un-waited inbound DMA targets: check (a).  An
    // outstanding put over the same range is benign — both sides read.
    if (!t.is_get || !overlap(lo, hi, t.ls_lo, t.ls_hi)) continue;
    Hazard h;
    h.kind = HazardKind::kReadBeforeWait;
    h.spe = spe;
    h.other_spe = spe;
    h.tag = t.tag;
    h.lo = std::max(lo, t.ls_lo);
    h.hi = std::min(hi, t.ls_hi);
    h.first_cycle = t.issue;
    h.second_cycle = t0;
    h.first = transfer_desc(spe, t);
    h.second = "kernel read of ls" + hex_range(lo, hi);
    add_finding(std::move(h));
  }
}

void RaceDetector::on_ls_write(int spe, cell::LsAddr addr, std::size_t size,
                               cell::VCycles t0, cell::VCycles t1) {
  (void)t1;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.window_events;
  const std::uint64_t lo = addr, hi = addr + size;
  SpeState& st = spe_state(spe);
  for (const Transfer& t : st.outstanding) {
    if (!overlap(lo, hi, t.ls_lo, t.ls_hi)) continue;
    // Writing over an in-flight get's target or an un-drained put's source:
    // check (b), the double-buffering discipline.
    Hazard h;
    h.kind = HazardKind::kBufferHazard;
    h.spe = spe;
    h.other_spe = spe;
    h.tag = t.tag;
    h.lo = std::max(lo, t.ls_lo);
    h.hi = std::min(hi, t.ls_hi);
    h.first_cycle = t.issue;
    h.second_cycle = t0;
    h.first = transfer_desc(spe, t);
    h.second = "kernel write of ls" + hex_range(lo, hi);
    add_finding(std::move(h));
  }
}

void RaceDetector::on_mailbox(int spe, bool inbound, bool write,
                              std::uint32_t value) {
  (void)spe;
  (void)inbound;
  (void)write;
  (void)value;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.mailbox_events;
}

void RaceDetector::on_signal(int spe, cell::SignalOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.signal_events;
  SpeState& st = spe_state(spe);
  const char* violation = nullptr;
  switch (op) {
    case cell::SignalOp::kGo:
      if (st.signal != SignalState::kIdle)
        violation = st.signal == SignalState::kArmed
                        ? "command word overwritten before the SPE consumed "
                          "the previous command"
                        : "command word overwritten before the PPE read the "
                          "pending completion";
      st.signal = SignalState::kArmed;
      break;
    case cell::SignalOp::kComplete:
      if (st.signal != SignalState::kArmed)
        violation = "completion store with no armed command";
      st.signal = SignalState::kDone;
      break;
    case cell::SignalOp::kRead:
      if (st.signal != SignalState::kDone)
        violation = "PPE read the completion word with no intervening SPE "
                    "completion store";
      st.signal = SignalState::kIdle;
      break;
  }
  if (violation != nullptr) {
    Hazard h;
    h.kind = HazardKind::kSignalOrder;
    h.spe = spe;
    h.other_spe = spe;
    h.first = "direct-signal channel state";
    h.second = violation;
    add_finding(std::move(h));
  }
}

void RaceDetector::on_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.epochs;
  ++epoch_;
  // The PPE join is the global edge: same-epoch put overlaps can no longer
  // form, so the cross-SPE registry resets.  Outstanding (un-waited)
  // transfers survive — a join does not flush anyone's MFC.
  epoch_puts_.clear();
}

AnalysisReport RaceDetector::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

AnalysisReport RaceDetector::take_report() {
  std::lock_guard<std::mutex> lock(mu_);
  AnalysisReport out = std::move(report_);
  report_ = {};
  return out;
}

DetectorStats RaceDetector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RaceDetector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spes_.clear();
  epoch_puts_.clear();
  epoch_ = 0;
  report_ = {};
  stats_ = {};
}

}  // namespace rxc::analysis
