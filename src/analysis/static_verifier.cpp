#include "analysis/static_verifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "support/error.h"
#include "support/json.h"
#include "support/json_value.h"

namespace rxc::analysis {

namespace {

std::string hex_range(std::uint64_t lo, std::uint64_t hi) {
  std::ostringstream os;
  os << "[0x" << std::hex << lo << ",0x" << hi << ")";
  return os.str();
}

struct KindName {
  ViolationKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ViolationKind::kReadBeforeWait, "read-before-wait"},
    {ViolationKind::kBufferHazard, "buffer-hazard"},
    {ViolationKind::kEaPutOverlap, "ea-put-overlap"},
    {ViolationKind::kSignalOrder, "signal-order"},
    {ViolationKind::kStalePartial, "stale-partial"},
    {ViolationKind::kLocalStoreOverflow, "local-store-overflow"},
    {ViolationKind::kTagQueueOverflow, "tag-queue-overflow"},
    {ViolationKind::kBadTag, "bad-tag"},
    {ViolationKind::kIllegalDma, "illegal-dma"},
    {ViolationKind::kMailboxDeadlock, "mailbox-deadlock"},
};

[[noreturn]] void bad(const std::string& what) {
  throw ConfigError("static report: " + what);
}

std::uint64_t as_u64(const JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  if (d < 0 || d != std::floor(d) || d > 9e15)
    bad("'" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::int64_t as_i64(const JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  if (d != std::floor(d) || d < -9e15 || d > 9e15)
    bad("'" + key + "' must be an integer");
  return static_cast<std::int64_t>(d);
}

int as_int(const JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  if (d != std::floor(d) || d < -1 || d > std::numeric_limits<int>::max())
    bad("'" + key + "' must be an integer >= -1");
  return static_cast<int>(d);
}

void write_finding(JsonWriter& w, const StaticFinding& f) {
  w.begin_object();
  w.kv("kind", violation_kind_name(f.kind));
  w.kv("spe", f.spe);
  w.kv("other_spe", f.other_spe);
  w.kv("tag", f.tag);
  w.kv("lo", f.lo);
  w.kv("hi", f.hi);
  w.kv("ea_range", f.ea_range);
  w.kv("op", f.op);
  w.kv("other_op", f.other_op);
  w.kv("detail", f.detail);
  w.end_object();
}

StaticFinding parse_finding(const JsonValue& v) {
  if (!v.is_object()) bad("each finding must be a JSON object");
  StaticFinding f;
  bool saw_kind = false;
  for (const auto& [key, field] : v.object) {
    if (key == "kind") {
      f.kind = violation_kind_from_name(field.as_string());
      saw_kind = true;
    } else if (key == "spe") {
      f.spe = as_int(field, "finding." + key);
    } else if (key == "other_spe") {
      f.other_spe = as_int(field, "finding." + key);
    } else if (key == "tag") {
      f.tag = as_int(field, "finding." + key);
    } else if (key == "lo") {
      f.lo = as_u64(field, "finding." + key);
    } else if (key == "hi") {
      f.hi = as_u64(field, "finding." + key);
    } else if (key == "ea_range") {
      f.ea_range = field.as_bool();
    } else if (key == "op") {
      f.op = as_i64(field, "finding." + key);
    } else if (key == "other_op") {
      f.other_op = as_i64(field, "finding." + key);
    } else if (key == "detail") {
      f.detail = field.as_string();
    } else {
      bad("finding: unknown key '" + key + "'");
    }
  }
  if (!saw_kind) bad("finding: missing required key 'kind'");
  return f;
}

void parse_stats(const JsonValue& v, ProgramStats& s) {
  if (!v.is_object()) bad("'stats' must be a JSON object");
  for (const auto& [key, field] : v.object) {
    if (key == "ops") {
      s.ops = as_u64(field, "stats." + key);
    } else if (key == "dma_ops") {
      s.dma_ops = as_u64(field, "stats." + key);
    } else if (key == "peak_ls_bytes") {
      s.peak_ls_bytes = as_u64(field, "stats." + key);
    } else if (key == "peak_ls_spe") {
      s.peak_ls_spe = as_int(field, "stats." + key);
    } else if (key == "peak_ls_op") {
      s.peak_ls_op = as_i64(field, "stats." + key);
    } else if (key == "peak_tag_depth") {
      s.peak_tag_depth = as_u64(field, "stats." + key);
    } else if (key == "peak_tag_spe") {
      s.peak_tag_spe = as_int(field, "stats." + key);
    } else if (key == "peak_tag_op") {
      s.peak_tag_op = as_i64(field, "stats." + key);
    } else {
      bad("stats: unknown key '" + key + "'");
    }
  }
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  for (const KindName& k : kKindNames)
    if (k.kind == kind) return k.name;
  return "unknown-violation";
}

ViolationKind violation_kind_from_name(const std::string& name) {
  for (const KindName& k : kKindNames)
    if (name == k.name) return k.kind;
  bad("unknown violation kind '" + name + "'");
}

std::optional<HazardKind> dynamic_counterpart(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kReadBeforeWait: return HazardKind::kReadBeforeWait;
    case ViolationKind::kBufferHazard: return HazardKind::kBufferHazard;
    case ViolationKind::kEaPutOverlap: return HazardKind::kEaPutOverlap;
    case ViolationKind::kSignalOrder: return HazardKind::kSignalOrder;
    case ViolationKind::kStalePartial: return HazardKind::kStalePartial;
    default: return std::nullopt;
  }
}

std::string StaticFinding::to_string() const {
  std::ostringstream os;
  os << "static[" << violation_kind_name(kind) << "] spe=" << spe;
  if (other_spe >= 0 && other_spe != spe) os << " vs spe=" << other_spe;
  if (tag >= 0) os << " tag=" << tag;
  if (hi > lo) os << ' ' << (ea_range ? "ea" : "ls") << hex_range(lo, hi);
  if (op >= 0) os << " op#" << op;
  if (other_op >= 0 && other_op != op) os << " vs op#" << other_op;
  os << ": " << detail;
  return os.str();
}

std::string StaticReport::summary() const {
  std::ostringstream os;
  for (const StaticFinding& f : findings) os << f.to_string() << '\n';
  if (total > findings.size())
    os << "... and " << (total - findings.size())
       << " further findings (capped at " << findings.size() << ")\n";
  return os.str();
}

std::string StaticReport::to_string() const {
  JsonWriter w;
  w.begin_object();
  w.kv("device", device);
  w.kv("schedule", schedule);
  w.kv("total", total);
  w.key("stats");
  w.begin_object();
  w.kv("ops", stats.ops);
  w.kv("dma_ops", stats.dma_ops);
  w.kv("peak_ls_bytes", stats.peak_ls_bytes);
  w.kv("peak_ls_spe", stats.peak_ls_spe);
  w.kv("peak_ls_op", stats.peak_ls_op);
  w.kv("peak_tag_depth", stats.peak_tag_depth);
  w.kv("peak_tag_spe", stats.peak_tag_spe);
  w.kv("peak_tag_op", stats.peak_tag_op);
  w.end_object();
  w.key("findings");
  w.begin_array();
  for (const StaticFinding& f : findings) write_finding(w, f);
  w.end_array();
  w.end_object();
  return w.str();
}

StaticReport StaticReport::from_string(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const ParseError& e) {
    throw ConfigError(std::string("static report: ") + e.what());
  }
  if (!doc.is_object()) bad("document is not a JSON object");

  StaticReport r;
  try {
    for (const auto& [key, v] : doc.object) {
      if (key == "device") {
        r.device = v.as_string();
      } else if (key == "schedule") {
        r.schedule = v.as_string();
      } else if (key == "total") {
        r.total = as_u64(v, key);
      } else if (key == "stats") {
        parse_stats(v, r.stats);
      } else if (key == "findings") {
        if (v.kind != JsonValue::Kind::kArray)
          bad("'findings' must be a JSON array");
        for (const JsonValue& f : v.array)
          r.findings.push_back(parse_finding(f));
      } else {
        bad("unknown key '" + key + "'");
      }
    }
  } catch (const ParseError& e) {
    // Typed-accessor mismatches ("spe": "zero") are config errors at this
    // layer: the JSON itself was well-formed.
    throw ConfigError(std::string("static report: ") + e.what());
  }
  if (r.findings.size() > kMaxFindings)
    bad("more than " + std::to_string(kMaxFindings) + " findings");
  if (r.total < r.findings.size())
    bad("'total' must be >= the number of findings");
  return r;
}

namespace {

/// Sequential abstract interpreter: pass 1 mirrors the RaceDetector
/// transition system handler-for-handler over AbstractOps (op indices in
/// place of virtual cycles as witnesses) and layers the resource proofs on
/// top; pass 2 runs the PPE/SPE agents to a mailbox fixed point.
class Verifier {
 public:
  Verifier(const cell::Program& program, const cell::DeviceModel& device)
      : program_(program), device_(device) {}

  StaticReport run(const std::string& schedule) {
    report_.device = device_.name;
    report_.schedule = schedule;
    report_.stats.ops = program_.ops.size();
    for (std::size_t i = 0; i < program_.ops.size(); ++i)
      step(static_cast<std::int64_t>(i), program_.ops[i]);
    finish_resources();
    check_mailboxes();
    return std::move(report_);
  }

 private:
  /// One in-flight (issued, not yet tag-waited) DMA command.
  struct Transfer {
    int tag = 0;
    bool is_get = false;
    std::uint64_t ls_lo = 0, ls_hi = 0;
    std::uint64_t ea_lo = 0, ea_hi = 0;
    std::int64_t op = -1;
  };
  enum class SignalState { kIdle, kArmed, kDone };
  struct SpeState {
    std::vector<Transfer> outstanding;
    SignalState signal = SignalState::kIdle;
    std::uint64_t peak_ls = 0;  ///< worst-case local-store occupancy
    std::int64_t peak_ls_op = -1;
    std::uint64_t peak_depth = 0;  ///< worst-case in-flight DMA commands
    std::int64_t peak_depth_op = -1;
  };
  /// Every put of the current epoch (including tag-waited ones): a wait by
  /// the issuing SPE does not order the put against OTHER SPEs.
  struct EpochPut {
    int spe = 0;
    int tag = 0;
    std::uint64_t ea_lo = 0, ea_hi = 0;
    std::int64_t op = -1;
  };

  static bool overlap(std::uint64_t a_lo, std::uint64_t a_hi,
                      std::uint64_t b_lo, std::uint64_t b_hi) {
    return a_lo < b_hi && b_lo < a_hi;
  }

  SpeState& spe_state(int spe) {
    if (spe < 0) spe = 0;
    if (static_cast<std::size_t>(spe) >= spes_.size())
      spes_.resize(static_cast<std::size_t>(spe) + 1);
    return spes_[static_cast<std::size_t>(spe)];
  }

  std::string transfer_desc(int spe, const Transfer& t) const {
    std::ostringstream os;
    os << "un-waited dma-" << (t.is_get ? "get" : "put") << " spe=" << spe
       << " tag=" << t.tag << " ls" << hex_range(t.ls_lo, t.ls_hi) << " ea"
       << hex_range(t.ea_lo, t.ea_hi);
    return os.str();
  }

  void add(StaticFinding finding) {
    ++report_.total;
    if (report_.findings.size() < StaticReport::kMaxFindings)
      report_.findings.push_back(std::move(finding));
  }

  /// Bumps SPE `spe`'s occupancy high-water mark to at least `extent`.
  void note_occupancy(int spe, std::int64_t op, std::uint64_t extent) {
    SpeState& st = spe_state(spe);
    if (extent > st.peak_ls) {
      st.peak_ls = extent;
      st.peak_ls_op = op;
    }
  }

  /// Mirrors Mfc::validate against the model's limits; returns false (and
  /// records kIllegalDma / kBadTag) when the dynamic machine would have
  /// thrown HardwareError before mutating state, so the op is not tracked.
  bool check_dma_legal(std::int64_t i, const cell::AbstractOp& op) {
    if (op.tag < 0 || op.tag >= device_.mfc_tag_count) {
      StaticFinding f;
      f.kind = ViolationKind::kBadTag;
      f.spe = op.spe;
      f.tag = op.tag;
      f.op = i;
      f.detail = op.to_string() + ": tag outside the device's [0, " +
                 std::to_string(device_.mfc_tag_count) + ") tag groups";
      add(std::move(f));
      return false;
    }
    const char* why = nullptr;
    const bool small_ok =
        op.size == 1 || op.size == 2 || op.size == 4 || op.size == 8;
    if (op.size == 0 || op.size > device_.dma_max_bytes)
      why = "size outside (0, dma_max_bytes]";
    else if (!small_ok && op.size % 16 != 0)
      why = "size must be 1/2/4/8 or a multiple of 16";
    else if (!small_ok && (op.ea % 16 != 0 || op.ls % 16 != 0))
      why = "block transfer addresses must be 128-bit aligned";
    else if (small_ok && (op.ea % op.size != 0 || op.ls % op.size != 0))
      why = "small transfer not naturally aligned";
    if (why != nullptr) {
      StaticFinding f;
      f.kind = ViolationKind::kIllegalDma;
      f.spe = op.spe;
      f.tag = op.tag;
      f.op = i;
      f.detail = op.to_string() + ": " + why;
      add(std::move(f));
      return false;
    }
    return true;
  }

  void track_issue(std::int64_t i, const cell::AbstractOp& op, bool is_get) {
    SpeState& st = spe_state(op.spe);
    st.outstanding.push_back(Transfer{op.tag, is_get, op.ls, op.ls + op.size,
                                      op.ea, op.ea + op.size, i});
    const auto depth = static_cast<std::uint64_t>(st.outstanding.size());
    if (depth > st.peak_depth) {
      st.peak_depth = depth;
      st.peak_depth_op = i;
    }
    note_occupancy(op.spe, i, op.ls + op.size);
  }

  void on_dma_get(std::int64_t i, const cell::AbstractOp& op) {
    ++report_.stats.dma_ops;
    if (!check_dma_legal(i, op)) return;
    const std::uint64_t ls_lo = op.ls, ls_hi = op.ls + op.size;
    const std::uint64_t ea_lo = op.ea, ea_hi = op.ea + op.size;

    // (e) The source bytes are covered by a put nobody waited on.
    for (std::size_t s = 0; s < spes_.size(); ++s) {
      for (const Transfer& t : spes_[s].outstanding) {
        if (t.is_get || !overlap(ea_lo, ea_hi, t.ea_lo, t.ea_hi)) continue;
        StaticFinding f;
        f.kind = ViolationKind::kStalePartial;
        f.spe = op.spe;
        f.other_spe = static_cast<int>(s);
        f.tag = t.tag;
        f.lo = std::max(ea_lo, t.ea_lo);
        f.hi = std::min(ea_hi, t.ea_hi);
        f.ea_range = true;
        f.op = i;
        f.other_op = t.op;
        f.detail = "dma-get sourcing ea" + hex_range(ea_lo, ea_hi) +
                   " races with " + transfer_desc(static_cast<int>(s), t);
        add(std::move(f));
      }
    }

    // (b) The target local-store range collides with an in-flight transfer.
    SpeState& st = spe_state(op.spe);
    for (const Transfer& t : st.outstanding) {
      if (!overlap(ls_lo, ls_hi, t.ls_lo, t.ls_hi)) continue;
      StaticFinding f;
      f.kind = ViolationKind::kBufferHazard;
      f.spe = op.spe;
      f.other_spe = op.spe;
      f.tag = t.tag;
      f.lo = std::max(ls_lo, t.ls_lo);
      f.hi = std::min(ls_hi, t.ls_hi);
      f.op = i;
      f.other_op = t.op;
      f.detail = "dma-get into ls" + hex_range(ls_lo, ls_hi) + " tag " +
                 std::to_string(op.tag) + " races with " +
                 transfer_desc(op.spe, t);
      add(std::move(f));
    }

    track_issue(i, op, /*is_get=*/true);
  }

  void on_dma_put(std::int64_t i, const cell::AbstractOp& op) {
    ++report_.stats.dma_ops;
    if (!check_dma_legal(i, op)) return;
    const std::uint64_t ls_lo = op.ls, ls_hi = op.ls + op.size;
    const std::uint64_t ea_lo = op.ea, ea_hi = op.ea + op.size;

    // (c) Another SPE already put to an overlapping main-memory range this
    // epoch.
    for (const EpochPut& p : epoch_puts_) {
      if (p.spe == op.spe || !overlap(ea_lo, ea_hi, p.ea_lo, p.ea_hi))
        continue;
      StaticFinding f;
      f.kind = ViolationKind::kEaPutOverlap;
      f.spe = op.spe;
      f.other_spe = p.spe;
      f.tag = op.tag;
      f.lo = std::max(ea_lo, p.ea_lo);
      f.hi = std::min(ea_hi, p.ea_hi);
      f.ea_range = true;
      f.op = i;
      f.other_op = p.op;
      f.detail = "dma-put ea" + hex_range(ea_lo, ea_hi) +
                 " races with dma-put spe=" + std::to_string(p.spe) +
                 " tag=" + std::to_string(p.tag) + " ea" +
                 hex_range(p.ea_lo, p.ea_hi);
      add(std::move(f));
    }

    // (b) same-SPE get source clash / (c) same-SPE un-waited put overlap.
    SpeState& st = spe_state(op.spe);
    for (const Transfer& t : st.outstanding) {
      if (t.is_get && overlap(ls_lo, ls_hi, t.ls_lo, t.ls_hi)) {
        StaticFinding f;
        f.kind = ViolationKind::kBufferHazard;
        f.spe = op.spe;
        f.other_spe = op.spe;
        f.tag = t.tag;
        f.lo = std::max(ls_lo, t.ls_lo);
        f.hi = std::min(ls_hi, t.ls_hi);
        f.op = i;
        f.other_op = t.op;
        f.detail = "dma-put from ls" + hex_range(ls_lo, ls_hi) + " tag " +
                   std::to_string(op.tag) + " races with " +
                   transfer_desc(op.spe, t);
        add(std::move(f));
      } else if (!t.is_get && overlap(ea_lo, ea_hi, t.ea_lo, t.ea_hi)) {
        StaticFinding f;
        f.kind = ViolationKind::kEaPutOverlap;
        f.spe = op.spe;
        f.other_spe = op.spe;
        f.tag = t.tag;
        f.lo = std::max(ea_lo, t.ea_lo);
        f.hi = std::min(ea_hi, t.ea_hi);
        f.ea_range = true;
        f.op = i;
        f.other_op = t.op;
        f.detail = "dma-put ea" + hex_range(ea_lo, ea_hi) + " tag " +
                   std::to_string(op.tag) + " races with " +
                   transfer_desc(op.spe, t);
        add(std::move(f));
      }
    }

    track_issue(i, op, /*is_get=*/false);
    epoch_puts_.push_back(EpochPut{op.spe, op.tag, ea_lo, ea_hi, i});
  }

  void on_tag_wait(std::int64_t i, const cell::AbstractOp& op) {
    if (op.tag < 0 || op.tag >= device_.mfc_tag_count) {
      StaticFinding f;
      f.kind = ViolationKind::kBadTag;
      f.spe = op.spe;
      f.tag = op.tag;
      f.op = i;
      f.detail = op.to_string() + ": tag outside the device's [0, " +
                 std::to_string(device_.mfc_tag_count) + ") tag groups";
      add(std::move(f));
      return;
    }
    SpeState& st = spe_state(op.spe);
    std::erase_if(st.outstanding,
                  [&op](const Transfer& t) { return t.tag == op.tag; });
  }

  void on_ls_read(std::int64_t i, const cell::AbstractOp& op) {
    const std::uint64_t lo = op.ls, hi = op.ls + op.size;
    SpeState& st = spe_state(op.spe);
    for (const Transfer& t : st.outstanding) {
      // (a) Reading bytes an un-waited inbound DMA targets; an outstanding
      // put over the same range is benign — both sides read.
      if (!t.is_get || !overlap(lo, hi, t.ls_lo, t.ls_hi)) continue;
      StaticFinding f;
      f.kind = ViolationKind::kReadBeforeWait;
      f.spe = op.spe;
      f.other_spe = op.spe;
      f.tag = t.tag;
      f.lo = std::max(lo, t.ls_lo);
      f.hi = std::min(hi, t.ls_hi);
      f.op = i;
      f.other_op = t.op;
      f.detail = "kernel read of ls" + hex_range(lo, hi) + " races with " +
                 transfer_desc(op.spe, t);
      add(std::move(f));
    }
    note_occupancy(op.spe, i, hi);
  }

  void on_ls_write(std::int64_t i, const cell::AbstractOp& op) {
    const std::uint64_t lo = op.ls, hi = op.ls + op.size;
    SpeState& st = spe_state(op.spe);
    for (const Transfer& t : st.outstanding) {
      if (!overlap(lo, hi, t.ls_lo, t.ls_hi)) continue;
      // (b) Writing over an in-flight get's target or an un-drained put's
      // source: the double-buffering discipline.
      StaticFinding f;
      f.kind = ViolationKind::kBufferHazard;
      f.spe = op.spe;
      f.other_spe = op.spe;
      f.tag = t.tag;
      f.lo = std::max(lo, t.ls_lo);
      f.hi = std::min(hi, t.ls_hi);
      f.op = i;
      f.other_op = t.op;
      f.detail = "kernel write of ls" + hex_range(lo, hi) + " races with " +
                 transfer_desc(op.spe, t);
      add(std::move(f));
    }
    note_occupancy(op.spe, i, hi);
  }

  void on_signal(std::int64_t i, const cell::AbstractOp& op) {
    SpeState& st = spe_state(op.spe);
    const char* violation = nullptr;
    switch (op.signal) {
      case cell::SignalOp::kGo:
        if (st.signal != SignalState::kIdle)
          violation = st.signal == SignalState::kArmed
                          ? "command word overwritten before the SPE consumed "
                            "the previous command"
                          : "command word overwritten before the PPE read the "
                            "pending completion";
        st.signal = SignalState::kArmed;
        break;
      case cell::SignalOp::kComplete:
        if (st.signal != SignalState::kArmed)
          violation = "completion store with no armed command";
        st.signal = SignalState::kDone;
        break;
      case cell::SignalOp::kRead:
        if (st.signal != SignalState::kDone)
          violation = "PPE read the completion word with no intervening SPE "
                      "completion store";
        st.signal = SignalState::kIdle;
        break;
    }
    if (violation != nullptr) {
      StaticFinding f;
      f.kind = ViolationKind::kSignalOrder;
      f.spe = op.spe;
      f.other_spe = op.spe;
      f.op = i;
      f.detail = violation;
      add(std::move(f));
    }
  }

  void step(std::int64_t i, const cell::AbstractOp& op) {
    switch (op.kind) {
      case cell::OpKind::kDmaGet: on_dma_get(i, op); break;
      case cell::OpKind::kDmaPut: on_dma_put(i, op); break;
      case cell::OpKind::kTagWait: on_tag_wait(i, op); break;
      case cell::OpKind::kLsRead: on_ls_read(i, op); break;
      case cell::OpKind::kLsWrite: on_ls_write(i, op); break;
      case cell::OpKind::kLsReserve:
        note_occupancy(op.spe, i, op.size);
        break;
      case cell::OpKind::kMailboxWrite:
      case cell::OpKind::kMailboxRead:
        break;  // pass 2's job
      case cell::OpKind::kSignal: on_signal(i, op); break;
      case cell::OpKind::kEpoch:
        // The PPE join is the global edge: the cross-SPE put registry
        // resets; outstanding (un-waited) transfers survive.
        epoch_puts_.clear();
        break;
    }
  }

  /// Per-SPE resource verdicts (one finding per SPE, peak witness attached)
  /// plus the report-level stats roll-up.
  void finish_resources() {
    for (std::size_t s = 0; s < spes_.size(); ++s) {
      const SpeState& st = spes_[s];
      if (st.peak_ls > report_.stats.peak_ls_bytes) {
        report_.stats.peak_ls_bytes = st.peak_ls;
        report_.stats.peak_ls_spe = static_cast<int>(s);
        report_.stats.peak_ls_op = st.peak_ls_op;
      }
      if (st.peak_depth > report_.stats.peak_tag_depth) {
        report_.stats.peak_tag_depth = st.peak_depth;
        report_.stats.peak_tag_spe = static_cast<int>(s);
        report_.stats.peak_tag_op = st.peak_depth_op;
      }
      if (st.peak_ls > device_.local_store_bytes) {
        StaticFinding f;
        f.kind = ViolationKind::kLocalStoreOverflow;
        f.spe = static_cast<int>(s);
        f.op = st.peak_ls_op;
        f.detail = "worst-case local-store occupancy " +
                   std::to_string(st.peak_ls) + " bytes exceeds capacity " +
                   std::to_string(device_.local_store_bytes) +
                   " bytes (peak at: " + witness(st.peak_ls_op) + ")";
        add(std::move(f));
      }
      if (st.peak_depth > static_cast<std::uint64_t>(device_.mfc_queue_depth)) {
        StaticFinding f;
        f.kind = ViolationKind::kTagQueueOverflow;
        f.spe = static_cast<int>(s);
        f.op = st.peak_depth_op;
        f.detail = "worst-case " + std::to_string(st.peak_depth) +
                   " in-flight DMA commands exceed the MFC queue depth " +
                   std::to_string(device_.mfc_queue_depth) +
                   " (peak at: " + witness(st.peak_depth_op) + ")";
        add(std::move(f));
      }
    }
  }

  std::string witness(std::int64_t op) const {
    if (op < 0 || static_cast<std::size_t>(op) >= program_.ops.size())
      return "<none>";
    return "op#" + std::to_string(op) + " " +
           program_.ops[static_cast<std::size_t>(op)].to_string();
  }

  /// Pass 2: executes the PPE and SPE agents round-robin with blocking FIFO
  /// mailbox semantics at the model's depths.  Only mailbox ops can block,
  /// so each agent's queue is its mailbox ops in program order; a stuck
  /// fixed point means the wait-for graph has a cycle (or a read that no
  /// write ever feeds) — a deadlock on real silicon.
  void check_mailboxes() {
    struct Agent {
      int spe = -1;  ///< -1: the PPE
      std::vector<std::size_t> ops;
      std::size_t pos = 0;
    };
    std::map<int, Agent> agents;
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      const cell::AbstractOp& op = program_.ops[i];
      if (op.kind != cell::OpKind::kMailboxWrite &&
          op.kind != cell::OpKind::kMailboxRead)
        continue;
      const int who = op_runs_on_ppe(op) ? -1 : op.spe;
      Agent& a = agents[who];
      a.spe = who;
      a.ops.push_back(i);
    }
    if (agents.empty()) return;

    std::map<std::pair<int, bool>, int> occupancy;
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [who, a] : agents) {
        while (a.pos < a.ops.size()) {
          const cell::AbstractOp& op = program_.ops[a.ops[a.pos]];
          int& occ = occupancy[{op.spe, op.inbound}];
          const int depth = op.inbound ? device_.mailbox_in_depth
                                       : device_.mailbox_out_depth;
          if (op.kind == cell::OpKind::kMailboxWrite) {
            if (occ >= depth) break;
            ++occ;
          } else {
            if (occ == 0) break;
            --occ;
          }
          ++a.pos;
          progress = true;
        }
      }
    }

    std::ostringstream blocked;
    std::int64_t first_op = -1;
    int first_spe = -1;
    for (const auto& [who, a] : agents) {
      if (a.pos >= a.ops.size()) continue;
      const std::size_t at = a.ops[a.pos];
      const cell::AbstractOp& op = program_.ops[at];
      if (first_op < 0) {
        first_op = static_cast<std::int64_t>(at);
        first_spe = who;
      } else {
        blocked << "; ";
      }
      if (who < 0)
        blocked << "ppe";
      else
        blocked << "spe " << who;
      blocked << " blocked at op#" << at << " (" << op.to_string() << ": "
              << (op.kind == cell::OpKind::kMailboxWrite ? "full" : "empty")
              << ")";
    }
    if (first_op >= 0) {
      StaticFinding f;
      f.kind = ViolationKind::kMailboxDeadlock;
      f.spe = first_spe;
      f.op = first_op;
      f.detail = "mailbox fixed point stuck: " + blocked.str();
      add(std::move(f));
    }
  }

  const cell::Program& program_;
  const cell::DeviceModel& device_;
  std::vector<SpeState> spes_;
  std::vector<EpochPut> epoch_puts_;
  StaticReport report_;
};

}  // namespace

StaticReport verify_program(const cell::Program& program,
                            const cell::DeviceModel& device,
                            const std::string& schedule) {
  device.validate();
  return Verifier(program, device).run(schedule);
}

}  // namespace rxc::analysis
