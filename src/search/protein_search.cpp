#include "search/protein_search.h"

#include "search/hill_climb.h"
#include "tree/parsimony.h"

namespace rxc::search {

SearchResult run_protein_search(const seq::AaPatternAlignment& pa,
                                lh::ProteinEngine& engine,
                                const SearchOptions& options,
                                std::uint64_t seed) {
  Rng rng(seed);
  tree::Tree t = tree::stepwise_addition_tree(pa, rng, options.attach_brlen);
  engine.set_tree(&t);

  double lnl = engine.optimize_all_branches(3);
  if (options.assign_site_rates && !engine.cat_assignment().empty()) {
    engine.assign_cat_categories();
    lnl = engine.optimize_all_branches(2);
  }

  SearchResult result = detail::hill_climb(t, engine, options, lnl);
  engine.set_tree(nullptr);
  return result;
}

ProteinTaskResult run_protein_task(const seq::AaPatternAlignment& pa,
                                   const lh::ProteinEngineConfig& config,
                                   const SearchOptions& options,
                                   std::uint64_t seed, bool bootstrap) {
  lh::ProteinEngine engine(pa, config);
  if (bootstrap) {
    // Multinomial re-weighting over patterns, as for DNA (seq::bootstrap
    // operates on the DNA PatternAlignment type, so resample here).
    Rng rng(seed ^ 0xb005eedULL);
    std::vector<double> weights(pa.pattern_count(), 0.0);
    const auto& s2p = pa.site_to_pattern();
    for (std::size_t draw = 0; draw < pa.site_count(); ++draw)
      weights[s2p[rng.below(pa.site_count())]] += 1.0;
    engine.set_pattern_weights(weights);
  }
  const SearchResult sr = run_protein_search(pa, engine, options, seed);
  ProteinTaskResult out;
  out.newick = sr.tree.to_newick(pa.names());
  out.log_likelihood = sr.log_likelihood;
  out.rounds = sr.rounds;
  out.counters = engine.counters();
  return out;
}

}  // namespace rxc::search
