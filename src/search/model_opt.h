#pragma once
/// \file model_opt.h
/// Maximum-likelihood model-parameter optimization: Brent's method for the
/// Gamma shape parameter and coordinate-ascent over the GTR
/// exchangeabilities — what RAxML's -m GTRGAMMA mode does between search
/// rounds.

#include <functional>

#include "likelihood/engine.h"
#include "likelihood/protein_engine.h"

namespace rxc::search {

/// Brent's method (parabolic interpolation + golden section) maximizing a
/// unimodal function on [lo, hi].  Returns the argmax; `*fmax_out` (if
/// non-null) receives the maximum.
double brent_maximize(const std::function<double(double)>& f, double lo,
                      double hi, double tolerance = 1e-4,
                      int max_iterations = 60, double* fmax_out = nullptr);

/// Optimizes the Gamma shape on the engine's current tree (engine must be
/// in GAMMA mode with a tree attached).  Returns the final log-likelihood.
/// Works for both the DNA and protein engines (same member surface).
template <class Engine>
double optimize_gamma_alpha(Engine& engine, double lo = 0.02,
                            double hi = 50.0) {
  double best_lnl = 0.0;
  const double alpha = brent_maximize(
      [&](double a) {
        engine.set_gamma_alpha(a);
        return engine.log_likelihood();
      },
      lo, hi, 1e-3, 60, &best_lnl);
  engine.set_gamma_alpha(alpha);
  return engine.log_likelihood();
}

/// Coordinate ascent over the five free GTR exchangeabilities (GT is the
/// reference rate, fixed at 1) on the DNA engine's current tree.  `sweeps`
/// passes of per-rate Brent in log space.  Returns the final lnl.
double optimize_gtr_rates(lh::LikelihoodEngine& engine, int sweeps = 2);

/// Full model optimization loop: alternates branch lengths, (GAMMA) alpha
/// and GTR rates until improvement < epsilon.  Returns the final lnl.
double optimize_model(lh::LikelihoodEngine& engine, double epsilon = 0.1,
                      int max_rounds = 5);

}  // namespace rxc::search
