#pragma once
/// \file hill_climb.h
/// The lazy-SPR hill-climbing core, templated over the likelihood engine so
/// the DNA engine (LikelihoodEngine, optionally routed through the
/// simulated Cell) and the protein engine (ProteinEngine) share one search
/// implementation.  An Engine must provide the tree-observation,
/// optimize/evaluate, score_insertion, and invalidation-hook members of
/// lh::LikelihoodEngine.

#include <limits>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "search/search.h"
#include "support/log.h"
#include "tree/moves.h"

namespace rxc::search::detail {

/// Tries the best lazy-scored SPR around one prune point; updates `lnl` if
/// the move was kept (after local branch re-optimization), reverts cleanly
/// otherwise.
template <class Engine>
bool try_prune_point(tree::Tree& t, Engine& eng, const SearchOptions& opt,
                     int x, int s, double& lnl, SearchResult& stats) {
  auto rec = t.prune(x, s);
  eng.on_prune(rec);
  const auto targets = tree::enumerate_regraft_targets(t, rec, opt.radius);
  if (targets.empty()) {
    t.restore(rec);
    eng.on_restore(rec);
    return false;
  }

  int best_edge = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (const auto& cand : targets) {
    const double score = eng.score_insertion(rec, cand.target_edge);
    ++stats.candidate_scores;
    if (score > best_score) {
      best_score = score;
      best_edge = cand.target_edge;
    }
  }

  // Quick reject: a lazy score far below the current tree cannot win after
  // local re-optimization.
  if (best_score < lnl - 10.0) {
    t.restore(rec);
    eng.on_restore(rec);
    return false;
  }

  const int edge_xs = t.edge_between(rec.x, rec.s);
  const double len_xs_saved = t.branch_length(edge_xs);
  const double len_target_saved = t.branch_length(best_edge);

  t.regraft(rec.x, best_edge, t.branch_length(best_edge) * 0.5, rec.edge_xb);
  eng.on_regraft(best_edge, rec.edge_xb);
  eng.optimize_branch(edge_xs);
  eng.optimize_branch(best_edge);
  const double new_lnl = eng.optimize_branch(rec.edge_xb);

  if (new_lnl > lnl + opt.min_gain) {
    ++stats.accepted_moves;
    lnl = new_lnl;
    return true;
  }

  const auto rec2 = t.prune(rec.x, rec.s);
  RXC_ASSERT(rec2.merged_edge == best_edge);
  eng.on_prune(rec2);
  t.set_branch_length(best_edge, len_target_saved);
  eng.on_branch_changed(best_edge);
  t.set_branch_length(edge_xs, len_xs_saved);
  t.restore(rec);
  eng.on_restore(rec);
  return false;
}

/// Improvement rounds over all prune points until `epsilon` convergence.
/// `t` is the engine's attached tree; `lnl` its current log-likelihood.
template <class Engine>
SearchResult hill_climb(tree::Tree& t, Engine& eng, const SearchOptions& opt,
                        double lnl) {
  SearchResult result{t, lnl, 0, 0, 0};
  static obs::Counter& rounds = obs::counter("search.rounds");
  static obs::Counter& accepted = obs::counter("search.moves.accepted");
  static obs::Counter& rejected = obs::counter("search.moves.rejected");
  static obs::Counter& misses = obs::counter("engine.partial.misses");
  static obs::Histogram& newviews_per_round =
      obs::histogram("search.newviews_per_round");
  for (int round = 0; round < opt.max_rounds; ++round) {
    obs::ScopedTimer span("search.round", "search");
    const double round_start = lnl;
    const std::uint64_t misses_start = misses.value();
    const auto points = tree::enumerate_prune_points(t);
    for (const auto& [x, s] : points) {
      if (t.edge_between(x, s) < 0) continue;  // invalidated by earlier move
      const bool kept = try_prune_point(t, eng, opt, x, s, lnl, result);
      (kept ? accepted : rejected).add();
    }
    if constexpr (requires { eng.smooth_branches(opt.branch_passes); }) {
      lnl = opt.gradient_smoothing
                ? eng.smooth_branches(opt.branch_passes)
                : eng.optimize_all_branches(opt.branch_passes);
    } else {  // engines without a gradient kernel (protein)
      lnl = eng.optimize_all_branches(opt.branch_passes);
    }
    ++result.rounds;
    rounds.add();
    newviews_per_round.observe(
        static_cast<double>(misses.value() - misses_start));
    obs::mark("search.round_done", "search");
    log_debug("search round " + std::to_string(round) +
              " lnl=" + std::to_string(lnl));
    if (lnl - round_start < opt.epsilon) break;
  }
  t.check_valid();
  result.tree = t;
  result.log_likelihood = lnl;
  return result;
}

}  // namespace rxc::search::detail
