#include "search/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace rxc::search {

namespace {
constexpr const char* kMagic = "rxc-checkpoint-v1";
}

std::size_t AnalysisCheckpoint::completed() const {
  std::size_t n = 0;
  for (const auto& r : results)
    if (r.has_value()) ++n;
  return n;
}

void AnalysisCheckpoint::save(std::ostream& out) const {
  RXC_ASSERT(tasks.size() == results.size());
  out << kMagic << ' ' << tasks.size() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out << "task " << i << ' '
        << (tasks[i].kind == TaskKind::kBootstrap ? "bootstrap" : "inference")
        << ' ' << tasks[i].seed << '\n';
    if (results[i]) {
      // Newick strings contain no whitespace, so line format is safe.
      out << "done " << i << ' ' << results[i]->log_likelihood << ' '
          << results[i]->rounds << ' ' << results[i]->newick << '\n';
    }
  }
}

void AnalysisCheckpoint::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    RXC_REQUIRE(out.good(), "cannot write checkpoint: " + tmp);
    save(out);
  }
  std::filesystem::rename(tmp, path);
}

AnalysisCheckpoint AnalysisCheckpoint::load(std::istream& in) {
  std::string magic;
  std::size_t count = 0;
  in >> magic >> count;
  if (magic != kMagic)
    throw ParseError("checkpoint: bad magic '" + magic + "'");
  AnalysisCheckpoint cp;
  cp.tasks.resize(count);
  cp.results.resize(count);
  std::vector<bool> seen(count, false);

  std::string word;
  while (in >> word) {
    if (word == "task") {
      std::size_t index;
      std::string kind;
      std::uint64_t seed;
      if (!(in >> index >> kind >> seed) || index >= count)
        throw ParseError("checkpoint: malformed task line");
      cp.tasks[index].kind = kind == "bootstrap" ? TaskKind::kBootstrap
                                                 : TaskKind::kInference;
      cp.tasks[index].seed = seed;
      seen[index] = true;
    } else if (word == "done") {
      std::size_t index;
      TaskResult result;
      if (!(in >> index >> result.log_likelihood >> result.rounds >>
            result.newick) ||
          index >= count)
        throw ParseError("checkpoint: malformed done line");
      cp.results[index] = std::move(result);
    } else {
      throw ParseError("checkpoint: unknown record '" + word + "'");
    }
  }
  for (std::size_t i = 0; i < count; ++i)
    if (!seen[i]) throw ParseError("checkpoint: missing task record");
  return cp;
}

AnalysisCheckpoint AnalysisCheckpoint::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open checkpoint: " + path);
  return load(in);
}

AnalysisCheckpoint AnalysisCheckpoint::fresh(std::vector<AnalysisTask> tasks) {
  AnalysisCheckpoint cp;
  cp.results.resize(tasks.size());
  cp.tasks = std::move(tasks);
  return cp;
}

std::string AnalysisCheckpoint::to_string() const {
  std::ostringstream out;
  save(out);
  return out.str();
}

AnalysisCheckpoint AnalysisCheckpoint::from_string(const std::string& text) {
  std::istringstream in(text);
  return load(in);
}

void AnalysisCheckpoint::require_matches(
    const std::vector<AnalysisTask>& expected) const {
  RXC_REQUIRE(tasks.size() == expected.size(),
              "checkpoint does not match the task list (count)");
  for (std::size_t i = 0; i < expected.size(); ++i)
    RXC_REQUIRE(tasks[i].kind == expected[i].kind &&
                    tasks[i].seed == expected[i].seed,
                "checkpoint does not match the task list (task " +
                    std::to_string(i) + ")");
}

// --- stepper ----------------------------------------------------------------

AnalysisStepper::AnalysisStepper(const seq::PatternAlignment& pa,
                                 const lh::EngineConfig& engine_config,
                                 const SearchOptions& search_options,
                                 AnalysisCheckpoint checkpoint)
    : pa_(&pa),
      engine_config_(engine_config),
      search_options_(search_options),
      checkpoint_(std::move(checkpoint)) {
  RXC_REQUIRE(checkpoint_.tasks.size() == checkpoint_.results.size(),
              "stepper: checkpoint results/tasks size mismatch");
}

std::size_t AnalysisStepper::next_index() const {
  for (std::size_t i = 0; i < checkpoint_.tasks.size(); ++i)
    if (!checkpoint_.results[i]) return i;
  return checkpoint_.tasks.size();
}

std::size_t AnalysisStepper::step(lh::KernelExecutor* executor) {
  const std::size_t i = next_index();
  RXC_REQUIRE(i < checkpoint_.tasks.size(), "stepper: analysis already done");
  checkpoint_.results[i] = run_task(*pa_, engine_config_, search_options_,
                                    checkpoint_.tasks[i], executor);
  return i;
}

std::vector<TaskResult> AnalysisStepper::results() const {
  RXC_REQUIRE(done(), "stepper: results() before the analysis is done");
  std::vector<TaskResult> out;
  out.reserve(checkpoint_.results.size());
  for (const auto& r : checkpoint_.results) out.push_back(*r);
  return out;
}

std::vector<TaskResult> run_analysis_checkpointed(
    const seq::PatternAlignment& pa, const lh::EngineConfig& engine_config,
    const SearchOptions& search_options,
    const std::vector<AnalysisTask>& tasks,
    const std::string& checkpoint_path) {
  AnalysisCheckpoint cp;
  if (std::filesystem::exists(checkpoint_path)) {
    cp = AnalysisCheckpoint::load_file(checkpoint_path);
    cp.require_matches(tasks);
  } else {
    cp = AnalysisCheckpoint::fresh(tasks);
  }

  AnalysisStepper stepper(pa, engine_config, search_options, std::move(cp));
  while (!stepper.done()) {
    stepper.step();
    stepper.checkpoint().save_file(checkpoint_path);
  }
  return stepper.results();
}

}  // namespace rxc::search
