#pragma once
/// \file checkpoint.h
/// Analysis checkpointing: long bootstrap runs (the paper's "typically
/// 100-1,000 bootstrap analyses") survive interruption by persisting each
/// completed task.  The checkpoint is a line-oriented text file; tasks are
/// deterministic given their seeds, so resuming simply skips the recorded
/// ones.

#include <optional>
#include <string>
#include <vector>

#include "search/analysis.h"

namespace rxc::search {

struct AnalysisCheckpoint {
  /// Task list this checkpoint belongs to (identity is checked on load via
  /// kinds+seeds, so a checkpoint cannot be resumed against a different
  /// analysis).
  std::vector<AnalysisTask> tasks;
  /// results[i] is set iff task i completed.
  std::vector<std::optional<TaskResult>> results;

  std::size_t completed() const;
  bool done() const { return completed() == tasks.size(); }

  /// Serializes to a text stream/file (atomic write via temp+rename for
  /// the file variant).
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// Parses; throws rxc::ParseError on malformed input.
  static AnalysisCheckpoint load(std::istream& in);
  static AnalysisCheckpoint load_file(const std::string& path);

  /// Creates an empty checkpoint for `tasks`.
  static AnalysisCheckpoint fresh(std::vector<AnalysisTask> tasks);
};

/// Runs `tasks`, resuming from `checkpoint_path` if it exists (and matches
/// the task list), writing the checkpoint after every completed task.
/// Returns the completed results in task order.
std::vector<TaskResult> run_analysis_checkpointed(
    const seq::PatternAlignment& pa, const lh::EngineConfig& engine_config,
    const SearchOptions& search_options,
    const std::vector<AnalysisTask>& tasks,
    const std::string& checkpoint_path);

}  // namespace rxc::search
