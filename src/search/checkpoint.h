#pragma once
/// \file checkpoint.h
/// Analysis checkpointing: long bootstrap runs (the paper's "typically
/// 100-1,000 bootstrap analyses") survive interruption by persisting each
/// completed task.  The checkpoint is a line-oriented text file; tasks are
/// deterministic given their seeds, so resuming simply skips the recorded
/// ones.

#include <optional>
#include <string>
#include <vector>

#include "search/analysis.h"

namespace rxc::search {

struct AnalysisCheckpoint {
  /// Task list this checkpoint belongs to (identity is checked on load via
  /// kinds+seeds, so a checkpoint cannot be resumed against a different
  /// analysis).
  std::vector<AnalysisTask> tasks;
  /// results[i] is set iff task i completed.
  std::vector<std::optional<TaskResult>> results;

  std::size_t completed() const;
  bool done() const { return completed() == tasks.size(); }

  /// Serializes to a text stream/file (atomic write via temp+rename for
  /// the file variant).
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// Parses; throws rxc::ParseError on malformed input.
  static AnalysisCheckpoint load(std::istream& in);
  static AnalysisCheckpoint load_file(const std::string& path);

  /// Creates an empty checkpoint for `tasks`.
  static AnalysisCheckpoint fresh(std::vector<AnalysisTask> tasks);

  /// Serialized text form (the save() stream as a string) — the unit of
  /// suspend/resume for the serving layer: a suspended job IS this string.
  std::string to_string() const;
  static AnalysisCheckpoint from_string(const std::string& text);

  /// Throws rxc::Error unless this checkpoint's task list matches `tasks`
  /// (same count, kinds and seeds) — resuming against a different analysis
  /// is always a bug.
  void require_matches(const std::vector<AnalysisTask>& tasks) const;
};

/// Incremental execution of a checkpointed analysis: one step() runs the
/// next incomplete task and records its result.  Between steps the state is
/// entirely inside the AnalysisCheckpoint, so a caller can stop after any
/// step, serialize the checkpoint, and later rebuild a stepper — on a
/// different executor/device — that continues bitwise-identically: tasks
/// are deterministic given their seeds and each step builds a fresh engine,
/// so results never depend on which device ran the earlier steps.  This is
/// the preemption boundary the serving layer (src/serve) suspends at.
class AnalysisStepper {
 public:
  /// `pa` must outlive the stepper.  The checkpoint may already hold
  /// completed results (a resume); its task list is the work list.
  AnalysisStepper(const seq::PatternAlignment& pa,
                  const lh::EngineConfig& engine_config,
                  const SearchOptions& search_options,
                  AnalysisCheckpoint checkpoint);

  bool done() const { return checkpoint_.done(); }
  /// Index of the task the next step() will run (tasks.size() when done).
  std::size_t next_index() const;
  std::size_t total() const { return checkpoint_.tasks.size(); }
  std::size_t completed() const { return checkpoint_.completed(); }

  /// Runs the next incomplete task (on `executor` when given, else a
  /// private host executor per task) and records its result.  Returns the
  /// index it ran.  Throws rxc::Error when already done.
  std::size_t step(lh::KernelExecutor* executor = nullptr);

  const AnalysisCheckpoint& checkpoint() const { return checkpoint_; }

  /// Completed results in task order; requires done().
  std::vector<TaskResult> results() const;

 private:
  const seq::PatternAlignment* pa_;
  lh::EngineConfig engine_config_;
  SearchOptions search_options_;
  AnalysisCheckpoint checkpoint_;
};

/// Runs `tasks`, resuming from `checkpoint_path` if it exists (and matches
/// the task list), writing the checkpoint after every completed task.
/// Returns the completed results in task order.
std::vector<TaskResult> run_analysis_checkpointed(
    const seq::PatternAlignment& pa, const lh::EngineConfig& engine_config,
    const SearchOptions& search_options,
    const std::vector<AnalysisTask>& tasks,
    const std::string& checkpoint_path);

}  // namespace rxc::search
