#pragma once
/// \file protein_search.h
/// Maximum-likelihood tree search for amino-acid alignments: the same
/// stepwise-addition + lazy-SPR algorithm as the DNA path, running on the
/// 20-state ProteinEngine.

#include "likelihood/protein_engine.h"
#include "search/search.h"
#include "seq/aa_alignment.h"

namespace rxc::search {

/// Runs one full protein search.  Mirrors run_search() for DNA.
SearchResult run_protein_search(const seq::AaPatternAlignment& pa,
                                lh::ProteinEngine& engine,
                                const SearchOptions& options,
                                std::uint64_t seed);

/// Convenience task runner (inference only; protein bootstraps re-weight
/// patterns exactly like DNA).
struct ProteinTaskResult {
  std::string newick;
  double log_likelihood = 0.0;
  int rounds = 0;
  lh::KernelCounters counters;
};

ProteinTaskResult run_protein_task(const seq::AaPatternAlignment& pa,
                                   const lh::ProteinEngineConfig& config,
                                   const SearchOptions& options,
                                   std::uint64_t seed,
                                   bool bootstrap = false);

}  // namespace rxc::search
