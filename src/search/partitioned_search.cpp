#include "search/partitioned_search.h"

#include "search/hill_climb.h"
#include "tree/parsimony.h"

namespace rxc::search {

SearchResult run_partitioned_search(const seq::PatternAlignment& full_patterns,
                                    lh::PartitionedEngine& engine,
                                    const SearchOptions& options,
                                    std::uint64_t seed) {
  Rng rng(seed);
  tree::Tree t =
      tree::stepwise_addition_tree(full_patterns, rng, options.attach_brlen);
  engine.set_tree(&t);

  double lnl = engine.optimize_all_branches(3);
  if (options.assign_site_rates && !engine.cat_assignment().empty()) {
    engine.assign_cat_categories();
    lnl = engine.optimize_all_branches(2);
  }

  SearchResult result = detail::hill_climb(t, engine, options, lnl);
  engine.set_tree(nullptr);
  return result;
}

}  // namespace rxc::search
