#include "search/analysis.h"

#include "seq/bootstrap.h"
#include "support/error.h"

namespace rxc::search {

TaskResult run_task(const seq::PatternAlignment& pa,
                    const lh::EngineConfig& engine_config,
                    const SearchOptions& search_options,
                    const AnalysisTask& task, lh::KernelExecutor* executor) {
  lh::LikelihoodEngine engine(pa, engine_config);
  if (executor != nullptr) engine.set_executor(executor);
  if (task.kind == TaskKind::kBootstrap) {
    // Bootstrap seed space kept disjoint from starting-tree seeds.
    Rng rng(task.seed ^ 0xb005eedULL);
    engine.set_pattern_weights(seq::bootstrap_weights(pa, rng));
  }
  const SearchResult sr = run_search(pa, engine, search_options, task.seed);

  TaskResult out;
  out.newick = sr.tree.to_newick(pa.names());
  out.log_likelihood = sr.log_likelihood;
  out.rounds = sr.rounds;
  out.accepted_moves = sr.accepted_moves;
  out.counters = engine.counters();
  return out;
}

std::vector<AnalysisTask> make_analysis(std::size_t inferences,
                                        std::size_t bootstraps,
                                        std::uint64_t base_seed) {
  std::vector<AnalysisTask> tasks;
  tasks.reserve(inferences + bootstraps);
  for (std::size_t i = 0; i < inferences; ++i)
    tasks.push_back({TaskKind::kInference, base_seed + i});
  for (std::size_t i = 0; i < bootstraps; ++i)
    tasks.push_back({TaskKind::kBootstrap, base_seed + 1000 + i});
  return tasks;
}

std::size_t best_inference(const std::vector<TaskResult>& results,
                           const std::vector<AnalysisTask>& tasks) {
  RXC_REQUIRE(results.size() == tasks.size(), "results/tasks size mismatch");
  std::size_t best = results.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (tasks[i].kind != TaskKind::kInference) continue;
    if (best == results.size() ||
        results[i].log_likelihood > results[best].log_likelihood)
      best = i;
  }
  RXC_REQUIRE(best < results.size(), "no inference task in analysis");
  return best;
}

}  // namespace rxc::search
