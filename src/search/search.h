#pragma once
/// \file search.h
/// Rapid hill-climbing tree search (RAxML-style lazy SPR).
///
/// One search = one of the paper's work units: an independent inference or
/// a bootstrap replicate (§3.1).  The algorithm:
///   1. randomized stepwise-addition parsimony starting tree,
///   2. full branch-length optimization (+ CAT per-site rate assignment),
///   3. rounds of lazy SPR: every subtree is pruned and its reinsertion
///      into each edge within a rearrangement radius is scored with the
///      cheap newview+evaluate combination (no tree mutation); the best
///      candidate is applied, locally re-optimized, and kept only if the
///      full log-likelihood improves,
///   4. stop when a round's improvement drops below epsilon.
///
/// Log-likelihood is non-decreasing across accepted moves by construction.

#include <cstdint>
#include <string>

#include "likelihood/engine.h"
#include "seq/patterns.h"
#include "tree/tree.h"

namespace rxc::search {

struct SearchOptions {
  /// SPR rearrangement radius (edges from the pruned position).
  int radius = 5;
  /// Maximum improvement rounds over all prune points.
  int max_rounds = 10;
  /// Stop when a full round improves lnl by less than this.
  double epsilon = 0.05;
  /// Minimal lnl gain for accepting a single move.
  double min_gain = 1e-6;
  /// Branch length given to new stepwise-addition attachments.
  double attach_brlen = 0.05;
  /// Branch-length optimization sweeps after each round.
  int branch_passes = 1;
  /// Smooth branch lengths between SPR rounds with the gradient-driven
  /// whole-tree Newton sweep (LikelihoodEngine::smooth_branches — one O(N)
  /// all-branch gradient per pass) instead of per-edge makenewz loops.
  /// Engines without a gradient kernel (protein) ignore the knob and keep
  /// the per-edge passes.  Checkpoint-compatible: the option lives outside
  /// the checkpoint (like every SearchOptions field) and both smoothers
  /// preserve the monotone-lnl contract.
  bool gradient_smoothing = false;
  /// CAT mode: run per-site rate assignment after the initial optimization.
  bool assign_site_rates = true;
};

struct SearchResult {
  tree::Tree tree;
  double log_likelihood = 0.0;
  int rounds = 0;
  std::uint64_t accepted_moves = 0;
  std::uint64_t candidate_scores = 0;  ///< lazy insertion evaluations
};

/// Runs one full search on `engine`'s alignment.  `seed` drives the random
/// starting tree (distinct seeds = the paper's distinct inferences); the
/// engine's pattern weights select original vs bootstrap data.  The engine
/// must not have a tree attached yet (the search owns tree lifecycle).
SearchResult run_search(const seq::PatternAlignment& pa,
                        lh::LikelihoodEngine& engine,
                        const SearchOptions& options, std::uint64_t seed);

}  // namespace rxc::search
