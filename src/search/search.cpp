#include "search/search.h"

#include "obs/recorder.h"
#include "search/hill_climb.h"
#include "support/error.h"
#include "support/log.h"
#include "tree/parsimony.h"

namespace rxc::search {

SearchResult run_search(const seq::PatternAlignment& pa,
                        lh::LikelihoodEngine& engine,
                        const SearchOptions& options, std::uint64_t seed) {
  obs::ScopedTimer span("search.run_search", "search");
  Rng rng(seed);
  tree::Tree t = tree::stepwise_addition_tree(pa, rng, options.attach_brlen);
  engine.set_tree(&t);

  double lnl = engine.optimize_all_branches(3);
  if (options.assign_site_rates && !engine.cat_assignment().empty()) {
    engine.assign_cat_categories();
    lnl = engine.optimize_all_branches(2);
  }

  SearchResult result = detail::hill_climb(t, engine, options, lnl);
  log_debug("search done: seed=" + std::to_string(seed) + " rounds=" +
            std::to_string(result.rounds) +
            " lnl=" + std::to_string(result.log_likelihood));
  // The engine was observing the local tree; detach before it goes away.
  engine.set_tree(nullptr);
  return result;
}

}  // namespace rxc::search
