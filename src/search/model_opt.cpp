#include "search/model_opt.h"

#include <cmath>

#include "support/error.h"

namespace rxc::search {

double brent_maximize(const std::function<double(double)>& f, double lo,
                      double hi, double tolerance, int max_iterations,
                      double* fmax_out) {
  RXC_REQUIRE(lo < hi, "brent_maximize: empty interval");
  constexpr double kGolden = 0.3819660112501051;  // 2 - phi
  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (int iter = 0; iter < max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = tolerance * (std::fabs(x) + 1e-10);
    if (std::fabs(x - m) <= 2.0 * tol - 0.5 * (b - a)) break;

    bool parabolic_ok = false;
    if (std::fabs(e) > tol) {
      // Fit a parabola through (v,fv), (w,fw), (x,fx); maximize.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < 2.0 * tol || b - u < 2.0 * tol)
          d = x < m ? tol : -tol;
        parabolic_ok = true;
      }
    }
    if (!parabolic_ok) {
      e = (x < m ? b : a) - x;
      d = kGolden * e;
    }
    const double u =
        x + (std::fabs(d) >= tol ? d : (d > 0.0 ? tol : -tol));
    const double fu = f(u);

    if (fu >= fx) {
      if (u < x) b = x; else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu >= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu >= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  if (fmax_out) *fmax_out = fx;
  return x;
}

double optimize_gtr_rates(lh::LikelihoodEngine& engine, int sweeps) {
  model::DnaModel m = engine.model();
  double lnl = engine.log_likelihood();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    // GT (index 5) is the reference rate: keep it pinned at its value and
    // optimize the other five in log space around the current point.
    for (int r = 0; r < 5; ++r) {
      const double current = m.rates[r];
      const double best = brent_maximize(
          [&](double logr) {
            model::DnaModel trial = m;
            trial.rates[r] = std::exp(logr);
            engine.set_model(trial);
            return engine.log_likelihood();
          },
          std::log(current) - 1.5, std::log(current) + 1.5, 1e-3, 40);
      m.rates[r] = std::exp(best);
      engine.set_model(m);
    }
    const double now = engine.log_likelihood();
    if (now - lnl < 1e-3) {
      lnl = now;
      break;
    }
    lnl = now;
  }
  return lnl;
}

double optimize_model(lh::LikelihoodEngine& engine, double epsilon,
                      int max_rounds) {
  double lnl = engine.optimize_all_branches(2);
  for (int round = 0; round < max_rounds; ++round) {
    const double start = lnl;
    lnl = optimize_gtr_rates(engine, 1);
    if (!engine.cat_assignment().empty()) {
      // CAT mode: refresh per-site rate assignments instead of alpha.
      engine.assign_cat_categories();
    } else {
      lnl = optimize_gamma_alpha(engine);
    }
    lnl = engine.optimize_all_branches(2);
    if (lnl - start < epsilon) break;
  }
  return lnl;
}

}  // namespace rxc::search
