#pragma once
/// \file partitioned_search.h
/// ML tree search over a partitioned (multi-gene) alignment: the shared
/// lazy-SPR hill climb driving a PartitionedEngine.

#include "likelihood/partitioned_engine.h"
#include "search/search.h"

namespace rxc::search {

/// Runs one partitioned search.  The parsimony starting tree is built from
/// the FULL alignment's patterns (`full_patterns`); likelihood then runs
/// per partition through `engine`.
SearchResult run_partitioned_search(const seq::PatternAlignment& full_patterns,
                                    lh::PartitionedEngine& engine,
                                    const SearchOptions& options,
                                    std::uint64_t seed);

}  // namespace rxc::search
