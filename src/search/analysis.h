#pragma once
/// \file analysis.h
/// Work units of a full phylogenetic analysis (paper §3.1): multiple
/// inferences on the original alignment plus non-parametric bootstrap
/// replicates.  Each task is independent — exactly the embarrassing
/// parallelism the master-worker scheme (mpirt) and the Cell schedulers
/// exploit.

#include <cstdint>
#include <string>
#include <vector>

#include "likelihood/executor.h"
#include "search/search.h"
#include "seq/patterns.h"

namespace rxc::search {

enum class TaskKind { kInference, kBootstrap };

struct AnalysisTask {
  TaskKind kind = TaskKind::kInference;
  std::uint64_t seed = 1;  ///< starting tree + (bootstrap) resampling seed
};

struct TaskResult {
  std::string newick;  ///< final tree (needs taxon names to serialize)
  double log_likelihood = 0.0;
  int rounds = 0;
  std::uint64_t accepted_moves = 0;
  lh::KernelCounters counters;  ///< kernel work this task performed
};

/// Runs one task end to end: builds a fresh engine, sets bootstrap weights
/// when asked, searches, and returns the result.  If `executor` is non-null
/// the engine's kernels are routed through it (the Cell port passes the
/// simulated-SPE executor here).
TaskResult run_task(const seq::PatternAlignment& pa,
                    const lh::EngineConfig& engine_config,
                    const SearchOptions& search_options,
                    const AnalysisTask& task,
                    lh::KernelExecutor* executor = nullptr);

/// Convenience: the standard analysis bundle — `inferences` searches on the
/// original data and `bootstraps` resampled replicates, seeds 1..n.
std::vector<AnalysisTask> make_analysis(std::size_t inferences,
                                        std::size_t bootstraps,
                                        std::uint64_t base_seed = 1);

/// Best (highest-lnl) inference result index; requires >= 1 inference.
std::size_t best_inference(const std::vector<TaskResult>& results,
                           const std::vector<AnalysisTask>& tasks);

}  // namespace rxc::search
