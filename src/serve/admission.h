#pragma once
/// \file admission.h
/// Bounded, priority-ordered admission queue — the server's front door.
///
/// Two entry paths with different rules:
///  * try_submit() is the CLIENT path: capacity-checked, so a tenant
///    flooding the server observes backpressure (a refusal) instead of
///    unbounded queue growth.
///  * requeue() is the SERVER path: preempted, faulted or resumed jobs
///    re-enter past the bound.  They were already admitted once; bouncing
///    them would turn a preemption into a spurious rejection.
///
/// Ordering: strictly by priority (higher first), FIFO within a priority
/// class — the EDTLP idea applied to whole jobs: keep every device busy,
/// let urgent work overtake bulk bootstrap batches at task boundaries
/// (see DESIGN.md).  Unlike MpmcQueue (support/mpmc_queue.h) this is not a
/// generic pipe: close() semantics are tailored to server shutdown, where
/// in-flight jobs must still be able to requeue.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <optional>

#include "support/error.h"

namespace rxc::serve {

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
    RXC_REQUIRE(capacity >= 1, "AdmissionQueue: capacity must be >= 1");
  }

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Client submission: false when the queue is full (backpressure) or
  /// closed (shutdown).
  bool try_submit(int priority, T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      ready_[priority].push_back(std::move(value));
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Server-side re-entry (preempted/faulted/resumed jobs): ignores both
  /// the capacity bound and closed state.  FIFO within the class, so a
  /// preempted job goes behind waiting peers of its own priority.
  void requeue(int priority, T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_[priority].push_back(std::move(value));
      ++size_;
    }
    cv_.notify_one();
  }

  /// Blocks for the highest-priority element; nullopt once closed AND
  /// empty.  A requeue after close wakes poppers again — the queue is only
  /// ever abandoned empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    auto it = ready_.begin();  // std::greater: highest priority first
    T out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) ready_.erase(it);
    --size_;
    return out;
  }

  /// True when an element with priority strictly above `priority` waits —
  /// the preemption probe a running job polls at checkpoint boundaries.
  bool has_waiting_above(int priority) const {
    std::lock_guard<std::mutex> lock(mu_);
    return !ready_.empty() && ready_.begin()->first > priority;
  }

  /// Stops client submissions and wakes blocked poppers.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::deque<T>, std::greater<int>> ready_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace rxc::serve
