#include "serve/device_pool.h"

#include <string>

#include "core/spe_executor.h"
#include "obs/obs.h"
#include "support/error.h"

namespace rxc::serve {

Device::Device(int id, lh::ExecutorSpec spec) : id_(id) {
  cell_ = spec.kind() == lh::ExecutorKind::kSpe;
  if (cell_) {
    spec.cell().unique_events = true;
    model_name_ = spec.cell().device.name;
    cell_opts_ = spec.cell();
  }
  exec_ = lh::make_executor(spec);
}

void Device::begin_step() {
  ++steps_;
  static obs::Counter& total_steps = obs::counter("serve.device.steps");
  total_steps.add();

  // Fresh trace and counters per leased step: jobs are unbounded, device
  // memory must not be, and per-task counters should describe that task.
  if (cell_)
    core::as_cell_executor(*exec_).begin_task();
  else
    exec_->reset_counters();

  std::optional<cell::Fault> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (armed_ && --fault_countdown_ <= 0) {
      fire = armed_;
      armed_.reset();
    }
  }
  if (!fire) return;

  ++faults_;
  static obs::Counter& fault_count = obs::counter("serve.device.faults");
  fault_count.add();
  std::string detail = cell::fault_name(*fire);
  if (cell_) {
    // Run the real violation against the live SPU.  ok() is the simulator's
    // trap-before-mutate contract: the fault trapped AND the device state
    // survived bit-for-bit — which is precisely what entitles the server to
    // retry on this same device rather than fence it.
    auto& machine = core::as_cell_executor(*exec_).machine();
    const cell::FaultOutcome outcome = cell::inject_fault(machine.spe(0), *fire);
    RXC_REQUIRE(outcome.ok(),
                std::string("device ") + std::to_string(id_) +
                    ": injected fault corrupted state: " + outcome.error);
    detail += " (trapped, state intact)";
  }
  throw HardwareError("device " + std::to_string(id_) +
                      ": injected fault " + detail);
}

void Device::arm_fault(cell::Fault fault, int after_steps) {
  RXC_REQUIRE(after_steps >= 1, "arm_fault: after_steps must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = fault;
  fault_countdown_ = after_steps;
}

DevicePool::DevicePool(const std::vector<lh::ExecutorSpec>& specs) {
  RXC_REQUIRE(!specs.empty(), "DevicePool: need at least one device spec");
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    devices_.push_back(
        std::make_unique<Device>(static_cast<int>(i), specs[i]));
}

bool DevicePool::has_model(const std::string& name) const {
  for (const auto& d : devices_)
    if (d->model_name() == name) return true;
  return false;
}

std::vector<lh::ExecutorSpec> auto_device_specs(const lh::WorkloadShape& shape,
                                                int count) {
  return auto_device_specs(shape, count, lh::calibrate(shape));
}

std::vector<lh::ExecutorSpec> auto_device_specs(
    const lh::WorkloadShape& shape, int count,
    const lh::CalibrationTable& pinned) {
  RXC_REQUIRE(count >= 1, "auto_device_specs: need at least one device");
  const lh::Backend winner = lh::choose_backend(shape, pinned);
  static obs::Counter& chosen = obs::counter("serve.pool.auto_selected");
  chosen.add();
  return std::vector<lh::ExecutorSpec>(static_cast<std::size_t>(count),
                                       winner.spec);
}

}  // namespace rxc::serve
