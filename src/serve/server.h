#pragma once
/// \file server.h
/// Multi-tenant inference server: clients submit jobs (job.h) into a
/// bounded admission queue; one worker thread per pooled device drains
/// them.  The scheduling story maps the paper's PPE-side ideas onto whole
/// jobs (DESIGN.md "Serving"):
///
///  * admission — bounded queue, priority-ordered, backpressure on full
///    (EDTLP's oversubscription bound: accept enough work to keep every
///    device busy, refuse the rest loudly).  Before a job queues, its
///    schedule is verified STATICALLY against every candidate device
///    (analysis::verify_program over the abstract program
///    core::extract_program emits for that device's pinned Cell options):
///    devices the proof fails on are excluded from placement, and a job
///    with no admissible device is rejected at submit with the refuting
///    StaticReport attached — unsafe work never reaches a lease;
///  * placement — any idle device takes the highest-priority waiting job;
///    jobs are not pinned, so after a preemption or fault a job usually
///    resumes on a DIFFERENT device (MGPS's dynamic SPE sharing, at job
///    granularity).  A job may carry a device-model constraint
///    (JobSpec::device): only devices whose model name matches run it —
///    others requeue it.  Submission rejects constraints no pooled device
///    satisfies, so constrained jobs cannot circulate forever;
///  * preemption — a running job polls the queue at every checkpoint
///    boundary (one analysis task) and yields to strictly-higher-priority
///    waiters by serializing its AnalysisCheckpoint and requeueing.  Tasks
///    are deterministic given seeds and each step builds a fresh engine, so
///    resumption is bitwise-identical wherever it lands;
///  * resilience — a device fault (cell/fault.h, injected or real) throws
///    HardwareError out of the step; the trap-before-mutate contract means
///    the device survives, and the job retries from its last checkpoint
///    with exponential backoff, up to max_retries;
///  * deadlines — checked when a job is popped and at every checkpoint
///    boundary; an expired job terminates as kExpired.  A job whose final
///    step straddles the deadline completes (finished work is not thrown
///    away).
///
/// Observability: per-job queue/run/total latencies, queue depth, retry and
/// preemption counts and per-device step counts flow through the obs
/// metrics registry (serve.* names); submissions and terminal states mark
/// the flight recorder when tracing.

#include <chrono>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "search/checkpoint.h"
#include "serve/admission.h"
#include "serve/device_pool.h"
#include "serve/job.h"
#include "support/mpmc_queue.h"

namespace rxc::serve {

struct ServerConfig {
  /// Admission bound: queued-not-yet-running jobs beyond this are refused.
  std::size_t queue_capacity = 64;
  /// Fault retries per job before it fails (0 = fail on first fault).
  int max_retries = 2;
  /// Base backoff after a fault; doubles per retry of the same job.
  double retry_backoff_ms = 0.5;
  /// Yield running jobs to strictly-higher-priority waiters.
  bool preempt = true;
  /// Statically verify each job's schedule against every candidate Cell
  /// device at submit (see the admission bullet above).  Host/threaded
  /// devices have no schedule program and always pass.
  bool verify_admission = true;
  /// When > 0, terminal results are also streamed into result_channel().
  /// Best-effort: if the channel is full the notification is dropped (the
  /// results() map is always authoritative) — a slow consumer must never
  /// wedge a device worker.
  std::size_t result_channel_capacity = 0;
};

enum class SubmitStatus {
  kAccepted,     ///< queued; a terminal JobResult will exist by join()
  kQueueFull,    ///< backpressure — retry later
  kDuplicateId,  ///< id already known to this server
  kRejected,     ///< spec invalid; a kRejected JobResult records why
  kClosed,       ///< server no longer accepts work
};

const char* submit_status_name(SubmitStatus status);

class Server {
 public:
  /// Builds the device pool (one worker thread per device) and starts
  /// serving immediately.
  Server(const std::vector<lh::ExecutorSpec>& device_specs,
         ServerConfig config = {});
  ~Server();  ///< close() + join()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Compiles and enqueues `spec`.  Compilation (alignment load/simulation,
  /// model setup) happens on the caller's thread so devices only ever run
  /// checkpoint steps.  kRejected specs get a terminal JobResult under
  /// their id (when the id is usable) so NDJSON clients see every job
  /// reflected in the output.
  SubmitStatus submit(const JobSpec& spec);

  /// Stops accepting submissions.  Queued and in-flight jobs still run to
  /// a terminal state.
  void close();
  /// close() + wait until every accepted job is terminal and all workers
  /// have exited.
  void join();

  std::size_t queue_depth() const { return queue_.depth(); }
  DevicePool& devices() { return pool_; }
  const ServerConfig& config() const { return config_; }

  /// Snapshot of every known job's result record (any state).
  std::vector<JobResult> results() const;
  std::optional<JobResult> result(const std::string& id) const;

  /// Streaming channel of terminal results (see ServerConfig); nullptr
  /// when result_channel_capacity == 0.
  MpmcQueue<JobResult>* result_channel() { return channel_.get(); }

 private:
  struct Job;  // compiled job, internal to server.cpp

  /// Static admission verification (config_.verify_admission): fills the
  /// job's admissible-device set; throws rxc::Error (with the refuting
  /// report stashed on the job) when no device passes.
  void admit(Job& job);
  void worker(Device& device);
  void run_lease(Job& job, Device& device);
  void finalize(Job& job, JobState state, const std::string& error = {});
  void publish(const Job& job);

  ServerConfig config_;
  DevicePool pool_;
  AdmissionQueue<Job*> queue_;
  std::unique_ptr<MpmcQueue<JobResult>> channel_;

  mutable std::mutex jobs_mu_;  ///< guards jobs_ / records_ / accepting_
  std::vector<std::unique_ptr<Job>> jobs_;
  std::map<std::string, JobResult> records_;
  bool accepting_ = true;

  std::vector<std::thread> workers_;
};

}  // namespace rxc::serve
