#include "serve/ndjson.h"

#include <cmath>

#include "support/error.h"
#include "support/json.h"

namespace rxc::serve {
namespace {

/// Positive integer field with range sanity (job specs are tiny numbers;
/// 1e9 bootstraps is a typo, not a request).
std::size_t as_count(const JsonValue& v, const char* name,
                     std::size_t max = 1000000) {
  const double d = v.as_number();
  if (d < 0 || d != std::floor(d) || d > static_cast<double>(max))
    throw ParseError(std::string("job spec: ") + name +
                     " must be a non-negative integer <= " +
                     std::to_string(max));
  return static_cast<std::size_t>(d);
}

int as_int(const JsonValue& v, const char* name, int lo, int hi) {
  const double d = v.as_number();
  if (d != std::floor(d) || d < lo || d > hi)
    throw ParseError(std::string("job spec: ") + name + " must be an integer in [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return static_cast<int>(d);
}

}  // namespace

JobSpec job_spec_from_json(std::string_view line) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) throw ParseError("job spec: line is not a JSON object");

  JobSpec spec;
  for (const auto& [key, v] : doc.object) {
    if (key == "id") spec.id = v.as_string();
    else if (key == "priority") spec.priority = as_int(v, "priority", -100, 100);
    else if (key == "deadline_ms") spec.deadline_ms = v.as_number();
    else if (key == "device") spec.device = v.as_string();
    else if (key == "phylip") spec.workload.phylip = v.as_string();
    else if (key == "sim_taxa") spec.workload.sim_taxa = as_count(v, "sim_taxa");
    else if (key == "sim_sites") spec.workload.sim_sites = as_count(v, "sim_sites");
    else if (key == "sim_seed") spec.workload.sim_seed = as_count(v, "sim_seed", ~0ull >> 12);
    else if (key == "model") spec.model = v.as_string();
    else if (key == "mode") spec.rate_mode = v.as_string();
    else if (key == "categories") spec.categories = as_int(v, "categories", 1, 25);
    else if (key == "alpha") spec.alpha = v.as_number();
    else if (key == "inferences") spec.inferences = as_count(v, "inferences");
    else if (key == "bootstraps") spec.bootstraps = as_count(v, "bootstraps");
    else if (key == "seed") spec.seed = static_cast<std::uint64_t>(as_count(v, "seed", ~0ull >> 12));
    else if (key == "radius") spec.radius = as_int(v, "radius", 1, 50);
    else if (key == "max_rounds") spec.max_rounds = as_int(v, "max_rounds", 1, 1000);
    else if (key == "epsilon") spec.epsilon = v.as_number();
    else throw ParseError("job spec: unknown key '" + key + "'");
  }
  if (spec.id.empty()) throw ParseError("job spec: missing required key 'id'");
  if (spec.deadline_ms < 0) throw ParseError("job spec: deadline_ms must be >= 0");
  if (spec.inferences + spec.bootstraps == 0)
    throw ParseError("job spec: inferences + bootstraps must be >= 1");
  return spec;
}

std::string job_result_to_json(const JobResult& result) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", result.id);
  w.kv("state", job_state_name(result.state));
  if (!result.error.empty()) w.kv("error", result.error);
  if (!result.static_report.empty())
    w.key("static_report").raw(result.static_report);
  if (result.state == JobState::kCompleted) {
    w.kv("best_lnl", result.best_lnl);
    w.kv("best_newick", result.best_newick);
  }
  w.kv("tasks_total", static_cast<std::uint64_t>(result.tasks_total));
  w.kv("tasks_completed", static_cast<std::uint64_t>(result.tasks_completed));
  w.kv("retries", result.retries);
  w.kv("preemptions", result.preemptions);
  w.kv("device", result.last_device);
  w.kv("queue_ms", result.queue_ms);
  w.kv("wait_ms", result.wait_ms);
  w.kv("run_ms", result.run_ms);
  w.kv("total_ms", result.total_ms);
  w.end_object();
  return w.str();
}

}  // namespace rxc::serve
