#pragma once
/// \file job.h
/// Client-facing job model for the serving layer: what a tenant submits
/// (JobSpec), what the server reports back (JobResult), and the lifecycle
/// states in between.
///
/// A job is one complete phylogenetic analysis — `inferences` ML searches
/// plus `bootstraps` replicates on one alignment — exactly the work unit of
/// search::make_analysis.  The server executes it through a checkpointable
/// stepper (search::AnalysisStepper), so a job can be preempted at any
/// task boundary, survive an injected device fault, and resume on a
/// different device with bitwise-identical results.

#include <cstdint>
#include <string>

namespace rxc::serve {

/// Lifecycle.  kQueued/kRunning/kPreempted are transient; the rest are
/// terminal.  Every accepted job reaches a terminal state by Server::join().
enum class JobState {
  kQueued,     ///< admitted, waiting for a device
  kRunning,    ///< on a device
  kPreempted,  ///< suspended at a checkpoint boundary, back in the queue
  kCompleted,  ///< all tasks done
  kFailed,     ///< device fault retries exhausted (or compile error)
  kExpired,    ///< deadline passed before completion
  kRejected,   ///< never admitted (invalid spec); recorded for the client
};

const char* job_state_name(JobState state);
bool job_state_terminal(JobState state);

/// The alignment a job runs on: a PHYLIP file, or (when `phylip` is empty)
/// a deterministic simulated alignment — the serving analogue of the
/// --demo workload, and what the tests and the smoke CI submit.
struct WorkloadSpec {
  std::string phylip;
  std::size_t sim_taxa = 8;
  std::size_t sim_sites = 120;
  std::uint64_t sim_seed = 42;
};

struct JobSpec {
  std::string id;           ///< client-assigned, unique per server
  int priority = 0;         ///< higher preempts lower at task boundaries
  double deadline_ms = 0.0; ///< wall-clock budget from submission; 0 = none
  std::string device;       ///< restrict placement to devices whose model
                            ///< name matches; empty = any device

  WorkloadSpec workload;
  std::string model = "gtr";      ///< jc|k80|hky|gtr
  std::string rate_mode = "cat";  ///< cat|gamma
  int categories = 4;
  double alpha = 1.0;

  std::size_t inferences = 1;
  std::size_t bootstraps = 0;
  std::uint64_t seed = 1;
  int radius = 5;
  int max_rounds = 10;
  double epsilon = 0.05;
};

struct JobResult {
  std::string id;
  JobState state = JobState::kQueued;
  std::string error;  ///< kFailed/kRejected diagnosis
  /// When the job was rejected by static admission verification
  /// (ServerConfig::verify_admission): the serialized
  /// analysis::StaticReport refuting the schedule on the first candidate
  /// device, so the client sees the exact violations.  Empty otherwise.
  std::string static_report;

  double best_lnl = 0.0;       ///< kCompleted: best inference (or task 0)
  std::string best_newick;
  std::size_t tasks_total = 0;
  std::size_t tasks_completed = 0;

  int retries = 0;      ///< fault-triggered reruns from the last checkpoint
  int preemptions = 0;  ///< checkpoint suspensions in favour of higher prio
  int last_device = -1;

  double queue_ms = 0.0;  ///< submission -> first time on a device
  double run_ms = 0.0;    ///< cumulative on-device time across leases
  double total_ms = 0.0;  ///< submission -> terminal state
  /// Cumulative queue-wait across ALL waits: submission -> first lease plus
  /// every requeue (preemption, fault retry, device-constraint skip) ->
  /// next lease.  queue_ms only sees the first wait; under contention the
  /// difference is exactly the re-wait cost the scaling diagnosis needs.
  double wait_ms = 0.0;
};

}  // namespace rxc::serve
