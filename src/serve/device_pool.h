#pragma once
/// \file device_pool.h
/// The server's fleet of leased executors.  Each Device wraps one executor
/// built through lh::make_executor — typically a simulated-Cell machine
/// (ExecutorKind::kSpe), but host/threaded backends work identically, which
/// is what makes the serving layer testable against cheap devices.
///
/// Simulated-Cell devices are forced to `cell_unique_events`: a pool runs
/// several CellMachines concurrently, and without process-unique SPU event
/// ids a global event sink (the race detector, RXC_ANALYZE=race:fatal)
/// would see SPE i of every machine as one stream and report phantom
/// overlaps between unrelated devices.
///
/// Fault injection for resilience testing: arm_fault() plants a
/// cell::Fault that fires on the Nth upcoming begin_step().  The simulator's
/// trap-before-mutate contract (cell/fault.h) is verified at the injection
/// point, which is exactly why the server may keep the device and retry the
/// job from its last checkpoint instead of fencing the hardware.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cell/fault.h"
#include "likelihood/executor.h"
#include "likelihood/registry.h"

namespace rxc::serve {

class Device {
 public:
  /// Builds the executor from `spec` (validated by make_executor).  kSpe
  /// specs get cell_unique_events forced on — see the file comment.
  Device(int id, lh::ExecutorSpec spec);

  int id() const { return id_; }
  bool is_cell() const { return cell_; }
  /// Device-model name for simulated-Cell devices ("cell-2007", ...);
  /// empty for host/threaded devices.  Jobs carrying a `device` constraint
  /// are placed only on devices whose model name matches.
  const std::string& model_name() const { return model_name_; }
  /// The pinned Cell schedule options (device model, stage, llp_ways, strip
  /// budget) this device was built from; nullptr for host/threaded devices.
  /// What the server's static admission check extracts the abstract
  /// schedule program from (ServerConfig::verify_admission).
  const lh::CellOptions* cell_options() const {
    return cell_opts_ ? &*cell_opts_ : nullptr;
  }
  lh::KernelExecutor& executor() { return *exec_; }

  /// Called by the server once per checkpoint step leased to this device:
  /// resets the per-task trace on Cell devices (bounds trace memory across
  /// unboundedly many jobs) and fires an armed fault — throwing
  /// rxc::HardwareError AFTER verifying the device survived it intact.
  void begin_step();

  /// Arms `fault` to fire on the `after_steps`-th upcoming begin_step()
  /// (1 = the very next).  One-shot; re-arming replaces the previous plan.
  /// On non-Cell devices the fault class is only reported, not simulated.
  void arm_fault(cell::Fault fault, int after_steps = 1);

  /// Steps this device has started (including the faulted ones).
  std::uint64_t steps() const { return steps_; }
  std::uint64_t faults() const { return faults_; }

  /// Idle-gap accounting, owned by the device's worker thread: wall time
  /// spent between leases (blocked on the queue or skipping constrained
  /// jobs).  Read after Server::join() — or from the worker itself — only;
  /// the join is what publishes the final value to other threads.
  void add_idle_ms(double ms) { idle_ms_ += ms; }
  double idle_ms() const { return idle_ms_; }

 private:
  int id_;
  bool cell_ = false;
  std::string model_name_;
  std::optional<lh::CellOptions> cell_opts_;
  std::unique_ptr<lh::KernelExecutor> exec_;

  std::mutex mu_;  ///< guards the fault plan (armed from other threads)
  std::optional<cell::Fault> armed_;
  int fault_countdown_ = 0;

  std::uint64_t steps_ = 0;   ///< worker-thread-owned
  std::uint64_t faults_ = 0;
  double idle_ms_ = 0.0;      ///< worker-thread-owned (see add_idle_ms)
};

class DevicePool {
 public:
  /// One Device per spec, ids 0..n-1.  Requires >= 1 spec.  Specs may
  /// differ arbitrarily — a pool can lease a heterogeneous mix of device
  /// models (and of backend kinds).
  explicit DevicePool(const std::vector<lh::ExecutorSpec>& specs);

  int size() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }

  /// True when any pooled device's model name equals `name` — the admission
  /// check behind JobSpec::device (a constraint no device satisfies would
  /// otherwise circulate in the queue forever).
  bool has_model(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

/// Best-backend leasing: `count` copies of the ExecutorSpec that
/// lh::choose_backend picks for `shape`, so pools are no longer Cell-only —
/// whichever registered backend calibrates fastest for the job shape serves
/// it.  The pinned overload skips the measurement pass (servers calibrate
/// once, then stamp out devices); it throws rxc::ConfigError when the table
/// shape mismatches or names no registered backend.  Requires count >= 1.
std::vector<lh::ExecutorSpec> auto_device_specs(const lh::WorkloadShape& shape,
                                                int count);
std::vector<lh::ExecutorSpec> auto_device_specs(
    const lh::WorkloadShape& shape, int count,
    const lh::CalibrationTable& pinned);

}  // namespace rxc::serve
