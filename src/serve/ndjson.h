#pragma once
/// \file ndjson.h
/// The serving wire format: one JSON object per line (NDJSON).  Job specs
/// come in, job results go out — both through rxc-serve and through any
/// client driving serve::Server programmatically.
///
/// The repo's JSON support so far is write-only (support/json.h); this adds
/// the minimal recursive-descent *parser* the service needs.  It accepts
/// strict JSON (objects, arrays, strings with escapes, numbers, booleans,
/// null) and rejects everything else with rxc::ParseError — a service API
/// should fail loudly on malformed input, not guess.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/job.h"

namespace rxc::serve {

/// A parsed JSON value (small DOM).  Objects keep insertion order; lookup
/// is linear, which is fine at job-spec sizes.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors; throw rxc::ParseError on a kind mismatch so a spec
  /// with `"priority": "high"` is reported instead of silently zeroed.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonValue parse_json(std::string_view text);

/// Parses one NDJSON job-spec line.  Unknown keys throw ParseError (typo
/// protection); `id` is required.
JobSpec job_spec_from_json(std::string_view line);

/// Renders one NDJSON result line (no trailing newline).
std::string job_result_to_json(const JobResult& result);

}  // namespace rxc::serve
