#pragma once
/// \file ndjson.h
/// The serving wire format: one JSON object per line (NDJSON).  Job specs
/// come in, job results go out — both through rxc-serve and through any
/// client driving serve::Server programmatically.
///
/// The strict recursive-descent parser itself lives in support/json_value.h
/// (it also backs cell::DeviceModel config files); this header re-exports
/// it under the serve namespace and adds the job-spec/-result codecs.

#include <string>
#include <string_view>

#include "serve/job.h"
#include "support/json_value.h"

namespace rxc::serve {

using rxc::JsonValue;
using rxc::parse_json;

/// Parses one NDJSON job-spec line.  Unknown keys throw ParseError (typo
/// protection); `id` is required.
JobSpec job_spec_from_json(std::string_view line);

/// Renders one NDJSON result line (no trailing newline).
std::string job_result_to_json(const JobResult& result);

}  // namespace rxc::serve
