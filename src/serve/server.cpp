#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "analysis/static_verifier.h"
#include "core/scheduler.h"
#include "io/phylip.h"
#include "obs/obs.h"
#include "search/analysis.h"
#include "seq/seqgen.h"
#include "support/error.h"

namespace rxc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

model::DnaModel parse_model(const std::string& name,
                            const seq::Alignment& aln) {
  using model::DnaModel;
  if (name == "jc") return DnaModel::jc69();
  if (name == "k80") return DnaModel::k80(2.0);
  if (name == "hky") return DnaModel::hky85(2.0, aln.empirical_base_freqs());
  if (name == "gtr")
    return DnaModel::gtr({1, 1, 1, 1, 1, 1}, aln.empirical_base_freqs());
  throw Error("job spec: unknown model '" + name + "' (jc|k80|hky|gtr)");
}

}  // namespace

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kDuplicateId: return "duplicate-id";
    case SubmitStatus::kRejected: return "rejected";
    case SubmitStatus::kClosed: return "closed";
  }
  return "?";
}

/// A compiled, admitted job.  The alignment lives here (stable address —
/// jobs_ holds unique_ptrs) so every lease's stepper can reference it.
/// Mutated only by the worker currently holding the job; the published
/// record (Server::records_) is the cross-thread view.
struct Server::Job {
  JobSpec spec;
  std::optional<seq::PatternAlignment> pa;
  lh::EngineConfig engine_cfg;
  search::SearchOptions search_opt;
  std::vector<search::AnalysisTask> tasks;

  /// Serialized progress; empty = fresh.  THE suspend/resume token: every
  /// preemption and fault retry round-trips through this text, so resuming
  /// on a different device exercises the same path as resuming from disk.
  std::string checkpoint_text;

  JobState state = JobState::kQueued;
  std::string error;
  /// Refuting StaticReport text when admission verification rejected the
  /// job; empty otherwise.
  std::string static_report;
  /// Admissible-device bitmap (indexed by device id), filled by
  /// Server::admit.  Empty = every device may take the job (verification
  /// disabled).
  std::vector<char> device_ok;
  int retries = 0;
  int preemptions = 0;
  int last_device = -1;

  Clock::time_point submitted;
  std::optional<Clock::time_point> deadline;
  bool started = false;
  double queue_ms = 0.0;
  double run_ms = 0.0;
  double total_ms = 0.0;
  double wait_ms = 0.0;
  /// When the job last entered the queue (submission or any requeue); the
  /// next lease charges wait_ms from here.
  Clock::time_point last_enqueued;

  double best_lnl = 0.0;
  std::string best_newick;
  std::size_t tasks_completed = 0;

  JobResult record() const {
    JobResult r;
    r.id = spec.id;
    r.state = state;
    r.error = error;
    r.static_report = static_report;
    r.best_lnl = best_lnl;
    r.best_newick = best_newick;
    r.tasks_total = tasks.size();
    r.tasks_completed = tasks_completed;
    r.retries = retries;
    r.preemptions = preemptions;
    r.last_device = last_device;
    r.queue_ms = queue_ms;
    r.run_ms = run_ms;
    r.total_ms = total_ms;
    r.wait_ms = wait_ms;
    return r;
  }

  /// Compiles the workload: load/simulate the alignment, build the model
  /// and the task list.  Throws rxc::Error on an unusable spec.
  void compile() {
    seq::Alignment alignment = [&] {
      if (!spec.workload.phylip.empty())
        return seq::Alignment::from_records(
            io::read_phylip_file(spec.workload.phylip));
      seq::SimOptions opt;
      opt.ntaxa = spec.workload.sim_taxa;
      opt.nsites = spec.workload.sim_sites;
      opt.seed = spec.workload.sim_seed;
      return seq::simulate_alignment(opt).alignment;
    }();
    engine_cfg.model = parse_model(spec.model, alignment);
    RXC_REQUIRE(spec.rate_mode == "cat" || spec.rate_mode == "gamma",
                "job spec: mode must be cat|gamma");
    engine_cfg.mode = spec.rate_mode == "cat" ? lh::RateMode::kCat
                                              : lh::RateMode::kGamma;
    engine_cfg.categories = spec.categories;
    engine_cfg.alpha = spec.alpha;
    search_opt.radius = spec.radius;
    search_opt.max_rounds = spec.max_rounds;
    search_opt.epsilon = spec.epsilon;
    RXC_REQUIRE(spec.inferences + spec.bootstraps >= 1,
                "job spec: inferences + bootstraps must be >= 1");
    tasks = search::make_analysis(spec.inferences, spec.bootstraps, spec.seed);
    pa.emplace(seq::PatternAlignment::compress(alignment));
  }
};

Server::Server(const std::vector<lh::ExecutorSpec>& device_specs,
               ServerConfig config)
    : config_(config),
      pool_(device_specs),
      queue_(config.queue_capacity) {
  if (config_.result_channel_capacity > 0)
    channel_ = std::make_unique<MpmcQueue<JobResult>>(
        config_.result_channel_capacity);
  workers_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int i = 0; i < pool_.size(); ++i)
    workers_.emplace_back([this, i] { worker(pool_.device(i)); });
}

Server::~Server() { join(); }

SubmitStatus Server::submit(const JobSpec& spec) {
  static obs::Counter& submitted = obs::counter("serve.jobs.submitted");
  static obs::Counter& rejected = obs::counter("serve.jobs.rejected");
  static obs::Counter& refused = obs::counter("serve.jobs.queue_full");
  static obs::Gauge& depth = obs::gauge("serve.queue.depth");
  submitted.add();

  if (spec.id.empty()) {
    rejected.add();
    return SubmitStatus::kRejected;  // no id to record the rejection under
  }

  auto job = std::make_unique<Job>();
  job->spec = spec;
  try {
    job->compile();
    RXC_REQUIRE(spec.device.empty() || pool_.has_model(spec.device),
                "job spec: no pooled device has model '" + spec.device + "'");
    if (config_.verify_admission) admit(*job);
  } catch (const Error& e) {
    job->state = JobState::kRejected;
    job->error = e.what();
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (records_.count(spec.id)) return SubmitStatus::kDuplicateId;
    records_[spec.id] = job->record();
    rejected.add();
    return SubmitStatus::kRejected;
  }

  job->submitted = Clock::now();
  job->last_enqueued = job->submitted;
  if (spec.deadline_ms > 0)
    job->deadline = job->submitted +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            spec.deadline_ms));

  Job* ptr = job.get();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    if (!accepting_) return SubmitStatus::kClosed;
    if (records_.count(spec.id)) return SubmitStatus::kDuplicateId;
    records_[spec.id] = job->record();
    jobs_.push_back(std::move(job));
  }
  if (!queue_.try_submit(spec.priority, ptr)) {
    // Backpressure: withdraw the reservation so a later retry of the same
    // id is not mistaken for a duplicate.
    std::lock_guard<std::mutex> lock(jobs_mu_);
    records_.erase(spec.id);
    jobs_.erase(std::remove_if(jobs_.begin(), jobs_.end(),
                               [&](const auto& j) { return j.get() == ptr; }),
                jobs_.end());
    refused.add();
    return SubmitStatus::kQueueFull;
  }
  depth.set(static_cast<double>(queue_.depth()));
  obs::mark("serve.submit", "serve");
  return SubmitStatus::kAccepted;
}

void Server::admit(Job& job) {
  static obs::Counter& reroutes = obs::counter("serve.jobs.verify_reroutes");
  RXC_REQUIRE(job.pa.has_value(), "admit: job must be compiled first");
  const std::size_t patterns = job.pa->pattern_count();
  job.device_ok.assign(static_cast<std::size_t>(pool_.size()), 1);
  std::string refutation;
  int admissible = 0;
  for (int i = 0; i < pool_.size(); ++i) {
    Device& device = pool_.device(i);
    if (!job.spec.device.empty() &&
        job.spec.device != device.model_name()) {
      // Model-name constraint, not a verification verdict: the worker
      // already skips these; keep the bitmap consistent anyway.
      job.device_ok[static_cast<std::size_t>(i)] = 0;
      continue;
    }
    const lh::CellOptions* cell = device.cell_options();
    if (cell == nullptr) {
      ++admissible;  // host/threaded device: no schedule program to refute
      continue;
    }
    core::ProgramShape shape;
    shape.patterns = patterns;
    shape.categories = job.spec.categories;
    shape.cat_mode = job.spec.rate_mode == "cat";
    const analysis::StaticReport report = analysis::verify_program(
        core::extract_program(cell->device,
                              static_cast<core::Stage>(cell->stage),
                              cell->llp_ways, shape, cell->strip_bytes),
        cell->device,
        "job=" + job.spec.id + " stage=" + std::to_string(cell->stage) +
            " llp_ways=" + std::to_string(cell->llp_ways) +
            " patterns=" + std::to_string(shape.patterns));
    if (report.ok()) {
      ++admissible;
      continue;
    }
    // Reroute: this device can never run the job safely; others may.
    job.device_ok[static_cast<std::size_t>(i)] = 0;
    reroutes.add();
    if (refutation.empty()) refutation = report.to_string();
  }
  if (admissible == 0) {
    job.static_report = refutation;
    throw Error(
        "job spec: schedule failed static verification on every candidate "
        "device (see static_report)");
  }
}

void Server::close() {
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    accepting_ = false;
  }
  queue_.close();
}

void Server::join() {
  close();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  if (channel_) channel_->close();
}

std::vector<JobResult> Server::results() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  std::vector<JobResult> out;
  out.reserve(records_.size());
  for (const auto& [id, r] : records_) out.push_back(r);
  return out;
}

std::optional<JobResult> Server::result(const std::string& id) const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void Server::publish(const Job& job) {
  JobResult r = job.record();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    records_[job.spec.id] = r;
  }
  if (channel_ && job_state_terminal(job.state)) {
    // Best-effort stream; the records_ map stays authoritative.
    static obs::Counter& dropped = obs::counter("serve.results.dropped");
    if (!channel_->try_push(std::move(r))) dropped.add();
  }
}

void Server::finalize(Job& job, JobState state, const std::string& error) {
  static obs::Counter& completed = obs::counter("serve.jobs.completed");
  static obs::Counter& failed = obs::counter("serve.jobs.failed");
  static obs::Counter& expired = obs::counter("serve.jobs.expired");
  static obs::Histogram& run_ms = obs::histogram("serve.job.run_ms");
  static obs::Histogram& total_ms = obs::histogram("serve.job.total_ms");

  job.state = state;
  job.error = error;
  job.total_ms = ms_between(job.submitted, Clock::now());
  switch (state) {
    case JobState::kCompleted: completed.add(); break;
    case JobState::kFailed: failed.add(); break;
    case JobState::kExpired: expired.add(); break;
    default: break;
  }
  run_ms.observe(job.run_ms);
  total_ms.observe(job.total_ms);
  obs::mark(std::string("serve.") + job_state_name(state), "serve");
  publish(job);
}

void Server::worker(Device& device) {
  static obs::Histogram& idle_gap =
      obs::histogram("serve.device.idle_gap_ms");
  // Idle-gap accounting: wall time this device spends NOT running a lease —
  // blocked in pop() or bouncing constrained jobs.  Large gaps while jobs
  // wait (JobResult::wait_ms) point at placement/constraint problems rather
  // than capacity ones.
  auto idle_since = Clock::now();
  while (auto popped = queue_.pop()) {
    Job& job = **popped;
    const bool vetoed =
        !job.device_ok.empty() &&
        !job.device_ok[static_cast<std::size_t>(device.id())];
    if (vetoed ||
        (!job.spec.device.empty() && job.spec.device != device.model_name())) {
      // Device-model constraint or static-verification veto this worker
      // cannot satisfy: hand the job back for an admissible device
      // (submission guaranteed one exists) and pause briefly so a lone
      // mismatched worker doesn't spin hot.  Still idle time: the gap keeps
      // accumulating until a lease actually starts.
      static obs::Counter& skips = obs::counter("serve.jobs.device_skips");
      skips.add();
      queue_.requeue(job.spec.priority, &job);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    const double gap = ms_between(idle_since, Clock::now());
    device.add_idle_ms(gap);
    idle_gap.observe(gap);
    run_lease(job, device);
    idle_since = Clock::now();
  }
  device.add_idle_ms(ms_between(idle_since, Clock::now()));
}

void Server::run_lease(Job& job, Device& device) {
  static obs::Histogram& queue_ms = obs::histogram("serve.job.queue_ms");
  static obs::Histogram& wait_ms = obs::histogram("serve.job.wait_ms");
  static obs::Counter& preemptions = obs::counter("serve.jobs.preemptions");
  static obs::Counter& retries = obs::counter("serve.jobs.retries");
  static obs::Gauge& depth = obs::gauge("serve.queue.depth");
  depth.set(static_cast<double>(queue_.depth()));

  const auto lease_start = Clock::now();
  const double waited = ms_between(job.last_enqueued, lease_start);
  job.wait_ms += waited;
  wait_ms.observe(waited);
  if (!job.started) {
    job.started = true;
    job.queue_ms = ms_between(job.submitted, lease_start);
    queue_ms.observe(job.queue_ms);
  }
  if (job.deadline && lease_start > *job.deadline) {
    finalize(job, JobState::kExpired);
    return;
  }
  job.state = JobState::kRunning;
  job.last_device = device.id();
  publish(job);

  // Rebuild the stepper from the serialized checkpoint — the same text a
  // disk resume would read, so every preemption proves the round trip.
  search::AnalysisCheckpoint cp =
      job.checkpoint_text.empty()
          ? search::AnalysisCheckpoint::fresh(job.tasks)
          : search::AnalysisCheckpoint::from_string(job.checkpoint_text);
  cp.require_matches(job.tasks);
  search::AnalysisStepper stepper(*job.pa, job.engine_cfg, job.search_opt,
                                  std::move(cp));

  const auto lease_t0 = Clock::now();
  auto end_lease = [&] { job.run_ms += ms_between(lease_t0, Clock::now()); };

  while (!stepper.done()) {
    if (job.deadline && Clock::now() > *job.deadline) {
      end_lease();
      finalize(job, JobState::kExpired);
      return;
    }
    if (config_.preempt && queue_.has_waiting_above(job.spec.priority)) {
      job.checkpoint_text = stepper.checkpoint().to_string();
      job.tasks_completed = stepper.completed();
      ++job.preemptions;
      preemptions.add();
      end_lease();
      job.state = JobState::kPreempted;
      publish(job);
      job.last_enqueued = Clock::now();
      queue_.requeue(job.spec.priority, &job);
      return;
    }
    try {
      obs::ScopedTimer step_timer("serve.step", "serve");
      device.begin_step();
      stepper.step(&device.executor());
    } catch (const HardwareError& e) {
      ++job.retries;
      retries.add();
      job.checkpoint_text = stepper.checkpoint().to_string();
      job.tasks_completed = stepper.completed();
      end_lease();
      if (job.retries > config_.max_retries) {
        finalize(job, JobState::kFailed, e.what());
        return;
      }
      // Exponential backoff, then back in line: the next lease may land on
      // any device (resume-elsewhere is the common case under load).
      const double backoff =
          config_.retry_backoff_ms *
          static_cast<double>(1u << static_cast<unsigned>(job.retries - 1));
      job.state = JobState::kQueued;
      publish(job);
      if (backoff > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      job.last_enqueued = Clock::now();
      queue_.requeue(job.spec.priority, &job);
      return;
    }
  }

  job.checkpoint_text = stepper.checkpoint().to_string();
  const std::vector<search::TaskResult> results = stepper.results();
  job.tasks_completed = results.size();
  const bool has_inference =
      std::any_of(job.tasks.begin(), job.tasks.end(), [](const auto& t) {
        return t.kind == search::TaskKind::kInference;
      });
  std::size_t best = 0;
  if (has_inference) {
    best = search::best_inference(results, job.tasks);
  } else {
    for (std::size_t i = 1; i < results.size(); ++i)
      if (results[i].log_likelihood > results[best].log_likelihood) best = i;
  }
  job.best_lnl = results[best].log_likelihood;
  job.best_newick = results[best].newick;
  end_lease();
  finalize(job, JobState::kCompleted);
}

}  // namespace rxc::serve
