#include "serve/job.h"

namespace rxc::serve {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempted: return "preempted";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kExpired: return "expired";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

bool job_state_terminal(JobState state) {
  switch (state) {
    case JobState::kCompleted:
    case JobState::kFailed:
    case JobState::kExpired:
    case JobState::kRejected:
      return true;
    case JobState::kQueued:
    case JobState::kRunning:
    case JobState::kPreempted:
      return false;
  }
  return false;
}

}  // namespace rxc::serve
