#include "io/phylip.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace rxc::io {
namespace {

void append_sequence_chars(std::string& dst, std::string_view src) {
  for (char c : src)
    if (!std::isspace(static_cast<unsigned char>(c))) dst.push_back(c);
}

}  // namespace

std::vector<SeqRecord> read_phylip(std::istream& in) {
  std::string line;
  // Header.
  std::size_t ntaxa = 0, nsites = 0;
  while (std::getline(in, line)) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields.size() < 2)
      throw ParseError("PHYLIP: header must be '<ntaxa> <nsites>'");
    ntaxa = std::stoull(fields[0]);
    nsites = std::stoull(fields[1]);
    break;
  }
  if (ntaxa == 0 || nsites == 0)
    throw ParseError("PHYLIP: missing or zero header counts");

  // First block: every line starts with a taxon name.
  std::vector<SeqRecord> records;
  records.reserve(ntaxa);
  while (records.size() < ntaxa && std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    // Name is the first whitespace-delimited token (relaxed PHYLIP).
    std::size_t name_end = 0;
    while (name_end < t.size() &&
           !std::isspace(static_cast<unsigned char>(t[name_end])))
      ++name_end;
    SeqRecord rec;
    rec.name = std::string(t.substr(0, name_end));
    append_sequence_chars(rec.data, t.substr(name_end));
    records.push_back(std::move(rec));
  }
  if (records.size() < ntaxa)
    throw ParseError("PHYLIP: fewer taxa than header declares");

  // Remaining blocks (interleaved continuation): lines cycle through taxa in
  // order, containing sequence data only.
  std::size_t next = 0;
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty()) {
      next = 0;  // blank line separates interleaved blocks
      continue;
    }
    append_sequence_chars(records[next].data, t);
    next = (next + 1) % ntaxa;
  }

  std::set<std::string> seen;
  for (const auto& rec : records) {
    if (rec.data.size() != nsites)
      throw ParseError("PHYLIP: taxon '" + rec.name + "' has " +
                       std::to_string(rec.data.size()) + " sites, header says " +
                       std::to_string(nsites));
    if (!seen.insert(rec.name).second)
      throw ParseError("PHYLIP: duplicate taxon name '" + rec.name + "'");
  }
  return records;
}

std::vector<SeqRecord> read_phylip_string(const std::string& text) {
  std::istringstream in(text);
  return read_phylip(in);
}

std::vector<SeqRecord> read_phylip_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open PHYLIP file: " + path);
  return read_phylip(in);
}

void write_phylip(std::ostream& out, const std::vector<SeqRecord>& records) {
  RXC_REQUIRE(!records.empty(), "PHYLIP: no records to write");
  out << records.size() << ' ' << records.front().data.size() << '\n';
  for (const auto& rec : records) out << rec.name << ' ' << rec.data << '\n';
}

}  // namespace rxc::io
