#pragma once
/// \file tree_list.h
/// Reading/writing files of Newick trees, one per line — the
/// RAxML_bootstrap file format the CLI writes (`PREFIX.bootstraps.trees`)
/// and consumes for support computation.

#include <iosfwd>
#include <string>
#include <vector>

namespace rxc::io {

/// Reads all non-empty lines as Newick strings (validated by parsing).
/// Throws rxc::ParseError on the first malformed tree.
std::vector<std::string> read_tree_list(std::istream& in);
std::vector<std::string> read_tree_list_file(const std::string& path);

/// Writes one tree per line.
void write_tree_list(std::ostream& out,
                     const std::vector<std::string>& newicks);

}  // namespace rxc::io
